// Benchmarks regenerating every table and figure of the paper's
// evaluation (§7) as testing.B benches. Each BenchmarkFigN/BenchmarkTableN
// family mirrors one artifact; the full parameter sweeps with printed
// rows live in cmd/asrsbench (internal/harness). Cardinalities are
// laptop-scale — the shapes (who wins, by what factor) are what carry
// over, not absolute times; see EXPERIMENTS.md.
package asrs_test

import (
	"fmt"
	"testing"

	"asrs"
	"asrs/internal/dataset"
)

// Dataset caches: generation is deterministic, so sharing across benches
// only removes setup noise.
var (
	tweetCache = map[int]*asrs.Dataset{}
	poiCache   = map[int]*asrs.Dataset{}
)

func tweetDS(n int) *asrs.Dataset {
	if d, ok := tweetCache[n]; ok {
		return d
	}
	d := dataset.Tweet(n, 42)
	tweetCache[n] = d
	return d
}

func poiDS(n int) *asrs.Dataset {
	if d, ok := poiCache[n]; ok {
		return d
	}
	d := dataset.POISyn(n, 42)
	poiCache[n] = d
	return d
}

func sizeK(ds *asrs.Dataset, k int) (float64, float64) {
	b := ds.Bounds()
	return float64(k) * b.Width() / 1000, float64(k) * b.Height() / 1000
}

func tweetQuery(b *testing.B, ds *asrs.Dataset, k int) (asrs.Query, float64, float64) {
	b.Helper()
	qa, qb := sizeK(ds, k)
	q, err := dataset.F1(ds, qa, qb)
	if err != nil {
		b.Fatal(err)
	}
	return q, qa, qb
}

func poiQuery(b *testing.B, ds *asrs.Dataset, k int) (asrs.Query, float64, float64) {
	b.Helper()
	qa, qb := sizeK(ds, k)
	q, err := dataset.F2(ds, qa, qb)
	if err != nil {
		b.Fatal(err)
	}
	return q, qa, qb
}

// ---- Figure 8: runtime vs query rectangle size, DS-Search vs Base ----

func BenchmarkFig8DSSearch(b *testing.B) {
	for _, k := range []int{1, 4, 7, 10} {
		b.Run(fmt.Sprintf("Tweet/size=%dq", k), func(b *testing.B) {
			ds := tweetDS(20000)
			q, qa, qb := tweetQuery(b, ds, k)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, _, err := asrs.Search(ds, qa, qb, q, asrs.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("POISyn/size=%dq", k), func(b *testing.B) {
			ds := poiDS(20000)
			q, qa, qb := poiQuery(b, ds, k)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, _, err := asrs.Search(ds, qa, qb, q, asrs.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig8Base(b *testing.B) {
	// The baseline is O(n²); it gets a smaller corpus so the suite stays
	// runnable. Compare per-object rates, not absolute times.
	for _, k := range []int{1, 4, 7, 10} {
		b.Run(fmt.Sprintf("Tweet/size=%dq", k), func(b *testing.B) {
			ds := tweetDS(2000)
			q, qa, qb := tweetQuery(b, ds, k)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := asrs.SearchBaseline(ds, qa, qb, q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Figure 9: DS-Search runtime vs grid granularity ----

func BenchmarkFig9Granularity(b *testing.B) {
	ds := tweetDS(50000)
	q, qa, qb := tweetQuery(b, ds, 10)
	for _, g := range []int{10, 20, 30, 40, 50} {
		b.Run(fmt.Sprintf("ncol=nrow=%d", g), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, _, err := asrs.Search(ds, qa, qb, q, asrs.Options{NCol: g, NRow: g}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Figure 10: scalability in dataset cardinality ----

func BenchmarkFig10DSSearch(b *testing.B) {
	for _, n := range []int{10000, 40000, 70000, 100000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			ds := tweetDS(n)
			q, qa, qb := tweetQuery(b, ds, 10)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, _, err := asrs.Search(ds, qa, qb, q, asrs.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig10Base(b *testing.B) {
	for _, n := range []int{1000, 2000, 4000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			ds := tweetDS(n)
			q, qa, qb := tweetQuery(b, ds, 10)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := asrs.SearchBaseline(ds, qa, qb, q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Kernel worker sweep: parallel DS-Search scaling ----

// BenchmarkWorkersSweep measures the concurrent kernel across worker
// counts on the Fig. 10 workload. Answers are identical for every count
// (the kernel's superstep schedule is deterministic); only throughput
// varies. cmd/asrsbench -parallel-json runs the same sweep at 100k and
// records it in BENCH_PR1.json.
func BenchmarkWorkersSweep(b *testing.B) {
	ds := tweetDS(50000)
	q, qa, qb := tweetQuery(b, ds, 10)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, _, err := asrs.Search(ds, qa, qb, q, asrs.Options{Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Figure 11 / Table 1: GI-DS vs DS-Search across index granularity ----

func BenchmarkFig11GIDS(b *testing.B) {
	ds := tweetDS(100000)
	q, qa, qb := tweetQuery(b, ds, 10)
	b.Run("DS-Search", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, _, err := asrs.Search(ds, qa, qb, q, asrs.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, g := range []int{64, 128, 256} {
		b.Run(fmt.Sprintf("GIDS/grid=%d", g), func(b *testing.B) {
			idx, err := asrs.NewIndex(ds, q.F, g, g)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, _, err := asrs.SearchWithIndex(idx, ds, qa, qb, q, asrs.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTable1IndexBuild(b *testing.B) {
	ds := tweetDS(100000)
	q, _, _ := tweetQuery(b, ds, 10)
	for _, g := range []int{64, 128, 256} {
		b.Run(fmt.Sprintf("grid=%d", g), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := asrs.NewIndex(ds, q.F, g, g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Figure 12 / Table 2: the approximate solution ----

func BenchmarkFig12AppGIDS(b *testing.B) {
	ds := tweetDS(100000)
	q, qa, qb := tweetQuery(b, ds, 10)
	idx, err := asrs.NewIndex(ds, q.F, 128, 128)
	if err != nil {
		b.Fatal(err)
	}
	for _, delta := range []float64{0.1, 0.2, 0.3, 0.4} {
		b.Run(fmt.Sprintf("delta=%.1f", delta), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, _, err := asrs.SearchWithIndex(idx, ds, qa, qb, q, asrs.Options{Delta: delta}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Figure 13: MaxRS, OE vs DS-Search ----

func maxrsPts(n int) []asrs.MaxRSPoint {
	ds := tweetDS(n)
	pts := make([]asrs.MaxRSPoint, len(ds.Objects))
	for i := range ds.Objects {
		pts[i] = asrs.MaxRSPoint{Loc: ds.Objects[i].Loc, Weight: 1}
	}
	return pts
}

func BenchmarkFig13aMaxRSSize(b *testing.B) {
	pts := maxrsPts(100000)
	bounds := dataset.USBounds()
	for _, k := range []int{1, 10, 30} {
		qa := float64(k) * bounds.Width() / 1000
		qb := float64(k) * bounds.Height() / 1000
		b.Run(fmt.Sprintf("OE/size=%dq", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := asrs.MaxRSBaseline(pts, qa, qb); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("DS/size=%dq", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := asrs.MaxRS(pts, qa, qb, asrs.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig13bMaxRSScale(b *testing.B) {
	bounds := dataset.USBounds()
	qa, qb := 10*bounds.Width()/1000, 10*bounds.Height()/1000
	for _, n := range []int{100000, 300000} {
		pts := maxrsPts(n)
		b.Run(fmt.Sprintf("OE/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := asrs.MaxRSBaseline(pts, qa, qb); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("DS/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := asrs.MaxRS(pts, qa, qb, asrs.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Figures 14–15: the case study ----

func BenchmarkCaseStudy(b *testing.B) {
	ds := dataset.SingaporePOI(42)
	f, err := asrs.NewComposite(ds.Schema, asrs.AggSpec{Kind: asrs.Distribution, Attr: "category"})
	if err != nil {
		b.Fatal(err)
	}
	orchard := dataset.SingaporeDistricts()[0]
	q, err := asrs.QueryFromRegion(ds, f, nil, orchard.Rect)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _, err := asrs.SearchExcluding(ds, orchard.Rect.Width(), orchard.Rect.Height(), q, orchard.Rect, asrs.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
}
