module asrs

go 1.22
