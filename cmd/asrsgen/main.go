// Command asrsgen generates the synthetic corpora used by the examples
// and experiments and writes them to the library's CSV dialect, so
// external tools (or other ASRS implementations) can consume identical
// workloads.
//
// Usage:
//
//	asrsgen -dataset tweet -n 100000 -seed 42 -o tweet100k.csv
//	asrsgen -dataset poisyn -n 50000 -o poisyn.csv
//	asrsgen -dataset singapore -o sg.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"asrs"
	"asrs/internal/dataset"
)

func main() {
	var (
		dsName = flag.String("dataset", "tweet", "tweet | poisyn | singapore")
		n      = flag.Int("n", 100000, "number of objects (tweet/poisyn)")
		seed   = flag.Int64("seed", 42, "generator seed")
		out    = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	var ds *asrs.Dataset
	switch *dsName {
	case "tweet":
		ds = dataset.Tweet(*n, *seed)
	case "poisyn":
		ds = dataset.POISyn(*n, *seed)
	case "singapore":
		ds = dataset.SingaporePOI(*seed)
	default:
		fmt.Fprintf(os.Stderr, "asrsgen: unknown dataset %q\n", *dsName)
		os.Exit(2)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "asrsgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := asrs.WriteDatasetCSV(w, ds); err != nil {
		fmt.Fprintln(os.Stderr, "asrsgen:", err)
		os.Exit(1)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "asrsgen: wrote %d objects to %s\n", len(ds.Objects), *out)
	}
}
