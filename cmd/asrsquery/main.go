// Command asrsquery runs a single attribute-aware similar region search
// over a generated corpus and prints the answer. It demonstrates the
// library end to end without needing external data.
//
// Usage:
//
//	asrsquery -dataset tweet -n 100000 -k 10            # weekend-hotspot query (F1)
//	asrsquery -dataset poisyn -n 100000 -k 7 -delta 0.2 # popular-and-good query (F2), approximate
//	asrsquery -dataset singapore                        # query-by-example: Orchard → ?
//	asrsquery -dataset tweet -algo base -n 3000         # sweep-line baseline
//	asrsquery -dataset tweet -algo gids -grid 128       # grid-index accelerated
//	asrsquery -dataset tweet -workers 8                 # explicit search worker pool
//	asrsquery -dataset tweet -pyramid tweet.pyr         # bind the aggregate pyramid (built+saved on first use)
//	asrsquery -dataset singapore -json                  # machine-readable output (the asrsd wire schema)
//	asrsquery -dataset singapore -q 'find top 3 similar to region(103.827,1.298,103.843,1.310) under @category excluding example'
//	asrsquery -dataset tweet -q 'explain find size 2 x 2 similar to target(0,0,0,0,0,1,1) under dist(day)'
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"asrs"
	"asrs/internal/dataset"
	"asrs/internal/query"
	"asrs/internal/wire"
)

func main() {
	var (
		dsName  = flag.String("dataset", "tweet", "tweet | poisyn | singapore")
		n       = flag.Int("n", 100000, "number of generated objects (tweet/poisyn)")
		k       = flag.Int("k", 10, "query size multiplier: region is k·(W/1000) × k·(H/1000)")
		algo    = flag.String("algo", "ds", "ds | gids | base")
		grid    = flag.Int("grid", 128, "grid index granularity (gids only)")
		delta   = flag.Float64("delta", 0, "approximation parameter δ (0 = exact)")
		seed    = flag.Int64("seed", 42, "dataset seed")
		workers = flag.Int("workers", 0, "search worker pool size (<=0 = GOMAXPROCS); the answer is identical for any setting")
		pyrPath = flag.String("pyramid", "", "aggregate-pyramid file: load the per-composite pyramid from this path instead of rebuilding the query's aggregation layer (the file is built and saved on first use); answers are identical either way")
		jsonOut = flag.Bool("json", false, "emit the answer as JSON in the asrsd wire schema (one format for CLI and daemon)")
		qText   = flag.String("q", "", "run a query-language expression over the chosen dataset instead of the canned query (see README \"Query language\"; 'explain …' prints the plan report). Results stream as they are found; with -json each row is one NDJSON line, the same rows POST /v1/search would send")
		debug   = flag.Bool("debug", false, "print search work counters, including the mini-sweep strip-evaluator selection (flat prefix scan vs Fenwick walks; DESIGN.md §8)")
	)
	flag.Parse()

	if *qText != "" {
		if err := runExpr(*dsName, *n, *seed, *workers, *qText, *jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "asrsquery:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*dsName, *n, *k, *algo, *grid, *delta, *seed, *workers, *pyrPath, *jsonOut, *debug); err != nil {
		fmt.Fprintln(os.Stderr, "asrsquery:", err)
		os.Exit(1)
	}
}

// emitJSON prints the answer in the server wire schema — the same
// document shape POST /v1/query returns for this query (indented here
// for terminals; elapsed_ms naturally differs per run).
func emitJSON(region asrs.Rect, res asrs.Result, elapsed time.Duration) error {
	resp := asrs.QueryResponse{Regions: []asrs.Rect{region}, Results: []asrs.Result{res}}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(wire.ResponseWire(resp, elapsed))
}

// infof prints an informational line: to stdout normally, to stderr in
// -json mode so stdout stays a single machine-readable document.
var infoOut = os.Stdout

func infof(format string, args ...any) { fmt.Fprintf(infoOut, format, args...) }

// loadOrBuildPyramid binds the on-disk pyramid for (ds, f), building and
// saving it when the file does not exist yet.
func loadOrBuildPyramid(path string, ds *asrs.Dataset, f *asrs.Composite) (*asrs.Pyramid, error) {
	p, status, err := asrs.LoadOrBuildPyramidFile(path, ds, f)
	if err != nil {
		return nil, err
	}
	switch status {
	case asrs.PyramidBuilt:
		infof("pyramid:        built and saved to %s (%d objects, %d levels)\n", path, p.Objects(), p.Levels())
	case asrs.PyramidRebuilt:
		infof("pyramid:        WARNING: %s was corrupt; quarantined and rebuilt (%d objects, %d levels)\n", path, p.Objects(), p.Levels())
	default:
		infof("pyramid:        loaded from %s (%d objects, %d levels)\n", path, p.Objects(), p.Levels())
	}
	return p, nil
}

// debugStats prints the per-search work counters: how the space was
// processed, and which evaluator the strip cost model picked per dirty
// strip of the mini-sweeps (the PR-6 flat-vs-Fenwick selection).
func debugStats(stats asrs.SearchStats) {
	infof("discretizations: %d (%d SAT-filled), splits: %d, bisections: %d\n",
		stats.Discretizations, stats.SATFills, stats.Splits, stats.Bisections)
	infof("cells: %d clean, %d dirty (%d pruned, %d refined, %d center probes)\n",
		stats.CleanCells, stats.DirtyCells, stats.PrunedCells, stats.RefinedCells, stats.CenterProbes)
	infof("mini-sweeps: %d over %d rects; strip evaluator: %d flat, %d fenwick\n",
		stats.MiniSweeps, stats.MiniSweepRects, stats.FlatStrips, stats.FenwickStrips)
	infof("heap: %d pushes (max %d), steals: %d\n", stats.HeapPushes, stats.MaxHeapSize, stats.Steals)
}

func run(dsName string, n, k int, algo string, grid int, delta float64, seed int64, workers int, pyrPath string, jsonOut, debug bool) error {
	if jsonOut {
		infoOut = os.Stderr
	}
	var (
		ds  *asrs.Dataset
		q   asrs.Query
		a   float64
		b   float64
		err error
	)
	switch dsName {
	case "tweet":
		ds = dataset.Tweet(n, seed)
		a, b = scaledSize(ds, k)
		q, err = dataset.F1(ds, a, b)
	case "poisyn":
		ds = dataset.POISyn(n, seed)
		a, b = scaledSize(ds, k)
		q, err = dataset.F2(ds, a, b)
	case "singapore":
		return runSingapore(seed, workers, jsonOut, debug)
	default:
		return fmt.Errorf("unknown dataset %q", dsName)
	}
	if err != nil {
		return err
	}
	infof("dataset=%s n=%d query=%.4gx%.4g algo=%s δ=%g\n", dsName, len(ds.Objects), a, b, algo, delta)

	opt := asrs.Options{Delta: delta, Workers: workers}
	if pyrPath != "" && algo != "base" {
		p, err := loadOrBuildPyramid(pyrPath, ds, q.F)
		if err != nil {
			return err
		}
		opt.Pyramid = p
	}

	start := time.Now()
	var (
		region asrs.Rect
		res    asrs.Result
		dstats asrs.SearchStats
	)
	switch algo {
	case "ds":
		region, res, dstats, err = asrs.Search(ds, a, b, q, opt)
	case "gids":
		// The index is built sequentially on purpose: NewIndexParallel's
		// shard merge reorders float summation with the worker count,
		// which would break this command's promise that -workers never
		// changes the printed answer.
		var idx *asrs.Index
		idx, err = asrs.NewIndex(ds, q.F, grid, grid)
		if err != nil {
			return err
		}
		var stats asrs.IndexStats
		region, res, stats, err = asrs.SearchWithIndex(idx, ds, a, b, q, opt)
		if err == nil {
			infof("index: %dx%d, %d/%d cells searched\n", grid, grid, stats.CellsSearched, stats.Cells)
			dstats = stats.DS
		}
	case "base":
		region, res, err = asrs.SearchBaseline(ds, a, b, q)
	default:
		return fmt.Errorf("unknown algorithm %q", algo)
	}
	if err != nil {
		return err
	}
	if debug && algo != "base" {
		debugStats(dstats)
	}
	if jsonOut {
		return emitJSON(region, res, time.Since(start))
	}
	fmt.Printf("answer region:  %v\n", region)
	fmt.Printf("distance:       %.4f\n", res.Dist)
	fmt.Printf("representation: %.4g\n", res.Rep)
	fmt.Printf("elapsed:        %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// runExpr serves a query-language expression from the CLI: the same
// parse → plan → lazy-stream pipeline as POST /v1/search, over a local
// engine. Rows print as each greedy round finishes.
func runExpr(dsName string, n int, seed int64, workers int, src string, jsonOut bool) error {
	if jsonOut {
		infoOut = os.Stderr
	}
	var (
		ds    *asrs.Dataset
		named map[string]*asrs.Composite
	)
	switch dsName {
	case "tweet":
		ds = dataset.Tweet(n, seed)
	case "poisyn":
		ds = dataset.POISyn(n, seed)
	case "singapore":
		ds = dataset.SingaporePOI(seed)
		f, err := asrs.NewComposite(ds.Schema, asrs.AggSpec{Kind: asrs.Distribution, Attr: "category"})
		if err != nil {
			return err
		}
		named = map[string]*asrs.Composite{"category": f}
	default:
		return fmt.Errorf("unknown dataset %q", dsName)
	}

	p := query.NewPlanner(ds.Schema, named)
	pl, err := p.ParseAndPlan(src)
	if err != nil {
		return err
	}
	eng, err := asrs.NewEngine(ds, asrs.EngineOptions{Search: asrs.Options{Workers: workers}})
	if err != nil {
		return err
	}
	if pl.Explain {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(pl.Report(eng.CurrentDataset(), false))
	}

	infof("dataset=%s n=%d canonical=%q\n", dsName, len(ds.Objects), pl.Canonical)
	start := time.Now()
	st, err := query.Exec(context.Background(), pl, query.EngineBinding{E: eng})
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	count := 0
	for {
		row, ok := st.Next()
		if !ok {
			break
		}
		count++
		if jsonOut {
			enc.Encode(wire.SearchRow{
				Rank: row.Rank,
				Result: &wire.Result{
					Region: wire.RectWire(row.Region),
					Point:  wire.Point{X: row.Result.Point.X, Y: row.Result.Point.Y},
					Dist:   row.Result.Dist,
					Rep:    row.Result.Rep,
				},
			})
			continue
		}
		fmt.Printf("#%d region %v  dist %.4f\n", row.Rank, row.Region, row.Result.Dist)
	}
	if err := st.Err(); err != nil {
		return err
	}
	if jsonOut {
		return enc.Encode(wire.SearchRow{Done: true, Count: count,
			ElapsedMS: float64(time.Since(start).Microseconds()) / 1e3})
	}
	infof("%d rows in %v\n", count, time.Since(start).Round(time.Millisecond))
	return nil
}

func runSingapore(seed int64, workers int, jsonOut, debug bool) error {
	ds := dataset.SingaporePOI(seed)
	f, err := asrs.NewComposite(ds.Schema, asrs.AggSpec{Kind: asrs.Distribution, Attr: "category"})
	if err != nil {
		return err
	}
	orchard := dataset.SingaporeDistricts()[0]
	q, err := asrs.QueryFromRegion(ds, f, nil, orchard.Rect)
	if err != nil {
		return err
	}
	start := time.Now()
	region, res, dstats, err := asrs.SearchExcluding(ds, orchard.Rect.Width(), orchard.Rect.Height(), q, orchard.Rect, asrs.Options{Workers: workers})
	if err != nil {
		return err
	}
	if debug {
		debugStats(dstats)
	}
	if jsonOut {
		return emitJSON(region, res, time.Since(start))
	}
	fmt.Printf("query region (Orchard): %v\n", orchard.Rect)
	fmt.Printf("most similar region:    %v (distance %.2f)\n", region, res.Dist)
	fmt.Printf("elapsed:                %v\n", time.Since(start).Round(time.Millisecond))
	for _, d := range dataset.SingaporeDistricts()[1:] {
		if region.Intersects(d.Rect) {
			fmt.Printf("→ that's %q\n", d.Name)
		}
	}
	return nil
}

func scaledSize(ds *asrs.Dataset, k int) (float64, float64) {
	bounds := ds.Bounds()
	return float64(k) * bounds.Width() / 1000, float64(k) * bounds.Height() / 1000
}
