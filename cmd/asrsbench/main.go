// Command asrsbench regenerates the paper's tables and figures, and
// benchmarks the concurrent search kernel.
//
// Usage:
//
//	asrsbench -list
//	asrsbench -exp fig8 [-scale 2] [-seed 7]
//	asrsbench -exp all
//	asrsbench -parallel-json BENCH_PR3.json [-n 100000] [-workers 1,2,4,8] [-batch 32] [-workload f1|f2q]
//	asrsbench -parallel-json BENCH_PR6.json -workload scaling [-max-workers 8]
//	asrsbench -exp fig10 -cpuprofile cpu.prof -memprofile mem.prof
//
// Each experiment prints the rows/series of the corresponding paper
// artifact. Cardinalities default to laptop-scale; -scale multiplies them
// toward the paper's sizes. -parallel-json runs the kernel worker sweep
// (DS-Search on the tweet workload) and writes a machine-readable report
// with ops/sec, allocs/op and speedup per worker count. -cpuprofile and
// -memprofile write pprof profiles of whatever ran, so perf changes can
// ship with attached evidence.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"asrs/internal/harness"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id (fig8, fig9, fig10, fig11, table1, fig12, table2, fig13a, fig13b, casestudy) or 'all'")
		scale    = flag.Float64("scale", 1, "cardinality multiplier relative to defaults")
		seed     = flag.Int64("seed", 42, "dataset seed")
		list     = flag.Bool("list", false, "list experiments and exit")
		parJSON  = flag.String("parallel-json", "", "run the kernel worker sweep and write the JSON report to this file ('-' for stdout)")
		n        = flag.Int("n", 100000, "dataset cardinality for -parallel-json")
		workers  = flag.String("workers", "1,2,4,8", "comma-separated worker counts for -parallel-json")
		batch    = flag.Int("batch", 0, "kernel superstep batch size for -parallel-json (0 = kernel default)")
		workload = flag.String("workload", "f1", "composite workload for -parallel-json: f1 (integer fD on tweet), f2q (real-valued fS+fA on the dyadic-quantized POI corpus), batch (multi-query batch of overlapping Singapore extents: PR-3 per-query path vs the pyramid-amortized batched path), serve (closed-loop HTTP serving: coalescing window collector vs per-request dispatch at equal workers), scaling (strip-evaluator A/B at workers=1 plus the workers=1..max-workers curve on both the batched and serve workloads), ingest (durable streaming ingest: WAL throughput per sync policy, staged-delta vs static query cost, boot-time recovery replay), query (declarative frontend: parse+plan cost vs hand-wired structs, and streaming time-to-first-result vs one-shot top-k), or shard (multi-shard routing: contained vs straddling extent mixes routed vs single-engine, plus the breaker trip/recovery timeline under injected shard panics)")
		queries  = flag.Int("queries", 24, "requests per batch for -workload batch/scaling; requests per client for -workload serve/scaling; extents per mode for -workload shard")
		clients  = flag.Int("clients", 32, "concurrent closed-loop clients for -workload serve (-workload scaling defaults to 8, -workload shard to 8)")
		shards   = flag.Int("shards", 4, "shard count for -workload shard")
		maxW     = flag.Int("max-workers", 0, "top of the workers=1..N sweep for -workload scaling (0 = max(NumCPU, 2))")
		baseNs   = flag.Int64("baseline-ns", 0, "externally measured reference ns/op for the same workload, recorded in the report")
		note     = flag.String("note", "", "free-form provenance recorded in the report")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile at exit to this file")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "asrsbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "asrsbench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "asrsbench:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live-heap accounting before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "asrsbench:", err)
			}
		}()
	}

	if *parJSON != "" {
		if err := runParallelBench(*parJSON, *n, *seed, *workers, *batch, *workload, *queries, *clients, *shards, *maxW, *baseNs, *note); err != nil {
			fmt.Fprintln(os.Stderr, "asrsbench:", err)
			os.Exit(1)
		}
		return
	}

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, e := range harness.Experiments() {
			fmt.Printf("  %-10s %s\n", e.Name, e.Paper)
		}
		if *exp == "" && !*list {
			fmt.Fprintln(os.Stderr, "\nspecify one with -exp <id> (or -exp all)")
			os.Exit(2)
		}
		return
	}

	cfg := harness.Config{Out: os.Stdout, Scale: *scale, Seed: *seed}
	var err error
	if *exp == "all" {
		err = harness.RunAll(cfg)
	} else {
		err = harness.Run(*exp, cfg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "asrsbench:", err)
		os.Exit(1)
	}
}

// runParallelBench parses the worker sweep and writes the JSON report.
func runParallelBench(path string, n int, seed int64, workerList string, batch int, workload string, queries, clients, shards, maxWorkers int, baseNs int64, note string) error {
	var sweep []int
	for _, tok := range strings.Split(workerList, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		w, err := strconv.Atoi(tok)
		if err != nil || w < 1 {
			return fmt.Errorf("invalid worker count %q", tok)
		}
		sweep = append(sweep, w)
	}
	run := func(out *os.File) error {
		if workload == "scaling" {
			// -clients keeps its serve-bench default of 32, but the scaling
			// sweep runs the closed loop once per worker count, so only an
			// explicit non-default value is passed through.
			sc := harness.ScalingBenchConfig{N: n, Queries: queries, Seed: seed, MaxWorkers: maxWorkers, BaselineNs: baseNs, Note: note}
			if clients != 32 {
				sc.Clients = clients
			}
			return harness.RunScalingBench(out, sc)
		}
		if workload == "shard" {
			// -clients keeps its serve-bench default of 32; the shard bench
			// defaults to 8, so only an explicit non-default value passes.
			cfg := harness.ShardBenchConfig{N: n, Shards: shards, Queries: queries, Seed: seed, BaselineNs: baseNs, Note: note}
			if clients != 32 {
				cfg.Clients = clients
			}
			return harness.RunShardBench(out, cfg)
		}
		if workload == "query" {
			// -queries keeps its batch default of 24; the frontend bench's
			// top-k depth defaults to 8, so only explicit values pass.
			cfg := harness.QueryBenchConfig{N: n, Seed: seed, BaselineNs: baseNs, Note: note}
			if queries != 24 {
				cfg.K = queries
			}
			return harness.RunQueryBench(out, cfg)
		}
		if workload == "ingest" {
			cfg := harness.IngestBenchConfig{N: n, Batch: batch, Queries: queries, Seed: seed, BaselineNs: baseNs, Note: note}
			return harness.RunIngestBench(out, cfg)
		}
		if workload == "serve" {
			cfg := harness.ServeBenchConfig{N: n, Clients: clients, PerClient: queries, Seed: seed, Workers: sweep, BaselineNs: baseNs, Note: note}
			return harness.RunServeBench(out, cfg)
		}
		if workload == "batch" {
			cfg := harness.BatchBenchConfig{N: n, Queries: queries, Seed: seed, Workers: sweep, BaselineNs: baseNs, Note: note}
			return harness.RunBatchBench(out, cfg)
		}
		cfg := harness.ParallelBenchConfig{N: n, Seed: seed, Workers: sweep, Batch: batch, Workload: workload, BaselineNs: baseNs, Note: note}
		return harness.RunParallelBench(out, cfg)
	}
	if path == "-" {
		return run(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := run(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
