// Command asrsbench regenerates the paper's tables and figures.
//
// Usage:
//
//	asrsbench -list
//	asrsbench -exp fig8 [-scale 2] [-seed 7]
//	asrsbench -exp all
//
// Each experiment prints the rows/series of the corresponding paper
// artifact. Cardinalities default to laptop-scale; -scale multiplies them
// toward the paper's sizes.
package main

import (
	"flag"
	"fmt"
	"os"

	"asrs/internal/harness"
)

func main() {
	var (
		exp   = flag.String("exp", "", "experiment id (fig8, fig9, fig10, fig11, table1, fig12, table2, fig13a, fig13b, casestudy) or 'all'")
		scale = flag.Float64("scale", 1, "cardinality multiplier relative to defaults")
		seed  = flag.Int64("seed", 42, "dataset seed")
		list  = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, e := range harness.Experiments() {
			fmt.Printf("  %-10s %s\n", e.Name, e.Paper)
		}
		if *exp == "" && !*list {
			fmt.Fprintln(os.Stderr, "\nspecify one with -exp <id> (or -exp all)")
			os.Exit(2)
		}
		return
	}

	cfg := harness.Config{Out: os.Stdout, Scale: *scale, Seed: *seed}
	var err error
	if *exp == "all" {
		err = harness.RunAll(cfg)
	} else {
		err = harness.Run(*exp, cfg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "asrsbench:", err)
		os.Exit(1)
	}
}
