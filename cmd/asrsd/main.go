// Command asrsd is the ASRS serving daemon: an HTTP JSON API over
// asrs.Engine that coalesces concurrent queries into batch supersteps
// (request dedup + shared prepared query shapes across independent
// clients), sheds load beyond a bounded in-flight queue, and enforces
// per-query deadlines cancelled cooperatively at kernel superstep
// boundaries. See DESIGN.md §7 for the architecture.
//
// Usage:
//
//	asrsd -dataset singapore -addr :8080
//	asrsd -dataset singapore -n 100000 -pyramid sg.pyr   # warm-load (build+save on first run)
//	asrsd -dataset tweet -n 200000 -window 5ms -batch-max 64
//	asrsd -window 0                                      # coalescing off (ablation)
//	asrsd -dataset singapore -wal-dir /var/lib/asrs/wal  # durable streaming ingest
//	asrsd -dataset singapore -shards 4                   # multi-shard serving (scatter–gather router)
//	asrsd -shards 4 -partial best_effort -shard-lazy     # partial answers; shards load on first traffic
//
//	curl -s localhost:8080/healthz                       # liveness (always 200 while serving HTTP)
//	curl -s localhost:8080/readyz                        # routing signal (503 while warming/draining)
//	curl -s localhost:8080/stats
//	curl -s -X POST localhost:8080/v1/query -d '{
//	  "composite": "category",
//	  "region": {"min_x":103.827,"min_y":1.298,"max_x":103.843,"max_y":1.310},
//	  "exclude_region": true}'
//	curl -s -X POST localhost:8080/v1/insert -d '{
//	  "objects": [{"x":103.84,"y":1.30,"values":{"category":"Food"}}]}'
//	curl -s -X POST localhost:8080/v1/search -d '{
//	  "q": "find top 2 similar to region(103.827,1.298,103.843,1.310) under @category excluding example"}'
//
// /v1/search is the query-language front door (README "Query language",
// DESIGN.md §12): expressions compile to the same engine requests as
// /v1/query — bit-identical answers — and results stream back as
// NDJSON, one row per answer as each greedy round finishes. Prefix the
// query with "explain" to get the compiled plan instead of results.
//
// Multi-shard mode (-shards N or -shard-cuts) splits the corpus into
// x-slab shards, each its own engine/pyramid/WAL fault domain behind a
// circuit breaker; extent queries route to one shard when possible and
// scatter–gather otherwise. The listener opens before the shards warm —
// /readyz reports 503 "warming" until they have — and a corrupt shard
// pyramid is quarantined and rebuilt without blocking siblings.
//
// SIGTERM/SIGINT starts a graceful drain: /readyz flips to 503, the
// pending coalescing window is flushed so waiting clients get answers,
// and in-flight searches get a grace period before cooperative
// cancellation.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"asrs"
	"asrs/internal/dataset"
	"asrs/internal/server"
	"asrs/internal/shard"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		dsName     = flag.String("dataset", "singapore", "singapore | tweet | poisyn")
		n          = flag.Int("n", 0, "corpus cardinality (0 = dataset default)")
		seed       = flag.Int64("seed", 42, "dataset seed")
		workers    = flag.Int("workers", 0, "kernel worker pool per search (<=0 = GOMAXPROCS); answers are identical for any setting")
		grid       = flag.Int("grid", 64, "grid index granularity (0 disables GI-DS)")
		window     = flag.Duration("window", server.DefaultWindow, "coalescing window (how long the first request of a batch waits for company; 0 disables coalescing)")
		batchMax   = flag.Int("batch-max", server.DefaultMaxBatch, "max requests per coalesced batch")
		queue      = flag.Int("queue", server.DefaultMaxInFlight, "admission bound: max in-flight requests before 429 load shedding")
		pyrPath    = flag.String("pyramid", "", "aggregate-pyramid file: loaded at startup, or built and saved on first run; secondary composites persist beside it as <path>.<name>")
		timeout    = flag.Duration("timeout", server.DefaultTimeout, "default per-query deadline")
		maxTimeout = flag.Duration("max-timeout", server.DefaultMaxTimeout, "upper clamp on client-chosen timeout_ms")
		grace      = flag.Duration("grace", 30*time.Second, "drain grace period after SIGTERM before in-flight searches are cancelled")
		verbose    = flag.Bool("verbose", false, "log one line per request")
		walDir     = flag.String("wal-dir", "", "streaming-ingest WAL directory: POST /v1/insert becomes durable and acknowledged inserts survive a crash (empty = memory-only ingest); in shard mode each shard gets <wal-dir>/<shard-name>")
		walSync    = flag.String("wal-sync", "always", "WAL sync policy: always (fsync per insert), batch (fsync per insert batch), never (OS flushes)")
		compactAt  = flag.Int("compact-at", 0, "staged inserts before background compaction folds the WAL into a snapshot (0 = default, negative = never)")
		shards     = flag.Int("shards", 0, "split the corpus into this many equal-population x-slab shards behind the scatter–gather router (0 = single-engine mode)")
		shardCuts  = flag.String("shard-cuts", "", "explicit comma-separated interior shard cut x-coordinates, strictly ascending (overrides -shards; k cuts make k+1 shards)")
		partial    = flag.String("partial", "", "default partial-result policy for routed queries: strict (fail when a needed shard is down) or best_effort (answer from survivors, report skips); shard mode only")
		shardLazy  = flag.Bool("shard-lazy", false, "defer shard engine loads to first traffic instead of warming all shards in the background at boot")
	)
	flag.Parse()

	if err := run(runConfig{
		addr: *addr, dsName: *dsName, n: *n, seed: *seed, workers: *workers,
		grid: *grid, window: *window, batchMax: *batchMax, queue: *queue,
		pyrPath: *pyrPath, timeout: *timeout, maxTimeout: *maxTimeout,
		grace: *grace, verbose: *verbose, walDir: *walDir, walSync: *walSync,
		compactAt: *compactAt, shards: *shards, shardCuts: *shardCuts,
		partial: *partial, shardLazy: *shardLazy,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "asrsd:", err)
		os.Exit(1)
	}
}

// runConfig carries the parsed flags.
type runConfig struct {
	addr, dsName        string
	n                   int
	seed                int64
	workers, grid       int
	window              time.Duration
	batchMax, queue     int
	pyrPath             string
	timeout, maxTimeout time.Duration
	grace               time.Duration
	verbose             bool
	walDir, walSync     string
	compactAt           int
	shards              int
	shardCuts, partial  string
	shardLazy           bool
}

// parseCuts parses the -shard-cuts list.
func parseCuts(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	cuts := make([]float64, 0, len(parts))
	for _, p := range parts {
		c, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad -shard-cuts entry %q: %w", p, err)
		}
		cuts = append(cuts, c)
	}
	return cuts, nil
}

// buildServing constructs the dataset and its composite registry. The
// first name returned is the primary composite (-pyramid applies to it).
func buildServing(dsName string, n int, seed int64) (*asrs.Dataset, map[string]*asrs.Composite, []string, error) {
	switch dsName {
	case "singapore":
		if n <= 0 {
			n = dataset.SingaporePOICount
		}
		ds := dataset.SingaporeScaled(n, seed)
		cat, err := asrs.NewComposite(ds.Schema, asrs.AggSpec{Kind: asrs.Distribution, Attr: "category"})
		if err != nil {
			return nil, nil, nil, err
		}
		poi, err := asrs.NewComposite(ds.Schema,
			asrs.AggSpec{Kind: asrs.Distribution, Attr: "category"},
			asrs.AggSpec{Kind: asrs.Count},
		)
		if err != nil {
			return nil, nil, nil, err
		}
		return ds, map[string]*asrs.Composite{"category": cat, "poi": poi}, []string{"category", "poi"}, nil
	case "tweet":
		if n <= 0 {
			n = 100000
		}
		ds := dataset.Tweet(n, seed)
		day, err := asrs.NewComposite(ds.Schema, asrs.AggSpec{Kind: asrs.Distribution, Attr: "day"})
		if err != nil {
			return nil, nil, nil, err
		}
		return ds, map[string]*asrs.Composite{"day": day}, []string{"day"}, nil
	case "poisyn":
		if n <= 0 {
			n = 100000
		}
		ds := dataset.POISyn(n, seed)
		f2, err := asrs.NewComposite(ds.Schema,
			asrs.AggSpec{Kind: asrs.Sum, Attr: "visits"},
			asrs.AggSpec{Kind: asrs.Average, Attr: "rating"},
		)
		if err != nil {
			return nil, nil, nil, err
		}
		return ds, map[string]*asrs.Composite{"f2": f2}, []string{"f2"}, nil
	}
	return nil, nil, nil, fmt.Errorf("unknown dataset %q", dsName)
}

// loadOrBuildPyramid installs the on-disk pyramid for (ds, f) into the
// engine, building and saving the file when it does not exist yet.
func loadOrBuildPyramid(eng *asrs.Engine, path string, f *asrs.Composite) error {
	p, status, err := asrs.LoadOrBuildPyramidFile(path, eng.Dataset(), f)
	if err != nil {
		return err
	}
	switch status {
	case asrs.PyramidBuilt:
		log.Printf("pyramid: built and saved %s (%d objects, %d levels)", path, p.Objects(), p.Levels())
	case asrs.PyramidRebuilt:
		log.Printf("pyramid: WARNING: %s was corrupt; quarantined and rebuilt (%d objects, %d levels)",
			path, p.Objects(), p.Levels())
	default:
		log.Printf("pyramid: loaded %s (%d objects, %d levels)", path, p.Objects(), p.Levels())
	}
	return eng.SetPyramid(p)
}

// pyramidPath derives the per-composite pyramid file from the -pyramid
// flag: the primary composite owns the path as given, secondary
// composites get "<path>.<name>" beside it — every registered composite
// is persisted, so a warm boot pays zero pyramid builds.
func pyramidPath(base string, i int, name string) string {
	if i == 0 {
		return base
	}
	return base + "." + name
}

func run(rc runConfig) error {
	ds, composites, names, err := buildServing(rc.dsName, rc.n, rc.seed)
	if err != nil {
		return err
	}
	log.Printf("dataset: %s, %d objects, composites %v", rc.dsName, len(ds.Objects), names)

	syncPolicy, err := asrs.ParseSyncPolicy(rc.walSync)
	if err != nil {
		return err
	}
	engOpts := asrs.EngineOptions{
		IndexGranularity: rc.grid,
		Search:           asrs.Options{Workers: rc.workers},
		Ingest: asrs.IngestOptions{
			WALDir:    rc.walDir,
			Sync:      syncPolicy,
			CompactAt: rc.compactAt,
		},
	}
	cuts, err := parseCuts(rc.shardCuts)
	if err != nil {
		return err
	}
	sharded := rc.shards > 0 || len(cuts) > 0

	scfg := server.Config{
		Composites:  composites,
		Window:      rc.window,
		MaxBatch:    rc.batchMax,
		MaxInFlight: rc.queue,
		Timeout:     rc.timeout,
		MaxTimeout:  rc.maxTimeout,
	}
	var eng *asrs.Engine   // engine mode
	var cat *shard.Catalog // shard mode
	if sharded {
		// Per-shard engines own their fault domains: WALs under
		// <wal-dir>/<shard-name>, pyramids at <pyramid>.<shard-name>.
		engOpts.Ingest.WALDir = ""
		cat, err = shard.New(ds, shard.Config{
			Shards:      rc.shards,
			Cuts:        cuts,
			Engine:      engOpts,
			Composites:  composites,
			Names:       names,
			PyramidBase: rc.pyrPath,
			WALRoot:     rc.walDir,
			Lazy:        true, // warmed in the background after listen
			Logf:        log.Printf,
		})
		if err != nil {
			return err
		}
		scfg.Router = shard.NewRouter(cat, shard.RouterOptions{})
		scfg.DefaultPartial = rc.partial
		// Open the listener before the shards warm: /readyz says
		// "warming" until the background loads finish, so load balancers
		// hold traffic without the process looking dead.
		scfg.StartUnready = !rc.shardLazy
		log.Printf("shards: %d slabs (cuts %v), warm=%v, partial=%q",
			len(cat.Shards()), cat.Cuts(), !rc.shardLazy, rc.partial)
	} else {
		if rc.partial != "" {
			return fmt.Errorf("-partial requires shard mode (-shards or -shard-cuts)")
		}
		eng, err = asrs.NewEngine(ds, engOpts)
		if err != nil {
			return err
		}
		if rc.walDir != "" {
			// NewEngine already replayed snapshot + WAL; every previously
			// acknowledged insert is staged for the first epoch view.
			log.Printf("ingest: WAL %s (sync=%s), recovered %d ingested objects",
				rc.walDir, syncPolicy, len(eng.IngestedObjects()))
		}
		if rc.pyrPath != "" {
			for i, name := range names {
				if err := loadOrBuildPyramid(eng, pyramidPath(rc.pyrPath, i, name), composites[name]); err != nil {
					return err
				}
			}
		}
		for _, name := range names {
			start := time.Now()
			if err := eng.Warm(composites[name]); err != nil {
				return fmt.Errorf("warming %s: %w", name, err)
			}
			log.Printf("warm: %s ready in %v (index %dx%d + pyramid)", name, time.Since(start).Round(time.Millisecond), rc.grid, rc.grid)
		}
		scfg.Engine = eng
	}

	srv, err := server.New(scfg)
	if err != nil {
		return err
	}
	if sharded && !rc.shardLazy {
		go func() {
			start := time.Now()
			if werr := cat.WarmAll(); werr != nil {
				// Keep serving: the failed shard's breaker isolates it and
				// the next request retries the load; siblings are warm.
				log.Printf("shards: WARNING: warm failed (serving continues, breaker isolates it): %v", werr)
			}
			log.Printf("shards: warmed in %v", time.Since(start).Round(time.Millisecond))
			srv.SetReady(true)
		}()
	}
	handler := srv.Handler()
	if rc.verbose {
		handler = server.LogMiddleware(handler)
	}
	httpSrv := &http.Server{Addr: rc.addr, Handler: handler}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	errCh := make(chan error, 1)
	go func() {
		log.Printf("listening on %s (window=%v batch-max=%d queue=%d)", rc.addr, rc.window, rc.batchMax, rc.queue)
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	log.Printf("draining (grace %v)…", rc.grace)
	graceCtx, cancel := context.WithTimeout(context.Background(), rc.grace)
	defer cancel()
	// Drain order: the serving layer first (flush the pending window,
	// answer waiting clients, refuse new queries with 503), then the
	// HTTP listener (close idle connections, wait out active handlers).
	drainErr := srv.Shutdown(graceCtx)
	if err := httpSrv.Shutdown(graceCtx); err != nil && drainErr == nil {
		drainErr = err
	}
	// Engines close after the serving layer has drained: no insert can
	// be in flight. A final compaction folds each WAL into its ingest
	// snapshot so the next boot replays (almost) nothing; skipping it on
	// error is safe — recovery replays the WAL instead.
	if eng != nil {
		if rc.walDir != "" {
			if err := eng.Compact(); err != nil {
				log.Printf("ingest: final compaction failed (recovery will replay the WAL): %v", err)
			}
		}
		if err := eng.Close(); err != nil && drainErr == nil {
			drainErr = err
		}
	}
	if cat != nil {
		if rc.walDir != "" {
			for _, sh := range cat.Shards() {
				if e := sh.Loaded(); e != nil {
					if err := e.Compact(); err != nil {
						log.Printf("ingest: %s final compaction failed (recovery will replay the WAL): %v", sh.Name(), err)
					}
				}
			}
		}
		if err := cat.Close(); err != nil && drainErr == nil {
			drainErr = err
		}
	}
	if drainErr != nil {
		return drainErr
	}
	log.Printf("drained cleanly")
	return nil
}
