// Command asrsd is the ASRS serving daemon: an HTTP JSON API over
// asrs.Engine that coalesces concurrent queries into batch supersteps
// (request dedup + shared prepared query shapes across independent
// clients), sheds load beyond a bounded in-flight queue, and enforces
// per-query deadlines cancelled cooperatively at kernel superstep
// boundaries. See DESIGN.md §7 for the architecture.
//
// Usage:
//
//	asrsd -dataset singapore -addr :8080
//	asrsd -dataset singapore -n 100000 -pyramid sg.pyr   # warm-load (build+save on first run)
//	asrsd -dataset tweet -n 200000 -window 5ms -batch-max 64
//	asrsd -window 0                                      # coalescing off (ablation)
//	asrsd -dataset singapore -wal-dir /var/lib/asrs/wal  # durable streaming ingest
//
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/stats
//	curl -s -X POST localhost:8080/v1/query -d '{
//	  "composite": "category",
//	  "region": {"min_x":103.827,"min_y":1.298,"max_x":103.843,"max_y":1.310},
//	  "exclude_region": true}'
//	curl -s -X POST localhost:8080/v1/insert -d '{
//	  "objects": [{"x":103.84,"y":1.30,"values":{"category":"Food"}}]}'
//
// SIGTERM/SIGINT starts a graceful drain: /healthz flips to 503, the
// pending coalescing window is flushed so waiting clients get answers,
// and in-flight searches get a grace period before cooperative
// cancellation.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"asrs"
	"asrs/internal/dataset"
	"asrs/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		dsName     = flag.String("dataset", "singapore", "singapore | tweet | poisyn")
		n          = flag.Int("n", 0, "corpus cardinality (0 = dataset default)")
		seed       = flag.Int64("seed", 42, "dataset seed")
		workers    = flag.Int("workers", 0, "kernel worker pool per search (<=0 = GOMAXPROCS); answers are identical for any setting")
		grid       = flag.Int("grid", 64, "grid index granularity (0 disables GI-DS)")
		window     = flag.Duration("window", server.DefaultWindow, "coalescing window (how long the first request of a batch waits for company; 0 disables coalescing)")
		batchMax   = flag.Int("batch-max", server.DefaultMaxBatch, "max requests per coalesced batch")
		queue      = flag.Int("queue", server.DefaultMaxInFlight, "admission bound: max in-flight requests before 429 load shedding")
		pyrPath    = flag.String("pyramid", "", "aggregate-pyramid file: loaded at startup, or built and saved on first run; secondary composites persist beside it as <path>.<name>")
		timeout    = flag.Duration("timeout", server.DefaultTimeout, "default per-query deadline")
		maxTimeout = flag.Duration("max-timeout", server.DefaultMaxTimeout, "upper clamp on client-chosen timeout_ms")
		grace      = flag.Duration("grace", 30*time.Second, "drain grace period after SIGTERM before in-flight searches are cancelled")
		verbose    = flag.Bool("verbose", false, "log one line per request")
		walDir     = flag.String("wal-dir", "", "streaming-ingest WAL directory: POST /v1/insert becomes durable and acknowledged inserts survive a crash (empty = memory-only ingest)")
		walSync    = flag.String("wal-sync", "always", "WAL sync policy: always (fsync per insert), batch (fsync per insert batch), never (OS flushes)")
		compactAt  = flag.Int("compact-at", 0, "staged inserts before background compaction folds the WAL into a snapshot (0 = default, negative = never)")
	)
	flag.Parse()

	if err := run(*addr, *dsName, *n, *seed, *workers, *grid, *window, *batchMax, *queue,
		*pyrPath, *timeout, *maxTimeout, *grace, *verbose, *walDir, *walSync, *compactAt); err != nil {
		fmt.Fprintln(os.Stderr, "asrsd:", err)
		os.Exit(1)
	}
}

// buildServing constructs the dataset and its composite registry. The
// first name returned is the primary composite (-pyramid applies to it).
func buildServing(dsName string, n int, seed int64) (*asrs.Dataset, map[string]*asrs.Composite, []string, error) {
	switch dsName {
	case "singapore":
		if n <= 0 {
			n = dataset.SingaporePOICount
		}
		ds := dataset.SingaporeScaled(n, seed)
		cat, err := asrs.NewComposite(ds.Schema, asrs.AggSpec{Kind: asrs.Distribution, Attr: "category"})
		if err != nil {
			return nil, nil, nil, err
		}
		poi, err := asrs.NewComposite(ds.Schema,
			asrs.AggSpec{Kind: asrs.Distribution, Attr: "category"},
			asrs.AggSpec{Kind: asrs.Count},
		)
		if err != nil {
			return nil, nil, nil, err
		}
		return ds, map[string]*asrs.Composite{"category": cat, "poi": poi}, []string{"category", "poi"}, nil
	case "tweet":
		if n <= 0 {
			n = 100000
		}
		ds := dataset.Tweet(n, seed)
		day, err := asrs.NewComposite(ds.Schema, asrs.AggSpec{Kind: asrs.Distribution, Attr: "day"})
		if err != nil {
			return nil, nil, nil, err
		}
		return ds, map[string]*asrs.Composite{"day": day}, []string{"day"}, nil
	case "poisyn":
		if n <= 0 {
			n = 100000
		}
		ds := dataset.POISyn(n, seed)
		f2, err := asrs.NewComposite(ds.Schema,
			asrs.AggSpec{Kind: asrs.Sum, Attr: "visits"},
			asrs.AggSpec{Kind: asrs.Average, Attr: "rating"},
		)
		if err != nil {
			return nil, nil, nil, err
		}
		return ds, map[string]*asrs.Composite{"f2": f2}, []string{"f2"}, nil
	}
	return nil, nil, nil, fmt.Errorf("unknown dataset %q", dsName)
}

// loadOrBuildPyramid installs the on-disk pyramid for (ds, f) into the
// engine, building and saving the file when it does not exist yet.
func loadOrBuildPyramid(eng *asrs.Engine, path string, f *asrs.Composite) error {
	p, status, err := asrs.LoadOrBuildPyramidFile(path, eng.Dataset(), f)
	if err != nil {
		return err
	}
	switch status {
	case asrs.PyramidBuilt:
		log.Printf("pyramid: built and saved %s (%d objects, %d levels)", path, p.Objects(), p.Levels())
	case asrs.PyramidRebuilt:
		log.Printf("pyramid: WARNING: %s was corrupt; quarantined and rebuilt (%d objects, %d levels)",
			path, p.Objects(), p.Levels())
	default:
		log.Printf("pyramid: loaded %s (%d objects, %d levels)", path, p.Objects(), p.Levels())
	}
	return eng.SetPyramid(p)
}

// pyramidPath derives the per-composite pyramid file from the -pyramid
// flag: the primary composite owns the path as given, secondary
// composites get "<path>.<name>" beside it — every registered composite
// is persisted, so a warm boot pays zero pyramid builds.
func pyramidPath(base string, i int, name string) string {
	if i == 0 {
		return base
	}
	return base + "." + name
}

func run(addr, dsName string, n int, seed int64, workers, grid int,
	window time.Duration, batchMax, queue int, pyrPath string,
	timeout, maxTimeout, grace time.Duration, verbose bool,
	walDir, walSync string, compactAt int) error {
	ds, composites, names, err := buildServing(dsName, n, seed)
	if err != nil {
		return err
	}
	log.Printf("dataset: %s, %d objects, composites %v", dsName, len(ds.Objects), names)

	syncPolicy, err := asrs.ParseSyncPolicy(walSync)
	if err != nil {
		return err
	}
	eng, err := asrs.NewEngine(ds, asrs.EngineOptions{
		IndexGranularity: grid,
		Search:           asrs.Options{Workers: workers},
		Ingest: asrs.IngestOptions{
			WALDir:    walDir,
			Sync:      syncPolicy,
			CompactAt: compactAt,
		},
	})
	if err != nil {
		return err
	}
	if walDir != "" {
		// NewEngine already replayed snapshot + WAL; every previously
		// acknowledged insert is staged for the first epoch view.
		log.Printf("ingest: WAL %s (sync=%s), recovered %d ingested objects",
			walDir, syncPolicy, len(eng.IngestedObjects()))
	}
	if pyrPath != "" {
		for i, name := range names {
			if err := loadOrBuildPyramid(eng, pyramidPath(pyrPath, i, name), composites[name]); err != nil {
				return err
			}
		}
	}
	for _, name := range names {
		start := time.Now()
		if err := eng.Warm(composites[name]); err != nil {
			return fmt.Errorf("warming %s: %w", name, err)
		}
		log.Printf("warm: %s ready in %v (index %dx%d + pyramid)", name, time.Since(start).Round(time.Millisecond), grid, grid)
	}

	srv, err := server.New(server.Config{
		Engine:      eng,
		Composites:  composites,
		Window:      window,
		MaxBatch:    batchMax,
		MaxInFlight: queue,
		Timeout:     timeout,
		MaxTimeout:  maxTimeout,
	})
	if err != nil {
		return err
	}
	handler := srv.Handler()
	if verbose {
		handler = server.LogMiddleware(handler)
	}
	httpSrv := &http.Server{Addr: addr, Handler: handler}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	errCh := make(chan error, 1)
	go func() {
		log.Printf("listening on %s (window=%v batch-max=%d queue=%d)", addr, window, batchMax, queue)
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	log.Printf("draining (grace %v)…", grace)
	graceCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	// Drain order: the serving layer first (flush the pending window,
	// answer waiting clients, refuse new queries with 503), then the
	// HTTP listener (close idle connections, wait out active handlers).
	drainErr := srv.Shutdown(graceCtx)
	if err := httpSrv.Shutdown(graceCtx); err != nil && drainErr == nil {
		drainErr = err
	}
	// The engine closes after the serving layer has drained: no insert
	// can be in flight. A final compaction folds the WAL into the ingest
	// snapshot so the next boot replays (almost) nothing; skipping it on
	// error is safe — recovery replays the WAL instead.
	if walDir != "" {
		if err := eng.Compact(); err != nil {
			log.Printf("ingest: final compaction failed (recovery will replay the WAL): %v", err)
		}
	}
	if err := eng.Close(); err != nil && drainErr == nil {
		drainErr = err
	}
	if drainErr != nil {
		return drainErr
	}
	log.Printf("drained cleanly")
	return nil
}
