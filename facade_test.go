package asrs_test

import (
	"bytes"
	"math"
	"testing"

	"asrs"
	"asrs/internal/dataset"
)

func TestFacadeTopK(t *testing.T) {
	ds := dataset.Random(60, 60, 90)
	f, err := asrs.NewComposite(ds.Schema, asrs.AggSpec{Kind: asrs.Distribution, Attr: "cat"})
	if err != nil {
		t.Fatal(err)
	}
	q, _ := asrs.QueryFromTarget(f, []float64{3, 2, 1}, nil)
	regions, results, err := asrs.SearchTopK(ds, 8, 8, q, 3, nil, asrs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(regions) != 3 {
		t.Fatalf("regions = %d", len(regions))
	}
	for i := 1; i < len(results); i++ {
		if results[i].Dist < results[i-1].Dist-1e-9 {
			t.Fatal("top-k not ordered")
		}
	}
	for i := 0; i < len(regions); i++ {
		for j := i + 1; j < len(regions); j++ {
			if regions[i].IntersectsOpen(regions[j]) {
				t.Fatal("top-k regions overlap")
			}
		}
	}
}

func TestFacadePersistence(t *testing.T) {
	ds := dataset.Random(200, 60, 91)
	var buf bytes.Buffer
	if err := asrs.WriteDatasetCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}
	loaded, err := asrs.ReadDatasetCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Objects) != 200 {
		t.Fatalf("loaded %d objects", len(loaded.Objects))
	}

	f, _ := asrs.NewComposite(ds.Schema,
		asrs.AggSpec{Kind: asrs.Distribution, Attr: "cat"},
		asrs.AggSpec{Kind: asrs.Sum, Attr: "val"},
	)
	idx, err := asrs.NewIndex(ds, f, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	var ibuf bytes.Buffer
	if _, err := asrs.WriteIndex(&ibuf, idx); err != nil {
		t.Fatal(err)
	}
	idx2, err := asrs.ReadIndex(&ibuf, f)
	if err != nil {
		t.Fatal(err)
	}

	q, _ := asrs.QueryFromTarget(f, []float64{2, 2, 2, 10}, nil)
	_, r1, _, err := asrs.SearchWithIndex(idx, ds, 7, 7, q, asrs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, r2, _, err := asrs.SearchWithIndex(idx2, ds, 7, 7, q, asrs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r1.Dist-r2.Dist) > 1e-12 {
		t.Fatalf("reloaded index answers differently: %g vs %g", r1.Dist, r2.Dist)
	}
}

func TestFacadeCountAggregator(t *testing.T) {
	ds := dataset.Random(40, 40, 92)
	f, err := asrs.NewComposite(ds.Schema, asrs.AggSpec{Kind: asrs.Count})
	if err != nil {
		t.Fatal(err)
	}
	// MER: the region enclosing the most objects, expressed as ASRS with
	// fC and a huge target.
	q, _ := asrs.QueryFromTarget(f, []float64{1e9}, nil)
	_, res, _, err := asrs.Search(ds, 10, 10, q, asrs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pts := make([]asrs.MaxRSPoint, len(ds.Objects))
	for i := range ds.Objects {
		pts[i] = asrs.MaxRSPoint{Loc: ds.Objects[i].Loc, Weight: 1}
	}
	oe, err := asrs.MaxRSBaseline(pts, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rep[0] != oe.Weight {
		t.Fatalf("fC MER %g != OE %g", res.Rep[0], oe.Weight)
	}
}

func TestFacadeParallelIndex(t *testing.T) {
	ds := dataset.Random(10000, 100, 93)
	f, _ := asrs.NewComposite(ds.Schema, asrs.AggSpec{Kind: asrs.Distribution, Attr: "cat"})
	idx, err := asrs.NewIndexParallel(ds, f, 32, 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	q, _ := asrs.QueryFromTarget(f, []float64{5, 5, 5}, nil)
	_, parRes, _, err := asrs.SearchWithIndex(idx, ds, 8, 8, q, asrs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, seqRes, _, err := asrs.Search(ds, 8, 8, q, asrs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(parRes.Dist-seqRes.Dist) > 1e-9 {
		t.Fatalf("parallel-index GI-DS %g != DS %g", parRes.Dist, seqRes.Dist)
	}
}

func TestFacadeAccuracyOverride(t *testing.T) {
	ds := dataset.Random(30, 40, 94)
	f, _ := asrs.NewComposite(ds.Schema, asrs.AggSpec{Kind: asrs.Distribution, Attr: "cat"})
	q, _ := asrs.QueryFromTarget(f, []float64{1, 1, 1}, nil)
	// A coarse accuracy forces early drops; the safety net keeps the
	// answer exact.
	_, coarse, _, err := asrs.Search(ds, 6, 6, q, asrs.Options{Accuracy: asrs.Accuracy{DX: 1, DY: 1}})
	if err != nil {
		t.Fatal(err)
	}
	_, exact, _, err := asrs.Search(ds, 6, 6, q, asrs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(coarse.Dist-exact.Dist) > 1e-9 {
		t.Fatalf("coarse accuracy changed the answer: %g vs %g", coarse.Dist, exact.Dist)
	}
}
