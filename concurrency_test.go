package asrs_test

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"asrs"
	"asrs/internal/dataset"
)

// workerSweep is the worker counts every determinism test compares. The
// kernel's superstep schedule is worker-count independent, so answers
// must be bit-identical across the sweep — including the point, not just
// the distance.
var workerSweep = []int{1, 2, 8}

// TestSearchDeterministicAcrossWorkers: DS-Search answers (region, point
// and distance) must not depend on Options.Workers, on randomized
// datasets including ones with heavy distance ties (integer fD counts).
func TestSearchDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 12; trial++ {
		n := 50 + rng.Intn(400)
		ds := dataset.Random(n, 80, rng.Int63())
		f, err := asrs.NewComposite(ds.Schema,
			asrs.AggSpec{Kind: asrs.Distribution, Attr: "cat"},
			asrs.AggSpec{Kind: asrs.Sum, Attr: "val"},
		)
		if err != nil {
			t.Fatal(err)
		}
		target := []float64{float64(rng.Intn(6)), float64(rng.Intn(6)), float64(rng.Intn(6)), rng.NormFloat64() * 10}
		q, err := asrs.QueryFromTarget(f, target, nil)
		if err != nil {
			t.Fatal(err)
		}
		a := 4 + rng.Float64()*10
		b := 4 + rng.Float64()*10

		type answer struct {
			region asrs.Rect
			dist   float64
		}
		var want answer
		for i, w := range workerSweep {
			region, res, _, err := asrs.Search(ds, a, b, q, asrs.Options{Workers: w})
			if err != nil {
				t.Fatal(err)
			}
			got := answer{region: region, dist: res.Dist}
			if i == 0 {
				want = got
				continue
			}
			if got != want {
				t.Fatalf("trial %d: workers=%d answered %+v, workers=%d answered %+v",
					trial, w, got, workerSweep[0], want)
			}
		}
	}
}

// TestSearchWithIndexDeterministicAcrossWorkers: the GI-DS path must be
// worker-count independent too, and agree with plain DS-Search on the
// distance.
func TestSearchWithIndexDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 6; trial++ {
		ds := dataset.Random(300+rng.Intn(500), 100, rng.Int63())
		f, err := asrs.NewComposite(ds.Schema, asrs.AggSpec{Kind: asrs.Distribution, Attr: "cat"})
		if err != nil {
			t.Fatal(err)
		}
		q, err := asrs.QueryFromTarget(f, []float64{4, 3, 2}, nil)
		if err != nil {
			t.Fatal(err)
		}
		idx, err := asrs.NewIndex(ds, f, 24, 24)
		if err != nil {
			t.Fatal(err)
		}
		a, b := 9.0, 8.0

		_, direct, _, err := asrs.Search(ds, a, b, q, asrs.Options{})
		if err != nil {
			t.Fatal(err)
		}
		var wantRegion asrs.Rect
		var wantDist float64
		for i, w := range workerSweep {
			region, res, _, err := asrs.SearchWithIndex(idx, ds, a, b, q, asrs.Options{Workers: w})
			if err != nil {
				t.Fatal(err)
			}
			if res.Dist != direct.Dist {
				t.Fatalf("trial %d workers=%d: GI-DS %g != DS %g", trial, w, res.Dist, direct.Dist)
			}
			if i == 0 {
				wantRegion, wantDist = region, res.Dist
				continue
			}
			if region != wantRegion || res.Dist != wantDist {
				t.Fatalf("trial %d: workers=%d region %v dist %g, want %v / %g",
					trial, w, region, res.Dist, wantRegion, wantDist)
			}
		}
	}
}

// TestMaxRSDeterministicAcrossWorkers: the MaxRS adaptation inherits the
// kernel, so corner, weight and region must be identical for any worker
// count — unit weights make ties ubiquitous, which is exactly the hard
// case for schedule independence.
func TestMaxRSDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 8; trial++ {
		n := 100 + rng.Intn(900)
		pts := make([]asrs.MaxRSPoint, n)
		for i := range pts {
			pts[i] = asrs.MaxRSPoint{
				Loc:    asrs.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100},
				Weight: 1,
			}
		}
		a := 5 + rng.Float64()*10
		b := 5 + rng.Float64()*10

		var want asrs.MaxRSResult
		for i, w := range workerSweep {
			got, _, err := asrs.MaxRS(pts, a, b, asrs.Options{Workers: w})
			if err != nil {
				t.Fatal(err)
			}
			if i == 0 {
				want = got
				continue
			}
			if got != want {
				t.Fatalf("trial %d: workers=%d %+v, want %+v", trial, w, got, want)
			}
		}
		// Sanity: the parallel answer still matches the OE baseline weight.
		oe, err := asrs.MaxRSBaseline(pts, a, b)
		if err != nil {
			t.Fatal(err)
		}
		if want.Weight != oe.Weight {
			t.Fatalf("trial %d: DS weight %g != OE weight %g", trial, want.Weight, oe.Weight)
		}
	}
}

// TestApproximateDeterministicAcrossWorkers: even the (1+δ) variant —
// where pruning is aggressive and the answer is not the unique optimum —
// must be schedule-independent.
func TestApproximateDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	ds := dataset.Random(600, 90, 177)
	f, err := asrs.NewComposite(ds.Schema, asrs.AggSpec{Kind: asrs.Distribution, Attr: "cat"})
	if err != nil {
		t.Fatal(err)
	}
	q, err := asrs.QueryFromTarget(f, []float64{5, 4, 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = rng
	var want asrs.Rect
	var wantDist float64
	for i, w := range workerSweep {
		region, res, _, err := asrs.Search(ds, 7, 7, q, asrs.Options{Delta: 0.3, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want, wantDist = region, res.Dist
			continue
		}
		if region != want || res.Dist != wantDist {
			t.Fatalf("workers=%d: %v / %g, want %v / %g", w, region, res.Dist, want, wantDist)
		}
	}
}

// TestSATLayerDeterministicAcrossWorkers: the query-level summed-area
// table engages on spaces holding thousands of rectangles (integer-exact
// composites only). Answers must be bit-identical across worker counts
// AND across the SAT/difference-array fills — the two fills produce
// identical cell grids by construction, so any divergence is a bug in
// the SAT layer.
func TestSATLayerDeterministicAcrossWorkers(t *testing.T) {
	// Large enough that the cost-based fill selection picks the SAT at
	// the root spaces (the difference-array fill wins on smaller sets).
	ds := dataset.Tweet(32000, 42)
	f, err := asrs.NewComposite(ds.Schema, asrs.AggSpec{Kind: asrs.Distribution, Attr: "day"})
	if err != nil {
		t.Fatal(err)
	}
	q, err := asrs.QueryFromTarget(f, []float64{0, 0, 0, 0, 0, 40, 40}, nil)
	if err != nil {
		t.Fatal(err)
	}
	b := ds.Bounds()
	a := 10 * b.Width() / 1000
	bb := 10 * b.Height() / 1000

	type answer struct {
		region asrs.Rect
		point  asrs.Point
		dist   float64
	}
	var want answer
	first := true
	satCovered := false
	for _, disableSAT := range []bool{false, true} {
		for _, w := range workerSweep {
			region, res, st, err := asrs.Search(ds, a, bb, q, asrs.Options{Workers: w, DisableSAT: disableSAT})
			if err != nil {
				t.Fatal(err)
			}
			if !disableSAT && st.SATFills > 0 {
				satCovered = true
			}
			got := answer{region: region, point: res.Point, dist: res.Dist}
			if first {
				want = got
				first = false
				continue
			}
			if got != want {
				t.Fatalf("disableSAT=%v workers=%d answered %+v, want %+v", disableSAT, w, got, want)
			}
		}
	}
	if !satCovered {
		t.Fatal("SAT fill never engaged — the test no longer covers the SAT layer")
	}
}

// TestEngineQueryBatchParallel: one engine, one shared lazily built
// index, many goroutines issuing batches concurrently — every response
// must match the serial answer.
func TestEngineQueryBatchParallel(t *testing.T) {
	ds := dataset.Random(2000, 120, 19)
	f, err := asrs.NewComposite(ds.Schema,
		asrs.AggSpec{Kind: asrs.Distribution, Attr: "cat"},
	)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := asrs.NewEngine(ds, asrs.EngineOptions{
		IndexGranularity: 16,
		BatchParallelism: 4,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Build the request set and the serial reference answers.
	var reqs []asrs.QueryRequest
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 10; i++ {
		target := []float64{float64(rng.Intn(8)), float64(rng.Intn(8)), float64(rng.Intn(8))}
		q, err := asrs.QueryFromTarget(f, target, nil)
		if err != nil {
			t.Fatal(err)
		}
		reqs = append(reqs, asrs.QueryRequest{Query: q, A: 6 + float64(i), B: 9})
	}
	want := make([]asrs.QueryResponse, len(reqs))
	for i, r := range reqs {
		want[i] = eng.Query(r)
		if want[i].Err != nil {
			t.Fatal(want[i].Err)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := eng.QueryBatch(reqs)
			for i := range got {
				if got[i].Err != nil {
					errs <- got[i].Err
					return
				}
				gr, gres := got[i].Best()
				wr, wres := want[i].Best()
				if gr != wr || gres.Dist != wres.Dist {
					t.Errorf("request %d: %v/%g, want %v/%g", i, gr, gres.Dist, wr, wres.Dist)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestSearchTerminatesOnNaNTarget: a NaN query target makes every
// distance comparison false; the kernel must still drain its heap and
// return instead of livelocking (regression: the superstep pop loop
// originally spun forever when the pruning threshold was NaN).
func TestSearchTerminatesOnNaNTarget(t *testing.T) {
	ds := dataset.Random(300, 50, 31)
	f, err := asrs.NewComposite(ds.Schema, asrs.AggSpec{Kind: asrs.Distribution, Attr: "cat"})
	if err != nil {
		t.Fatal(err)
	}
	q, err := asrs.QueryFromTarget(f, []float64{math.NaN(), 1, 2}, nil)
	if err != nil {
		t.Skip("NaN target rejected at validation:", err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _, _, _ = asrs.Search(ds, 6, 6, q, asrs.Options{Workers: 2})
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Search hung on NaN target")
	}
}

// TestEngineTopKAndExclude routes through the greedy machinery.
func TestEngineTopKAndExclude(t *testing.T) {
	ds := dataset.Random(200, 80, 29)
	f, err := asrs.NewComposite(ds.Schema, asrs.AggSpec{Kind: asrs.Distribution, Attr: "cat"})
	if err != nil {
		t.Fatal(err)
	}
	q, err := asrs.QueryFromTarget(f, []float64{3, 2, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := asrs.NewEngine(ds, asrs.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	resp := eng.Query(asrs.QueryRequest{Query: q, A: 8, B: 8, TopK: 3})
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	if len(resp.Regions) != 3 {
		t.Fatalf("topk regions = %d", len(resp.Regions))
	}
	for i := 1; i < len(resp.Results); i++ {
		if resp.Results[i].Dist < resp.Results[i-1].Dist-1e-9 {
			t.Fatal("topk not ordered")
		}
	}
	// Excluding the best region must yield the second-best answer.
	excl := eng.Query(asrs.QueryRequest{Query: q, A: 8, B: 8, Exclude: []asrs.Rect{resp.Regions[0]}})
	if excl.Err != nil {
		t.Fatal(excl.Err)
	}
	if _, res := excl.Best(); res.Dist < resp.Results[0].Dist-1e-9 {
		t.Fatalf("excluded query beat the unrestricted optimum: %g < %g", res.Dist, resp.Results[0].Dist)
	}
}
