package asrs_test

import (
	"math"
	"testing"

	"asrs"
	"asrs/internal/dataset"
)

// exampleDataset builds the Fig 1 neighborhood: apartments with prices,
// plus amenities, in two look-alike districts and one distractor.
func exampleDataset(t *testing.T) *asrs.Dataset {
	t.Helper()
	schema := asrs.MustSchema(
		asrs.Attribute{Name: "category", Kind: asrs.Categorical,
			Domain: []string{"Apartment", "Supermarket", "Restaurant", "Bus stop"}},
		asrs.Attribute{Name: "price", Kind: asrs.Numeric},
	)
	obj := func(x, y float64, cat int, price float64) asrs.Object {
		return asrs.Object{Loc: asrs.Point{X: x, Y: y},
			Values: []asrs.Value{{Cat: cat}, {Num: price}}}
	}
	// District A (the query): 2 apartments (avg 1.75), 1 of each amenity.
	// District B (the wanted answer): near-identical profile.
	// District C: apartments only, expensive.
	objects := []asrs.Object{
		obj(1.0, 1.0, 0, 2.0), obj(1.6, 1.4, 0, 1.5),
		obj(1.2, 1.8, 1, 0), obj(1.8, 1.2, 2, 0), obj(1.4, 1.6, 3, 0),

		obj(11.0, 1.0, 0, 1.9), obj(11.6, 1.4, 0, 1.6),
		obj(11.2, 1.8, 1, 0), obj(11.8, 1.2, 2, 0), obj(11.4, 1.6, 3, 0),

		obj(21.0, 1.0, 0, 9.0), obj(21.5, 1.5, 0, 8.5), obj(21.2, 1.2, 0, 9.5),
	}
	return &asrs.Dataset{Schema: schema, Objects: objects}
}

func TestQueryByExampleEndToEnd(t *testing.T) {
	ds := exampleDataset(t)
	aptSel := asrs.SelectCategory(0, 0)
	f, err := asrs.NewComposite(ds.Schema,
		asrs.AggSpec{Kind: asrs.Distribution, Attr: "category"},
		asrs.AggSpec{Kind: asrs.Average, Attr: "price", Select: aptSel},
	)
	if err != nil {
		t.Fatal(err)
	}
	rq := asrs.Rect{MinX: 0.5, MinY: 0.5, MaxX: 2.5, MaxY: 2.5}
	q, err := asrs.QueryFromRegion(ds, f, nil, rq)
	if err != nil {
		t.Fatal(err)
	}
	wantTarget := []float64{2, 1, 1, 1, 1.75}
	for i := range wantTarget {
		if math.Abs(q.Target[i]-wantTarget[i]) > 1e-9 {
			t.Fatalf("target = %v, want %v", q.Target, wantTarget)
		}
	}

	// Exclude the query's own district by searching only the exact
	// solution: district B should win with a near-zero distance.
	region, res, stats, err := asrs.Search(ds, 2, 2, q, asrs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dist > 0.26 { // district B differs only by avg price 1.75 vs 1.75±0.25
		t.Fatalf("best distance %g too large; region %v", res.Dist, region)
	}
	// The answer must be one of the two look-alike districts, not C.
	cx := region.Center().X
	if !(cx < 5 || (cx > 8 && cx < 15)) {
		t.Fatalf("answer region %v is not a look-alike district", region)
	}
	if stats.Discretizations == 0 && stats.MiniSweeps == 0 {
		t.Fatal("no work recorded")
	}
}

func TestFacadeConsistency(t *testing.T) {
	ds := dataset.Random(80, 60, 21)
	f, err := asrs.NewComposite(ds.Schema,
		asrs.AggSpec{Kind: asrs.Distribution, Attr: "cat"},
		asrs.AggSpec{Kind: asrs.Sum, Attr: "val"},
	)
	if err != nil {
		t.Fatal(err)
	}
	q, err := asrs.QueryFromTarget(f, []float64{3, 2, 1, 5}, asrs.UnitWeights(4))
	if err != nil {
		t.Fatal(err)
	}
	a, b := 8.0, 7.0

	_, exact, _, err := asrs.Search(ds, a, b, q, asrs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, base, err := asrs.SearchBaseline(ds, a, b, q)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := asrs.NewIndex(ds, f, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	_, gids, _, err := asrs.SearchWithIndex(idx, ds, a, b, q, asrs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exact.Dist-base.Dist) > 1e-9 || math.Abs(gids.Dist-base.Dist) > 1e-9 {
		t.Fatalf("algorithms disagree: DS %g, Base %g, GI-DS %g", exact.Dist, base.Dist, gids.Dist)
	}

	_, approx, _, err := asrs.Search(ds, a, b, q, asrs.Options{Delta: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if approx.Dist > 1.2*base.Dist+1e-9 {
		t.Fatalf("approx %g violates guarantee vs %g", approx.Dist, base.Dist)
	}
}

func TestFacadeMaxRS(t *testing.T) {
	pts := []asrs.MaxRSPoint{
		{Loc: asrs.Point{X: 1, Y: 1}, Weight: 1},
		{Loc: asrs.Point{X: 1.2, Y: 1.1}, Weight: 1},
		{Loc: asrs.Point{X: 9, Y: 9}, Weight: 1},
	}
	ds, _, err := asrs.MaxRS(pts, 1, 1, asrs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	oe, err := asrs.MaxRSBaseline(pts, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Weight != 2 || oe.Weight != 2 {
		t.Fatalf("MaxRS weights: DS %g, OE %g, want 2", ds.Weight, oe.Weight)
	}
}

func TestRepresentAndDistance(t *testing.T) {
	ds := exampleDataset(t)
	f, _ := asrs.NewComposite(ds.Schema, asrs.AggSpec{Kind: asrs.Distribution, Attr: "category"})
	rep := asrs.Represent(ds, f, asrs.Rect{MinX: 0, MinY: 0, MaxX: 5, MaxY: 5})
	if rep[0] != 2 || rep[1] != 1 || rep[2] != 1 || rep[3] != 1 {
		t.Fatalf("rep = %v", rep)
	}
	if d := asrs.Distance(asrs.L1, rep, []float64{0, 0, 0, 0}, nil); d != 5 {
		t.Fatalf("distance = %g", d)
	}
}
