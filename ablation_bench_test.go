// Ablation benchmarks for the design choices DESIGN.md calls out beyond
// the paper's pseudocode: the subset-enumeration refinement of dirty-cell
// lower bounds and the mini-sweep safety net. Both knobs preserve
// exactness; these benches quantify what they buy (or cost).
package asrs_test

import (
	"fmt"
	"testing"

	"asrs"
	"asrs/internal/dataset"
)

func ablationWorkload(b *testing.B) (*asrs.Dataset, asrs.Query, float64, float64) {
	b.Helper()
	ds := tweetDS(20000)
	qa, qb := sizeK(ds, 10)
	q, err := dataset.F1(ds, qa, qb)
	if err != nil {
		b.Fatal(err)
	}
	return ds, q, qa, qb
}

func BenchmarkAblationRefinement(b *testing.B) {
	ds, q, qa, qb := ablationWorkload(b)
	for _, disabled := range []bool{false, true} {
		name := "refinement=on"
		if disabled {
			name = "refinement=off"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, _, _, err := asrs.Search(ds, qa, qb, q, asrs.Options{DisableRefinement: disabled})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAblationSafetyNet(b *testing.B) {
	ds, q, qa, qb := ablationWorkload(b)
	for _, disabled := range []bool{false, true} {
		name := "safetynet=on"
		if disabled {
			name = "safetynet=off"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, _, _, err := asrs.Search(ds, qa, qb, q, asrs.Options{DisableSafetyNet: disabled})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationGranularity complements Fig 9 with the extreme grid
// choices the paper does not plot.
func BenchmarkAblationGranularity(b *testing.B) {
	ds, q, qa, qb := ablationWorkload(b)
	for _, g := range []int{10, 30, 100} {
		b.Run(fmt.Sprintf("grid=%d", g), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, _, _, err := asrs.Search(ds, qa, qb, q, asrs.Options{NCol: g, NRow: g})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkIndexBuildParallel quantifies the parallel binning pass.
func BenchmarkIndexBuildParallel(b *testing.B) {
	ds := tweetDS(200000)
	q, _, _ := tweetQuery(b, ds, 10)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := asrs.NewIndexParallel(ds, q.F, 128, 128, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
