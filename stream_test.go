package asrs_test

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"asrs"
)

// streamFixture splits the batch fixture's corpus into a seed prefix and
// an insert tail, keeping the full-corpus requests (their targets were
// compiled against the combined corpus, so both the ingesting engine and
// the rebuilt-from-scratch oracle engine answer the same question).
func streamFixture(t *testing.T, nQueries int, seed int64, tail int) (*asrs.Dataset, *asrs.Dataset, []asrs.Object, []asrs.QueryRequest) {
	t.Helper()
	full, _, reqs := batchFixture(t, nQueries, seed)
	n := len(full.Objects)
	if tail >= n {
		t.Fatalf("tail %d >= corpus %d", tail, n)
	}
	seedDS := &asrs.Dataset{Schema: full.Schema, Objects: full.Objects[:n-tail]}
	return full, seedDS, full.Objects[n-tail:], reqs
}

func objectsEqual(t *testing.T, tag string, a, b []asrs.Object) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d objects != %d", tag, len(a), len(b))
	}
	for i := range a {
		if a[i].Loc != b[i].Loc || len(a[i].Values) != len(b[i].Values) {
			t.Fatalf("%s: object %d differs: %+v vs %+v", tag, i, a[i], b[i])
		}
		for j := range a[i].Values {
			av, bv := a[i].Values[j], b[i].Values[j]
			if av.Cat != bv.Cat || math.Float64bits(av.Num) != math.Float64bits(bv.Num) {
				t.Fatalf("%s: object %d value %d differs: %+v vs %+v", tag, i, j, av, bv)
			}
		}
	}
}

// TestInsertBitIdenticalToRebuild is the streaming-ingest acceptance
// property: an engine that grew from a seed corpus through
// Insert/InsertBatch answers every request bit-identically to an engine
// built over the combined corpus from scratch — at every worker count,
// batch-grouping setting and batch parallelism, through single queries
// and batches alike. The ingesting engine's pyramid is produced by the
// delta fold (the corpus has unique anchors), which the test asserts
// actually happened.
func TestInsertBitIdenticalToRebuild(t *testing.T) {
	full, seedDS, inserts, reqs := streamFixture(t, 12, 71, 180)
	configs := []struct {
		tag string
		opt asrs.EngineOptions
	}{
		{"w1", asrs.EngineOptions{BatchParallelism: 1, Search: asrs.Options{Workers: 1}}},
		{"w2-grouped", asrs.EngineOptions{BatchParallelism: 2, Search: asrs.Options{Workers: 2}}},
		{"w2-ungrouped", asrs.EngineOptions{BatchParallelism: 2, DisableBatchGrouping: true, Search: asrs.Options{Workers: 2}}},
		{"indexed", asrs.EngineOptions{IndexGranularity: 24, BatchParallelism: 1, Search: asrs.Options{Workers: 1}}},
	}
	for _, cfg := range configs {
		oracle, err := asrs.NewEngine(full, cfg.opt)
		if err != nil {
			t.Fatal(err)
		}
		grown, err := asrs.NewEngine(seedDS, cfg.opt)
		if err != nil {
			t.Fatal(err)
		}
		// Query once against the seed epoch so the later epoch has a
		// completed pyramid to fold (the interesting path), then grow:
		// a few single inserts, the rest in one batch.
		_ = grown.Query(reqs[0])
		for i := 0; i < 3; i++ {
			if err := grown.Insert(inserts[i]); err != nil {
				t.Fatalf("%s: insert %d: %v", cfg.tag, i, err)
			}
		}
		if err := grown.InsertBatch(inserts[3:]); err != nil {
			t.Fatalf("%s: insert batch: %v", cfg.tag, err)
		}

		want := oracle.QueryBatch(reqs)
		got := grown.QueryBatch(reqs)
		for i := range want {
			if want[i].Err != nil || got[i].Err != nil {
				t.Fatalf("%s: request %d errored: oracle %v, grown %v", cfg.tag, i, want[i].Err, got[i].Err)
			}
			respEqual(t, cfg.tag+"/batch", i, got[i], want[i])
		}
		for i := range reqs {
			respEqual(t, cfg.tag+"/single", i, grown.Query(reqs[i]), oracle.Query(reqs[i]))
		}
		st := grown.Stats()
		if st.Ingested != int64(len(inserts)) {
			t.Fatalf("%s: Stats.Ingested = %d, want %d", cfg.tag, st.Ingested, len(inserts))
		}
		if st.PyramidFolds == 0 {
			t.Fatalf("%s: pyramid was never delta-folded (unique-anchor corpus should fold)", cfg.tag)
		}
	}
}

// TestInsertVisibleMidStream: each insert becomes visible to the next
// query, and every intermediate epoch answers exactly like a fresh
// engine over the same prefix.
func TestInsertVisibleMidStream(t *testing.T) {
	full, seedDS, inserts, reqs := streamFixture(t, 4, 99, 60)
	grown, err := asrs.NewEngine(seedDS, asrs.EngineOptions{Search: asrs.Options{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step <= len(inserts); step += 20 {
		prefix := &asrs.Dataset{Schema: full.Schema, Objects: full.Objects[:len(seedDS.Objects)+step]}
		oracle, err := asrs.NewEngine(prefix, asrs.EngineOptions{Search: asrs.Options{Workers: 1}})
		if err != nil {
			t.Fatal(err)
		}
		for i := range reqs {
			respEqual(t, "mid-stream", i, grown.Query(reqs[i]), oracle.Query(reqs[i]))
		}
		if step < len(inserts) {
			end := step + 20
			if end > len(inserts) {
				end = len(inserts)
			}
			if err := grown.InsertBatch(inserts[step:end]); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestInsertValidationAndClose: schema-violating inserts are refused
// without staging anything, empty batches are no-ops, and a closed
// engine rejects inserts while still answering queries.
func TestInsertValidationAndClose(t *testing.T) {
	_, seedDS, inserts, reqs := streamFixture(t, 2, 5, 10)
	eng, err := asrs.NewEngine(seedDS, asrs.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	bad := inserts[0]
	bad.Values = nil // wrong arity
	if err := eng.Insert(bad); err == nil {
		t.Fatal("schema-violating insert accepted")
	}
	bad = inserts[0]
	bad.Values = []asrs.Value{{Cat: 1 << 20}} // outside the categorical domain
	if err := eng.Insert(bad); err == nil {
		t.Fatal("out-of-domain insert accepted")
	}
	if err := eng.InsertBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if got := len(eng.IngestedObjects()); got != 0 {
		t.Fatalf("%d objects staged by refused/empty inserts", got)
	}
	if err := eng.Insert(inserts[0]); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := eng.Insert(inserts[1]); !errors.Is(err, asrs.ErrEngineClosed) {
		t.Fatalf("insert after close: %v, want ErrEngineClosed", err)
	}
	if resp := eng.Query(reqs[0]); resp.Err != nil {
		t.Fatalf("query after close: %v", resp.Err)
	}
}

// TestIngestDurableRecovery: acknowledged inserts survive an abrupt stop
// (the engine is abandoned, never closed) and a reopened engine answers
// bit-identically to a fresh engine over the combined corpus — through
// a WAL-only restart, a compacted restart, and a snapshot+tail restart.
func TestIngestDurableRecovery(t *testing.T) {
	full, seedDS, inserts, reqs := streamFixture(t, 6, 123, 90)
	dir := t.TempDir()
	ing := asrs.IngestOptions{WALDir: dir, Sync: asrs.SyncAlways, CompactAt: -1}
	opt := asrs.EngineOptions{Ingest: ing, Search: asrs.Options{Workers: 1}}

	eng, err := asrs.NewEngine(seedDS, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.InsertBatch(inserts[:30]); err != nil {
		t.Fatal(err)
	}
	for _, o := range inserts[30:40] {
		if err := eng.Insert(o); err != nil {
			t.Fatal(err)
		}
	}
	// Abandon without Close: a crash. The WAL must carry everything.
	eng = nil

	re1, err := asrs.NewEngine(seedDS, opt)
	if err != nil {
		t.Fatalf("recovery 1: %v", err)
	}
	objectsEqual(t, "recovery-1", re1.IngestedObjects(), inserts[:40])

	// Compact, insert a tail that stays WAL-only, crash again: recovery
	// must stitch snapshot + replayed tail.
	if err := re1.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := re1.InsertBatch(inserts[40:70]); err != nil {
		t.Fatal(err)
	}
	if st := re1.Stats(); st.Compactions != 1 {
		t.Fatalf("Stats.Compactions = %d, want 1", st.Compactions)
	}
	re1 = nil

	re2, err := asrs.NewEngine(seedDS, opt)
	if err != nil {
		t.Fatalf("recovery 2: %v", err)
	}
	objectsEqual(t, "recovery-2", re2.IngestedObjects(), inserts[:70])

	combined := &asrs.Dataset{Schema: full.Schema, Objects: full.Objects[:len(seedDS.Objects)+70]}
	oracle, err := asrs.NewEngine(combined, asrs.EngineOptions{Search: asrs.Options{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	for i := range reqs {
		respEqual(t, "post-recovery", i, re2.Query(reqs[i]), oracle.Query(reqs[i]))
	}
	if err := re2.Close(); err != nil {
		t.Fatal(err)
	}

	// A reopen with a foreign seed schema must refuse the snapshot/WAL
	// rather than serve garbage.
	foreign := asrs.MustSchema(
		asrs.Attribute{Name: "kind", Kind: asrs.Categorical, Domain: []string{"x", "y"}},
		asrs.Attribute{Name: "score", Kind: asrs.Numeric},
	)
	other := &asrs.Dataset{Schema: foreign, Objects: []asrs.Object{
		{Loc: asrs.Point{X: 1, Y: 2}, Values: []asrs.Value{{Cat: 0}, {Num: 3}}},
	}}
	if _, err := asrs.NewEngine(other, opt); err == nil {
		t.Fatal("recovery accepted a different schema's snapshot")
	}
}

// TestIngestRecoveredSnapshotAfterWALGap: truncating the WAL past the
// snapshot watermark (dropping acknowledged records) must refuse to
// boot instead of silently serving a hole.
func TestIngestRecoveredSnapshotAfterWALGap(t *testing.T) {
	_, seedDS, inserts, _ := streamFixture(t, 2, 7, 30)
	dir := t.TempDir()
	opt := asrs.EngineOptions{Ingest: asrs.IngestOptions{WALDir: dir, CompactAt: -1}}
	eng, err := asrs.NewEngine(seedDS, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.InsertBatch(inserts[:10]); err != nil {
		t.Fatal(err)
	}
	if err := eng.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := eng.InsertBatch(inserts[10:20]); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate the forbidden state: wipe the WAL but keep the snapshot,
	// then re-create a log whose LSNs restart below the watermark.
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range segs {
		if err := os.Remove(s); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := asrs.NewEngine(seedDS, opt); err == nil {
		t.Fatal("boot accepted a WAL reset underneath the snapshot watermark")
	}
}

// TestDeltaFoldRacesCompaction pins the delta fold-in against the
// compaction swap-in under the race detector: one goroutine drives
// insert→query pairs so nearly every query materializes a fresh epoch
// and folds the tail into the previous pyramid, while another loops
// Compact (snapshot rename + WAL truncation). Stats must show BOTH
// paths actually ran — folds and compactions — and the settled engine
// answers bit-identically to a rebuild.
func TestDeltaFoldRacesCompaction(t *testing.T) {
	full, seedDS, inserts, reqs := streamFixture(t, 4, 57, 120)
	eng, err := asrs.NewEngine(seedDS, asrs.EngineOptions{
		Ingest: asrs.IngestOptions{WALDir: t.TempDir(), Sync: asrs.SyncNever, CompactAt: -1},
		Search: asrs.Options{Workers: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Establish the base pyramid so the first post-insert epoch folds.
	if resp := eng.Query(reqs[0]); resp.Err != nil {
		t.Fatal(resp.Err)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	done := make(chan struct{})
	go func() {
		defer wg.Done()
		defer close(done)
		for i := 0; i < len(inserts); i += 4 {
			end := i + 4
			if end > len(inserts) {
				end = len(inserts)
			}
			if err := eng.InsertBatch(inserts[i:end]); err != nil {
				t.Errorf("insert: %v", err)
				return
			}
			if resp := eng.Query(reqs[i%len(reqs)]); resp.Err != nil {
				t.Errorf("query: %v", resp.Err)
				return
			}
		}
	}()
	go func() {
		// Compact continuously until the inserter finishes: a fixed
		// iteration count could drain before anything is staged (a no-op
		// Compact is uncounted), leaving the race unexercised.
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if err := eng.Compact(); err != nil {
				t.Errorf("compact: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}
	// The staged tail is non-empty unless a concurrent Compact already
	// covered it, so after this call Compactions >= 1 either way.
	if err := eng.Compact(); err != nil {
		t.Fatal(err)
	}

	st := eng.Stats()
	if st.PyramidFolds == 0 || st.Compactions == 0 {
		t.Fatalf("degenerate race schedule: %d folds, %d compactions — the two paths never overlapped",
			st.PyramidFolds, st.Compactions)
	}
	combined := &asrs.Dataset{Schema: full.Schema, Objects: append(append([]asrs.Object(nil), seedDS.Objects...), inserts...)}
	oracle, err := asrs.NewEngine(combined, asrs.EngineOptions{Search: asrs.Options{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	for i := range reqs {
		respEqual(t, "fold-vs-compact", i, eng.Query(reqs[i]), oracle.Query(reqs[i]))
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentInsertQueryCompact hammers inserts, queries, batches and
// compactions concurrently (run with -race), then checks the settled
// engine answers bit-identically to a fresh engine over exactly the
// objects it acknowledged.
func TestConcurrentInsertQueryCompact(t *testing.T) {
	full, seedDS, inserts, reqs := streamFixture(t, 4, 31, 120)
	dir := t.TempDir()
	eng, err := asrs.NewEngine(seedDS, asrs.EngineOptions{
		Ingest:           asrs.IngestOptions{WALDir: dir, Sync: asrs.SyncNever, CompactAt: 25},
		BatchParallelism: 2,
		Search:           asrs.Options{Workers: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < len(inserts); i += 8 {
			end := i + 8
			if end > len(inserts) {
				end = len(inserts)
			}
			if err := eng.InsertBatch(inserts[i:end]); err != nil {
				t.Errorf("insert: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			if resp := eng.Query(reqs[i%len(reqs)]); resp.Err != nil {
				t.Errorf("query: %v", resp.Err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			eng.QueryBatch(reqs)
			if err := eng.Compact(); err != nil {
				t.Errorf("compact: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}

	got := eng.IngestedObjects()
	objectsEqual(t, "settled", got, inserts)
	combined := &asrs.Dataset{Schema: full.Schema, Objects: append(append([]asrs.Object(nil), seedDS.Objects...), got...)}
	oracle, err := asrs.NewEngine(combined, asrs.EngineOptions{Search: asrs.Options{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	for i := range reqs {
		respEqual(t, "settled", i, eng.Query(reqs[i]), oracle.Query(reqs[i]))
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	_ = full
}
