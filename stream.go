package asrs

import (
	"fmt"
	"path/filepath"

	"asrs/internal/attr"
	"asrs/internal/faultinject"
	"asrs/internal/persist"
	"asrs/internal/wal"
)

// Streaming ingest: Engine.Insert/InsertBatch append objects to the
// served corpus while queries keep running (DESIGN.md §10).
//
// The logical dataset is the seed corpus followed by every ingested
// object in append (LSN) order. Inserts are O(delta): validate, append
// one WAL record (when durable), and stage the objects in memory. The
// first query after an insert materializes a fresh immutable epoch view
// — a combined dataset plus per-composite index and pyramid caches —
// and the pyramid is produced by folding the appended tail into the
// previous epoch's pyramid (BuildPyramidDelta), bit-identical to a
// from-scratch rebuild. Queries in flight keep their captured view;
// they answer against the epoch that was current when they arrived.
//
// Durability (IngestOptions.WALDir set):
//
//   - Every InsertBatch appends one checksummed WAL record and is
//     acknowledged per the sync policy: SyncAlways fsyncs before the
//     ack (no acknowledged insert is ever lost), SyncBatch fsyncs once
//     per batch (same today — one record per batch — but the intent is
//     amortization if batches ever split), SyncNever leaves flushing to
//     the OS (a crash may lose the tail; replay still never yields a
//     torn or reordered state).
//   - Background compaction folds the staged objects into an ingest
//     snapshot (persist.SaveIngestSnapshot: temp + fsync + rename, the
//     applied-LSN watermark INSIDE the file) and only then truncates
//     the WAL below the watermark. A crash at any instant — mid-append,
//     mid-snapshot, between rename and truncate — recovers to
//     seed ++ snapshot ++ replay(lsn > watermark): every acknowledged
//     insert survives, none is applied twice.
//   - Recovery happens in NewEngine: it loads the snapshot, replays the
//     WAL, and refuses to start if the WAL has been truncated past the
//     snapshot's watermark (a gap would silently drop acknowledged
//     writes).

// WAL sync policies, re-exported for EngineOptions.
type SyncPolicy = wal.SyncPolicy

const (
	// SyncAlways fsyncs every WAL append before acknowledging it.
	SyncAlways = wal.SyncAlways
	// SyncBatch fsyncs once per InsertBatch.
	SyncBatch = wal.SyncBatch
	// SyncNever never fsyncs the WAL (the OS flushes eventually).
	SyncNever = wal.SyncNever
)

// ParseSyncPolicy parses "always", "batch" or "never".
func ParseSyncPolicy(s string) (SyncPolicy, error) { return wal.ParseSyncPolicy(s) }

// ErrEngineClosed reports an insert against a closed engine.
var ErrEngineClosed = fmt.Errorf("asrs: engine closed")

// IngestOptions configures streaming ingest.
type IngestOptions struct {
	// WALDir, when non-empty, makes ingest durable: inserts are
	// write-ahead logged under this directory and replayed by NewEngine
	// after a crash. Empty means memory-only ingest (Insert works,
	// nothing survives a restart).
	WALDir string
	// Sync is the WAL sync policy (default SyncAlways).
	Sync SyncPolicy
	// SegmentBytes caps one WAL segment before rotation
	// (default wal.DefaultSegmentBytes).
	SegmentBytes int64
	// CompactAt triggers background compaction once this many staged
	// objects are not yet covered by the ingest snapshot. 0 selects the
	// default (8192); negative disables automatic compaction (explicit
	// Compact calls still work).
	CompactAt int
}

// defaultCompactAt is the automatic compaction threshold when
// IngestOptions.CompactAt is zero.
const defaultCompactAt = 8192

// ingestSnapName is the snapshot file inside WALDir.
const ingestSnapName = "ingest.snap"

func (e *Engine) snapPath() string {
	return filepath.Join(e.opt.Ingest.WALDir, ingestSnapName)
}

func (e *Engine) compactAt() int {
	if e.opt.Ingest.CompactAt == 0 {
		return defaultCompactAt
	}
	return e.opt.Ingest.CompactAt
}

// initIngest recovers durable ingest state (snapshot + WAL replay) and
// opens the log for appending. Called by NewEngine when WALDir is set.
func (e *Engine) initIngest() error {
	dir := e.opt.Ingest.WALDir
	staged, appliedLSN, err := persist.LoadIngestSnapshot(e.snapPath(), e.ds.Schema)
	if err != nil {
		return fmt.Errorf("asrs: loading ingest snapshot: %w", err)
	}
	snapObjs := len(staged) // the snapshot's own objects; replay only appends after them
	firstReplayed := uint64(0)
	l, err := wal.Open(dir, wal.Options{Sync: e.opt.Ingest.Sync, SegmentBytes: e.opt.Ingest.SegmentBytes},
		func(lsn uint64, payload []byte) error {
			if firstReplayed == 0 {
				firstReplayed = lsn
			}
			if lsn <= appliedLSN {
				return nil // already durable in the snapshot
			}
			objs, derr := persist.DecodeObjects(e.ds.Schema, payload)
			if derr != nil {
				return derr
			}
			staged = append(staged, objs...)
			return nil
		})
	if err != nil {
		return fmt.Errorf("asrs: replaying ingest WAL: %w", err)
	}
	// Gap checks: a WAL truncated past the snapshot watermark (or reset
	// underneath it) has dropped acknowledged inserts; starting anyway
	// would silently serve a hole.
	if firstReplayed > appliedLSN+1 {
		l.Close()
		return fmt.Errorf("asrs: ingest WAL starts at LSN %d but the snapshot covers only through %d: acknowledged inserts are missing", firstReplayed, appliedLSN)
	}
	if next := l.NextLSN(); next <= appliedLSN {
		l.Close()
		return fmt.Errorf("asrs: ingest WAL next LSN %d is behind the snapshot watermark %d: the log was reset underneath the snapshot", next, appliedLSN)
	}
	e.wlog = l
	e.staged = staged
	e.stagedLen.Store(int64(len(staged)))
	e.lastLSN = l.NextLSN() - 1
	e.snapCount = snapObjs
	e.snapLSN = appliedLSN
	e.nIngested.Store(int64(len(staged)))
	return nil
}

// Insert appends one object to the served corpus. See InsertBatch.
func (e *Engine) Insert(obj Object) error {
	return e.InsertBatch([]Object{obj})
}

// InsertBatch appends a batch of objects to the served corpus as one
// atomic, durable unit: the whole batch is one WAL record, acknowledged
// only after it is staged (and synced, per the policy). The objects are
// validated against the engine's schema and deep-copied; the caller may
// reuse the slice. Inserted objects become visible to queries issued
// after InsertBatch returns — the next query materializes a fresh epoch
// folding them in — and answers are bit-identical to an engine built
// over the combined corpus from scratch.
func (e *Engine) InsertBatch(objs []Object) error {
	if len(objs) == 0 {
		return nil
	}
	probe := &attr.Dataset{Schema: e.ds.Schema, Objects: objs}
	if err := probe.Validate(); err != nil {
		return fmt.Errorf("asrs: insert: %w", err)
	}

	e.ingestMu.Lock()
	if e.ingestClosed {
		e.ingestMu.Unlock()
		return ErrEngineClosed
	}
	if e.wlog != nil {
		payload := persist.EncodeObjects(e.ds.Schema, objs)
		lsn, err := e.wlog.Append(payload)
		if err != nil {
			e.ingestMu.Unlock()
			return fmt.Errorf("asrs: insert: %w", err)
		}
		if e.opt.Ingest.Sync == SyncBatch {
			if err := e.wlog.Sync(); err != nil {
				e.ingestMu.Unlock()
				return fmt.Errorf("asrs: insert: %w", err)
			}
		}
		e.lastLSN = lsn
	}
	for i := range objs {
		o := objs[i]
		o.Values = append([]Value(nil), o.Values...)
		e.staged = append(e.staged, o)
	}
	pending := len(e.staged) - e.snapCount
	e.stagedLen.Store(int64(len(e.staged)))
	e.ingestMu.Unlock()

	e.nIngested.Add(int64(len(objs)))
	if e.wlog != nil && e.compactAt() > 0 && pending >= e.compactAt() {
		e.compactAsync()
	}
	return nil
}

// IngestedObjects returns a copy of every object ingested since the
// seed corpus, in insertion (LSN) order. The engine's logical dataset
// is Dataset().Objects ++ IngestedObjects().
func (e *Engine) IngestedObjects() []Object {
	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()
	out := make([]Object, len(e.staged))
	copy(out, e.staged)
	return out
}

// compactAsync runs one compaction in the background, coalescing
// concurrent triggers. Errors are counted (Stats) and retried at the
// next trigger.
func (e *Engine) compactAsync() {
	if !e.compacting.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer e.compacting.Store(false)
		if err := e.Compact(); err != nil {
			e.nCompactErrs.Add(1)
		}
	}()
}

// Compact folds the staged objects into the durable ingest snapshot and
// truncates the WAL below the snapshot's watermark. The snapshot rename
// is the single commit point: a crash before it leaves the previous
// snapshot + full WAL (replay recovers everything), a crash after it
// but before the truncation leaves an over-long WAL whose already-
// covered records replay as no-ops. Safe to call concurrently with
// inserts and queries; a no-op when nothing new is staged or the engine
// is not durable.
func (e *Engine) Compact() error {
	if e.wlog == nil {
		return nil
	}
	e.ingestMu.Lock()
	if e.ingestClosed {
		e.ingestMu.Unlock()
		return ErrEngineClosed
	}
	k := len(e.staged)
	lsn := e.lastLSN
	prevCount, prevLSN := e.snapCount, e.snapLSN
	staged := e.staged[:k:k]
	e.ingestMu.Unlock()
	if k == prevCount && lsn == prevLSN {
		return nil
	}

	// (k, lsn) is a consistent pair — both were advanced under ingestMu
	// by the same inserts — and staged[:k] is stable: the slice only
	// ever grows by append.
	if err := persist.SaveIngestSnapshot(e.snapPath(), e.ds.Schema, staged, lsn); err != nil {
		return fmt.Errorf("asrs: compacting ingest: %w", err)
	}
	if f, ok := faultinject.Check("compact.truncate"); ok {
		if f.Action == faultinject.ActSleep {
			f.Sleep()
		} else {
			return f.Err()
		}
	}
	if err := e.wlog.TruncateBefore(lsn + 1); err != nil {
		return fmt.Errorf("asrs: truncating ingest WAL: %w", err)
	}
	e.ingestMu.Lock()
	if k > e.snapCount {
		e.snapCount = k
	}
	if lsn > e.snapLSN {
		e.snapLSN = lsn
	}
	e.ingestMu.Unlock()
	e.nCompactions.Add(1)
	return nil
}

// Close ends ingest: it rejects further inserts and closes the WAL
// (syncing per the policy). Queries keep working against the last
// epoch. Idempotent.
func (e *Engine) Close() error {
	e.ingestMu.Lock()
	if e.ingestClosed {
		e.ingestMu.Unlock()
		return nil
	}
	e.ingestClosed = true
	w := e.wlog
	e.ingestMu.Unlock()
	if w != nil {
		return w.Close()
	}
	return nil
}
