package asrs_test

import (
	"bytes"
	"math"
	"testing"

	"asrs"
	"asrs/internal/dataset"
)

// TestCSVRoundTripPreservesAnswers: serializing a corpus to CSV and
// loading it back must not change any search answer — the end-to-end
// guarantee behind cmd/asrsgen.
func TestCSVRoundTripPreservesAnswers(t *testing.T) {
	ds := dataset.SingaporePOI(42)
	var buf bytes.Buffer
	if err := asrs.WriteDatasetCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}
	loaded, err := asrs.ReadDatasetCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}

	build := func(d *asrs.Dataset) (asrs.Rect, asrs.Result) {
		f, err := asrs.NewComposite(d.Schema, asrs.AggSpec{Kind: asrs.Distribution, Attr: "category"})
		if err != nil {
			t.Fatal(err)
		}
		orchard := dataset.SingaporeDistricts()[0]
		q, err := asrs.QueryFromRegion(d, f, nil, orchard.Rect)
		if err != nil {
			t.Fatal(err)
		}
		region, res, _, err := asrs.SearchExcluding(d, orchard.Rect.Width(), orchard.Rect.Height(), q, orchard.Rect, asrs.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return region, res
	}

	r1, res1 := build(ds)
	r2, res2 := build(loaded)
	if math.Abs(res1.Dist-res2.Dist) > 1e-9 {
		t.Fatalf("round trip changed answer distance: %g vs %g", res1.Dist, res2.Dist)
	}
	if math.Abs(r1.MinX-r2.MinX) > 1e-9 || math.Abs(r1.MinY-r2.MinY) > 1e-9 {
		t.Fatalf("round trip moved answer region: %v vs %v", r1, r2)
	}
}
