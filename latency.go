package asrs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// latBuckets sizes the engine's latency histogram: bucket 0 counts
// sub-microsecond searches, bucket i ≥ 1 covers [2^(9+i), 2^(10+i)) ns
// — power-of-two resolution from 1 µs up past a minute, which is ±50%
// accuracy on the tail percentiles for the price of 28 atomic counters
// and no locks on the serving path.
const latBuckets = 28

// latencyHist is a lock-free log₂ latency histogram. Observations are
// single atomic increments; snapshots read the buckets individually, so
// a snapshot taken mid-traffic may be skewed by in-flight requests —
// the same contract as the engine's other serving counters.
type latencyHist struct {
	buckets [latBuckets]atomic.Int64
}

// observe records one request latency.
func (h *latencyHist) observe(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	i := bits.Len64(uint64(ns) >> 10)
	if i >= latBuckets {
		i = latBuckets - 1
	}
	h.buckets[i].Add(1)
}

// latBucketBounds returns bucket i's [lo, hi) bounds in nanoseconds.
func latBucketBounds(i int) (lo, hi float64) {
	if i == 0 {
		return 0, 1 << 10
	}
	return float64(int64(1) << (9 + i)), float64(int64(1) << (10 + i))
}

// summary snapshots the histogram and returns the observation count and
// the p50/p95/p99 estimates in milliseconds (zeros when empty). Each
// percentile is interpolated linearly inside its bucket, the standard
// histogram-quantile estimate.
func (h *latencyHist) summary() (count int64, p50, p95, p99 float64) {
	var snap [latBuckets]int64
	for i := range snap {
		snap[i] = h.buckets[i].Load()
		count += snap[i]
	}
	if count == 0 {
		return 0, 0, 0, 0
	}
	quantile := func(q float64) float64 {
		rank := q * float64(count)
		var cum float64
		for i, c := range snap {
			if c == 0 {
				continue
			}
			fc := float64(c)
			if cum+fc >= rank {
				lo, hi := latBucketBounds(i)
				frac := (rank - cum) / fc
				return (lo + (hi-lo)*frac) / 1e6
			}
			cum += fc
		}
		_, hi := latBucketBounds(latBuckets - 1)
		return hi / 1e6
	}
	return count, quantile(0.50), quantile(0.95), quantile(0.99)
}
