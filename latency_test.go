package asrs_test

import (
	"testing"

	"asrs"
	"asrs/internal/dataset"
)

// TestEngineLatencyStats: executed searches feed the latency histogram
// — one observation per search, with batched duplicates riding their
// canonical — and the percentile estimates come back ordered, positive
// and bounded by the histogram's range.
func TestEngineLatencyStats(t *testing.T) {
	ds := dataset.Tweet(3000, 11)
	bounds := ds.Bounds()
	a, b := bounds.Width()/50, bounds.Height()/50
	q, err := dataset.F1(ds, a, b)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := asrs.NewEngine(ds, asrs.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st := eng.Stats(); st.LatencyCount != 0 || st.LatencyP50Ms != 0 {
		t.Fatalf("fresh engine has latency stats: %+v", st)
	}
	req := asrs.QueryRequest{Query: q, A: a, B: b}
	if resp := eng.Query(req); resp.Err != nil {
		t.Fatal(resp.Err)
	}
	st := eng.Stats()
	if st.LatencyCount != 1 {
		t.Fatalf("LatencyCount = %d after one query", st.LatencyCount)
	}
	if st.LatencyP50Ms <= 0 {
		t.Fatalf("p50 = %v after a real search", st.LatencyP50Ms)
	}

	// A batch of identical requests dedups to one canonical search: the
	// histogram must record the one execution, not every copy.
	batch := []asrs.QueryRequest{req, req, req, req}
	for _, r := range eng.QueryBatch(batch) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	st = eng.Stats()
	if st.LatencyCount != 2 {
		t.Fatalf("LatencyCount = %d, want 2 (dedup copies must not observe)", st.LatencyCount)
	}
	if st.DedupHits != 3 {
		t.Fatalf("DedupHits = %d, want 3", st.DedupHits)
	}
	if !(st.LatencyP50Ms <= st.LatencyP95Ms && st.LatencyP95Ms <= st.LatencyP99Ms) {
		t.Fatalf("percentiles out of order: %+v", st)
	}
	if st.LatencyP99Ms > 1e6 {
		t.Fatalf("p99 out of histogram range: %v ms", st.LatencyP99Ms)
	}
}
