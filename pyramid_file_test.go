package asrs_test

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"asrs"
	"asrs/internal/dataset"
)

func pyrFileFixture(t *testing.T) (*asrs.Dataset, *asrs.Composite) {
	t.Helper()
	ds := dataset.POISyn(600, 3)
	f, err := asrs.NewComposite(ds.Schema,
		asrs.AggSpec{Kind: asrs.Sum, Attr: "visits"},
		asrs.AggSpec{Kind: asrs.Average, Attr: "rating"},
	)
	if err != nil {
		t.Fatal(err)
	}
	return ds, f
}

// TestLoadOrBuildPyramidFileLifecycle walks the status machine:
// first boot builds, second boot loads, a corrupted file is
// quarantined and rebuilt, and the quarantined evidence survives.
func TestLoadOrBuildPyramidFileLifecycle(t *testing.T) {
	ds, f := pyrFileFixture(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "pyr.bin")

	_, status, err := asrs.LoadOrBuildPyramidFile(path, ds, f)
	if err != nil || status != asrs.PyramidBuilt {
		t.Fatalf("first boot: status=%v err=%v, want built", status, err)
	}
	_, status, err = asrs.LoadOrBuildPyramidFile(path, ds, f)
	if err != nil || status != asrs.PyramidLoaded {
		t.Fatalf("second boot: status=%v err=%v, want loaded", status, err)
	}

	// Tear the file's tail: a crash mid-write on a non-atomic filesystem.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	p, status, err := asrs.LoadOrBuildPyramidFile(path, ds, f)
	if err != nil || status != asrs.PyramidRebuilt {
		t.Fatalf("corrupt boot: status=%v err=%v, want rebuilt", status, err)
	}
	if p == nil {
		t.Fatal("rebuilt pyramid is nil")
	}

	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	quarantined := 0
	for _, e := range ents {
		if strings.Contains(e.Name(), ".corrupt-") && !strings.HasSuffix(e.Name(), ".manifest") {
			quarantined++
		}
	}
	if quarantined != 1 {
		t.Fatalf("want 1 quarantined file, found %d (%v)", quarantined, ents)
	}

	// The rebuilt file must verify on the next boot.
	_, status, err = asrs.LoadOrBuildPyramidFile(path, ds, f)
	if err != nil || status != asrs.PyramidLoaded {
		t.Fatalf("post-rebuild boot: status=%v err=%v, want loaded", status, err)
	}
}

// TestLoadOrBuildPyramidFileMismatchIsFatal: a pyramid built for a
// different composite must NOT be quarantined or silently rebuilt —
// it is a deployment error the operator has to see.
func TestLoadOrBuildPyramidFileMismatchIsFatal(t *testing.T) {
	ds, f := pyrFileFixture(t)
	other, err := asrs.NewComposite(ds.Schema, asrs.AggSpec{Kind: asrs.Count})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "pyr.bin")
	if _, _, err := asrs.LoadOrBuildPyramidFile(path, ds, other); err != nil {
		t.Fatal(err)
	}

	_, _, err = asrs.LoadOrBuildPyramidFile(path, ds, f)
	if !errors.Is(err, asrs.ErrPyramidMismatch) {
		t.Fatalf("err = %v, want ErrPyramidMismatch", err)
	}
	// The artifact must be untouched: same path, no quarantine sibling.
	if _, serr := os.Stat(path); serr != nil {
		t.Fatalf("mismatched artifact was moved: %v", serr)
	}
}

// TestSaveLoadPyramidFileAnswers: the exported file API round-trips
// bit-identical answers.
func TestSaveLoadPyramidFileAnswers(t *testing.T) {
	ds, f := pyrFileFixture(t)
	p, _, err := asrs.LoadOrBuildPyramidFile(filepath.Join(t.TempDir(), "a.bin"), ds, f)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "b.bin")
	if err := asrs.SavePyramidFile(path, p); err != nil {
		t.Fatal(err)
	}
	loaded, err := asrs.LoadPyramidFile(path, ds, f)
	if err != nil {
		t.Fatal(err)
	}

	target := make([]float64, f.Dims())
	target[0] = 10
	q := asrs.Query{F: f, Target: target}
	r1, res1, _, err := asrs.Search(ds, 5, 5, q, asrs.Options{Pyramid: p})
	if err != nil {
		t.Fatal(err)
	}
	r2, res2, _, err := asrs.Search(ds, 5, 5, q, asrs.Options{Pyramid: loaded})
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 || res1.Dist != res2.Dist || res1.Point != res2.Point {
		t.Fatalf("answers diverge: %v/%+v vs %v/%+v", r1, res1, r2, res2)
	}
}
