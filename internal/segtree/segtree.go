// Package segtree provides segment-tree substrates for the sweep-style
// algorithms of this library:
//
//   - Tree, a lazy segment tree over m positions supporting range-add
//     updates and global max queries with argmax position — the classic
//     substrate for the Optimal Enclosure (OE) algorithm for MaxRS
//     (Nandy & Bhattacharya 1995; Choi et al. 2012): sweep the plane in
//     y, range-add each rectangle's x-interval, and track the stabbing
//     maximum;
//   - Sparse2D, a two-dimensional sparse table over a grid answering
//     rectangular range min/max ("order statistic") queries in O(1) —
//     the substrate of the min/max companion structure that lets the
//     DS-Search SAT layer serve composites with fA min/max slots
//     (internal/dssearch, DESIGN.md §2 and §6).
package segtree

import (
	"fmt"
	"math"
)

// Tree is a segment tree over positions [0, n) with range-add and max
// query. The zero Tree is not usable; construct with New.
type Tree struct {
	n    int
	max  []float64 // max of the subtree, including pending add
	add  []float64 // pending add applied to the whole subtree
	arg  []int     // leftmost position attaining max
	size int       // number of internal nodes allocated (4n)
}

// New returns a tree over n positions, all initialized to 0. n must be
// positive.
func New(n int) *Tree {
	if n <= 0 {
		panic(fmt.Sprintf("segtree: non-positive size %d", n))
	}
	t := &Tree{n: n, size: 4 * n}
	t.max = make([]float64, t.size)
	t.add = make([]float64, t.size)
	t.arg = make([]int, t.size)
	t.build(1, 0, n-1)
	return t
}

func (t *Tree) build(node, lo, hi int) {
	t.arg[node] = lo
	if lo == hi {
		return
	}
	mid := (lo + hi) / 2
	t.build(2*node, lo, mid)
	t.build(2*node+1, mid+1, hi)
}

// Len returns the number of positions.
func (t *Tree) Len() int { return t.n }

// Add adds delta to every position in [l, r] (inclusive). Out-of-range
// portions are clipped; an empty effective range is a no-op.
func (t *Tree) Add(l, r int, delta float64) {
	if l < 0 {
		l = 0
	}
	if r >= t.n {
		r = t.n - 1
	}
	if l > r {
		return
	}
	t.update(1, 0, t.n-1, l, r, delta)
}

func (t *Tree) update(node, lo, hi, l, r int, delta float64) {
	if r < lo || hi < l {
		return
	}
	if l <= lo && hi <= r {
		t.max[node] += delta
		t.add[node] += delta
		return
	}
	mid := (lo + hi) / 2
	t.update(2*node, lo, mid, l, r, delta)
	t.update(2*node+1, mid+1, hi, l, r, delta)
	t.pull(node)
}

func (t *Tree) pull(node int) {
	left, right := 2*node, 2*node+1
	if t.max[left] >= t.max[right] {
		t.max[node] = t.max[left] + t.add[node]
		t.arg[node] = t.arg[left]
	} else {
		t.max[node] = t.max[right] + t.add[node]
		t.arg[node] = t.arg[right]
	}
}

// Max returns the maximum value over all positions and the leftmost
// position attaining it.
func (t *Tree) Max() (float64, int) { return t.max[1], t.arg[1] }

// Value returns the value at a single position (for testing/debugging).
func (t *Tree) Value(pos int) float64 {
	if pos < 0 || pos >= t.n {
		panic(fmt.Sprintf("segtree: position %d out of range [0,%d)", pos, t.n))
	}
	node, lo, hi := 1, 0, t.n-1
	var acc float64
	for lo != hi {
		acc += t.add[node]
		mid := (lo + hi) / 2
		if pos <= mid {
			node, hi = 2*node, mid
		} else {
			node, lo = 2*node+1, mid+1
		}
	}
	return acc + t.max[node]
}

// Sparse2D is a two-dimensional sparse table over a rows×width grid,
// each cell carrying `slots` (min, max) pairs. After an
// O(rows·width·log(rows)·log(width)·slots) build it answers both
// "min/max of slot s over columns [l, r) of row j" (QueryRow) and
// "min/max of slot s over the rectangle [j0, j1)×[i0, i1)"
// (QueryRegion) in O(1), with zero allocations on rebuild when the
// dimensions fit the retained slabs.
//
// The intended use is order-statistic summed-area-table companions:
// prefix sums telescope but minima/maxima do not, so rectangular
// min/max regions are answered by overlapping power-of-two blocks
// (min/max are idempotent, so double-counting the overlap is harmless)
// instead of four-corner lookups. The zero value is ready; call Reset
// before folding leaves.
type Sparse2D struct {
	rows, width, slots int
	li, lj             int // level counts: 1+floor(log2(width)), 1+floor(log2(rows))
	plane              int // floats per level: rows*width*slots
	mn, mx             []float64
	logs               []uint8 // logs[k] = floor(log2(k)), k in [1, max(rows,width)]
}

// block returns the base offset of the (kj, ki) level entry at (j, i):
// the fold of the rectangle [j, j+2^kj) × [i, i+2^ki).
func (t *Sparse2D) block(kj, ki, j, i int) int {
	return (kj*t.li+ki)*t.plane + (j*t.width+i)*t.slots
}

// Reset re-dimensions the table to rows×width with the given slot count
// and resets the leaf level to the fold identities (+Inf for min, -Inf
// for max), reusing the backing slabs when they fit.
func (t *Sparse2D) Reset(rows, width, slots int) {
	if rows < 1 || width < 1 || slots < 1 {
		panic(fmt.Sprintf("segtree: invalid Sparse2D dimensions %dx%dx%d", rows, width, slots))
	}
	t.rows, t.width, t.slots = rows, width, slots
	t.li, t.lj = 1+log2floor(width), 1+log2floor(rows)
	t.plane = rows * width * slots
	need := t.lj * t.li * t.plane
	if cap(t.mn) < need {
		t.mn = make([]float64, need)
		t.mx = make([]float64, need)
	} else {
		t.mn = t.mn[:need]
		t.mx = t.mx[:need]
	}
	side := width
	if rows > side {
		side = rows
	}
	if cap(t.logs) < side+1 {
		t.logs = make([]uint8, side+1)
	} else {
		t.logs = t.logs[:side+1]
	}
	for k := 2; k <= side; k++ {
		t.logs[k] = t.logs[k/2] + 1
	}
	for i := 0; i < t.plane; i++ {
		t.mn[i] = math.Inf(1)
		t.mx[i] = math.Inf(-1)
	}
}

func log2floor(n int) int {
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}

// Fold folds value v into slot `slot` of leaf (row, i). Must be
// followed by Build before querying.
func (t *Sparse2D) Fold(row, i, slot int, v float64) {
	at := (row*t.width+i)*t.slots + slot
	if v < t.mn[at] {
		t.mn[at] = v
	}
	if v > t.mx[at] {
		t.mx[at] = v
	}
}

// Build fills the (kj, ki) levels from the leaves.
func (t *Sparse2D) Build() {
	s := t.slots
	// Column levels within each row: (0, ki) from (0, ki-1).
	for ki := 1; ki < t.li; ki++ {
		half := 1 << (ki - 1)
		for j := 0; j < t.rows; j++ {
			for i := 0; i+2*half <= t.width; i++ {
				d := t.block(0, ki, j, i)
				a := t.block(0, ki-1, j, i)
				b := t.block(0, ki-1, j, i+half)
				foldInto(t.mn[d:d+s], t.mx[d:d+s], t.mn[a:a+s], t.mx[a:a+s], t.mn[b:b+s], t.mx[b:b+s])
			}
		}
	}
	// Row levels: (kj, ki) from (kj-1, ki), every ki.
	for kj := 1; kj < t.lj; kj++ {
		half := 1 << (kj - 1)
		for ki := 0; ki < t.li; ki++ {
			for j := 0; j+2*half <= t.rows; j++ {
				for i := 0; i+(1<<ki) <= t.width; i++ {
					d := t.block(kj, ki, j, i)
					a := t.block(kj-1, ki, j, i)
					b := t.block(kj-1, ki, j+half, i)
					foldInto(t.mn[d:d+s], t.mx[d:d+s], t.mn[a:a+s], t.mx[a:a+s], t.mn[b:b+s], t.mx[b:b+s])
				}
			}
		}
	}
}

// foldInto writes the slot-wise fold of (amn,amx) and (bmn,bmx) into
// (dmn,dmx).
func foldInto(dmn, dmx, amn, amx, bmn, bmx []float64) {
	for s := range dmn {
		mn := amn[s]
		if bmn[s] < mn {
			mn = bmn[s]
		}
		dmn[s] = mn
		mx := amx[s]
		if bmx[s] > mx {
			mx = bmx[s]
		}
		dmx[s] = mx
	}
}

// foldBlock folds one table entry into mn/mx.
func (t *Sparse2D) foldBlock(at int, mn, mx []float64) {
	for s := 0; s < t.slots; s++ {
		if t.mn[at+s] < mn[s] {
			mn[s] = t.mn[at+s]
		}
		if t.mx[at+s] > mx[s] {
			mx[s] = t.mx[at+s]
		}
	}
}

// QueryRow folds the min/max of every slot over columns [l, r) of row
// into mn/mx (length >= slots; existing contents are kept as fold
// seeds, so callers can accumulate across several regions). Empty or
// out-of-range portions fold nothing. O(1): two overlapping blocks.
func (t *Sparse2D) QueryRow(row, l, r int, mn, mx []float64) {
	t.QueryRegion(row, row+1, l, r, mn, mx)
}

// Query is an alias for QueryRow, preserving the fold-accumulate
// contract of the previous per-row segment-tree bank.
func (t *Sparse2D) Query(row, l, r int, mn, mx []float64) {
	t.QueryRegion(row, row+1, l, r, mn, mx)
}

// QueryRegion folds the min/max of every slot over the rectangle of
// rows [j0, j1) × columns [i0, i1) into mn/mx (fold-accumulating, like
// QueryRow). Empty or out-of-range portions fold nothing. O(1): four
// overlapping power-of-two blocks.
func (t *Sparse2D) QueryRegion(j0, j1, i0, i1 int, mn, mx []float64) {
	if j0 < 0 {
		j0 = 0
	}
	if j1 > t.rows {
		j1 = t.rows
	}
	if i0 < 0 {
		i0 = 0
	}
	if i1 > t.width {
		i1 = t.width
	}
	if j0 >= j1 || i0 >= i1 {
		return
	}
	kj := int(t.logs[j1-j0])
	ki := int(t.logs[i1-i0])
	jb := j1 - (1 << kj)
	ib := i1 - (1 << ki)
	t.foldBlock(t.block(kj, ki, j0, i0), mn, mx)
	if ib != i0 {
		t.foldBlock(t.block(kj, ki, j0, ib), mn, mx)
	}
	if jb != j0 {
		t.foldBlock(t.block(kj, ki, jb, i0), mn, mx)
		if ib != i0 {
			t.foldBlock(t.block(kj, ki, jb, ib), mn, mx)
		}
	}
}
