// Package segtree provides a lazy segment tree over m positions supporting
// range-add updates and global max queries with argmax position. It is the
// classic substrate for the Optimal Enclosure (OE) algorithm for MaxRS
// (Nandy & Bhattacharya 1995; Choi et al. 2012): sweep the plane in y,
// range-add each rectangle's x-interval, and track the stabbing maximum.
package segtree

import "fmt"

// Tree is a segment tree over positions [0, n) with range-add and max
// query. The zero Tree is not usable; construct with New.
type Tree struct {
	n    int
	max  []float64 // max of the subtree, including pending add
	add  []float64 // pending add applied to the whole subtree
	arg  []int     // leftmost position attaining max
	size int       // number of internal nodes allocated (4n)
}

// New returns a tree over n positions, all initialized to 0. n must be
// positive.
func New(n int) *Tree {
	if n <= 0 {
		panic(fmt.Sprintf("segtree: non-positive size %d", n))
	}
	t := &Tree{n: n, size: 4 * n}
	t.max = make([]float64, t.size)
	t.add = make([]float64, t.size)
	t.arg = make([]int, t.size)
	t.build(1, 0, n-1)
	return t
}

func (t *Tree) build(node, lo, hi int) {
	t.arg[node] = lo
	if lo == hi {
		return
	}
	mid := (lo + hi) / 2
	t.build(2*node, lo, mid)
	t.build(2*node+1, mid+1, hi)
}

// Len returns the number of positions.
func (t *Tree) Len() int { return t.n }

// Add adds delta to every position in [l, r] (inclusive). Out-of-range
// portions are clipped; an empty effective range is a no-op.
func (t *Tree) Add(l, r int, delta float64) {
	if l < 0 {
		l = 0
	}
	if r >= t.n {
		r = t.n - 1
	}
	if l > r {
		return
	}
	t.update(1, 0, t.n-1, l, r, delta)
}

func (t *Tree) update(node, lo, hi, l, r int, delta float64) {
	if r < lo || hi < l {
		return
	}
	if l <= lo && hi <= r {
		t.max[node] += delta
		t.add[node] += delta
		return
	}
	mid := (lo + hi) / 2
	t.update(2*node, lo, mid, l, r, delta)
	t.update(2*node+1, mid+1, hi, l, r, delta)
	t.pull(node)
}

func (t *Tree) pull(node int) {
	left, right := 2*node, 2*node+1
	if t.max[left] >= t.max[right] {
		t.max[node] = t.max[left] + t.add[node]
		t.arg[node] = t.arg[left]
	} else {
		t.max[node] = t.max[right] + t.add[node]
		t.arg[node] = t.arg[right]
	}
}

// Max returns the maximum value over all positions and the leftmost
// position attaining it.
func (t *Tree) Max() (float64, int) { return t.max[1], t.arg[1] }

// Value returns the value at a single position (for testing/debugging).
func (t *Tree) Value(pos int) float64 {
	if pos < 0 || pos >= t.n {
		panic(fmt.Sprintf("segtree: position %d out of range [0,%d)", pos, t.n))
	}
	node, lo, hi := 1, 0, t.n-1
	var acc float64
	for lo != hi {
		acc += t.add[node]
		mid := (lo + hi) / 2
		if pos <= mid {
			node, hi = 2*node, mid
		} else {
			node, lo = 2*node+1, mid+1
		}
	}
	return acc + t.max[node]
}
