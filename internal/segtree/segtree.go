// Package segtree provides segment-tree substrates for the sweep-style
// algorithms of this library:
//
//   - Tree, a lazy segment tree over m positions supporting range-add
//     updates and global max queries with argmax position — the classic
//     substrate for the Optimal Enclosure (OE) algorithm for MaxRS
//     (Nandy & Bhattacharya 1995; Choi et al. 2012): sweep the plane in
//     y, range-add each rectangle's x-interval, and track the stabbing
//     maximum;
//   - MinMaxRows, a bank of static iterative segment trees over the rows
//     of a grid answering range min/max ("order statistic") queries —
//     the substrate of the min/max companion structure that lets the
//     DS-Search SAT layer serve composites with fA min/max slots
//     (internal/dssearch, DESIGN.md §2).
package segtree

import (
	"fmt"
	"math"
)

// Tree is a segment tree over positions [0, n) with range-add and max
// query. The zero Tree is not usable; construct with New.
type Tree struct {
	n    int
	max  []float64 // max of the subtree, including pending add
	add  []float64 // pending add applied to the whole subtree
	arg  []int     // leftmost position attaining max
	size int       // number of internal nodes allocated (4n)
}

// New returns a tree over n positions, all initialized to 0. n must be
// positive.
func New(n int) *Tree {
	if n <= 0 {
		panic(fmt.Sprintf("segtree: non-positive size %d", n))
	}
	t := &Tree{n: n, size: 4 * n}
	t.max = make([]float64, t.size)
	t.add = make([]float64, t.size)
	t.arg = make([]int, t.size)
	t.build(1, 0, n-1)
	return t
}

func (t *Tree) build(node, lo, hi int) {
	t.arg[node] = lo
	if lo == hi {
		return
	}
	mid := (lo + hi) / 2
	t.build(2*node, lo, mid)
	t.build(2*node+1, mid+1, hi)
}

// Len returns the number of positions.
func (t *Tree) Len() int { return t.n }

// Add adds delta to every position in [l, r] (inclusive). Out-of-range
// portions are clipped; an empty effective range is a no-op.
func (t *Tree) Add(l, r int, delta float64) {
	if l < 0 {
		l = 0
	}
	if r >= t.n {
		r = t.n - 1
	}
	if l > r {
		return
	}
	t.update(1, 0, t.n-1, l, r, delta)
}

func (t *Tree) update(node, lo, hi, l, r int, delta float64) {
	if r < lo || hi < l {
		return
	}
	if l <= lo && hi <= r {
		t.max[node] += delta
		t.add[node] += delta
		return
	}
	mid := (lo + hi) / 2
	t.update(2*node, lo, mid, l, r, delta)
	t.update(2*node+1, mid+1, hi, l, r, delta)
	t.pull(node)
}

func (t *Tree) pull(node int) {
	left, right := 2*node, 2*node+1
	if t.max[left] >= t.max[right] {
		t.max[node] = t.max[left] + t.add[node]
		t.arg[node] = t.arg[left]
	} else {
		t.max[node] = t.max[right] + t.add[node]
		t.arg[node] = t.arg[right]
	}
}

// Max returns the maximum value over all positions and the leftmost
// position attaining it.
func (t *Tree) Max() (float64, int) { return t.max[1], t.arg[1] }

// Value returns the value at a single position (for testing/debugging).
func (t *Tree) Value(pos int) float64 {
	if pos < 0 || pos >= t.n {
		panic(fmt.Sprintf("segtree: position %d out of range [0,%d)", pos, t.n))
	}
	node, lo, hi := 1, 0, t.n-1
	var acc float64
	for lo != hi {
		acc += t.add[node]
		mid := (lo + hi) / 2
		if pos <= mid {
			node, hi = 2*node, mid
		} else {
			node, lo = 2*node+1, mid+1
		}
	}
	return acc + t.max[node]
}

// MinMaxRows is a bank of independent static segment trees, one per row
// of a rows×width grid, each leaf carrying `slots` (min, max) pairs. It
// answers "min and max of slot s over columns [l, r) of row j" in
// O(log width) after an O(rows·width·slots) build, with zero
// allocations on rebuild when the dimensions fit the retained slabs.
//
// The intended use is order-statistic summed-area-table companions:
// prefix sums telescope but minima/maxima do not, so rectangular
// min/max regions are answered by combining per-row range queries
// instead of four-corner lookups. The zero value is ready; call Reset
// before folding leaves.
type MinMaxRows struct {
	rows, width, slots int
	stride             int // floats per row: 2*width*slots
	mn, mx             []float64
}

// Reset re-dimensions the bank to rows×width with the given slot count
// and resets every node to the fold identities (+Inf for min, -Inf for
// max), reusing the backing slabs when they fit.
func (t *MinMaxRows) Reset(rows, width, slots int) {
	if rows < 1 || width < 1 || slots < 1 {
		panic(fmt.Sprintf("segtree: invalid MinMaxRows dimensions %dx%dx%d", rows, width, slots))
	}
	t.rows, t.width, t.slots = rows, width, slots
	t.stride = 2 * width * slots
	need := rows * t.stride
	if cap(t.mn) < need {
		t.mn = make([]float64, need)
		t.mx = make([]float64, need)
	} else {
		t.mn = t.mn[:need]
		t.mx = t.mx[:need]
	}
	for i := range t.mn {
		t.mn[i] = math.Inf(1)
		t.mx[i] = math.Inf(-1)
	}
}

// Fold folds value v into slot `slot` of leaf (row, i). Must be
// followed by Build before querying.
func (t *MinMaxRows) Fold(row, i, slot int, v float64) {
	at := row*t.stride + (t.width+i)*t.slots + slot
	if v < t.mn[at] {
		t.mn[at] = v
	}
	if v > t.mx[at] {
		t.mx[at] = v
	}
}

// Build fills the internal nodes of every row tree from the leaves.
func (t *MinMaxRows) Build() {
	for row := 0; row < t.rows; row++ {
		base := row * t.stride
		for k := t.width - 1; k >= 1; k-- {
			at := base + k*t.slots
			l := base + 2*k*t.slots
			r := l + t.slots
			for s := 0; s < t.slots; s++ {
				mn := t.mn[l+s]
				if t.mn[r+s] < mn {
					mn = t.mn[r+s]
				}
				t.mn[at+s] = mn
				mx := t.mx[l+s]
				if t.mx[r+s] > mx {
					mx = t.mx[r+s]
				}
				t.mx[at+s] = mx
			}
		}
	}
}

// Query folds the min/max of every slot over columns [l, r) of row into
// mn/mx (length >= slots; existing contents are kept as fold seeds, so
// callers can accumulate across several regions). Empty or out-of-range
// portions fold nothing.
func (t *MinMaxRows) Query(row, l, r int, mn, mx []float64) {
	if l < 0 {
		l = 0
	}
	if r > t.width {
		r = t.width
	}
	if row < 0 || row >= t.rows || l >= r {
		return
	}
	base := row * t.stride
	for l, r = l+t.width, r+t.width; l < r; l, r = l>>1, r>>1 {
		if l&1 == 1 {
			at := base + l*t.slots
			for s := 0; s < t.slots; s++ {
				if t.mn[at+s] < mn[s] {
					mn[s] = t.mn[at+s]
				}
				if t.mx[at+s] > mx[s] {
					mx[s] = t.mx[at+s]
				}
			}
			l++
		}
		if r&1 == 1 {
			r--
			at := base + r*t.slots
			for s := 0; s < t.slots; s++ {
				if t.mn[at+s] < mn[s] {
					mn[s] = t.mn[at+s]
				}
				if t.mx[at+s] > mx[s] {
					mx[s] = t.mx[at+s]
				}
			}
		}
	}
}
