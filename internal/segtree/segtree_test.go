package segtree_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"asrs/internal/segtree"
)

// naive is the reference implementation: a plain array.
type naive []float64

func (n naive) add(l, r int, d float64) {
	if l < 0 {
		l = 0
	}
	if r >= len(n) {
		r = len(n) - 1
	}
	for i := l; i <= r; i++ {
		n[i] += d
	}
}

func (n naive) max() (float64, int) {
	best, arg := n[0], 0
	for i, v := range n {
		if v > best {
			best, arg = v, i
		}
	}
	return best, arg
}

// TestAgainstNaive drives random range adds and compares max/argmax and
// point values with the reference array.
func TestAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(200)
		tree := segtree.New(n)
		ref := make(naive, n)
		for op := 0; op < 300; op++ {
			l := rng.Intn(n)
			r := l + rng.Intn(n-l)
			d := rng.NormFloat64()
			tree.Add(l, r, d)
			ref.add(l, r, d)

			wm, _ := ref.max()
			gm, ga := tree.Max()
			if diff := gm - wm; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("trial %d op %d: max %g vs %g", trial, op, gm, wm)
			}
			// The reported argmax must attain the max (positions may
			// differ under ties).
			if diff := ref[ga] - wm; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("trial %d op %d: argmax %d has %g, max is %g", trial, op, ga, ref[ga], wm)
			}
			p := rng.Intn(n)
			if diff := tree.Value(p) - ref[p]; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("trial %d op %d: value(%d) %g vs %g", trial, op, p, tree.Value(p), ref[p])
			}
		}
	}
}

// TestQuickRangeAdd: property-based batched comparison.
func TestQuickRangeAdd(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(64)
		tree := segtree.New(n)
		ref := make(naive, n)
		for op := 0; op < 50; op++ {
			l := rng.Intn(n)
			r := l + rng.Intn(n-l)
			d := float64(rng.Intn(21) - 10)
			tree.Add(l, r, d)
			ref.add(l, r, d)
		}
		gm, _ := tree.Max()
		wm, _ := ref.max()
		return gm == wm
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestClipping(t *testing.T) {
	tree := segtree.New(5)
	tree.Add(-10, 100, 2) // clipped to [0,4]
	if m, _ := tree.Max(); m != 2 {
		t.Fatalf("max = %g, want 2", m)
	}
	tree.Add(7, 9, 5) // fully out of range: no-op
	if m, _ := tree.Max(); m != 2 {
		t.Fatalf("max after oob add = %g, want 2", m)
	}
	tree.Add(3, 1, 5) // empty range: no-op
	if m, _ := tree.Max(); m != 2 {
		t.Fatalf("max after empty add = %g, want 2", m)
	}
}

func TestArgmaxLeftmost(t *testing.T) {
	tree := segtree.New(8)
	tree.Add(2, 5, 3)
	if _, arg := tree.Max(); arg != 2 {
		t.Fatalf("argmax = %d, want leftmost 2", arg)
	}
}

func TestPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) should panic")
		}
	}()
	segtree.New(0)
}

func TestValuePanics(t *testing.T) {
	tree := segtree.New(3)
	defer func() {
		if recover() == nil {
			t.Fatal("Value(-1) should panic")
		}
	}()
	tree.Value(-1)
}

func TestLen(t *testing.T) {
	if segtree.New(17).Len() != 17 {
		t.Fatal("Len")
	}
}

// TestSparse2D validates the static range-min/max sparse table against
// a brute-force scan, including empty, clamped, full-width, and
// single-column queries, fold accumulation across multiple regions, and
// slab reuse through Reset.
func TestSparse2D(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	var bank segtree.Sparse2D
	for trial := 0; trial < 40; trial++ {
		rows := 1 + rng.Intn(6)
		width := 1 + rng.Intn(40)
		slots := 1 + rng.Intn(3)
		bank.Reset(rows, width, slots)
		inf := math.Inf(1)
		refMin := make([]float64, rows*width*slots)
		refMax := make([]float64, rows*width*slots)
		for i := range refMin {
			refMin[i] = inf
			refMax[i] = -inf
		}
		for op := 0; op < 5*width; op++ {
			row, i, s := rng.Intn(rows), rng.Intn(width), rng.Intn(slots)
			v := float64(rng.Intn(201) - 100)
			bank.Fold(row, i, s, v)
			at := (row*width+i)*slots + s
			if v < refMin[at] {
				refMin[at] = v
			}
			if v > refMax[at] {
				refMax[at] = v
			}
		}
		bank.Build()
		mn := make([]float64, slots)
		mx := make([]float64, slots)
		wantMin := make([]float64, slots)
		wantMax := make([]float64, slots)
		for q := 0; q < 30; q++ {
			row := rng.Intn(rows)
			l := rng.Intn(width+4) - 2
			r := rng.Intn(width+4) - 2
			for s := 0; s < slots; s++ {
				mn[s], wantMin[s] = inf, inf
				mx[s], wantMax[s] = -inf, -inf
			}
			// Fold two regions to exercise accumulation.
			bank.Query(row, l, r, mn, mx)
			bank.Query(row, r, r+2, mn, mx)
			for _, span := range [][2]int{{l, r}, {r, r + 2}} {
				lo, hi := span[0], span[1]
				if lo < 0 {
					lo = 0
				}
				if hi > width {
					hi = width
				}
				for i := lo; i < hi; i++ {
					for s := 0; s < slots; s++ {
						at := (row*width+i)*slots + s
						if refMin[at] < wantMin[s] {
							wantMin[s] = refMin[at]
						}
						if refMax[at] > wantMax[s] {
							wantMax[s] = refMax[at]
						}
					}
				}
			}
			for s := 0; s < slots; s++ {
				if mn[s] != wantMin[s] || mx[s] != wantMax[s] {
					t.Fatalf("trial %d row %d [%d,%d): slot %d got (%v,%v) want (%v,%v)",
						trial, row, l, r, s, mn[s], mx[s], wantMin[s], wantMax[s])
				}
			}
		}
	}
}

// TestSparse2DRegion validates the O(1) rectangular queries against a
// brute-force scan, including clamped and empty regions.
func TestSparse2DRegion(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	var bank segtree.Sparse2D
	inf := math.Inf(1)
	for trial := 0; trial < 40; trial++ {
		rows := 1 + rng.Intn(10)
		width := 1 + rng.Intn(40)
		slots := 1 + rng.Intn(3)
		bank.Reset(rows, width, slots)
		refMin := make([]float64, rows*width*slots)
		refMax := make([]float64, rows*width*slots)
		for i := range refMin {
			refMin[i] = inf
			refMax[i] = -inf
		}
		for op := 0; op < 4*rows*width; op++ {
			row, i, s := rng.Intn(rows), rng.Intn(width), rng.Intn(slots)
			v := float64(rng.Intn(201) - 100)
			bank.Fold(row, i, s, v)
			at := (row*width+i)*slots + s
			if v < refMin[at] {
				refMin[at] = v
			}
			if v > refMax[at] {
				refMax[at] = v
			}
		}
		bank.Build()
		mn := make([]float64, slots)
		mx := make([]float64, slots)
		wantMin := make([]float64, slots)
		wantMax := make([]float64, slots)
		for q := 0; q < 50; q++ {
			j0 := rng.Intn(rows+4) - 2
			j1 := rng.Intn(rows+4) - 2
			i0 := rng.Intn(width+4) - 2
			i1 := rng.Intn(width+4) - 2
			for s := 0; s < slots; s++ {
				mn[s], wantMin[s] = inf, inf
				mx[s], wantMax[s] = -inf, -inf
			}
			bank.QueryRegion(j0, j1, i0, i1, mn, mx)
			for j := max(j0, 0); j < min(j1, rows); j++ {
				for i := max(i0, 0); i < min(i1, width); i++ {
					for s := 0; s < slots; s++ {
						at := (j*width+i)*slots + s
						if refMin[at] < wantMin[s] {
							wantMin[s] = refMin[at]
						}
						if refMax[at] > wantMax[s] {
							wantMax[s] = refMax[at]
						}
					}
				}
			}
			for s := 0; s < slots; s++ {
				if mn[s] != wantMin[s] || mx[s] != wantMax[s] {
					t.Fatalf("trial %d region [%d,%d)x[%d,%d) slot %d: got (%v,%v) want (%v,%v)",
						trial, j0, j1, i0, i1, s, mn[s], mx[s], wantMin[s], wantMax[s])
				}
			}
		}
	}
}
