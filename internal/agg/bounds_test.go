package agg_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"asrs/internal/agg"
	"asrs/internal/attr"
)

func TestIntegerDims(t *testing.T) {
	s := attr.MustSchema(
		attr.Attribute{Name: "c", Kind: attr.Categorical, Domain: []string{"x", "y"}},
		attr.Attribute{Name: "v", Kind: attr.Numeric},
	)
	f := agg.MustNew(s,
		agg.Spec{Kind: agg.Distribution, Attr: "c"},
		agg.Spec{Kind: agg.Average, Attr: "v"},
		agg.Spec{Kind: agg.Sum, Attr: "v"},
	)
	got := f.IntegerDims()
	want := []bool{true, true, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IntegerDims = %v, want %v", got, want)
		}
	}
}

// TestLowerBoundIntSound: for integer dims, the integer-aware bound is
// still a lower bound over integer-valued representations in the box, and
// it is at least as tight as the continuous bound.
func TestLowerBoundIntSound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		lo, hi := make([]float64, n), make([]float64, n)
		v, q, w := make([]float64, n), make([]float64, n), make([]float64, n)
		isInt := make([]bool, n)
		for i := 0; i < n; i++ {
			isInt[i] = rng.Intn(2) == 0
			if isInt[i] {
				a := float64(rng.Intn(10))
				b := a + float64(rng.Intn(10))
				lo[i], hi[i] = a, b
				v[i] = a + float64(rng.Intn(int(b-a)+1))
			} else {
				a, b := rng.NormFloat64()*5, rng.NormFloat64()*5
				if a > b {
					a, b = b, a
				}
				lo[i], hi[i] = a, b
				v[i] = a + rng.Float64()*(b-a)
			}
			q[i] = rng.NormFloat64() * 8
			w[i] = 0.1 + rng.Float64()
		}
		for _, norm := range []agg.Norm{agg.L1, agg.L2} {
			lbInt := agg.LowerBoundInt(norm, q, lo, hi, w, isInt)
			lbCont := agg.LowerBound(norm, q, lo, hi, w)
			d := agg.Distance(norm, q, v, w)
			if lbInt > d+1e-9 { // soundness
				return false
			}
			if lbInt < lbCont-1e-9 { // dominance
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestLowerBoundIntNilDegradesToContinuous(t *testing.T) {
	q := []float64{1.5}
	lo := []float64{1}
	hi := []float64{2}
	if agg.LowerBoundInt(agg.L1, q, lo, hi, nil, nil) != 0 {
		t.Fatal("nil isInt should behave like the continuous bound")
	}
}

func TestLowerBoundIntSnapsToIntegers(t *testing.T) {
	q := []float64{1.4}
	lo := []float64{0}
	hi := []float64{3}
	isInt := []bool{true}
	got := agg.LowerBoundInt(agg.L1, q, lo, hi, nil, isInt)
	if math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("integer gap = %g, want 0.4 (snap to 1)", got)
	}
	// Query outside the box: plain interval distance.
	q[0] = 5
	if got := agg.LowerBoundInt(agg.L1, q, lo, hi, nil, isInt); got != 2 {
		t.Fatalf("outside box = %g, want 2", got)
	}
	q[0] = -2
	if got := agg.LowerBoundInt(agg.L1, q, lo, hi, nil, isInt); got != 2 {
		t.Fatalf("below box = %g, want 2", got)
	}
	// Degenerate integer box.
	if got := agg.LowerBoundInt(agg.L1, []float64{2.25}, []float64{2}, []float64{2}, nil, isInt); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("degenerate box = %g, want 0.25", got)
	}
}

func TestInfMM(t *testing.T) {
	s := attr.MustSchema(attr.Attribute{Name: "v", Kind: attr.Numeric})
	f := agg.MustNew(s,
		agg.Spec{Kind: agg.Average, Attr: "v"},
		agg.Spec{Kind: agg.Average, Attr: "v"},
	)
	if f.MinMaxSlots() != 2 {
		t.Fatalf("slots = %d", f.MinMaxSlots())
	}
	mn, mx := f.InfMM()
	for i := range mn {
		if !math.IsInf(mn[i], 1) || !math.IsInf(mx[i], -1) {
			t.Fatalf("InfMM not identities: %v %v", mn, mx)
		}
	}
}

// TestAverageBoundsEmptyFull: with an empty full set, the bound must
// include 0 (the empty selection) alongside the partial range.
func TestAverageBoundsEmptyFull(t *testing.T) {
	s := attr.MustSchema(attr.Attribute{Name: "v", Kind: attr.Numeric})
	f := agg.MustNew(s, agg.Spec{Kind: agg.Average, Attr: "v"})
	full := make([]float64, f.Channels())
	partial := make([]float64, f.Channels())
	// One partial object with value 7.
	o := attr.Object{Values: []attr.Value{attr.NumValue(7)}}
	for _, cb := range f.AppendContribs(&o, nil) {
		partial[cb.Ch] += cb.V
	}
	mmMin, mmMax := f.InfMM()
	for _, m := range f.AppendMM(&o, nil) {
		mmMin[m.Slot] = m.V
		mmMax[m.Slot] = m.V
	}
	lo := make([]float64, 1)
	hi := make([]float64, 1)
	f.FinalizeBounds(full, partial, mmMin, mmMax, lo, hi)
	if lo[0] > 0 || hi[0] < 7 {
		t.Fatalf("bounds [%g, %g] must include both 0 (exclude) and 7 (include)", lo[0], hi[0])
	}
}

// TestComponentsAndChannels sanity-checks the layout accessors.
func TestComponentsAndChannels(t *testing.T) {
	s := attr.MustSchema(
		attr.Attribute{Name: "c", Kind: attr.Categorical, Domain: []string{"x", "y", "z"}},
		attr.Attribute{Name: "v", Kind: attr.Numeric},
	)
	f := agg.MustNew(s,
		agg.Spec{Kind: agg.Distribution, Attr: "c"},
		agg.Spec{Kind: agg.Average, Attr: "v"},
		agg.Spec{Kind: agg.Sum, Attr: "v"},
	)
	if f.Components() != 3 {
		t.Fatalf("components = %d", f.Components())
	}
	if f.Dims() != 3+1+1 {
		t.Fatalf("dims = %d", f.Dims())
	}
	if f.Channels() != 3+2+3 {
		t.Fatalf("channels = %d", f.Channels())
	}
	if f.Schema() != s {
		t.Fatal("schema accessor")
	}
}
