package agg_test

import (
	"testing"

	"asrs/internal/agg"
	"asrs/internal/attr"
)

func TestFingerprint(t *testing.T) {
	s := attr.MustSchema(
		attr.Attribute{Name: "c", Kind: attr.Categorical, Domain: []string{"x", "y"}},
		attr.Attribute{Name: "v", Kind: attr.Numeric},
	)
	f1 := agg.MustNew(s,
		agg.Spec{Kind: agg.Distribution, Attr: "c"},
		agg.Spec{Kind: agg.Average, Attr: "v"},
	)
	f2 := agg.MustNew(s,
		agg.Spec{Kind: agg.Distribution, Attr: "c"},
		agg.Spec{Kind: agg.Average, Attr: "v"},
	)
	if f1.Fingerprint() != f2.Fingerprint() {
		t.Fatalf("structurally identical composites have different fingerprints: %q vs %q",
			f1.Fingerprint(), f2.Fingerprint())
	}
	// Order matters.
	f3 := agg.MustNew(s,
		agg.Spec{Kind: agg.Average, Attr: "v"},
		agg.Spec{Kind: agg.Distribution, Attr: "c"},
	)
	if f1.Fingerprint() == f3.Fingerprint() {
		t.Fatal("reordered composite shares fingerprint")
	}
	// Kind matters.
	f4 := agg.MustNew(s,
		agg.Spec{Kind: agg.Distribution, Attr: "c"},
		agg.Spec{Kind: agg.Sum, Attr: "v"},
	)
	if f1.Fingerprint() == f4.Fingerprint() {
		t.Fatal("different kinds share fingerprint")
	}
	// Count with empty attribute is representable.
	f5 := agg.MustNew(s, agg.Spec{Kind: agg.Count})
	if f5.Fingerprint() != "fC::1" {
		t.Fatalf("fC fingerprint = %q", f5.Fingerprint())
	}
}
