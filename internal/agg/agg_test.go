package agg_test

import (
	"math"
	"testing"

	"asrs/internal/agg"
	"asrs/internal/attr"
	"asrs/internal/geom"
)

// paperSchema reproduces the motivating example of Fig 1 / Examples 2–4:
// POIs with a category and a sales price.
func paperSchema(t *testing.T) *attr.Schema {
	t.Helper()
	s, err := attr.NewSchema(
		attr.Attribute{Name: "category", Kind: attr.Categorical,
			Domain: []string{"Apartment", "Supermarket", "Restaurant", "Bus stop"}},
		attr.Attribute{Name: "price", Kind: attr.Numeric},
	)
	if err != nil {
		t.Fatalf("NewSchema: %v", err)
	}
	return s
}

// paperObjects places the objects of region r_q in Example 2: two
// apartments (prices 2 and 1.5), one supermarket, one restaurant, one bus
// stop, all inside the unit square.
func paperObjects() []attr.Object {
	obj := func(x, y float64, cat int, price float64) attr.Object {
		return attr.Object{Loc: geom.Point{X: x, Y: y},
			Values: []attr.Value{attr.CatValue(cat), attr.NumValue(price)}}
	}
	return []attr.Object{
		obj(0.2, 0.2, 0, 2),   // apartment, price 2
		obj(0.4, 0.6, 0, 1.5), // apartment, price 1.5
		obj(0.6, 0.3, 1, 0),   // supermarket
		obj(0.7, 0.7, 2, 0),   // restaurant
		obj(0.3, 0.8, 3, 0),   // bus stop
	}
}

func paperComposite(t *testing.T, s *attr.Schema) *agg.Composite {
	t.Helper()
	aptIdx := s.Index("category")
	f, err := agg.New(s,
		agg.Spec{Kind: agg.Distribution, Attr: "category"},
		agg.Spec{Kind: agg.Average, Attr: "price", Select: attr.SelectCategory(aptIdx, 0)},
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return f
}

// TestPaperExample3 checks F(r_q) = (2, 1, 1, 1, 1.75) from Example 3.
func TestPaperExample3(t *testing.T) {
	s := paperSchema(t)
	f := paperComposite(t, s)
	ds := &attr.Dataset{Schema: s, Objects: paperObjects()}
	got := f.Representation(ds, agg.OpenRect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1})
	want := []float64{2, 1, 1, 1, 1.75}
	if !vecEq(got, want, 1e-12) {
		t.Fatalf("F(r_q) = %v, want %v", got, want)
	}
}

// TestPaperExample4 checks the distances of Example 4:
// dist(F(r_q), F(r1)) = 1.15 and dist(F(r_q), F(r2)) = 4.15 under unit
// weights.
func TestPaperExample4(t *testing.T) {
	rq := []float64{2, 1, 1, 1, 1.75}
	r1 := []float64{3, 1, 1, 1, 1.6}
	r2 := []float64{2, 0, 2, 0, 2.9}
	w := agg.UnitWeights(5)
	if d := agg.Distance(agg.L1, r1, rq, w); math.Abs(d-1.15) > 1e-12 {
		t.Errorf("dist(rq, r1) = %g, want 1.15", d)
	}
	if d := agg.Distance(agg.L1, r2, rq, w); math.Abs(d-4.15) > 1e-12 {
		t.Errorf("dist(rq, r2) = %g, want 4.15", d)
	}
}

// TestPaperExample2Aggregators checks the three aggregator outputs of
// Example 2 individually: fD = (2,1,1,1), fA = 1.75, fS = 3.5.
func TestPaperExample2Aggregators(t *testing.T) {
	s := paperSchema(t)
	ds := &attr.Dataset{Schema: s, Objects: paperObjects()}
	region := agg.OpenRect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	aptSel := attr.SelectCategory(s.Index("category"), 0)

	fd := agg.MustNew(s, agg.Spec{Kind: agg.Distribution, Attr: "category"})
	if got := fd.Representation(ds, region); !vecEq(got, []float64{2, 1, 1, 1}, 0) {
		t.Errorf("fD = %v, want [2 1 1 1]", got)
	}
	fa := agg.MustNew(s, agg.Spec{Kind: agg.Average, Attr: "price", Select: aptSel})
	if got := fa.Representation(ds, region); !vecEq(got, []float64{1.75}, 1e-12) {
		t.Errorf("fA = %v, want [1.75]", got)
	}
	fs := agg.MustNew(s, agg.Spec{Kind: agg.Sum, Attr: "price", Select: aptSel})
	if got := fs.Representation(ds, region); !vecEq(got, []float64{3.5}, 1e-12) {
		t.Errorf("fS = %v, want [3.5]", got)
	}
}

func TestNewValidation(t *testing.T) {
	s := paperSchema(t)
	cases := []struct {
		name  string
		specs []agg.Spec
	}{
		{"no components", nil},
		{"unknown attribute", []agg.Spec{{Kind: agg.Distribution, Attr: "nope"}}},
		{"fD on numeric", []agg.Spec{{Kind: agg.Distribution, Attr: "price"}}},
		{"fA on categorical", []agg.Spec{{Kind: agg.Average, Attr: "category"}}},
		{"fS on categorical", []agg.Spec{{Kind: agg.Sum, Attr: "category"}}},
		{"bad kind", []agg.Spec{{Kind: agg.Kind(99), Attr: "price"}}},
	}
	for _, c := range cases {
		if _, err := agg.New(s, c.specs...); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	if _, err := agg.New(nil, agg.Spec{Kind: agg.Sum, Attr: "price"}); err == nil {
		t.Error("nil schema: expected error")
	}
}

func TestAccumulatorAddRemove(t *testing.T) {
	s := paperSchema(t)
	f := paperComposite(t, s)
	objs := paperObjects()
	acc := agg.NewAccumulator(f)
	for i := range objs {
		acc.Add(&objs[i])
	}
	rep := make([]float64, f.Dims())
	acc.Representation(rep)
	if !vecEq(rep, []float64{2, 1, 1, 1, 1.75}, 1e-12) {
		t.Fatalf("after adds: %v", rep)
	}
	// Remove the 1.5-priced apartment: distribution drops to (1,1,1,1),
	// average becomes 2.
	acc.Remove(&objs[1])
	acc.Representation(rep)
	if !vecEq(rep, []float64{1, 1, 1, 1, 2}, 1e-12) {
		t.Fatalf("after remove: %v", rep)
	}
	if acc.Len() != 4 {
		t.Fatalf("Len = %d, want 4", acc.Len())
	}
	acc.Reset()
	acc.Representation(rep)
	if !vecEq(rep, []float64{0, 0, 0, 0, 0}, 0) {
		t.Fatalf("after reset: %v", rep)
	}
}

// TestFinalizeBoundsSoundness verifies Lemma 4/5 style soundness: for
// every subset S with full ⊆ S ⊆ full∪partial, the exact representation of
// S lies within [lo, hi].
func TestFinalizeBoundsSoundness(t *testing.T) {
	s := paperSchema(t)
	f := paperComposite(t, s)
	objs := paperObjects()
	fullSet := objs[:2]
	partialSet := objs[2:]

	fullAcc := agg.NewAccumulator(f)
	for i := range fullSet {
		fullAcc.Add(&fullSet[i])
	}
	partAcc := agg.NewAccumulator(f)
	mmMin, mmMax := f.InfMM()
	var mbuf []agg.MMContrib
	for i := range partialSet {
		partAcc.Add(&partialSet[i])
		mbuf = f.AppendMM(&partialSet[i], mbuf[:0])
		for _, m := range mbuf {
			if m.V < mmMin[m.Slot] {
				mmMin[m.Slot] = m.V
			}
			if m.V > mmMax[m.Slot] {
				mmMax[m.Slot] = m.V
			}
		}
	}
	lo := make([]float64, f.Dims())
	hi := make([]float64, f.Dims())
	f.FinalizeBounds(fullAcc.Channels(), partAcc.Channels(), mmMin, mmMax, lo, hi)

	rep := make([]float64, f.Dims())
	for mask := 0; mask < 1<<len(partialSet); mask++ {
		acc := agg.NewAccumulator(f)
		for i := range fullSet {
			acc.Add(&fullSet[i])
		}
		for i := range partialSet {
			if mask&(1<<i) != 0 {
				acc.Add(&partialSet[i])
			}
		}
		acc.Representation(rep)
		for d := 0; d < f.Dims(); d++ {
			if rep[d] < lo[d]-1e-9 || rep[d] > hi[d]+1e-9 {
				t.Fatalf("mask %b dim %d: rep %g outside [%g, %g]", mask, d, rep[d], lo[d], hi[d])
			}
		}
	}
}

func vecEq(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}
