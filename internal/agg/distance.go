package agg

import (
	"fmt"
	"math"
)

// Norm selects the distance metric between aggregate representations. The
// paper presents L1 and notes the proposals extend to other metrics (§3.3);
// we implement both L1 and L2.
type Norm uint8

const (
	// L1 is the weighted Manhattan distance (the paper's default).
	L1 Norm = iota
	// L2 is the weighted Euclidean distance.
	L2
)

// String implements fmt.Stringer.
func (n Norm) String() string {
	switch n {
	case L1:
		return "L1"
	case L2:
		return "L2"
	default:
		return fmt.Sprintf("Norm(%d)", uint8(n))
	}
}

// Distance returns the weighted distance between representations u and v
// under the given norm: Σ|u[i]−v[i]|·w[i] for L1, sqrt(Σ((u[i]−v[i])·w[i])²)
// for L2. A nil w means unit weights. Panics when lengths disagree.
func Distance(norm Norm, u, v, w []float64) float64 {
	if len(u) != len(v) {
		panic(fmt.Sprintf("agg: distance between vectors of different dims %d vs %d", len(u), len(v)))
	}
	if w != nil && len(w) != len(u) {
		panic(fmt.Sprintf("agg: weight vector has dims %d, representations have %d", len(w), len(u)))
	}
	var acc float64
	switch norm {
	case L2:
		for i := range u {
			d := u[i] - v[i]
			if w != nil {
				d *= w[i]
			}
			acc += d * d
		}
		return math.Sqrt(acc)
	default: // L1
		for i := range u {
			d := math.Abs(u[i] - v[i])
			if w != nil {
				d *= w[i]
			}
			acc += d
		}
		return acc
	}
}

// DistanceUnder reports whether Distance(norm, u, v, w) < bound, and
// returns that distance when it is. The accumulation runs in exactly
// Distance's term order, so a completed pass returns a bit-identical
// value; the only shortcut is abandoning the sum once the running
// accumulator alone already rules the bound out, which cannot change
// the predicate because every remaining term is non-negative (under L2
// terms are squared; under L1 a negative weight would break the
// monotonicity, so encountering one falls back to the full Distance).
// When ok is false the returned value is only a lower bound on the true
// distance, not the distance itself. This is the candidate-evaluation
// fast path of the sweep solvers: almost every enumerated region loses
// to the incumbent best within a dimension or two.
func DistanceUnder(norm Norm, u, v, w []float64, bound float64) (float64, bool) {
	if len(u) != len(v) {
		panic(fmt.Sprintf("agg: distance between vectors of different dims %d vs %d", len(u), len(v)))
	}
	if w != nil && len(w) != len(u) {
		panic(fmt.Sprintf("agg: weight vector has dims %d, representations have %d", len(w), len(u)))
	}
	var acc float64
	switch norm {
	case L2:
		// Squared terms are non-negative for any weight sign; comparing
		// against bound² keeps the march in the squared domain. A
		// non-positive or NaN bound simply never triggers the early exit
		// (b2 ≥ 0 with the inherited comparison semantics), and the final
		// predicate below stays authoritative.
		b2 := bound * bound
		if !(bound > 0) {
			b2 = math.Inf(1)
		}
		for i := range u {
			d := u[i] - v[i]
			if w != nil {
				d *= w[i]
			}
			acc += d * d
			if acc >= b2 {
				return math.Sqrt(acc), false
			}
		}
		d := math.Sqrt(acc)
		return d, d < bound
	default: // L1
		// The negative-weight check must run before the march, not inside
		// it: once any later term can be negative, a partial sum reaching
		// bound proves nothing about the final one.
		for _, wi := range w {
			if wi < 0 {
				d := Distance(norm, u, v, w)
				return d, d < bound
			}
		}
		for i := range u {
			d := math.Abs(u[i] - v[i])
			if w != nil {
				d *= w[i]
			}
			acc += d
			if acc >= bound {
				return acc, false
			}
		}
		return acc, acc < bound
	}
}

// LowerBound implements Equation 1: the smallest possible weighted distance
// from the query representation q to any representation v with
// lo[i] ≤ v[i] ≤ hi[i]. Under L2 the same per-dimension gap construction is
// applied inside the Euclidean sum; both are valid lower bounds because the
// per-dimension deviation is minimized independently.
func LowerBound(norm Norm, q, lo, hi, w []float64) float64 {
	var acc float64
	switch norm {
	case L2:
		for i := range q {
			g := gap(q[i], lo[i], hi[i])
			if w != nil {
				g *= w[i]
			}
			acc += g * g
		}
		return math.Sqrt(acc)
	default:
		for i := range q {
			g := gap(q[i], lo[i], hi[i])
			if w != nil {
				g *= w[i]
			}
			acc += g
		}
		return acc
	}
}

// gap returns the distance from q to the interval [lo, hi] (0 when inside).
func gap(q, lo, hi float64) float64 {
	switch {
	case q > hi:
		return q - hi
	case q < lo:
		return lo - q
	default:
		return 0
	}
}

// intGap returns the distance from q to the nearest integer in [lo, hi].
// lo and hi are themselves integers (fD counts), so the interval always
// contains one when lo ≤ hi.
func intGap(q, lo, hi float64) float64 {
	switch {
	case q > hi:
		return q - hi
	case q < lo:
		return lo - q
	default:
		f := math.Floor(q)
		c := math.Ceil(q)
		best := math.Inf(1)
		if f >= lo {
			best = q - f
		}
		if c <= hi && c-q < best {
			best = c - q
		}
		return best
	}
}

// LowerBoundInt is LowerBound with integer-awareness: dimensions flagged in
// isInt only admit integer representation values, so the per-dimension gap
// snaps to the nearest integer in [lo, hi]. A nil isInt degrades to
// LowerBound.
func LowerBoundInt(norm Norm, q, lo, hi, w []float64, isInt []bool) float64 {
	if isInt == nil {
		return LowerBound(norm, q, lo, hi, w)
	}
	var acc float64
	switch norm {
	case L2:
		for i := range q {
			var g float64
			if isInt[i] {
				g = intGap(q[i], lo[i], hi[i])
			} else {
				g = gap(q[i], lo[i], hi[i])
			}
			if w != nil {
				g *= w[i]
			}
			acc += g * g
		}
		return math.Sqrt(acc)
	default:
		for i := range q {
			var g float64
			if isInt[i] {
				g = intGap(q[i], lo[i], hi[i])
			} else {
				g = gap(q[i], lo[i], hi[i])
			}
			if w != nil {
				g *= w[i]
			}
			acc += g
		}
		return acc
	}
}

// UnitWeights returns a weight vector of n ones.
func UnitWeights(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}
