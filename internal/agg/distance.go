package agg

import (
	"fmt"
	"math"
)

// Norm selects the distance metric between aggregate representations. The
// paper presents L1 and notes the proposals extend to other metrics (§3.3);
// we implement both L1 and L2.
type Norm uint8

const (
	// L1 is the weighted Manhattan distance (the paper's default).
	L1 Norm = iota
	// L2 is the weighted Euclidean distance.
	L2
)

// String implements fmt.Stringer.
func (n Norm) String() string {
	switch n {
	case L1:
		return "L1"
	case L2:
		return "L2"
	default:
		return fmt.Sprintf("Norm(%d)", uint8(n))
	}
}

// Distance returns the weighted distance between representations u and v
// under the given norm: Σ|u[i]−v[i]|·w[i] for L1, sqrt(Σ((u[i]−v[i])·w[i])²)
// for L2. A nil w means unit weights. Panics when lengths disagree.
func Distance(norm Norm, u, v, w []float64) float64 {
	if len(u) != len(v) {
		panic(fmt.Sprintf("agg: distance between vectors of different dims %d vs %d", len(u), len(v)))
	}
	if w != nil && len(w) != len(u) {
		panic(fmt.Sprintf("agg: weight vector has dims %d, representations have %d", len(w), len(u)))
	}
	var acc float64
	switch norm {
	case L2:
		for i := range u {
			d := u[i] - v[i]
			if w != nil {
				d *= w[i]
			}
			acc += d * d
		}
		return math.Sqrt(acc)
	default: // L1
		for i := range u {
			d := math.Abs(u[i] - v[i])
			if w != nil {
				d *= w[i]
			}
			acc += d
		}
		return acc
	}
}

// LowerBound implements Equation 1: the smallest possible weighted distance
// from the query representation q to any representation v with
// lo[i] ≤ v[i] ≤ hi[i]. Under L2 the same per-dimension gap construction is
// applied inside the Euclidean sum; both are valid lower bounds because the
// per-dimension deviation is minimized independently.
func LowerBound(norm Norm, q, lo, hi, w []float64) float64 {
	var acc float64
	switch norm {
	case L2:
		for i := range q {
			g := gap(q[i], lo[i], hi[i])
			if w != nil {
				g *= w[i]
			}
			acc += g * g
		}
		return math.Sqrt(acc)
	default:
		for i := range q {
			g := gap(q[i], lo[i], hi[i])
			if w != nil {
				g *= w[i]
			}
			acc += g
		}
		return acc
	}
}

// gap returns the distance from q to the interval [lo, hi] (0 when inside).
func gap(q, lo, hi float64) float64 {
	switch {
	case q > hi:
		return q - hi
	case q < lo:
		return lo - q
	default:
		return 0
	}
}

// intGap returns the distance from q to the nearest integer in [lo, hi].
// lo and hi are themselves integers (fD counts), so the interval always
// contains one when lo ≤ hi.
func intGap(q, lo, hi float64) float64 {
	switch {
	case q > hi:
		return q - hi
	case q < lo:
		return lo - q
	default:
		f := math.Floor(q)
		c := math.Ceil(q)
		best := math.Inf(1)
		if f >= lo {
			best = q - f
		}
		if c <= hi && c-q < best {
			best = c - q
		}
		return best
	}
}

// LowerBoundInt is LowerBound with integer-awareness: dimensions flagged in
// isInt only admit integer representation values, so the per-dimension gap
// snaps to the nearest integer in [lo, hi]. A nil isInt degrades to
// LowerBound.
func LowerBoundInt(norm Norm, q, lo, hi, w []float64, isInt []bool) float64 {
	if isInt == nil {
		return LowerBound(norm, q, lo, hi, w)
	}
	var acc float64
	switch norm {
	case L2:
		for i := range q {
			var g float64
			if isInt[i] {
				g = intGap(q[i], lo[i], hi[i])
			} else {
				g = gap(q[i], lo[i], hi[i])
			}
			if w != nil {
				g *= w[i]
			}
			acc += g * g
		}
		return math.Sqrt(acc)
	default:
		for i := range q {
			var g float64
			if isInt[i] {
				g = intGap(q[i], lo[i], hi[i])
			} else {
				g = gap(q[i], lo[i], hi[i])
			}
			if w != nil {
				g *= w[i]
			}
			acc += g
		}
		return acc
	}
}

// UnitWeights returns a weight vector of n ones.
func UnitWeights(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}
