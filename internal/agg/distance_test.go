package agg_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"asrs/internal/agg"
)

func TestDistanceL1(t *testing.T) {
	u := []float64{1, 2, 3}
	v := []float64{2, 0, 3}
	if d := agg.Distance(agg.L1, u, v, nil); d != 3 {
		t.Fatalf("L1 = %g, want 3", d)
	}
	w := []float64{0.5, 2, 10}
	if d := agg.Distance(agg.L1, u, v, w); d != 0.5+4 {
		t.Fatalf("weighted L1 = %g, want 4.5", d)
	}
}

func TestDistanceL2(t *testing.T) {
	u := []float64{0, 0}
	v := []float64{3, 4}
	if d := agg.Distance(agg.L2, u, v, nil); math.Abs(d-5) > 1e-12 {
		t.Fatalf("L2 = %g, want 5", d)
	}
}

func TestDistancePanics(t *testing.T) {
	assertPanics(t, "dim mismatch", func() { agg.Distance(agg.L1, []float64{1}, []float64{1, 2}, nil) })
	assertPanics(t, "weight mismatch", func() { agg.Distance(agg.L1, []float64{1}, []float64{2}, []float64{1, 2}) })
}

func assertPanics(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	fn()
}

// TestDistanceMetricProperties checks symmetry, identity and the triangle
// inequality on random vectors for both norms.
func TestDistanceMetricProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, norm := range []agg.Norm{agg.L1, agg.L2} {
		for trial := 0; trial < 200; trial++ {
			n := 1 + rng.Intn(6)
			u, v, x, w := randVec(rng, n), randVec(rng, n), randVec(rng, n), randPosVec(rng, n)
			duv := agg.Distance(norm, u, v, w)
			dvu := agg.Distance(norm, v, u, w)
			if math.Abs(duv-dvu) > 1e-9 {
				t.Fatalf("%v: not symmetric: %g vs %g", norm, duv, dvu)
			}
			if d := agg.Distance(norm, u, u, w); d != 0 {
				t.Fatalf("%v: dist(u,u) = %g", norm, d)
			}
			dux := agg.Distance(norm, u, x, w)
			dxv := agg.Distance(norm, x, v, w)
			if duv > dux+dxv+1e-9 {
				t.Fatalf("%v: triangle violated: %g > %g + %g", norm, duv, dux, dxv)
			}
		}
	}
}

// TestLowerBoundIsLowerBound: for any representation v within [lo, hi],
// LowerBound(q, lo, hi) ≤ Distance(q, v). Uses testing/quick over random
// boxes and contained points.
func TestLowerBoundIsLowerBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		lo, hi := make([]float64, n), make([]float64, n)
		v, q := make([]float64, n), make([]float64, n)
		w := randPosVec(rng, n)
		for i := 0; i < n; i++ {
			a, b := rng.NormFloat64()*10, rng.NormFloat64()*10
			if a > b {
				a, b = b, a
			}
			lo[i], hi[i] = a, b
			v[i] = a + rng.Float64()*(b-a)
			q[i] = rng.NormFloat64() * 10
		}
		for _, norm := range []agg.Norm{agg.L1, agg.L2} {
			lb := agg.LowerBound(norm, q, lo, hi, w)
			d := agg.Distance(norm, q, v, w)
			if lb > d+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestLowerBoundTightAtCorners: when the box collapses to a point, the
// lower bound equals the distance.
func TestLowerBoundTightAtCorners(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(5)
		v, q, w := randVec(rng, n), randVec(rng, n), randPosVec(rng, n)
		for _, norm := range []agg.Norm{agg.L1, agg.L2} {
			lb := agg.LowerBound(norm, q, v, v, w)
			d := agg.Distance(norm, q, v, w)
			if math.Abs(lb-d) > 1e-9 {
				t.Fatalf("%v: degenerate box lb %g != dist %g", norm, lb, d)
			}
		}
	}
}

func TestUnitWeights(t *testing.T) {
	w := agg.UnitWeights(4)
	for _, v := range w {
		if v != 1 {
			t.Fatalf("UnitWeights = %v", w)
		}
	}
}

func TestNormStrings(t *testing.T) {
	if agg.L1.String() != "L1" || agg.L2.String() != "L2" {
		t.Fatal("norm String()")
	}
	if agg.Norm(9).String() == "" {
		t.Fatal("unknown norm String() empty")
	}
	if agg.Distribution.String() != "fD" || agg.Average.String() != "fA" || agg.Sum.String() != "fS" {
		t.Fatal("kind String()")
	}
}

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64() * 10
	}
	return v
}

func randPosVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.Float64()*2 + 0.01
	}
	return v
}

// TestDistanceUnderMatchesDistance pins the fast path's contract on
// random vectors: ok must equal Distance(...) < bound for every bound,
// and when ok the returned value must be bit-identical to Distance
// (same accumulation order, no shortcut taken on the winning path).
func TestDistanceUnderMatchesDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 400; trial++ {
		n := 1 + rng.Intn(12)
		u := make([]float64, n)
		v := make([]float64, n)
		var w []float64
		for i := range u {
			u[i] = rng.NormFloat64() * 10
			v[i] = rng.NormFloat64() * 10
		}
		switch trial % 3 {
		case 1:
			w = make([]float64, n)
			for i := range w {
				w[i] = rng.Float64() * 3
			}
		case 2:
			// Negative weights break L1 monotonicity; DistanceUnder must
			// detect them and still answer exactly.
			w = make([]float64, n)
			for i := range w {
				w[i] = rng.NormFloat64()
			}
		}
		for _, norm := range []agg.Norm{agg.L1, agg.L2} {
			d := agg.Distance(norm, u, v, w)
			bounds := []float64{
				d, d * 0.5, d * 2, d + 1, d - 1, 0, -1,
				math.Inf(1), math.Inf(-1), math.NaN(),
			}
			for _, bound := range bounds {
				got, ok := agg.DistanceUnder(norm, u, v, w, bound)
				if want := d < bound; ok != want {
					t.Fatalf("%v DistanceUnder(bound=%v) ok=%v, want %v (d=%v)", norm, bound, ok, want, d)
				}
				if ok && math.Float64bits(got) != math.Float64bits(d) {
					t.Fatalf("%v DistanceUnder(bound=%v) = %v, want bit-identical %v", norm, bound, got, d)
				}
				if !ok && !math.IsNaN(got) && got > d {
					t.Fatalf("%v DistanceUnder(bound=%v) early value %v exceeds true distance %v", norm, bound, got, d)
				}
			}
		}
	}
}
