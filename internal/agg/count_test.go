package agg_test

import (
	"math"
	"math/rand"
	"testing"

	"asrs/internal/agg"
	"asrs/internal/asp"
	"asrs/internal/attr"
	"asrs/internal/dataset"
	"asrs/internal/dssearch"
	"asrs/internal/sweep"
)

func TestCountAggregator(t *testing.T) {
	ds := dataset.Random(50, 40, 60)
	catIdx := ds.Schema.Index("cat")

	// fC with no attribute counts everything; with a selector it counts
	// the selection.
	fAll := agg.MustNew(ds.Schema, agg.Spec{Kind: agg.Count})
	fA := agg.MustNew(ds.Schema, agg.Spec{Kind: agg.Count, Select: attr.SelectCategory(catIdx, 0)})
	region := agg.OpenRect{MinX: -1, MinY: -1, MaxX: 41, MaxY: 41}

	if got := fAll.Representation(ds, region); got[0] != 50 {
		t.Fatalf("fC(all) = %v, want 50", got)
	}
	wantA := 0.0
	for i := range ds.Objects {
		if ds.Objects[i].Values[catIdx].Cat == 0 {
			wantA++
		}
	}
	if got := fA.Representation(ds, region); got[0] != wantA {
		t.Fatalf("fC(cat=a) = %v, want %g", got, wantA)
	}
}

// TestCountMatchesDistributionSum: fC(all) equals the sum of fD's
// dimensions on any region.
func TestCountMatchesDistributionSum(t *testing.T) {
	ds := dataset.Random(80, 50, 61)
	fc := agg.MustNew(ds.Schema, agg.Spec{Kind: agg.Count})
	fd := agg.MustNew(ds.Schema, agg.Spec{Kind: agg.Distribution, Attr: "cat"})
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 100; trial++ {
		x, y := rng.Float64()*50, rng.Float64()*50
		r := agg.OpenRect{MinX: x, MinY: y, MaxX: x + 10, MaxY: y + 10}
		c := fc.Representation(ds, r)[0]
		d := fd.Representation(ds, r)
		if c != d[0]+d[1]+d[2] {
			t.Fatalf("fC %g != ΣfD %v", c, d)
		}
	}
}

// TestCountEndToEnd: DS-Search with fC (the MER special case: find the
// region with exactly/nearly target count) matches the sweep.
func TestCountEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	for trial := 0; trial < 20; trial++ {
		ds := dataset.Random(1+rng.Intn(50), 50, rng.Int63())
		f := agg.MustNew(ds.Schema,
			agg.Spec{Kind: agg.Count},
			agg.Spec{Kind: agg.Count, Select: attr.SelectCategory(ds.Schema.Index("cat"), 1)},
		)
		q := asp.Query{F: f, Target: []float64{float64(rng.Intn(10)), float64(rng.Intn(5))}}
		rects, _ := asp.Reduce(ds, 7, 7, asp.AnchorTR)
		sw, _ := sweep.New(rects, q)
		want := sw.Solve()
		s, _ := dssearch.NewSearcher(rects, q, dssearch.Options{NCol: 10, NRow: 10})
		got := s.Solve()
		if math.Abs(got.Dist-want.Dist) > 1e-9 {
			t.Fatalf("trial %d: fC end-to-end: %g vs %g", trial, got.Dist, want.Dist)
		}
	}
}

func TestCountIsIntegerDim(t *testing.T) {
	ds := dataset.Random(5, 10, 64)
	f := agg.MustNew(ds.Schema, agg.Spec{Kind: agg.Count})
	if ints := f.IntegerDims(); !ints[0] {
		t.Fatal("fC dim should be integer")
	}
}

func TestCountUnknownAttrStillRejected(t *testing.T) {
	ds := dataset.Random(5, 10, 65)
	if _, err := agg.New(ds.Schema, agg.Spec{Kind: agg.Count, Attr: "nope"}); err == nil {
		t.Fatal("fC with unknown non-empty attribute accepted")
	}
}
