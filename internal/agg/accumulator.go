package agg

import "asrs/internal/attr"

// Accumulator maintains the channel vector of a dynamic object set and
// supports O(k) insertion and removal, where k is the number of channel
// contributions of one object. The sweep-line baseline and the clean-cell
// evaluation both run on Accumulators.
//
// The zero Accumulator is not usable; construct with NewAccumulator.
type Accumulator struct {
	c    *Composite
	ch   []float64
	n    int // objects currently in the set
	cbuf []Contrib
}

// NewAccumulator returns an empty accumulator for the composite c.
func NewAccumulator(c *Composite) *Accumulator {
	return &Accumulator{c: c, ch: make([]float64, c.Channels()), cbuf: make([]Contrib, 0, 8)}
}

// NewAccumulators returns n independent empty accumulators for c whose
// backing buffers come from shared slab allocations — callers that keep
// per-worker accumulators (the sweep solver pool) stay at O(1)
// allocations instead of O(workers).
func NewAccumulators(c *Composite, n int) []Accumulator {
	accs := make([]Accumulator, n)
	chs := make([]float64, n*c.Channels())
	cbufs := make([]Contrib, n*8)
	for i := range accs {
		accs[i] = Accumulator{
			c:    c,
			ch:   chs[i*c.Channels() : (i+1)*c.Channels()],
			cbuf: cbufs[i*8 : i*8 : (i+1)*8],
		}
	}
	return accs
}

// Add inserts object o into the set.
func (a *Accumulator) Add(o *attr.Object) {
	a.cbuf = a.c.AppendContribs(o, a.cbuf[:0])
	for _, cb := range a.cbuf {
		a.ch[cb.Ch] += cb.V
	}
	a.n++
}

// Remove deletes object o from the set. Removing an object that was never
// added corrupts the accumulator; callers are responsible for pairing.
func (a *Accumulator) Remove(o *attr.Object) {
	a.cbuf = a.c.AppendContribs(o, a.cbuf[:0])
	for _, cb := range a.cbuf {
		a.ch[cb.Ch] -= cb.V
	}
	a.n--
}

// Len returns the number of objects currently accumulated.
func (a *Accumulator) Len() int { return a.n }

// Reset empties the accumulator.
func (a *Accumulator) Reset() {
	for i := range a.ch {
		a.ch[i] = 0
	}
	a.n = 0
}

// Representation writes the aggregate representation of the current set
// into out, which must have length Dims().
func (a *Accumulator) Representation(out []float64) {
	a.c.FinalizeExact(a.ch, out)
}

// Channels exposes the raw channel vector (read-only by convention); used
// by the grid machinery to seed difference arrays.
func (a *Accumulator) Channels() []float64 { return a.ch }
