// Package agg implements the composite-aggregator framework of the ASRS
// paper (§3.2): the three aggregators fD (distribution), fA (average) and
// fS (sum), composite aggregators, aggregate representations, the weighted
// L1 distance, and — crucially for DS-Search — interval bounds [v̲, v̄] on
// the representation of any point whose covering set is sandwiched between
// a known "full" set and "full ∪ partial" set (Lemmas 4 and 5, Equation 1).
//
// Internally a composite aggregator is compiled to a flat channel layout:
// every object contributes a small sparse set of (channel, delta) pairs,
// which makes accumulation, removal, difference-array grids, and summary
// tables all share one code path.
package agg

import (
	"fmt"
	"math"

	"asrs/internal/attr"
)

// Kind identifies one of the paper's three aggregator families.
type Kind uint8

const (
	// Distribution is fD: per-value counts over dom(A) (categorical).
	Distribution Kind = iota
	// Average is fA: mean of a numeric attribute (0 for empty selections).
	Average
	// Sum is fS: sum of a numeric attribute.
	Sum
	// Count is fC: the number of selected objects, independent of any
	// attribute (an extension beyond the paper's three aggregators; it is
	// fD collapsed to one dimension, or fS of the constant 1). Spec.Attr
	// may be empty.
	Count
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Distribution:
		return "fD"
	case Average:
		return "fA"
	case Sum:
		return "fS"
	case Count:
		return "fC"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Spec is one (f, A, γ) triple of Definition 2. Attr names a schema
// attribute; Select is the selection function γ (nil means γ_all).
type Spec struct {
	Kind   Kind
	Attr   string
	Select attr.Selector
}

// compiled is a Spec resolved against a schema with its channel/dimension
// layout fixed.
type compiled struct {
	kind    Kind
	attrIdx int
	sel     attr.Selector
	dimOff  int // offset into the representation vector
	dims    int
	chOff   int // offset into the channel vector
	chans   int
	mmSlot  int // Average only: index of its min/max slot, else -1
}

// Channel layout per kind. Sum uses three channels so that partial-cover
// bounds can separate positive and negative contributions; Average uses
// (sum, count).
const (
	sumChSum = 0
	sumChPos = 1
	sumChNeg = 2

	avgChSum   = 0
	avgChCount = 1
)

// Composite is a compiled composite aggregator F = ((f1,A1,γ1),…).
// It is immutable after construction and safe for concurrent use as long
// as the selection functions are.
type Composite struct {
	schema  *attr.Schema
	specs   []compiled
	dims    int
	chans   int
	mmSlots int
}

// New compiles the given specs against the schema. It validates that fD is
// applied to categorical attributes and fA/fS to numeric ones.
func New(schema *attr.Schema, specs ...Spec) (*Composite, error) {
	if schema == nil {
		return nil, fmt.Errorf("agg: nil schema")
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("agg: composite aggregator needs at least one (f, A, γ) component")
	}
	c := &Composite{schema: schema}
	for i, s := range specs {
		ai := schema.Index(s.Attr)
		if ai < 0 && !(s.Kind == Count && s.Attr == "") {
			return nil, fmt.Errorf("agg: component %d references unknown attribute %q", i, s.Attr)
		}
		var a attr.Attribute
		if ai >= 0 {
			a = schema.At(ai)
		}
		cs := compiled{kind: s.Kind, attrIdx: ai, sel: s.Select, dimOff: c.dims, chOff: c.chans, mmSlot: -1}
		if cs.sel == nil {
			cs.sel = attr.SelectAll
		}
		switch s.Kind {
		case Distribution:
			if a.Kind != attr.Categorical {
				return nil, fmt.Errorf("agg: component %d: fD requires a categorical attribute, %q is %s", i, s.Attr, a.Kind)
			}
			cs.dims = a.DomainSize()
			cs.chans = a.DomainSize()
		case Average:
			if a.Kind != attr.Numeric {
				return nil, fmt.Errorf("agg: component %d: fA requires a numeric attribute, %q is %s", i, s.Attr, a.Kind)
			}
			cs.dims = 1
			cs.chans = 2
			cs.mmSlot = c.mmSlots
			c.mmSlots++
		case Sum:
			if a.Kind != attr.Numeric {
				return nil, fmt.Errorf("agg: component %d: fS requires a numeric attribute, %q is %s", i, s.Attr, a.Kind)
			}
			cs.dims = 1
			cs.chans = 3
		case Count:
			cs.dims = 1
			cs.chans = 1
		default:
			return nil, fmt.Errorf("agg: component %d has unknown aggregator kind %d", i, s.Kind)
		}
		c.dims += cs.dims
		c.chans += cs.chans
		c.specs = append(c.specs, cs)
	}
	return c, nil
}

// MustNew is like New but panics on error.
func MustNew(schema *attr.Schema, specs ...Spec) *Composite {
	c, err := New(schema, specs...)
	if err != nil {
		panic(err)
	}
	return c
}

// Dims returns the dimensionality of the aggregate representation F(r).
func (c *Composite) Dims() int { return c.dims }

// Channels returns the width of the internal channel vector.
func (c *Composite) Channels() int { return c.chans }

// MinMaxSlots returns the number of min/max tracking slots (one per fA
// component); dirty-cell bounds for averages need the min and max partial
// value.
func (c *Composite) MinMaxSlots() int { return c.mmSlots }

// Schema returns the schema the composite was compiled against.
func (c *Composite) Schema() *attr.Schema { return c.schema }

// Components returns the number of (f, A, γ) components.
func (c *Composite) Components() int { return len(c.specs) }

// Contrib is one sparse channel contribution of an object.
type Contrib struct {
	Ch int
	V  float64
}

// MMContrib is a min/max-slot contribution (fA components only).
type MMContrib struct {
	Slot int
	V    float64
}

// AppendContribs appends o's channel contributions to dst and returns it.
// Objects rejected by a component's selector contribute nothing to that
// component.
func (c *Composite) AppendContribs(o *attr.Object, dst []Contrib) []Contrib {
	for i := range c.specs {
		s := &c.specs[i]
		if !s.sel(o) {
			continue
		}
		switch s.kind {
		case Distribution:
			dst = append(dst, Contrib{Ch: s.chOff + o.Values[s.attrIdx].Cat, V: 1})
		case Average:
			v := o.Values[s.attrIdx].Num
			dst = append(dst,
				Contrib{Ch: s.chOff + avgChSum, V: v},
				Contrib{Ch: s.chOff + avgChCount, V: 1})
		case Sum:
			v := o.Values[s.attrIdx].Num
			dst = append(dst, Contrib{Ch: s.chOff + sumChSum, V: v})
			if v > 0 {
				dst = append(dst, Contrib{Ch: s.chOff + sumChPos, V: v})
			} else if v < 0 {
				dst = append(dst, Contrib{Ch: s.chOff + sumChNeg, V: v})
			}
		case Count:
			dst = append(dst, Contrib{Ch: s.chOff, V: 1})
		}
	}
	return dst
}

// AppendMM appends o's min/max-slot contributions (one per fA component
// whose selector accepts o) to dst and returns it.
func (c *Composite) AppendMM(o *attr.Object, dst []MMContrib) []MMContrib {
	for i := range c.specs {
		s := &c.specs[i]
		if s.mmSlot < 0 || !s.sel(o) {
			continue
		}
		dst = append(dst, MMContrib{Slot: s.mmSlot, V: o.Values[s.attrIdx].Num})
	}
	return dst
}

// FinalizeExact converts a channel vector of objects known to be exactly
// the covering set into the representation vector out. len(ch) must be
// Channels() and len(out) must be Dims().
func (c *Composite) FinalizeExact(ch []float64, out []float64) {
	for i := range c.specs {
		s := &c.specs[i]
		switch s.kind {
		case Distribution:
			copy(out[s.dimOff:s.dimOff+s.dims], ch[s.chOff:s.chOff+s.chans])
		case Average:
			sum, cnt := ch[s.chOff+avgChSum], ch[s.chOff+avgChCount]
			if cnt > 0 {
				out[s.dimOff] = sum / cnt
			} else {
				out[s.dimOff] = 0
			}
		case Sum:
			out[s.dimOff] = ch[s.chOff+sumChSum]
		case Count:
			out[s.dimOff] = ch[s.chOff]
		}
	}
}

// FinalizeBounds computes representation bounds lo/hi for a point whose
// covering set S satisfies full ⊆ S ⊆ full ∪ partial, given the channel
// vectors of the full and partial sets and the min/max partial values for
// each fA slot (mmMin[i] = +Inf, mmMax[i] = -Inf when the slot saw no
// partial object). This generalizes Lemma 5 to all three aggregators.
func (c *Composite) FinalizeBounds(full, partial, mmMin, mmMax []float64, lo, hi []float64) {
	for i := range c.specs {
		s := &c.specs[i]
		switch s.kind {
		case Distribution:
			for d := 0; d < s.dims; d++ {
				f := full[s.chOff+d]
				lo[s.dimOff+d] = f
				hi[s.dimOff+d] = f + partial[s.chOff+d]
			}
		case Average:
			sum, cnt := full[s.chOff+avgChSum], full[s.chOff+avgChCount]
			pcnt := partial[s.chOff+avgChCount]
			var base float64
			if cnt > 0 {
				base = sum / cnt
			} else {
				base = 0 // empty selection is representable, F value 0
			}
			l, h := base, base
			if pcnt > 0 {
				m, M := mmMin[s.mmSlot], mmMax[s.mmSlot]
				// Adding any sub-multiset of values in [m, M] to a multiset
				// with mean `base` keeps the mean within [min(base,m),
				// max(base,M)]; with an empty full set the mean is either 0
				// (nothing added) or within [m, M].
				if m < l {
					l = m
				}
				if M > h {
					h = M
				}
			}
			lo[s.dimOff], hi[s.dimOff] = l, h
		case Sum:
			f := full[s.chOff+sumChSum]
			lo[s.dimOff] = f + partial[s.chOff+sumChNeg]
			hi[s.dimOff] = f + partial[s.chOff+sumChPos]
		case Count:
			f := full[s.chOff]
			lo[s.dimOff] = f
			hi[s.dimOff] = f + partial[s.chOff]
		}
	}
}

// Representation computes F(r) directly over a dataset: the aggregate
// representation of the set of objects strictly inside region r (open
// containment, consistent with the covers relation of Lemma 1).
func (c *Composite) Representation(ds *attr.Dataset, r Region) []float64 {
	acc := NewAccumulator(c)
	for i := range ds.Objects {
		o := &ds.Objects[i]
		if r.Contains(o.Loc.X, o.Loc.Y) {
			acc.Add(o)
		}
	}
	out := make([]float64, c.dims)
	acc.Representation(out)
	return out
}

// Region abstracts the membership test used by Representation so that both
// open rectangles and custom query shapes can be aggregated. See
// OpenRect.
type Region interface {
	Contains(x, y float64) bool
}

// OpenRect is the open-rectangle Region: points strictly inside count.
type OpenRect struct {
	MinX, MinY, MaxX, MaxY float64
}

// Contains implements Region.
func (r OpenRect) Contains(x, y float64) bool {
	return r.MinX < x && x < r.MaxX && r.MinY < y && y < r.MaxY
}

// Fingerprint returns a stable structural description of the composite:
// one "kind:attr:dims" token per component. Persistence formats embed it
// to detect composite/index mismatches at load time. Selection functions
// are opaque and cannot be fingerprinted — loading an index built with a
// different γ for the same structure is undetectable (documented in the
// persistence API).
func (c *Composite) Fingerprint() string {
	var sb []byte
	for i := range c.specs {
		s := &c.specs[i]
		if i > 0 {
			sb = append(sb, ';')
		}
		name := ""
		if s.attrIdx >= 0 {
			name = c.schema.At(s.attrIdx).Name
		}
		sb = append(sb, fmt.Sprintf("%s:%s:%d", s.kind, name, s.dims)...)
	}
	return string(sb)
}

// IntegerDims reports which representation dimensions only take integer
// values (the count dimensions of fD components). Lower-bound computations
// exploit this: the nearest *achievable* value to the query inside
// [lo, hi] is an integer, which removes the fractional slack of the
// continuous Equation 1 gap and lets cells at the optimum's boundary be
// pruned at lb == d_opt instead of splitting to GPS accuracy.
func (c *Composite) IntegerDims() []bool {
	out := make([]bool, c.dims)
	for i := range c.specs {
		s := &c.specs[i]
		if s.kind == Distribution || s.kind == Count {
			for d := 0; d < s.dims; d++ {
				out[s.dimOff+d] = true
			}
		}
	}
	return out
}

// InfMM returns freshly initialized (mmMin, mmMax) slot vectors: +Inf/-Inf
// identities for min/max.
func (c *Composite) InfMM() (mmMin, mmMax []float64) {
	mmMin = make([]float64, c.mmSlots)
	mmMax = make([]float64, c.mmSlots)
	for i := range mmMin {
		mmMin[i] = math.Inf(1)
		mmMax[i] = math.Inf(-1)
	}
	return mmMin, mmMax
}
