// Package geom provides the planar geometry primitives used throughout the
// ASRS library: points, axis-parallel rectangles, and the open/closed
// coverage semantics required by the ASRS→ASP reduction (paper §4.1).
//
// Coordinates are float64 throughout. All rectangles are axis-parallel and
// are represented by their min and max corners.
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the plane.
type Point struct {
	X, Y float64
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%g, %g)", p.X, p.Y) }

// Add returns p translated by (dx, dy).
func (p Point) Add(dx, dy float64) Point { return Point{p.X + dx, p.Y + dy} }

// Rect is an axis-parallel rectangle with corners (MinX,MinY) and
// (MaxX,MaxY). A Rect is valid when MinX <= MaxX and MinY <= MaxY.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// NewRect returns the rectangle spanning the two corner coordinates in
// either order.
func NewRect(x0, y0, x1, y1 float64) Rect {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	return Rect{MinX: x0, MinY: y0, MaxX: x1, MaxY: y1}
}

// RectFromBL returns the a×b rectangle whose bottom-left corner is p.
// This is the candidate-region construction of Theorem 1.
func RectFromBL(p Point, a, b float64) Rect {
	return Rect{MinX: p.X, MinY: p.Y, MaxX: p.X + a, MaxY: p.Y + b}
}

// RectFromTR returns the a×b rectangle whose top-right corner is p.
// This is the rectangle-object construction of the ASRS→ASP reduction
// (Definition 5: each spatial object becomes the top-right corner of an
// a×b rectangle).
func RectFromTR(p Point, a, b float64) Rect {
	return Rect{MinX: p.X - a, MinY: p.Y - b, MaxX: p.X, MaxY: p.Y}
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%g,%g]x[%g,%g]", r.MinX, r.MaxX, r.MinY, r.MaxY)
}

// Width returns MaxX-MinX.
func (r Rect) Width() float64 { return r.MaxX - r.MinX }

// Height returns MaxY-MinY.
func (r Rect) Height() float64 { return r.MaxY - r.MinY }

// Area returns the area of r.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// IsValid reports whether r has non-negative extent in both axes.
func (r Rect) IsValid() bool { return r.MinX <= r.MaxX && r.MinY <= r.MaxY }

// IsEmpty reports whether r has zero area.
func (r Rect) IsEmpty() bool { return r.MinX >= r.MaxX || r.MinY >= r.MaxY }

// Center returns the centroid of r.
func (r Rect) Center() Point {
	return Point{(r.MinX + r.MaxX) / 2, (r.MinY + r.MaxY) / 2}
}

// BL returns the bottom-left corner of r.
func (r Rect) BL() Point { return Point{r.MinX, r.MinY} }

// TR returns the top-right corner of r.
func (r Rect) TR() Point { return Point{r.MaxX, r.MaxY} }

// ContainsOpen reports whether p lies strictly inside r (the "covers"
// relation of Lemma 1: boundary points are not covered).
func (r Rect) ContainsOpen(p Point) bool {
	return r.MinX < p.X && p.X < r.MaxX && r.MinY < p.Y && p.Y < r.MaxY
}

// ContainsClosed reports whether p lies inside r or on its boundary.
func (r Rect) ContainsClosed(p Point) bool {
	return r.MinX <= p.X && p.X <= r.MaxX && r.MinY <= p.Y && p.Y <= r.MaxY
}

// ContainsRect reports whether inner is entirely inside r (closed
// containment: shared boundary counts as contained).
func (r Rect) ContainsRect(inner Rect) bool {
	return r.MinX <= inner.MinX && inner.MaxX <= r.MaxX &&
		r.MinY <= inner.MinY && inner.MaxY <= r.MaxY
}

// ContainsRectOpen reports whether inner is strictly inside the open
// rectangle r: every point of inner (including its boundary) is strictly
// inside r. Used for the conservative full-cover cell classification.
func (r Rect) ContainsRectOpen(inner Rect) bool {
	return r.MinX < inner.MinX && inner.MaxX < r.MaxX &&
		r.MinY < inner.MinY && inner.MaxY < r.MaxY
}

// Intersects reports whether r and s share any point (closed semantics).
func (r Rect) Intersects(s Rect) bool {
	return r.MinX <= s.MaxX && s.MinX <= r.MaxX &&
		r.MinY <= s.MaxY && s.MinY <= r.MaxY
}

// IntersectsOpen reports whether the open interiors of r and s overlap.
func (r Rect) IntersectsOpen(s Rect) bool {
	return r.MinX < s.MaxX && s.MinX < r.MaxX &&
		r.MinY < s.MaxY && s.MinY < r.MaxY
}

// Intersect returns the intersection of r and s. The result may be
// invalid (negative extent) when the rectangles are disjoint; callers
// should check IsValid.
func (r Rect) Intersect(s Rect) Rect {
	return Rect{
		MinX: math.Max(r.MinX, s.MinX),
		MinY: math.Max(r.MinY, s.MinY),
		MaxX: math.Min(r.MaxX, s.MaxX),
		MaxY: math.Min(r.MaxY, s.MaxY),
	}
}

// Union returns the minimum bounding rectangle of r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		MinX: math.Min(r.MinX, s.MinX),
		MinY: math.Min(r.MinY, s.MinY),
		MaxX: math.Max(r.MaxX, s.MaxX),
		MaxY: math.Max(r.MaxY, s.MaxY),
	}
}

// ExpandToInclude grows r in place to contain p.
func (r *Rect) ExpandToInclude(p Point) {
	if p.X < r.MinX {
		r.MinX = p.X
	}
	if p.X > r.MaxX {
		r.MaxX = p.X
	}
	if p.Y < r.MinY {
		r.MinY = p.Y
	}
	if p.Y > r.MaxY {
		r.MaxY = p.Y
	}
}

// EmptyRect returns the identity element for Union: a rectangle that any
// ExpandToInclude/Union will replace.
func EmptyRect() Rect {
	return Rect{
		MinX: math.Inf(1), MinY: math.Inf(1),
		MaxX: math.Inf(-1), MaxY: math.Inf(-1),
	}
}

// BoundingBox returns the minimum bounding rectangle of the given points.
// It returns EmptyRect() for an empty input.
func BoundingBox(pts []Point) Rect {
	box := EmptyRect()
	for _, p := range pts {
		box.ExpandToInclude(p)
	}
	return box
}
