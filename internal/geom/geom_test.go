package geom_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"asrs/internal/geom"
)

func TestNewRectNormalizes(t *testing.T) {
	r := geom.NewRect(5, 7, 1, 2)
	if r.MinX != 1 || r.MinY != 2 || r.MaxX != 5 || r.MaxY != 7 {
		t.Fatalf("NewRect = %v", r)
	}
}

func TestRectBasics(t *testing.T) {
	r := geom.Rect{MinX: 1, MinY: 2, MaxX: 4, MaxY: 8}
	if r.Width() != 3 || r.Height() != 6 || r.Area() != 18 {
		t.Fatalf("dims wrong: %v", r)
	}
	if c := r.Center(); c.X != 2.5 || c.Y != 5 {
		t.Fatalf("center = %v", c)
	}
	if r.BL() != (geom.Point{X: 1, Y: 2}) || r.TR() != (geom.Point{X: 4, Y: 8}) {
		t.Fatal("corners wrong")
	}
	if !r.IsValid() || r.IsEmpty() {
		t.Fatal("validity wrong")
	}
	if (geom.Rect{MinX: 2, MaxX: 1}).IsValid() {
		t.Fatal("invalid rect reported valid")
	}
	if !(geom.Rect{MinX: 1, MaxX: 1, MinY: 0, MaxY: 5}).IsEmpty() {
		t.Fatal("zero-width rect not empty")
	}
}

func TestContainment(t *testing.T) {
	r := geom.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}
	onEdge := geom.Point{X: 0, Y: 5}
	inside := geom.Point{X: 5, Y: 5}
	outside := geom.Point{X: 11, Y: 5}
	if r.ContainsOpen(onEdge) {
		t.Error("open containment includes boundary")
	}
	if !r.ContainsClosed(onEdge) {
		t.Error("closed containment excludes boundary")
	}
	if !r.ContainsOpen(inside) || r.ContainsOpen(outside) {
		t.Error("interior/exterior misclassified")
	}

	inner := geom.Rect{MinX: 0, MinY: 1, MaxX: 5, MaxY: 5}
	if !r.ContainsRect(inner) {
		t.Error("closed rect containment")
	}
	if r.ContainsRectOpen(inner) {
		t.Error("open rect containment should exclude edge-sharing")
	}
	if !r.ContainsRectOpen(geom.Rect{MinX: 1, MinY: 1, MaxX: 5, MaxY: 5}) {
		t.Error("strictly inner rect rejected")
	}
}

func TestIntersectUnion(t *testing.T) {
	a := geom.Rect{MinX: 0, MinY: 0, MaxX: 4, MaxY: 4}
	b := geom.Rect{MinX: 2, MinY: 3, MaxX: 9, MaxY: 9}
	got := a.Intersect(b)
	if got != (geom.Rect{MinX: 2, MinY: 3, MaxX: 4, MaxY: 4}) {
		t.Fatalf("intersect = %v", got)
	}
	u := a.Union(b)
	if u != (geom.Rect{MinX: 0, MinY: 0, MaxX: 9, MaxY: 9}) {
		t.Fatalf("union = %v", u)
	}
	c := geom.Rect{MinX: 10, MinY: 10, MaxX: 12, MaxY: 12}
	if a.Intersects(c) {
		t.Error("disjoint rects intersect")
	}
	if a.Intersect(c).IsValid() {
		t.Error("disjoint intersection valid")
	}
	// Touching rects: closed intersects, open does not.
	d := geom.Rect{MinX: 4, MinY: 0, MaxX: 8, MaxY: 4}
	if !a.Intersects(d) {
		t.Error("touching rects should intersect (closed)")
	}
	if a.IntersectsOpen(d) {
		t.Error("touching rects should not intersect (open)")
	}
}

func TestAnchoredRects(t *testing.T) {
	p := geom.Point{X: 3, Y: 4}
	bl := geom.RectFromBL(p, 2, 5)
	if bl.BL() != p || bl.Width() != 2 || bl.Height() != 5 {
		t.Fatalf("RectFromBL = %v", bl)
	}
	tr := geom.RectFromTR(p, 2, 5)
	if tr.TR() != p || tr.Width() != 2 || tr.Height() != 5 {
		t.Fatalf("RectFromTR = %v", tr)
	}
}

func TestBoundingBox(t *testing.T) {
	pts := []geom.Point{{X: 3, Y: 9}, {X: -2, Y: 4}, {X: 5, Y: 0}}
	box := geom.BoundingBox(pts)
	if box != (geom.Rect{MinX: -2, MinY: 0, MaxX: 5, MaxY: 9}) {
		t.Fatalf("bbox = %v", box)
	}
	empty := geom.BoundingBox(nil)
	if empty.IsValid() {
		t.Fatal("empty bbox should be invalid")
	}
}

// TestUnionProperty: union contains both operands (testing/quick).
func TestUnionProperty(t *testing.T) {
	f := func(x0, y0, x1, y1, x2, y2, x3, y3 float64) bool {
		a := geom.NewRect(x0, y0, x1, y1)
		b := geom.NewRect(x2, y2, x3, y3)
		u := a.Union(b)
		return u.ContainsRect(a) && u.ContainsRect(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestIntersectProperty: intersection is contained in both operands when
// valid.
func TestIntersectProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 500; trial++ {
		a := geom.NewRect(rng.Float64()*10, rng.Float64()*10, rng.Float64()*10, rng.Float64()*10)
		b := geom.NewRect(rng.Float64()*10, rng.Float64()*10, rng.Float64()*10, rng.Float64()*10)
		i := a.Intersect(b)
		if i.IsValid() && (!a.ContainsRect(i) || !b.ContainsRect(i)) {
			t.Fatalf("intersection %v escapes %v ∩ %v", i, a, b)
		}
	}
}

func TestComputeAccuracy(t *testing.T) {
	rects := []geom.Rect{
		{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1},
		{MinX: 0.25, MinY: 3, MaxX: 1.25, MaxY: 4},
	}
	acc := geom.ComputeAccuracy(rects)
	if acc.DX != 0.25 {
		t.Fatalf("DX = %g, want 0.25", acc.DX)
	}
	if acc.DY != 1 {
		t.Fatalf("DY = %g, want 1", acc.DY)
	}
}

func TestComputeAccuracyDegenerate(t *testing.T) {
	acc := geom.ComputeAccuracy([]geom.Rect{{MinX: 1, MinY: 1, MaxX: 1, MaxY: 1}})
	if !math.IsInf(acc.DX, 1) || !math.IsInf(acc.DY, 1) {
		t.Fatalf("degenerate accuracy = %v, want +Inf", acc)
	}
	clamped := acc.Clamp(0.5, 0.25)
	if clamped.DX != 0.5 || clamped.DY != 0.25 {
		t.Fatalf("clamp = %v", clamped)
	}
}

func TestComputeAccuracyFromPoints(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 10, Y: 10}}
	acc := geom.ComputeAccuracyFromPoints(pts, 3, 4)
	// x values: {0, -3, 10, 7} → min gap 3; y values: {0, -4, 10, 6} → 4.
	if acc.DX != 3 || acc.DY != 4 {
		t.Fatalf("accuracy = %v", acc)
	}
}

// TestAccuracyIsMinSeparation (property): no two distinct edge coordinates
// are closer than the reported accuracy.
func TestAccuracyIsMinSeparation(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(20)
		rects := make([]geom.Rect, n)
		for i := range rects {
			x, y := rng.Float64()*100, rng.Float64()*100
			rects[i] = geom.Rect{MinX: x, MinY: y, MaxX: x + 5, MaxY: y + 5}
		}
		acc := geom.ComputeAccuracy(rects)
		var xs []float64
		for _, r := range rects {
			xs = append(xs, r.MinX, r.MaxX)
		}
		for i := range xs {
			for j := range xs {
				d := math.Abs(xs[i] - xs[j])
				if d > 0 && d < acc.DX-1e-12 {
					t.Fatalf("gap %g < DX %g", d, acc.DX)
				}
			}
		}
	}
}

func TestExpandToInclude(t *testing.T) {
	r := geom.EmptyRect()
	r.ExpandToInclude(geom.Point{X: 2, Y: 3})
	r.ExpandToInclude(geom.Point{X: -1, Y: 7})
	if r != (geom.Rect{MinX: -1, MinY: 3, MaxX: 2, MaxY: 7}) {
		t.Fatalf("expand = %v", r)
	}
}

func TestStringers(t *testing.T) {
	if (geom.Point{X: 1, Y: 2}).String() == "" {
		t.Fatal("Point.String empty")
	}
	if (geom.Rect{}).String() == "" {
		t.Fatal("Rect.String empty")
	}
	if (geom.Point{X: 1, Y: 2}).Add(1, 1) != (geom.Point{X: 2, Y: 3}) {
		t.Fatal("Point.Add")
	}
}
