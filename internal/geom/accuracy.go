package geom

import (
	"math"
	"sort"
)

// Accuracy holds the GPS horizontal and vertical accuracies of Definition 7:
// the minimum separation between any two distinct x (resp. y) coordinates of
// rectangle edges. The drop condition of Definition 8 compares grid cell
// extents against these values.
type Accuracy struct {
	DX, DY float64
}

// minSeparation returns the smallest positive gap between distinct values in
// vs. It returns +Inf when fewer than two distinct values exist.
func minSeparation(vs []float64) float64 {
	if len(vs) < 2 {
		return math.Inf(1)
	}
	sorted := make([]float64, len(vs))
	copy(sorted, vs)
	sort.Float64s(sorted)
	min := math.Inf(1)
	for i := 1; i < len(sorted); i++ {
		if d := sorted[i] - sorted[i-1]; d > 0 && d < min {
			min = d
		}
	}
	return min
}

// ComputeAccuracy derives the horizontal/vertical accuracies from a set of
// rectangles per Definition 7: X collects the x-coordinates of all vertical
// edges and Y the y-coordinates of all horizontal edges.
func ComputeAccuracy(rects []Rect) Accuracy {
	xs := make([]float64, 0, 2*len(rects))
	ys := make([]float64, 0, 2*len(rects))
	for _, r := range rects {
		xs = append(xs, r.MinX, r.MaxX)
		ys = append(ys, r.MinY, r.MaxY)
	}
	return Accuracy{DX: minSeparation(xs), DY: minSeparation(ys)}
}

// ComputeAccuracyFromPoints derives the accuracies from point locations. In
// the ASRS→ASP reduction every rectangle edge coordinate is a point
// coordinate shifted by the fixed query extent, so the minimum separation of
// the point coordinates equals the minimum separation of the edge
// coordinates up to the a/b offsets; taking the min over both shifted sets
// is equivalent to taking it over the raw coordinates together with their
// shifted copies.
func ComputeAccuracyFromPoints(pts []Point, a, b float64) Accuracy {
	xs := make([]float64, 0, 2*len(pts))
	ys := make([]float64, 0, 2*len(pts))
	for _, p := range pts {
		xs = append(xs, p.X, p.X-a)
		ys = append(ys, p.Y, p.Y-b)
	}
	return Accuracy{DX: minSeparation(xs), DY: minSeparation(ys)}
}

// Clamp bounds the accuracy from below. Degenerate datasets (all points
// coincident) produce +Inf accuracies; callers that need a finite grid
// resolution clamp to a floor such as the device resolution.
func (a Accuracy) Clamp(floorX, floorY float64) Accuracy {
	out := a
	if math.IsInf(out.DX, 1) || out.DX < floorX {
		out.DX = floorX
	}
	if math.IsInf(out.DY, 1) || out.DY < floorY {
		out.DY = floorY
	}
	return out
}
