// Package shard promotes one-engine serving to a resilient multi-shard
// tier: a Catalog splits a corpus into region-extent shards, each owning
// its own asrs.Engine, pyramid file and grid indexes as an independent
// fault domain; a Router answers extent queries either from the single
// shard that contains the extent (bit-identical to a merged-corpus run
// by construction) or by scatter–gather across slab sub-extents and
// boundary bands with a cross-shard shared pruning bound. Per-shard
// circuit breakers, deadline budgets and quarantine-on-corruption keep
// the blast radius of a sick shard to that shard. See DESIGN.md §11.
package shard

import (
	"fmt"
	"math"
	"path/filepath"
	"sort"

	"asrs"
)

// Config describes how to build a Catalog.
type Config struct {
	// Shards asks for this many equal-population x-slabs (quantile
	// cuts over the seed objects). At least 1; duplicate quantiles
	// collapse, so the realized count can be lower. Ignored when Cuts
	// is set.
	Shards int
	// Cuts lists explicit interior cut x-coordinates, strictly
	// ascending; k cuts make k+1 shards.
	Cuts []float64
	// Engine is the per-shard engine option template. Ingest.WALDir is
	// overridden per shard when WALRoot is set.
	Engine asrs.EngineOptions
	// Composites registers the servable composites (warmed per shard;
	// pyramid files when PyramidBase is set). Names orders them; the
	// first name is primary.
	Composites map[string]*asrs.Composite
	Names      []string
	// PyramidBase, when non-empty, persists each shard's pyramids at
	// PyramidPath(PyramidBase, shard, i, name). Corrupt files are
	// quarantined and rebuilt per shard (asrs.LoadOrBuildPyramidFile)
	// without blocking siblings.
	PyramidBase string
	// WALRoot, when non-empty, gives each shard a durable ingest WAL at
	// <WALRoot>/<shard-name>.
	WALRoot string
	// Lazy defers engine construction (index + pyramid + WAL recovery)
	// to first traffic; WarmAll still forces everything eagerly.
	Lazy bool
	// Logf, when non-nil, receives operational one-liners (pyramid
	// quarantine warnings, lazy-load timings).
	Logf func(format string, args ...any)
}

// Catalog is the shard directory: the x-axis cut points plus one Shard
// per routing slab. Shard i owns objects with x in [cuts[i-1], cuts[i])
// (half-open; the first and last slabs extend to ±infinity), and its
// closed slab [cuts[i-1], cuts[i]] is the routing extent: an extent
// contained in the closed slab can only have answers covering shard-i
// objects, because a region strictly covering an object at x == cuts[i]
// must extend beyond the slab.
type Catalog struct {
	cfg    Config
	seed   *asrs.Dataset
	cuts   []float64
	shards []*Shard
}

// New splits the dataset into shards. The seed dataset is retained (and
// must not be mutated) — band corpora and query-by-example targets are
// served from it in original object order, which is what keeps sharded
// accumulation bit-compatible with a merged-corpus run.
func New(ds *asrs.Dataset, cfg Config) (*Catalog, error) {
	if ds == nil || ds.Schema == nil {
		return nil, fmt.Errorf("shard: catalog requires a dataset with a schema")
	}
	cuts, err := resolveCuts(ds, cfg)
	if err != nil {
		return nil, err
	}
	c := &Catalog{cfg: cfg, seed: ds, cuts: cuts}
	n := len(cuts) + 1
	parts := make([][]asrs.Object, n)
	for _, o := range ds.Objects {
		i := c.ShardFor(o.Loc.X)
		parts[i] = append(parts[i], o)
	}
	for i := 0; i < n; i++ {
		lo, hi := math.Inf(-1), math.Inf(1)
		if i > 0 {
			lo = cuts[i-1]
		}
		if i < len(cuts) {
			hi = cuts[i]
		}
		sh := &Shard{
			cat:     c,
			index:   i,
			name:    fmt.Sprintf("shard-%d", i),
			lo:      lo,
			hi:      hi,
			seed:    &asrs.Dataset{Schema: ds.Schema, Objects: parts[i]},
			breaker: NewBreaker(BreakerConfig{}),
		}
		c.shards = append(c.shards, sh)
	}
	return c, nil
}

// resolveCuts returns the interior cuts: explicit (validated) or
// equal-population quantiles over the seed objects' x-coordinates.
func resolveCuts(ds *asrs.Dataset, cfg Config) ([]float64, error) {
	if len(cfg.Cuts) > 0 {
		for i, c := range cfg.Cuts {
			if math.IsNaN(c) {
				return nil, fmt.Errorf("shard: cut %d is NaN", i)
			}
			if i > 0 && c <= cfg.Cuts[i-1] {
				return nil, fmt.Errorf("shard: cuts must be strictly ascending, got %g after %g", c, cfg.Cuts[i-1])
			}
		}
		return append([]float64(nil), cfg.Cuts...), nil
	}
	k := cfg.Shards
	if k <= 0 {
		k = 1
	}
	if k == 1 || len(ds.Objects) == 0 {
		return nil, nil
	}
	xs := make([]float64, len(ds.Objects))
	for i, o := range ds.Objects {
		xs[i] = o.Loc.X
	}
	sort.Float64s(xs)
	var cuts []float64
	for i := 1; i < k; i++ {
		c := xs[i*len(xs)/k]
		if len(cuts) == 0 || c > cuts[len(cuts)-1] {
			cuts = append(cuts, c)
		}
	}
	return cuts, nil
}

// ShardFor returns the index of the shard owning an object at x
// (half-open slabs, lower edge inclusive).
func (c *Catalog) ShardFor(x float64) int {
	return sort.Search(len(c.cuts), func(i int) bool { return c.cuts[i] > x })
}

// Shards lists the catalog's shards in slab order.
func (c *Catalog) Shards() []*Shard { return c.shards }

// Cuts returns the interior cut x-coordinates.
func (c *Catalog) Cuts() []float64 { return c.cuts }

// Seed returns the merged seed dataset in original object order.
func (c *Catalog) Seed() *asrs.Dataset { return c.seed }

// SearchOptions returns the catalog's engine-template search options —
// the defaults a serving layer starts from when pinning per-request
// overrides (mirroring Engine.SearchOptions).
func (c *Catalog) SearchOptions() asrs.Options { return c.cfg.Engine.Search }

// CurrentObjects returns the live merged corpus: the seed objects in
// original order, then each shard's ingested objects in shard order.
// This is the canonical merged order for band corpora and
// query-by-example targets (DESIGN.md §11).
func (c *Catalog) CurrentObjects() []asrs.Object {
	out := c.seed.Objects
	var extra []asrs.Object
	for _, sh := range c.shards {
		if eng := sh.Loaded(); eng != nil {
			extra = append(extra, eng.IngestedObjects()...)
		}
	}
	if len(extra) > 0 {
		out = append(append(make([]asrs.Object, 0, len(out)+len(extra)), out...), extra...)
	}
	return out
}

// CurrentDataset wraps CurrentObjects with the schema.
func (c *Catalog) CurrentDataset() *asrs.Dataset {
	return &asrs.Dataset{Schema: c.seed.Schema, Objects: c.CurrentObjects()}
}

// WarmAll forces every shard's engine (index, pyramids, WAL recovery)
// eagerly, in slab order. The first failure is returned but remaining
// shards still warm — one bad shard must not block siblings.
func (c *Catalog) WarmAll() error {
	var first error
	for _, sh := range c.shards {
		if _, err := sh.Engine(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// logf forwards to the configured logger.
func (c *Catalog) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// PyramidPath derives one shard's per-composite pyramid file from the
// base path: the primary composite owns "<base>.<shard>", secondary
// composites persist beside it as "<base>.<shard>.<name>" (mirroring
// the single-engine daemon's layout one level down).
func PyramidPath(base, shardName string, i int, composite string) string {
	p := base + "." + shardName
	if i > 0 {
		p += "." + composite
	}
	return p
}

// walDir derives one shard's WAL directory.
func walDir(root, shardName string) string {
	return filepath.Join(root, shardName)
}
