package shard

import (
	"math/rand"
	"sync"
	"time"
)

// BreakerConfig tunes one shard's circuit breaker. The zero value
// selects the defaults; Disable turns the breaker into a pass-through
// (the property tests' configuration: routing exactness must not depend
// on fault isolation).
type BreakerConfig struct {
	// Disable makes Allow always true and failures free.
	Disable bool
	// FailureThreshold is the consecutive-failure count that trips the
	// breaker open (default 3).
	FailureThreshold int
	// BaseBackoff is the first open interval; each re-trip doubles it up
	// to MaxBackoff (defaults 100ms / 30s).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Seed drives the backoff jitter (deterministic per breaker).
	Seed int64
	// Now is the injectable clock (default time.Now), so tests step
	// through open → half-open → closed without sleeping.
	Now func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 3
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 100 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 30 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Breaker is a per-shard circuit breaker: repeated classified failures
// (worker panics, deadline overruns, load failures) trip it open so a
// sick shard stops consuming request budget; after a jittered
// exponential backoff a single half-open probe readmits traffic on
// success or re-trips on failure. Safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig

	mu      sync.Mutex
	state   string // "closed" | "open" | "half-open"
	fails   int    // consecutive failures while closed
	backoff time.Duration
	until   time.Time // open: earliest half-open probe
	probing bool      // half-open: one probe in flight
	trips   uint64
	rng     *rand.Rand
}

// NewBreaker builds a breaker from the config (see BreakerConfig for
// the defaults).
func NewBreaker(cfg BreakerConfig) *Breaker {
	cfg = cfg.withDefaults()
	return &Breaker{
		cfg:     cfg,
		state:   "closed",
		backoff: cfg.BaseBackoff,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Allow reports whether a request may proceed. While open it flips to
// half-open once the backoff elapses, admitting exactly one probe; the
// probe's Success/Failure decides readmission.
func (b *Breaker) Allow() bool {
	if b.cfg.Disable {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case "closed":
		return true
	case "open":
		if b.cfg.Now().Before(b.until) {
			return false
		}
		b.state = "half-open"
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Success records a request that completed healthily.
func (b *Breaker) Success() {
	if b.cfg.Disable {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	if b.state == "half-open" {
		// Probe succeeded: close and reset the backoff ladder.
		b.state = "closed"
		b.probing = false
		b.backoff = b.cfg.BaseBackoff
	}
}

// Failure records a classified fault (panic, deadline overrun, load
// failure). While closed it trips after FailureThreshold consecutive
// failures; a failed half-open probe re-trips with doubled backoff.
func (b *Breaker) Failure() {
	if b.cfg.Disable {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case "half-open":
		b.probing = false
		b.backoff *= 2
		if b.backoff > b.cfg.MaxBackoff {
			b.backoff = b.cfg.MaxBackoff
		}
		b.trip()
	case "closed":
		b.fails++
		if b.fails >= b.cfg.FailureThreshold {
			b.trip()
		}
	}
}

// trip opens the breaker for a jittered backoff interval (locked).
func (b *Breaker) trip() {
	b.state = "open"
	b.fails = 0
	b.trips++
	// Jitter in [backoff/2, backoff): tripped shards across a fleet must
	// not probe in lockstep.
	j := b.backoff/2 + time.Duration(b.rng.Int63n(int64(b.backoff/2)+1))
	b.until = b.cfg.Now().Add(j)
}

// BreakerStatus is a point-in-time snapshot for /stats.
type BreakerStatus struct {
	State               string `json:"state"`
	ConsecutiveFailures int    `json:"consecutive_failures"`
	Trips               uint64 `json:"trips"`
	// RetryInMS is the remaining open interval (0 unless open).
	RetryInMS int64 `json:"retry_in_ms,omitempty"`
}

// Status snapshots the breaker.
func (b *Breaker) Status() BreakerStatus {
	if b.cfg.Disable {
		return BreakerStatus{State: "disabled"}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	st := BreakerStatus{State: b.state, ConsecutiveFailures: b.fails, Trips: b.trips}
	if b.state == "open" {
		if d := b.until.Sub(b.cfg.Now()); d > 0 {
			st.RetryInMS = d.Milliseconds()
		}
	}
	return st
}
