package shard_test

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"asrs"
	"asrs/internal/agg"
	"asrs/internal/asp"
	"asrs/internal/dataset"
	"asrs/internal/shard"
)

func corpus(t *testing.T, n int, seed int64) (*asrs.Dataset, *asrs.Composite, asrs.Query) {
	t.Helper()
	ds := dataset.Random(n, 100, seed)
	f := agg.MustNew(ds.Schema,
		agg.Spec{Kind: agg.Distribution, Attr: "cat"},
		agg.Spec{Kind: agg.Sum, Attr: "val"},
	)
	q := asrs.Query{F: f, Target: []float64{1, 2, 1, 5}}
	return ds, f, q
}

func newCatalog(t *testing.T, ds *asrs.Dataset, f *asrs.Composite, shards int) *shard.Catalog {
	t.Helper()
	cat, err := shard.New(ds, shard.Config{
		Shards:     shards,
		Composites: map[string]*asrs.Composite{"q": f},
		Names:      []string{"q"},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cat.Close() })
	return cat
}

func sameBits(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

func sameRect(a, b asrs.Rect) bool {
	return sameBits(a.MinX, b.MinX) && sameBits(a.MinY, b.MinY) &&
		sameBits(a.MaxX, b.MaxX) && sameBits(a.MaxY, b.MaxY)
}

func sameRep(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !sameBits(a[i], b[i]) {
			return false
		}
	}
	return true
}

// TestRoutedContainedBitIdentity: an extent contained in one shard's
// closed slab must answer bit-identically — region, point, distance and
// representation — to a single merged-corpus engine, for every shard
// count, worker count, with top-k and exclusions in play. This is the
// router's core exactness contract (DESIGN.md §11).
func TestRoutedContainedBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 4; trial++ {
		ds, f, q := corpus(t, 60, rng.Int63())
		oracle, err := asrs.NewEngine(ds, asrs.EngineOptions{})
		if err != nil {
			t.Fatal(err)
		}
		a, b := 6.0, 6.0
		for _, ns := range []int{2, 3, 4} {
			cat := newCatalog(t, ds, f, ns)
			rt := shard.NewRouter(cat, shard.RouterOptions{Breaker: shard.BreakerConfig{Disable: true}})
			for si, sh := range cat.Shards() {
				lo, hi := sh.Slab()
				lo, hi = math.Max(lo, 0), math.Min(hi, 100)
				if hi-lo < a+2 {
					continue
				}
				extent := asrs.Rect{MinX: lo + 0.5, MinY: 5, MaxX: hi - 0.5, MaxY: 95}
				for _, workers := range []int{1, 3} {
					opt := asrs.Options{Workers: workers}
					resp := rt.Query(context.Background(), shard.Request{
						Query: q, A: a, B: b, TopK: 2,
						Exclude: []asrs.Rect{{MinX: lo, MinY: 40, MaxX: lo + 3, MaxY: 44}},
						Extent:  &extent, Options: &opt, Policy: shard.BestEffort,
					})
					oresp := oracle.Query(asrs.QueryRequest{
						Query: q, A: a, B: b, TopK: 2,
						Exclude: []asrs.Rect{{MinX: lo, MinY: 40, MaxX: lo + 3, MaxY: 44}},
						Within:  &extent, Options: &opt,
					})
					if (resp.Err == nil) != (oresp.Err == nil) || (resp.Err != nil && !errors.Is(resp.Err, oresp.Err)) {
						t.Fatalf("trial %d ns=%d shard %d: err mismatch: routed %v oracle %v", trial, ns, si, resp.Err, oresp.Err)
					}
					if resp.Err != nil {
						continue
					}
					if len(resp.Coverage.Searched) != 1 || resp.Coverage.Searched[0] != sh.Name() {
						t.Fatalf("trial %d ns=%d: contained extent searched %v, want exactly [%s]", trial, ns, resp.Coverage.Searched, sh.Name())
					}
					if len(resp.Regions) != len(oresp.Regions) {
						t.Fatalf("trial %d ns=%d shard %d: %d regions vs oracle %d", trial, ns, si, len(resp.Regions), len(oresp.Regions))
					}
					for i := range resp.Regions {
						if !sameRect(resp.Regions[i], oresp.Regions[i]) {
							t.Fatalf("trial %d ns=%d shard %d k=%d: region %v vs oracle %v", trial, ns, si, i, resp.Regions[i], oresp.Regions[i])
						}
						r, o := resp.Results[i], oresp.Results[i]
						if !sameBits(r.Dist, o.Dist) || !sameBits(r.Point.X, o.Point.X) || !sameBits(r.Point.Y, o.Point.Y) || !sameRep(r.Rep, o.Rep) {
							t.Fatalf("trial %d ns=%d shard %d k=%d: result %+v vs oracle %+v", trial, ns, si, i, r, o)
						}
					}
				}
			}
		}
	}
}

// TestRoutedStraddlingBitIdentity: an extent spanning several slabs
// must gather to the merged-corpus windowed optimum — distance and
// representation bit-identical — whether or not the cross-shard shared
// pruning cap is on, at any worker count. The routed region must be a
// genuine optimum of the merged corpus: its anchor's representation,
// recomputed over the full corpus, reproduces the routed distance.
func TestRoutedStraddlingBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	for trial := 0; trial < 4; trial++ {
		ds, f, q := corpus(t, 60, rng.Int63())
		a, b := 7.0, 7.0
		extent := asrs.Rect{MinX: 2, MinY: 2, MaxX: 98, MaxY: 98}
		oregion, ores, _, oerr := asrs.SearchWithin(ds, a, b, q, extent, nil, asrs.Options{})
		if oerr != nil {
			t.Fatal(oerr)
		}
		rects, err := asp.Reduce(ds, a, b, asp.AnchorTR)
		if err != nil {
			t.Fatal(err)
		}
		for _, ns := range []int{2, 3, 4} {
			cat := newCatalog(t, ds, f, ns)
			for _, share := range []bool{false, true} {
				rt := shard.NewRouter(cat, shard.RouterOptions{
					Breaker:           shard.BreakerConfig{Disable: true},
					DisableBoundShare: !share,
				})
				for _, workers := range []int{1, 3} {
					opt := asrs.Options{Workers: workers}
					resp := rt.Query(context.Background(), shard.Request{
						Query: q, A: a, B: b, Extent: &extent, Options: &opt, Policy: shard.Strict,
					})
					if resp.Err != nil {
						t.Fatalf("trial %d ns=%d share=%v: %v", trial, ns, share, resp.Err)
					}
					res := resp.Results[0]
					if !sameBits(res.Dist, ores.Dist) {
						t.Fatalf("trial %d ns=%d share=%v w=%d: dist %x vs oracle %x (%g vs %g)",
							trial, ns, share, workers, math.Float64bits(res.Dist), math.Float64bits(ores.Dist), res.Dist, ores.Dist)
					}
					if !sameRep(res.Rep, ores.Rep) {
						t.Fatalf("trial %d ns=%d share=%v w=%d: rep %v vs oracle %v", trial, ns, share, workers, res.Rep, ores.Rep)
					}
					// Region validity on the merged corpus: recomputing the
					// routed anchor's representation over the full corpus
					// must reproduce the routed distance exactly.
					if !extent.ContainsRect(resp.Regions[0]) {
						t.Fatalf("trial %d: routed region %v escapes extent %v", trial, resp.Regions[0], extent)
					}
					rep := asp.PointRepresentation(rects, f, res.Point)
					if d := q.Distance(rep); !sameBits(d, res.Dist) {
						t.Fatalf("trial %d ns=%d share=%v: routed region not a merged-corpus answer: %g vs %g", trial, ns, share, d, res.Dist)
					}
					_ = oregion
				}
			}
		}
	}
}

// TestRoutedStraddlingTopK: straddling top-k rounds mirror the greedy
// single-engine rounds in distance; every returned region stays in the
// extent and regions do not overlap.
func TestRoutedStraddlingTopK(t *testing.T) {
	ds, f, q := corpus(t, 50, 7)
	a, b := 8.0, 8.0
	extent := asrs.Rect{MinX: 1, MinY: 1, MaxX: 99, MaxY: 99}
	oregions, oresults, oerr := asrs.SearchTopKWithin(ds, a, b, q, 3, nil, extent, asrs.Options{})
	if oerr != nil {
		t.Fatal(oerr)
	}
	cat := newCatalog(t, ds, f, 3)
	rt := shard.NewRouter(cat, shard.RouterOptions{Breaker: shard.BreakerConfig{Disable: true}, DisableBoundShare: true})
	resp := rt.Query(context.Background(), shard.Request{Query: q, A: a, B: b, TopK: 3, Extent: &extent})
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	if len(resp.Regions) != len(oregions) {
		t.Fatalf("routed %d regions, oracle %d", len(resp.Regions), len(oregions))
	}
	if !sameBits(resp.Results[0].Dist, oresults[0].Dist) {
		t.Fatalf("round 0 dist %g vs oracle %g", resp.Results[0].Dist, oresults[0].Dist)
	}
	for i, r := range resp.Regions {
		if !extent.ContainsRect(r) {
			t.Fatalf("region %d escapes extent", i)
		}
		for j := 0; j < i; j++ {
			if r.IntersectsOpen(resp.Regions[j]) {
				t.Fatalf("regions %d and %d overlap", i, j)
			}
		}
	}
}

// TestRoutedNilExtent: a nil extent means whole-corpus search; the
// routed distance must match the plain merged-corpus engine optimum.
func TestRoutedNilExtent(t *testing.T) {
	ds, f, q := corpus(t, 40, 11)
	oracle, err := asrs.NewEngine(ds, asrs.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	oresp := oracle.Query(asrs.QueryRequest{Query: q, A: 6, B: 6})
	if oresp.Err != nil {
		t.Fatal(oresp.Err)
	}
	cat := newCatalog(t, ds, f, 3)
	rt := shard.NewRouter(cat, shard.RouterOptions{Breaker: shard.BreakerConfig{Disable: true}})
	resp := rt.Query(context.Background(), shard.Request{Query: q, A: 6, B: 6})
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	if !sameBits(resp.Results[0].Dist, oresp.Results[0].Dist) {
		t.Fatalf("nil-extent dist %g vs oracle %g", resp.Results[0].Dist, oresp.Results[0].Dist)
	}
	if !sameRep(resp.Results[0].Rep, oresp.Results[0].Rep) {
		t.Fatalf("nil-extent rep %v vs oracle %v", resp.Results[0].Rep, oresp.Results[0].Rep)
	}
}

// TestRouterEdgeCases pins the boundary behaviors: a zero-width extent
// sitting exactly on a shard cut is too small, an extent ending exactly
// at a cut routes contained to the lower shard, and a catalog with
// every breaker tripped fails with the typed retryable error under both
// partial policies.
func TestRouterEdgeCases(t *testing.T) {
	ds, f, q := corpus(t, 50, 13)
	a, b := 6.0, 6.0

	t.Run("zero-extent-on-boundary", func(t *testing.T) {
		cat := newCatalog(t, ds, f, 2)
		rt := shard.NewRouter(cat, shard.RouterOptions{})
		c := cat.Cuts()[0]
		extent := asrs.Rect{MinX: c, MinY: 0, MaxX: c, MaxY: 100}
		resp := rt.Query(context.Background(), shard.Request{Query: q, A: a, B: b, Extent: &extent})
		if !errors.Is(resp.Err, asrs.ErrExtentTooSmall) {
			t.Fatalf("zero-width extent on cut: got %v, want ErrExtentTooSmall", resp.Err)
		}
	})

	t.Run("extent-ending-on-cut-is-contained", func(t *testing.T) {
		cat := newCatalog(t, ds, f, 2)
		rt := shard.NewRouter(cat, shard.RouterOptions{Breaker: shard.BreakerConfig{Disable: true}})
		c := cat.Cuts()[0]
		extent := asrs.Rect{MinX: c - a - 4, MinY: 10, MaxX: c, MaxY: 90}
		resp := rt.Query(context.Background(), shard.Request{Query: q, A: a, B: b, Extent: &extent})
		if resp.Err != nil {
			t.Fatal(resp.Err)
		}
		if len(resp.Coverage.Searched) != 1 || resp.Coverage.Searched[0] != "shard-0" {
			t.Fatalf("extent [.., cut] searched %v, want contained routing to shard-0", resp.Coverage.Searched)
		}
		_, ores, _, err := asrs.SearchWithin(ds, a, b, q, extent, nil, asrs.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !sameBits(resp.Results[0].Dist, ores.Dist) {
			t.Fatalf("edge-contained dist %g vs oracle %g", resp.Results[0].Dist, ores.Dist)
		}
	})

	t.Run("all-shards-tripped", func(t *testing.T) {
		for _, pol := range []shard.PartialPolicy{shard.Strict, shard.BestEffort} {
			cat := newCatalog(t, ds, f, 2)
			rt := shard.NewRouter(cat, shard.RouterOptions{Breaker: shard.BreakerConfig{
				FailureThreshold: 1,
				BaseBackoff:      time.Hour,
				MaxBackoff:       time.Hour,
			}})
			for _, sh := range cat.Shards() {
				sh.Breaker().Failure()
				if st := sh.Breaker().Status(); st.State != "open" {
					t.Fatalf("breaker not open after threshold-1 failure: %+v", st)
				}
			}
			for _, extent := range []asrs.Rect{
				{MinX: 2, MinY: 2, MaxX: 98, MaxY: 98},                // straddling
				{MinX: 2, MinY: 2, MaxX: cat.Cuts()[0] - 1, MaxY: 98}, // contained
			} {
				e := extent
				resp := rt.Query(context.Background(), shard.Request{Query: q, A: a, B: b, Extent: &e, Policy: pol})
				var ue *shard.UnavailableError
				if !errors.As(resp.Err, &ue) {
					t.Fatalf("policy %s extent %v: got %v, want *UnavailableError", pol, e, resp.Err)
				}
				if !ue.Temporary() {
					t.Fatalf("UnavailableError must be retryable")
				}
				if len(ue.Skipped) == 0 {
					t.Fatalf("UnavailableError names no shards")
				}
				for _, s := range ue.Skipped {
					if s.Reason != "breaker_open" {
						t.Fatalf("skip reason %q, want breaker_open", s.Reason)
					}
				}
			}
		}
	})
}

// TestRouterInsertRouting: objects inserted through the router land on
// their owning shards and become visible to routed queries with the
// merged-corpus answer.
func TestRouterInsertRouting(t *testing.T) {
	ds, f, q := corpus(t, 40, 17)
	extra := dataset.Random(20, 100, 18).Objects
	cat := newCatalog(t, ds, f, 3)
	rt := shard.NewRouter(cat, shard.RouterOptions{Breaker: shard.BreakerConfig{Disable: true}, DisableBoundShare: true})
	if err := rt.Insert(extra); err != nil {
		t.Fatal(err)
	}
	merged := cat.CurrentDataset()
	if len(merged.Objects) != len(ds.Objects)+len(extra) {
		t.Fatalf("merged corpus has %d objects, want %d", len(merged.Objects), len(ds.Objects)+len(extra))
	}
	a, b := 6.0, 6.0
	// Straddling extent: dist must match the merged-corpus oracle.
	extent := asrs.Rect{MinX: 3, MinY: 3, MaxX: 97, MaxY: 97}
	_, ores, _, err := asrs.SearchWithin(merged, a, b, q, extent, nil, asrs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	resp := rt.Query(context.Background(), shard.Request{Query: q, A: a, B: b, Extent: &extent})
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	if !sameBits(resp.Results[0].Dist, ores.Dist) {
		t.Fatalf("post-insert straddling dist %g vs oracle %g", resp.Results[0].Dist, ores.Dist)
	}
	// Contained extent: full bit identity against a fresh merged engine.
	sh := cat.Shards()[1]
	lo, hi := sh.Slab()
	extent = asrs.Rect{MinX: lo, MinY: 2, MaxX: hi, MaxY: 98}
	if extent.Width() >= a {
		oracle, err := asrs.NewEngine(merged, asrs.EngineOptions{})
		if err != nil {
			t.Fatal(err)
		}
		oresp := oracle.Query(asrs.QueryRequest{Query: q, A: a, B: b, Within: &extent})
		resp = rt.Query(context.Background(), shard.Request{Query: q, A: a, B: b, Extent: &extent})
		if (resp.Err == nil) != (oresp.Err == nil) {
			t.Fatalf("post-insert contained err mismatch: %v vs %v", resp.Err, oresp.Err)
		}
		if resp.Err == nil {
			r, o := resp.Results[0], oresp.Results[0]
			if !sameBits(r.Dist, o.Dist) || !sameBits(r.Point.X, o.Point.X) || !sameBits(r.Point.Y, o.Point.Y) || !sameRep(r.Rep, o.Rep) {
				t.Fatalf("post-insert contained %+v vs oracle %+v", r, o)
			}
		}
	}
}
