package shard

import (
	"fmt"
	"sync"
	"time"

	"asrs"
	"asrs/internal/faultinject"
)

// Shard is one fault domain: a contiguous x-slab of the corpus served
// by its own asrs.Engine with private grid indexes, pyramid files and
// (optionally) a private ingest WAL. Construction is lazy unless the
// catalog warms it; a failed load is retryable and charged to the
// shard's breaker, never to siblings.
type Shard struct {
	cat   *Catalog
	index int
	name  string
	// lo/hi bound the closed routing slab [lo, hi] (±Inf at the ends).
	// Objects are owned half-open: x in [lo, hi).
	lo, hi float64
	// seed is this shard's slice of the catalog seed corpus, in the seed
	// dataset's original relative order.
	seed    *asrs.Dataset
	breaker *Breaker

	mu  sync.Mutex
	eng *asrs.Engine
}

// Name returns the shard's stable name ("shard-0", "shard-1", …).
func (s *Shard) Name() string { return s.name }

// Index returns the shard's slab position.
func (s *Shard) Index() int { return s.index }

// Slab returns the closed routing slab bounds (±Inf at the ends).
func (s *Shard) Slab() (lo, hi float64) { return s.lo, s.hi }

// Breaker exposes the shard's circuit breaker.
func (s *Shard) Breaker() *Breaker { return s.breaker }

// Seed returns the shard's slice of the catalog seed corpus.
func (s *Shard) Seed() *asrs.Dataset { return s.seed }

// Loaded returns the engine if it has been constructed, else nil —
// without triggering a load.
func (s *Shard) Loaded() *asrs.Engine {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng
}

// Engine returns the shard's engine, constructing it on first use:
// NewEngine over the slab corpus (recovering the shard's WAL when
// configured), then per-composite pyramid binding — corrupt pyramid
// files are quarantined and rebuilt by asrs.LoadOrBuildPyramidFile,
// shard-locally — and index/pyramid warming. A failure leaves the shard
// unloaded (the next call retries) and is the caller's to classify into
// the breaker.
func (s *Shard) Engine() (*asrs.Engine, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.eng != nil {
		return s.eng, nil
	}
	if f, ok := faultinject.Check("shard.load.fail"); ok && f.Action == faultinject.ActError {
		return nil, fmt.Errorf("shard %s: load: %w", s.name, f.Err())
	}
	start := time.Now()
	cfg := s.cat.cfg
	opt := cfg.Engine
	if cfg.WALRoot != "" {
		opt.Ingest.WALDir = walDir(cfg.WALRoot, s.name)
	}
	eng, err := asrs.NewEngine(s.seed, opt)
	if err != nil {
		return nil, fmt.Errorf("shard %s: engine: %w", s.name, err)
	}
	for i, name := range cfg.Names {
		f := cfg.Composites[name]
		if f == nil {
			continue
		}
		if cfg.PyramidBase != "" {
			path := PyramidPath(cfg.PyramidBase, s.name, i, name)
			p, status, perr := asrs.LoadOrBuildPyramidFile(path, eng.Dataset(), f)
			if perr != nil {
				eng.Close()
				return nil, fmt.Errorf("shard %s: pyramid %s: %w", s.name, path, perr)
			}
			if status == asrs.PyramidRebuilt {
				s.cat.logf("shard %s: pyramid %s was corrupt: quarantined and rebuilt", s.name, path)
			}
			if serr := eng.SetPyramid(p); serr != nil {
				eng.Close()
				return nil, fmt.Errorf("shard %s: pyramid %s: %w", s.name, path, serr)
			}
		}
		if werr := eng.Warm(f); werr != nil {
			eng.Close()
			return nil, fmt.Errorf("shard %s: warm %s: %w", s.name, name, werr)
		}
	}
	s.eng = eng
	s.cat.logf("shard %s: loaded %d objects in %s", s.name, len(s.seed.Objects), time.Since(start).Round(time.Millisecond))
	return eng, nil
}

// Close releases the shard's engine (WAL handles) if loaded.
func (s *Shard) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.eng == nil {
		return nil
	}
	err := s.eng.Close()
	s.eng = nil
	return err
}

// Close closes every loaded shard, returning the first error.
func (c *Catalog) Close() error {
	var first error
	for _, sh := range c.shards {
		if err := sh.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
