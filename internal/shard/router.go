package shard

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"asrs"
	"asrs/internal/faultinject"
	"asrs/internal/kernel"
)

// PartialPolicy selects what a routed query does when a shard it needs
// is unavailable (breaker open, worker panic, deadline overrun, load
// failure).
type PartialPolicy string

const (
	// Strict fails the whole request with a typed, retryable
	// *UnavailableError the moment any required shard is skipped.
	Strict PartialPolicy = "strict"
	// BestEffort answers from the surviving shards and reports the
	// skipped ones (and why) in Response.Coverage. A request that loses
	// every shard still fails with *UnavailableError.
	BestEffort PartialPolicy = "best_effort"
)

// Request is one routed query.
type Request struct {
	Query asrs.Query
	// A, B are the answer region's width and height.
	A, B float64
	// TopK requests the k best non-overlapping regions (0 or 1 = best).
	TopK int
	// Exclude lists rectangles no answer may overlap beyond a boundary.
	Exclude []asrs.Rect
	// Extent restricts answers to regions contained in the closed
	// rectangle. Nil means the whole corpus: the router substitutes the
	// object hull expanded by 2a/2b per side, which contains every
	// candidate anchor.
	Extent *asrs.Rect
	// Policy is the partial-result policy (default Strict).
	Policy PartialPolicy
	// Options overrides the per-sub-search options (workers, delta, …).
	// Pyramid and Slabs bindings are discarded: each shard binds its own.
	Options *asrs.Options
}

// SkippedShard names one shard a routed query could not use, and why.
type SkippedShard struct {
	Shard  string `json:"shard"`
	Reason string `json:"reason"`
}

// Coverage reports which shards produced a routed answer.
type Coverage struct {
	// Shards is the catalog size.
	Shards int `json:"shards"`
	// Searched lists the sub-searches that completed (shard names, plus
	// "band@<cut>" boundary bands on straddling queries).
	Searched []string `json:"searched,omitempty"`
	// Skipped lists the shards excluded from this answer.
	Skipped []SkippedShard `json:"skipped,omitempty"`
}

// Complete reports whether no shard was skipped.
func (c Coverage) Complete() bool { return len(c.Skipped) == 0 }

// Response is a routed query's answer.
type Response struct {
	Regions  []asrs.Rect
	Results  []asrs.Result
	Coverage Coverage
	Err      error
}

// UnavailableError is the typed, retryable failure of a routed query
// that lost a shard it needed: under Strict any skip, under BestEffort
// the loss of every shard. The skip list names each lost shard and the
// classified cause.
type UnavailableError struct {
	Skipped []SkippedShard
}

func (e *UnavailableError) Error() string {
	names := make([]string, len(e.Skipped))
	for i, s := range e.Skipped {
		names[i] = s.Shard + " (" + s.Reason + ")"
	}
	return "shard: unavailable: " + strings.Join(names, ", ")
}

// Temporary marks the error retryable: breakers reclose and deadlines
// reset on the next attempt.
func (e *UnavailableError) Temporary() bool { return true }

// RouterOptions tunes the router.
type RouterOptions struct {
	// Breaker configures every shard's circuit breaker (per-shard seeds
	// are derived from Breaker.Seed so jitter never aligns).
	Breaker BreakerConfig
	// DisableBoundShare turns off the cross-shard shared pruning cap on
	// scatter–gather queries. Answers are dist/rep-identical either way
	// (DESIGN.md §11); the switch is the oracle side of the property
	// tests.
	DisableBoundShare bool
	// BudgetFraction is the fraction of the request's remaining deadline
	// each sub-search may spend, so one slow shard cannot starve the
	// gather of its siblings' answers. Defaults to 0.5; values outside
	// (0, 1] select the default. Without a request deadline there is no
	// per-shard budget.
	BudgetFraction float64
}

// Router answers extent queries over a shard catalog. Extents contained
// in one shard's closed slab route to that shard alone — bit-identical
// to a merged-corpus engine by corpus independence of the windowed
// search. Straddling extents scatter per-slab sub-extents plus
// cut-boundary bands and gather the kernel.Better-minimum, sharing a
// monotone best-so-far cap across sub-searches so a shard that already
// found a tight answer prunes its siblings' spaces (DESIGN.md §11).
type Router struct {
	cat *Catalog
	opt RouterOptions
}

// NewRouter builds a router over the catalog and (re)arms each shard's
// breaker from opt.Breaker.
func NewRouter(cat *Catalog, opt RouterOptions) *Router {
	for i, sh := range cat.Shards() {
		cfg := opt.Breaker
		cfg.Seed = cfg.Seed + int64(i)*7919
		sh.breaker = NewBreaker(cfg)
	}
	return &Router{cat: cat, opt: opt}
}

// Catalog returns the routed catalog.
func (r *Router) Catalog() *Catalog { return r.cat }

// Insert routes a batch of objects to their owning shards (half-open
// slab assignment) and appends each group through the shard engine's
// durable ingest path. The batch is atomic per shard, not across
// shards; the first error aborts the remaining groups.
func (r *Router) Insert(objs []asrs.Object) error {
	groups := make(map[int][]asrs.Object)
	for _, o := range objs {
		i := r.cat.ShardFor(o.Loc.X)
		groups[i] = append(groups[i], o)
	}
	idxs := make([]int, 0, len(groups))
	for i := range groups {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		sh := r.cat.Shards()[i]
		eng, err := sh.Engine()
		if err != nil {
			sh.breaker.Failure()
			return err
		}
		if err := eng.InsertBatch(groups[i]); err != nil {
			return fmt.Errorf("shard %s: %w", sh.Name(), err)
		}
	}
	return nil
}

// Query answers one routed request.
func (r *Router) Query(ctx context.Context, req Request) Response {
	if ctx == nil {
		ctx = context.Background()
	}
	pol := req.Policy
	if pol == "" {
		pol = Strict
	}
	if pol != Strict && pol != BestEffort {
		return Response{Err: fmt.Errorf("shard: unknown partial policy %q", req.Policy)}
	}
	if !(req.A > 0) || !(req.B > 0) {
		return Response{Err: fmt.Errorf("shard: region dimensions must be positive, got %g x %g", req.A, req.B)}
	}
	var e asrs.Rect
	if req.Extent != nil {
		e = *req.Extent
		if !e.IsValid() {
			return Response{Err: fmt.Errorf("shard: invalid extent %v", e)}
		}
	} else {
		e = r.defaultExtent(req.A, req.B)
	}
	if e.Width() < req.A || e.Height() < req.B {
		return Response{Err: asrs.ErrExtentTooSmall}
	}
	for _, sh := range r.cat.Shards() {
		if sh.lo <= e.MinX && e.MaxX <= sh.hi {
			return r.containedQuery(ctx, sh, e, req, pol)
		}
	}
	return r.straddlingQuery(ctx, e, req, pol)
}

// defaultExtent is the whole-corpus extent: the object hull expanded by
// 2a/2b per side, which contains every anchor whose region can cover an
// object (anchors live within a/b below-left of the object) and leaves
// room for empty-coverage anchors beside the hull.
func (r *Router) defaultExtent(a, b float64) asrs.Rect {
	objs := r.cat.CurrentObjects()
	if len(objs) == 0 {
		return asrs.Rect{MinX: 0, MinY: 0, MaxX: 2 * a, MaxY: 2 * b}
	}
	e := asrs.Rect{MinX: math.Inf(1), MinY: math.Inf(1), MaxX: math.Inf(-1), MaxY: math.Inf(-1)}
	for _, o := range objs {
		e.MinX = math.Min(e.MinX, o.Loc.X)
		e.MinY = math.Min(e.MinY, o.Loc.Y)
		e.MaxX = math.Max(e.MaxX, o.Loc.X)
		e.MaxY = math.Max(e.MaxY, o.Loc.Y)
	}
	e.MinX -= 2 * a
	e.MaxX += 2 * a
	e.MinY -= 2 * b
	e.MaxY += 2 * b
	return e
}

// subOptions resolves the search options one sub-search runs with:
// the request's override or the catalog's engine template, stripped of
// any cross-corpus bindings (each shard binds its own pyramid and slab
// cache; a band search binds none), with the shared cap installed.
func (r *Router) subOptions(req Request, cap *kernel.ExtCap) asrs.Options {
	opt := r.cat.cfg.Engine.Search
	if req.Options != nil {
		opt = *req.Options
	}
	opt.Pyramid = nil
	opt.Slabs = nil
	opt.Prepared = nil
	opt.SharedCap = cap
	return opt
}

// budgetCtx carves one sub-search's deadline from the request's
// remaining budget.
func (r *Router) budgetCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	dl, ok := ctx.Deadline()
	if !ok {
		return ctx, func() {}
	}
	frac := r.opt.BudgetFraction
	if frac <= 0 || frac > 1 {
		frac = 0.5
	}
	rem := time.Until(dl)
	if rem <= 0 {
		return ctx, func() {}
	}
	return context.WithDeadline(ctx, time.Now().Add(time.Duration(float64(rem)*frac)))
}

// guardPanics runs fn converting panics — real worker bugs or the
// shard.search.panic failpoint — into *kernel.PanicError, keeping the
// blast radius to this sub-search.
func guardPanics(fn func() error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			if pe, ok := v.(*kernel.PanicError); ok {
				err = pe
				return
			}
			err = &kernel.PanicError{Value: v}
		}
	}()
	return fn()
}

// fireShardFaults arms the shard-dispatch failpoints (chaos suite):
// a stalled shard and a panicking shard. Only shard-backed sub-searches
// fire them — a cut-boundary band is the router's own work, not a shard
// fault domain.
func fireShardFaults() {
	if f, ok := faultinject.Check("shard.search.slow"); ok && f.Action == faultinject.ActSleep {
		f.Sleep()
	}
	if f, ok := faultinject.Check("shard.search.panic"); ok && f.Action == faultinject.ActPanic {
		panic(f.PanicValue())
	}
}

// subOutcome is one sub-search's classified result.
type subOutcome struct {
	name       string
	shard      *Shard // nil for band sub-searches
	region     asrs.Rect
	res        asrs.Result
	found      bool
	infeasible bool   // completed healthily with no feasible region
	skipReason string // shard fault: why this shard was skipped
	fatal      error  // non-shard failure: fails the request under any policy
}

// classify folds a completed sub-search's error into the outcome and
// the shard's breaker. Infeasibility is health, not fault; a panic or a
// blown per-shard budget is a shard fault (skippable); a dead parent
// context fails the request itself.
func (r *Router) classify(ctx context.Context, o *subOutcome, err error) {
	br := (*Breaker)(nil)
	if o.shard != nil {
		br = o.shard.breaker
	}
	switch {
	case err == nil:
		if br != nil {
			br.Success()
		}
		o.found = true
	case errors.Is(err, asrs.ErrExtentTooSmall), errors.Is(err, asrs.ErrNoFeasibleRegion):
		if br != nil {
			br.Success()
		}
		o.infeasible = true
	case ctx.Err() != nil:
		// The request itself is dead; nothing shard-specific to record.
		o.fatal = ctx.Err()
	default:
		if br == nil {
			// Band sub-searches run on the router's own corpus slice:
			// failing one is not a shard fault and cannot be skipped
			// without a silent coverage gap.
			o.fatal = err
			return
		}
		br.Failure()
		switch {
		case isPanic(err):
			o.skipReason = fmt.Sprintf("panic: %v", err)
		case errors.Is(err, context.DeadlineExceeded):
			o.skipReason = "deadline: per-shard budget exceeded"
		default:
			o.skipReason = fmt.Sprintf("load: %v", err)
		}
	}
}

func isPanic(err error) bool {
	var pe *kernel.PanicError
	return errors.As(err, &pe)
}

// containedQuery answers an extent contained in one shard's closed slab
// from that shard alone — the full request (TopK, excludes) passes
// through, so the answer carries every bit of a merged-corpus run.
func (r *Router) containedQuery(ctx context.Context, sh *Shard, e asrs.Rect, req Request, pol PartialPolicy) Response {
	cov := Coverage{Shards: len(r.cat.Shards())}
	if !sh.breaker.Allow() {
		cov.Skipped = []SkippedShard{{Shard: sh.Name(), Reason: "breaker_open"}}
		return Response{Coverage: cov, Err: &UnavailableError{Skipped: cov.Skipped}}
	}
	o := subOutcome{name: sh.Name(), shard: sh}
	var resp asrs.QueryResponse
	err := guardPanics(func() error {
		fireShardFaults()
		eng, lerr := sh.Engine()
		if lerr != nil {
			return lerr
		}
		bctx, cancel := r.budgetCtx(ctx)
		defer cancel()
		opt := r.subOptions(req, nil)
		resp = eng.QueryCtx(bctx, asrs.QueryRequest{
			Query:   req.Query,
			A:       req.A,
			B:       req.B,
			TopK:    req.TopK,
			Exclude: req.Exclude,
			Within:  &e,
			Options: &opt,
		})
		return resp.Err
	})
	r.classify(ctx, &o, err)
	switch {
	case o.fatal != nil:
		return Response{Coverage: cov, Err: o.fatal}
	case o.skipReason != "":
		cov.Skipped = []SkippedShard{{Shard: o.name, Reason: o.skipReason}}
		return Response{Coverage: cov, Err: &UnavailableError{Skipped: cov.Skipped}}
	case o.infeasible:
		cov.Searched = []string{o.name}
		return Response{Coverage: cov, Err: err}
	}
	cov.Searched = []string{o.name}
	return Response{Regions: resp.Regions, Results: resp.Results, Coverage: cov, Err: nil}
}

// subTask is one scatter target: a shard's slab sub-extent (engine
// backed) or a cut-boundary band (searched engine-less over the band's
// corpus slice).
type subTask struct {
	name string
	sh   *Shard
	win  asrs.Rect
	band *asrs.Dataset
}

// straddlingQuery scatter–gathers an extent spanning several slabs:
// per-shard sub-extents V_i = E ∩ slab_i answer regions inside one
// slab, and for every interior cut c a band B_c = E ∩ [c-a, c+a]×ℝ
// answers the regions straddling that cut (their bottom-left anchors
// lie within a of the cut, so the band's anchor window contains them).
// Every candidate region of E lies in some sub-extent, each sub-extent
// is inside E, and each sub-search returns its kernel.Better-minimum —
// so the gathered minimum equals the merged-corpus windowed answer.
// TopK runs as k gather rounds with accumulated exclusions, mirroring
// the single-engine greedy rounds.
func (r *Router) straddlingQuery(ctx context.Context, e asrs.Rect, req Request, pol PartialPolicy) Response {
	shards := r.cat.Shards()
	tasks := make([]subTask, 0, 2*len(shards))
	for _, sh := range shards {
		win := asrs.Rect{
			MinX: math.Max(e.MinX, sh.lo), MinY: e.MinY,
			MaxX: math.Min(e.MaxX, sh.hi), MaxY: e.MaxY,
		}
		if win.MinX > win.MaxX {
			continue
		}
		tasks = append(tasks, subTask{name: sh.Name(), sh: sh, win: win})
	}
	merged := r.cat.CurrentObjects()
	for _, c := range r.cat.Cuts() {
		if !(e.MinX < c && c < e.MaxX) {
			continue
		}
		win := asrs.Rect{
			MinX: math.Max(e.MinX, c-req.A), MinY: e.MinY,
			MaxX: math.Min(e.MaxX, c+req.A), MaxY: e.MaxY,
		}
		// Only objects with x strictly inside the band window can have
		// anchor rectangles reaching its anchor window (corpus
		// independence, DESIGN.md §11); the slice keeps merged order.
		var objs []asrs.Object
		for _, o := range merged {
			if win.MinX < o.Loc.X && o.Loc.X < win.MaxX {
				objs = append(objs, o)
			}
		}
		tasks = append(tasks, subTask{
			name: fmt.Sprintf("band@%g", c),
			win:  win,
			band: &asrs.Dataset{Schema: r.cat.Seed().Schema, Objects: objs},
		})
	}

	k := req.TopK
	if k < 1 {
		k = 1
	}
	excl := append([]asrs.Rect(nil), req.Exclude...)
	cov := Coverage{Shards: len(shards)}
	searched := map[string]bool{}
	skipped := map[string]string{}
	var regions []asrs.Rect
	var results []asrs.Result
	for round := 0; round < k; round++ {
		region, best, roundCov, err := r.scatterRound(ctx, tasks, req, excl)
		for _, n := range roundCov.Searched {
			searched[n] = true
		}
		for _, s := range roundCov.Skipped {
			if _, dup := skipped[s.Shard]; !dup {
				skipped[s.Shard] = s.Reason
			}
		}
		if err != nil {
			if errors.Is(err, asrs.ErrNoFeasibleRegion) && round > 0 {
				break
			}
			return Response{Regions: regions, Results: results, Coverage: finishCoverage(cov, searched, skipped), Err: err}
		}
		regions = append(regions, region)
		results = append(results, best)
		excl = append(excl, region)
	}
	return Response{Regions: regions, Results: results, Coverage: finishCoverage(cov, searched, skipped)}
}

func finishCoverage(cov Coverage, searched map[string]bool, skipped map[string]string) Coverage {
	for n := range searched {
		if _, bad := skipped[n]; !bad {
			cov.Searched = append(cov.Searched, n)
		}
	}
	sort.Strings(cov.Searched)
	for n, why := range skipped {
		cov.Skipped = append(cov.Skipped, SkippedShard{Shard: n, Reason: why})
	}
	sort.Slice(cov.Skipped, func(i, j int) bool { return cov.Skipped[i].Shard < cov.Skipped[j].Shard })
	return cov
}

// scatterRound runs one scatter–gather pass and returns the
// kernel.Better-minimum across the sub-searches.
func (r *Router) scatterRound(ctx context.Context, tasks []subTask, req Request, excl []asrs.Rect) (asrs.Rect, asrs.Result, Coverage, error) {
	var sharedCap *kernel.ExtCap
	base := r.cat.cfg.Engine.Search
	if req.Options != nil {
		base = *req.Options
	}
	if len(tasks) > 1 && base.Delta == 0 && !r.opt.DisableBoundShare {
		sharedCap = kernel.NewExtCap()
	}
	outs := make([]subOutcome, len(tasks))
	var wg sync.WaitGroup
	for i := range tasks {
		t := tasks[i]
		o := &outs[i]
		o.name, o.shard = t.name, t.sh
		if t.sh != nil && !t.sh.breaker.Allow() {
			o.skipReason = "breaker_open"
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := guardPanics(func() error {
				opt := r.subOptions(req, sharedCap)
				if t.sh != nil {
					fireShardFaults()
					eng, lerr := t.sh.Engine()
					if lerr != nil {
						return lerr
					}
					bctx, cancel := r.budgetCtx(ctx)
					defer cancel()
					resp := eng.QueryCtx(bctx, asrs.QueryRequest{
						Query: req.Query, A: req.A, B: req.B,
						Exclude: excl, Within: &t.win, Options: &opt,
					})
					if resp.Err != nil {
						return resp.Err
					}
					o.region, o.res = resp.Regions[0], resp.Results[0]
					return nil
				}
				bctx, cancel := r.budgetCtx(ctx)
				defer cancel()
				if opt.Ctx == nil {
					opt.Ctx = bctx
				}
				region, res, _, serr := asrs.SearchWithin(t.band, req.A, req.B, req.Query, t.win, excl, opt)
				if serr != nil {
					return serr
				}
				o.region, o.res = region, res
				return nil
			})
			r.classify(ctx, o, err)
		}()
	}
	wg.Wait()

	var cov Coverage
	var best asrs.Result
	var bestRegion asrs.Rect
	found := false
	completed := 0
	for i := range outs {
		o := &outs[i]
		switch {
		case o.fatal != nil:
			return asrs.Rect{}, asrs.Result{}, cov, o.fatal
		case o.skipReason != "":
			cov.Skipped = append(cov.Skipped, SkippedShard{Shard: o.name, Reason: o.skipReason})
		default:
			if o.shard != nil {
				// Bands don't count: they only cover cut-adjacent regions,
				// so an answer with every shard lost is no answer.
				completed++
			}
			cov.Searched = append(cov.Searched, o.name)
			if o.found && (!found || kernel.Better(o.res, best)) {
				best, bestRegion, found = o.res, o.region, true
			}
		}
	}
	pol := req.Policy
	if pol == "" {
		pol = Strict
	}
	if len(cov.Skipped) > 0 && (pol == Strict || completed == 0) {
		return asrs.Rect{}, asrs.Result{}, cov, &UnavailableError{Skipped: cov.Skipped}
	}
	if !found {
		return asrs.Rect{}, asrs.Result{}, cov, asrs.ErrNoFeasibleRegion
	}
	return bestRegion, best, cov, nil
}

// Stats snapshots the catalog for /stats: slab bounds (nil = unbounded;
// JSON cannot carry ±Inf), load state, breaker state, and the engine's
// own serving counters when loaded.
func (r *Router) Stats() RouterStats {
	shards := r.cat.Shards()
	st := RouterStats{Cuts: r.cat.Cuts(), Shards: make([]ShardInfo, 0, len(shards))}
	for _, sh := range shards {
		info := ShardInfo{
			Name:        sh.Name(),
			Index:       sh.Index(),
			SeedObjects: len(sh.seed.Objects),
			Breaker:     sh.breaker.Status(),
		}
		if !math.IsInf(sh.lo, -1) {
			lo := sh.lo
			info.SlabLo = &lo
		}
		if !math.IsInf(sh.hi, 1) {
			hi := sh.hi
			info.SlabHi = &hi
		}
		if eng := sh.Loaded(); eng != nil {
			info.Loaded = true
			info.Ingested = len(eng.IngestedObjects())
			es := eng.Stats()
			info.Engine = &es
		}
		st.Shards = append(st.Shards, info)
	}
	return st
}

// ShardInfo is one shard's /stats entry.
type ShardInfo struct {
	Name        string            `json:"name"`
	Index       int               `json:"index"`
	SlabLo      *float64          `json:"slab_lo,omitempty"`
	SlabHi      *float64          `json:"slab_hi,omitempty"`
	SeedObjects int               `json:"seed_objects"`
	Loaded      bool              `json:"loaded"`
	Ingested    int               `json:"ingested,omitempty"`
	Breaker     BreakerStatus     `json:"breaker"`
	Engine      *asrs.EngineStats `json:"engine,omitempty"`
}

// RouterStats is the router's /stats document.
type RouterStats struct {
	Cuts   []float64   `json:"cuts,omitempty"`
	Shards []ShardInfo `json:"shards"`
}
