package shard

import (
	"testing"
	"time"
)

// fakeClock is a hand-stepped clock for breaker tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time { return c.t }

func newTestBreaker(threshold int) (*Breaker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := NewBreaker(BreakerConfig{
		FailureThreshold: threshold,
		BaseBackoff:      100 * time.Millisecond,
		MaxBackoff:       time.Second,
		Seed:             42,
		Now:              clk.now,
	})
	return b, clk
}

func TestBreakerTripsAtThreshold(t *testing.T) {
	b, _ := newTestBreaker(3)
	for i := 0; i < 2; i++ {
		b.Failure()
		if !b.Allow() {
			t.Fatalf("breaker opened after %d failures, threshold is 3", i+1)
		}
	}
	b.Failure()
	if b.Allow() {
		t.Fatal("breaker still closed after threshold failures")
	}
	if st := b.Status(); st.State != "open" || st.Trips != 1 {
		t.Fatalf("status %+v, want open with 1 trip", st)
	}
}

func TestBreakerSuccessResetsCount(t *testing.T) {
	b, _ := newTestBreaker(3)
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if !b.Allow() {
		t.Fatal("success did not reset the consecutive-failure count")
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	b, clk := newTestBreaker(1)
	b.Failure()
	if b.Allow() {
		t.Fatal("breaker closed right after trip")
	}
	// Jitter keeps the open interval within [backoff/2, backoff]; one
	// full backoff later the probe must be admitted.
	clk.t = clk.t.Add(100 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("no half-open probe after the backoff elapsed")
	}
	if b.Allow() {
		t.Fatal("second concurrent probe admitted while half-open")
	}
	b.Success()
	if st := b.Status(); st.State != "closed" {
		t.Fatalf("probe success left state %q", st.State)
	}
	if !b.Allow() {
		t.Fatal("breaker not serving after successful probe")
	}
}

func TestBreakerReTripDoublesBackoff(t *testing.T) {
	b, clk := newTestBreaker(1)
	b.Failure()
	clk.t = clk.t.Add(100 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("no probe")
	}
	b.Failure() // failed probe: re-trip with doubled backoff
	if st := b.Status(); st.State != "open" || st.Trips != 2 {
		t.Fatalf("status %+v, want re-tripped", st)
	}
	// Half the doubled backoff is the jitter floor; before it no probe.
	clk.t = clk.t.Add(99 * time.Millisecond)
	if b.Allow() {
		t.Fatal("probe admitted before the doubled backoff's jitter floor")
	}
	clk.t = clk.t.Add(101 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("no probe after the full doubled backoff")
	}
	b.Success()
	// Recovery resets the ladder to the base backoff.
	b.Failure()
	if st := b.Status(); st.State != "open" || st.RetryInMS > 100 {
		t.Fatalf("backoff ladder not reset after recovery: %+v", st)
	}
}

func TestBreakerDisabled(t *testing.T) {
	b := NewBreaker(BreakerConfig{Disable: true})
	for i := 0; i < 10; i++ {
		b.Failure()
	}
	if !b.Allow() {
		t.Fatal("disabled breaker rejected a request")
	}
	if st := b.Status(); st.State != "disabled" {
		t.Fatalf("status %+v", st)
	}
}
