package kernel

import (
	"context"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"asrs/internal/asp"
	"asrs/internal/geom"
)

func TestHeapSortsRandomInput(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(200)
		vals := make([]float64, n)
		h := NewHeap[float64](func(a, b float64) bool { return a < b })
		for i := range vals {
			vals[i] = rng.NormFloat64()
			h.Push(vals[i])
		}
		sort.Float64s(vals)
		for i := 0; i < n; i++ {
			if got := h.Pop(); got != vals[i] {
				t.Fatalf("trial %d: pop %d = %g, want %g", trial, i, got, vals[i])
			}
		}
		if h.Len() != 0 {
			t.Fatalf("heap not empty: %d", h.Len())
		}
	}
}

func TestHeapInterleavedOps(t *testing.T) {
	h := NewHeap[int](func(a, b int) bool { return a < b })
	h.Push(5)
	h.Push(1)
	h.Push(3)
	if got := h.Pop(); got != 1 {
		t.Fatalf("pop = %d, want 1", got)
	}
	h.Push(0)
	if got := h.Peek(); got != 0 {
		t.Fatalf("peek = %d, want 0", got)
	}
	h.Reset()
	if h.Len() != 0 {
		t.Fatal("reset did not empty the heap")
	}
}

func TestBetterIsTotalOrder(t *testing.T) {
	mk := func(d, x, y float64) asp.Result {
		return asp.Result{Dist: d, Point: geom.Point{X: x, Y: y}}
	}
	cases := []struct {
		a, b asp.Result
		want bool
	}{
		{mk(1, 0, 0), mk(2, 0, 0), true},
		{mk(2, 0, 0), mk(1, 0, 0), false},
		{mk(1, -1, 0), mk(1, 0, 0), true},
		{mk(1, 0, 2), mk(1, 0, 3), true},
		{mk(1, 0, 3), mk(1, 0, 3), false}, // irreflexive
	}
	for i, c := range cases {
		if got := Better(c.a, c.b); got != c.want {
			t.Fatalf("case %d: Better = %v, want %v", i, got, c.want)
		}
	}
}

func TestBoundConcurrentOffers(t *testing.T) {
	b := NewBound(0, asp.Result{Dist: 1e18})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			rep := make([]float64, 2)
			for i := 0; i < 1000; i++ {
				d := rng.Float64() * 100
				rep[0] = d
				b.Offer(asp.Result{Dist: d, Point: geom.Point{X: d}, Rep: rep})
			}
		}(g)
	}
	wg.Wait()
	best := b.Best()
	if best.Dist >= 1e18 {
		t.Fatal("no offer landed")
	}
	if best.Rep[0] != best.Dist {
		t.Fatalf("rep not snapshotted at offer time: rep=%g dist=%g", best.Rep[0], best.Dist)
	}
	// A worse offer must not displace the winner.
	if b.Offer(asp.Result{Dist: best.Dist + 1}) {
		t.Fatal("worse offer accepted")
	}
}

func TestBoundApproximateThreshold(t *testing.T) {
	b := NewBound(0.25, asp.Result{Dist: 10})
	if got, want := b.Threshold(), 10/1.25; got != want {
		t.Fatalf("threshold = %g, want %g", got, want)
	}
}

// TestRunDeterministicAcrossWorkers drives the kernel with a synthetic
// branch-and-bound workload (interval subdivision minimizing a bumpy
// function) and asserts the final answer is bit-identical for every
// worker count.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	f := func(x float64) float64 {
		v := (x - 0.6180339) * (x - 0.6180339)
		return v + 0.1*(1+sin13(x))
	}
	solve := func(workers, batch int) asp.Result {
		bound := NewBound(0, asp.Result{Dist: 1e18})
		seed := Item{Space: geom.Rect{MinX: 0, MaxX: 1, MinY: 0, MaxY: 1}, LB: 0}
		Run(workers, batch, []Item{seed}, bound, func(w int, it Item, inc asp.Result, emit func(Item)) asp.Result {
			lo, hi := it.Space.MinX, it.Space.MaxX
			mid := (lo + hi) / 2
			cand := asp.Result{Dist: f(mid), Point: geom.Point{X: mid}}
			if Better(inc, cand) {
				cand = inc
			}
			if hi-lo > 1e-4 {
				// Children's LB: the quadratic term can't be smaller than 0
				// and the bumpy term is ≥ 0, so use a crude interval bound.
				emit(Item{Space: geom.Rect{MinX: lo, MaxX: mid, MinY: 0, MaxY: 1}, LB: it.LB})
				emit(Item{Space: geom.Rect{MinX: mid, MaxX: hi, MinY: 0, MaxY: 1}, LB: it.LB})
			}
			return cand
		}, nil)
		return bound.Best()
	}
	want := solve(1, 0)
	for _, w := range []int{2, 3, 8} {
		got := solve(w, 0)
		if got.Dist != want.Dist || got.Point != want.Point {
			t.Fatalf("workers=%d: %+v, want %+v", w, got, want)
		}
	}
	// The batch width is a throughput knob too: this workload's optimum
	// is unique, so every batch size must land on the same answer bits.
	for _, b := range []int{1, 4, DefaultBatchSize, 100} {
		got := solve(3, b)
		if got.Dist != want.Dist || got.Point != want.Point {
			t.Fatalf("batch=%d: %+v, want %+v", b, got, want)
		}
	}
}

func sin13(x float64) float64 {
	// Cheap deterministic bumpiness without importing math.
	v := x * 13
	v -= float64(int(v))
	return v
}

// TestRunTerminatesOnNaNThreshold: a NaN pruning threshold (e.g. from a
// NaN query target) fails both the break test and the pop test; the
// driver must still drain the heap instead of spinning forever.
func TestRunTerminatesOnNaNThreshold(t *testing.T) {
	nan := math.NaN()
	bound := NewBound(0, asp.Result{Dist: nan})
	processed := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		Run(1, 0, []Item{{LB: 0}, {LB: nan}}, bound,
			func(w int, it Item, inc asp.Result, emit func(Item)) asp.Result {
				processed++
				return inc
			}, nil)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not terminate with a NaN threshold")
	}
	if processed != 2 {
		t.Fatalf("processed = %d, want 2", processed)
	}
}

// TestRunReleasesDroppedItems: every emitted item the driver discards —
// children pruned at the merge barrier and heap leftovers at
// termination — must reach the release hook exactly once.
func TestRunReleasesDroppedItems(t *testing.T) {
	bound := NewBound(0, asp.Result{Dist: 1e18})
	released := 0
	processed := 0
	pushes, _, _ := Run(1, 0, []Item{{LB: 0}}, bound,
		func(w int, it Item, inc asp.Result, emit func(Item)) asp.Result {
			processed++
			// First item finds the optimum and emits children that the
			// merged bound immediately prunes.
			for i := 0; i < 4; i++ {
				emit(Item{LB: 5, Pooled: true})
			}
			return asp.Result{Dist: 1}
		},
		func(it Item) {
			if !it.Pooled {
				t.Error("released a non-pooled seed")
			}
			released++
		})
	if processed != 1 {
		t.Fatalf("processed = %d, want 1", processed)
	}
	if released != 4 {
		t.Fatalf("released = %d, want 4 (all pruned children)", released)
	}
	if pushes != 1 {
		t.Fatalf("pushes = %d, want 1 (seed only)", pushes)
	}
}

// TestRunWorkSteals drives one wide superstep with a pathologically
// skewed cost profile — the first items of the batch (worker 0's deque
// block) sleep while the rest are instant — and asserts (a) idle workers
// steal the straggler's remaining items, and (b) the answer stays
// bit-identical to the sequential run, steals and all.
func TestRunWorkSteals(t *testing.T) {
	const items = 12
	solve := func(workers int) (asp.Result, int) {
		bound := NewBound(0, asp.Result{Dist: 1e18})
		seeds := make([]Item, items)
		for i := range seeds {
			seeds[i] = Item{LB: 0, Space: geom.Rect{MinX: float64(i), MaxX: float64(i) + 1, MinY: 0, MaxY: 1}}
		}
		_, _, steals := Run(workers, items, seeds, bound,
			func(w int, it Item, inc asp.Result, emit func(Item)) asp.Result {
				if it.Space.MinX < float64(items)/2 {
					time.Sleep(10 * time.Millisecond) // worker 0's block is slow
				}
				cand := asp.Result{Dist: 100 - it.Space.MinX, Point: geom.Point{X: it.Space.MinX}}
				if Better(inc, cand) {
					cand = inc
				}
				return cand
			}, nil)
		return bound.Best(), steals
	}
	want, _ := solve(1)
	got, steals := solve(4)
	if got.Dist != want.Dist || got.Point != want.Point {
		t.Fatalf("workers=4: %+v, want %+v", got, want)
	}
	if steals == 0 {
		t.Fatal("expected idle workers to steal from the slow worker's deque")
	}
}

// TestRunCtxCancellation: a context cancelled mid-search must stop the
// loop at the next superstep boundary, release every unprocessed heap
// item exactly once, report ctx.Err(), and leave no worker goroutine
// behind (the -race run doubles as the leak/teardown check). The
// workload regrows the heap forever, so only cancellation terminates it.
func TestRunCtxCancellation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		bound := NewBound(0, asp.Result{Dist: 1e18})
		var processed atomic.Int64
		var released atomic.Int64
		done := make(chan error, 1)
		go func() {
			_, _, _, err := RunCtx(ctx, workers, 4, []Item{{LB: 0, Pooled: true}}, bound,
				func(w int, it Item, inc asp.Result, emit func(Item)) asp.Result {
					if processed.Add(1) == 16 {
						cancel() // cancel from inside a round: the round must still complete
					}
					emit(Item{LB: 0, Pooled: true})
					emit(Item{LB: 0, Pooled: true})
					return inc
				},
				func(it Item) { released.Add(1) })
			done <- err
		}()
		var err error
		select {
		case err = <-done:
		case <-time.After(30 * time.Second):
			t.Fatalf("workers=%d: RunCtx did not stop after cancellation", workers)
		}
		if err != context.Canceled {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		// Conservation: every processed item emitted two children; all
		// items are either processed or released, minus the one seed.
		if p, r := processed.Load(), released.Load(); p+r != 2*p+1 {
			t.Fatalf("workers=%d: processed=%d released=%d — leftovers not drained exactly once", workers, p, r)
		}
		cancel()
	}
}

// TestRunCtxDeadline: an already expired deadline must return before
// processing anything.
func TestRunCtxDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	bound := NewBound(0, asp.Result{Dist: 1e18})
	processed := 0
	released := 0
	_, _, _, err := RunCtx(ctx, 2, 0, []Item{{LB: 0}, {LB: 1}}, bound,
		func(w int, it Item, inc asp.Result, emit func(Item)) asp.Result {
			processed++
			return inc
		},
		func(it Item) { released++ })
	if err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if processed != 0 || released != 2 {
		t.Fatalf("processed=%d released=%d, want 0 and 2", processed, released)
	}
}

// TestDequeTake exercises the packed-CAS deque directly: front pops and
// back steals must partition the range exactly once.
func TestDequeTake(t *testing.T) {
	var d deque
	d.set(3, 9)
	seen := map[int]bool{}
	for i := 0; i < 3; i++ {
		v, ok := d.take(true)
		if !ok {
			t.Fatal("front take failed")
		}
		seen[v] = true
	}
	for {
		v, ok := d.take(false)
		if !ok {
			break
		}
		if seen[v] {
			t.Fatalf("item %d claimed twice", v)
		}
		seen[v] = true
	}
	for i := 3; i < 9; i++ {
		if !seen[i] {
			t.Fatalf("item %d never claimed", i)
		}
	}
	if _, ok := d.take(true); ok {
		t.Fatal("take from empty deque succeeded")
	}
}

func TestWorkersResolution(t *testing.T) {
	if Workers(4) != 4 {
		t.Fatal("explicit worker count not honored")
	}
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Fatal("auto worker count must be at least 1")
	}
}
