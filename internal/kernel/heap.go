package kernel

// Heap is a small generic binary min-heap, replacing the pre-generics
// container/heap Push/Pop boilerplate that the search packages used to
// carry. The ordering is supplied at construction; ties keep the sift
// order deterministic given a deterministic operation sequence, which the
// concurrent kernel relies on.
type Heap[T any] struct {
	data []T
	less func(a, b T) bool
}

// NewHeap returns an empty heap ordered by less.
func NewHeap[T any](less func(a, b T) bool) *Heap[T] {
	return &Heap[T]{less: less}
}

// Len returns the number of elements.
func (h *Heap[T]) Len() int { return len(h.data) }

// Peek returns the minimum element without removing it. It panics on an
// empty heap, like indexing an empty slice would.
func (h *Heap[T]) Peek() T { return h.data[0] }

// Push adds v to the heap.
func (h *Heap[T]) Push(v T) {
	h.data = append(h.data, v)
	h.up(len(h.data) - 1)
}

// Pop removes and returns the minimum element.
func (h *Heap[T]) Pop() T {
	n := len(h.data) - 1
	h.data[0], h.data[n] = h.data[n], h.data[0]
	v := h.data[n]
	var zero T
	h.data[n] = zero // release references held by the vacated slot
	h.data = h.data[:n]
	if n > 0 {
		h.down(0)
	}
	return v
}

// Reset empties the heap, keeping its backing storage.
func (h *Heap[T]) Reset() {
	var zero T
	for i := range h.data {
		h.data[i] = zero
	}
	h.data = h.data[:0]
}

func (h *Heap[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.data[i], h.data[parent]) {
			break
		}
		h.data[i], h.data[parent] = h.data[parent], h.data[i]
		i = parent
	}
}

func (h *Heap[T]) down(i int) {
	n := len(h.data)
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && h.less(h.data[l], h.data[m]) {
			m = l
		}
		if r < n && h.less(h.data[r], h.data[m]) {
			m = r
		}
		if m == i {
			return
		}
		h.data[i], h.data[m] = h.data[m], h.data[i]
		i = m
	}
}
