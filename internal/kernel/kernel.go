// Package kernel is the concurrent best-first search core shared by
// DS-Search (internal/dssearch), GI-DS (internal/gridindex) and the MaxRS
// adaptation (internal/maxrs). It owns the space min-heap, the worker
// pool, and the shared pruning bound; the search packages supply a
// process function that discretizes, bounds and splits one space.
//
// # Execution model: deterministic supersteps
//
// The paper's best-first loop is embarrassingly parallel at the space
// level — each popped space is processed independently, coupled only
// through the global best-so-far bound. A fully asynchronous pool would
// exploit that, but its answers could depend on scheduling whenever
// several candidate points tie on distance (common with integer-count
// aggregators). Instead the kernel runs in supersteps:
//
//  1. Snapshot the shared bound; terminate if the cheapest space cannot
//     beat it.
//  2. Pop a fixed-size batch of spaces (batchSize, independent of the
//     worker count) that survive the snapshot threshold.
//  3. Process the batch's spaces concurrently under work stealing: the
//     batch is split into per-worker deques (contiguous index blocks);
//     each worker pops from the front of its own deque and, when it runs
//     dry, steals from the back of a victim's. Each space is a pure
//     function of (space, snapshot): workers start from the snapshot
//     incumbent, improve it locally with candidates found inside the
//     space, and collect child spaces. Workers never observe each other's
//     mid-round finds.
//  4. Barrier. Offer every space's local best to the shared bound (the
//     Better order is total, so the merged optimum is independent of
//     merge order), then push children onto the heap in batch order.
//
// Every structural decision therefore depends only on deterministic
// state, so the final answer — and every intermediate heap state — is
// bit-identical for any worker count and any goroutine schedule. Work
// stealing does not weaken this: each batch item's outcome is recorded
// in its own slot regardless of which worker processed it, processing is
// pure in (item, snapshot), and the merge at the barrier walks slots in
// batch order — so stealing only changes *which CPU* runs an item, never
// what the item computes or when its children enter the heap. The price
// of supersteps is bound freshness: a worker prunes against the optimum
// as of the round start rather than the freshest global value, wasting
// at most one batch of lookahead near convergence. The exactness
// theorems and the (1+δ) guarantee carry over unchanged: a space is only
// discarded when its lower bound reaches a threshold derived from some
// already-achieved answer distance, exactly as in the sequential
// pseudocode.
//
// Stealing exists because space costs are heavily skewed: one space near
// the optimum boundary can cost orders of magnitude more than its batch
// peers (deep refinement, large mini-sweeps). A fixed partition would
// idle every other worker behind the straggler for the rest of the
// round; with deques the idle workers drain the straggler's remaining
// items instead, which is exactly the skew that batched serving
// workloads expose.
package kernel

import (
	"context"
	"runtime"
	"runtime/debug"
	"sync/atomic"

	"asrs/internal/asp"
	"asrs/internal/faultinject"
	"asrs/internal/geom"
)

// DefaultBatchSize is the number of spaces popped per superstep when
// the caller does not choose one. It is deliberately NOT derived from
// the worker count: the heap trajectory must be identical for every
// Workers setting or answers could differ between deployments. 32 keeps
// a wide machine busy while bounding the stale-bound lookahead.
const DefaultBatchSize = 32

// Item is one unit of best-first work: a candidate space, its Equation 1
// lower bound, and the ids (indices into the processor's master rectangle
// array) of the rectangle objects whose interiors intersect it. Ids are
// 4-byte indices rather than materialized rectangle copies so that the
// subsets flowing through the heap cost a tenth of the memory and recycle
// through the processor's per-worker arenas.
type Item struct {
	LB    float64
	Space geom.Rect
	// Clip is the running intersection of this item's space with every
	// ancestor space. Child spaces are cell MBRs whose float upper edges
	// can overshoot the parent by an ulp, so Ids — filtered down the
	// ancestor chain — is exactly the master set open-intersecting Clip,
	// not Space. Processors that consult query-global structures (the
	// dssearch SAT layer) clamp against Clip to stay consistent with the
	// chain-filtered subset. The kernel itself never reads it.
	Clip geom.Rect
	Ids  []int32
	// Pooled marks id slices owned by the search's arena (the processor
	// recycles them after use); seed items passed by callers keep their
	// slices.
	Pooled bool
}

// ProcessFunc handles one popped space. worker identifies the worker slot
// (0 ≤ worker < Workers) so the processor can use per-worker scratch;
// incumbent is the shared bound's snapshot at the start of the superstep;
// emit enqueues child spaces. The return value is the processor's local
// best — incumbent if nothing better was found inside the space.
//
// Processing must be a pure function of (item, incumbent) plus per-worker
// scratch whose contents never influence results; this is what makes the
// search schedule-independent.
type ProcessFunc func(worker int, it Item, incumbent asp.Result, emit func(Item)) asp.Result

// Workers resolves a worker-count option: values ≤ 0 select
// runtime.GOMAXPROCS(0).
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// outcome collects one item's deterministic processing result. emit is
// the slot's reusable child-collector closure, created once per Run —
// allocating it per processed item would dominate the steady-state
// allocation count.
type outcome struct {
	best     asp.Result
	children []Item
	emit     func(Item)
}

// deque is one worker's share of a superstep batch: a contiguous index
// range packed into a single atomic word (lo in the high half, hi
// exclusive in the low half). The owner pops from the front (lo++),
// thieves steal from the back (hi--); both sides race through CAS on
// the one word, so every item is claimed exactly once.
type deque struct {
	_ [56]byte // pad to a cache line so deques don't false-share
	b atomic.Uint64
}

func (d *deque) set(lo, hi int) { d.b.Store(uint64(lo)<<32 | uint64(hi)) }

// take claims one item: the front item when front is true (owner), the
// back item otherwise (thief). ok=false means the deque is empty.
func (d *deque) take(front bool) (int, bool) {
	for {
		b := d.b.Load()
		lo, hi := int(b>>32), int(b&0xffffffff)
		if lo >= hi {
			return 0, false
		}
		if front {
			if d.b.CompareAndSwap(b, uint64(lo+1)<<32|uint64(hi)) {
				return lo, true
			}
		} else {
			if d.b.CompareAndSwap(b, uint64(lo)<<32|uint64(hi-1)) {
				return hi - 1, true
			}
		}
	}
}

// Run drives the best-first loop to exhaustion and returns heap work
// counters (total pushes including seeds, the maximum heap size, and the
// number of within-superstep steals). batchSize is the superstep batch
// width (values <= 0 select DefaultBatchSize); like the worker count it
// is a throughput knob — answers are deterministic for any fixed batch
// size, and the search packages' determinism tests assert they do not
// depend on it either. bound carries the incumbent in and the final
// answer out. release, when non-nil, is called exactly once for every
// emitted item that Run drops without handing it to process (children
// pruned at the merge barrier, and heap leftovers when the bound
// terminates the loop), so processors that pool per-item resources can
// reclaim them; processed items are the processor's own responsibility.
func Run(workers, batchSize int, seeds []Item, bound *Bound, process ProcessFunc, release func(Item)) (pushes, maxHeap, steals int) {
	pushes, maxHeap, steals, _ = RunCtx(context.Background(), workers, batchSize, seeds, bound, process, release)
	return pushes, maxHeap, steals
}

// RunCtx is Run with cooperative cancellation: the context is checked
// once per superstep, at the round boundary where no worker is mid-item.
// On cancellation the loop stops before popping the next batch, every
// unprocessed heap item is handed to release, the persistent worker pool
// is torn down (no goroutine leaks), and err is ctx.Err()
// (context.Canceled or context.DeadlineExceeded). The bound still holds
// the best result found so far — callers decide whether a partial
// incumbent is useful. Because the check sits at the barrier, a round in
// flight always completes: cancellation never produces a torn superstep,
// so searches that are NOT cancelled retain the bit-identical-answers
// guarantee unchanged, and a cancelled search costs at most one batch of
// extra work after the deadline.
func RunCtx(ctx context.Context, workers, batchSize int, seeds []Item, bound *Bound, process ProcessFunc, release func(Item)) (pushes, maxHeap, steals int, err error) {
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	h := NewHeap[Item](func(a, b Item) bool { return a.LB < b.LB })
	for _, s := range seeds {
		h.Push(s)
	}
	pushes = len(seeds)
	workers = Workers(workers)

	batch := make([]Item, 0, batchSize)
	outs := make([]outcome, batchSize)
	for i := range outs {
		o := &outs[i]
		o.emit = func(c Item) { o.children = append(o.children, c) }
	}

	// Persistent worker pool: goroutines are spawned once per Run (lazily,
	// at the first multi-item round) and parked between supersteps, so the
	// per-op allocation count does not grow with the worker count the way
	// per-round goroutine spawning would make it. Coordinator → worker
	// round state (batch, outs, deques, incumbent, n) is published before
	// the start-channel sends and read back after the done-channel
	// receives, so the channel operations order all access.
	var (
		n         int
		incumbent asp.Result
		deques    []deque
		stolen    atomic.Int64
		start     chan bool // one token per worker per round; false = quit
		done      chan struct{}
		spawned   int
		panicked  atomic.Pointer[PanicError]
	)
	// runItem processes one batch item behind the panic boundary: a
	// processor panic is recovered HERE, on whichever goroutine ran the
	// item, so the worker survives to finish its round, the barrier
	// sees every done signal (no deadlock), and the pool tears down
	// normally (no goroutine leak). The first panic is recorded and
	// becomes the run's typed error at the barrier; the slot's local
	// best falls back to the round's incumbent — a safe merge value —
	// and any children the item emitted before dying are discarded
	// below rather than searched, since the query is failing anyway.
	runItem := func(w, i int) {
		o := &outs[i]
		defer func() {
			if v := recover(); v != nil {
				panicked.CompareAndSwap(nil, &PanicError{Value: v, Stack: debug.Stack()})
				o.best = incumbent
			}
		}()
		if f, ok := faultinject.Check("kernel.process.panic"); ok && f.Action == faultinject.ActPanic {
			panic(f.PanicValue())
		}
		o.best = process(w, batch[i], incumbent, o.emit)
	}
	// runRound is the work-stealing loop of one worker: drain the front
	// of the worker's own deque, then steal single items from the back of
	// the other workers' deques until a full victim scan comes up empty.
	// Item i's outcome lands in outs[i] no matter who ran it, so the
	// merge below is oblivious to the schedule.
	runRound := func(w int) {
		for {
			i, ok := deques[w].take(true)
			if !ok {
				break
			}
			runItem(w, i)
		}
		for {
			hit := false
			for off := 1; off < workers; off++ {
				v := w + off
				if v >= workers {
					v -= workers
				}
				if i, ok := deques[v].take(false); ok {
					stolen.Add(1)
					runItem(w, i)
					hit = true
					break
				}
			}
			if !hit {
				return
			}
		}
	}
	defer func() {
		for i := 0; i < spawned; i++ {
			start <- false
		}
	}()

	stop := ctx.Done()
	for h.Len() > 0 {
		if h.Len() > maxHeap {
			maxHeap = h.Len()
		}
		incumbent = bound.Best()
		thresh := bound.Threshold()
		if h.Peek().LB >= thresh {
			break // every remaining space is bounded away from improving
		}
		// Cancellation is checked after the termination test on purpose:
		// a search whose answer is already fully determined must return
		// it, not discard it as DeadlineExceeded because the deadline
		// happened to fire a beat before the clean break above.
		select {
		case <-stop:
			err = ctx.Err()
		default:
		}
		if err != nil {
			break
		}
		batch = batch[:0]
		for h.Len() > 0 && len(batch) < batchSize && h.Peek().LB < thresh {
			batch = append(batch, h.Pop())
		}
		if len(batch) == 0 {
			// A NaN threshold or lower bound (e.g. a NaN query target)
			// fails both the break test above and the pop test, which
			// would spin this loop forever on a non-empty heap. Pop one
			// item unconditionally — the sequential loop's behavior — so
			// the search always drains and terminates.
			batch = append(batch, h.Pop())
		}
		n = len(batch)
		for i := 0; i < n; i++ {
			outs[i].children = outs[i].children[:0]
		}

		if workers == 1 || n == 1 {
			// Inline fast path: no goroutines for sequential runs or
			// single-item rounds (results are identical either way).
			for i := 0; i < n; i++ {
				runItem(0, i)
			}
		} else {
			if spawned == 0 {
				start = make(chan bool)
				done = make(chan struct{})
				deques = make([]deque, workers)
				for w := 1; w < workers; w++ {
					go func(w int) {
						for <-start {
							runRound(w)
							done <- struct{}{}
						}
					}(w)
				}
				spawned = workers - 1
			}
			// Deal the batch into contiguous per-worker blocks. Workers
			// whose block is empty go straight to stealing.
			per, rem := n/workers, n%workers
			lo := 0
			for w := 0; w < workers; w++ {
				hi := lo + per
				if w < rem {
					hi++
				}
				deques[w].set(lo, hi)
				lo = hi
			}
			for i := 0; i < spawned; i++ {
				start <- true
			}
			runRound(0) // the coordinator doubles as worker 0
			for i := 0; i < spawned; i++ {
				<-done
			}
		}

		// Slow-barrier failpoint: stalls the coordinator between the join
		// and the merge, where a real straggler (page fault, scheduler
		// preemption) would sit. Answers must be unaffected — only
		// latency moves — which is exactly what the chaos suite asserts.
		if f, ok := faultinject.Check("kernel.barrier.slow"); ok && f.Action == faultinject.ActSleep {
			f.Sleep()
		}
		// A processor panic poisons the run: the query converts to a
		// typed per-query error instead of killing the process. This
		// round's outcomes are discarded — the local bests may reflect
		// partially processed items — and its children are released, so
		// the bound still holds the last fully merged incumbent.
		if pe := panicked.Load(); pe != nil {
			err = pe
			if release != nil {
				for i := 0; i < n; i++ {
					for _, c := range outs[i].children {
						release(c)
					}
				}
			}
			break
		}
		// Deterministic merge: candidates first (order-independent under
		// the total order), then children in batch order so the heap
		// trajectory is reproducible.
		for i := 0; i < n; i++ {
			bound.Offer(outs[i].best)
		}
		// Share this round's progress with any sibling searches attached
		// to the same external cap (cross-shard scatter–gather), then
		// fold their progress into this round's merged threshold.
		bound.PublishExternal()
		merged := bound.Threshold()
		for i := 0; i < n; i++ {
			for _, c := range outs[i].children {
				if c.LB >= merged {
					// Already bounded away by this round's finds.
					if release != nil {
						release(c)
					}
					continue
				}
				h.Push(c)
				pushes++
			}
		}
	}
	if release != nil {
		for h.Len() > 0 {
			release(h.Pop())
		}
	}
	return pushes, maxHeap, int(stolen.Load()), err
}
