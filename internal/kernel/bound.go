package kernel

import (
	"math"
	"sync/atomic"

	"asrs/internal/asp"
)

// Better is the canonical total order on candidate answers: smaller
// distance wins, ties broken on the point (X, then Y). Because it is a
// total order, the minimum of any candidate set is independent of the
// order the candidates were merged in — this is what makes the concurrent
// search's final answer schedule-independent.
func Better(a, b asp.Result) bool {
	if a.Dist != b.Dist {
		return a.Dist < b.Dist
	}
	if a.Point.X != b.Point.X {
		return a.Point.X < b.Point.X
	}
	return a.Point.Y < b.Point.Y
}

// Bound is the shared pruning bound of a concurrent best-first search:
// the best answer found so far. Under Run's superstep protocol it is
// written only at merge barriers and snapshotted at round starts, so
// workers prune against the round-start optimum; the atomic pointer and
// the CAS Offer loop exist so that code *outside* the driver — progress
// reporting, a future work-stealing variant, tests — can read or offer
// concurrently without tearing. Offer uses the total Better order, so
// the installed winner is independent of offer order.
//
// The threshold derived from the bound is the pruning cutoff of the
// paper's Equation 1: d_opt for the exact algorithm, d_opt/(1+δ) for the
// (1+δ)-approximate variant (§6).
type Bound struct {
	delta float64
	cur   atomic.Pointer[asp.Result]
	ext   *ExtCap
}

// NewBound returns a bound seeded with the given incumbent. delta > 0
// selects the approximate threshold.
func NewBound(delta float64, seed asp.Result) *Bound {
	b := &Bound{delta: delta}
	r := seed
	r.Rep = append([]float64(nil), seed.Rep...)
	b.cur.Store(&r)
	return b
}

// Best returns the current best answer.
func (b *Bound) Best() asp.Result { return *b.cur.Load() }

// Threshold returns the current pruning cutoff: spaces whose lower bound
// reaches it cannot improve the answer (or cannot improve it by more than
// the (1+δ) guarantee allows).
//
// When an external cap is attached (SetExternal), a sibling search's
// published best folds in with OPEN semantics: the cutoff contributed by
// the cap is nextafter(cap', +Inf) (cap' = cap/(1+δ) under the
// approximate variant), so through the driver's closed `LB >= thresh`
// comparisons a foreign cap only prunes spaces whose lower bound is
// STRICTLY worse than a distance some sibling already achieved. A space
// containing a candidate at distance ≤ the global optimum therefore can
// never be pruned by a foreign cap — only by this search's own bound —
// which keeps the gathered minimum across sibling searches exact (see
// DESIGN.md §11).
func (b *Bound) Threshold() float64 {
	d := b.cur.Load().Dist
	if b.delta > 0 {
		d /= 1 + b.delta
	}
	if b.ext != nil {
		c := b.ext.Load()
		if b.delta > 0 {
			c /= 1 + b.delta
		}
		if c = math.Nextafter(c, math.Inf(1)); c < d {
			d = c
		}
	}
	return d
}

// SetExternal attaches a cross-search shared cap. Call before the search
// starts; the driver publishes into it at merge barriers and Threshold
// folds it in with open semantics. A nil cap detaches.
func (b *Bound) SetExternal(c *ExtCap) { b.ext = c }

// PublishExternal offers the current best distance to the attached
// external cap (no-op without one). The driver calls this at merge
// barriers so sibling searches prune against this search's progress.
func (b *Bound) PublishExternal() {
	if b.ext != nil {
		b.ext.Publish(b.cur.Load().Dist)
	}
}

// ExtCap is a monotone-decreasing shared distance cap: the best answer
// distance achieved so far across a set of cooperating searches (the
// cross-shard scatter–gather bound). It starts at +Inf and Publish
// CAS-mins achieved distances into it. Distinct searches attach the same
// cap via Bound.SetExternal; each search's own bound stays authoritative
// for its answer — the cap only tightens pruning.
type ExtCap struct {
	bits atomic.Uint64
}

// NewExtCap returns a cap initialized to +Inf.
func NewExtCap() *ExtCap {
	c := &ExtCap{}
	c.bits.Store(math.Float64bits(math.Inf(1)))
	return c
}

// Load returns the current cap value.
func (c *ExtCap) Load() float64 {
	return math.Float64frombits(c.bits.Load())
}

// Publish lowers the cap to d if d is smaller. NaN is never installed
// (an undefined distance must not suppress sibling work).
func (c *ExtCap) Publish(d float64) {
	for {
		cur := c.bits.Load()
		if !(d < math.Float64frombits(cur)) {
			return
		}
		if c.bits.CompareAndSwap(cur, math.Float64bits(d)) {
			return
		}
	}
}

// Offer installs r as the new best if it beats the current one under
// Better, copying the representation so the caller may keep reusing its
// scratch buffer. It reports whether r was installed.
func (b *Bound) Offer(r asp.Result) bool {
	for {
		cur := b.cur.Load()
		if !Better(r, *cur) {
			return false
		}
		nr := r
		nr.Rep = append([]float64(nil), r.Rep...)
		if b.cur.CompareAndSwap(cur, &nr) {
			return true
		}
	}
}
