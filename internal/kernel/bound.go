package kernel

import (
	"sync/atomic"

	"asrs/internal/asp"
)

// Better is the canonical total order on candidate answers: smaller
// distance wins, ties broken on the point (X, then Y). Because it is a
// total order, the minimum of any candidate set is independent of the
// order the candidates were merged in — this is what makes the concurrent
// search's final answer schedule-independent.
func Better(a, b asp.Result) bool {
	if a.Dist != b.Dist {
		return a.Dist < b.Dist
	}
	if a.Point.X != b.Point.X {
		return a.Point.X < b.Point.X
	}
	return a.Point.Y < b.Point.Y
}

// Bound is the shared pruning bound of a concurrent best-first search:
// the best answer found so far. Under Run's superstep protocol it is
// written only at merge barriers and snapshotted at round starts, so
// workers prune against the round-start optimum; the atomic pointer and
// the CAS Offer loop exist so that code *outside* the driver — progress
// reporting, a future work-stealing variant, tests — can read or offer
// concurrently without tearing. Offer uses the total Better order, so
// the installed winner is independent of offer order.
//
// The threshold derived from the bound is the pruning cutoff of the
// paper's Equation 1: d_opt for the exact algorithm, d_opt/(1+δ) for the
// (1+δ)-approximate variant (§6).
type Bound struct {
	delta float64
	cur   atomic.Pointer[asp.Result]
}

// NewBound returns a bound seeded with the given incumbent. delta > 0
// selects the approximate threshold.
func NewBound(delta float64, seed asp.Result) *Bound {
	b := &Bound{delta: delta}
	r := seed
	r.Rep = append([]float64(nil), seed.Rep...)
	b.cur.Store(&r)
	return b
}

// Best returns the current best answer.
func (b *Bound) Best() asp.Result { return *b.cur.Load() }

// Threshold returns the current pruning cutoff: spaces whose lower bound
// reaches it cannot improve the answer (or cannot improve it by more than
// the (1+δ) guarantee allows).
func (b *Bound) Threshold() float64 {
	d := b.cur.Load().Dist
	if b.delta > 0 {
		return d / (1 + b.delta)
	}
	return d
}

// Offer installs r as the new best if it beats the current one under
// Better, copying the representation so the caller may keep reusing its
// scratch buffer. It reports whether r was installed.
func (b *Bound) Offer(r asp.Result) bool {
	for {
		cur := b.cur.Load()
		if !Better(r, *cur) {
			return false
		}
		nr := r
		nr.Rep = append([]float64(nil), r.Rep...)
		if b.cur.CompareAndSwap(cur, &nr) {
			return true
		}
	}
}
