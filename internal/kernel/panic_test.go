package kernel

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"asrs/internal/asp"
	"asrs/internal/faultinject"
	"asrs/internal/geom"
)

// panicWorkload drives RunCtx over a deep synthetic tree whose process
// func panics on the trigger-th processed item (counted atomically; -1
// never panics). Returns the run error and the items actually
// processed.
func panicWorkload(t *testing.T, workers, batch, trigger int) (error, int) {
	t.Helper()
	bound := NewBound(0, asp.Result{Dist: 1e18})
	seed := Item{Space: geom.Rect{MinX: 0, MaxX: 1, MinY: 0, MaxY: 1}, LB: 0}
	var processed atomic.Int64
	_, _, _, err := RunCtx(context.Background(), workers, batch, []Item{seed}, bound,
		func(w int, it Item, inc asp.Result, emit func(Item)) asp.Result {
			n := int(processed.Add(1))
			if trigger >= 0 && n == trigger {
				panic("boom: poisoned query")
			}
			lo, hi := it.Space.MinX, it.Space.MaxX
			mid := (lo + hi) / 2
			if hi-lo > 1e-3 {
				emit(Item{Space: geom.Rect{MinX: lo, MaxX: mid, MinY: 0, MaxY: 1}, LB: it.LB})
				emit(Item{Space: geom.Rect{MinX: mid, MaxX: hi, MinY: 0, MaxY: 1}, LB: it.LB})
			}
			cand := asp.Result{Dist: (mid - 0.3) * (mid - 0.3), Point: geom.Point{X: mid}}
			if Better(inc, cand) {
				cand = inc
			}
			return cand
		}, nil)
	return err, int(processed.Load())
}

// settleGoroutines waits (bounded) for the goroutine count to drop back
// to at most base+slack; returns the last observed count.
func settleGoroutines(base, slack int) int {
	deadline := time.Now().Add(5 * time.Second)
	n := runtime.NumGoroutine()
	for n > base+slack && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	return n
}

// A processor panic must surface as a typed *PanicError — the process
// survives, the barrier completes, and the worker pool tears down
// without leaking goroutines. Run under -race with workers>1 in CI.
func TestPanicConvertsToTypedError(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		base := runtime.NumGoroutine()
		err, _ := panicWorkload(t, workers, 8, 5)
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *PanicError", workers, err)
		}
		if v, ok := pe.Value.(string); !ok || !strings.Contains(v, "boom") {
			t.Fatalf("workers=%d: panic value %v lost", workers, pe.Value)
		}
		if len(pe.Stack) == 0 {
			t.Fatalf("workers=%d: no stack captured", workers)
		}
		if got := settleGoroutines(base, 2); got > base+2 {
			t.Fatalf("workers=%d: goroutines %d -> %d (leak)", workers, base, got)
		}
	}
}

// A panic in one round must not lose the incumbent merged in earlier
// rounds: the bound still holds the best fully merged result, so a
// caller that wants a partial answer alongside the typed error has one.
func TestPanicKeepsMergedIncumbent(t *testing.T) {
	bound := NewBound(0, asp.Result{Dist: 1e18})
	processed := 0
	_, _, _, err := RunCtx(context.Background(), 1, 1, []Item{{LB: 0, Space: unitSpace()}}, bound,
		func(w int, it Item, inc asp.Result, emit func(Item)) asp.Result {
			processed++
			if processed == 1 {
				emit(Item{LB: 0.5, Space: unitSpace()})
				return asp.Result{Dist: 1, Point: geom.Point{X: 0.25}}
			}
			panic("second round dies")
		}, nil)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if best := bound.Best(); best.Dist != 1 {
		t.Fatalf("merged incumbent lost: bound best = %+v", best)
	}
}

// Every pooled child emitted before the panic — and every heap
// leftover — must reach the release hook, so arena slices are not
// stranded mid-crash.
func TestPanicReleasesChildrenAndHeap(t *testing.T) {
	bound := NewBound(0, asp.Result{Dist: 1e18})
	released := 0
	processed := 0
	_, _, _, err := RunCtx(context.Background(), 1, 2, []Item{{LB: 0, Space: unitSpace()}}, bound,
		func(w int, it Item, inc asp.Result, emit func(Item)) asp.Result {
			processed++
			switch processed {
			case 1:
				// Seed round: emit four children that form the next rounds.
				for i := 0; i < 4; i++ {
					emit(Item{LB: 0.1, Pooled: true, Space: unitSpace()})
				}
				return inc
			case 2:
				emit(Item{LB: 0.2, Pooled: true, Space: unitSpace()})
				return inc
			case 3:
				panic("die mid-round")
			}
			return inc
		}, func(it Item) { released++ })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	// Emitted pooled children: 4 (round 1) + 1 (round 2, discarded at the
	// panic barrier). Two of round 1's children were processed (2 and 3);
	// the other two are heap leftovers. Discarded = 1 + 2 = 3.
	if released != 3 {
		t.Fatalf("released = %d, want 3 (1 discarded child + 2 heap leftovers)", released)
	}
}

// The kernel.process.panic failpoint must inject through the same
// recovery path, yielding a typed error that names the injection.
func TestInjectedPanicFailpoint(t *testing.T) {
	defer faultinject.Deactivate()
	faultinject.Activate(faultinject.NewPlan(3,
		faultinject.Spec{Point: "kernel.process.panic", Action: faultinject.ActPanic, MaxEvery: 1}))
	err, processed := panicWorkload(t, 2, 4, -1)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if v, _ := pe.Value.(string); !strings.Contains(v, "faultinject") {
		t.Fatalf("panic value %q does not name the injection", v)
	}
	if processed != 0 {
		// MaxEvery=1 fires on the very first item; nothing was processed
		// to completion.
		t.Fatalf("processed = %d, want 0", processed)
	}
}

// The kernel.barrier.slow failpoint must not change answers — only
// stall rounds.
func TestSlowBarrierKeepsAnswer(t *testing.T) {
	run := func() asp.Result {
		bound := NewBound(0, asp.Result{Dist: 1e18})
		seed := Item{Space: geom.Rect{MinX: 0, MaxX: 1, MinY: 0, MaxY: 1}, LB: 0}
		Run(2, 4, []Item{seed}, bound, func(w int, it Item, inc asp.Result, emit func(Item)) asp.Result {
			lo, hi := it.Space.MinX, it.Space.MaxX
			mid := (lo + hi) / 2
			if hi-lo > 1e-2 {
				emit(Item{Space: geom.Rect{MinX: lo, MaxX: mid, MinY: 0, MaxY: 1}, LB: it.LB})
				emit(Item{Space: geom.Rect{MinX: mid, MaxX: hi, MinY: 0, MaxY: 1}, LB: it.LB})
			}
			cand := asp.Result{Dist: (mid - 0.7) * (mid - 0.7), Point: geom.Point{X: mid}}
			if Better(inc, cand) {
				cand = inc
			}
			return cand
		}, nil)
		return bound.Best()
	}
	want := run()
	faultinject.Activate(faultinject.NewPlan(5,
		faultinject.Spec{Point: "kernel.barrier.slow", Action: faultinject.ActSleep, MaxEvery: 2, Delay: time.Millisecond}))
	got := run()
	faultinject.Deactivate()
	if got.Dist != want.Dist || got.Point != want.Point {
		t.Fatalf("slow barrier changed the answer: %+v vs %+v", got, want)
	}
}

func unitSpace() geom.Rect { return geom.Rect{MinX: 0, MaxX: 1, MinY: 0, MaxY: 1} }
