package kernel

import (
	"fmt"
)

// PanicError is the typed error RunCtx returns when a processor panics
// inside a superstep. The panic is caught at the per-item boundary on
// whichever goroutine ran the item, so the worker pool survives, the
// barrier completes normally (no deadlock, no goroutine leak), and the
// failure converts into a per-query error the search packages surface
// through Searcher.Err — extending the repo's "errors, never panics"
// discipline from input validation to the concurrent hot loop. Peer
// queries in the same engine batch run their own kernel instances and
// are untouched; their answers stay bit-identical to a fault-free run.
//
// Only the FIRST panic of a run is recorded (concurrent items can
// panic in the same round); the rest are swallowed after being
// recovered, since one typed failure is all the caller can act on.
type PanicError struct {
	// Value is the recovered panic payload.
	Value any
	// Stack is the panicking goroutine's stack at recovery time.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("kernel: panic during search: %v", e.Value)
}
