package kernel

import (
	"math"
	"sync"
	"testing"

	"asrs/internal/asp"
	"asrs/internal/geom"
)

func TestExtCapMonotoneMin(t *testing.T) {
	c := NewExtCap()
	if !math.IsInf(c.Load(), 1) {
		t.Fatalf("fresh cap = %v, want +Inf", c.Load())
	}
	c.Publish(5)
	c.Publish(7) // higher: ignored
	if got := c.Load(); got != 5 {
		t.Fatalf("cap = %v, want 5", got)
	}
	c.Publish(2)
	if got := c.Load(); got != 2 {
		t.Fatalf("cap = %v, want 2", got)
	}
	c.Publish(math.NaN())
	if got := c.Load(); got != 2 {
		t.Fatalf("cap after NaN publish = %v, want 2 (NaN must never install)", got)
	}
}

func TestExtCapConcurrentPublish(t *testing.T) {
	c := NewExtCap()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 100; i > g; i-- {
				c.Publish(float64(i))
			}
		}(g)
	}
	wg.Wait()
	if got := c.Load(); got != 1 {
		t.Fatalf("cap = %v, want 1 (min across all publishers)", got)
	}
}

// TestBoundExternalThresholdOpen pins the open semantics: a foreign cap
// exactly equal to a space's lower bound must NOT prune it through the
// driver's closed `LB >= thresh` comparison, while the bound's own
// incumbent at the same distance must.
func TestBoundExternalThresholdOpen(t *testing.T) {
	seed := asp.Result{Point: geom.Point{X: 1, Y: 1}, Dist: 10}
	b := NewBound(0, seed)
	c := NewExtCap()
	b.SetExternal(c)

	if got := b.Threshold(); got != 10 {
		t.Fatalf("threshold with +Inf cap = %v, want own 10", got)
	}
	c.Publish(4)
	th := b.Threshold()
	if !(th > 4) || th > math.Nextafter(4, math.Inf(1)) {
		t.Fatalf("threshold with cap 4 = %v, want nextafter(4) (open: LB==4 survives LB >= thresh)", th)
	}
	if 4 >= th {
		t.Fatalf("LB == cap must survive the closed comparison: 4 >= %v", th)
	}
	// The own incumbent still prunes closed at its own distance.
	b.Offer(asp.Result{Point: geom.Point{X: 0, Y: 0}, Dist: 3})
	if got := b.Threshold(); got != 3 {
		t.Fatalf("threshold after own offer 3 = %v, want 3", got)
	}
	// PublishExternal shares the new incumbent.
	b.PublishExternal()
	if got := c.Load(); got != 3 {
		t.Fatalf("cap after PublishExternal = %v, want 3", got)
	}
}

// TestBoundExternalThresholdDelta checks the (1+δ)-approximate fold: both
// the own distance and the foreign cap divide by (1+δ) before the min.
func TestBoundExternalThresholdDelta(t *testing.T) {
	seed := asp.Result{Dist: 12}
	b := NewBound(0.5, seed)
	c := NewExtCap()
	b.SetExternal(c)
	c.Publish(6)
	want := math.Nextafter(6/1.5, math.Inf(1))
	if got := b.Threshold(); got != want {
		t.Fatalf("threshold = %v, want %v", got, want)
	}
}
