package asp_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"asrs/internal/agg"
	"asrs/internal/asp"
	"asrs/internal/attr"
	"asrs/internal/dataset"
	"asrs/internal/geom"
)

// TestLemma1 checks the reduction property for every anchor: rectangle
// r_i covers p iff the spatial object o_i is strictly inside the candidate
// region anchored at p.
func TestLemma1(t *testing.T) {
	anchors := []asp.Anchor{asp.AnchorTR, asp.AnchorTL, asp.AnchorBR, asp.AnchorBL, asp.AnchorCenter}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		o := geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
		p := geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
		a := rng.Float64()*10 + 0.1
		b := rng.Float64()*10 + 0.1
		for _, an := range anchors {
			rect := an.RectFor(o, a, b)
			region := an.RegionFor(p, a, b)
			if rect.ContainsOpen(p) != region.ContainsOpen(o) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestReduceValidation(t *testing.T) {
	ds := dataset.Random(5, 100, 1)
	if _, err := asp.Reduce(ds, 0, 1, asp.AnchorTR); err == nil {
		t.Error("zero width: expected error")
	}
	if _, err := asp.Reduce(ds, 1, -1, asp.AnchorTR); err == nil {
		t.Error("negative height: expected error")
	}
	rects, err := asp.Reduce(ds, 2, 3, asp.AnchorTR)
	if err != nil {
		t.Fatal(err)
	}
	if len(rects) != 5 {
		t.Fatalf("got %d rects", len(rects))
	}
	for i, r := range rects {
		if r.Rect.Width() != 2 || r.Rect.Height() != 3 {
			t.Fatalf("rect %d has size %gx%g", i, r.Rect.Width(), r.Rect.Height())
		}
		if r.Rect.TR() != ds.Objects[i].Loc {
			t.Fatalf("rect %d not anchored at object", i)
		}
	}
}

func TestQueryValidate(t *testing.T) {
	ds := dataset.Random(3, 10, 2)
	f := agg.MustNew(ds.Schema, agg.Spec{Kind: agg.Distribution, Attr: "cat"})
	good := asp.Query{F: f, Target: []float64{0, 0, 0}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid query rejected: %v", err)
	}
	bad := []asp.Query{
		{F: nil, Target: []float64{0}},
		{F: f, Target: []float64{0}},
		{F: f, Target: []float64{0, 0, 0}, W: []float64{1}},
	}
	for i, q := range bad {
		if err := q.Validate(); err == nil {
			t.Errorf("bad query %d accepted", i)
		}
	}
}

func TestSpaceAndEmptyCandidate(t *testing.T) {
	ds := dataset.Random(20, 50, 3)
	rects, _ := asp.Reduce(ds, 5, 5, asp.AnchorTR)
	space := asp.Space(rects)
	for _, r := range rects {
		if !space.ContainsRect(r.Rect) {
			t.Fatalf("space %v does not contain %v", space, r.Rect)
		}
	}
	p := asp.EmptyCandidate(space)
	for _, r := range rects {
		if r.Covers(p) {
			t.Fatalf("empty candidate %v covered by %v", p, r.Rect)
		}
	}
}

// TestPointRepresentationMatchesRegion: F(p) in the reduced ASP equals
// F(region(p)) in the original ASRS (the heart of Theorem 1).
func TestPointRepresentationMatchesRegion(t *testing.T) {
	ds := dataset.Random(60, 100, 4)
	f := agg.MustNew(ds.Schema,
		agg.Spec{Kind: agg.Distribution, Attr: "cat"},
		agg.Spec{Kind: agg.Average, Attr: "val"},
		agg.Spec{Kind: agg.Sum, Attr: "val"},
	)
	a, b := 12.0, 9.0
	rects, err := asp.Reduce(ds, a, b, asp.AnchorTR)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		p := geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
		fromASP := asp.PointRepresentation(rects, f, p)
		region := asp.AnchorTR.RegionFor(p, a, b)
		fromASRS := f.Representation(ds, agg.OpenRect{MinX: region.MinX, MinY: region.MinY, MaxX: region.MaxX, MaxY: region.MaxY})
		for d := range fromASP {
			if diff := fromASP[d] - fromASRS[d]; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("trial %d dim %d: ASP %v vs ASRS %v", trial, d, fromASP, fromASRS)
			}
		}
	}
}

func TestBruteForceEmpty(t *testing.T) {
	ds := dataset.Random(0, 10, 6)
	f := agg.MustNew(dataset.Random(1, 10, 6).Schema, agg.Spec{Kind: agg.Distribution, Attr: "cat"})
	rects, _ := asp.Reduce(&attr.Dataset{Schema: ds.Schema, Objects: nil}, 1, 1, asp.AnchorTR)
	q := asp.Query{F: f, Target: []float64{1, 1, 1}}
	res := asp.BruteForce(rects, q)
	if res.Dist != 3 {
		t.Fatalf("empty instance distance = %g, want 3 (all-zero rep)", res.Dist)
	}
}
