// Package asp defines the attribute-aware similar point (ASP) problem of
// paper §4.1: the rectangle objects produced by the ASRS→ASP reduction, the
// query (composite aggregator, target representation, weights, norm), and
// the reduction itself (Definition 5, Lemma 1, Theorem 1).
package asp

import (
	"fmt"

	"asrs/internal/agg"
	"asrs/internal/attr"
	"asrs/internal/geom"
)

// RectObject is a rectangle object (Definition 5): an a×b rectangle whose
// attributes are those of the originating spatial object.
type RectObject struct {
	Rect geom.Rect
	Obj  *attr.Object
}

// Covers reports whether the rectangle covers point p under the open
// semantics of Lemma 1 (boundary points are not covered).
func (r RectObject) Covers(p geom.Point) bool { return r.Rect.ContainsOpen(p) }

// Query is a fully specified ASP/ASRS query: minimize
// dist(F(p), Target) under the weighted norm.
type Query struct {
	F      *agg.Composite
	Target []float64 // F(r_q), the query representation
	W      []float64 // per-dimension weights (nil = unit)
	Norm   agg.Norm
}

// Validate checks dimensional consistency.
func (q *Query) Validate() error {
	if q.F == nil {
		return fmt.Errorf("asp: query has nil composite aggregator")
	}
	if len(q.Target) != q.F.Dims() {
		return fmt.Errorf("asp: target has %d dims, aggregator produces %d", len(q.Target), q.F.Dims())
	}
	if q.W != nil && len(q.W) != q.F.Dims() {
		return fmt.Errorf("asp: weight vector has %d dims, aggregator produces %d", len(q.W), q.F.Dims())
	}
	return nil
}

// Distance returns the weighted distance from rep to the query target.
func (q *Query) Distance(rep []float64) float64 {
	return agg.Distance(q.Norm, rep, q.Target, q.W)
}

// DistanceUnder reports whether the weighted distance from rep to the
// query target is strictly below bound, returning the bit-exact
// distance when it is (see agg.DistanceUnder). Candidate scans use it
// with the incumbent best as bound so losing candidates exit after a
// dimension or two.
func (q *Query) DistanceUnder(rep []float64, bound float64) (float64, bool) {
	return agg.DistanceUnder(q.Norm, rep, q.Target, q.W, bound)
}

// LowerBound returns the Equation 1 lower bound for representations
// confined to [lo, hi].
func (q *Query) LowerBound(lo, hi []float64) float64 {
	return agg.LowerBound(q.Norm, q.Target, lo, hi, q.W)
}

// LowerBoundInt is LowerBound with integer-dimension awareness; isInt
// should be q.F.IntegerDims() (cached by callers in hot loops).
func (q *Query) LowerBoundInt(lo, hi []float64, isInt []bool) float64 {
	return agg.LowerBoundInt(q.Norm, q.Target, lo, hi, q.W, isInt)
}

// Result is a solution to an ASP instance: the best point found, its
// distance, and its aggregate representation.
type Result struct {
	Point geom.Point
	Dist  float64
	Rep   []float64
}

// Anchor selects which part of the generated rectangle coincides with the
// originating object in the reduction. The paper uses the top-right corner
// and notes any corner (or the centroid) works; we support all five.
type Anchor uint8

const (
	// AnchorTR places the object at the rectangle's top-right corner
	// (the paper's default); the answer region then has its bottom-left
	// corner at the ASP answer point (Theorem 1).
	AnchorTR Anchor = iota
	// AnchorTL places the object at the top-left corner.
	AnchorTL
	// AnchorBR places the object at the bottom-right corner.
	AnchorBR
	// AnchorBL places the object at the bottom-left corner.
	AnchorBL
	// AnchorCenter places the object at the centroid.
	AnchorCenter
)

// RectFor returns the rectangle of size a×b anchored at p.
func (an Anchor) RectFor(p geom.Point, a, b float64) geom.Rect {
	switch an {
	case AnchorTL:
		return geom.Rect{MinX: p.X, MinY: p.Y - b, MaxX: p.X + a, MaxY: p.Y}
	case AnchorBR:
		return geom.Rect{MinX: p.X - a, MinY: p.Y, MaxX: p.X, MaxY: p.Y + b}
	case AnchorBL:
		return geom.Rect{MinX: p.X, MinY: p.Y, MaxX: p.X + a, MaxY: p.Y + b}
	case AnchorCenter:
		return geom.Rect{MinX: p.X - a/2, MinY: p.Y - b/2, MaxX: p.X + a/2, MaxY: p.Y + b/2}
	default: // AnchorTR
		return geom.RectFromTR(p, a, b)
	}
}

// RegionFor maps an ASP answer point back to the a×b ASRS answer region
// for this anchor (the inverse of the reduction: with AnchorTR the region's
// bottom-left corner is the point, per Theorem 1).
func (an Anchor) RegionFor(p geom.Point, a, b float64) geom.Rect {
	switch an {
	case AnchorTL:
		return geom.Rect{MinX: p.X - a, MinY: p.Y, MaxX: p.X, MaxY: p.Y + b}
	case AnchorBR:
		return geom.Rect{MinX: p.X, MinY: p.Y - b, MaxX: p.X + a, MaxY: p.Y}
	case AnchorBL:
		return geom.Rect{MinX: p.X - a, MinY: p.Y - b, MaxX: p.X, MaxY: p.Y}
	case AnchorCenter:
		return geom.Rect{MinX: p.X - a/2, MinY: p.Y - b/2, MaxX: p.X + a/2, MaxY: p.Y + b/2}
	default: // AnchorTR
		return geom.RectFromBL(p, a, b)
	}
}

// Reduce performs the ASRS→ASP reduction (Definition 5): every spatial
// object becomes an a×b rectangle anchored at the object. A point p is
// covered by object o's rectangle iff o lies strictly inside the region
// RegionFor(p) (Lemma 1), so solving ASP solves ASRS (Theorem 1).
func Reduce(ds *attr.Dataset, a, b float64, an Anchor) ([]RectObject, error) {
	if a <= 0 || b <= 0 {
		return nil, fmt.Errorf("asp: query region size must be positive, got %g x %g", a, b)
	}
	rects := make([]RectObject, len(ds.Objects))
	for i := range ds.Objects {
		o := &ds.Objects[i]
		rects[i] = RectObject{Rect: an.RectFor(o.Loc, a, b), Obj: o}
	}
	return rects, nil
}

// Space returns the search space for a set of rectangle objects: their
// minimum bounding rectangle. Points outside it are covered by no
// rectangle, so exactly one representative outside point needs separate
// evaluation (see EmptyCandidate).
func Space(rects []RectObject) geom.Rect {
	box := geom.EmptyRect()
	for _, r := range rects {
		box.ExpandToInclude(r.Rect.BL())
		box.ExpandToInclude(r.Rect.TR())
	}
	return box
}

// EmptyCandidate returns a point guaranteed to be covered by no rectangle
// (strictly outside the space), representing the empty covering set. An
// invalid space (no rectangles at all) yields the origin.
func EmptyCandidate(space geom.Rect) geom.Point {
	if !space.IsValid() {
		return geom.Point{}
	}
	w, h := space.Width(), space.Height()
	if w <= 0 {
		w = 1
	}
	if h <= 0 {
		h = 1
	}
	return geom.Point{X: space.MaxX + w + 1, Y: space.MaxY + h + 1}
}

// PointRepresentation computes F(p) exactly: the representation of the set
// of rectangles strictly covering p. O(n); used by tests and the empty
// candidate.
func PointRepresentation(rects []RectObject, f *agg.Composite, p geom.Point) []float64 {
	acc := agg.NewAccumulator(f)
	for _, r := range rects {
		if r.Covers(p) {
			acc.Add(r.Obj)
		}
	}
	out := make([]float64, f.Dims())
	acc.Representation(out)
	return out
}
