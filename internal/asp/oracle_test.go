package asp_test

import (
	"math"
	"math/rand"
	"testing"

	"asrs/internal/agg"
	"asrs/internal/asp"
	"asrs/internal/attr"
	"asrs/internal/dataset"
	"asrs/internal/geom"
)

// TestBruteForceHandInstance: a fully hand-checkable instance. Two
// "a"-objects close together, one "b" far away; query wants exactly
// (2, 0).
func TestBruteForceHandInstance(t *testing.T) {
	schema := attr.MustSchema(attr.Attribute{Name: "color", Kind: attr.Categorical, Domain: []string{"a", "b"}})
	obj := func(x, y float64, c int) attr.Object {
		return attr.Object{Loc: geom.Point{X: x, Y: y}, Values: []attr.Value{attr.CatValue(c)}}
	}
	ds := &attr.Dataset{Schema: schema, Objects: []attr.Object{
		obj(1, 1, 0), obj(1.5, 1.2, 0), obj(9, 9, 1),
	}}
	f := agg.MustNew(schema, agg.Spec{Kind: agg.Distribution, Attr: "color"})
	rects, err := asp.Reduce(ds, 2, 2, asp.AnchorTR)
	if err != nil {
		t.Fatal(err)
	}
	q := asp.Query{F: f, Target: []float64{2, 0}}
	res := asp.BruteForce(rects, q)
	if res.Dist != 0 {
		t.Fatalf("dist = %g, want 0", res.Dist)
	}
	// Verify the witness point.
	rep := asp.PointRepresentation(rects, f, res.Point)
	if rep[0] != 2 || rep[1] != 0 {
		t.Fatalf("witness rep = %v", rep)
	}
}

// TestBruteForceDistanceAchievable: the oracle's reported point always
// achieves the reported distance.
func TestBruteForceDistanceAchievable(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 40; trial++ {
		ds := dataset.Random(1+rng.Intn(15), 30, rng.Int63())
		f := agg.MustNew(ds.Schema,
			agg.Spec{Kind: agg.Distribution, Attr: "cat"},
			agg.Spec{Kind: agg.Sum, Attr: "val"},
		)
		rects, _ := asp.Reduce(ds, 4+rng.Float64()*6, 4+rng.Float64()*6, asp.AnchorTR)
		target := make([]float64, f.Dims())
		for i := range target {
			target[i] = rng.NormFloat64() * 3
		}
		q := asp.Query{F: f, Target: target}
		res := asp.BruteForce(rects, q)
		rep := asp.PointRepresentation(rects, f, res.Point)
		if d := q.Distance(rep); math.Abs(d-res.Dist) > 1e-9 {
			t.Fatalf("trial %d: oracle reported %g but witness evaluates to %g", trial, res.Dist, d)
		}
		// And no random probe beats the oracle.
		for probe := 0; probe < 100; probe++ {
			p := geom.Point{X: rng.Float64()*45 - 8, Y: rng.Float64()*45 - 8}
			prep := asp.PointRepresentation(rects, f, p)
			if d := q.Distance(prep); d < res.Dist-1e-9 {
				t.Fatalf("trial %d: probe %v beats oracle: %g < %g", trial, p, d, res.Dist)
			}
		}
	}
}

// TestMaxCoverPointHandInstance and probes.
func TestMaxCoverPoint(t *testing.T) {
	ds := dataset.Random(25, 30, 3)
	rects, _ := asp.Reduce(ds, 6, 6, asp.AnchorTR)
	p, w := asp.MaxCoverPoint(rects, func(i int) float64 { return 1 })
	// The reported point must be covered by exactly w rects.
	var got float64
	for _, r := range rects {
		if r.Covers(p) {
			got++
		}
	}
	if got != w {
		t.Fatalf("witness covered by %g, reported %g", got, w)
	}
	// Probes cannot beat it.
	rng := rand.New(rand.NewSource(4))
	for probe := 0; probe < 300; probe++ {
		pt := geom.Point{X: rng.Float64()*40 - 5, Y: rng.Float64()*40 - 5}
		var c float64
		for _, r := range rects {
			if r.Covers(pt) {
				c++
			}
		}
		if c > w {
			t.Fatalf("probe %v covers %g > %g", pt, c, w)
		}
	}
	// Empty input.
	if _, w := asp.MaxCoverPoint(nil, func(int) float64 { return 1 }); w != 0 {
		t.Fatalf("empty MaxCoverPoint weight %g", w)
	}
}

// TestAnchorsGeometry: for every anchor, RectFor places the object at the
// right spot and RegionFor inverts it.
func TestAnchorsGeometry(t *testing.T) {
	o := geom.Point{X: 10, Y: 20}
	const a, b = 4.0, 6.0
	cases := []struct {
		an     asp.Anchor
		corner func(geom.Rect) geom.Point
	}{
		{asp.AnchorTR, func(r geom.Rect) geom.Point { return r.TR() }},
		{asp.AnchorTL, func(r geom.Rect) geom.Point { return geom.Point{X: r.MinX, Y: r.MaxY} }},
		{asp.AnchorBR, func(r geom.Rect) geom.Point { return geom.Point{X: r.MaxX, Y: r.MinY} }},
		{asp.AnchorBL, func(r geom.Rect) geom.Point { return r.BL() }},
		{asp.AnchorCenter, func(r geom.Rect) geom.Point { return r.Center() }},
	}
	for _, c := range cases {
		rect := c.an.RectFor(o, a, b)
		if rect.Width() != a || rect.Height() != b {
			t.Fatalf("anchor %d: size %gx%g", c.an, rect.Width(), rect.Height())
		}
		if got := c.corner(rect); got != o {
			t.Fatalf("anchor %d: object at %v, want %v", c.an, got, o)
		}
		region := c.an.RegionFor(o, a, b)
		if region.Width() != a || region.Height() != b {
			t.Fatalf("anchor %d: region size %gx%g", c.an, region.Width(), region.Height())
		}
	}
}

func TestEmptyCandidateInvalidSpace(t *testing.T) {
	p := asp.EmptyCandidate(geom.EmptyRect())
	if p != (geom.Point{}) {
		t.Fatalf("invalid space candidate = %v, want origin", p)
	}
}
