package asp

import (
	"math"
	"sort"

	"asrs/internal/geom"
)

// BruteForce solves the ASP instance exactly by enumerating one interior
// sample point per disjoint region of the rectangle arrangement (plus the
// empty-cover candidate) and evaluating each with PointRepresentation. It
// is O(n³) and exists as the correctness oracle for the real algorithms:
// every candidate the sweep line or DS-Search can return corresponds to a
// disjoint region sampled here.
func BruteForce(rects []RectObject, q Query) Result {
	space := Space(rects)
	p := EmptyCandidate(space)
	rep := PointRepresentation(rects, q.F, p)
	best := Result{Point: p, Dist: q.Distance(rep), Rep: rep}
	if len(rects) == 0 {
		return best
	}

	xs := edgeMidpoints(rects, func(r geom.Rect) (float64, float64) { return r.MinX, r.MaxX })
	ys := edgeMidpoints(rects, func(r geom.Rect) (float64, float64) { return r.MinY, r.MaxY })
	for _, y := range ys {
		for _, x := range xs {
			pt := geom.Point{X: x, Y: y}
			rep := PointRepresentation(rects, q.F, pt)
			if d := q.Distance(rep); d < best.Dist {
				best = Result{Point: pt, Dist: d, Rep: rep}
			}
		}
	}
	return best
}

// edgeMidpoints returns one coordinate strictly inside every gap between
// consecutive distinct edge coordinates.
func edgeMidpoints(rects []RectObject, edges func(geom.Rect) (float64, float64)) []float64 {
	vs := make([]float64, 0, 2*len(rects))
	for _, r := range rects {
		a, b := edges(r.Rect)
		vs = append(vs, a, b)
	}
	sort.Float64s(vs)
	out := make([]float64, 0, len(vs))
	for i := 0; i+1 < len(vs); i++ {
		if vs[i+1] > vs[i] {
			out = append(out, vs[i]+(vs[i+1]-vs[i])/2)
		}
	}
	if len(out) == 0 { // all edges coincide; sample the single interior line
		out = append(out, vs[0])
	}
	return out
}

// MaxCoverPoint returns the point covered by the maximum total weight of
// rectangles (weights taken from the callback), solving MaxRS by brute
// force. Used as the oracle for the OE and DS-MaxRS implementations.
func MaxCoverPoint(rects []RectObject, weight func(i int) float64) (geom.Point, float64) {
	if len(rects) == 0 {
		return geom.Point{}, 0
	}
	xs := edgeMidpoints(rects, func(r geom.Rect) (float64, float64) { return r.MinX, r.MaxX })
	ys := edgeMidpoints(rects, func(r geom.Rect) (float64, float64) { return r.MinY, r.MaxY })
	var bestP geom.Point
	bestW := math.Inf(-1)
	for _, y := range ys {
		for _, x := range xs {
			p := geom.Point{X: x, Y: y}
			var w float64
			for i, r := range rects {
				if r.Covers(p) {
					w += weight(i)
				}
			}
			if w > bestW {
				bestW, bestP = w, p
			}
		}
	}
	return bestP, bestW
}
