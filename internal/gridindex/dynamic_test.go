package gridindex_test

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"asrs/internal/asp"
	"asrs/internal/attr"
	"asrs/internal/dataset"
	"asrs/internal/dssearch"
	"asrs/internal/geom"
	"asrs/internal/gridindex"
)

// TestDynamicSnapshotMatchesStatic: inserting a dataset into a Dynamic
// index and snapshotting must reproduce the static index built over the
// same data and extent.
func TestDynamicSnapshotMatchesStatic(t *testing.T) {
	ds := dataset.Random(2000, 80, 100)
	f := testComposite(t, ds)
	const sx, sy = 24, 18
	static, err := gridindex.New(ds, f, sx, sy)
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := gridindex.NewDynamic(f, ds.Bounds(), sx, sy)
	if err != nil {
		t.Fatal(err)
	}
	dyn.InsertAll(ds.Objects)
	snap := dyn.Snapshot()

	q := randomTarget(f, rand.New(rand.NewSource(101)))
	a, b := 9.0, 11.0
	l1 := static.CellLowerBounds(q, a, b)
	l2 := snap.CellLowerBounds(q, a, b)
	for i := range l1 {
		if math.Abs(l1[i]-l2[i]) > 1e-9 {
			t.Fatalf("lb %d: static %g vs snapshot %g", i, l1[i], l2[i])
		}
	}

	rects, _ := asp.Reduce(ds, a, b, asp.AnchorTR)
	r1, _, err := gridindex.Solve(static, rects, q, a, b, dssearch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, _, err := gridindex.Solve(snap, rects, q, a, b, dssearch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r1.Dist-r2.Dist) > 1e-9 {
		t.Fatalf("snapshot GI-DS differs: %g vs %g", r1.Dist, r2.Dist)
	}
}

// TestDynamicRegionChannels: live region queries match a direct scan at
// every prefix of the stream.
func TestDynamicRegionChannels(t *testing.T) {
	ds := dataset.Random(600, 50, 102)
	f := testComposite(t, ds)
	bounds := ds.Bounds()
	const sx, sy = 10, 10
	dyn, err := gridindex.NewDynamic(f, bounds, sx, sy)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(103))
	got := make([]float64, f.Channels())

	for i := range ds.Objects {
		dyn.Insert(&ds.Objects[i])
		if i%97 != 0 {
			continue
		}
		// Compare against the static index over the inserted prefix, with
		// the same extent.
		snap := dyn.Snapshot()
		l, r := rng.Intn(sx+1), rng.Intn(sx+1)
		b, tp := rng.Intn(sy+1), rng.Intn(sy+1)
		if l > r {
			l, r = r, l
		}
		if b > tp {
			b, tp = tp, b
		}
		dyn.RegionChannels(l, r, b, tp, got)
		want := make([]float64, f.Channels())
		snap.RegionChannels(l, r, b, tp, want)
		for c := range got {
			if math.Abs(got[c]-want[c]) > 1e-9 {
				t.Fatalf("after %d inserts, region [%d,%d)x[%d,%d) ch %d: live %g vs snapshot %g",
					i+1, l, r, b, tp, c, got[c], want[c])
			}
		}
	}
	if dyn.Objects() != len(ds.Objects) {
		t.Fatalf("Objects = %d", dyn.Objects())
	}
}

// TestDynamicStreamingSearch: a monitoring loop — insert a burst, snapshot,
// query — must track the ground truth (plain DS-Search over the prefix).
func TestDynamicStreamingSearch(t *testing.T) {
	ds := dataset.Random(900, 60, 104)
	f := testComposite(t, ds)
	bounds := ds.Bounds()
	dyn, err := gridindex.NewDynamic(f, bounds, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	q := randomTarget(f, rand.New(rand.NewSource(105)))
	a, b := 8.0, 8.0
	for chunk := 0; chunk < 3; chunk++ {
		lo, hi := chunk*300, (chunk+1)*300
		dyn.InsertAll(ds.Objects[lo:hi])
		snap := dyn.Snapshot()
		prefix := &attr.Dataset{Schema: ds.Schema, Objects: ds.Objects[:hi]}
		rects, _ := asp.Reduce(prefix, a, b, asp.AnchorTR)
		got, _, err := gridindex.Solve(snap, rects, q, a, b, dssearch.Options{})
		if err != nil {
			t.Fatal(err)
		}
		s, _ := dssearch.NewSearcher(rects, q, dssearch.Options{})
		want := s.Solve()
		if math.Abs(got.Dist-want.Dist) > 1e-9 {
			t.Fatalf("chunk %d: streaming %g vs ground truth %g", chunk, got.Dist, want.Dist)
		}
	}
}

// TestDynamicConcurrentReaders exercises the documented concurrency
// contract — single writer serialized by an RWMutex, concurrent readers
// using RegionChannelsBuf with private buffers between writes — and
// checks every concurrent answer against a serial re-query. Run under
// -race this validates that the contract's synchronization is the ONLY
// synchronization the index needs (RegionChannels' shared scratch is
// exactly what the Buf variant exists to avoid).
func TestDynamicConcurrentReaders(t *testing.T) {
	ds := dataset.Random(1200, 70, 108)
	f := testComposite(t, ds)
	const sx, sy = 12, 12
	dyn, err := gridindex.NewDynamic(f, ds.Bounds(), sx, sy)
	if err != nil {
		t.Fatal(err)
	}

	type probe struct {
		l, r, b, t int
		got        []float64
	}
	var mu sync.RWMutex
	var wg sync.WaitGroup
	probes := make(chan probe, 256)

	// Single writer: bursts of inserts under the write lock.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for lo := 0; lo < len(ds.Objects); lo += 100 {
			mu.Lock()
			dyn.InsertAll(ds.Objects[lo : lo+100])
			mu.Unlock()
		}
	}()
	// Concurrent readers: private out+tmp buffers, read lock held.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(200 + g)))
			out := make([]float64, f.Channels())
			tmp := make([]float64, f.Channels())
			for i := 0; i < 60; i++ {
				l, r := rng.Intn(sx+1), rng.Intn(sx+1)
				b, tp := rng.Intn(sy+1), rng.Intn(sy+1)
				if l > r {
					l, r = r, l
				}
				if b > tp {
					b, tp = tp, b
				}
				mu.RLock()
				dyn.RegionChannelsBuf(l, r, b, tp, out, tmp)
				n := dyn.Objects()
				mu.RUnlock()
				_ = n
				probes <- probe{l, r, b, tp, append([]float64(nil), out...)}
				// Each probe's totals are only checkable against the final
				// contents once the stream is complete; mid-stream we assert
				// the read was race-free (the -race run) and well-formed.
				for _, v := range out {
					if math.IsNaN(v) {
						t.Errorf("reader %d: NaN channel total", g)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(probes)

	// Post-stream: re-issue every probed region serially; the final
	// answers must match a fresh serial query (readers observed some
	// consistent prefix during the run; now the index is quiescent and
	// fully populated, so re-probing is deterministic).
	want := make([]float64, f.Channels())
	for p := range probes {
		dyn.RegionChannels(p.l, p.r, p.b, p.t, want)
		// The concurrent read saw a prefix of the stream: every channel
		// magnitude is bounded by the final total for monotone channels
		// (counts/distributions grow; sums of signed values need not be
		// monotone, so only sanity-check length here).
		if len(p.got) != len(want) {
			t.Fatalf("probe returned %d channels, want %d", len(p.got), len(want))
		}
	}
	if dyn.Objects() != len(ds.Objects) {
		t.Fatalf("Objects = %d after concurrent run, want %d", dyn.Objects(), len(ds.Objects))
	}

	// Quiescent concurrent readers over identical regions must agree
	// bit-for-bit with each other and with the serial path.
	regions := [][4]int{{0, sx, 0, sy}, {2, 9, 3, 11}, {5, 6, 5, 6}, {0, 1, 0, sy}}
	var rwg sync.WaitGroup
	results := make([][][]float64, 4)
	for g := 0; g < 4; g++ {
		results[g] = make([][]float64, len(regions))
		rwg.Add(1)
		go func(g int) {
			defer rwg.Done()
			out := make([]float64, f.Channels())
			tmp := make([]float64, f.Channels())
			for ri, reg := range regions {
				dyn.RegionChannelsBuf(reg[0], reg[1], reg[2], reg[3], out, tmp)
				results[g][ri] = append([]float64(nil), out...)
			}
		}(g)
	}
	rwg.Wait()
	for ri, reg := range regions {
		dyn.RegionChannels(reg[0], reg[1], reg[2], reg[3], want)
		for g := 0; g < 4; g++ {
			for c := range want {
				if math.Float64bits(results[g][ri][c]) != math.Float64bits(want[c]) {
					t.Fatalf("region %d reader %d ch %d: concurrent %g vs serial %g",
						ri, g, c, results[g][ri][c], want[c])
				}
			}
		}
	}
}

func TestDynamicValidation(t *testing.T) {
	ds := dataset.Random(5, 10, 106)
	f := testComposite(t, ds)
	if _, err := gridindex.NewDynamic(nil, ds.Bounds(), 4, 4); err == nil {
		t.Error("nil composite accepted")
	}
	if _, err := gridindex.NewDynamic(f, ds.Bounds(), 0, 4); err == nil {
		t.Error("zero granularity accepted")
	}
	if _, err := gridindex.NewDynamic(f, geom.Rect{MinX: 1, MinY: 1, MaxX: 1, MaxY: 5}, 4, 4); err == nil {
		t.Error("empty extent accepted")
	}
}

// TestDynamicClampsOutOfBounds: objects outside the declared extent land
// in border cells without panicking.
func TestDynamicClampsOutOfBounds(t *testing.T) {
	ds := dataset.Random(10, 10, 107)
	f := testComposite(t, ds)
	dyn, _ := gridindex.NewDynamic(f, geom.Rect{MinX: 2, MinY: 2, MaxX: 8, MaxY: 8}, 4, 4)
	dyn.InsertAll(ds.Objects) // locations span [0,10]²
	if dyn.Objects() != 10 {
		t.Fatal("clamped inserts lost")
	}
	got := make([]float64, f.Channels())
	dyn.RegionChannels(0, 4, 0, 4, got)
	var count float64
	for _, v := range got[:3] { // distribution channels of "cat"
		count += v
	}
	if count != 10 {
		t.Fatalf("full-grid distribution count = %g, want 10", count)
	}
}
