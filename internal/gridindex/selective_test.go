package gridindex_test

import (
	"math"
	"math/rand"
	"testing"

	"asrs/internal/agg"
	"asrs/internal/asp"
	"asrs/internal/attr"
	"asrs/internal/dataset"
	"asrs/internal/dssearch"
	"asrs/internal/gridindex"
	"asrs/internal/sweep"
)

// TestGIDSSelectiveGamma: selection functions are applied at index build
// time, so GI-DS with selective composites must stay exact.
func TestGIDSSelectiveGamma(t *testing.T) {
	rng := rand.New(rand.NewSource(140))
	for trial := 0; trial < 12; trial++ {
		ds := dataset.Random(1+rng.Intn(60), 50, rng.Int63())
		catIdx := ds.Schema.Index("cat")
		valIdx := ds.Schema.Index("val")
		f, err := agg.New(ds.Schema,
			agg.Spec{Kind: agg.Count, Select: attr.SelectCategory(catIdx, 0)},
			agg.Spec{Kind: agg.Average, Attr: "val", Select: attr.SelectNumRange(valIdx, 0, 10)},
			agg.Spec{Kind: agg.Sum, Attr: "val", Select: attr.SelectCategory(catIdx, 2)},
		)
		if err != nil {
			t.Fatal(err)
		}
		target := make([]float64, f.Dims())
		for i := range target {
			target[i] = rng.NormFloat64() * 4
		}
		q := asp.Query{F: f, Target: target}
		a, b := 6.0, 8.0
		rects, _ := asp.Reduce(ds, a, b, asp.AnchorTR)
		sw, _ := sweep.New(rects, q)
		want := sw.Solve()

		idx, err := gridindex.New(ds, f, 12, 12)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := gridindex.Solve(idx, rects, q, a, b, dssearch.Options{NCol: 10, NRow: 10})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got.Dist-want.Dist) > 1e-9 {
			t.Fatalf("trial %d: selective GI-DS %g vs sweep %g", trial, got.Dist, want.Dist)
		}
	}
}

// TestGIDSCountComposite: MER via fC through the full index stack.
func TestGIDSCountComposite(t *testing.T) {
	ds := dataset.Random(120, 50, 141)
	f := agg.MustNew(ds.Schema, agg.Spec{Kind: agg.Count})
	q := asp.Query{F: f, Target: []float64{1e9}}
	a, b := 10.0, 10.0
	rects, _ := asp.Reduce(ds, a, b, asp.AnchorTR)
	idx, _ := gridindex.New(ds, f, 16, 16)
	got, _, err := gridindex.Solve(idx, rects, q, a, b, dssearch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, wantW := asp.MaxCoverPoint(rects, func(int) float64 { return 1 })
	if got.Rep[0] != wantW {
		t.Fatalf("GI-DS MER count %g, brute force %g", got.Rep[0], wantW)
	}
}
