// Package gridindex implements the grid index of paper §5 — per-cell
// attribute summary tables addressable in O(1) per region through
// suffix-sum inclusion–exclusion (Lemma 8) — and the GI-DS algorithm
// (Algorithm 2) that uses the index to prune whole index cells before
// handing the survivors to DS-Search.
//
// The paper stores, for each cell g(i,j), a hash table per attribute
// mapping each domain value to the count of objects in G[i..∞][j..∞]. We
// compile the same information into the composite aggregator's channel
// vectors (per-value counts for fD; count/sum/positive/negative sums for
// fA and fS), which additionally supports selection functions γ because
// channels apply γ at build time. Per-cell minima and maxima of fA
// attributes are kept separately (min/max do not telescope through
// inclusion–exclusion, so the ring of boundary cells is scanned directly).
package gridindex

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sync"

	"asrs/internal/agg"
	"asrs/internal/attr"
	"asrs/internal/geom"
)

// Index is an immutable grid index over a dataset for one composite
// aggregator. Build once with New; safe for concurrent readers.
type Index struct {
	f       *agg.Composite
	bounds  geom.Rect
	sx, sy  int
	cw, chh float64
	chans   int
	mmSlots int

	// suffix[(j*(sx+1)+i)*chans+ch] = Σ channels of objects located in
	// cells (i', j') with i' ≥ i and j' ≥ j. This is the paper's attribute
	// summary table for cell g(i,j) (§5.2, Fig 6).
	suffix []float64
	// cellMin/cellMax[(j*sx+i)*mmSlots+s]: per-single-cell min/max of the
	// s-th fA component's attribute among selected objects in the cell.
	cellMin []float64
	cellMax []float64

	objects int

	// lbPool recycles the cell lower-bound scratch (lbScratch) across
	// queries and workers; an Index is immutable once built, so pooling
	// is its only mutable state and is safe for concurrent readers.
	lbPool sync.Pool
}

// New builds the index with granularity sx×sy over the dataset bounds
// (§7.3 evaluates 64×64, 128×128 and 256×256).
func New(ds *attr.Dataset, f *agg.Composite, sx, sy int) (*Index, error) {
	if sx < 1 || sy < 1 {
		return nil, fmt.Errorf("gridindex: granularity must be positive, got %dx%d", sx, sy)
	}
	if f == nil {
		return nil, fmt.Errorf("gridindex: nil composite aggregator")
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	bounds := ds.Bounds()
	if len(ds.Objects) == 0 || bounds.IsEmpty() {
		// Degenerate datasets get a unit bounds so that cell geometry stays
		// finite; every summary is zero.
		bounds = geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	}
	idx := &Index{
		f:       f,
		bounds:  bounds,
		sx:      sx,
		sy:      sy,
		cw:      bounds.Width() / float64(sx),
		chh:     bounds.Height() / float64(sy),
		chans:   f.Channels(),
		mmSlots: f.MinMaxSlots(),
		objects: len(ds.Objects),
	}
	idx.suffix = make([]float64, (sx+1)*(sy+1)*idx.chans)
	if idx.mmSlots > 0 {
		idx.cellMin = make([]float64, sx*sy*idx.mmSlots)
		idx.cellMax = make([]float64, sx*sy*idx.mmSlots)
		for i := range idx.cellMin {
			idx.cellMin[i] = math.Inf(1)
			idx.cellMax[i] = math.Inf(-1)
		}
	}

	// Bin object channel contributions into cells. The per-cell totals are
	// staged into the suffix array at (i, j) and then telescoped.
	var cbuf []agg.Contrib
	var mbuf []agg.MMContrib
	for oi := range ds.Objects {
		o := &ds.Objects[oi]
		ci, cj := idx.cellOf(o.Loc)
		at := (cj*(sx+1) + ci) * idx.chans
		cbuf = f.AppendContribs(o, cbuf[:0])
		for _, cb := range cbuf {
			idx.suffix[at+cb.Ch] += cb.V
		}
		if idx.mmSlots > 0 {
			mbuf = f.AppendMM(o, mbuf[:0])
			mat := (cj*idx.sx + ci) * idx.mmSlots
			for _, m := range mbuf {
				if m.V < idx.cellMin[mat+m.Slot] {
					idx.cellMin[mat+m.Slot] = m.V
				}
				if m.V > idx.cellMax[mat+m.Slot] {
					idx.cellMax[mat+m.Slot] = m.V
				}
			}
		}
	}
	// Suffix accumulation: S(i,j) = cell(i,j) + S(i+1,j) + S(i,j+1) −
	// S(i+1,j+1).
	for j := sy - 1; j >= 0; j-- {
		for i := sx - 1; i >= 0; i-- {
			at := (j*(sx+1) + i) * idx.chans
			right := (j*(sx+1) + i + 1) * idx.chans
			up := ((j+1)*(sx+1) + i) * idx.chans
			diag := ((j+1)*(sx+1) + i + 1) * idx.chans
			for ch := 0; ch < idx.chans; ch++ {
				idx.suffix[at+ch] += idx.suffix[right+ch] + idx.suffix[up+ch] - idx.suffix[diag+ch]
			}
		}
	}
	return idx, nil
}

// cellOf maps a location to its cell, clamping boundary points inward.
func (x *Index) cellOf(p geom.Point) (int, int) {
	i := int((p.X - x.bounds.MinX) / x.cw)
	j := int((p.Y - x.bounds.MinY) / x.chh)
	if i < 0 {
		i = 0
	}
	if i >= x.sx {
		i = x.sx - 1
	}
	if j < 0 {
		j = 0
	}
	if j >= x.sy {
		j = x.sy - 1
	}
	return i, j
}

// Granularity returns (sx, sy).
func (x *Index) Granularity() (int, int) { return x.sx, x.sy }

// Bounds returns the indexed extent.
func (x *Index) Bounds() geom.Rect { return x.bounds }

// Composite returns the aggregator the index was built for.
func (x *Index) Composite() *agg.Composite { return x.f }

// CellRect returns the extent of cell (i, j).
func (x *Index) CellRect(i, j int) geom.Rect {
	return geom.Rect{
		MinX: x.bounds.MinX + float64(i)*x.cw,
		MinY: x.bounds.MinY + float64(j)*x.chh,
		MaxX: x.bounds.MinX + float64(i+1)*x.cw,
		MaxY: x.bounds.MinY + float64(j+1)*x.chh,
	}
}

// suffixAt returns the summary table vector at suffix position (i, j),
// clamping out-of-range positions to the zero table at the far edge.
func (x *Index) suffixAt(i, j int) []float64 {
	if i < 0 {
		i = 0
	}
	if j < 0 {
		j = 0
	}
	if i > x.sx {
		i = x.sx
	}
	if j > x.sy {
		j = x.sy
	}
	at := (j*(x.sx+1) + i) * x.chans
	return x.suffix[at : at+x.chans]
}

// RegionChannels writes into out the channel totals of objects located in
// cells [l, r) × [b, t) via Lemma 8 inclusion–exclusion. Empty ranges
// yield zeros.
func (x *Index) RegionChannels(l, r, b, t int, out []float64) {
	if l < 0 {
		l = 0
	}
	if b < 0 {
		b = 0
	}
	if r > x.sx {
		r = x.sx
	}
	if t > x.sy {
		t = x.sy
	}
	if l >= r || b >= t {
		for i := range out {
			out[i] = 0
		}
		return
	}
	lb := x.suffixAt(l, b)
	rb := x.suffixAt(r, b)
	lt := x.suffixAt(l, t)
	rt := x.suffixAt(r, t)
	for ch := 0; ch < x.chans; ch++ {
		v := lb[ch] - rb[ch] - lt[ch] + rt[ch]
		if v < 0 && v > -1e-9 {
			v = 0 // cancel float residue from the telescoped sums
		}
		out[ch] = v
	}
}

// RingMinMax folds the per-cell minima/maxima of cells in
// [l,r)×[b,t) \ [il,ir)×[ib,it) into mmMin/mmMax.
func (x *Index) RingMinMax(l, r, b, t, il, ir, ib, it int, mmMin, mmMax []float64) {
	if x.mmSlots == 0 {
		return
	}
	clampI := func(v int) int {
		if v < 0 {
			return 0
		}
		if v > x.sx {
			return x.sx
		}
		return v
	}
	clampJ := func(v int) int {
		if v < 0 {
			return 0
		}
		if v > x.sy {
			return x.sy
		}
		return v
	}
	l, r, b, t = clampI(l), clampI(r), clampJ(b), clampJ(t)
	for j := b; j < t; j++ {
		for i := l; i < r; i++ {
			if i >= il && i < ir && j >= ib && j < it {
				continue
			}
			at := (j*x.sx + i) * x.mmSlots
			for s := 0; s < x.mmSlots; s++ {
				if v := x.cellMin[at+s]; v < mmMin[s] {
					mmMin[s] = v
				}
				if v := x.cellMax[at+s]; v > mmMax[s] {
					mmMax[s] = v
				}
			}
		}
	}
}

// SizeBytes models the storage footprint of the index the way the paper
// accounts for it (Table 1): one pointer per cell into a pool of
// hash-consed attribute summary tables (identical tables are stored once,
// Fig 6), where each stored table costs 16 bytes per non-zero entry. The
// per-cell min/max slots are charged at 16 bytes per fA slot.
func (x *Index) SizeBytes() int {
	unique := make(map[uint64]int)
	var tableBytes int
	buf := make([]byte, 8)
	for j := 0; j <= x.sy; j++ {
		for i := 0; i <= x.sx; i++ {
			vec := x.suffixAt(i, j)
			h := fnv.New64a()
			nonzero := 0
			for _, v := range vec {
				binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
				h.Write(buf)
				if v != 0 {
					nonzero++
				}
			}
			key := h.Sum64()
			if _, seen := unique[key]; !seen {
				unique[key] = nonzero
				tableBytes += 16 * nonzero
			}
		}
	}
	pointerBytes := 8 * (x.sx + 1) * (x.sy + 1)
	mmBytes := 16 * x.mmSlots * x.sx * x.sy
	return tableBytes + pointerBytes + mmBytes
}

// Objects returns the number of indexed objects.
func (x *Index) Objects() int { return x.objects }
