package gridindex_test

import (
	"math"
	"math/rand"
	"testing"

	"asrs/internal/agg"
	"asrs/internal/asp"
	"asrs/internal/attr"
	"asrs/internal/dataset"
	"asrs/internal/dssearch"
	"asrs/internal/geom"
	"asrs/internal/gridindex"
	"asrs/internal/sweep"
)

func testComposite(t testing.TB, ds *attr.Dataset) *agg.Composite {
	t.Helper()
	f, err := agg.New(ds.Schema,
		agg.Spec{Kind: agg.Distribution, Attr: "cat"},
		agg.Spec{Kind: agg.Average, Attr: "val"},
		agg.Spec{Kind: agg.Sum, Attr: "val"},
	)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func randomTarget(f *agg.Composite, rng *rand.Rand) asp.Query {
	target := make([]float64, f.Dims())
	w := make([]float64, f.Dims())
	for i := range target {
		target[i] = rng.NormFloat64() * 3
		w[i] = 0.1 + rng.Float64()
	}
	return asp.Query{F: f, Target: target, W: w}
}

// TestLemma8 validates RegionChannels against a direct object scan for
// random cell ranges.
func TestLemma8(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ds := dataset.Random(300, 80, 2)
	f := testComposite(t, ds)
	const sx, sy = 13, 9
	idx, err := gridindex.New(ds, f, sx, sy)
	if err != nil {
		t.Fatal(err)
	}
	bounds := idx.Bounds()
	cw := bounds.Width() / sx
	ch := bounds.Height() / sy

	got := make([]float64, f.Channels())
	want := make([]float64, f.Channels())
	var cbuf []agg.Contrib
	for trial := 0; trial < 200; trial++ {
		l, r := rng.Intn(sx+1), rng.Intn(sx+1)
		b, tt := rng.Intn(sy+1), rng.Intn(sy+1)
		if l > r {
			l, r = r, l
		}
		if b > tt {
			b, tt = tt, b
		}
		idx.RegionChannels(l, r, b, tt, got)

		for i := range want {
			want[i] = 0
		}
		for oi := range ds.Objects {
			o := &ds.Objects[oi]
			ci := int((o.Loc.X - bounds.MinX) / cw)
			cj := int((o.Loc.Y - bounds.MinY) / ch)
			if ci >= sx {
				ci = sx - 1
			}
			if cj >= sy {
				cj = sy - 1
			}
			if ci < l || ci >= r || cj < b || cj >= tt {
				continue
			}
			cbuf = f.AppendContribs(o, cbuf[:0])
			for _, cb := range cbuf {
				want[cb.Ch] += cb.V
			}
		}
		for chn := range got {
			if math.Abs(got[chn]-want[chn]) > 1e-6 {
				t.Fatalf("trial %d range [%d,%d)x[%d,%d) ch %d: %g vs %g", trial, l, r, b, tt, chn, got[chn], want[chn])
			}
		}
	}
}

// TestCellLowerBoundsSound: for every index cell, the cell's lower bound
// must not exceed the true distance of any candidate region bl-corner-
// located in the cell.
func TestCellLowerBoundsSound(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ds := dataset.Random(120, 60, 4)
	f := testComposite(t, ds)
	idx, err := gridindex.New(ds, f, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	a, b := 11.0, 13.0
	q := randomTarget(f, rng)
	rects, _ := asp.Reduce(ds, a, b, asp.AnchorTR)
	lbs := idx.CellLowerBounds(q, a, b)

	bounds := idx.Bounds()
	for trial := 0; trial < 500; trial++ {
		p := geom.Point{
			X: bounds.MinX + rng.Float64()*bounds.Width(),
			Y: bounds.MinY + rng.Float64()*bounds.Height(),
		}
		ci := int((p.X - bounds.MinX) / (bounds.Width() / 8))
		cj := int((p.Y - bounds.MinY) / (bounds.Height() / 8))
		if ci > 7 {
			ci = 7
		}
		if cj > 7 {
			cj = 7
		}
		rep := asp.PointRepresentation(rects, f, p)
		d := q.Distance(rep)
		if lb := lbs[cj*8+ci]; lb > d+1e-9 {
			t.Fatalf("cell (%d,%d): lb %g > true distance %g at %v", ci, cj, lb, d, p)
		}
	}
}

// TestGIDSMatchesSweep: GI-DS must return the exact optimum on random
// instances, for several granularities.
func TestGIDSMatchesSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(60)
		ds := dataset.Random(n, 50, rng.Int63())
		f := testComposite(t, ds)
		a := 2 + rng.Float64()*12
		b := 2 + rng.Float64()*12
		rects, _ := asp.Reduce(ds, a, b, asp.AnchorTR)
		q := randomTarget(f, rng)
		sw, _ := sweep.New(rects, q)
		want := sw.Solve()

		for _, g := range []int{4, 16} {
			idx, err := gridindex.New(ds, f, g, g)
			if err != nil {
				t.Fatal(err)
			}
			got, stats, err := gridindex.Solve(idx, rects, q, a, b, dssearch.Options{NCol: 10, NRow: 10})
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got.Dist-want.Dist) > 1e-9 {
				t.Fatalf("trial %d g=%d: GI-DS %g vs sweep %g (stats %+v)", trial, g, got.Dist, want.Dist, stats)
			}
			if stats.Cells != g*g {
				t.Fatalf("cells considered %d, want %d", stats.Cells, g*g)
			}
		}
	}
}

// TestGIDSPrunes: on a clustered instance with a seeded strong optimum,
// GI-DS should search only a fraction of the cells (Table 1's point).
func TestGIDSPrunes(t *testing.T) {
	ds := dataset.Random(800, 100, 9)
	f := testComposite(t, ds)
	a, b := 5.0, 5.0
	rects, _ := asp.Reduce(ds, a, b, asp.AnchorTR)
	// Target the empty region: distance 0 is found immediately, so cells
	// with any object nearby are pruned.
	q := asp.Query{F: f, Target: make([]float64, f.Dims()), W: agg.UnitWeights(f.Dims())}
	idx, _ := gridindex.New(ds, f, 32, 32)
	_, stats, err := gridindex.Solve(idx, rects, q, a, b, dssearch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.CellsSearched > stats.Cells/2 {
		t.Fatalf("searched %d of %d cells; pruning ineffective", stats.CellsSearched, stats.Cells)
	}
}

// TestGIDSApproxGuarantee: app-GIDS respects (1+δ).
func TestGIDSApproxGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 15; trial++ {
		ds := dataset.Random(1+rng.Intn(50), 50, rng.Int63())
		f := testComposite(t, ds)
		a, b := 7.0, 6.0
		rects, _ := asp.Reduce(ds, a, b, asp.AnchorTR)
		q := randomTarget(f, rng)
		sw, _ := sweep.New(rects, q)
		opt := sw.Solve().Dist
		idx, _ := gridindex.New(ds, f, 8, 8)
		for _, delta := range []float64{0.1, 0.3} {
			got, _, err := gridindex.Solve(idx, rects, q, a, b, dssearch.Options{Delta: delta})
			if err != nil {
				t.Fatal(err)
			}
			if got.Dist > (1+delta)*opt+1e-9 {
				t.Fatalf("trial %d δ=%g: %g violates (1+δ)·%g", trial, delta, got.Dist, opt)
			}
		}
	}
}

func TestIndexValidation(t *testing.T) {
	ds := dataset.Random(10, 10, 12)
	f := testComposite(t, ds)
	if _, err := gridindex.New(ds, f, 0, 4); err == nil {
		t.Error("zero granularity accepted")
	}
	if _, err := gridindex.New(ds, nil, 4, 4); err == nil {
		t.Error("nil composite accepted")
	}
	bad := &attr.Dataset{Schema: ds.Schema, Objects: []attr.Object{{Loc: geom.Point{}, Values: nil}}}
	if _, err := gridindex.New(bad, f, 4, 4); err == nil {
		t.Error("invalid dataset accepted")
	}
}

func TestSolveValidation(t *testing.T) {
	ds := dataset.Random(10, 10, 13)
	f := testComposite(t, ds)
	idx, _ := gridindex.New(ds, f, 4, 4)
	rects, _ := asp.Reduce(ds, 2, 2, asp.AnchorTR)
	q := randomTarget(f, rand.New(rand.NewSource(1)))
	if _, _, err := gridindex.Solve(idx, rects, q, 2, 2, dssearch.Options{Anchor: asp.AnchorBL}); err == nil {
		t.Error("non-TR anchor accepted")
	}
	other := testComposite(t, ds)
	q2 := randomTarget(other, rand.New(rand.NewSource(2)))
	if _, _, err := gridindex.Solve(idx, rects, q2, 2, 2, dssearch.Options{}); err == nil {
		t.Error("mismatched composite accepted")
	}
}

func TestEmptyDatasetIndex(t *testing.T) {
	ds := &attr.Dataset{Schema: dataset.Random(1, 1, 1).Schema}
	f := testComposite(t, ds)
	idx, err := gridindex.New(ds, f, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	q := asp.Query{F: f, Target: make([]float64, f.Dims())}
	res, _, err := gridindex.Solve(idx, nil, q, 1, 1, dssearch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dist != 0 {
		t.Fatalf("empty dataset: dist %g", res.Dist)
	}
}

func TestIndexSizeGrowsWithGranularity(t *testing.T) {
	ds := dataset.Random(2000, 100, 14)
	f := testComposite(t, ds)
	var prev int
	for _, g := range []int{8, 16, 32} {
		idx, _ := gridindex.New(ds, f, g, g)
		size := idx.SizeBytes()
		if size <= prev {
			t.Fatalf("granularity %d: size %d not larger than %d", g, size, prev)
		}
		prev = size
	}
}

func TestCellRect(t *testing.T) {
	ds := dataset.Random(50, 64, 15)
	f := testComposite(t, ds)
	idx, _ := gridindex.New(ds, f, 8, 8)
	union := geom.EmptyRect()
	for j := 0; j < 8; j++ {
		for i := 0; i < 8; i++ {
			union = union.Union(idx.CellRect(i, j))
		}
	}
	b := idx.Bounds()
	if math.Abs(union.MinX-b.MinX) > 1e-9 || math.Abs(union.MaxX-b.MaxX) > 1e-9 ||
		math.Abs(union.MinY-b.MinY) > 1e-9 || math.Abs(union.MaxY-b.MaxY) > 1e-9 {
		t.Fatalf("cells union %v != bounds %v", union, b)
	}
}
