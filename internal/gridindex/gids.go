package gridindex

import (
	"fmt"
	"math"

	"asrs/internal/asp"
	"asrs/internal/dssearch"
	"asrs/internal/geom"
	"asrs/internal/kernel"
)

// GI-DS (Algorithm 2): estimate a distance lower bound for the candidate
// regions bl-corner-located in every index cell, then search the cells
// best-first with DS-Search, stopping when the cheapest unsearched cell
// cannot beat the incumbent (d_opt exactly, or d_opt/(1+δ) for app-GIDS).

// Stats reports the work of one GI-DS run. CellsSearched/Cells is the
// "ratio of cells searched" column of Table 1.
type Stats struct {
	Cells         int // index cells considered
	CellsSearched int // cells handed to DS-Search
	MarginRuns    int // DS-Search runs on the reduction margins
	DS            dssearch.Stats
}

type cellCand struct {
	lb   float64
	rect geom.Rect
}

// Solve runs GI-DS for an a×b query over the index. rects must be the
// AnchorTR reduction of the indexed dataset with the same extent (the
// bl-corner bucketing of §5.3 assumes the top-right-corner reduction).
// opt.Delta > 0 selects the approximate variant (app-GIDS). The cell
// lower-bound pass and the per-cell DS-Search refinement both use
// opt.Workers; the answer is independent of the worker count.
func Solve(idx *Index, rects []asp.RectObject, q asp.Query, a, b float64, opt dssearch.Options) (asp.Result, Stats, error) {
	if opt.Anchor != asp.AnchorTR {
		return asp.Result{}, Stats{}, fmt.Errorf("gridindex: GI-DS requires the top-right-corner reduction (AnchorTR)")
	}
	if idx.f != q.F {
		return asp.Result{}, Stats{}, fmt.Errorf("gridindex: index was built for a different composite aggregator")
	}
	if err := q.Validate(); err != nil {
		return asp.Result{}, Stats{}, err
	}
	// Ownership of rects passes to the searcher, whose incremental layer
	// may re-sort them by MinX; every use below goes through the searcher
	// or is order-independent.
	searcher, err := dssearch.NewSearcherOwning(rects, q, opt)
	if err != nil {
		return asp.Result{}, Stats{}, err
	}
	defer searcher.Release()
	rects = searcher.Rects()
	var stats Stats

	// Seed the incumbent with the empty covering set.
	space := asp.Space(rects)
	emptyP := asp.EmptyCandidate(space)
	emptyRep := searcher.PointRepresentation(emptyP)
	searcher.SeedBest(asp.Result{Point: emptyP, Dist: q.Distance(emptyRep), Rep: emptyRep})

	if len(rects) > 0 {
		// The reduction extends the candidate space below/left of the
		// indexed bounds by (a, b); those thin margins are searched
		// directly (no index cells bucket them).
		bounds := idx.bounds
		margins := []geom.Rect{
			{MinX: space.MinX, MinY: space.MinY, MaxX: bounds.MinX, MaxY: space.MaxY},
			{MinX: bounds.MinX, MinY: space.MinY, MaxX: space.MaxX, MaxY: bounds.MinY},
		}
		for _, m := range margins {
			if m.IsValid() && !m.IsEmpty() {
				stats.MarginRuns++
				searcher.SolveWithin(m, 0)
			}
		}

		// Lines 2–4: lower-bound every cell and heap them.
		h := kernel.NewHeap[cellCand](func(x, y cellCand) bool { return x.lb < y.lb })
		lbs := idx.ParallelCellLowerBounds(q, a, b, kernel.Workers(opt.Workers))
		for j := 0; j < idx.sy; j++ {
			for i := 0; i < idx.sx; i++ {
				stats.Cells++
				h.Push(cellCand{lb: lbs[j*idx.sx+i], rect: idx.CellRect(i, j)})
			}
		}

		// Lines 5–7: best-first refinement. Rectangle id subsets per cell
		// come from the searcher's binary-searched master window, not a
		// linear scan.
		var sub []int32
		for h.Len() > 0 && searcher.Err() == nil {
			top := h.Pop()
			thresh := searcher.Best().Dist
			if opt.Delta > 0 {
				thresh /= 1 + opt.Delta
			}
			if top.lb >= thresh {
				break
			}
			stats.CellsSearched++
			sub = searcher.AppendWindowIDs(top.rect, sub[:0])
			searcher.SolveWithinIDs(top.rect, top.lb, sub)
		}
	}
	if err := searcher.Err(); err != nil {
		stats.DS = searcher.Stats
		return asp.Result{}, stats, err
	}

	best := searcher.Best()
	best.Rep = searcher.PointRepresentation(best.Point)
	best.Dist = q.Distance(best.Rep)
	stats.DS = searcher.Stats
	return best, stats, nil
}

// lbScratch bundles the per-query scratch of the cell lower-bound pass
// — channel vectors, bound vectors, min/max slots and the integer-dim
// flags — carved from one slab allocation. Index.CellLowerBounds used
// to allocate its nine slices on every query (and the parallel variant
// once per worker); scratches now recycle through the index's pool, so
// steady-state GI-DS queries reallocate nothing here.
type lbScratch struct {
	full, big, part []float64
	lo, hi          []float64
	mmMin, mmMax    []float64
	isInt           []bool
}

func (x *Index) getLBScratch() *lbScratch {
	if sc, ok := x.lbPool.Get().(*lbScratch); ok && sc != nil {
		return sc
	}
	dims := x.f.Dims()
	slab := make([]float64, 3*x.chans+2*dims+2*x.mmSlots)
	carve := func(n int) []float64 {
		out := slab[:n:n]
		slab = slab[n:]
		return out
	}
	return &lbScratch{
		full:  carve(x.chans),
		big:   carve(x.chans),
		part:  carve(x.chans),
		lo:    carve(dims),
		hi:    carve(dims),
		mmMin: carve(x.mmSlots),
		mmMax: carve(x.mmSlots),
		isInt: x.f.IntegerDims(),
	}
}

func (x *Index) putLBScratch(sc *lbScratch) { x.lbPool.Put(sc) }

// CellLowerBounds computes the §5.3 lower bound for every index cell:
// bounded region ⊆ every candidate region ⊆ bounding region, evaluated
// with Lemma 8 and Equation 1. Returned in row-major order (j*sx+i).
func (x *Index) CellLowerBounds(q asp.Query, a, b float64) []float64 {
	out := make([]float64, x.sx*x.sy)
	sc := x.getLBScratch()
	for j := 0; j < x.sy; j++ {
		x.rowLowerBounds(q, a, b, j, out[j*x.sx:(j+1)*x.sx], sc)
	}
	x.putLBScratch(sc)
	return out
}

// rowLowerBounds fills one row of CellLowerBounds using a pooled
// scratch (so the parallel variant can shard by row, one scratch per
// worker).
func (x *Index) rowLowerBounds(q asp.Query, a, b float64, j int, out []float64, sc *lbScratch) {
	ib, it := x.insideRows(j, b)
	ob, ot := x.boundRows(j, b)
	for i := 0; i < x.sx; i++ {
		il, ir := x.insideCols(i, a)
		ol, or := x.boundCols(i, a)

		x.RegionChannels(il, ir, ib, it, sc.full)
		x.RegionChannels(ol, or, ob, ot, sc.big)
		for ch := 0; ch < x.chans; ch++ {
			// The partial set is the bounding region minus the bounded
			// one, so its channel totals are exactly big−full. Values
			// may be legitimately negative (the sumNeg channel of fS);
			// only float residue from the telescoped sums is clamped.
			v := sc.big[ch] - sc.full[ch]
			if v < 0 && v > -1e-9 {
				v = 0
			}
			sc.part[ch] = v
		}
		if x.mmSlots > 0 {
			for s := 0; s < x.mmSlots; s++ {
				sc.mmMin[s] = math.Inf(1)
				sc.mmMax[s] = math.Inf(-1)
			}
			x.RingMinMax(ol, or, ob, ot, il, ir, ib, it, sc.mmMin, sc.mmMax)
		}
		x.f.FinalizeBounds(sc.full, sc.part, sc.mmMin, sc.mmMax, sc.lo, sc.hi)
		out[i] = q.LowerBoundInt(sc.lo, sc.hi, sc.isInt)
	}
}

// insideCols returns the [l, r) column range of cells fully covered by
// every candidate region whose bl corner lies in column i: columns inside
// [X_{i+1}, X_i + a]. Objects in those cells satisfy p.x < x < p.x+a
// strictly for every corner p in the half-open bucket [X_i, X_{i+1})
// because binning is half-open too — except that boundary objects at the
// dataset maximum are clamped into the last cell, so a range reaching the
// last column is shrunk by one (conservatively partial).
func (x *Index) insideCols(i int, a float64) (int, int) {
	l := i + 1
	hi := x.bounds.MinX + float64(i)*x.cw + a
	r := l
	for r < x.sx && x.bounds.MinX+float64(r+1)*x.cw <= hi {
		r++
	}
	if r == x.sx && r > l {
		r--
	}
	return l, r
}

func (x *Index) insideRows(j int, b float64) (int, int) {
	bo := j + 1
	hi := x.bounds.MinY + float64(j)*x.chh + b
	t := bo
	for t < x.sy && x.bounds.MinY+float64(t+1)*x.chh <= hi {
		t++
	}
	if t == x.sy && t > bo {
		t--
	}
	return bo, t
}

// boundCols returns the [l, r) column range of cells intersected by any
// candidate region with bl corner in column i: columns meeting
// [X_i, X_{i+1} + a].
func (x *Index) boundCols(i int, a float64) (int, int) {
	hi := x.bounds.MinX + float64(i+1)*x.cw + a
	r := i + 1
	for r < x.sx && x.bounds.MinX+float64(r)*x.cw < hi {
		r++
	}
	return i, r
}

func (x *Index) boundRows(j int, b float64) (int, int) {
	hi := x.bounds.MinY + float64(j+1)*x.chh + b
	t := j + 1
	for t < x.sy && x.bounds.MinY+float64(t)*x.chh < hi {
		t++
	}
	return j, t
}
