package gridindex

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"asrs/internal/agg"
	"asrs/internal/geom"
)

// Binary index format (little endian):
//
//	magic "ASRSIDX1"
//	u32 sx, sy, chans, mmSlots, objects
//	f64 bounds.MinX, MinY, MaxX, MaxY
//	u32 len(fingerprint), fingerprint bytes
//	f64 suffix[(sx+1)*(sy+1)*chans]
//	f64 cellMin[sx*sy*mmSlots], cellMax[...]   (only when mmSlots > 0)
//
// The composite aggregator itself is not serialized (selection functions
// are arbitrary Go functions); the loader re-binds a caller-supplied
// composite and verifies its structural fingerprint.

var indexMagic = [8]byte{'A', 'S', 'R', 'S', 'I', 'D', 'X', '1'}

// WriteTo serializes the index. It implements io.WriterTo.
func (x *Index) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: bufio.NewWriter(w)}
	write := func(v any) error { return binary.Write(cw, binary.LittleEndian, v) }

	if _, err := cw.Write(indexMagic[:]); err != nil {
		return cw.n, err
	}
	fp := []byte(x.f.Fingerprint())
	for _, v := range []uint32{uint32(x.sx), uint32(x.sy), uint32(x.chans), uint32(x.mmSlots), uint32(x.objects)} {
		if err := write(v); err != nil {
			return cw.n, err
		}
	}
	for _, v := range []float64{x.bounds.MinX, x.bounds.MinY, x.bounds.MaxX, x.bounds.MaxY} {
		if err := write(v); err != nil {
			return cw.n, err
		}
	}
	if err := write(uint32(len(fp))); err != nil {
		return cw.n, err
	}
	if _, err := cw.Write(fp); err != nil {
		return cw.n, err
	}
	if err := write(x.suffix); err != nil {
		return cw.n, err
	}
	if x.mmSlots > 0 {
		if err := write(x.cellMin); err != nil {
			return cw.n, err
		}
		if err := write(x.cellMax); err != nil {
			return cw.n, err
		}
	}
	return cw.n, cw.w.(*bufio.Writer).Flush()
}

// ReadFrom deserializes an index written by WriteTo, re-binding it to the
// supplied composite aggregator. The composite must match the one the
// index was built with structurally (verified via fingerprint) and
// behaviorally (selection functions are not verifiable; supplying a
// composite with different γ silently yields wrong answers — treat the
// composite definition as part of the index's identity).
func Read(r io.Reader, f *agg.Composite) (*Index, error) {
	if f == nil {
		return nil, fmt.Errorf("gridindex: Read requires the composite aggregator the index was built with")
	}
	br := bufio.NewReader(r)
	read := func(v any) error { return binary.Read(br, binary.LittleEndian, v) }

	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("gridindex: reading magic: %w", err)
	}
	if magic != indexMagic {
		return nil, fmt.Errorf("gridindex: not an index file (magic %q)", magic[:])
	}
	var sx, sy, chans, mmSlots, objects uint32
	for _, p := range []*uint32{&sx, &sy, &chans, &mmSlots, &objects} {
		if err := read(p); err != nil {
			return nil, fmt.Errorf("gridindex: reading header: %w", err)
		}
	}
	const maxDim = 1 << 16
	if sx == 0 || sy == 0 || sx > maxDim || sy > maxDim || chans > 1<<20 || mmSlots > 1<<16 {
		return nil, fmt.Errorf("gridindex: implausible header %dx%d chans=%d mm=%d", sx, sy, chans, mmSlots)
	}
	var bounds geom.Rect
	for _, p := range []*float64{&bounds.MinX, &bounds.MinY, &bounds.MaxX, &bounds.MaxY} {
		if err := read(p); err != nil {
			return nil, fmt.Errorf("gridindex: reading bounds: %w", err)
		}
	}
	if !bounds.IsValid() || bounds.IsEmpty() || math.IsNaN(bounds.MinX) {
		return nil, fmt.Errorf("gridindex: invalid bounds %v", bounds)
	}
	var fpLen uint32
	if err := read(&fpLen); err != nil {
		return nil, fmt.Errorf("gridindex: reading fingerprint length: %w", err)
	}
	if fpLen > 1<<16 {
		return nil, fmt.Errorf("gridindex: implausible fingerprint length %d", fpLen)
	}
	fp := make([]byte, fpLen)
	if _, err := io.ReadFull(br, fp); err != nil {
		return nil, fmt.Errorf("gridindex: reading fingerprint: %w", err)
	}
	if got := f.Fingerprint(); got != string(fp) {
		return nil, fmt.Errorf("gridindex: composite mismatch: index built for %q, got %q", fp, got)
	}
	if int(chans) != f.Channels() || int(mmSlots) != f.MinMaxSlots() {
		return nil, fmt.Errorf("gridindex: channel layout mismatch")
	}

	idx := &Index{
		f:       f,
		bounds:  bounds,
		sx:      int(sx),
		sy:      int(sy),
		cw:      bounds.Width() / float64(sx),
		chh:     bounds.Height() / float64(sy),
		chans:   int(chans),
		mmSlots: int(mmSlots),
		objects: int(objects),
	}
	idx.suffix = make([]float64, (sx+1)*(sy+1)*chans)
	if err := read(idx.suffix); err != nil {
		return nil, fmt.Errorf("gridindex: reading suffix tables: %w", err)
	}
	if mmSlots > 0 {
		idx.cellMin = make([]float64, sx*sy*mmSlots)
		idx.cellMax = make([]float64, sx*sy*mmSlots)
		if err := read(idx.cellMin); err != nil {
			return nil, fmt.Errorf("gridindex: reading cell minima: %w", err)
		}
		if err := read(idx.cellMax); err != nil {
			return nil, fmt.Errorf("gridindex: reading cell maxima: %w", err)
		}
	}
	return idx, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
