package gridindex

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"asrs/internal/agg"
	"asrs/internal/asp"
	"asrs/internal/attr"
)

// NewParallel builds the same index as New using `workers` goroutines for
// the binning pass (the suffix accumulation is a cheap single pass).
// workers <= 0 selects runtime.GOMAXPROCS(0). The result is byte-identical
// to New's up to floating-point summation order (the shard merge depends
// on the worker count — build with New when last-ulp reproducibility
// across configurations matters); all bounds remain sound because
// per-cell totals are exact sums either way.
func NewParallel(ds *attr.Dataset, f *agg.Composite, sx, sy, workers int) (*Index, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || len(ds.Objects) < 4096 {
		return New(ds, f, sx, sy)
	}
	if sx < 1 || sy < 1 {
		return nil, fmt.Errorf("gridindex: granularity must be positive, got %dx%d", sx, sy)
	}
	if f == nil {
		return nil, fmt.Errorf("gridindex: nil composite aggregator")
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}

	base, err := New(&attr.Dataset{Schema: ds.Schema}, f, sx, sy)
	if err != nil {
		return nil, err
	}
	// New() on an empty dataset gives unit bounds; rebuild geometry from
	// the real extent.
	bounds := ds.Bounds()
	if len(ds.Objects) == 0 || bounds.IsEmpty() {
		return base, nil
	}
	idx := &Index{
		f:       f,
		bounds:  bounds,
		sx:      sx,
		sy:      sy,
		cw:      bounds.Width() / float64(sx),
		chh:     bounds.Height() / float64(sy),
		chans:   f.Channels(),
		mmSlots: f.MinMaxSlots(),
		objects: len(ds.Objects),
	}
	idx.suffix = make([]float64, (sx+1)*(sy+1)*idx.chans)
	if idx.mmSlots > 0 {
		idx.cellMin = make([]float64, sx*sy*idx.mmSlots)
		idx.cellMax = make([]float64, sx*sy*idx.mmSlots)
		for i := range idx.cellMin {
			idx.cellMin[i] = inf
			idx.cellMax[i] = -inf
		}
	}

	type shard struct {
		cells   []float64
		cellMin []float64
		cellMax []float64
	}
	shards := make([]shard, workers)
	var wg sync.WaitGroup
	chunk := (len(ds.Objects) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(ds.Objects) {
			hi = len(ds.Objects)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			s := &shards[w]
			s.cells = make([]float64, (sx+1)*(sy+1)*idx.chans)
			if idx.mmSlots > 0 {
				s.cellMin = make([]float64, sx*sy*idx.mmSlots)
				s.cellMax = make([]float64, sx*sy*idx.mmSlots)
				for i := range s.cellMin {
					s.cellMin[i] = inf
					s.cellMax[i] = -inf
				}
			}
			var cbuf []agg.Contrib
			var mbuf []agg.MMContrib
			for oi := lo; oi < hi; oi++ {
				o := &ds.Objects[oi]
				ci, cj := idx.cellOf(o.Loc)
				at := (cj*(sx+1) + ci) * idx.chans
				cbuf = f.AppendContribs(o, cbuf[:0])
				for _, cb := range cbuf {
					s.cells[at+cb.Ch] += cb.V
				}
				if idx.mmSlots > 0 {
					mbuf = f.AppendMM(o, mbuf[:0])
					mat := (cj*sx + ci) * idx.mmSlots
					for _, m := range mbuf {
						if m.V < s.cellMin[mat+m.Slot] {
							s.cellMin[mat+m.Slot] = m.V
						}
						if m.V > s.cellMax[mat+m.Slot] {
							s.cellMax[mat+m.Slot] = m.V
						}
					}
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()

	for w := range shards {
		s := &shards[w]
		if s.cells == nil {
			continue
		}
		for i, v := range s.cells {
			idx.suffix[i] += v
		}
		for i, v := range s.cellMin {
			if v < idx.cellMin[i] {
				idx.cellMin[i] = v
			}
		}
		for i, v := range s.cellMax {
			if v > idx.cellMax[i] {
				idx.cellMax[i] = v
			}
		}
	}
	// Suffix accumulation (identical to New).
	for j := sy - 1; j >= 0; j-- {
		for i := sx - 1; i >= 0; i-- {
			at := (j*(sx+1) + i) * idx.chans
			right := (j*(sx+1) + i + 1) * idx.chans
			up := ((j+1)*(sx+1) + i) * idx.chans
			diag := ((j+1)*(sx+1) + i + 1) * idx.chans
			for ch := 0; ch < idx.chans; ch++ {
				idx.suffix[at+ch] += idx.suffix[right+ch] + idx.suffix[up+ch] - idx.suffix[diag+ch]
			}
		}
	}
	return idx, nil
}

// ParallelCellLowerBounds computes CellLowerBounds with row-parallelism;
// results are identical for every worker count (rows are computed
// independently). workers <= 0 selects runtime.GOMAXPROCS(0).
func (x *Index) ParallelCellLowerBounds(q asp.Query, a, b float64, workers int) []float64 {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || x.sy < 2*workers {
		return x.CellLowerBounds(q, a, b)
	}
	out := make([]float64, x.sx*x.sy)
	var wg sync.WaitGroup
	rows := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := x.getLBScratch()
			for j := range rows {
				x.rowLowerBounds(q, a, b, j, out[j*x.sx:(j+1)*x.sx], sc)
			}
			x.putLBScratch(sc)
		}()
	}
	for j := 0; j < x.sy; j++ {
		rows <- j
	}
	close(rows)
	wg.Wait()
	return out
}

var inf = math.Inf(1)
