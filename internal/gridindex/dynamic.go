package gridindex

import (
	"fmt"
	"math"

	"asrs/internal/agg"
	"asrs/internal/attr"
	"asrs/internal/fenwick"
	"asrs/internal/geom"
)

// Dynamic is an append-only grid index over a live object stream: Insert
// is O(log² grid) per object (a 2D Fenwick tree carries the channel
// sums), RegionChannels answers the Lemma 8 query on the current stream
// contents, and Snapshot materializes an immutable static Index for GI-DS
// query bursts. This serves the paper's motivating setting — continuously
// accumulating geo-tagged streams (§1, and the Surge [12] line of work) —
// where rebuilding the static suffix tables per arrival would cost
// O(grid) each.
//
// The spatial extent is fixed at construction (streams need a declared
// region of interest); objects outside are clamped to the border cells,
// which keeps every bound conservative.
//
// Concurrency contract: Dynamic is single-writer. Insert/InsertAll must
// be externally serialized against every other method (an RWMutex with
// the writer holding Lock is the canonical arrangement). Between
// writes, the read-only methods — RegionChannelsBuf with caller-owned
// buffers, Objects, Bounds, Snapshot — may run concurrently with each
// other: they only read the Fenwick tree and cell tables.
// RegionChannels is the exception: it borrows the index's internal
// scratch buffer, so two overlapping RegionChannels calls race on it;
// concurrent readers must use RegionChannelsBuf instead.
type Dynamic struct {
	f       *agg.Composite
	bounds  geom.Rect
	sx, sy  int
	cw, chh float64
	chans   int
	mmSlots int

	tree    *fenwick.Tree2D
	cells   []float64 // raw per-cell channel totals (for Snapshot)
	cellMin []float64
	cellMax []float64
	objects int

	tmp []float64
}

// NewDynamic creates an empty dynamic index with the given extent and
// granularity for the composite aggregator f.
func NewDynamic(f *agg.Composite, bounds geom.Rect, sx, sy int) (*Dynamic, error) {
	if f == nil {
		return nil, fmt.Errorf("gridindex: nil composite aggregator")
	}
	if sx < 1 || sy < 1 {
		return nil, fmt.Errorf("gridindex: granularity must be positive, got %dx%d", sx, sy)
	}
	if !bounds.IsValid() || bounds.IsEmpty() {
		return nil, fmt.Errorf("gridindex: dynamic index needs a non-empty extent, got %v", bounds)
	}
	d := &Dynamic{
		f:       f,
		bounds:  bounds,
		sx:      sx,
		sy:      sy,
		cw:      bounds.Width() / float64(sx),
		chh:     bounds.Height() / float64(sy),
		chans:   f.Channels(),
		mmSlots: f.MinMaxSlots(),
		tree:    fenwick.New2D(sx, sy, f.Channels()),
		cells:   make([]float64, sx*sy*f.Channels()),
		tmp:     make([]float64, f.Channels()),
	}
	if d.mmSlots > 0 {
		d.cellMin = make([]float64, sx*sy*d.mmSlots)
		d.cellMax = make([]float64, sx*sy*d.mmSlots)
		for i := range d.cellMin {
			d.cellMin[i] = math.Inf(1)
			d.cellMax[i] = math.Inf(-1)
		}
	}
	return d, nil
}

// cellOf clamps a location into the grid.
func (d *Dynamic) cellOf(p geom.Point) (int, int) {
	i := int((p.X - d.bounds.MinX) / d.cw)
	j := int((p.Y - d.bounds.MinY) / d.chh)
	if i < 0 {
		i = 0
	}
	if i >= d.sx {
		i = d.sx - 1
	}
	if j < 0 {
		j = 0
	}
	if j >= d.sy {
		j = d.sy - 1
	}
	return i, j
}

// Insert adds one object to the index.
func (d *Dynamic) Insert(o *attr.Object) {
	ci, cj := d.cellOf(o.Loc)
	contribs := d.f.AppendContribs(o, nil)
	at := (cj*d.sx + ci) * d.chans
	for _, cb := range contribs {
		d.tree.Add(ci, cj, cb.Ch, cb.V)
		d.cells[at+cb.Ch] += cb.V
	}
	if d.mmSlots > 0 {
		mat := (cj*d.sx + ci) * d.mmSlots
		for _, m := range d.f.AppendMM(o, nil) {
			if m.V < d.cellMin[mat+m.Slot] {
				d.cellMin[mat+m.Slot] = m.V
			}
			if m.V > d.cellMax[mat+m.Slot] {
				d.cellMax[mat+m.Slot] = m.V
			}
		}
	}
	d.objects++
}

// InsertAll feeds a batch.
func (d *Dynamic) InsertAll(objs []attr.Object) {
	for i := range objs {
		d.Insert(&objs[i])
	}
}

// Objects returns the number of inserted objects.
func (d *Dynamic) Objects() int { return d.objects }

// Bounds returns the declared extent.
func (d *Dynamic) Bounds() geom.Rect { return d.bounds }

// RegionChannels answers the Lemma 8 region query on the live contents:
// channel totals of objects in cells [l, r) × [b, t). O(log sx · log sy ·
// chans). It uses the index's internal scratch buffer — not safe for
// overlapping calls; concurrent readers use RegionChannelsBuf.
func (d *Dynamic) RegionChannels(l, r, b, t int, out []float64) {
	d.tree.RegionIntoBuf(l, r, b, t, out, d.tmp)
}

// RegionChannelsBuf is RegionChannels with caller-supplied scratch
// (len(tmp) >= Channels of the composite): it touches no index state
// beyond reads, so any number of readers may call it concurrently
// between writes.
func (d *Dynamic) RegionChannelsBuf(l, r, b, t int, out, tmp []float64) {
	d.tree.RegionIntoBuf(l, r, b, t, out, tmp)
}

// Snapshot materializes the current contents as an immutable static Index
// (suffix tables), suitable for gridindex.Solve. O(grid · chans).
func (d *Dynamic) Snapshot() *Index {
	idx := &Index{
		f:       d.f,
		bounds:  d.bounds,
		sx:      d.sx,
		sy:      d.sy,
		cw:      d.cw,
		chh:     d.chh,
		chans:   d.chans,
		mmSlots: d.mmSlots,
		objects: d.objects,
	}
	idx.suffix = make([]float64, (d.sx+1)*(d.sy+1)*d.chans)
	for j := 0; j < d.sy; j++ {
		for i := 0; i < d.sx; i++ {
			src := (j*d.sx + i) * d.chans
			dst := (j*(d.sx+1) + i) * d.chans
			copy(idx.suffix[dst:dst+d.chans], d.cells[src:src+d.chans])
		}
	}
	for j := d.sy - 1; j >= 0; j-- {
		for i := d.sx - 1; i >= 0; i-- {
			at := (j*(d.sx+1) + i) * d.chans
			right := (j*(d.sx+1) + i + 1) * d.chans
			up := ((j+1)*(d.sx+1) + i) * d.chans
			diag := ((j+1)*(d.sx+1) + i + 1) * d.chans
			for ch := 0; ch < d.chans; ch++ {
				idx.suffix[at+ch] += idx.suffix[right+ch] + idx.suffix[up+ch] - idx.suffix[diag+ch]
			}
		}
	}
	if d.mmSlots > 0 {
		idx.cellMin = append([]float64(nil), d.cellMin...)
		idx.cellMax = append([]float64(nil), d.cellMax...)
	}
	return idx
}
