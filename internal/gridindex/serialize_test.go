package gridindex_test

import (
	"bytes"
	"math/rand"
	"testing"

	"asrs/internal/agg"
	"asrs/internal/asp"
	"asrs/internal/dataset"
	"asrs/internal/dssearch"
	"asrs/internal/gridindex"
)

func TestIndexSerializeRoundTrip(t *testing.T) {
	ds := dataset.Random(300, 80, 70)
	f := testComposite(t, ds)
	idx, err := gridindex.New(ds, f, 16, 12)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := idx.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	loaded, err := gridindex.Read(&buf, f)
	if err != nil {
		t.Fatal(err)
	}

	// The loaded index must answer identically: same lower bounds, same
	// GI-DS result.
	rng := rand.New(rand.NewSource(71))
	q := randomTarget(f, rng)
	a, b := 9.0, 7.0
	lbs1 := idx.CellLowerBounds(q, a, b)
	lbs2 := loaded.CellLowerBounds(q, a, b)
	for i := range lbs1 {
		if lbs1[i] != lbs2[i] {
			t.Fatalf("lower bound %d differs: %g vs %g", i, lbs1[i], lbs2[i])
		}
	}
	rects, _ := asp.Reduce(ds, a, b, asp.AnchorTR)
	r1, _, err := gridindex.Solve(idx, rects, q, a, b, dssearch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, _, err := gridindex.Solve(loaded, rects, q, a, b, dssearch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Dist != r2.Dist {
		t.Fatalf("loaded index answers differently: %g vs %g", r1.Dist, r2.Dist)
	}
}

func TestIndexReadRejectsMismatch(t *testing.T) {
	ds := dataset.Random(50, 40, 72)
	f := testComposite(t, ds)
	idx, _ := gridindex.New(ds, f, 8, 8)
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// Different composite structure.
	other := agg.MustNew(ds.Schema, agg.Spec{Kind: agg.Distribution, Attr: "cat"})
	if _, err := gridindex.Read(bytes.NewReader(data), other); err == nil {
		t.Error("mismatched composite accepted")
	}
	// Nil composite.
	if _, err := gridindex.Read(bytes.NewReader(data), nil); err == nil {
		t.Error("nil composite accepted")
	}
	// Corrupt magic.
	bad := append([]byte(nil), data...)
	bad[0] = 'X'
	if _, err := gridindex.Read(bytes.NewReader(bad), f); err == nil {
		t.Error("corrupt magic accepted")
	}
	// Truncated body.
	if _, err := gridindex.Read(bytes.NewReader(data[:len(data)/2]), f); err == nil {
		t.Error("truncated file accepted")
	}
	// Empty input.
	if _, err := gridindex.Read(bytes.NewReader(nil), f); err == nil {
		t.Error("empty input accepted")
	}
}

func TestIndexSerializeWithMinMax(t *testing.T) {
	// A composite with multiple fA components exercises the min/max
	// sections of the format.
	ds := dataset.Random(200, 60, 73)
	f := agg.MustNew(ds.Schema,
		agg.Spec{Kind: agg.Average, Attr: "val"},
		agg.Spec{Kind: agg.Sum, Attr: "val"},
	)
	idx, err := gridindex.New(ds, f, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := gridindex.Read(&buf, f)
	if err != nil {
		t.Fatal(err)
	}
	q := asp.Query{F: f, Target: []float64{5, 100}}
	lbs1 := idx.CellLowerBounds(q, 8, 8)
	lbs2 := loaded.CellLowerBounds(q, 8, 8)
	for i := range lbs1 {
		if lbs1[i] != lbs2[i] {
			t.Fatalf("min/max round trip: lb %d differs", i)
		}
	}
}
