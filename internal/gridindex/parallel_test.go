package gridindex_test

import (
	"math"
	"math/rand"
	"testing"

	"asrs/internal/dataset"
	"asrs/internal/gridindex"
)

// TestParallelBuildMatchesSequential: same summaries up to float
// summation order.
func TestParallelBuildMatchesSequential(t *testing.T) {
	ds := dataset.Random(20000, 100, 80)
	f := testComposite(t, ds)
	seq, err := gridindex.New(ds, f, 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		par, err := gridindex.NewParallel(ds, f, 32, 32, workers)
		if err != nil {
			t.Fatal(err)
		}
		a, b := 7.0, 9.0
		q := randomTarget(f, rand.New(rand.NewSource(81)))
		l1 := seq.CellLowerBounds(q, a, b)
		l2 := par.CellLowerBounds(q, a, b)
		for i := range l1 {
			if math.Abs(l1[i]-l2[i]) > 1e-6 {
				t.Fatalf("workers=%d: lb %d differs: %g vs %g", workers, i, l1[i], l2[i])
			}
		}
	}
}

// TestParallelBuildSmallFallsBack: tiny datasets use the sequential path.
func TestParallelBuildSmallFallsBack(t *testing.T) {
	ds := dataset.Random(100, 50, 82)
	f := testComposite(t, ds)
	par, err := gridindex.NewParallel(ds, f, 8, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	seq, _ := gridindex.New(ds, f, 8, 8)
	q := randomTarget(f, rand.New(rand.NewSource(83)))
	l1 := seq.CellLowerBounds(q, 5, 5)
	l2 := par.CellLowerBounds(q, 5, 5)
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatalf("fallback differs at %d", i)
		}
	}
}

func TestParallelBuildValidation(t *testing.T) {
	ds := dataset.Random(10000, 50, 84)
	f := testComposite(t, ds)
	if _, err := gridindex.NewParallel(ds, f, 0, 4, 4); err == nil {
		t.Error("zero granularity accepted")
	}
	if _, err := gridindex.NewParallel(ds, nil, 4, 4, 4); err == nil {
		t.Error("nil composite accepted")
	}
}

// TestParallelCellLowerBounds: identical results to the sequential
// computation.
func TestParallelCellLowerBounds(t *testing.T) {
	ds := dataset.Random(5000, 80, 85)
	f := testComposite(t, ds)
	idx, err := gridindex.New(ds, f, 40, 40)
	if err != nil {
		t.Fatal(err)
	}
	q := randomTarget(f, rand.New(rand.NewSource(86)))
	want := idx.CellLowerBounds(q, 6, 6)
	for _, workers := range []int{2, 5} {
		got := idx.ParallelCellLowerBounds(q, 6, 6, workers)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("workers=%d: lb %d differs", workers, i)
			}
		}
	}
	// workers=1 falls back.
	got := idx.ParallelCellLowerBounds(q, 6, 6, 1)
	for i := range want {
		if want[i] != got[i] {
			t.Fatal("workers=1 fallback differs")
		}
	}
}
