// Package sweep implements the sweep-line baseline ("Base" in paper §7)
// for the ASP problem: it enumerates every disjoint region of the
// rectangle arrangement by sweeping horizontal strips and scanning the
// x-intervals within each strip with an incremental accumulator. Its time
// complexity is O(n²) for arbitrary composite aggregators, which is the
// bound the paper derives for sweep-line approaches (§4.1).
//
// The same machinery restricted to a small sub-space serves as the
// exactness safety net of DS-Search (DESIGN.md §3).
package sweep

import (
	"math"
	"sort"

	"asrs/internal/agg"
	"asrs/internal/asp"
	"asrs/internal/geom"
)

// Stats reports work counters of one sweep run.
type Stats struct {
	Strips    int // horizontal strips examined
	Intervals int // candidate x-intervals evaluated
	// Strip-evaluator selection counters of the incremental sweep:
	// dirty strips resolved by the flat merge pass vs. by Fenwick tree
	// walks (seeded ranges or, in StripFenwickOnly, per-point).
	FlatStrips    int
	FenwickStrips int
}

// Solver runs the Base algorithm. The zero value is not usable; construct
// with New.
type Solver struct {
	rects []asp.RectObject
	query asp.Query

	byMinX []int // rect indices sorted by Rect.MinX
	byMaxX []int // rect indices sorted by Rect.MaxX

	// Reusable per-solve scratch: DS-Search's safety net runs thousands
	// of mini-sweeps per query through one Rebind-ed solver, so the strip
	// coordinates, accumulator and representation buffers persist here
	// instead of being allocated per call.
	ys   []float64
	acc  *agg.Accumulator
	rep  []float64
	cbuf []agg.Contrib

	// incremental selects the Fenwick-backed delta sweep for large
	// inputs (see incremental.go); inc is its reusable scratch, and
	// incrCap bounds the input size it engages for (NewPool pre-sizes
	// the scratch to this bound, so the path never regrows per worker).
	// fpScale/fpInv are the optional per-channel fixed-point scales
	// (SetFixedPoint) that let real-valued certified channels ride the
	// int64 tree exactly.
	incremental    bool
	incrCap        int
	fpScale, fpInv []float64
	inc            incrState

	// stripMode/stripCost drive the incremental sweep's strip-evaluator
	// selection (flat merge pass vs. Fenwick walks; see StripMode). The
	// zero values mean StripAuto with DefaultStripCost.
	stripMode StripMode
	stripCost StripCost

	// evalCap bounds candidate distance evaluation (SolveWithinCapped):
	// DistanceUnder marches against min(local best, evalCap), so
	// candidates provably unable to matter to the caller exit after a
	// dimension or two. +Inf (the constructors' value) disables it.
	evalCap float64

	Stats Stats
}

// New prepares a solver over the given rectangle objects. The pre-sorted
// edge orders are shared across strips so each strip costs O(n).
func New(rects []asp.RectObject, q asp.Query) (*Solver, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	s := &Solver{
		query:   q,
		acc:     agg.NewAccumulator(q.F),
		rep:     make([]float64, q.F.Dims()),
		evalCap: math.Inf(1),
	}
	s.Rebind(rects)
	return s, nil
}

// NewPool returns n unbound solvers for the query whose scratch comes
// from shared slab allocations, so a worker pool's solvers cost O(1)
// allocations rather than O(workers). incrCap > 0 additionally
// pre-sizes each solver's incremental-sweep scratch for inputs up to
// incrCap rectangles (larger inputs just regrow). Each solver must be
// Rebind-ed before use; solvers are independent afterwards.
func NewPool(n int, q asp.Query, incrCap int) ([]Solver, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	const presort = 2048 // sorted-edge and strip capacity per solver
	solvers := make([]Solver, n)
	accs := agg.NewAccumulators(q.F, n)
	reps := make([]float64, n*q.F.Dims())
	ints := make([]int, 2*n*presort)
	carveInt := func(sz int) []int {
		out := ints[:sz:sz]
		ints = ints[sz:]
		return out[:0]
	}
	ysf := make([]float64, n*presort)
	for i := range solvers {
		solvers[i] = Solver{
			query:   q,
			acc:     &accs[i],
			rep:     reps[i*q.F.Dims() : (i+1)*q.F.Dims()],
			byMinX:  carveInt(presort),
			byMaxX:  carveInt(presort),
			ys:      ysf[i*presort : i*presort : (i+1)*presort],
			evalCap: math.Inf(1),
		}
	}
	if incrCap > 0 {
		chans := q.F.Channels()
		m := incrCap
		for i := range solvers {
			solvers[i].incrCap = m
		}
		i32 := make([]int32, n*(14*m+12))
		carve32 := func(sz int) []int32 {
			out := i32[:sz:sz]
			i32 = i32[sz:]
			return out[:0]
		}
		fl := make([]float64, n*(2*m+2+chans))
		i64 := make([]int64, n*2*chans)
		rngs := make([][2]int32, n*64)
		for i := range solvers {
			inc := &solvers[i].inc
			inc.ranges = rngs[i*64 : i*64 : (i+1)*64]
			inc.xs = fl[: 0 : 2*m+2]
			fl = fl[2*m+2:]
			inc.ch = fl[:chans:chans]
			fl = fl[chans:]
			inc.chI = i64[2*i*chans : (2*i+1)*chans : (2*i+1)*chans]
			inc.run = i64[(2*i+1)*chans : (2*i+2)*chans : (2*i+2)*chans]
			inc.li = carve32(m)
			inc.ri = carve32(m)
			inc.sa = carve32(m)
			inc.se = carve32(m)
			inc.addStart = carve32(2*m + 3)
			inc.remStart = carve32(2*m + 3)
			inc.addIds = carve32(m)
			inc.remIds = carve32(m)
			inc.fill = carve32(4*m + 6)
			inc.bit.Reset(2*m+1, chans)
			inc.dif.Reset(2*m+1, chans)
		}
	}
	return solvers, nil
}

// SetQuery rebinds the solver to a new query that shares the current
// query's composite aggregator (same channel layout, so the accumulator
// and every pre-sized scratch slab stay valid) and reports whether it
// did. A query over a different composite returns false and leaves the
// solver untouched — the caller must rebuild. This is what lets a slab
// cache recycle whole solver pools across the queries of a serving
// batch: per-query state is just the target/weights/norm.
func (s *Solver) SetQuery(q asp.Query) bool {
	if q.F != s.query.F {
		return false
	}
	s.query = q
	return true
}

// Rebind points the solver at a new rectangle set, reusing all scratch
// (sorted-edge orders, strip buffers, accumulator). The query is
// unchanged; the rects slice is only read, never retained past the next
// Rebind. Stats keep accumulating across rebinds.
func (s *Solver) Rebind(rects []asp.RectObject) {
	s.rects = rects
	s.byMinX = resizeInts(s.byMinX, len(rects))
	s.byMaxX = resizeInts(s.byMaxX, len(rects))
	for i := range rects {
		s.byMinX[i] = i
		s.byMaxX[i] = i
	}
	sort.Slice(s.byMinX, func(a, b int) bool { return rects[s.byMinX[a]].Rect.MinX < rects[s.byMinX[b]].Rect.MinX })
	sort.Slice(s.byMaxX, func(a, b int) bool { return rects[s.byMaxX[a]].Rect.MaxX < rects[s.byMaxX[b]].Rect.MaxX })
}

// resizeInts returns a slice of length n, reusing capacity when possible.
func resizeInts(v []int, n int) []int {
	if cap(v) >= n {
		return v[:n]
	}
	return make([]int, n)
}

// Solve finds the minimum-distance point over the whole plane, including
// the empty covering set.
func (s *Solver) Solve() asp.Result {
	space := asp.Space(s.rects)
	best := s.emptyResult(space)
	if len(s.rects) == 0 {
		return best
	}
	if r, ok := s.SolveWithin(space); ok && r.Dist < best.Dist {
		best = r
	}
	return best
}

// emptyResult evaluates the empty covering set at a point outside space.
func (s *Solver) emptyResult(space geom.Rect) asp.Result {
	p := asp.EmptyCandidate(space)
	rep := make([]float64, s.query.F.Dims())
	s.query.F.FinalizeExact(make([]float64, s.query.F.Channels()), rep)
	return asp.Result{Point: p, Dist: s.query.Distance(rep), Rep: rep}
}

// SolveWithinCapped is SolveWithin with a caller-side relevance cap:
// candidates whose distance provably exceeds cap abandon the distance
// march early and never become the local best. Every candidate with
// distance ≤ cap — ties with the caller's incumbent included — is
// evaluated bit-identically to SolveWithin, so a caller that discards
// results worse than its incumbent (under any tie order on equal
// distances) observes exactly SolveWithin's answers. When nothing
// scores ≤ cap the returned result can be the untouched +Inf sentinel
// even though candidates existed (ok stays true) — by the contract
// above, the caller was going to discard those anyway.
func (s *Solver) SolveWithinCapped(space geom.Rect, capDist float64) (asp.Result, bool) {
	// nextafter keeps distance == capDist candidates below the march
	// bound, so the caller's tie-breaking still sees them. +Inf maps to
	// +Inf.
	s.evalCap = math.Nextafter(capDist, math.Inf(1))
	r, ok := s.SolveWithin(space)
	s.evalCap = math.Inf(1)
	return r, ok
}

// SolveWithin finds the minimum-distance point whose location lies in the
// closed rectangle space, considering only open disjoint regions of the
// arrangement (the candidates the paper enumerates). It returns ok=false
// when the space is invalid or degenerate.
func (s *Solver) SolveWithin(space geom.Rect) (asp.Result, bool) {
	if !space.IsValid() {
		return asp.Result{}, false
	}
	// Horizontal strips: distinct y edge coordinates clipped to the space,
	// plus the space's own extent.
	ys := append(s.ys[:0], space.MinY, space.MaxY)
	for _, r := range s.rects {
		if r.Rect.MinY > space.MinY && r.Rect.MinY < space.MaxY {
			ys = append(ys, r.Rect.MinY)
		}
		if r.Rect.MaxY > space.MinY && r.Rect.MaxY < space.MaxY {
			ys = append(ys, r.Rect.MaxY)
		}
	}
	sort.Float64s(ys)
	ys = dedup(ys)
	s.ys = ys

	acc := s.acc
	rep := s.rep
	best := asp.Result{Dist: math.Inf(1)}
	found := false

	if s.incremental && len(s.rects) >= incrMinRects && len(s.rects) <= s.incrCap &&
		len(ys) >= 2 && space.MinY != space.MaxY && space.MinX != space.MaxX {
		found = s.solveWithinIncremental(space, &best)
		return best, found
	}

	for si := 0; si+1 < len(ys); si++ {
		ym := (ys[si] + ys[si+1]) / 2
		if ys[si+1] <= ys[si] {
			continue
		}
		s.Stats.Strips++
		if s.scanStrip(ym, space, acc, rep, &best) {
			found = true
		}
	}
	// Degenerate zero-height space: a single line strip.
	if space.MinY == space.MaxY {
		s.Stats.Strips++
		if s.scanStrip(space.MinY, space, acc, rep, &best) {
			found = true
		}
	}
	return best, found
}

// scanStrip sweeps the x-intervals of the strip at height ym, updating
// best. Returns true if at least one candidate was evaluated.
func (s *Solver) scanStrip(ym float64, space geom.Rect, acc *agg.Accumulator, rep []float64, best *asp.Result) bool {
	acc.Reset()
	// Merge-walk the two pre-sorted edge lists, keeping only rects active
	// in this strip (open coverage in y).
	active := func(i int) bool {
		r := s.rects[i].Rect
		return r.MinY < ym && ym < r.MaxY
	}
	found := false
	ins, outs := s.byMinX, s.byMaxX
	ii, oi := 0, 0
	// prevX is the left end of the current candidate interval, clipped to
	// the space.
	prevX := space.MinX
	evaluate := func(upToX float64) {
		l := math.Max(prevX, space.MinX)
		r := math.Min(upToX, space.MaxX)
		if l > r {
			return
		}
		var xm float64
		if l == r {
			xm = l
		} else {
			xm = (l + r) / 2
		}
		s.Stats.Intervals++
		acc.Representation(rep)
		bnd := best.Dist
		if s.evalCap < bnd {
			bnd = s.evalCap
		}
		if d, ok := s.query.DistanceUnder(rep, bnd); ok {
			best.Dist = d
			best.Point = geom.Point{X: xm, Y: ym}
			best.Rep = append(best.Rep[:0], rep...)
		}
		found = true
	}
	if space.MinX == space.MaxX {
		// Degenerate zero-width space: a single candidate column. The
		// interval walk below cannot reach it (its early-out fires
		// before the covering set assembles), so assemble the open
		// covering set at the column directly and evaluate once.
		for _, i := range ins {
			r := s.rects[i].Rect
			if r.MinX < space.MinX && space.MinX < r.MaxX && active(i) {
				acc.Add(s.rects[i].Obj)
			}
		}
		evaluate(space.MaxX)
		return found
	}
	for ii < len(ins) || oi < len(outs) {
		var x float64
		takeIn := false
		switch {
		case ii >= len(ins):
			x = s.rects[outs[oi]].Rect.MaxX
		case oi >= len(outs):
			x = s.rects[ins[ii]].Rect.MinX
			takeIn = true
		default:
			xi := s.rects[ins[ii]].Rect.MinX
			xo := s.rects[outs[oi]].Rect.MaxX
			// Process removals first at equal coordinates so that a point
			// exactly between a closing and an opening edge is attributed
			// the open-interval set on each side correctly.
			if xi < xo {
				x, takeIn = xi, true
			} else {
				x = xo
			}
		}
		if x > prevX && x > space.MinX {
			evaluate(x)
			prevX = x
		}
		if prevX >= space.MaxX {
			// The rest of the strip is outside the space, and the covering
			// set to the right can only be reached outside; stop early.
			break
		}
		if takeIn {
			if active(ins[ii]) {
				acc.Add(s.rects[ins[ii]].Obj)
			}
			ii++
		} else {
			if active(outs[oi]) {
				acc.Remove(s.rects[outs[oi]].Obj)
			}
			oi++
		}
	}
	// Trailing interval to the right of the last edge.
	if prevX < space.MaxX {
		evaluate(space.MaxX)
	}
	return found
}

// dedup removes adjacent duplicates from a sorted slice in place.
func dedup(vs []float64) []float64 {
	if len(vs) == 0 {
		return vs
	}
	out := vs[:1]
	for _, v := range vs[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}
