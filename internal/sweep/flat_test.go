package sweep

import (
	"math"
	"math/rand"
	"testing"

	"asrs/internal/agg"
	"asrs/internal/asp"
	"asrs/internal/attr"
	"asrs/internal/geom"
)

// stripModes enumerates every evaluator the selection can pick, plus a
// deliberately invalid cost model (must fall back to the default, not
// change answers) and a skewed-but-valid one (must change only speed).
var stripModeCases = []struct {
	name string
	prep func(s *Solver)
}{
	{"auto", func(s *Solver) { s.SetStripMode(StripAuto) }},
	{"flat-only", func(s *Solver) { s.SetStripMode(StripFlatOnly) }},
	{"fenwick-only", func(s *Solver) { s.SetStripMode(StripFenwickOnly) }},
	{"auto-invalid-cost", func(s *Solver) {
		s.SetStripMode(StripAuto)
		s.SetStripCost(StripCost{TreeUpdate: -1})
	}},
	{"auto-skewed-cost", func(s *Solver) {
		s.SetStripMode(StripAuto)
		s.SetStripCost(StripCost{TreeUpdate: 0.01, TreeProbe: 0.01, FlatStep: 50, DiffUpdate: 0.01})
	}},
}

// expectSame fails unless two results match bit for bit.
func expectSame(t *testing.T, label string, want, got asp.Result, wok, gok bool) {
	t.Helper()
	if wok != gok {
		t.Fatalf("%s: found %v vs %v", label, wok, gok)
	}
	if !wok {
		return
	}
	if want.Dist != got.Dist || want.Point != got.Point {
		t.Fatalf("%s: %g@%v vs %g@%v", label, want.Dist, want.Point, got.Dist, got.Point)
	}
	if len(want.Rep) != len(got.Rep) {
		t.Fatalf("%s: rep len %d vs %d", label, len(want.Rep), len(got.Rep))
	}
	for d := range want.Rep {
		if math.Float64bits(want.Rep[d]) != math.Float64bits(got.Rep[d]) {
			t.Fatalf("%s: rep[%d] %v vs %v", label, d, want.Rep[d], got.Rep[d])
		}
	}
}

// TestFlatStripBitIdentical: every strip mode — flat merge pass, seeded
// Fenwick, legacy per-point Fenwick, auto under default, invalid, and
// adversarially skewed cost models — returns the classic rescan's
// answer bit for bit on the integer-valued float64 instantiation. The
// fixture snaps a third of the points to a coarse grid, so duplicate
// edge positions (deduplicated into shared interval boundaries) and the
// clamped first/last intervals (probes before/after all interior
// deltas) are all exercised.
func TestFlatStripBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 20; trial++ {
		n := incrMinRects + rng.Intn(180)
		rects, q := incrFixture(t, rng, n)
		spaces := []geom.Rect{
			asp.Space(rects),
			{MinX: 10, MinY: 10, MaxX: 60, MaxY: 70},
			{MinX: rng.Float64() * 50, MinY: rng.Float64() * 50, MaxX: 50 + rng.Float64()*50, MaxY: 50 + rng.Float64()*50},
		}
		classic, err := New(rects, q)
		if err != nil {
			t.Fatal(err)
		}
		for si, space := range spaces {
			want, wok := classic.SolveWithin(space)
			for _, mc := range stripModeCases {
				s, err := New(rects, q)
				if err != nil {
					t.Fatal(err)
				}
				s.SetIncremental(true)
				mc.prep(s)
				got, gok := s.SolveWithin(space)
				expectSame(t, mc.name, want, got, wok, gok)
				_ = si
			}
		}
	}
}

// TestFlatStripFixedPoint: the int64 fixed-point instantiation rides
// the same three evaluators; quarter- and half-grid real channels must
// come back bit-identical to the classic float64 rescan in every mode.
func TestFlatStripFixedPoint(t *testing.T) {
	schema, err := attr.NewSchema(
		attr.Attribute{Name: "rating", Kind: attr.Numeric},
		attr.Attribute{Name: "visits", Kind: attr.Numeric},
	)
	if err != nil {
		t.Fatal(err)
	}
	f, err := agg.New(schema,
		agg.Spec{Kind: agg.Sum, Attr: "visits"},
		agg.Spec{Kind: agg.Average, Attr: "rating"},
	)
	if err != nil {
		t.Fatal(err)
	}
	scale := []float64{2, 2, 2, 4, 1}
	inv := []float64{0.5, 0.5, 0.5, 0.25, 1}
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 10; trial++ {
		n := incrMinRects + rng.Intn(120)
		objs := make([]attr.Object, n)
		rects := make([]asp.RectObject, n)
		w := 4 + rng.Float64()*8
		h := 3 + rng.Float64()*8
		for i := range rects {
			x, y := rng.Float64()*100, rng.Float64()*100
			if rng.Intn(4) == 0 {
				x, y = float64(rng.Intn(20))*5, float64(rng.Intn(20))*5
			}
			objs[i] = attr.Object{
				Loc: geom.Point{X: x, Y: y},
				Values: []attr.Value{
					{Num: float64(rng.Intn(41)) * 0.25},
					{Num: float64(rng.Intn(999))*0.5 - 200},
				},
			}
			rects[i] = asp.RectObject{Rect: geom.Rect{MinX: x - w, MinY: y - h, MaxX: x, MaxY: y}, Obj: &objs[i]}
		}
		q := asp.Query{F: f, Target: []float64{3000, 10}}
		classic, err := New(rects, q)
		if err != nil {
			t.Fatal(err)
		}
		space := asp.Space(rects)
		want, wok := classic.SolveWithin(space)
		for _, mc := range stripModeCases {
			s, err := New(rects, q)
			if err != nil {
				t.Fatal(err)
			}
			s.SetIncremental(true)
			s.SetFixedPoint(scale, inv)
			mc.prep(s)
			got, gok := s.SolveWithin(space)
			expectSame(t, mc.name, want, got, wok, gok)
		}
	}
}

// TestFlatStripDegenerateSpaces: zero-width strips in both axes — a
// zero-height space falls through to the classic line scan, and spaces
// narrower than any rectangle leave a single interval — must agree
// with the classic rescan in every mode.
func TestFlatStripDegenerateSpaces(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	rects, q := incrFixture(t, rng, incrMinRects+40)
	spaces := []geom.Rect{
		{MinX: 5, MinY: 50, MaxX: 95, MaxY: 50},     // zero height: classic line strip
		{MinX: 50, MinY: 5, MaxX: 50.001, MaxY: 95}, // near-degenerate width
		{MinX: 49, MinY: 49, MaxX: 51, MaxY: 51},    // tiny interior window
	}
	classic, err := New(rects, q)
	if err != nil {
		t.Fatal(err)
	}
	for si, space := range spaces {
		want, wok := classic.SolveWithin(space)
		for _, mc := range stripModeCases {
			s, err := New(rects, q)
			if err != nil {
				t.Fatal(err)
			}
			s.SetIncremental(true)
			mc.prep(s)
			got, gok := s.SolveWithin(space)
			expectSame(t, mc.name, want, got, wok, gok)
			_ = si
		}
	}
}

// TestStripModeCounters: the mode pins the evaluator, and the Stats
// counters must say so — FlatOnly touches no Fenwick strip and
// FenwickOnly no flat strip; Auto accounts every dirty strip to exactly
// one side.
func TestStripModeCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	rects, q := incrFixture(t, rng, incrMinRects+150)
	space := asp.Space(rects)
	run := func(m StripMode) Stats {
		s, err := New(rects, q)
		if err != nil {
			t.Fatal(err)
		}
		s.SetIncremental(true)
		s.SetStripMode(m)
		s.SolveWithin(space)
		return s.Stats
	}
	flat := run(StripFlatOnly)
	if flat.FlatStrips == 0 || flat.FenwickStrips != 0 {
		t.Fatalf("flat-only: %+v", flat)
	}
	fen := run(StripFenwickOnly)
	if fen.FenwickStrips == 0 || fen.FlatStrips != 0 {
		t.Fatalf("fenwick-only: %+v", fen)
	}
	auto := run(StripAuto)
	if auto.FlatStrips+auto.FenwickStrips == 0 {
		t.Fatalf("auto accounted no strips: %+v", auto)
	}
	if auto.FlatStrips+auto.FenwickStrips != flat.FlatStrips {
		t.Fatalf("auto strip accounting %d+%d != %d dirty strips",
			auto.FlatStrips, auto.FenwickStrips, flat.FlatStrips)
	}
}

// TestStripPoolModes: pool-built solvers (slab scratch, the production
// path) agree with classic across modes after Rebind, and the pool's
// pre-sized dif/run scratch survives reuse across solves.
func TestStripPoolModes(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	rects, q := incrFixture(t, rng, incrMinRects+100)
	rects2, _ := incrFixture(t, rng, incrMinRects+70)
	classic, err := New(rects, q)
	if err != nil {
		t.Fatal(err)
	}
	classic2, err := New(rects2, q)
	if err != nil {
		t.Fatal(err)
	}
	space := asp.Space(rects)
	space2 := asp.Space(rects2)
	want, wok := classic.SolveWithin(space)
	want2, wok2 := classic2.SolveWithin(space2)
	for _, mc := range stripModeCases {
		pool, err := NewPool(2, q, 512)
		if err != nil {
			t.Fatal(err)
		}
		s := &pool[1]
		s.SetIncremental(true)
		mc.prep(s)
		s.Rebind(rects)
		got, gok := s.SolveWithin(space)
		expectSame(t, "pool/"+mc.name, want, got, wok, gok)
		// Rebind to a different set: scratch reuse must not leak state.
		s.Rebind(rects2)
		got2, gok2 := s.SolveWithin(space2)
		expectSame(t, "pool-rebind/"+mc.name, want2, got2, wok2, gok2)
	}
}

// TestSolveWithinCappedBitIdentical pins the capped evaluation
// contract on both the classic scan and every incremental strip mode:
// any cap at or above the space's optimum returns SolveWithin's result
// bit for bit (the open cap keeps exact ties evaluable), a cap below it
// returns the untouched +Inf sentinel with a nil Rep, and running a
// capped solve must not leak the cap into a following uncapped solve.
func TestSolveWithinCappedBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 12; trial++ {
		n := incrMinRects + rng.Intn(160)
		rects, q := incrFixture(t, rng, n)
		space := asp.Space(rects)
		solvers := map[string]*Solver{}
		for _, incremental := range []bool{false, true} {
			for _, mc := range stripModeCases {
				s, err := New(rects, q)
				if err != nil {
					t.Fatal(err)
				}
				s.SetIncremental(incremental)
				mc.prep(s)
				name := mc.name
				if !incremental {
					name = "classic/" + mc.name
				}
				solvers[name] = s
			}
		}
		ref := solvers["classic/auto"]
		want, wok := ref.SolveWithin(space)
		if !wok {
			t.Fatalf("trial %d: reference solve found nothing", trial)
		}
		caps := []float64{
			math.Inf(1), want.Dist * 2, want.Dist + 1,
			want.Dist, // exact tie: must still be evaluated in full
		}
		for name, s := range solvers {
			for _, c := range caps {
				got, gok := s.SolveWithinCapped(space, c)
				expectSame(t, name, want, got, wok, gok)
			}
			// A cap strictly below the optimum starves every candidate:
			// the sentinel comes back untouched, found stays true.
			below := math.Nextafter(want.Dist, math.Inf(-1))
			got, gok := s.SolveWithinCapped(space, below)
			if !gok {
				t.Fatalf("%s: capped-below solve reported no candidates", name)
			}
			if got.Rep != nil || !math.IsInf(got.Dist, 1) {
				t.Fatalf("%s: capped-below solve returned %g@%v, want untouched sentinel", name, got.Dist, got.Point)
			}
			// The cap must not persist past the call.
			after, aok := s.SolveWithin(space)
			expectSame(t, name+"/after-capped", want, after, wok, aok)
		}
	}
}
