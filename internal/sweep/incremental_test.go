package sweep

import (
	"math"
	"math/rand"
	"testing"

	"asrs/internal/agg"
	"asrs/internal/asp"
	"asrs/internal/attr"
	"asrs/internal/geom"
)

// incrFixture builds an integer-valued workload (fD + fS over small
// integers) large enough to clear incrMinRects, with coordinate
// collisions so edge ordering corner cases get exercised.
func incrFixture(t *testing.T, rng *rand.Rand, n int) ([]asp.RectObject, asp.Query) {
	t.Helper()
	schema, err := attr.NewSchema(
		attr.Attribute{Name: "cat", Kind: attr.Categorical, Domain: []string{"a", "b", "c", "d"}},
		attr.Attribute{Name: "val", Kind: attr.Numeric},
	)
	if err != nil {
		t.Fatal(err)
	}
	f, err := agg.New(schema,
		agg.Spec{Kind: agg.Distribution, Attr: "cat"},
		agg.Spec{Kind: agg.Sum, Attr: "val"},
	)
	if err != nil {
		t.Fatal(err)
	}
	objs := make([]attr.Object, n)
	rects := make([]asp.RectObject, n)
	w := 4 + rng.Float64()*8
	h := 3 + rng.Float64()*8
	for i := range rects {
		x := rng.Float64() * 100
		y := rng.Float64() * 100
		if rng.Intn(3) == 0 {
			x = float64(rng.Intn(25)) * 4
			y = float64(rng.Intn(25)) * 4
		}
		objs[i] = attr.Object{
			Loc: geom.Point{X: x, Y: y},
			Values: []attr.Value{
				{Cat: rng.Intn(4)},
				{Num: float64(rng.Intn(9) - 4)},
			},
		}
		rects[i] = asp.RectObject{Rect: geom.Rect{MinX: x - w, MinY: y - h, MaxX: x, MaxY: y}, Obj: &objs[i]}
	}
	target := make([]float64, f.Dims())
	for i := range target {
		target[i] = float64(rng.Intn(20))
	}
	q := asp.Query{F: f, Target: target}
	return rects, q
}

// TestIncrementalSweepBitIdentical: for integer-valued composites the
// Fenwick-backed incremental sweep must return the exact same answer —
// distance, point and representation — as the classic per-strip rescan,
// over randomized inputs and spaces (the skip rule only elides
// re-evaluations that cannot win the strict improvement test).
func TestIncrementalSweepBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 25; trial++ {
		n := incrMinRects + rng.Intn(200)
		rects, q := incrFixture(t, rng, n)
		spaces := []geom.Rect{
			asp.Space(rects),
			{MinX: 10, MinY: 10, MaxX: 60, MaxY: 70},
			{MinX: rng.Float64() * 50, MinY: rng.Float64() * 50, MaxX: 50 + rng.Float64()*50, MaxY: 50 + rng.Float64()*50},
		}
		classic, err := New(rects, q)
		if err != nil {
			t.Fatal(err)
		}
		incr, err := New(rects, q)
		if err != nil {
			t.Fatal(err)
		}
		incr.SetIncremental(true)
		for si, space := range spaces {
			cr, cok := classic.SolveWithin(space)
			ir, iok := incr.SolveWithin(space)
			if cok != iok {
				t.Fatalf("trial %d space %d: found %v vs %v", trial, si, cok, iok)
			}
			if !cok {
				continue
			}
			if cr.Dist != ir.Dist || cr.Point != ir.Point {
				t.Fatalf("trial %d space %d: classic %g@%v, incremental %g@%v",
					trial, si, cr.Dist, cr.Point, ir.Dist, ir.Point)
			}
			for d := range cr.Rep {
				if math.Float64bits(cr.Rep[d]) != math.Float64bits(ir.Rep[d]) {
					t.Fatalf("trial %d space %d: rep[%d] %v vs %v", trial, si, d, cr.Rep[d], ir.Rep[d])
				}
			}
		}
	}
}

// TestIncrementalSweepSolve: the full-plane Solve agrees too (exercises
// rebinds and the empty-cover candidate around the incremental core).
func TestIncrementalSweepSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	rects, q := incrFixture(t, rng, incrMinRects+60)
	classic, err := New(rects, q)
	if err != nil {
		t.Fatal(err)
	}
	incr, err := New(rects, q)
	if err != nil {
		t.Fatal(err)
	}
	incr.SetIncremental(true)
	cr := classic.Solve()
	ir := incr.Solve()
	if cr.Dist != ir.Dist || cr.Point != ir.Point {
		t.Fatalf("classic %g@%v, incremental %g@%v", cr.Dist, cr.Point, ir.Dist, ir.Point)
	}
}

// TestIncrementalSweepFixedPoint: real-valued composites whose
// contributions live on a dyadic grid ride the int64 Fenwick tree via
// SetFixedPoint, and the answer — distance, point, representation bits
// — must match the classic rescan exactly (every float sum is exact
// under the certificate, so the different accumulation orders agree).
func TestIncrementalSweepFixedPoint(t *testing.T) {
	schema, err := attr.NewSchema(
		attr.Attribute{Name: "rating", Kind: attr.Numeric},
		attr.Attribute{Name: "visits", Kind: attr.Numeric},
	)
	if err != nil {
		t.Fatal(err)
	}
	f, err := agg.New(schema,
		agg.Spec{Kind: agg.Sum, Attr: "visits"},
		agg.Spec{Kind: agg.Average, Attr: "rating"},
	)
	if err != nil {
		t.Fatal(err)
	}
	// Scales mirror the dssearch certificate for quarter/half grids:
	// fS(visits) channels carry halves, fA(rating) sum carries quarters.
	scale := []float64{2, 2, 2, 4, 1}
	inv := []float64{0.5, 0.5, 0.5, 0.25, 1}
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 15; trial++ {
		n := incrMinRects + rng.Intn(150)
		objs := make([]attr.Object, n)
		rects := make([]asp.RectObject, n)
		w := 4 + rng.Float64()*8
		h := 3 + rng.Float64()*8
		for i := range rects {
			x, y := rng.Float64()*100, rng.Float64()*100
			objs[i] = attr.Object{
				Loc: geom.Point{X: x, Y: y},
				Values: []attr.Value{
					{Num: float64(rng.Intn(41)) * 0.25},
					{Num: float64(rng.Intn(999))*0.5 - 200},
				},
			}
			rects[i] = asp.RectObject{Rect: geom.Rect{MinX: x - w, MinY: y - h, MaxX: x, MaxY: y}, Obj: &objs[i]}
		}
		q := asp.Query{F: f, Target: []float64{3000, 10}}
		classic, err := New(rects, q)
		if err != nil {
			t.Fatal(err)
		}
		incr, err := New(rects, q)
		if err != nil {
			t.Fatal(err)
		}
		incr.SetIncremental(true)
		incr.SetFixedPoint(scale, inv)
		space := asp.Space(rects)
		cr, cok := classic.SolveWithin(space)
		ir, iok := incr.SolveWithin(space)
		if cok != iok {
			t.Fatalf("trial %d: found %v vs %v", trial, cok, iok)
		}
		if cr.Dist != ir.Dist || cr.Point != ir.Point {
			t.Fatalf("trial %d: classic %g@%v, fixed-point %g@%v", trial, cr.Dist, cr.Point, ir.Dist, ir.Point)
		}
		for d := range cr.Rep {
			if math.Float64bits(cr.Rep[d]) != math.Float64bits(ir.Rep[d]) {
				t.Fatalf("trial %d: rep[%d] %v vs %v", trial, d, cr.Rep[d], ir.Rep[d])
			}
		}
	}
}
