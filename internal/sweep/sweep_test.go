package sweep_test

import (
	"math"
	"math/rand"
	"testing"

	"asrs/internal/agg"
	"asrs/internal/asp"
	"asrs/internal/attr"
	"asrs/internal/dataset"
	"asrs/internal/geom"
	"asrs/internal/sweep"
)

// randomQuery builds a composite aggregator and random target/weights over
// the generic test schema of dataset.Random.
func randomQuery(t testing.TB, ds *attr.Dataset, rng *rand.Rand) asp.Query {
	t.Helper()
	specs := []agg.Spec{
		{Kind: agg.Distribution, Attr: "cat"},
		{Kind: agg.Average, Attr: "val"},
		{Kind: agg.Sum, Attr: "val"},
	}
	// Use a random non-empty subset of components.
	var chosen []agg.Spec
	for _, s := range specs {
		if rng.Intn(2) == 0 {
			chosen = append(chosen, s)
		}
	}
	if len(chosen) == 0 {
		chosen = specs[:1]
	}
	f, err := agg.New(ds.Schema, chosen...)
	if err != nil {
		t.Fatal(err)
	}
	target := make([]float64, f.Dims())
	w := make([]float64, f.Dims())
	for i := range target {
		target[i] = rng.NormFloat64() * 3
		w[i] = 0.1 + rng.Float64()
	}
	return asp.Query{F: f, Target: target, W: w}
}

// TestSweepMatchesBruteForce is the core correctness test: on random
// instances the sweep's optimum distance must equal the brute-force
// enumeration of all disjoint regions.
func TestSweepMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(25)
		ds := dataset.Random(n, 40, rng.Int63())
		a := 2 + rng.Float64()*12
		b := 2 + rng.Float64()*12
		rects, err := asp.Reduce(ds, a, b, asp.AnchorTR)
		if err != nil {
			t.Fatal(err)
		}
		q := randomQuery(t, ds, rng)
		want := asp.BruteForce(rects, q)

		s, err := sweep.New(rects, q)
		if err != nil {
			t.Fatal(err)
		}
		got := s.Solve()
		if math.Abs(got.Dist-want.Dist) > 1e-9 {
			t.Fatalf("trial %d (n=%d): sweep %g vs brute %g", trial, n, got.Dist, want.Dist)
		}
		// The returned point must actually achieve the reported distance.
		rep := asp.PointRepresentation(rects, q.F, got.Point)
		if d := q.Distance(rep); math.Abs(d-got.Dist) > 1e-9 {
			t.Fatalf("trial %d: reported %g but point evaluates to %g", trial, got.Dist, d)
		}
	}
}

func TestSweepEmptyInstance(t *testing.T) {
	ds := dataset.Random(1, 10, 9)
	f := agg.MustNew(ds.Schema, agg.Spec{Kind: agg.Sum, Attr: "val"})
	q := asp.Query{F: f, Target: []float64{0}}
	s, err := sweep.New(nil, q)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Solve()
	if res.Dist != 0 {
		t.Fatalf("empty instance: dist %g, want 0 (empty rep matches zero target)", res.Dist)
	}
}

func TestSweepRejectsBadQuery(t *testing.T) {
	ds := dataset.Random(3, 10, 10)
	f := agg.MustNew(ds.Schema, agg.Spec{Kind: agg.Sum, Attr: "val"})
	if _, err := sweep.New(nil, asp.Query{F: f, Target: []float64{1, 2}}); err == nil {
		t.Fatal("expected validation error")
	}
}

// TestSolveWithinRestriction: the best point returned must lie inside the
// requested space, and restricting to the full space must match Solve.
func TestSolveWithinRestriction(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	ds := dataset.Random(30, 40, 123)
	rects, _ := asp.Reduce(ds, 8, 8, asp.AnchorTR)
	q := randomQuery(t, ds, rng)
	s, _ := sweep.New(rects, q)

	sub := geom.Rect{MinX: 5, MinY: 5, MaxX: 20, MaxY: 25}
	res, ok := s.SolveWithin(sub)
	if !ok {
		t.Fatal("no candidate found in sub-space")
	}
	if !sub.ContainsClosed(res.Point) {
		t.Fatalf("point %v outside space %v", res.Point, sub)
	}
	rep := asp.PointRepresentation(rects, q.F, res.Point)
	if d := q.Distance(rep); math.Abs(d-res.Dist) > 1e-9 {
		t.Fatalf("reported %g, point evaluates to %g", res.Dist, d)
	}
}

// TestSolveWithinDegenerateSpaces exercises zero-width and zero-height
// spaces.
func TestSolveWithinDegenerateSpaces(t *testing.T) {
	ds := dataset.Random(10, 20, 5)
	rects, _ := asp.Reduce(ds, 5, 5, asp.AnchorTR)
	rng := rand.New(rand.NewSource(1))
	q := randomQuery(t, ds, rng)
	s, _ := sweep.New(rects, q)

	if res, ok := s.SolveWithin(geom.Rect{MinX: 3, MinY: 0, MaxX: 3, MaxY: 20}); ok {
		if res.Point.X != 3 {
			t.Fatalf("zero-width space returned x=%g", res.Point.X)
		}
	}
	if res, ok := s.SolveWithin(geom.Rect{MinX: 0, MinY: 7, MaxX: 20, MaxY: 7}); ok {
		if res.Point.Y != 7 {
			t.Fatalf("zero-height space returned y=%g", res.Point.Y)
		}
	}
	if _, ok := s.SolveWithin(geom.Rect{MinX: 5, MinY: 5, MaxX: 4, MaxY: 6}); ok {
		t.Fatal("invalid space should return ok=false")
	}
}

// TestSweepStats sanity-checks the work counters.
func TestSweepStats(t *testing.T) {
	ds := dataset.Random(15, 30, 8)
	rects, _ := asp.Reduce(ds, 6, 6, asp.AnchorTR)
	rng := rand.New(rand.NewSource(2))
	q := randomQuery(t, ds, rng)
	s, _ := sweep.New(rects, q)
	s.Solve()
	if s.Stats.Strips == 0 || s.Stats.Intervals == 0 {
		t.Fatalf("stats not recorded: %+v", s.Stats)
	}
}

// TestSweepCoincidentObjects: duplicated locations must not break the
// sweep (degenerate arrangements with zero-width gaps).
func TestSweepCoincidentObjects(t *testing.T) {
	ds := dataset.Random(6, 20, 31)
	for i := range ds.Objects {
		ds.Objects[i].Loc = geom.Point{X: 10, Y: 10} // all coincident
	}
	rects, _ := asp.Reduce(ds, 4, 4, asp.AnchorTR)
	f := agg.MustNew(ds.Schema, agg.Spec{Kind: agg.Distribution, Attr: "cat"})
	q := asp.Query{F: f, Target: []float64{6, 0, 0}}
	s, err := sweep.New(rects, q)
	if err != nil {
		t.Fatal(err)
	}
	got := s.Solve()
	want := asp.BruteForce(rects, q)
	if math.Abs(got.Dist-want.Dist) > 1e-9 {
		t.Fatalf("coincident: sweep %g vs brute %g", got.Dist, want.Dist)
	}
}
