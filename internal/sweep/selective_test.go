package sweep_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"asrs/internal/agg"
	"asrs/internal/asp"
	"asrs/internal/attr"
	"asrs/internal/dataset"
	"asrs/internal/sweep"
)

// TestSweepSelectiveGammaQuick: property-based comparison against brute
// force with non-trivial selection functions.
func TestSweepSelectiveGammaQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ds := dataset.Random(1+rng.Intn(20), 30, rng.Int63())
		catIdx := ds.Schema.Index("cat")
		valIdx := ds.Schema.Index("val")
		comp, err := agg.New(ds.Schema,
			agg.Spec{Kind: agg.Count, Select: attr.SelectCategory(catIdx, rng.Intn(3))},
			agg.Spec{Kind: agg.Sum, Attr: "val", Select: attr.SelectNumRange(valIdx, -5, 5)},
		)
		if err != nil {
			return false
		}
		q := asp.Query{F: comp, Target: []float64{float64(rng.Intn(6)), rng.NormFloat64() * 5}}
		rects, err := asp.Reduce(ds, 3+rng.Float64()*8, 3+rng.Float64()*8, asp.AnchorTR)
		if err != nil {
			return false
		}
		s, err := sweep.New(rects, q)
		if err != nil {
			return false
		}
		got := s.Solve()
		want := asp.BruteForce(rects, q)
		return math.Abs(got.Dist-want.Dist) <= 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestSweepL2 matches brute force under the L2 norm.
func TestSweepL2(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	for trial := 0; trial < 20; trial++ {
		ds := dataset.Random(1+rng.Intn(20), 30, rng.Int63())
		comp := agg.MustNew(ds.Schema, agg.Spec{Kind: agg.Distribution, Attr: "cat"})
		q := asp.Query{F: comp, Target: []float64{1, 2, 3}, Norm: agg.L2}
		rects, _ := asp.Reduce(ds, 6, 6, asp.AnchorTR)
		s, _ := sweep.New(rects, q)
		got := s.Solve()
		want := asp.BruteForce(rects, q)
		if math.Abs(got.Dist-want.Dist) > 1e-9 {
			t.Fatalf("trial %d: L2 sweep %g vs brute %g", trial, got.Dist, want.Dist)
		}
	}
}
