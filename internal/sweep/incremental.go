package sweep

import (
	"sort"

	"asrs/internal/fenwick"
	"asrs/internal/geom"

	"asrs/internal/asp"
)

// The incremental sweep replaces the classic per-strip rescan with a
// Fenwick-backed delta walk. The candidate x-intervals of a space are
// the gaps between consecutive distinct edge coordinates and are shared
// by every strip; a rectangle covers a fixed inclusive interval span and
// is active over a contiguous strip run. Walking strips bottom-up, the
// channel totals of every interval live in a range-add/point-query
// Fenwick tree updated only by the rectangles entering or leaving at the
// strip boundary, and only the intervals those deltas touch are
// re-evaluated: an untouched interval has the same covering set — hence
// the same representation and distance — as when it was last evaluated,
// at which point it already failed (or set) the strict `d < best`
// improvement test. The answer (distance and point) is therefore
// bit-identical to the classic scan's.
//
// The mode is enabled by SetIncremental and must only be enabled for
// composites whose channel contributions all sum exactly in float64 —
// integers, or reals carrying a fixed-point certificate supplied via
// SetFixedPoint (the caller's responsibility; DS-Search gates it on its
// incremental layer's per-channel certificate) — because the Fenwick
// tree sums contributions in a different order than the classic
// accumulator walk. The tree carries scaled int64 channels: every
// intermediate is exact by construction, and the power-of-two
// conversion back at evaluation reproduces the classic scan's floats
// bit for bit.

// incrMinRects gates the incremental path: below it the classic scan's
// lower constant factor wins.
const incrMinRects = 48

// incrState is the reusable scratch of the incremental sweep.
type incrState struct {
	xs       []float64 // distinct interval boundaries, incl. space edges
	bit      fenwick.Int64Tree1D
	li, ri   []int32 // per-rect inclusive interval span (li>ri: inactive)
	sa, se   []int32 // per-rect active strip run [sa, se)
	addStart []int32 // CSR: rect ids activating at each strip
	addIds   []int32
	remStart []int32 // CSR: rect ids deactivating at each strip
	remIds   []int32
	fill     []int32
	ranges   [][2]int32 // dirty interval ranges of the current strip
	chI      []int64    // scaled channel scratch
	ch       []float64  // channel scratch
}

// SetIncremental switches the solver between the classic per-strip
// rescan and the Fenwick-backed incremental sweep for large inputs. Only
// enable it for composites whose channel contributions sum exactly in
// float64; results are bit-identical there (see the package note
// above). Real-valued composites must additionally carry a fixed-point
// certificate installed via SetFixedPoint. Solvers not built by NewPool
// get an unbounded size cap.
func (s *Solver) SetIncremental(on bool) {
	s.incremental = on
	if s.incrCap == 0 {
		s.incrCap = int(^uint(0) >> 1)
	}
}

// SetFixedPoint installs the per-channel fixed-point scales the
// incremental sweep uses to carry contributions as exact scaled int64:
// scale[ch] and inv[ch] are the (power-of-two) multipliers to and from
// the scaled domain. nil restores the default — all channels integer
// (scale 1). The slices are retained and must not be mutated while the
// solver is in use; both must have length Channels() when non-nil.
func (s *Solver) SetFixedPoint(scale, inv []float64) {
	s.fpScale, s.fpInv = scale, inv
}

// solveWithinIncremental walks the strips of s.ys (deduplicated
// ascending, exactly as SolveWithin built them) updating best in place;
// it reports whether any candidate was evaluated.
func (s *Solver) solveWithinIncremental(space geom.Rect, best *asp.Result) (found bool) {
	inc := &s.inc
	ys := s.ys
	ns := len(ys) - 1
	ym := func(si int) float64 { return (ys[si] + ys[si+1]) / 2 }

	// Interval boundaries: distinct edge x-coordinates strictly inside
	// the space, plus the space edges.
	xs := append(inc.xs[:0], space.MinX, space.MaxX)
	for i := range s.rects {
		r := &s.rects[i].Rect
		if r.MinX > space.MinX && r.MinX < space.MaxX {
			xs = append(xs, r.MinX)
		}
		if r.MaxX > space.MinX && r.MaxX < space.MaxX {
			xs = append(xs, r.MaxX)
		}
	}
	sort.Float64s(xs)
	xs = dedup(xs)
	inc.xs = xs
	k := len(xs) - 1 // interval count
	if k < 1 {
		return false
	}

	// Per-rect interval spans and activation strip runs, bucketed into
	// CSR event lists (counting sort by strip).
	n := len(s.rects)
	inc.li = resizeI32(inc.li, n)
	inc.ri = resizeI32(inc.ri, n)
	inc.sa = resizeI32(inc.sa, n)
	inc.se = resizeI32(inc.se, n)
	inc.addStart = resizeI32(inc.addStart, ns+2)
	inc.remStart = resizeI32(inc.remStart, ns+2)
	for i := range inc.addStart {
		inc.addStart[i] = 0
		inc.remStart[i] = 0
	}
	for i := range s.rects {
		r := &s.rects[i].Rect
		// Covered intervals: MinX <= xs[j] && MaxX >= xs[j+1].
		li := int32(sort.SearchFloat64s(xs, r.MinX))
		ri := int32(sort.Search(k, func(j int) bool { return xs[j+1] > r.MaxX })) - 1
		// Active strips: the contiguous run where MinY < ym < MaxY
		// (identical to the classic active() predicate; ym is
		// non-decreasing in the strip index).
		sa := sort.Search(ns, func(si int) bool { return ym(si) > r.MinY })
		se := sort.Search(ns, func(si int) bool { return ym(si) >= r.MaxY })
		if int(li) > int(ri) || sa >= se {
			inc.li[i], inc.ri[i] = 1, 0 // inactive
			continue
		}
		inc.li[i], inc.ri[i] = li, ri
		inc.sa[i], inc.se[i] = int32(sa), int32(se)
		inc.addStart[sa+1]++
		inc.remStart[se+1]++
	}
	for i := 1; i < len(inc.addStart); i++ {
		inc.addStart[i] += inc.addStart[i-1]
		inc.remStart[i] += inc.remStart[i-1]
	}
	inc.addIds = resizeI32(inc.addIds, int(inc.addStart[ns+1]))
	inc.remIds = resizeI32(inc.remIds, int(inc.remStart[ns+1]))
	inc.fill = append(inc.fill[:0], inc.addStart...)
	remFillOff := len(inc.fill)
	inc.fill = append(inc.fill, inc.remStart...)
	addFill := inc.fill[:remFillOff]
	remFill := inc.fill[remFillOff:]
	for i := range s.rects {
		if inc.li[i] > inc.ri[i] {
			continue
		}
		sa, se := inc.sa[i], inc.se[i]
		inc.addIds[addFill[sa]] = int32(i)
		addFill[sa]++
		inc.remIds[remFill[se]] = int32(i)
		remFill[se]++
	}

	chans := s.query.F.Channels()
	inc.bit.Reset(k, chans)
	if cap(inc.ch) < chans {
		inc.ch = make([]float64, chans)
		inc.chI = make([]int64, chans)
	}
	ch := inc.ch[:chans]
	chI := inc.chI[:chans]
	rep := s.rep

	apply := func(id int32, sign int64) {
		o := s.rects[id].Obj
		s.cbuf = s.query.F.AppendContribs(o, s.cbuf[:0])
		for _, cb := range s.cbuf {
			v := cb.V
			if s.fpScale != nil {
				v *= s.fpScale[cb.Ch] // exact power-of-two shift
			}
			inc.bit.RangeAdd(int(inc.li[id]), int(inc.ri[id]), cb.Ch, sign*int64(v))
		}
		inc.ranges = append(inc.ranges, [2]int32{inc.li[id], inc.ri[id]})
	}

	for si := 0; si < ns; si++ {
		s.Stats.Strips++
		inc.ranges = inc.ranges[:0]
		for _, id := range inc.remIds[inc.remStart[si]:inc.remStart[si+1]] {
			apply(id, -1)
		}
		for _, id := range inc.addIds[inc.addStart[si]:inc.addStart[si+1]] {
			apply(id, 1)
		}
		if si == 0 {
			// Every interval is a fresh candidate in the first strip.
			inc.ranges = append(inc.ranges[:0], [2]int32{0, int32(k - 1)})
		} else if len(inc.ranges) == 0 {
			continue
		}
		// Merge the dirty ranges and evaluate their intervals ascending —
		// the same (strip, interval) visit order as the classic scan on
		// the intervals that could have changed.
		sort.Slice(inc.ranges, func(a, b int) bool { return inc.ranges[a][0] < inc.ranges[b][0] })
		y := ym(si)
		cur := inc.ranges[0]
		for i := 1; i <= len(inc.ranges); i++ {
			if i < len(inc.ranges) && inc.ranges[i][0] <= cur[1]+1 {
				if inc.ranges[i][1] > cur[1] {
					cur[1] = inc.ranges[i][1]
				}
				continue
			}
			for j := cur[0]; j <= cur[1]; j++ {
				s.Stats.Intervals++
				inc.bit.PointInto(int(j), chI)
				if s.fpInv != nil {
					// Exact: |scaled| stays within 2^53 under the
					// certificate, and the inverse is a power of two.
					for c := 0; c < chans; c++ {
						ch[c] = float64(chI[c]) * s.fpInv[c]
					}
				} else {
					for c := 0; c < chans; c++ {
						ch[c] = float64(chI[c])
					}
				}
				s.query.F.FinalizeExact(ch, rep)
				if d := s.query.Distance(rep); d < best.Dist {
					best.Dist = d
					best.Point = geom.Point{X: (xs[j] + xs[j+1]) / 2, Y: y}
					best.Rep = append(best.Rep[:0], rep...)
				}
				found = true
			}
			if i < len(inc.ranges) {
				cur = inc.ranges[i]
			}
		}
	}
	return found
}

// resizeI32 returns a slice of length n, reusing capacity when possible.
func resizeI32(v []int32, n int) []int32 {
	if cap(v) >= n {
		return v[:n]
	}
	return make([]int32, n)
}
