package sweep

import (
	"math"
	"sort"

	"asrs/internal/fenwick"
	"asrs/internal/geom"

	"asrs/internal/asp"
)

// The incremental sweep replaces the classic per-strip rescan with a
// delta walk over the candidate x-intervals. The intervals of a space
// are the gaps between consecutive distinct edge coordinates and are
// shared by every strip; a rectangle covers a fixed inclusive interval
// span and is active over a contiguous strip run. Walking strips
// bottom-up, only the rectangles entering or leaving at the strip
// boundary change any interval's covering set, and only the intervals
// those deltas touch are re-evaluated: an untouched interval has the
// same covering set — hence the same representation and distance — as
// when it was last evaluated, at which point it already failed (or set)
// the strict `d < best` improvement test. The answer (distance and
// point) is therefore bit-identical to the classic scan's.
//
// Two evaluators resolve a strip's dirty intervals, selected by a cost
// model (see stripPlan below); both carry the interval channel totals
// as scaled int64, so their sums are exact integers and bit-identical
// to each other under any selection:
//
//   - The flat strip evaluator (the dense-regime default): entering and
//     leaving rectangles update a plain difference array
//     (fenwick.Diff1D, two writes per contribution), and the strip's
//     point queries are answered in ONE branch-light merge pass — a
//     running prefix sum over the sorted deltas and a second sorted
//     cursor over the dirty interval ranges, both advancing
//     monotonically left to right. No pointer chasing, no per-probe
//     tree walk: the pass is a linear scan over a flat array.
//
//   - The Fenwick evaluator (the sparse-update regime): a
//     range-add/point-query fenwick.Tree1D answers O(log k) point
//     queries, which wins when a strip touches a few narrow intervals
//     far into a wide strip — there the flat pass would march across
//     thousands of untouched deltas to seed its prefix. With the tree
//     live, each merged dirty range is seeded by one tree walk and then
//     marched with the difference array, so even this regime does one
//     walk per range rather than one per interval.
//
// The mode is enabled by SetIncremental and must only be enabled for
// composites whose channel contributions all sum exactly in float64 —
// integers, or reals carrying a fixed-point certificate supplied via
// SetFixedPoint (the caller's responsibility; DS-Search gates it on its
// incremental layer's per-channel certificate) — because both
// evaluators sum contributions in a different order than the classic
// accumulator walk. Every intermediate is exact by construction, and
// the power-of-two conversion back at evaluation reproduces the classic
// scan's floats bit for bit.

// incrMinRects gates the incremental path: below it the classic scan's
// lower constant factor wins.
const incrMinRects = 48

// StripMode selects the strip evaluator of the incremental sweep. All
// modes return bit-identical answers (the interval totals are exact
// int64 sums either way); the mode is purely a performance choice.
type StripMode int

const (
	// StripAuto picks per solve — and, when the Fenwick tree is live,
	// per strip — using the installed StripCost model. The default.
	StripAuto StripMode = iota
	// StripFlatOnly always uses the flat merge pass (no tree is
	// maintained at all).
	StripFlatOnly
	// StripFenwickOnly reproduces the legacy evaluator: every dirty
	// interval is resolved by its own O(log k) tree walk. Kept as the
	// ablation baseline (BENCH_PR6 strip A/B) and as a property-test
	// oracle; it exercises none of the flat machinery.
	StripFenwickOnly
)

// StripCost is the per-unit cost model behind the strip-evaluator
// selection. The weights are relative (only ratios matter) and must
// depend on nothing but the input shape — the selection then depends
// only on deterministic quantities, keeping the answer trajectory
// reproducible. internal/dssearch seeds the model from its profiled
// constants (same discipline as its SAT-vs-difference-array fill
// selector); standalone solvers get DefaultStripCost.
type StripCost struct {
	// TreeUpdate is one Fenwick RangeAdd, per contribution per log2(k)
	// level (two tree traversals of cache-hostile strided adds).
	TreeUpdate float64
	// TreeProbe is one Fenwick PointInto seed, per channel per log2(k)
	// level.
	TreeProbe float64
	// FlatStep is one step of the flat merge pass, per channel per
	// interval marched (a sequential load-add the hardware prefetches).
	FlatStep float64
	// DiffUpdate is one difference-array write pair, per contribution.
	DiffUpdate float64
}

// DefaultStripCost returns the package's built-in weights: tree
// operations cost a few times their flat counterparts per touched
// element, and the flat step is priced below one add-per-channel to
// reflect its sequential access pattern.
func DefaultStripCost() StripCost {
	return StripCost{TreeUpdate: 2, TreeProbe: 1, FlatStep: 0.35, DiffUpdate: 2}
}

// valid reports whether every weight is positive and finite (a zero
// model would make the selection degenerate).
func (c StripCost) valid() bool {
	ok := func(v float64) bool { return v > 0 && !math.IsInf(v, 1) }
	return ok(c.TreeUpdate) && ok(c.TreeProbe) && ok(c.FlatStep) && ok(c.DiffUpdate)
}

// incrState is the reusable scratch of the incremental sweep.
type incrState struct {
	xs       []float64 // distinct interval boundaries, incl. space edges
	bit      fenwick.Int64Tree1D
	dif      fenwick.Int64Diff1D
	li, ri   []int32 // per-rect inclusive interval span (li>ri: inactive)
	sa, se   []int32 // per-rect active strip run [sa, se)
	addStart []int32 // CSR: rect ids activating at each strip
	addIds   []int32
	remStart []int32 // CSR: rect ids deactivating at each strip
	remIds   []int32
	fill     []int32
	ranges   [][2]int32 // dirty interval ranges of the current strip
	chI      []int64    // scaled channel scratch (point value / tree seed)
	run      []int64    // running prefix accumulator of the flat pass
	ch       []float64  // channel scratch
}

// SetIncremental switches the solver between the classic per-strip
// rescan and the incremental delta sweep for large inputs. Only enable
// it for composites whose channel contributions sum exactly in float64;
// results are bit-identical there (see the package note above). Real-
// valued composites must additionally carry a fixed-point certificate
// installed via SetFixedPoint. Solvers not built by NewPool get an
// unbounded size cap.
func (s *Solver) SetIncremental(on bool) {
	s.incremental = on
	if s.incrCap == 0 {
		s.incrCap = int(^uint(0) >> 1)
	}
}

// SetFixedPoint installs the per-channel fixed-point scales the
// incremental sweep uses to carry contributions as exact scaled int64:
// scale[ch] and inv[ch] are the (power-of-two) multipliers to and from
// the scaled domain. nil restores the default — all channels integer
// (scale 1). The slices are retained and must not be mutated while the
// solver is in use; both must have length Channels() when non-nil.
func (s *Solver) SetFixedPoint(scale, inv []float64) {
	s.fpScale, s.fpInv = scale, inv
}

// SetStripMode selects the strip evaluator (see StripMode). Answers are
// bit-identical in every mode.
func (s *Solver) SetStripMode(m StripMode) { s.stripMode = m }

// SetStripCost installs the cost model driving StripAuto's selection.
// Invalid models (non-positive or infinite weights) fall back to
// DefaultStripCost.
func (s *Solver) SetStripCost(c StripCost) {
	if !c.valid() {
		c = DefaultStripCost()
	}
	s.stripCost = c
}

// stripPlan is the per-solve structural decision of StripAuto: whether
// the Fenwick tree is worth maintaining at all. Every quantity it needs
// — which rectangles enter and leave at each strip, and which interval
// spans they dirty — is known exactly before the strip loop runs, so
// the decision is made once from measured counts (delta count × probe
// span versus the flat pass's march length), not guessed per strip.
// Contribution counts per object are not known here; chans is the
// proxy (a rect contributes to at most every channel once for the
// composites this path serves).
func (s *Solver) stripPlan(ns, k, chans int) (maintainTree bool) {
	inc := &s.inc
	switch s.stripMode {
	case StripFlatOnly:
		return false
	case StripFenwickOnly:
		return true
	}
	cost := s.stripCost
	if !cost.valid() {
		cost = DefaultStripCost()
	}
	logK := math.Log2(float64(k) + 1)
	if logK < 1 {
		logK = 1
	}
	cf := float64(chans)
	var flatTotal, treeTotal float64
	for si := 0; si < ns; si++ {
		events := int(inc.remStart[si+1]-inc.remStart[si]) + int(inc.addStart[si+1]-inc.addStart[si])
		if events == 0 && si != 0 {
			continue
		}
		// Exact dirty geometry of this strip from the event spans.
		lastDirty, dirty := int32(-1), 0
		scan := func(ids []int32) {
			for _, id := range ids {
				if inc.ri[id] > lastDirty {
					lastDirty = inc.ri[id]
				}
				dirty += int(inc.ri[id]-inc.li[id]) + 1
			}
		}
		scan(inc.remIds[inc.remStart[si]:inc.remStart[si+1]])
		scan(inc.addIds[inc.addStart[si]:inc.addStart[si+1]])
		ranges := events // upper bound on merged dirty ranges
		if si == 0 {
			// The first strip evaluates every interval.
			lastDirty, dirty, ranges = int32(k-1), k, 1
		}
		if dirty > k {
			dirty = k
		}
		// Both evaluators pay the dirty-interval marching and the
		// difference-array writes; they differ in tree maintenance +
		// per-range seeds versus the march from position 0.
		common := float64(dirty)*cf*cost.FlatStep + float64(events)*cf*cost.DiffUpdate
		flatTotal += common + float64(lastDirty+1)*cf*cost.FlatStep
		treeTotal += common + float64(events)*cf*logK*cost.TreeUpdate + float64(ranges)*cf*logK*cost.TreeProbe
	}
	return treeTotal < flatTotal
}

// solveWithinIncremental walks the strips of s.ys (deduplicated
// ascending, exactly as SolveWithin built them) updating best in place;
// it reports whether any candidate was evaluated.
func (s *Solver) solveWithinIncremental(space geom.Rect, best *asp.Result) (found bool) {
	inc := &s.inc
	ys := s.ys
	ns := len(ys) - 1
	ym := func(si int) float64 { return (ys[si] + ys[si+1]) / 2 }

	// Interval boundaries: distinct edge x-coordinates strictly inside
	// the space, plus the space edges.
	xs := append(inc.xs[:0], space.MinX, space.MaxX)
	for i := range s.rects {
		r := &s.rects[i].Rect
		if r.MinX > space.MinX && r.MinX < space.MaxX {
			xs = append(xs, r.MinX)
		}
		if r.MaxX > space.MinX && r.MaxX < space.MaxX {
			xs = append(xs, r.MaxX)
		}
	}
	sort.Float64s(xs)
	xs = dedup(xs)
	inc.xs = xs
	k := len(xs) - 1 // interval count
	if k < 1 {
		return false
	}

	// Per-rect interval spans and activation strip runs, bucketed into
	// CSR event lists (counting sort by strip).
	n := len(s.rects)
	inc.li = resizeI32(inc.li, n)
	inc.ri = resizeI32(inc.ri, n)
	inc.sa = resizeI32(inc.sa, n)
	inc.se = resizeI32(inc.se, n)
	inc.addStart = resizeI32(inc.addStart, ns+2)
	inc.remStart = resizeI32(inc.remStart, ns+2)
	for i := range inc.addStart {
		inc.addStart[i] = 0
		inc.remStart[i] = 0
	}
	for i := range s.rects {
		r := &s.rects[i].Rect
		// Covered intervals: MinX <= xs[j] && MaxX >= xs[j+1].
		li := int32(sort.SearchFloat64s(xs, r.MinX))
		ri := int32(sort.Search(k, func(j int) bool { return xs[j+1] > r.MaxX })) - 1
		// Active strips: the contiguous run where MinY < ym < MaxY
		// (identical to the classic active() predicate; ym is
		// non-decreasing in the strip index).
		sa := sort.Search(ns, func(si int) bool { return ym(si) > r.MinY })
		se := sort.Search(ns, func(si int) bool { return ym(si) >= r.MaxY })
		if int(li) > int(ri) || sa >= se {
			inc.li[i], inc.ri[i] = 1, 0 // inactive
			continue
		}
		inc.li[i], inc.ri[i] = li, ri
		inc.sa[i], inc.se[i] = int32(sa), int32(se)
		inc.addStart[sa+1]++
		inc.remStart[se+1]++
	}
	for i := 1; i < len(inc.addStart); i++ {
		inc.addStart[i] += inc.addStart[i-1]
		inc.remStart[i] += inc.remStart[i-1]
	}
	inc.addIds = resizeI32(inc.addIds, int(inc.addStart[ns+1]))
	inc.remIds = resizeI32(inc.remIds, int(inc.remStart[ns+1]))
	inc.fill = append(inc.fill[:0], inc.addStart...)
	remFillOff := len(inc.fill)
	inc.fill = append(inc.fill, inc.remStart...)
	addFill := inc.fill[:remFillOff]
	remFill := inc.fill[remFillOff:]
	for i := range s.rects {
		if inc.li[i] > inc.ri[i] {
			continue
		}
		sa, se := inc.sa[i], inc.se[i]
		inc.addIds[addFill[sa]] = int32(i)
		addFill[sa]++
		inc.remIds[remFill[se]] = int32(i)
		remFill[se]++
	}

	chans := s.query.F.Channels()
	maintainTree := s.stripPlan(ns, k, chans)
	legacy := s.stripMode == StripFenwickOnly
	if maintainTree {
		inc.bit.Reset(k, chans)
	}
	if !legacy {
		inc.dif.Reset(k, chans)
	}
	if cap(inc.ch) < chans {
		inc.ch = make([]float64, chans)
		inc.chI = make([]int64, chans)
		inc.run = make([]int64, chans)
	}
	ch := inc.ch[:chans]
	chI := inc.chI[:chans]
	run := inc.run[:chans]
	rep := s.rep
	cost := s.stripCost
	if !cost.valid() {
		cost = DefaultStripCost()
	}
	logK := math.Log2(float64(k) + 1)
	if logK < 1 {
		logK = 1
	}

	// apply folds one entering/leaving rectangle into the difference
	// array (two writes per contribution) and, when live, the Fenwick
	// tree, recording the dirtied span. StripFenwickOnly skips the
	// difference array entirely so the ablation baseline pays exactly
	// the legacy evaluator's costs.
	apply := func(id int32, sign int64) {
		o := s.rects[id].Obj
		s.cbuf = s.query.F.AppendContribs(o, s.cbuf[:0])
		l, r := int(inc.li[id]), int(inc.ri[id])
		for _, cb := range s.cbuf {
			v := cb.V
			if s.fpScale != nil {
				v *= s.fpScale[cb.Ch] // exact power-of-two shift
			}
			d := sign * int64(v)
			if !legacy {
				inc.dif.RangeAdd(l, r, cb.Ch, d)
			}
			if maintainTree {
				inc.bit.RangeAdd(l, r, cb.Ch, d)
			}
		}
		inc.ranges = append(inc.ranges, [2]int32{inc.li[id], inc.ri[id]})
	}

	// evalAt scores the interval j of the strip at height y given its
	// exact scaled channel totals. Identical arithmetic in every
	// evaluator: the totals are int64 sums of the same deltas, so the
	// floats below — and with them the answer — cannot depend on which
	// structure produced them.
	evalAt := func(j int32, y float64, tot []int64) {
		s.Stats.Intervals++
		if s.fpInv != nil {
			// Exact: |scaled| stays within 2^53 under the certificate,
			// and the inverse is a power of two.
			for c := 0; c < chans; c++ {
				ch[c] = float64(tot[c]) * s.fpInv[c]
			}
		} else {
			for c := 0; c < chans; c++ {
				ch[c] = float64(tot[c])
			}
		}
		s.query.F.FinalizeExact(ch, rep)
		bnd := best.Dist
		if s.evalCap < bnd {
			bnd = s.evalCap
		}
		if d, ok := s.query.DistanceUnder(rep, bnd); ok {
			best.Dist = d
			best.Point = geom.Point{X: (xs[j] + xs[j+1]) / 2, Y: y}
			best.Rep = append(best.Rep[:0], rep...)
		}
		found = true
	}

	for si := 0; si < ns; si++ {
		s.Stats.Strips++
		inc.ranges = inc.ranges[:0]
		for _, id := range inc.remIds[inc.remStart[si]:inc.remStart[si+1]] {
			apply(id, -1)
		}
		for _, id := range inc.addIds[inc.addStart[si]:inc.addStart[si+1]] {
			apply(id, 1)
		}
		if si == 0 {
			// Every interval is a fresh candidate in the first strip.
			inc.ranges = append(inc.ranges[:0], [2]int32{0, int32(k - 1)})
		} else if len(inc.ranges) == 0 {
			continue
		}
		// Merge the dirty ranges so intervals are visited ascending —
		// the same (strip, interval) visit order as the classic scan on
		// the intervals that could have changed. The merge in place
		// leaves the coalesced ranges in inc.ranges[:nm].
		sort.Slice(inc.ranges, func(a, b int) bool { return inc.ranges[a][0] < inc.ranges[b][0] })
		nm := 0
		for i := 1; i < len(inc.ranges); i++ {
			if inc.ranges[i][0] <= inc.ranges[nm][1]+1 {
				if inc.ranges[i][1] > inc.ranges[nm][1] {
					inc.ranges[nm][1] = inc.ranges[i][1]
				}
				continue
			}
			nm++
			inc.ranges[nm] = inc.ranges[i]
		}
		merged := inc.ranges[:nm+1]
		y := ym(si)
		lastDirty := merged[len(merged)-1][1]

		// Read-path selection for this strip: marching the flat prefix
		// from position 0 to lastDirty, versus one tree seed per merged
		// range (the within-range marching is common to both). With no
		// tree live the flat pass is the only evaluator.
		useFlat := !maintainTree
		if maintainTree && !legacy && s.stripMode == StripAuto {
			useFlat = float64(lastDirty+1)*cost.FlatStep < float64(len(merged))*logK*cost.TreeProbe
		}
		switch {
		case useFlat:
			// The flat merge pass: one running prefix sum over the
			// sorted deltas (cursor 1) and the merged dirty ranges
			// (cursor 2), both advancing monotonically. Deltas of
			// untouched gaps are folded in without evaluation.
			s.Stats.FlatStrips++
			for c := range run {
				run[c] = 0
			}
			pos := int32(-1)
			for _, cur := range merged {
				inc.dif.Advance(int(pos), int(cur[0]), run)
				evalAt(cur[0], y, run)
				for j := cur[0] + 1; j <= cur[1]; j++ {
					inc.dif.StepInto(int(j), run)
					evalAt(j, y, run)
				}
				pos = cur[1]
			}
		case legacy:
			// Legacy evaluator: one tree walk per dirty interval.
			s.Stats.FenwickStrips++
			for _, cur := range merged {
				for j := cur[0]; j <= cur[1]; j++ {
					inc.bit.PointInto(int(j), chI)
					evalAt(j, y, chI)
				}
			}
		default:
			// Sparse regime: seed each merged range with one tree walk,
			// then march within the range on the difference array.
			s.Stats.FenwickStrips++
			for _, cur := range merged {
				inc.bit.PointInto(int(cur[0]), chI)
				evalAt(cur[0], y, chI)
				for j := cur[0] + 1; j <= cur[1]; j++ {
					inc.dif.StepInto(int(j), chI)
					evalAt(j, y, chI)
				}
			}
		}
	}
	return found
}

// resizeI32 returns a slice of length n, reusing capacity when possible.
func resizeI32(v []int32, n int) []int32 {
	if cap(v) >= n {
		return v[:n]
	}
	return make([]int32, n)
}
