// Package maxrs implements the Maximizing Range Sum problem (§7.5): place
// an a×b rectangle to maximize the total weight of the enclosed points.
//
// Two solvers are provided. OE is the Optimal Enclosure sweep (Nandy &
// Bhattacharya 1995), the O(n log n) state of the art the paper compares
// against: sweep the plane bottom-to-top, range-adding each point's
// rectangle x-interval into a segment tree and querying the stabbing
// maximum. DS solves the same problem through DS-Search, exploiting that
// MaxRS is the special case of ASRS with a single fS aggregator and a
// target larger than any achievable sum (maximizing the sum minimizes the
// distance to such a target) — this is the paper's "slight modification"
// claim made literal.
package maxrs

import (
	"fmt"
	"sort"

	"asrs/internal/agg"
	"asrs/internal/asp"
	"asrs/internal/attr"
	"asrs/internal/dssearch"
	"asrs/internal/geom"
	"asrs/internal/segtree"
)

// Point is a weighted spatial point.
type Point struct {
	Loc    geom.Point
	Weight float64
}

// Result is a MaxRS answer: the region's bottom-left corner and the total
// enclosed weight.
type Result struct {
	Corner geom.Point // bottom-left corner of the best a×b region
	Weight float64
	Region geom.Rect
}

// UnitPoints wraps bare locations with weight 1 (the MER special case).
func UnitPoints(locs []geom.Point) []Point {
	pts := make([]Point, len(locs))
	for i, l := range locs {
		pts[i] = Point{Loc: l, Weight: 1}
	}
	return pts
}

// OE runs the Optimal Enclosure sweep. Points exactly on a candidate
// region's boundary are not counted (open semantics, consistent with the
// rest of the library).
func OE(points []Point, a, b float64) (Result, error) {
	if a <= 0 || b <= 0 {
		return Result{}, fmt.Errorf("maxrs: region size must be positive, got %g x %g", a, b)
	}
	if len(points) == 0 {
		return Result{}, fmt.Errorf("maxrs: empty point set")
	}

	// Reduce each point to the rectangle of bottom-left corners whose
	// region strictly contains it: the open rect (x−a, x) × (y−b, y).
	// Compress x coordinates; slot s spans (xs[s], xs[s+1]).
	xs := make([]float64, 0, 2*len(points))
	for _, p := range points {
		xs = append(xs, p.Loc.X-a, p.Loc.X)
	}
	sort.Float64s(xs)
	xs = dedupF(xs)
	if len(xs) < 2 {
		// All rectangles share identical x extent; any interior x works.
		xs = append(xs, xs[0]+a)
	}
	slotOf := func(v float64) int { return sort.SearchFloat64s(xs, v) }

	type event struct {
		y      float64
		l, r   int // slot range [l, r] inclusive
		weight float64
	}
	events := make([]event, 0, 2*len(points))
	for _, p := range points {
		l := slotOf(p.Loc.X - a) // first slot right of the left edge
		r := slotOf(p.Loc.X) - 1 // last slot left of the right edge
		if l > r {
			continue // degenerate (a == 0 handled above; coincident coords)
		}
		events = append(events,
			event{y: p.Loc.Y - b, l: l, r: r, weight: p.Weight},
			event{y: p.Loc.Y, l: l, r: r, weight: -p.Weight},
		)
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].y != events[j].y {
			return events[i].y < events[j].y
		}
		// Removals before additions at equal y: strips are open intervals.
		return events[i].weight < events[j].weight
	})

	tree := segtree.New(len(xs) - 1)
	var best Result
	bestSet := false
	for i := 0; i < len(events); {
		y := events[i].y
		for i < len(events) && events[i].y == y {
			tree.Add(events[i].l, events[i].r, events[i].weight)
			i++
		}
		if i >= len(events) {
			break
		}
		nextY := events[i].y
		if nextY <= y {
			continue
		}
		w, slot := tree.Max()
		if !bestSet || w > best.Weight {
			best.Weight = w
			best.Corner = geom.Point{
				X: (xs[slot] + xs[slot+1]) / 2,
				Y: (y + nextY) / 2,
			}
			bestSet = true
		}
	}
	if !bestSet {
		// Every strip was degenerate (all points on one horizontal line);
		// sample just below the line.
		best.Corner = geom.Point{X: points[0].Loc.X - a/2, Y: points[0].Loc.Y - b/2}
		best.Weight = weightAt(points, best.Corner, a, b)
	}
	best.Region = geom.RectFromBL(best.Corner, a, b)
	return best, nil
}

// weightAt evaluates the total weight strictly enclosed by the region with
// bottom-left corner p. Exported for verification in tests via WeightAt.
func weightAt(points []Point, p geom.Point, a, b float64) float64 {
	var w float64
	for _, pt := range points {
		if p.X < pt.Loc.X && pt.Loc.X < p.X+a && p.Y < pt.Loc.Y && pt.Loc.Y < p.Y+b {
			w += pt.Weight
		}
	}
	return w
}

// WeightAt evaluates the weight enclosed by the a×b region with
// bottom-left corner p (O(n); for verification and small workloads).
func WeightAt(points []Point, p geom.Point, a, b float64) float64 {
	return weightAt(points, p, a, b)
}

// weightSchema is the single-attribute schema used by the ASRS reduction.
var weightSchema = attr.MustSchema(attr.Attribute{Name: "weight", Kind: attr.Numeric})

// Dataset converts weighted points into an attr.Dataset over the weight
// schema, which lets MaxRS ride the full ASRS machinery.
func Dataset(points []Point) *attr.Dataset {
	objs := make([]attr.Object, len(points))
	for i, p := range points {
		objs[i] = attr.Object{Loc: p.Loc, Values: []attr.Value{attr.NumValue(p.Weight)}}
	}
	return &attr.Dataset{Schema: weightSchema, Objects: objs}
}

// DS solves MaxRS with DS-Search: ASRS with F = ((fS, weight, γ_all)) and
// a target exceeding every achievable sum, so minimizing the distance
// maximizes the enclosed weight. Equation 1's lower bound then equals
// target − (upper bound of the sum) — precisely the "estimate an upper
// bound and process the maximum first" adaptation of §7.5.
func DS(points []Point, a, b float64, opt dssearch.Options) (Result, dssearch.Stats, error) {
	if a <= 0 || b <= 0 {
		return Result{}, dssearch.Stats{}, fmt.Errorf("maxrs: region size must be positive, got %g x %g", a, b)
	}
	ds := Dataset(points)
	f, err := agg.New(ds.Schema, agg.Spec{Kind: agg.Sum, Attr: "weight"})
	if err != nil {
		return Result{}, dssearch.Stats{}, err
	}
	var posSum float64
	for _, p := range points {
		if p.Weight > 0 {
			posSum += p.Weight
		}
	}
	q := asp.Query{F: f, Target: []float64{posSum + 1}}
	region, res, stats, err := dssearch.SolveASRS(ds, a, b, q, opt)
	if err != nil {
		return Result{}, stats, err
	}
	return Result{Corner: region.BL(), Weight: res.Rep[0], Region: region}, stats, nil
}

// BruteForce enumerates every disjoint region; the test oracle.
func BruteForce(points []Point, a, b float64) Result {
	ds := Dataset(points)
	rects, err := asp.Reduce(ds, a, b, asp.AnchorTR)
	if err != nil {
		return Result{}
	}
	p, w := asp.MaxCoverPoint(rects, func(i int) float64 { return points[i].Weight })
	return Result{Corner: p, Weight: w, Region: geom.RectFromBL(p, a, b)}
}

func dedupF(vs []float64) []float64 {
	if len(vs) == 0 {
		return vs
	}
	out := vs[:1]
	for _, v := range vs[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}
