package maxrs_test

import (
	"math"
	"math/rand"
	"testing"

	"asrs/internal/dssearch"
	"asrs/internal/geom"
	"asrs/internal/maxrs"
)

// TestUnitPoints wraps locations with weight 1.
func TestUnitPoints(t *testing.T) {
	locs := []geom.Point{{X: 1, Y: 2}, {X: 3, Y: 4}}
	pts := maxrs.UnitPoints(locs)
	if len(pts) != 2 || pts[0].Weight != 1 || pts[1].Loc != locs[1] {
		t.Fatalf("UnitPoints = %+v", pts)
	}
}

// TestDatasetConversion: the weight schema round-trips values.
func TestDatasetConversion(t *testing.T) {
	pts := []maxrs.Point{
		{Loc: geom.Point{X: 1, Y: 1}, Weight: 2.5},
		{Loc: geom.Point{X: 2, Y: 2}, Weight: 7},
	}
	ds := maxrs.Dataset(pts)
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if ds.Objects[0].Values[0].Num != 2.5 || ds.Objects[1].Values[0].Num != 7 {
		t.Fatalf("weights lost: %+v", ds.Objects)
	}
}

// TestMaxRSHeavyTailWeights: OE == DS == brute under skewed weights.
func TestMaxRSHeavyTailWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(130))
	for trial := 0; trial < 15; trial++ {
		n := 1 + rng.Intn(30)
		pts := make([]maxrs.Point, n)
		for i := range pts {
			w := math.Exp(rng.NormFloat64() * 2) // log-normal: heavy tail
			pts[i] = maxrs.Point{
				Loc:    geom.Point{X: rng.Float64() * 40, Y: rng.Float64() * 40},
				Weight: w,
			}
		}
		a := 2 + rng.Float64()*8
		b := 2 + rng.Float64()*8
		oe, err := maxrs.OE(pts, a, b)
		if err != nil {
			t.Fatal(err)
		}
		ds, _, err := maxrs.DS(pts, a, b, dssearch.Options{NCol: 10, NRow: 10})
		if err != nil {
			t.Fatal(err)
		}
		brute := maxrs.BruteForce(pts, a, b)
		if math.Abs(oe.Weight-brute.Weight) > 1e-9*(1+brute.Weight) {
			t.Fatalf("trial %d: OE %g vs brute %g", trial, oe.Weight, brute.Weight)
		}
		if math.Abs(ds.Weight-brute.Weight) > 1e-9*(1+brute.Weight) {
			t.Fatalf("trial %d: DS %g vs brute %g", trial, ds.Weight, brute.Weight)
		}
	}
}

// TestMaxRSGridAligned: points on an exact lattice (maximal degeneracy:
// every rectangle edge coincides with others).
func TestMaxRSGridAligned(t *testing.T) {
	var pts []maxrs.Point
	for x := 0; x < 6; x++ {
		for y := 0; y < 6; y++ {
			pts = append(pts, maxrs.Point{Loc: geom.Point{X: float64(x), Y: float64(y)}, Weight: 1})
		}
	}
	// A 2.5×2.5 window strictly encloses a 3×3 sub-lattice at best... the
	// open window (p, p+2.5) holds lattice points in an interval of length
	// 2.5, which contains at most 3 integers, so 9 points.
	oe, err := maxrs.OE(pts, 2.5, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if oe.Weight != 9 {
		t.Fatalf("lattice OE weight = %g, want 9", oe.Weight)
	}
	ds, _, err := maxrs.DS(pts, 2.5, 2.5, dssearch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Weight != 9 {
		t.Fatalf("lattice DS weight = %g, want 9", ds.Weight)
	}
}
