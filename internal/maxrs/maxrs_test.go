package maxrs_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"asrs/internal/dssearch"
	"asrs/internal/geom"
	"asrs/internal/maxrs"
)

func randPoints(rng *rand.Rand, n int, extent float64, unitWeights bool) []maxrs.Point {
	pts := make([]maxrs.Point, n)
	for i := range pts {
		w := 1.0
		if !unitWeights {
			w = rng.Float64()*5 + 0.1
		}
		pts[i] = maxrs.Point{
			Loc:    geom.Point{X: rng.Float64() * extent, Y: rng.Float64() * extent},
			Weight: w,
		}
	}
	return pts
}

// TestOEMatchesBruteForce: OE equals brute force on random weighted
// instances.
func TestOEMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(40)
		pts := randPoints(rng, n, 50, trial%2 == 0)
		a := 1 + rng.Float64()*15
		b := 1 + rng.Float64()*15
		got, err := maxrs.OE(pts, a, b)
		if err != nil {
			t.Fatal(err)
		}
		want := maxrs.BruteForce(pts, a, b)
		if math.Abs(got.Weight-want.Weight) > 1e-9 {
			t.Fatalf("trial %d (n=%d): OE %g vs brute %g", trial, n, got.Weight, want.Weight)
		}
		// The reported corner must actually enclose the reported weight.
		if w := maxrs.WeightAt(pts, got.Corner, a, b); math.Abs(w-got.Weight) > 1e-9 {
			t.Fatalf("trial %d: corner encloses %g, reported %g", trial, w, got.Weight)
		}
	}
}

// TestDSMatchesOE: the DS-Search adaptation returns the same optimum.
func TestDSMatchesOE(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(60)
		pts := randPoints(rng, n, 60, trial%2 == 0)
		a := 2 + rng.Float64()*12
		b := 2 + rng.Float64()*12
		oe, err := maxrs.OE(pts, a, b)
		if err != nil {
			t.Fatal(err)
		}
		ds, _, err := maxrs.DS(pts, a, b, dssearch.Options{NCol: 10, NRow: 10})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ds.Weight-oe.Weight) > 1e-9 {
			t.Fatalf("trial %d: DS %g vs OE %g", trial, ds.Weight, oe.Weight)
		}
	}
}

// TestMaxRSKnownInstance: a hand-built instance with an unambiguous
// answer.
func TestMaxRSKnownInstance(t *testing.T) {
	// Three points clustered at (10,10); two isolated.
	pts := []maxrs.Point{
		{Loc: geom.Point{X: 10, Y: 10}, Weight: 1},
		{Loc: geom.Point{X: 10.5, Y: 10.2}, Weight: 1},
		{Loc: geom.Point{X: 9.8, Y: 9.7}, Weight: 1},
		{Loc: geom.Point{X: 30, Y: 30}, Weight: 1},
		{Loc: geom.Point{X: 50, Y: 5}, Weight: 1},
	}
	res, err := maxrs.OE(pts, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Weight != 3 {
		t.Fatalf("weight = %g, want 3", res.Weight)
	}
	ds, _, _ := maxrs.DS(pts, 2, 2, dssearch.Options{})
	if ds.Weight != 3 {
		t.Fatalf("DS weight = %g, want 3", ds.Weight)
	}
}

// TestMaxRSWeighted: heavier isolated point beats a light cluster.
func TestMaxRSWeighted(t *testing.T) {
	pts := []maxrs.Point{
		{Loc: geom.Point{X: 10, Y: 10}, Weight: 1},
		{Loc: geom.Point{X: 10.5, Y: 10.2}, Weight: 1},
		{Loc: geom.Point{X: 40, Y: 40}, Weight: 5},
	}
	res, err := maxrs.OE(pts, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Weight != 5 {
		t.Fatalf("weight = %g, want 5", res.Weight)
	}
}

// TestMaxRSProperty (testing/quick): OE's reported weight is achievable
// and no random probe beats it.
func TestMaxRSProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pts := randPoints(rng, 1+rng.Intn(25), 30, false)
		a := 1 + rng.Float64()*10
		b := 1 + rng.Float64()*10
		res, err := maxrs.OE(pts, a, b)
		if err != nil {
			return false
		}
		if w := maxrs.WeightAt(pts, res.Corner, a, b); math.Abs(w-res.Weight) > 1e-9 {
			return false
		}
		for probe := 0; probe < 50; probe++ {
			p := geom.Point{X: rng.Float64()*40 - 5, Y: rng.Float64()*40 - 5}
			if maxrs.WeightAt(pts, p, a, b) > res.Weight+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxRSValidation(t *testing.T) {
	if _, err := maxrs.OE(nil, 1, 1); err == nil {
		t.Error("empty points accepted")
	}
	pts := []maxrs.Point{{Loc: geom.Point{X: 1, Y: 1}, Weight: 1}}
	if _, err := maxrs.OE(pts, 0, 1); err == nil {
		t.Error("zero width accepted")
	}
	if _, _, err := maxrs.DS(pts, 1, -2, dssearch.Options{}); err == nil {
		t.Error("negative height accepted")
	}
}

// TestMaxRSCoincident: all points at the same location.
func TestMaxRSCoincident(t *testing.T) {
	pts := make([]maxrs.Point, 7)
	for i := range pts {
		pts[i] = maxrs.Point{Loc: geom.Point{X: 3, Y: 4}, Weight: 1}
	}
	res, err := maxrs.OE(pts, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Weight != 7 {
		t.Fatalf("coincident: weight %g, want 7", res.Weight)
	}
	ds, _, _ := maxrs.DS(pts, 2, 2, dssearch.Options{})
	if ds.Weight != 7 {
		t.Fatalf("coincident DS: weight %g, want 7", ds.Weight)
	}
}
