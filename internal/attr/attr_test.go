package attr_test

import (
	"testing"

	"asrs/internal/attr"
	"asrs/internal/geom"
)

func testSchema(t *testing.T) *attr.Schema {
	t.Helper()
	s, err := attr.NewSchema(
		attr.Attribute{Name: "category", Kind: attr.Categorical, Domain: []string{"a", "b"}},
		attr.Attribute{Name: "price", Kind: attr.Numeric},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSchemaLookup(t *testing.T) {
	s := testSchema(t)
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Index("price") != 1 || s.Index("nope") != -1 {
		t.Fatal("Index wrong")
	}
	if a, ok := s.Lookup("category"); !ok || a.Kind != attr.Categorical || a.DomainSize() != 2 {
		t.Fatal("Lookup wrong")
	}
	if _, ok := s.Lookup("nope"); ok {
		t.Fatal("Lookup found missing attribute")
	}
	if s.At(0).Name != "category" {
		t.Fatal("At wrong")
	}
}

func TestValueIndex(t *testing.T) {
	s := testSchema(t)
	if s.ValueIndex("category", "b") != 1 {
		t.Fatal("ValueIndex b")
	}
	if s.ValueIndex("category", "zzz") != -1 {
		t.Fatal("ValueIndex missing value")
	}
	if s.ValueIndex("price", "b") != -1 {
		t.Fatal("ValueIndex on numeric")
	}
	if s.ValueIndex("nope", "b") != -1 {
		t.Fatal("ValueIndex on missing attribute")
	}
}

func TestSchemaValidation(t *testing.T) {
	cases := []struct {
		name  string
		attrs []attr.Attribute
	}{
		{"empty name", []attr.Attribute{{Name: "", Kind: attr.Numeric}}},
		{"duplicate", []attr.Attribute{{Name: "x", Kind: attr.Numeric}, {Name: "x", Kind: attr.Numeric}}},
		{"empty domain", []attr.Attribute{{Name: "c", Kind: attr.Categorical}}},
	}
	for _, c := range cases {
		if _, err := attr.NewSchema(c.attrs...); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestMustSchemaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustSchema should panic on bad schema")
		}
	}()
	attr.MustSchema(attr.Attribute{Name: "", Kind: attr.Numeric})
}

func TestDatasetValidate(t *testing.T) {
	s := testSchema(t)
	good := &attr.Dataset{Schema: s, Objects: []attr.Object{
		{Loc: geom.Point{X: 1, Y: 2}, Values: []attr.Value{attr.CatValue(0), attr.NumValue(3)}},
	}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid dataset rejected: %v", err)
	}
	if err := (&attr.Dataset{}).Validate(); err == nil {
		t.Error("nil schema accepted")
	}
	short := &attr.Dataset{Schema: s, Objects: []attr.Object{{Values: []attr.Value{attr.CatValue(0)}}}}
	if err := short.Validate(); err == nil {
		t.Error("short value vector accepted")
	}
	oob := &attr.Dataset{Schema: s, Objects: []attr.Object{
		{Values: []attr.Value{attr.CatValue(5), attr.NumValue(1)}},
	}}
	if err := oob.Validate(); err == nil {
		t.Error("out-of-domain categorical accepted")
	}
}

func TestDatasetBounds(t *testing.T) {
	s := testSchema(t)
	d := &attr.Dataset{Schema: s, Objects: []attr.Object{
		{Loc: geom.Point{X: 1, Y: 9}, Values: []attr.Value{attr.CatValue(0), attr.NumValue(0)}},
		{Loc: geom.Point{X: 4, Y: 2}, Values: []attr.Value{attr.CatValue(1), attr.NumValue(0)}},
	}}
	b := d.Bounds()
	if b != (geom.Rect{MinX: 1, MinY: 2, MaxX: 4, MaxY: 9}) {
		t.Fatalf("bounds = %v", b)
	}
	if len(d.Points()) != 2 {
		t.Fatal("Points")
	}
}

func TestSelectors(t *testing.T) {
	s := testSchema(t)
	o := attr.Object{Values: []attr.Value{attr.CatValue(1), attr.NumValue(5)}}
	if !attr.SelectAll(&o) {
		t.Fatal("SelectAll")
	}
	if !attr.SelectCategory(s.Index("category"), 1)(&o) {
		t.Fatal("SelectCategory match")
	}
	if attr.SelectCategory(s.Index("category"), 0)(&o) {
		t.Fatal("SelectCategory mismatch")
	}
	if !attr.SelectNumRange(1, 0, 10)(&o) {
		t.Fatal("SelectNumRange inside")
	}
	if attr.SelectNumRange(1, 6, 10)(&o) {
		t.Fatal("SelectNumRange outside")
	}
}

func TestKindString(t *testing.T) {
	if attr.Categorical.String() != "categorical" || attr.Numeric.String() != "numeric" {
		t.Fatal("Kind.String")
	}
	if attr.Kind(9).String() == "" {
		t.Fatal("unknown kind string")
	}
}
