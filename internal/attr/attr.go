// Package attr defines the attribute model of the ASRS paper (§3.1): a
// schema of named attributes, categorical and numeric values, spatial
// objects carrying a location plus attribute values, and selection
// functions γ that filter objects before aggregation.
package attr

import (
	"fmt"

	"asrs/internal/geom"
)

// Kind distinguishes categorical attributes (finite domain, used by the
// distribution aggregator fD) from numeric attributes (used by fA and fS).
type Kind uint8

const (
	// Categorical attributes have a finite enumerated domain.
	Categorical Kind = iota
	// Numeric attributes carry a float64 value.
	Numeric
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Categorical:
		return "categorical"
	case Numeric:
		return "numeric"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Attribute describes one attribute of the schema. For categorical
// attributes Domain enumerates dom(A); values are stored as indices into
// Domain. For numeric attributes Domain is nil.
type Attribute struct {
	Name   string
	Kind   Kind
	Domain []string // categorical only: dom(A)
}

// DomainSize returns |dom(A)| for categorical attributes and 0 otherwise.
func (a Attribute) DomainSize() int { return len(a.Domain) }

// Schema is an ordered set of attributes. Objects store one value per
// schema attribute, addressed by position.
type Schema struct {
	attrs  []Attribute
	byName map[string]int
}

// NewSchema builds a schema from the given attributes. Attribute names must
// be unique and non-empty; categorical attributes must have a non-empty
// domain.
func NewSchema(attrs ...Attribute) (*Schema, error) {
	s := &Schema{
		attrs:  make([]Attribute, len(attrs)),
		byName: make(map[string]int, len(attrs)),
	}
	copy(s.attrs, attrs)
	for i, a := range attrs {
		if a.Name == "" {
			return nil, fmt.Errorf("attr: attribute %d has empty name", i)
		}
		if _, dup := s.byName[a.Name]; dup {
			return nil, fmt.Errorf("attr: duplicate attribute name %q", a.Name)
		}
		if a.Kind == Categorical && len(a.Domain) == 0 {
			return nil, fmt.Errorf("attr: categorical attribute %q has empty domain", a.Name)
		}
		s.byName[a.Name] = i
	}
	return s, nil
}

// MustSchema is like NewSchema but panics on error. Intended for tests and
// package-level construction of known-good schemas.
func MustSchema(attrs ...Attribute) *Schema {
	s, err := NewSchema(attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of attributes.
func (s *Schema) Len() int { return len(s.attrs) }

// At returns the i-th attribute.
func (s *Schema) At(i int) Attribute { return s.attrs[i] }

// Index returns the position of the named attribute, or -1 when absent.
func (s *Schema) Index(name string) int {
	if i, ok := s.byName[name]; ok {
		return i
	}
	return -1
}

// Lookup returns the named attribute and whether it exists.
func (s *Schema) Lookup(name string) (Attribute, bool) {
	if i, ok := s.byName[name]; ok {
		return s.attrs[i], true
	}
	return Attribute{}, false
}

// ValueIndex resolves a categorical value string to its domain index, or -1
// when the attribute is unknown, non-categorical, or the value is not in
// the domain.
func (s *Schema) ValueIndex(name, value string) int {
	a, ok := s.Lookup(name)
	if !ok || a.Kind != Categorical {
		return -1
	}
	for i, v := range a.Domain {
		if v == value {
			return i
		}
	}
	return -1
}

// Value is one attribute value of an object: a domain index for
// categorical attributes, a float64 for numeric ones. The inactive field is
// zero.
type Value struct {
	Cat int     // categorical: index into Attribute.Domain
	Num float64 // numeric: the value
}

// CatValue returns a categorical Value.
func CatValue(i int) Value { return Value{Cat: i} }

// NumValue returns a numeric Value.
func NumValue(v float64) Value { return Value{Num: v} }

// Object is a spatial object: a location plus one value per schema
// attribute (o.ρ and o[Ai] in the paper).
type Object struct {
	Loc    geom.Point
	Values []Value
}

// Dataset couples a schema with its objects. All algorithms in this
// library operate on a Dataset.
type Dataset struct {
	Schema  *Schema
	Objects []Object
}

// Validate checks that every object has exactly one value per schema
// attribute and that categorical values are in range.
func (d *Dataset) Validate() error {
	if d.Schema == nil {
		return fmt.Errorf("attr: dataset has nil schema")
	}
	n := d.Schema.Len()
	for i := range d.Objects {
		o := &d.Objects[i]
		if len(o.Values) != n {
			return fmt.Errorf("attr: object %d has %d values, schema has %d attributes", i, len(o.Values), n)
		}
		for j := 0; j < n; j++ {
			a := d.Schema.At(j)
			if a.Kind == Categorical {
				if c := o.Values[j].Cat; c < 0 || c >= len(a.Domain) {
					return fmt.Errorf("attr: object %d attribute %q has categorical index %d outside domain [0,%d)", i, a.Name, c, len(a.Domain))
				}
			}
		}
	}
	return nil
}

// Points returns the locations of all objects.
func (d *Dataset) Points() []geom.Point {
	pts := make([]geom.Point, len(d.Objects))
	for i := range d.Objects {
		pts[i] = d.Objects[i].Loc
	}
	return pts
}

// Bounds returns the minimum bounding rectangle of all object locations.
func (d *Dataset) Bounds() geom.Rect { return geom.BoundingBox(d.Points()) }

// Selector is the selection function γ of Definition 1: it decides whether
// an object participates in an aggregate. Selectors must be pure functions
// of the object.
type Selector func(o *Object) bool

// SelectAll is γ_all: every object participates.
func SelectAll(*Object) bool { return true }

// SelectCategory returns a selector that keeps objects whose categorical
// attribute at schema position attrIdx equals valueIdx (γ_apt-style
// selectors from Example 2).
func SelectCategory(attrIdx, valueIdx int) Selector {
	return func(o *Object) bool { return o.Values[attrIdx].Cat == valueIdx }
}

// SelectNumRange returns a selector keeping objects whose numeric attribute
// at attrIdx lies in [lo, hi].
func SelectNumRange(attrIdx int, lo, hi float64) Selector {
	return func(o *Object) bool {
		v := o.Values[attrIdx].Num
		return lo <= v && v <= hi
	}
}
