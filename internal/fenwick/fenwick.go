// Package fenwick provides a two-dimensional Fenwick (binary indexed)
// tree over a fixed grid with multiple value channels: O(log²) point
// updates and rectangular prefix/region sums. It is the substrate that
// makes the dynamic grid index (gridindex.Dynamic) able to answer the
// Lemma 8 region-channel queries on a live object stream, where the
// static index's precomputed suffix tables would need O(grid) per update.
package fenwick

import "fmt"

// Value constrains the element types a Fenwick tree can carry. The
// int64 instantiation exists for the fixed-point fast paths (DESIGN.md
// §2): channel contributions certified to quantize losslessly onto a
// power-of-two grid are carried as scaled integers, so every partial
// sum is exact by construction rather than by float headroom argument.
type Value interface {
	~int64 | ~float64
}

// Tree1D is a one-dimensional Fenwick tree over n positions, each
// carrying `chans` value channels, in range-add / point-query form:
// RangeAdd adds a delta to every position of an inclusive range in
// O(log n), and PointInto reads one position's channel vector in
// O(log n · chans). It is the substrate of the incremental sweep
// (internal/sweep): strip accumulators advance by edge deltas instead of
// rescanning every interval. The zero value is not usable; construct
// with New1D or Reset a recycled tree.
type Tree1D[T Value] struct {
	n, chans int
	// data is 1-based: position i lives at ((i+1)*chans ...); entry j
	// holds the standard BIT partial sums of the difference array.
	data []T
}

// Int64Tree1D carries scaled fixed-point channels.
type Int64Tree1D = Tree1D[int64]

// New1D returns a tree over n positions with the given channel count.
func New1D[T Value](n, chans int) *Tree1D[T] {
	if n < 1 || chans < 1 {
		panic(fmt.Sprintf("fenwick: invalid dimensions %dx%d", n, chans))
	}
	t := &Tree1D[T]{}
	t.Reset(n, chans)
	return t
}

// Reset re-dimensions the tree to n positions × chans channels and
// zeroes it, reusing the backing array when it fits.
func (t *Tree1D[T]) Reset(n, chans int) {
	t.n = n
	t.chans = chans
	need := (n + 1) * chans
	if cap(t.data) >= need {
		t.data = t.data[:need]
		for i := range t.data {
			t.data[i] = 0
		}
	} else {
		t.data = make([]T, need)
	}
}

// Len returns the number of positions.
func (t *Tree1D[T]) Len() int { return t.n }

// RangeAdd adds delta to channel ch of every position in [l, r]
// (inclusive). Out-of-range ends are clamped; empty ranges are no-ops.
func (t *Tree1D[T]) RangeAdd(l, r, ch int, delta T) {
	if l < 0 {
		l = 0
	}
	if r >= t.n {
		r = t.n - 1
	}
	if l > r {
		return
	}
	for i := l + 1; i <= t.n; i += i & (-i) {
		t.data[i*t.chans+ch] += delta
	}
	for i := r + 2; i <= t.n; i += i & (-i) {
		t.data[i*t.chans+ch] -= delta
	}
}

// PointInto writes position i's channel vector into out (length chans).
func (t *Tree1D[T]) PointInto(i int, out []T) {
	for c := range out {
		out[c] = 0
	}
	for i = i + 1; i > 0; i -= i & (-i) {
		base := i * t.chans
		for c := 0; c < t.chans; c++ {
			out[c] += t.data[base+c]
		}
	}
}

// Diff1D is the flat counterpart of Tree1D: the same range-add /
// point-query semantics over a plain difference array. A range add is
// two writes (O(1) instead of O(log n)); point values are read by
// marching a running prefix accumulator across positions in ascending
// order (O(chans) per position stepped, a branch-light sequential pass
// that the tree walk can never match on dense probe sets). It is the
// substrate of the flat strip evaluator in internal/sweep: a whole
// strip's point queries resolve in one linear merge over the sorted
// deltas instead of one O(log n) tree walk each. The zero value is not
// usable; Reset before use.
type Diff1D[T Value] struct {
	n, chans int
	// data[p*chans+c] is the delta entering at position p: the point
	// value at position j is Σ_{p<=j} data[p*chans+c]. Entry n absorbs
	// the closing delta of ranges ending at n-1.
	data []T
}

// Int64Diff1D carries scaled fixed-point channels.
type Int64Diff1D = Diff1D[int64]

// Reset re-dimensions the array to n positions × chans channels and
// zeroes it, reusing the backing array when it fits.
func (d *Diff1D[T]) Reset(n, chans int) {
	if n < 1 || chans < 1 {
		panic(fmt.Sprintf("fenwick: invalid dimensions %dx%d", n, chans))
	}
	d.n = n
	d.chans = chans
	need := (n + 1) * chans
	if cap(d.data) >= need {
		d.data = d.data[:need]
		for i := range d.data {
			d.data[i] = 0
		}
	} else {
		d.data = make([]T, need)
	}
}

// Len returns the number of positions.
func (d *Diff1D[T]) Len() int { return d.n }

// RangeAdd adds delta to channel ch of every position in [l, r]
// (inclusive). Out-of-range ends are clamped; empty ranges are no-ops.
// Clamping matches Tree1D.RangeAdd exactly, so the two structures stay
// interchangeable under any input.
func (d *Diff1D[T]) RangeAdd(l, r, ch int, delta T) {
	if l < 0 {
		l = 0
	}
	if r >= d.n {
		r = d.n - 1
	}
	if l > r {
		return
	}
	d.data[l*d.chans+ch] += delta
	d.data[(r+1)*d.chans+ch] -= delta
}

// StepInto folds position pos's delta row into acc (length chans):
// if acc held the point value at pos-1, it now holds the value at pos.
func (d *Diff1D[T]) StepInto(pos int, acc []T) {
	base := pos * d.chans
	for c := range acc {
		acc[c] += d.data[base+c]
	}
}

// Advance marches acc from the point value at position `from` to the
// value at position `to` (from == -1 means acc holds zeros, the value
// "before position 0"). Equivalent to calling StepInto for each
// position in (from, to]; from >= to is a no-op.
func (d *Diff1D[T]) Advance(from, to int, acc []T) {
	chans := d.chans
	for p := from + 1; p <= to; p++ {
		base := p * chans
		for c := range acc {
			acc[c] += d.data[base+c]
		}
	}
}

// PointInto writes position i's channel vector into out (length chans)
// by a prefix march from zero — O(i·chans); probe-heavy callers should
// march with Advance instead. Provided so Diff1D satisfies the same
// query surface as Tree1D in tests and sparse fallbacks.
func (d *Diff1D[T]) PointInto(i int, out []T) {
	for c := range out {
		out[c] = 0
	}
	d.Advance(-1, i, out)
}

// Tree2D is a 2D Fenwick tree over an sx×sy grid, each cell carrying
// `chans` float64 channels. The zero value is not usable; construct with
// New2D.
type Tree2D struct {
	sx, sy, chans int
	// data is 1-based in both axes: (j*(sx+1)+i)*chans.
	data []float64
}

// New2D returns a tree over an sx×sy grid with the given channel count.
func New2D(sx, sy, chans int) *Tree2D {
	if sx < 1 || sy < 1 || chans < 1 {
		panic(fmt.Sprintf("fenwick: invalid dimensions %dx%dx%d", sx, sy, chans))
	}
	return &Tree2D{
		sx:    sx,
		sy:    sy,
		chans: chans,
		data:  make([]float64, (sx+1)*(sy+1)*chans),
	}
}

// Dims returns (sx, sy, chans).
func (t *Tree2D) Dims() (int, int, int) { return t.sx, t.sy, t.chans }

// Add adds delta to channel ch of cell (i, j). Panics on out-of-range
// positions (callers clamp).
func (t *Tree2D) Add(i, j, ch int, delta float64) {
	if i < 0 || i >= t.sx || j < 0 || j >= t.sy {
		panic(fmt.Sprintf("fenwick: cell (%d,%d) out of %dx%d", i, j, t.sx, t.sy))
	}
	if ch < 0 || ch >= t.chans {
		panic(fmt.Sprintf("fenwick: channel %d out of %d", ch, t.chans))
	}
	for x := i + 1; x <= t.sx; x += x & (-x) {
		for y := j + 1; y <= t.sy; y += y & (-y) {
			t.data[(y*(t.sx+1)+x)*t.chans+ch] += delta
		}
	}
}

// PrefixInto writes into out the per-channel sums over cells
// [0, i) × [0, j). out must have length chans; i/j are clamped to the
// grid.
func (t *Tree2D) PrefixInto(i, j int, out []float64) {
	for c := range out {
		out[c] = 0
	}
	if i > t.sx {
		i = t.sx
	}
	if j > t.sy {
		j = t.sy
	}
	if i <= 0 || j <= 0 {
		return
	}
	for x := i; x > 0; x -= x & (-x) {
		for y := j; y > 0; y -= y & (-y) {
			base := (y*(t.sx+1) + x) * t.chans
			for c := 0; c < t.chans; c++ {
				out[c] += t.data[base+c]
			}
		}
	}
}

// RegionInto writes into out the per-channel sums over cells
// [l, r) × [b, tp), via four prefix queries. Empty ranges yield zeros.
func (t *Tree2D) RegionInto(l, r, b, tp int, out []float64) {
	if l < 0 {
		l = 0
	}
	if b < 0 {
		b = 0
	}
	if r > t.sx {
		r = t.sx
	}
	if tp > t.sy {
		tp = t.sy
	}
	for c := range out {
		out[c] = 0
	}
	if l >= r || b >= tp {
		return
	}
	tmp := make([]float64, t.chans)
	t.PrefixInto(r, tp, out)
	t.PrefixInto(l, tp, tmp)
	for c := range out {
		out[c] -= tmp[c]
	}
	t.PrefixInto(r, b, tmp)
	for c := range out {
		out[c] -= tmp[c]
	}
	t.PrefixInto(l, b, tmp)
	for c := range out {
		out[c] += tmp[c]
	}
}

// RegionIntoBuf is RegionInto with a caller-provided scratch buffer (hot
// paths avoid the allocation).
func (t *Tree2D) RegionIntoBuf(l, r, b, tp int, out, tmp []float64) {
	if l < 0 {
		l = 0
	}
	if b < 0 {
		b = 0
	}
	if r > t.sx {
		r = t.sx
	}
	if tp > t.sy {
		tp = t.sy
	}
	for c := range out {
		out[c] = 0
	}
	if l >= r || b >= tp {
		return
	}
	t.PrefixInto(r, tp, out)
	t.PrefixInto(l, tp, tmp)
	for c := range out {
		out[c] -= tmp[c]
	}
	t.PrefixInto(r, b, tmp)
	for c := range out {
		out[c] -= tmp[c]
	}
	t.PrefixInto(l, b, tmp)
	for c := range out {
		out[c] += tmp[c]
	}
}
