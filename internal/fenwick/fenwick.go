// Package fenwick provides a two-dimensional Fenwick (binary indexed)
// tree over a fixed grid with multiple value channels: O(log²) point
// updates and rectangular prefix/region sums. It is the substrate that
// makes the dynamic grid index (gridindex.Dynamic) able to answer the
// Lemma 8 region-channel queries on a live object stream, where the
// static index's precomputed suffix tables would need O(grid) per update.
package fenwick

import "fmt"

// Value constrains the element types a Fenwick tree can carry. The
// int64 instantiation exists for the fixed-point fast paths (DESIGN.md
// §2): channel contributions certified to quantize losslessly onto a
// power-of-two grid are carried as scaled integers, so every partial
// sum is exact by construction rather than by float headroom argument.
type Value interface {
	~int64 | ~float64
}

// Tree1D is a one-dimensional Fenwick tree over n positions, each
// carrying `chans` value channels, in range-add / point-query form:
// RangeAdd adds a delta to every position of an inclusive range in
// O(log n), and PointInto reads one position's channel vector in
// O(log n · chans). It is the substrate of the incremental sweep
// (internal/sweep): strip accumulators advance by edge deltas instead of
// rescanning every interval. The zero value is not usable; construct
// with New1D or Reset a recycled tree.
type Tree1D[T Value] struct {
	n, chans int
	// data is 1-based: position i lives at ((i+1)*chans ...); entry j
	// holds the standard BIT partial sums of the difference array.
	data []T
}

// Int64Tree1D carries scaled fixed-point channels.
type Int64Tree1D = Tree1D[int64]

// New1D returns a tree over n positions with the given channel count.
func New1D[T Value](n, chans int) *Tree1D[T] {
	if n < 1 || chans < 1 {
		panic(fmt.Sprintf("fenwick: invalid dimensions %dx%d", n, chans))
	}
	t := &Tree1D[T]{}
	t.Reset(n, chans)
	return t
}

// Reset re-dimensions the tree to n positions × chans channels and
// zeroes it, reusing the backing array when it fits.
func (t *Tree1D[T]) Reset(n, chans int) {
	t.n = n
	t.chans = chans
	need := (n + 1) * chans
	if cap(t.data) >= need {
		t.data = t.data[:need]
		for i := range t.data {
			t.data[i] = 0
		}
	} else {
		t.data = make([]T, need)
	}
}

// Len returns the number of positions.
func (t *Tree1D[T]) Len() int { return t.n }

// RangeAdd adds delta to channel ch of every position in [l, r]
// (inclusive). Out-of-range ends are clamped; empty ranges are no-ops.
func (t *Tree1D[T]) RangeAdd(l, r, ch int, delta T) {
	if l < 0 {
		l = 0
	}
	if r >= t.n {
		r = t.n - 1
	}
	if l > r {
		return
	}
	for i := l + 1; i <= t.n; i += i & (-i) {
		t.data[i*t.chans+ch] += delta
	}
	for i := r + 2; i <= t.n; i += i & (-i) {
		t.data[i*t.chans+ch] -= delta
	}
}

// PointInto writes position i's channel vector into out (length chans).
func (t *Tree1D[T]) PointInto(i int, out []T) {
	for c := range out {
		out[c] = 0
	}
	for i = i + 1; i > 0; i -= i & (-i) {
		base := i * t.chans
		for c := 0; c < t.chans; c++ {
			out[c] += t.data[base+c]
		}
	}
}

// Tree2D is a 2D Fenwick tree over an sx×sy grid, each cell carrying
// `chans` float64 channels. The zero value is not usable; construct with
// New2D.
type Tree2D struct {
	sx, sy, chans int
	// data is 1-based in both axes: (j*(sx+1)+i)*chans.
	data []float64
}

// New2D returns a tree over an sx×sy grid with the given channel count.
func New2D(sx, sy, chans int) *Tree2D {
	if sx < 1 || sy < 1 || chans < 1 {
		panic(fmt.Sprintf("fenwick: invalid dimensions %dx%dx%d", sx, sy, chans))
	}
	return &Tree2D{
		sx:    sx,
		sy:    sy,
		chans: chans,
		data:  make([]float64, (sx+1)*(sy+1)*chans),
	}
}

// Dims returns (sx, sy, chans).
func (t *Tree2D) Dims() (int, int, int) { return t.sx, t.sy, t.chans }

// Add adds delta to channel ch of cell (i, j). Panics on out-of-range
// positions (callers clamp).
func (t *Tree2D) Add(i, j, ch int, delta float64) {
	if i < 0 || i >= t.sx || j < 0 || j >= t.sy {
		panic(fmt.Sprintf("fenwick: cell (%d,%d) out of %dx%d", i, j, t.sx, t.sy))
	}
	if ch < 0 || ch >= t.chans {
		panic(fmt.Sprintf("fenwick: channel %d out of %d", ch, t.chans))
	}
	for x := i + 1; x <= t.sx; x += x & (-x) {
		for y := j + 1; y <= t.sy; y += y & (-y) {
			t.data[(y*(t.sx+1)+x)*t.chans+ch] += delta
		}
	}
}

// PrefixInto writes into out the per-channel sums over cells
// [0, i) × [0, j). out must have length chans; i/j are clamped to the
// grid.
func (t *Tree2D) PrefixInto(i, j int, out []float64) {
	for c := range out {
		out[c] = 0
	}
	if i > t.sx {
		i = t.sx
	}
	if j > t.sy {
		j = t.sy
	}
	if i <= 0 || j <= 0 {
		return
	}
	for x := i; x > 0; x -= x & (-x) {
		for y := j; y > 0; y -= y & (-y) {
			base := (y*(t.sx+1) + x) * t.chans
			for c := 0; c < t.chans; c++ {
				out[c] += t.data[base+c]
			}
		}
	}
}

// RegionInto writes into out the per-channel sums over cells
// [l, r) × [b, tp), via four prefix queries. Empty ranges yield zeros.
func (t *Tree2D) RegionInto(l, r, b, tp int, out []float64) {
	if l < 0 {
		l = 0
	}
	if b < 0 {
		b = 0
	}
	if r > t.sx {
		r = t.sx
	}
	if tp > t.sy {
		tp = t.sy
	}
	for c := range out {
		out[c] = 0
	}
	if l >= r || b >= tp {
		return
	}
	tmp := make([]float64, t.chans)
	t.PrefixInto(r, tp, out)
	t.PrefixInto(l, tp, tmp)
	for c := range out {
		out[c] -= tmp[c]
	}
	t.PrefixInto(r, b, tmp)
	for c := range out {
		out[c] -= tmp[c]
	}
	t.PrefixInto(l, b, tmp)
	for c := range out {
		out[c] += tmp[c]
	}
}

// RegionIntoBuf is RegionInto with a caller-provided scratch buffer (hot
// paths avoid the allocation).
func (t *Tree2D) RegionIntoBuf(l, r, b, tp int, out, tmp []float64) {
	if l < 0 {
		l = 0
	}
	if b < 0 {
		b = 0
	}
	if r > t.sx {
		r = t.sx
	}
	if tp > t.sy {
		tp = t.sy
	}
	for c := range out {
		out[c] = 0
	}
	if l >= r || b >= tp {
		return
	}
	t.PrefixInto(r, tp, out)
	t.PrefixInto(l, tp, tmp)
	for c := range out {
		out[c] -= tmp[c]
	}
	t.PrefixInto(r, b, tmp)
	for c := range out {
		out[c] -= tmp[c]
	}
	t.PrefixInto(l, b, tmp)
	for c := range out {
		out[c] += tmp[c]
	}
}
