package fenwick_test

import (
	"math"
	"math/rand"
	"testing"

	"asrs/internal/fenwick"
)

// diffAgainstTree drives a Diff1D and a Tree1D with the same randomized
// range-adds — including out-of-range ends that exercise the clamping,
// empty ranges, single-position ranges, and duplicate positions — and
// checks every position's point value matches bit for bit under both
// the prefix-march (StepInto/Advance) and the PointInto read paths.
func diffAgainstTree[T fenwick.Value](t *testing.T, seed int64, draw func(*rand.Rand) T, eq func(a, b T) bool) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(80)
		chans := 1 + rng.Intn(4)
		var dif fenwick.Diff1D[T]
		dif.Reset(n, chans)
		tree := fenwick.New1D[T](n, chans)
		if dif.Len() != tree.Len() {
			t.Fatalf("trial %d: Len %d vs %d", trial, dif.Len(), tree.Len())
		}
		ops := rng.Intn(120)
		for o := 0; o < ops; o++ {
			// Ends beyond the array in both directions; l > r happens
			// naturally and must be a no-op in both structures.
			l := rng.Intn(n+6) - 3
			r := rng.Intn(n+6) - 3
			ch := rng.Intn(chans)
			d := draw(rng)
			dif.RangeAdd(l, r, ch, d)
			tree.RangeAdd(l, r, ch, d)
		}
		want := make([]T, chans)
		got := make([]T, chans)
		acc := make([]T, chans)
		prev := -1
		for i := 0; i < n; i++ {
			tree.PointInto(i, want)
			dif.PointInto(i, got)
			for c := range want {
				if !eq(want[c], got[c]) {
					t.Fatalf("trial %d pos %d ch %d: PointInto %v vs tree %v", trial, i, c, got[c], want[c])
				}
			}
			// The march path, with occasional multi-position Advance
			// jumps (probing only some positions, as the sweep does).
			if rng.Intn(3) == 0 && i > prev+1 {
				dif.Advance(prev, i, acc)
			} else {
				for p := prev + 1; p <= i; p++ {
					dif.StepInto(p, acc)
				}
			}
			prev = i
			for c := range want {
				if !eq(want[c], acc[c]) {
					t.Fatalf("trial %d pos %d ch %d: march %v vs tree %v", trial, i, c, acc[c], want[c])
				}
			}
		}
	}
}

func TestDiff1DMatchesTreeInt64(t *testing.T) {
	diffAgainstTree[int64](t, 61,
		func(rng *rand.Rand) int64 { return int64(rng.Intn(2001) - 1000) },
		func(a, b int64) bool { return a == b })
}

// Float64 instantiation: deltas are integer-valued floats (the only
// regime the sweep enables the path for), so the different summation
// orders of the tree and the prefix march are all exact — the match is
// required to be bit-identical, not approximate.
func TestDiff1DMatchesTreeFloat64(t *testing.T) {
	diffAgainstTree[float64](t, 67,
		func(rng *rand.Rand) float64 { return float64(rng.Intn(2001) - 1000) },
		func(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) })
}

// TestDiff1DEdges pins the boundary semantics: probes before any delta
// see zeros, probes after all closing deltas see zeros again, ranges
// clamped at both ends hit every position, and a range ending at n-1
// parks its closing delta on the spill entry without corrupting reads.
func TestDiff1DEdges(t *testing.T) {
	var d fenwick.Int64Diff1D
	d.Reset(10, 2)
	d.RangeAdd(3, 6, 0, 5)   // interior range
	d.RangeAdd(-4, 99, 1, 7) // clamped to [0, 9]
	d.RangeAdd(8, 9, 0, 2)   // closing delta at the spill entry
	d.RangeAdd(5, 2, 0, 100) // empty: no-op
	out := make([]int64, 2)
	for i := 0; i < 10; i++ {
		d.PointInto(i, out)
		want0 := int64(0)
		if i >= 3 && i <= 6 {
			want0 = 5
		}
		if i >= 8 {
			want0 = 2
		}
		if out[0] != want0 || out[1] != 7 {
			t.Fatalf("pos %d: got %v want [%d 7]", i, out, want0)
		}
	}
	// Advance with from >= to must be a no-op.
	acc := []int64{11, 22}
	d.Advance(5, 5, acc)
	d.Advance(7, 3, acc)
	if acc[0] != 11 || acc[1] != 22 {
		t.Fatalf("no-op Advance mutated acc: %v", acc)
	}
}

// TestDiff1DResetReuse: shrinking then regrowing reuses and re-zeroes
// the backing array; stale deltas from a previous life must not leak.
func TestDiff1DResetReuse(t *testing.T) {
	var d fenwick.Int64Diff1D
	d.Reset(16, 3)
	for i := 0; i < 16; i++ {
		d.RangeAdd(i, i, i%3, int64(i+1))
	}
	d.Reset(4, 2)
	out := make([]int64, 2)
	for i := 0; i < 4; i++ {
		d.PointInto(i, out)
		if out[0] != 0 || out[1] != 0 {
			t.Fatalf("stale data after Reset at %d: %v", i, out)
		}
	}
	d.Reset(16, 3)
	out = make([]int64, 3)
	for i := 0; i < 16; i++ {
		d.PointInto(i, out)
		for c, v := range out {
			if v != 0 {
				t.Fatalf("stale data after regrow at %d ch %d: %d", i, c, v)
			}
		}
	}
}
