package fenwick_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"asrs/internal/fenwick"
)

// naive2D is the reference: a plain cell grid.
type naive2D struct {
	sx, sy, chans int
	cells         []float64
}

func newNaive(sx, sy, chans int) *naive2D {
	return &naive2D{sx: sx, sy: sy, chans: chans, cells: make([]float64, sx*sy*chans)}
}

func (n *naive2D) add(i, j, ch int, d float64) {
	n.cells[(j*n.sx+i)*n.chans+ch] += d
}

func (n *naive2D) region(l, r, b, t int, out []float64) {
	for c := range out {
		out[c] = 0
	}
	if l < 0 {
		l = 0
	}
	if b < 0 {
		b = 0
	}
	if r > n.sx {
		r = n.sx
	}
	if t > n.sy {
		t = n.sy
	}
	for j := b; j < t; j++ {
		for i := l; i < r; i++ {
			for c := 0; c < n.chans; c++ {
				out[c] += n.cells[(j*n.sx+i)*n.chans+c]
			}
		}
	}
}

func TestAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		sx := 1 + rng.Intn(20)
		sy := 1 + rng.Intn(20)
		chans := 1 + rng.Intn(4)
		tree := fenwick.New2D(sx, sy, chans)
		ref := newNaive(sx, sy, chans)
		got := make([]float64, chans)
		want := make([]float64, chans)
		for op := 0; op < 200; op++ {
			i, j, ch := rng.Intn(sx), rng.Intn(sy), rng.Intn(chans)
			d := rng.NormFloat64()
			tree.Add(i, j, ch, d)
			ref.add(i, j, ch, d)

			l, r := rng.Intn(sx+1), rng.Intn(sx+1)
			b, tp := rng.Intn(sy+1), rng.Intn(sy+1)
			if l > r {
				l, r = r, l
			}
			if b > tp {
				b, tp = tp, b
			}
			tree.RegionInto(l, r, b, tp, got)
			ref.region(l, r, b, tp, want)
			for c := range got {
				if math.Abs(got[c]-want[c]) > 1e-9 {
					t.Fatalf("trial %d op %d: region [%d,%d)x[%d,%d) ch %d: %g vs %g",
						trial, op, l, r, b, tp, c, got[c], want[c])
				}
			}
		}
	}
}

func TestQuickPrefix(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const sx, sy = 9, 7
		tree := fenwick.New2D(sx, sy, 1)
		ref := newNaive(sx, sy, 1)
		for op := 0; op < 40; op++ {
			i, j := rng.Intn(sx), rng.Intn(sy)
			d := float64(rng.Intn(11) - 5)
			tree.Add(i, j, 0, d)
			ref.add(i, j, 0, d)
		}
		got := make([]float64, 1)
		want := make([]float64, 1)
		for i := 0; i <= sx; i++ {
			for j := 0; j <= sy; j++ {
				tree.PrefixInto(i, j, got)
				ref.region(0, i, 0, j, want)
				if got[0] != want[0] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestClampsAndEmpty(t *testing.T) {
	tree := fenwick.New2D(4, 4, 2)
	tree.Add(2, 2, 0, 5)
	out := make([]float64, 2)
	tree.RegionInto(-3, 99, -3, 99, out)
	if out[0] != 5 || out[1] != 0 {
		t.Fatalf("clamped full region = %v", out)
	}
	tree.RegionInto(3, 1, 0, 4, out)
	if out[0] != 0 {
		t.Fatalf("empty region = %v", out)
	}
	tree.PrefixInto(0, 4, out)
	if out[0] != 0 {
		t.Fatalf("zero-width prefix = %v", out)
	}
}

func TestRegionIntoBuf(t *testing.T) {
	tree := fenwick.New2D(6, 6, 3)
	rng := rand.New(rand.NewSource(5))
	for op := 0; op < 100; op++ {
		tree.Add(rng.Intn(6), rng.Intn(6), rng.Intn(3), rng.NormFloat64())
	}
	a := make([]float64, 3)
	b := make([]float64, 3)
	tmp := make([]float64, 3)
	tree.RegionInto(1, 5, 2, 6, a)
	tree.RegionIntoBuf(1, 5, 2, 6, b, tmp)
	for c := range a {
		if a[c] != b[c] {
			t.Fatalf("buffered variant differs: %v vs %v", a, b)
		}
	}
}

func TestPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { fenwick.New2D(0, 3, 1) },
		func() { fenwick.New2D(3, 3, 0) },
		func() { fenwick.New2D(3, 3, 1).Add(3, 0, 0, 1) },
		func() { fenwick.New2D(3, 3, 1).Add(0, -1, 0, 1) },
		func() { fenwick.New2D(3, 3, 1).Add(0, 0, 1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestDims(t *testing.T) {
	sx, sy, ch := fenwick.New2D(3, 5, 2).Dims()
	if sx != 3 || sy != 5 || ch != 2 {
		t.Fatal("Dims")
	}
}

// TestTree1DRangeAddPointQuery validates the range-add/point-query tree
// against a brute-force array, including clamped and empty ranges.
func TestTree1DRangeAddPointQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(60)
		chans := 1 + rng.Intn(4)
		tree := fenwick.New1D[float64](n, chans)
		ref := make([]float64, n*chans)
		for op := 0; op < 200; op++ {
			l := rng.Intn(n+4) - 2
			r := rng.Intn(n+4) - 2
			ch := rng.Intn(chans)
			delta := float64(rng.Intn(21) - 10)
			tree.RangeAdd(l, r, ch, delta)
			lo, hi := l, r
			if lo < 0 {
				lo = 0
			}
			if hi >= n {
				hi = n - 1
			}
			for i := lo; i <= hi; i++ {
				ref[i*chans+ch] += delta
			}
		}
		out := make([]float64, chans)
		for i := 0; i < n; i++ {
			tree.PointInto(i, out)
			for c := 0; c < chans; c++ {
				if out[c] != ref[i*chans+c] {
					t.Fatalf("trial %d pos %d ch %d: got %v want %v", trial, i, c, out[c], ref[i*chans+c])
				}
			}
		}
		// Reset reuses storage and zeroes.
		tree.Reset(n, chans)
		tree.PointInto(0, out)
		for c := range out {
			if out[c] != 0 {
				t.Fatal("Reset did not zero the tree")
			}
		}
	}
}

// TestInt64Tree1D validates the fixed-point (int64) instantiation: the
// sums carried for quantized channels must match an exact integer
// reference, with the same clamping semantics as the float tree.
func TestInt64Tree1D(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(40)
		chans := 1 + rng.Intn(3)
		tree := fenwick.New1D[int64](n, chans)
		ref := make([]int64, n*chans)
		for op := 0; op < 150; op++ {
			l := rng.Intn(n+4) - 2
			r := rng.Intn(n+4) - 2
			ch := rng.Intn(chans)
			delta := int64(rng.Intn(1<<20) - 1<<19)
			tree.RangeAdd(l, r, ch, delta)
			lo, hi := l, r
			if lo < 0 {
				lo = 0
			}
			if hi >= n {
				hi = n - 1
			}
			for i := lo; i <= hi; i++ {
				ref[i*chans+ch] += delta
			}
		}
		out := make([]int64, chans)
		for i := 0; i < n; i++ {
			tree.PointInto(i, out)
			for c := 0; c < chans; c++ {
				if out[c] != ref[i*chans+c] {
					t.Fatalf("trial %d pos %d ch %d: got %v want %v", trial, i, c, out[c], ref[i*chans+c])
				}
			}
		}
	}
}
