package persist

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"os"
	"path/filepath"

	"asrs/internal/attr"
	"asrs/internal/geom"
)

// Streaming-ingest persistence: the object record codec shared by the
// WAL and the ingest snapshot, and the snapshot store itself
// (DESIGN.md §10).
//
// A WAL record is one EncodeObjects payload — the objects of one
// Insert/InsertBatch call. The ingest snapshot holds the ingested
// objects already folded durable by compaction (NEVER the seed corpus,
// which the caller reconstructs deterministically) together with the
// applied-LSN watermark, so recovery is
//
//	seed ++ snapshot objects ++ replay of WAL records with LSN > appliedLSN.
//
// Putting the watermark INSIDE the snapshot makes the snapshot rename
// the single atomic commit point of compaction: there is no ordering
// of crashes in which the watermark vouches for objects that are not
// in the file it arrived with.

// Object codec (little endian):
//
//	u32 count
//	per object: f64 X, f64 Y, then per schema attribute:
//	  categorical → uvarint domain index
//	  numeric     → u64 float bits
//
// The schema itself is NOT serialized — the caller re-binds the same
// schema on decode (the dataset identity contract of ReadPyramid), and
// the snapshot header carries a structural fingerprint to catch a
// mismatched binding before values are misread.

// maxStreamObjects bounds one payload's object count so a corrupted
// count field fails before it can size a giant allocation.
const maxStreamObjects = 1 << 26

// AppendObjects encodes objects onto buf per the object codec and
// returns the extended slice.
func AppendObjects(buf []byte, schema *attr.Schema, objs []attr.Object) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(objs)))
	nAttr := schema.Len()
	for i := range objs {
		o := &objs[i]
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(o.Loc.X))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(o.Loc.Y))
		for j := 0; j < nAttr; j++ {
			if schema.At(j).Kind == attr.Categorical {
				buf = binary.AppendUvarint(buf, uint64(o.Values[j].Cat))
			} else {
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(o.Values[j].Num))
			}
		}
	}
	return buf
}

// EncodeObjects encodes objects per the object codec.
func EncodeObjects(schema *attr.Schema, objs []attr.Object) []byte {
	return AppendObjects(nil, schema, objs)
}

// DecodeObjects decodes an EncodeObjects payload against the schema it
// was encoded with. Damaged payloads (truncation, out-of-domain
// categorical indexes, trailing garbage) fail wrapping ErrCorrupt;
// decoding never panics.
func DecodeObjects(schema *attr.Schema, data []byte) ([]attr.Object, error) {
	if schema == nil {
		return nil, fmt.Errorf("persist: DecodeObjects requires a schema")
	}
	if len(data) < 4 {
		return nil, corruptf("object payload truncated before count")
	}
	count := binary.LittleEndian.Uint32(data)
	data = data[4:]
	if count > maxStreamObjects {
		return nil, corruptf("implausible object count %d", count)
	}
	nAttr := schema.Len()
	objs := make([]attr.Object, 0, count)
	vals := make([]attr.Value, int(count)*nAttr)
	u64 := func() (uint64, bool) {
		if len(data) < 8 {
			return 0, false
		}
		v := binary.LittleEndian.Uint64(data)
		data = data[8:]
		return v, true
	}
	for i := uint32(0); i < count; i++ {
		var o attr.Object
		x, ok1 := u64()
		y, ok2 := u64()
		if !ok1 || !ok2 {
			return nil, corruptf("object %d truncated at location", i)
		}
		o.Loc = geom.Point{X: math.Float64frombits(x), Y: math.Float64frombits(y)}
		o.Values, vals = vals[:nAttr:nAttr], vals[nAttr:]
		for j := 0; j < nAttr; j++ {
			a := schema.At(j)
			if a.Kind == attr.Categorical {
				c, n := binary.Uvarint(data)
				if n <= 0 {
					return nil, corruptf("object %d truncated at attribute %q", i, a.Name)
				}
				data = data[n:]
				if c >= uint64(len(a.Domain)) {
					return nil, corruptf("object %d attribute %q has categorical index %d outside domain [0,%d)",
						i, a.Name, c, len(a.Domain))
				}
				o.Values[j] = attr.CatValue(int(c))
			} else {
				v, ok := u64()
				if !ok {
					return nil, corruptf("object %d truncated at attribute %q", i, a.Name)
				}
				o.Values[j] = attr.NumValue(math.Float64frombits(v))
			}
		}
		objs = append(objs, o)
	}
	if len(data) != 0 {
		return nil, corruptf("%d trailing bytes after %d objects", len(data), count)
	}
	return objs, nil
}

// SchemaFingerprint is a structural fingerprint of a schema — attribute
// names, kinds and domains — used to catch a snapshot decoded against
// the wrong schema. Like the composite fingerprint, it cannot see
// selection functions; structural equality is the contract.
func SchemaFingerprint(s *attr.Schema) string {
	h := fnv.New64a()
	for i := 0; i < s.Len(); i++ {
		a := s.At(i)
		fmt.Fprintf(h, "%q/%d:", a.Name, a.Kind)
		for _, d := range a.Domain {
			fmt.Fprintf(h, "%q,", d)
		}
		io.WriteString(h, ";")
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Ingest snapshot format (little endian):
//
//	magic "ASRSNAP1"
//	u32 version (currently 1)
//	u64 appliedLSN
//	u32 len(schema fingerprint), fingerprint bytes
//	object payload (EncodeObjects)
//	u64 fnv-64a of every byte after the magic
var snapMagic = [8]byte{'A', 'S', 'R', 'S', 'N', 'A', 'P', '1'}

const snapVersion = 1

// SaveIngestSnapshot atomically persists the ingested-object snapshot
// with the same temp+fsync+rename discipline as SavePyramid: a crash at
// any instant leaves either the previous complete snapshot or the new
// one at path, never a torn file. The compact.save failpoint cuts the
// write path (ActShortWrite tears the temp file, which never becomes
// visible).
func SaveIngestSnapshot(path string, schema *attr.Schema, objs []attr.Object, appliedLSN uint64) (err error) {
	if schema == nil {
		return fmt.Errorf("persist: SaveIngestSnapshot requires a schema")
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("persist: creating temp snapshot file: %w", err)
	}
	tmpName := tmp.Name()
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmpName)
		}
	}()

	out := EncodeIngestSnapshot(schema, objs, appliedLSN)
	if _, err = (&faultWriter{w: tmp, point: "compact.save"}).Write(out); err != nil {
		return fmt.Errorf("persist: writing snapshot: %w", err)
	}
	if err = syncFile(tmp); err != nil {
		return fmt.Errorf("persist: syncing snapshot: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("persist: closing snapshot temp: %w", err)
	}
	if err = rename(tmpName, path); err != nil {
		return fmt.Errorf("persist: publishing snapshot: %w", err)
	}
	if err = syncDir(dir); err != nil {
		return fmt.Errorf("persist: syncing directory: %w", err)
	}
	return nil
}

// LoadIngestSnapshot reads a snapshot saved by SaveIngestSnapshot. A
// missing file is NOT an error — it is the empty snapshot (no
// compaction has committed yet), reported as (nil, 0, nil). Damage
// wraps ErrCorrupt; a snapshot written under a structurally different
// schema wraps ErrMismatch.
func LoadIngestSnapshot(path string, schema *attr.Schema) ([]attr.Object, uint64, error) {
	if schema == nil {
		return nil, 0, fmt.Errorf("persist: LoadIngestSnapshot requires a schema")
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil
		}
		return nil, 0, fmt.Errorf("persist: reading snapshot: %w", err)
	}
	return DecodeIngestSnapshot(schema, raw)
}

// EncodeIngestSnapshot serializes the ingest snapshot (magic, header,
// object payload, trailing checksum) per the format above.
func EncodeIngestSnapshot(schema *attr.Schema, objs []attr.Object, appliedLSN uint64) []byte {
	fp := []byte(SchemaFingerprint(schema))
	body := make([]byte, 0, 24+len(fp)+4+len(objs)*32)
	body = binary.LittleEndian.AppendUint32(body, snapVersion)
	body = binary.LittleEndian.AppendUint64(body, appliedLSN)
	body = binary.LittleEndian.AppendUint32(body, uint32(len(fp)))
	body = append(body, fp...)
	body = AppendObjects(body, schema, objs)

	h := fnv.New64a()
	h.Write(body)
	out := make([]byte, 0, len(snapMagic)+len(body)+8)
	out = append(out, snapMagic[:]...)
	out = append(out, body...)
	out = binary.LittleEndian.AppendUint64(out, h.Sum64())
	return out
}

// DecodeIngestSnapshot decodes EncodeIngestSnapshot bytes against the
// schema they were written under. Damage wraps ErrCorrupt, a
// structurally different schema wraps ErrMismatch; decoding never
// panics however the bytes are mangled (FuzzReadSnapshot's contract).
func DecodeIngestSnapshot(schema *attr.Schema, raw []byte) ([]attr.Object, uint64, error) {
	if schema == nil {
		return nil, 0, fmt.Errorf("persist: DecodeIngestSnapshot requires a schema")
	}
	if len(raw) < len(snapMagic)+8 {
		return nil, 0, corruptf("snapshot truncated (%d bytes)", len(raw))
	}
	if string(raw[:len(snapMagic)]) != string(snapMagic[:]) {
		return nil, 0, corruptf("not an ingest snapshot (magic %q)", raw[:len(snapMagic)])
	}
	body, tail := raw[len(snapMagic):len(raw)-8], raw[len(raw)-8:]
	h := fnv.New64a()
	h.Write(body)
	if binary.LittleEndian.Uint64(tail) != h.Sum64() {
		return nil, 0, corruptf("snapshot checksum mismatch")
	}
	if len(body) < 16 {
		return nil, 0, corruptf("snapshot header truncated")
	}
	if v := binary.LittleEndian.Uint32(body); v != snapVersion {
		return nil, 0, corruptf("unsupported snapshot version %d (want %d)", v, snapVersion)
	}
	appliedLSN := binary.LittleEndian.Uint64(body[4:])
	fpLen := binary.LittleEndian.Uint32(body[12:])
	if fpLen > 1<<12 || len(body) < 16+int(fpLen) {
		return nil, 0, corruptf("implausible snapshot fingerprint length %d", fpLen)
	}
	fp := string(body[16 : 16+fpLen])
	if got := SchemaFingerprint(schema); got != fp {
		return nil, 0, mismatchf("snapshot written under schema %s, loading under %s", fp, got)
	}
	objs, err := DecodeObjects(schema, body[16+fpLen:])
	if err != nil {
		return nil, 0, err
	}
	return objs, appliedLSN, nil
}
