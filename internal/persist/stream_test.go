package persist

import (
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"asrs/internal/attr"
	"asrs/internal/faultinject"
	"asrs/internal/geom"
)

// streamFixture builds a schema with categorical and numeric attributes
// plus a deterministic object stream.
func streamFixture(t testing.TB, n int, seed int64) (*attr.Schema, []attr.Object) {
	t.Helper()
	schema, err := attr.NewSchema(
		attr.Attribute{Name: "cat", Kind: attr.Categorical, Domain: []string{"a", "b", "c"}},
		attr.Attribute{Name: "visits", Kind: attr.Numeric},
		attr.Attribute{Name: "rating", Kind: attr.Numeric},
	)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	objs := make([]attr.Object, n)
	for i := range objs {
		objs[i] = attr.Object{
			Loc: geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100},
			Values: []attr.Value{
				{Cat: rng.Intn(3)},
				{Num: float64(rng.Intn(500))},
				{Num: 0.5 * float64(rng.Intn(10))},
			},
		}
	}
	return schema, objs
}

func objectsEqual(a, b []attr.Object) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i].Loc.X) != math.Float64bits(b[i].Loc.X) ||
			math.Float64bits(a[i].Loc.Y) != math.Float64bits(b[i].Loc.Y) ||
			len(a[i].Values) != len(b[i].Values) {
			return false
		}
		for j := range a[i].Values {
			if a[i].Values[j].Cat != b[i].Values[j].Cat ||
				math.Float64bits(a[i].Values[j].Num) != math.Float64bits(b[i].Values[j].Num) {
				return false
			}
		}
	}
	return true
}

func TestObjectCodecRoundTrip(t *testing.T) {
	schema, objs := streamFixture(t, 137, 5)
	for _, n := range []int{0, 1, 137} {
		payload := EncodeObjects(schema, objs[:n])
		got, err := DecodeObjects(schema, payload)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !objectsEqual(got, objs[:n]) {
			t.Fatalf("n=%d: round trip diverged", n)
		}
	}
}

func TestObjectCodecDamage(t *testing.T) {
	schema, objs := streamFixture(t, 9, 6)
	payload := EncodeObjects(schema, objs)
	cases := map[string][]byte{
		"empty":            {},
		"count_only":       payload[:4],
		"torn_mid_object":  payload[:len(payload)-5],
		"trailing_garbage": append(append([]byte(nil), payload...), 0xee),
		"absurd_count":     {0xff, 0xff, 0xff, 0xff},
	}
	// Out-of-domain categorical: bump the first object's cat uvarint
	// (offset 4 count + 16 location) past the domain.
	bad := append([]byte(nil), payload...)
	bad[4+16] = 0x7f
	cases["cat_out_of_domain"] = bad
	for name, data := range cases {
		if _, err := DecodeObjects(schema, data); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
}

func TestIngestSnapshotRoundTrip(t *testing.T) {
	schema, objs := streamFixture(t, 64, 7)
	path := filepath.Join(t.TempDir(), "ingest.snap")

	// Missing file is the empty snapshot, not an error.
	got, lsn, err := LoadIngestSnapshot(path, schema)
	if err != nil || got != nil || lsn != 0 {
		t.Fatalf("missing snapshot: %v %v %d", got, err, lsn)
	}

	if err := SaveIngestSnapshot(path, schema, objs, 421); err != nil {
		t.Fatal(err)
	}
	got, lsn, err = LoadIngestSnapshot(path, schema)
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 421 || !objectsEqual(got, objs) {
		t.Fatalf("round trip: lsn %d, %d objects", lsn, len(got))
	}

	// Overwrite with a later snapshot: the commit point advances.
	if err := SaveIngestSnapshot(path, schema, objs[:10], 500); err != nil {
		t.Fatal(err)
	}
	got, lsn, err = LoadIngestSnapshot(path, schema)
	if err != nil || lsn != 500 || len(got) != 10 {
		t.Fatalf("second snapshot: lsn %d n %d err %v", lsn, len(got), err)
	}
}

func TestIngestSnapshotTaxonomy(t *testing.T) {
	schema, objs := streamFixture(t, 20, 8)
	dir := t.TempDir()
	path := filepath.Join(dir, "ingest.snap")
	if err := SaveIngestSnapshot(path, schema, objs, 7); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Body flip → checksum catches it → ErrCorrupt.
	flip := append([]byte(nil), raw...)
	flip[len(flip)/2] ^= 0x08
	if err := os.WriteFile(path, flip, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadIngestSnapshot(path, schema); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("flipped snapshot: %v, want ErrCorrupt", err)
	}
	// Truncation → ErrCorrupt.
	if err := os.WriteFile(path, raw[:len(raw)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadIngestSnapshot(path, schema); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated snapshot: %v, want ErrCorrupt", err)
	}
	// Different schema → ErrMismatch.
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	other := attr.MustSchema(attr.Attribute{Name: "other", Kind: attr.Numeric})
	if _, _, err := LoadIngestSnapshot(path, other); !errors.Is(err, ErrMismatch) {
		t.Fatalf("wrong schema: %v, want ErrMismatch", err)
	}
}

// TestIngestSnapshotCrashAtomic: with compact.save armed, the save
// fails typed and the destination still holds the previous complete
// snapshot — the compaction commit never tears.
func TestIngestSnapshotCrashAtomic(t *testing.T) {
	schema, objs := streamFixture(t, 40, 9)
	dir := t.TempDir()
	path := filepath.Join(dir, "ingest.snap")
	if err := SaveIngestSnapshot(path, schema, objs[:15], 15); err != nil {
		t.Fatal(err)
	}

	faultinject.Activate(faultinject.NewPlan(4,
		faultinject.Spec{Point: "compact.save", Action: faultinject.ActShortWrite, Bytes: 9, MaxEvery: 1}))
	err := SaveIngestSnapshot(path, schema, objs, 40)
	faultinject.Deactivate()
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("faulted save: %v, want ErrInjected", err)
	}

	got, lsn, err := LoadIngestSnapshot(path, schema)
	if err != nil || lsn != 15 || len(got) != 15 {
		t.Fatalf("old snapshot damaged: lsn %d n %d err %v", lsn, len(got), err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.Name() != "ingest.snap" {
			t.Fatalf("temp file leaked: %s", e.Name())
		}
	}
}

// TestQuarantineTimestampCollision pins the injectable-clock contract:
// when two corruptions land in the same clock reading, the second
// quarantine must NOT overwrite the first's evidence — it gets a
// monotonic suffix.
func TestQuarantineTimestampCollision(t *testing.T) {
	fixed := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	old := quarantineNow
	quarantineNow = func() time.Time { return fixed }
	defer func() { quarantineNow = old }()

	dir := t.TempDir()
	path := filepath.Join(dir, "pyr.bin")
	write := func(body string) {
		t.Helper()
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	write("first corruption")
	q1, err := Quarantine(path)
	if err != nil {
		t.Fatal(err)
	}
	if q1 != QuarantinePath(path, fixed.UnixNano()) {
		t.Fatalf("first quarantine path %q", q1)
	}

	write("second corruption")
	q2, err := Quarantine(path)
	if err != nil {
		t.Fatal(err)
	}
	if q2 == q1 {
		t.Fatalf("colliding quarantine reused %q", q2)
	}
	write("third corruption")
	q3, err := Quarantine(path)
	if err != nil {
		t.Fatal(err)
	}

	// All three pieces of evidence survive, byte-for-byte.
	for q, want := range map[string]string{
		q1: "first corruption",
		q2: "second corruption",
		q3: "third corruption",
	} {
		b, err := os.ReadFile(q)
		if err != nil || string(b) != want {
			t.Fatalf("evidence at %q: %q, %v (want %q)", q, b, err, want)
		}
	}
}
