package persist

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzReadPyramid throws arbitrary bytes at the pyramid decoder. The
// contract under fuzz is the error taxonomy's: every input either
// decodes or returns an error wrapping ErrCorrupt or ErrMismatch —
// never a panic, never an unclassified error, regardless of how the
// length-prefixed sections are mangled. The seed corpus covers the
// interesting boundaries: a fully valid file, truncations at section
// edges, and targeted corruptions of the guard fields.
//
// Run locally with:
//
//	go test -run '^$' -fuzz FuzzReadPyramid -fuzztime 30s ./internal/persist
func FuzzReadPyramid(f *testing.F) {
	ds, comp, p := pyrFixture(f, 99)
	var buf bytes.Buffer
	if _, err := WritePyramid(&buf, p); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()

	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:8])            // magic only
	f.Add(valid[:12])           // magic + version
	f.Add(valid[:len(valid)/2]) // torn mid-body
	f.Add(valid[:len(valid)-4]) // torn inside the checksum
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	flip := func(off int, x byte) []byte {
		b := append([]byte(nil), valid...)
		b[off] ^= x
		return b
	}
	f.Add(flip(0, 0x01))            // broken magic
	f.Add(flip(8, 0x7f))            // absurd version
	f.Add(flip(12, 0xff))           // huge fingerprint length
	f.Add(flip(len(valid)-1, 0x01)) // checksum flip
	f.Add(flip(len(valid)/3, 0x10)) // body flip caught by checksum

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadPyramid(bytes.NewReader(data), ds, comp)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrMismatch) {
				t.Fatalf("unclassified decode error: %v", err)
			}
			return
		}
		if got == nil {
			t.Fatal("nil pyramid with nil error")
		}
	})
}
