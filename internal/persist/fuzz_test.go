package persist

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"asrs/internal/attr"
	"asrs/internal/geom"
)

// FuzzReadPyramid throws arbitrary bytes at the pyramid decoder. The
// contract under fuzz is the error taxonomy's: every input either
// decodes or returns an error wrapping ErrCorrupt or ErrMismatch —
// never a panic, never an unclassified error, regardless of how the
// length-prefixed sections are mangled. The seed corpus covers the
// interesting boundaries: a fully valid file, truncations at section
// edges, and targeted corruptions of the guard fields.
//
// Run locally with:
//
//	go test -run '^$' -fuzz FuzzReadPyramid -fuzztime 30s ./internal/persist
func FuzzReadPyramid(f *testing.F) {
	ds, comp, p := pyrFixture(f, 99)
	var buf bytes.Buffer
	if _, err := WritePyramid(&buf, p); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()

	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:8])            // magic only
	f.Add(valid[:12])           // magic + version
	f.Add(valid[:len(valid)/2]) // torn mid-body
	f.Add(valid[:len(valid)-4]) // torn inside the checksum
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	flip := func(off int, x byte) []byte {
		b := append([]byte(nil), valid...)
		b[off] ^= x
		return b
	}
	f.Add(flip(0, 0x01))            // broken magic
	f.Add(flip(8, 0x7f))            // absurd version
	f.Add(flip(12, 0xff))           // huge fingerprint length
	f.Add(flip(len(valid)-1, 0x01)) // checksum flip
	f.Add(flip(len(valid)/3, 0x10)) // body flip caught by checksum

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadPyramid(bytes.NewReader(data), ds, comp)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrMismatch) {
				t.Fatalf("unclassified decode error: %v", err)
			}
			return
		}
		if got == nil {
			t.Fatal("nil pyramid with nil error")
		}
	})
}

// FuzzReadSnapshot throws arbitrary bytes at the ASRSNAP1 ingest
// snapshot decoder (header, schema fingerprint, object payload with its
// mixed uvarint/fixed64 attribute encoding, trailing checksum). The
// contract matches FuzzReadPyramid's: every input either decodes — and
// then round-trips bit-exactly through re-encode — or fails with an
// error wrapping ErrCorrupt or ErrMismatch; never a panic, never an
// unclassified error, never an out-of-domain categorical index.
//
// Run locally with:
//
//	go test -run '^$' -fuzz FuzzReadSnapshot -fuzztime 30s ./internal/persist
func FuzzReadSnapshot(f *testing.F) {
	schema := attr.MustSchema(
		attr.Attribute{Name: "cat", Kind: attr.Categorical, Domain: []string{"a", "b", "c"}},
		attr.Attribute{Name: "val", Kind: attr.Numeric},
	)
	objs := []attr.Object{
		{Loc: geom.Point{X: 1, Y: 2}, Values: []attr.Value{attr.CatValue(0), attr.NumValue(3.5)}},
		{Loc: geom.Point{X: -4, Y: 8}, Values: []attr.Value{attr.CatValue(2), attr.NumValue(math.Inf(1))}},
		{Loc: geom.Point{X: 0, Y: 0}, Values: []attr.Value{attr.CatValue(1), attr.NumValue(math.NaN())}},
	}
	valid := EncodeIngestSnapshot(schema, objs, 42)
	empty := EncodeIngestSnapshot(schema, nil, 0)

	f.Add(valid)
	f.Add(empty)
	f.Add([]byte{})
	f.Add(valid[:8])            // magic only
	f.Add(valid[:16])           // torn inside the header
	f.Add(valid[:len(valid)/2]) // torn mid-payload
	f.Add(valid[:len(valid)-4]) // torn inside the checksum
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	flip := func(off int, x byte) []byte {
		b := append([]byte(nil), valid...)
		b[off] ^= x
		return b
	}
	f.Add(flip(0, 0x01))            // broken magic
	f.Add(flip(8, 0x7f))            // absurd version
	f.Add(flip(12, 0xff))           // mangled appliedLSN
	f.Add(flip(20, 0xff))           // huge fingerprint length
	f.Add(flip(24, 0x01))           // fingerprint flip → ErrMismatch shape
	f.Add(flip(len(valid)-1, 0x01)) // checksum flip
	f.Add(flip(len(valid)/2, 0x10)) // payload flip caught by checksum

	f.Fuzz(func(t *testing.T, data []byte) {
		got, lsn, err := DecodeIngestSnapshot(schema, data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrMismatch) {
				t.Fatalf("unclassified decode error: %v", err)
			}
			return
		}
		for i := range got {
			if len(got[i].Values) != schema.Len() {
				t.Fatalf("object %d decoded %d values, schema has %d", i, len(got[i].Values), schema.Len())
			}
			if c := got[i].Values[0].Cat; c < 0 || c >= 3 {
				t.Fatalf("object %d categorical index %d escaped the domain", i, c)
			}
		}
		// A decodable snapshot must survive a re-encode/decode round trip
		// value-exactly (bit-level on floats) — the compaction path's
		// durability contract. Byte equality is NOT required: the decoder
		// tolerates non-minimal uvarints that re-encode canonically.
		got2, lsn2, err2 := DecodeIngestSnapshot(schema, EncodeIngestSnapshot(schema, got, lsn))
		if err2 != nil || lsn2 != lsn || len(got2) != len(got) {
			t.Fatalf("round trip: err %v, lsn %d→%d, %d→%d objects", err2, lsn, lsn2, len(got), len(got2))
		}
		for i := range got {
			if math.Float64bits(got2[i].Loc.X) != math.Float64bits(got[i].Loc.X) ||
				math.Float64bits(got2[i].Loc.Y) != math.Float64bits(got[i].Loc.Y) {
				t.Fatalf("object %d location changed across round trip", i)
			}
			for j := range got[i].Values {
				a, b := got[i].Values[j], got2[i].Values[j]
				if a.Cat != b.Cat || math.Float64bits(a.Num) != math.Float64bits(b.Num) {
					t.Fatalf("object %d value %d changed across round trip", i, j)
				}
			}
		}
	})
}
