package persist

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"time"

	"asrs/internal/agg"
	"asrs/internal/attr"
	"asrs/internal/dssearch"
	"asrs/internal/faultinject"
)

// Crash-safe pyramid store. WritePyramid/ReadPyramid (pyramid.go) are
// the pure codec over an io.Writer/Reader; SavePyramid/LoadPyramid own
// the file-level durability contract on top of it:
//
//   - SavePyramid never exposes a partial file at the destination path.
//     The bytes go to a same-directory temp file, are fsynced, and land
//     via atomic rename; the directory is fsynced so the rename itself
//     survives a crash. A crash at ANY instant leaves either the old
//     complete file or the new complete file — never a torn one.
//   - A sidecar manifest (ManifestPath) records the byte size and
//     fnv-64a sum of the data file. LoadPyramid uses it as a cheap
//     pre-decode integrity check that catches truncation without
//     parsing; the decode-time checksum inside the format remains
//     authoritative, so a stale or missing manifest (crash between the
//     two renames, or files copied without the sidecar) degrades to a
//     full decode rather than a false rejection.
//   - Quarantine moves a corrupt file (and its manifest) aside with a
//     timestamped suffix instead of deleting it, preserving the
//     evidence for postmortem while unblocking rebuild. See
//     asrs.LoadOrBuildPyramidFile for the quarantine-and-rebuild
//     policy, and DESIGN.md §9 for where each failpoint cuts.

// pyramidManifestFormat versions the sidecar schema.
const pyramidManifestFormat = "asrs-pyramid-manifest/1"

// pyramidManifest is the sidecar's JSON schema.
type pyramidManifest struct {
	Format string `json:"format"`
	Size   int64  `json:"size"`
	FNV64a string `json:"fnv64a"`
}

// ManifestPath returns the sidecar manifest path for a pyramid file.
func ManifestPath(path string) string { return path + ".manifest" }

// faultWriter interposes a write-path failpoint on every write:
// ActError fails outright, ActShortWrite lets a prefix through and then
// fails — the torn-write simulation. The point name defaults to
// persist.save.write; the ingest-snapshot path sets compact.save.
type faultWriter struct {
	w     io.Writer
	point string
}

func (fw *faultWriter) Write(p []byte) (int, error) {
	point := fw.point
	if point == "" {
		point = "persist.save.write"
	}
	if f, ok := faultinject.Check(point); ok {
		switch f.Action {
		case faultinject.ActShortWrite:
			n := f.Bytes
			if n > len(p) {
				n = len(p)
			}
			m, _ := fw.w.Write(p[:n])
			return m, f.Err()
		case faultinject.ActSleep:
			f.Sleep()
		default:
			return 0, f.Err()
		}
	}
	return fw.w.Write(p)
}

// faultReader interposes the persist.load.read failpoint on every read.
type faultReader struct {
	r io.Reader
}

func (fr *faultReader) Read(p []byte) (int, error) {
	if f, ok := faultinject.Check("persist.load.read"); ok {
		switch f.Action {
		case faultinject.ActSleep:
			f.Sleep()
		default:
			return 0, f.Err()
		}
	}
	return fr.r.Read(p)
}

// syncFile flushes a file's contents to stable storage, honoring the
// persist.save.sync failpoint.
func syncFile(f *os.File) error {
	if fi, ok := faultinject.Check("persist.save.sync"); ok && fi.Action != faultinject.ActSleep {
		return fi.Err()
	} else if ok {
		fi.Sleep()
	}
	return f.Sync()
}

// syncDir fsyncs a directory so a just-completed rename inside it is
// durable. Errors are returned, not ignored: if the metadata flush
// fails the save is not crash-safe and the caller must know.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return syncFile(d)
}

// rename wraps os.Rename with the persist.save.rename failpoint.
func rename(oldpath, newpath string) error {
	if f, ok := faultinject.Check("persist.save.rename"); ok && f.Action != faultinject.ActSleep {
		return f.Err()
	} else if ok {
		f.Sleep()
	}
	return os.Rename(oldpath, newpath)
}

// SavePyramid atomically persists a pyramid to path with a checksummed
// sidecar manifest. On any error the destination still holds whatever
// complete file it held before (possibly none); temp files are cleaned
// up best-effort.
//
// The write order narrows the crash windows deliberately:
//
//  1. remove the old manifest — from here to step 5 the manifest is
//     absent, which LoadPyramid treats as "decode and verify", never
//     as corruption;
//  2. write + fsync the data temp file, hashing the bytes as they go;
//  3. rename it over path (atomic), fsync the directory;
//  4. write + fsync the manifest temp file;
//  5. rename it over ManifestPath(path), fsync the directory.
//
// A crash before 3 leaves the old file intact; between 3 and 5 leaves
// the new file valid but unmanifested. No ordering exposes a manifest
// that vouches for bytes not yet on disk.
func SavePyramid(path string, p *dssearch.Pyramid) (err error) {
	if p == nil {
		return fmt.Errorf("persist: SavePyramid: nil pyramid")
	}
	dir := filepath.Dir(path)

	if err := os.Remove(ManifestPath(path)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("persist: removing stale manifest: %w", err)
	}

	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("persist: creating temp pyramid file: %w", err)
	}
	tmpName := tmp.Name()
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmpName)
		}
	}()

	hw := &hashingWriter{w: &faultWriter{w: tmp}, h: fnv.New64a()}
	size, err := WritePyramid(hw, p)
	if err != nil {
		return fmt.Errorf("persist: writing pyramid: %w", err)
	}
	if err = syncFile(tmp); err != nil {
		return fmt.Errorf("persist: syncing pyramid: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("persist: closing pyramid temp: %w", err)
	}
	if err = rename(tmpName, path); err != nil {
		return fmt.Errorf("persist: publishing pyramid: %w", err)
	}
	if err = syncDir(dir); err != nil {
		return fmt.Errorf("persist: syncing directory: %w", err)
	}

	man := pyramidManifest{
		Format: pyramidManifestFormat,
		Size:   size,
		FNV64a: fmt.Sprintf("%016x", hw.h.Sum64()),
	}
	if err = saveManifest(path, man); err != nil {
		// The data file is already complete and self-checking; a failed
		// manifest only costs the fast pre-check on load.
		return fmt.Errorf("persist: writing manifest: %w", err)
	}
	return nil
}

// saveManifest writes the sidecar with the same tmp+fsync+rename
// discipline as the data file.
func saveManifest(path string, man pyramidManifest) (err error) {
	dir := filepath.Dir(path)
	manPath := ManifestPath(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(manPath)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmpName)
		}
	}()
	enc, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return err
	}
	if _, err = (&faultWriter{w: tmp}).Write(append(enc, '\n')); err != nil {
		return err
	}
	if err = syncFile(tmp); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	if err = rename(tmpName, manPath); err != nil {
		return err
	}
	return syncDir(dir)
}

// LoadPyramid reads a pyramid saved by SavePyramid, re-binding it to
// the dataset and composite. Integrity failures (truncation, torn
// bytes, checksum) return errors wrapping ErrCorrupt; identity
// failures (wrong composite or dataset) wrap ErrMismatch. A missing
// file returns an os.IsNotExist-classifiable error.
//
// The manifest, when present AND matching the file's byte size, is
// verified first: a size or checksum disagreement fails fast as
// ErrCorrupt without decoding. A manifest whose size disagrees with
// the file on disk is treated as stale (crash between the data and
// manifest renames) and ignored — the decode-time checksum is
// authoritative.
func LoadPyramid(path string, ds *attr.Dataset, f *agg.Composite) (*dssearch.Pyramid, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()

	if man, ok := loadManifest(path); ok {
		fi, err := fh.Stat()
		if err != nil {
			return nil, fmt.Errorf("persist: stat pyramid: %w", err)
		}
		if fi.Size() == man.Size {
			h := fnv.New64a()
			if _, err := io.Copy(h, &faultReader{r: fh}); err != nil {
				return nil, corruptf("pre-verifying pyramid: %w", err)
			}
			if got := fmt.Sprintf("%016x", h.Sum64()); got != man.FNV64a {
				return nil, corruptf("manifest checksum mismatch (manifest %s, file %s)", man.FNV64a, got)
			}
			if _, err := fh.Seek(0, io.SeekStart); err != nil {
				return nil, fmt.Errorf("persist: rewinding pyramid: %w", err)
			}
		}
	}

	return ReadPyramid(&faultReader{r: fh}, ds, f)
}

// loadManifest reads the sidecar; any problem (absent, unreadable,
// wrong format) reports !ok — the manifest is an accelerator, never a
// gate.
func loadManifest(path string) (pyramidManifest, bool) {
	b, err := os.ReadFile(ManifestPath(path))
	if err != nil {
		return pyramidManifest{}, false
	}
	var man pyramidManifest
	if json.Unmarshal(b, &man) != nil || man.Format != pyramidManifestFormat || man.Size <= 0 {
		return pyramidManifest{}, false
	}
	return man, true
}

// QuarantinePath returns where Quarantine moves a corrupt file, using
// the given UnixNano timestamp for uniqueness.
func QuarantinePath(path string, ts int64) string {
	return fmt.Sprintf("%s.corrupt-%d", path, ts)
}

// quarantineNow is the quarantine clock, injectable so tests can force
// timestamp collisions deterministically.
var quarantineNow = time.Now

// Quarantine moves a corrupt pyramid file (and its manifest, if any)
// aside with a timestamped .corrupt-* suffix, returning the new path
// of the data file. The evidence is preserved for postmortem; the
// original path is freed for a rebuild. Missing files are not errors —
// quarantining an already-moved file is idempotent.
//
// Two corruptions can land inside one clock tick (repeated rebuilds of
// a path on a failing disk, or a coarse clock), and os.Rename silently
// REPLACES an existing destination — which would destroy the earlier
// evidence. Colliding timestamps therefore get a monotonic ".N" suffix:
// the first free of <path>.corrupt-<ts>, <path>.corrupt-<ts>.1, … wins.
func Quarantine(path string) (string, error) {
	ts := quarantineNow().UnixNano()
	base := QuarantinePath(path, ts)
	qpath := base
	for n := 1; ; n++ {
		if _, err := os.Lstat(qpath); os.IsNotExist(err) {
			break
		}
		qpath = fmt.Sprintf("%s.%d", base, n)
	}
	if err := os.Rename(path, qpath); err != nil {
		if os.IsNotExist(err) {
			return "", nil
		}
		return "", fmt.Errorf("persist: quarantining %s: %w", path, err)
	}
	// Best-effort for the sidecar: it may not exist, and its loss does
	// not reduce the postmortem value of the data bytes.
	os.Rename(ManifestPath(path), qpath+".manifest")
	syncDir(filepath.Dir(path))
	return qpath, nil
}
