package persist

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"asrs/internal/faultinject"
)

// TestSaveLoadRoundTrip: the file-level store preserves answers
// bit-identically and writes a manifest that vouches for the bytes.
func TestSaveLoadRoundTrip(t *testing.T) {
	ds, f, p := pyrFixture(t, 21)
	path := filepath.Join(t.TempDir(), "pyr.bin")
	if err := SavePyramid(path, p); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(ManifestPath(path)); err != nil {
		t.Fatalf("manifest missing after save: %v", err)
	}
	loaded, err := LoadPyramid(path, ds, f)
	if err != nil {
		t.Fatal(err)
	}
	wantRegion, want := answer(t, ds, f, p)
	gotRegion, got := answer(t, ds, f, loaded)
	if gotRegion != wantRegion || got.Dist != want.Dist || got.Point != want.Point {
		t.Fatalf("answers diverge after save/load: %+v/%+v vs %+v/%+v",
			gotRegion, got, wantRegion, want)
	}
}

// TestSaveLeavesNoTempFiles: success or not, the directory holds only
// the published artifacts.
func TestSaveLeavesNoTempFiles(t *testing.T) {
	_, _, p := pyrFixture(t, 22)
	dir := t.TempDir()
	path := filepath.Join(dir, "pyr.bin")
	if err := SavePyramid(path, p); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
	if len(ents) != 2 {
		t.Fatalf("want exactly data+manifest, got %d entries", len(ents))
	}
}

// TestLoadManifestChecksumCatchesFlip: a bit flip in the data file is
// caught by the manifest pre-check before the decoder even runs, and
// classified ErrCorrupt.
func TestLoadManifestChecksumCatchesFlip(t *testing.T) {
	ds, f, p := pyrFixture(t, 23)
	path := filepath.Join(t.TempDir(), "pyr.bin")
	if err := SavePyramid(path, p); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x40
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = LoadPyramid(path, ds, f)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	if !strings.Contains(err.Error(), "manifest checksum") {
		t.Fatalf("flip not caught by the manifest pre-check: %v", err)
	}
}

// TestLoadTruncatedIsCorrupt: a torn tail (crash mid-write simulated
// after the fact) is ErrCorrupt whether or not the manifest survived.
func TestLoadTruncatedIsCorrupt(t *testing.T) {
	ds, f, p := pyrFixture(t, 24)
	for _, keepManifest := range []bool{true, false} {
		path := filepath.Join(t.TempDir(), "pyr.bin")
		if err := SavePyramid(path, p); err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, b[:len(b)*3/4], 0o644); err != nil {
			t.Fatal(err)
		}
		if !keepManifest {
			os.Remove(ManifestPath(path))
		}
		_, err = LoadPyramid(path, ds, f)
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("keepManifest=%v: err = %v, want ErrCorrupt", keepManifest, err)
		}
	}
}

// TestLoadStaleManifestIgnored: a manifest whose size disagrees with
// the data file (crash between the two renames) must not reject a
// valid file — the decode checksum is authoritative.
func TestLoadStaleManifestIgnored(t *testing.T) {
	ds, f, p := pyrFixture(t, 25)
	path := filepath.Join(t.TempDir(), "pyr.bin")
	if err := SavePyramid(path, p); err != nil {
		t.Fatal(err)
	}
	// Corrupt the manifest into a plausible-but-stale record.
	stale := pyramidManifest{Format: pyramidManifestFormat, Size: 12345, FNV64a: "00000000deadbeef"}
	if err := saveManifest(path, stale); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPyramid(path, ds, f); err != nil {
		t.Fatalf("stale manifest rejected a valid file: %v", err)
	}
	// A garbage manifest likewise falls back to decoding.
	if err := os.WriteFile(ManifestPath(path), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPyramid(path, ds, f); err != nil {
		t.Fatalf("garbage manifest rejected a valid file: %v", err)
	}
}

// TestLoadMissingFile surfaces os.IsNotExist, not ErrCorrupt — the
// caller builds fresh, no quarantine involved.
func TestLoadMissingFile(t *testing.T) {
	ds, f, _ := pyrFixture(t, 26)
	_, err := LoadPyramid(filepath.Join(t.TempDir(), "absent.bin"), ds, f)
	if !os.IsNotExist(err) {
		t.Fatalf("err = %v, want not-exist", err)
	}
	if errors.Is(err, ErrCorrupt) {
		t.Fatalf("missing file misclassified as corrupt: %v", err)
	}
}

// TestQuarantine moves data+manifest aside and frees the path;
// quarantining an absent file is a no-op.
func TestQuarantine(t *testing.T) {
	_, _, p := pyrFixture(t, 27)
	path := filepath.Join(t.TempDir(), "pyr.bin")
	if err := SavePyramid(path, p); err != nil {
		t.Fatal(err)
	}
	qpath, err := Quarantine(path)
	if err != nil {
		t.Fatal(err)
	}
	if qpath == "" || !strings.Contains(qpath, ".corrupt-") {
		t.Fatalf("quarantine path %q", qpath)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("original path still occupied: %v", err)
	}
	if _, err := os.Stat(qpath); err != nil {
		t.Fatalf("quarantined data missing: %v", err)
	}
	if _, err := os.Stat(qpath + ".manifest"); err != nil {
		t.Fatalf("quarantined manifest missing: %v", err)
	}
	// Idempotent on an already-moved file.
	q2, err := Quarantine(path)
	if err != nil || q2 != "" {
		t.Fatalf("second quarantine: %q, %v", q2, err)
	}
}

// TestSaveInjectedWriteErrorLeavesOldFile: with persist.save.write
// armed, SavePyramid fails typed AND the previous complete file is
// still what LoadPyramid sees — crash-atomicity under a torn write.
func TestSaveInjectedWriteErrorLeavesOldFile(t *testing.T) {
	ds, f, p := pyrFixture(t, 28)
	path := filepath.Join(t.TempDir(), "pyr.bin")
	if err := SavePyramid(path, p); err != nil {
		t.Fatal(err)
	}
	old, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for seed := int64(1); seed <= 8; seed++ {
		for _, act := range []faultinject.Action{faultinject.ActError, faultinject.ActShortWrite} {
			faultinject.Activate(faultinject.NewPlan(seed,
				faultinject.Spec{Point: "persist.save.write", Action: act, MaxEvery: 4}))
			err := SavePyramid(path, p)
			fired := faultinject.Fired()
			faultinject.Deactivate()
			if fired == 0 {
				// This seed's schedule never hit a write; the save must
				// simply have succeeded.
				if err != nil {
					t.Fatalf("seed %d %v: no fault fired yet save failed: %v", seed, act, err)
				}
				continue
			}
			if !errors.Is(err, faultinject.ErrInjected) {
				t.Fatalf("seed %d %v: err = %v, want ErrInjected", seed, act, err)
			}
			got, rerr := os.ReadFile(path)
			if rerr != nil || !bytes.Equal(got, old) {
				t.Fatalf("seed %d %v: destination perturbed by failed save", seed, act)
			}
			if _, lerr := LoadPyramid(path, ds, f); lerr != nil {
				t.Fatalf("seed %d %v: old file unloadable after failed save: %v", seed, act, lerr)
			}
		}
	}
}

// TestSaveInjectedSyncAndRenameFaults: fsync and rename failures are
// surfaced typed and never tear the destination.
func TestSaveInjectedSyncAndRenameFaults(t *testing.T) {
	ds, f, p := pyrFixture(t, 29)
	for _, point := range []string{"persist.save.sync", "persist.save.rename"} {
		path := filepath.Join(t.TempDir(), "pyr.bin")
		faultinject.Activate(faultinject.NewPlan(11,
			faultinject.Spec{Point: point, Action: faultinject.ActError, MaxEvery: 1}))
		err := SavePyramid(path, p)
		faultinject.Deactivate()
		if !errors.Is(err, faultinject.ErrInjected) {
			t.Fatalf("%s: err = %v, want ErrInjected", point, err)
		}
		if _, serr := os.Stat(path); !os.IsNotExist(serr) {
			// If the file landed despite a later fault it must be complete.
			if _, lerr := LoadPyramid(path, ds, f); lerr != nil {
				t.Fatalf("%s: destination file torn: %v", point, lerr)
			}
		}
	}
}

// TestLoadInjectedReadError: an injected read fault surfaces as a
// typed error (ErrInjected via ErrCorrupt wrapping or direct), never a
// panic.
func TestLoadInjectedReadError(t *testing.T) {
	ds, f, p := pyrFixture(t, 30)
	path := filepath.Join(t.TempDir(), "pyr.bin")
	if err := SavePyramid(path, p); err != nil {
		t.Fatal(err)
	}
	faultinject.Activate(faultinject.NewPlan(13,
		faultinject.Spec{Point: "persist.load.read", Action: faultinject.ActError, MaxEvery: 3}))
	_, err := LoadPyramid(path, ds, f)
	faultinject.Deactivate()
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected in chain", err)
	}
}
