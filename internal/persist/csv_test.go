package persist_test

import (
	"bytes"
	"strings"
	"testing"

	"asrs/internal/attr"
	"asrs/internal/dataset"
	"asrs/internal/persist"
)

func TestCSVRoundTrip(t *testing.T) {
	for _, ds := range []*attr.Dataset{
		dataset.Random(100, 50, 1),
		dataset.Tweet(200, 2),
		dataset.POISyn(150, 3),
		dataset.SingaporePOI(4),
	} {
		var buf bytes.Buffer
		if err := persist.WriteCSV(&buf, ds); err != nil {
			t.Fatal(err)
		}
		got, err := persist.ReadCSV(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Schema.Len() != ds.Schema.Len() {
			t.Fatalf("schema size %d vs %d", got.Schema.Len(), ds.Schema.Len())
		}
		for i := 0; i < ds.Schema.Len(); i++ {
			w, g := ds.Schema.At(i), got.Schema.At(i)
			if w.Name != g.Name || w.Kind != g.Kind || len(w.Domain) != len(g.Domain) {
				t.Fatalf("attribute %d differs: %+v vs %+v", i, w, g)
			}
		}
		if len(got.Objects) != len(ds.Objects) {
			t.Fatalf("object count %d vs %d", len(got.Objects), len(ds.Objects))
		}
		for i := range ds.Objects {
			w, g := &ds.Objects[i], &got.Objects[i]
			if w.Loc != g.Loc {
				t.Fatalf("object %d location %v vs %v", i, w.Loc, g.Loc)
			}
			for j := range w.Values {
				if ds.Schema.At(j).Kind == attr.Categorical {
					if w.Values[j].Cat != g.Values[j].Cat {
						t.Fatalf("object %d cat value %d differs", i, j)
					}
				} else if w.Values[j].Num != g.Values[j].Num {
					t.Fatalf("object %d num value %d: %g vs %g", i, j, w.Values[j].Num, g.Values[j].Num)
				}
			}
		}
	}
}

func TestReadCSVHandAuthored(t *testing.T) {
	src := `# asrs-dataset v1
# attr category categorical cafe|gym
# attr rating numeric
x,y,category,rating
1.5,2.5,cafe,4.5
3,4,gym,2
`
	ds, err := persist.ReadCSV(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Objects) != 2 {
		t.Fatalf("objects = %d", len(ds.Objects))
	}
	if ds.Objects[0].Values[0].Cat != 0 || ds.Objects[1].Values[0].Cat != 1 {
		t.Fatal("categorical decode wrong")
	}
	if ds.Objects[0].Values[1].Num != 4.5 {
		t.Fatal("numeric decode wrong")
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"missing magic", "x,y\n1,2\n"},
		{"bad directive", "# asrs-dataset v1\n# nope\nx,y\n"},
		{"missing domain", "# asrs-dataset v1\n# attr c categorical\nx,y,c\n"},
		{"unknown kind", "# asrs-dataset v1\n# attr c weird\nx,y,c\n"},
		{"header mismatch", "# asrs-dataset v1\n# attr c numeric\nx,y,other\n"},
		{"bad x", "# asrs-dataset v1\n# attr c numeric\nx,y,c\noops,2,3\n"},
		{"bad y", "# asrs-dataset v1\n# attr c numeric\nx,y,c\n1,oops,3\n"},
		{"bad numeric", "# asrs-dataset v1\n# attr c numeric\nx,y,c\n1,2,oops\n"},
		{"value outside domain", "# asrs-dataset v1\n# attr c categorical a|b\nx,y,c\n1,2,z\n"},
		{"short row", "# asrs-dataset v1\n# attr c numeric\nx,y,c\n1,2\n"},
	}
	for _, c := range cases {
		if _, err := persist.ReadCSV(strings.NewReader(c.src)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestWriteCSVRejectsInvalid(t *testing.T) {
	bad := &attr.Dataset{}
	if err := persist.WriteCSV(&bytes.Buffer{}, bad); err == nil {
		t.Fatal("invalid dataset accepted")
	}
	schema := attr.MustSchema(attr.Attribute{Name: "c", Kind: attr.Categorical, Domain: []string{"has|pipe"}})
	ds := &attr.Dataset{Schema: schema, Objects: []attr.Object{{Values: []attr.Value{attr.CatValue(0)}}}}
	if err := persist.WriteCSV(&bytes.Buffer{}, ds); err == nil {
		t.Fatal("reserved character in domain accepted")
	}
}

func TestCSVEmptyDataset(t *testing.T) {
	schema := attr.MustSchema(attr.Attribute{Name: "v", Kind: attr.Numeric})
	ds := &attr.Dataset{Schema: schema}
	var buf bytes.Buffer
	if err := persist.WriteCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}
	got, err := persist.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Objects) != 0 {
		t.Fatalf("objects = %d", len(got.Objects))
	}
}
