// Package persist provides durable formats for the library's two big
// artifacts: datasets (a self-describing CSV dialect for interchange with
// real POI/check-in exports) and grid indices (a compact binary format so
// the §5 index can be built once and memory-mapped style loaded by query
// services).
package persist

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"asrs/internal/attr"
	"asrs/internal/geom"
)

// The CSV dialect:
//
//	# asrs-dataset v1
//	# attr category categorical Apartment|Supermarket|Restaurant
//	# attr price numeric
//	x,y,category,price
//	103.82,1.30,Apartment,3.5
//
// Comment directives declare the schema (order defines attribute order);
// the header row and every record follow encoding/csv rules. Categorical
// values are written as their domain strings.

const csvMagic = "# asrs-dataset v1"

// WriteCSV serializes a dataset.
func WriteCSV(w io.Writer, ds *attr.Dataset) error {
	if err := ds.Validate(); err != nil {
		return fmt.Errorf("persist: refusing to write invalid dataset: %w", err)
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, csvMagic)
	for i := 0; i < ds.Schema.Len(); i++ {
		a := ds.Schema.At(i)
		switch a.Kind {
		case attr.Categorical:
			for _, v := range a.Domain {
				if strings.ContainsAny(v, "|\n") {
					return fmt.Errorf("persist: domain value %q contains reserved characters", v)
				}
			}
			fmt.Fprintf(bw, "# attr %s categorical %s\n", a.Name, strings.Join(a.Domain, "|"))
		case attr.Numeric:
			fmt.Fprintf(bw, "# attr %s numeric\n", a.Name)
		default:
			return fmt.Errorf("persist: attribute %q has unknown kind", a.Name)
		}
	}
	cw := csv.NewWriter(bw)
	header := []string{"x", "y"}
	for i := 0; i < ds.Schema.Len(); i++ {
		header = append(header, ds.Schema.At(i).Name)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, len(header))
	for oi := range ds.Objects {
		o := &ds.Objects[oi]
		rec[0] = strconv.FormatFloat(o.Loc.X, 'g', -1, 64)
		rec[1] = strconv.FormatFloat(o.Loc.Y, 'g', -1, 64)
		for i := 0; i < ds.Schema.Len(); i++ {
			a := ds.Schema.At(i)
			if a.Kind == attr.Categorical {
				rec[2+i] = a.Domain[o.Values[i].Cat]
			} else {
				rec[2+i] = strconv.FormatFloat(o.Values[i].Num, 'g', -1, 64)
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadCSV parses a dataset written by WriteCSV (or hand-authored in the
// same dialect).
func ReadCSV(r io.Reader) (*attr.Dataset, error) {
	br := bufio.NewReader(r)
	line, err := readLine(br)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	if strings.TrimSpace(line) != csvMagic {
		return nil, fmt.Errorf("persist: not an asrs dataset (missing %q header)", csvMagic)
	}
	var attrs []attr.Attribute
	var headerLine string
	for {
		line, err = readLine(br)
		if err != nil {
			return nil, fmt.Errorf("persist: truncated before header row: %w", err)
		}
		if !strings.HasPrefix(line, "#") {
			headerLine = line
			break
		}
		fields := strings.Fields(strings.TrimPrefix(line, "#"))
		if len(fields) < 3 || fields[0] != "attr" {
			return nil, fmt.Errorf("persist: malformed directive %q", line)
		}
		name := fields[1]
		switch fields[2] {
		case "categorical":
			if len(fields) < 4 {
				return nil, fmt.Errorf("persist: categorical attribute %q missing domain", name)
			}
			attrs = append(attrs, attr.Attribute{
				Name:   name,
				Kind:   attr.Categorical,
				Domain: strings.Split(strings.Join(fields[3:], " "), "|"),
			})
		case "numeric":
			attrs = append(attrs, attr.Attribute{Name: name, Kind: attr.Numeric})
		default:
			return nil, fmt.Errorf("persist: attribute %q has unknown kind %q", name, fields[2])
		}
	}
	schema, err := attr.NewSchema(attrs...)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}

	cr := csv.NewReader(strings.NewReader(headerLine))
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("persist: bad header row: %w", err)
	}
	if len(header) != 2+schema.Len() || header[0] != "x" || header[1] != "y" {
		return nil, fmt.Errorf("persist: header %v does not match schema", header)
	}
	for i := 0; i < schema.Len(); i++ {
		if header[2+i] != schema.At(i).Name {
			return nil, fmt.Errorf("persist: header column %q does not match attribute %q", header[2+i], schema.At(i).Name)
		}
	}

	body := csv.NewReader(br)
	body.FieldsPerRecord = 2 + schema.Len()
	var objects []attr.Object
	for rowNum := 2; ; rowNum++ {
		rec, err := body.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("persist: row %d: %w", rowNum, err)
		}
		x, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return nil, fmt.Errorf("persist: row %d: bad x %q", rowNum, rec[0])
		}
		y, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("persist: row %d: bad y %q", rowNum, rec[1])
		}
		values := make([]attr.Value, schema.Len())
		for i := 0; i < schema.Len(); i++ {
			a := schema.At(i)
			if a.Kind == attr.Categorical {
				ci := schema.ValueIndex(a.Name, rec[2+i])
				if ci < 0 {
					return nil, fmt.Errorf("persist: row %d: value %q not in dom(%s)", rowNum, rec[2+i], a.Name)
				}
				values[i] = attr.CatValue(ci)
			} else {
				v, err := strconv.ParseFloat(rec[2+i], 64)
				if err != nil {
					return nil, fmt.Errorf("persist: row %d: bad numeric %q for %s", rowNum, rec[2+i], a.Name)
				}
				values[i] = attr.NumValue(v)
			}
		}
		objects = append(objects, attr.Object{Loc: geom.Point{X: x, Y: y}, Values: values})
	}
	ds := &attr.Dataset{Schema: schema, Objects: objects}
	if err := ds.Validate(); err != nil {
		return nil, fmt.Errorf("persist: loaded dataset invalid: %w", err)
	}
	return ds, nil
}

func readLine(br *bufio.Reader) (string, error) {
	line, err := br.ReadString('\n')
	if err != nil && (err != io.EOF || line == "") {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}
