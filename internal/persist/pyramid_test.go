package persist

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"asrs/internal/agg"
	"asrs/internal/asp"
	"asrs/internal/attr"
	"asrs/internal/dssearch"
	"asrs/internal/geom"
)

// pyrFixture builds a dataset with integer, decimal (two-float) and
// min/max channels plus its pyramid, covering every serialized section.
func pyrFixture(t testing.TB, seed int64) (*attr.Dataset, *agg.Composite, *dssearch.Pyramid) {
	t.Helper()
	schema, err := attr.NewSchema(
		attr.Attribute{Name: "cat", Kind: attr.Categorical, Domain: []string{"x", "y"}},
		attr.Attribute{Name: "price", Kind: attr.Numeric},
	)
	if err != nil {
		t.Fatal(err)
	}
	f, err := agg.New(schema,
		agg.Spec{Kind: agg.Distribution, Attr: "cat"},
		agg.Spec{Kind: agg.Average, Attr: "price"},
	)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	objs := make([]attr.Object, 180)
	for i := range objs {
		objs[i] = attr.Object{
			Loc: geom.Point{X: rng.Float64() * 50, Y: rng.Float64() * 50},
			Values: []attr.Value{
				{Cat: rng.Intn(2)},
				{Num: 0.1 * float64(10+rng.Intn(990))}, // decimal grid: two-float channel
			},
		}
	}
	ds := &attr.Dataset{Schema: schema, Objects: objs}
	p, err := dssearch.BuildPyramid(ds, f)
	if err != nil {
		t.Fatal(err)
	}
	return ds, f, p
}

// answer runs one pyramid-bound search.
func answer(t *testing.T, ds *attr.Dataset, f *agg.Composite, p *dssearch.Pyramid) (geom.Rect, asp.Result) {
	t.Helper()
	target := make([]float64, f.Dims())
	target[0] = 4
	q := asp.Query{F: f, Target: target}
	region, res, _, err := dssearch.SolveASRS(ds, 6, 7, q, dssearch.Options{Pyramid: p})
	if err != nil {
		t.Fatal(err)
	}
	return region, res
}

// TestPyramidRoundTrip: a serialized-and-reloaded pyramid answers
// queries bit-identically to the in-memory original.
func TestPyramidRoundTrip(t *testing.T) {
	ds, f, p := pyrFixture(t, 7)
	var buf bytes.Buffer
	n, err := WritePyramid(&buf, p)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WritePyramid reported %d bytes, wrote %d", n, buf.Len())
	}
	loaded, err := ReadPyramid(bytes.NewReader(buf.Bytes()), ds, f)
	if err != nil {
		t.Fatal(err)
	}
	wantRegion, want := answer(t, ds, f, p)
	gotRegion, got := answer(t, ds, f, loaded)
	if gotRegion != wantRegion || got.Dist != want.Dist || got.Point != want.Point {
		t.Fatalf("loaded pyramid answered %v@%v (region %v), want %v@%v (region %v)",
			got.Dist, got.Point, gotRegion, want.Dist, want.Point, wantRegion)
	}
}

// TestPyramidTruncated: every truncation of the file must produce a
// clean error, never a panic.
func TestPyramidTruncated(t *testing.T) {
	ds, f, p := pyrFixture(t, 8)
	var buf bytes.Buffer
	if _, err := WritePyramid(&buf, p); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, frac := range []int{0, 4, 16, len(data) / 3, len(data) / 2, len(data) - 9, len(data) - 1} {
		if frac < 0 {
			continue
		}
		if _, err := ReadPyramid(bytes.NewReader(data[:frac]), ds, f); err == nil {
			t.Fatalf("truncation at %d/%d bytes did not error", frac, len(data))
		}
	}
}

// TestPyramidCorrupt: flipping payload bytes must be caught by the
// checksum (or earlier structural validation) as an error, not a wrong
// answer or panic.
func TestPyramidCorrupt(t *testing.T) {
	ds, f, p := pyrFixture(t, 9)
	var buf bytes.Buffer
	if _, err := WritePyramid(&buf, p); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		data := append([]byte(nil), clean...)
		at := 8 + rng.Intn(len(data)-8) // keep the magic so we reach validation
		data[at] ^= 1 << uint(rng.Intn(8))
		if _, err := ReadPyramid(bytes.NewReader(data), ds, f); err == nil {
			t.Fatalf("trial %d: corrupt byte at %d accepted", trial, at)
		}
	}
}

// TestPyramidVersionAndMagic: wrong magic and future versions error out
// with a clear message.
func TestPyramidVersionAndMagic(t *testing.T) {
	ds, f, p := pyrFixture(t, 10)
	var buf bytes.Buffer
	if _, err := WritePyramid(&buf, p); err != nil {
		t.Fatal(err)
	}
	data := append([]byte(nil), buf.Bytes()...)

	bad := append([]byte(nil), data...)
	bad[0] = 'X'
	if _, err := ReadPyramid(bytes.NewReader(bad), ds, f); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("wrong magic: err = %v", err)
	}

	bad = append([]byte(nil), data...)
	bad[8] = 99 // version word follows the magic
	if _, err := ReadPyramid(bytes.NewReader(bad), ds, f); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("wrong version: err = %v", err)
	}
}

// TestPyramidCompositeMismatch: loading against a structurally
// different composite fails the fingerprint check; loading against a
// different-size dataset fails the cardinality check.
func TestPyramidCompositeMismatch(t *testing.T) {
	ds, f, p := pyrFixture(t, 11)
	var buf bytes.Buffer
	if _, err := WritePyramid(&buf, p); err != nil {
		t.Fatal(err)
	}
	other, err := agg.New(ds.Schema, agg.Spec{Kind: agg.Count})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadPyramid(bytes.NewReader(buf.Bytes()), ds, other); err == nil {
		t.Fatal("composite mismatch accepted")
	}
	short := &attr.Dataset{Schema: ds.Schema, Objects: ds.Objects[:len(ds.Objects)-3]}
	if _, err := ReadPyramid(bytes.NewReader(buf.Bytes()), short, f); err == nil {
		t.Fatal("dataset cardinality mismatch accepted")
	}
}
