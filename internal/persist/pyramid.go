package persist

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/fnv"
	"io"

	"asrs/internal/agg"
	"asrs/internal/attr"
	"asrs/internal/dssearch"
)

// Binary pyramid format (little endian):
//
//	magic "ASRSPYR1"
//	u32 version (currently 1)
//	u32 len(fingerprint), fingerprint bytes
//	u32 n, chans, eff, mmSlots, flags, nLevels
//	bool  chOK[eff]
//	f64   chScale[eff], chInv[eff]
//	i32   twoOf[chans]
//	i32   order[n], xAscIds[n], yAscIds[n]
//	i32   cOff[n+1]; {u32 ch, f64 v} contribs[cOff[n]]
//	i32   mOff[n+1]; {u32 slot, f64 v} mms[mOff[n]]            (mmSlots > 0)
//	i32   cOffF[n+1]; {u32 ch, f64 v} contribsF[cOffF[n]]      (!sortExact)
//	per level: u32 g; f64 bw, bh; i64 sat[(g+1)²(eff+1)];
//	           i32 binStart[g²+1], binIds[n],
//	           xMaxUpTo[g], xMinFrom[g], yMaxUpTo[g], yMinFrom[g]
//	u64 fnv-64a of every byte after the magic
//
// Derived state — scaled int64 contributions and the per-level min/max
// sparse tables — is rebuilt at load (cheaper than storing it). The
// composite aggregator is re-bound by the caller and verified via
// structural fingerprint; like ReadIndex, the dataset identity and the
// composite's selection functions are part of the file's contract.

var pyramidMagic = [8]byte{'A', 'S', 'R', 'S', 'P', 'Y', 'R', '1'}

const pyramidVersion = 1

// Error taxonomy for pyramid files. Every ReadPyramid/LoadPyramid
// failure wraps exactly one of these, so callers can decide the
// serviceable action with errors.Is instead of string matching:
//
//   - ErrCorrupt: the file's BYTES are bad — torn write, truncation,
//     bit rot, checksum or structural-guard failure. The artifact is
//     unusable and rebuildable; quarantine-and-rebuild (see
//     asrs.LoadOrBuildPyramidFile) is the right response.
//   - ErrMismatch: the file decodes but was built for a different
//     composite or dataset. That is a deployment error (stale or
//     misrouted artifact), not damage — rebuilding silently would hide
//     it, so callers surface it instead of quarantining.
var (
	ErrCorrupt  = errors.New("pyramid file corrupt")
	ErrMismatch = errors.New("pyramid does not match dataset/composite")
)

// corruptf builds an ErrCorrupt-tagged error; args may include a %w
// cause of their own.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("persist: "+format+": %w", append(args, ErrCorrupt)...)
}

// mismatchf builds an ErrMismatch-tagged error.
func mismatchf(format string, args ...any) error {
	return fmt.Errorf("persist: "+format+": %w", append(args, ErrMismatch)...)
}

// flag bits of the header flags word.
const (
	pyrFlagAllExact = 1 << iota
	pyrFlagSortExact
	pyrFlagAnyExact
	pyrFlagSorted
)

// hashingWriter tees every written byte into an fnv-64a sum.
type hashingWriter struct {
	w io.Writer
	h hash.Hash64
	n int64
}

func (hw *hashingWriter) Write(p []byte) (int, error) {
	n, err := hw.w.Write(p)
	hw.h.Write(p[:n])
	hw.n += int64(n)
	return n, err
}

// WritePyramid serializes a pyramid. Returns the byte count written.
func WritePyramid(w io.Writer, p *dssearch.Pyramid) (int64, error) {
	if p == nil {
		return 0, fmt.Errorf("persist: nil pyramid")
	}
	s := p.Snapshot()
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(pyramidMagic[:]); err != nil {
		return 0, err
	}
	hw := &hashingWriter{w: bw, h: fnv.New64a()}
	write := func(v any) error { return binary.Write(hw, binary.LittleEndian, v) }

	if err := write(uint32(pyramidVersion)); err != nil {
		return hw.n, err
	}
	fp := []byte(p.Composite().Fingerprint())
	if err := write(uint32(len(fp))); err != nil {
		return hw.n, err
	}
	if _, err := hw.Write(fp); err != nil {
		return hw.n, err
	}
	flags := uint32(0)
	if s.AllExact {
		flags |= pyrFlagAllExact
	}
	if s.SortExact {
		flags |= pyrFlagSortExact
	}
	if s.AnyExact {
		flags |= pyrFlagAnyExact
	}
	if s.Sorted {
		flags |= pyrFlagSorted
	}
	for _, v := range []uint32{uint32(s.N), uint32(s.Chans), uint32(s.Eff), uint32(s.MMSlots), flags, uint32(len(s.Levels))} {
		if err := write(v); err != nil {
			return hw.n, err
		}
	}
	for _, v := range []any{s.ChOK, s.ChScale, s.ChInv, s.TwoOf, s.Order, s.XAscIds, s.YAscIds} {
		if err := write(v); err != nil {
			return hw.n, err
		}
	}
	writeContribs := func(off []int32, cs []agg.Contrib) error {
		if err := write(off); err != nil {
			return err
		}
		for i := range cs {
			if err := write(uint32(cs[i].Ch)); err != nil {
				return err
			}
			if err := write(cs[i].V); err != nil {
				return err
			}
		}
		return nil
	}
	if err := writeContribs(s.COff, s.Contribs); err != nil {
		return hw.n, err
	}
	if s.MMSlots > 0 {
		if err := write(s.MOff); err != nil {
			return hw.n, err
		}
		for i := range s.MMs {
			if err := write(uint32(s.MMs[i].Slot)); err != nil {
				return hw.n, err
			}
			if err := write(s.MMs[i].V); err != nil {
				return hw.n, err
			}
		}
	}
	if !s.SortExact {
		if err := writeContribs(s.COffF, s.ContribsF); err != nil {
			return hw.n, err
		}
	}
	for li := range s.Levels {
		l := &s.Levels[li]
		if err := write(uint32(l.G)); err != nil {
			return hw.n, err
		}
		for _, v := range []any{l.BW, l.BH, l.Sat, l.BinStart, l.BinIds,
			l.XMaxUpTo, l.XMinFrom, l.YMaxUpTo, l.YMinFrom} {
			if err := write(v); err != nil {
				return hw.n, err
			}
		}
	}
	sum := hw.h.Sum64()
	if err := binary.Write(bw, binary.LittleEndian, sum); err != nil {
		return hw.n, err
	}
	return hw.n + int64(len(pyramidMagic)) + 8, bw.Flush()
}

// hashingReader tees every read byte into an fnv-64a sum.
type hashingReader struct {
	r io.Reader
	h hash.Hash64
}

func (hr *hashingReader) Read(p []byte) (int, error) {
	n, err := hr.r.Read(p)
	hr.h.Write(p[:n])
	return n, err
}

// ReadPyramid deserializes a pyramid written by WritePyramid, re-binding
// it to the dataset and composite it was built for. The composite is
// verified structurally via fingerprint and the payload via checksum;
// corrupt, truncated or mismatched files produce errors, never panics.
// The dataset must be the one the pyramid was built from — that
// identity, like the composite's selection functions, is part of the
// file's contract.
func ReadPyramid(r io.Reader, ds *attr.Dataset, f *agg.Composite) (*dssearch.Pyramid, error) {
	if ds == nil || f == nil {
		return nil, fmt.Errorf("persist: ReadPyramid requires the dataset and composite the pyramid was built with")
	}
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, corruptf("reading pyramid magic: %w", err)
	}
	if magic != pyramidMagic {
		return nil, corruptf("not a pyramid file (magic %q)", magic[:])
	}
	hr := &hashingReader{r: br, h: fnv.New64a()}
	read := func(v any) error { return binary.Read(hr, binary.LittleEndian, v) }

	var version uint32
	if err := read(&version); err != nil {
		return nil, corruptf("reading pyramid version: %w", err)
	}
	if version != pyramidVersion {
		return nil, corruptf("unsupported pyramid version %d (want %d)", version, pyramidVersion)
	}
	var fpLen uint32
	if err := read(&fpLen); err != nil {
		return nil, corruptf("reading fingerprint length: %w", err)
	}
	if fpLen > 1<<16 {
		return nil, corruptf("implausible fingerprint length %d", fpLen)
	}
	fp := make([]byte, fpLen)
	if _, err := io.ReadFull(hr, fp); err != nil {
		return nil, corruptf("reading fingerprint: %w", err)
	}
	if got := f.Fingerprint(); got != string(fp) {
		return nil, mismatchf("composite mismatch: pyramid built for %q, got %q", fp, got)
	}

	var n, chans, eff, mmSlots, flags, nLevels uint32
	for _, p := range []*uint32{&n, &chans, &eff, &mmSlots, &flags, &nLevels} {
		if err := read(p); err != nil {
			return nil, corruptf("reading pyramid header: %w", err)
		}
	}
	const maxN = 1 << 28
	if n > maxN || chans > 1<<20 || eff > 1<<21 || mmSlots > 1<<16 || nLevels > 64 {
		return nil, corruptf("implausible pyramid header n=%d chans=%d eff=%d mm=%d levels=%d",
			n, chans, eff, mmSlots, nLevels)
	}
	// Early structural checks double as allocation guards: a corrupted
	// length field must fail here, before it can size a giant slice.
	if int(n) != len(ds.Objects) {
		return nil, mismatchf("pyramid covers %d objects, dataset has %d", n, len(ds.Objects))
	}
	if int(chans) != f.Channels() || int(mmSlots) != f.MinMaxSlots() || eff < chans || eff > 2*chans {
		return nil, mismatchf("pyramid channel layout mismatch (chans=%d eff=%d mm=%d)", chans, eff, mmSlots)
	}
	s := &dssearch.PyramidSnapshot{
		N: int(n), Chans: int(chans), Eff: int(eff), MMSlots: int(mmSlots),
		AllExact:  flags&pyrFlagAllExact != 0,
		SortExact: flags&pyrFlagSortExact != 0,
		AnyExact:  flags&pyrFlagAnyExact != 0,
		Sorted:    flags&pyrFlagSorted != 0,
	}
	s.ChOK = make([]bool, eff)
	s.ChScale = make([]float64, eff)
	s.ChInv = make([]float64, eff)
	s.TwoOf = make([]int32, chans)
	s.Order = make([]int32, n)
	s.XAscIds = make([]int32, n)
	s.YAscIds = make([]int32, n)
	for _, v := range []any{s.ChOK, s.ChScale, s.ChInv, s.TwoOf, s.Order, s.XAscIds, s.YAscIds} {
		if err := read(v); err != nil {
			return nil, corruptf("reading pyramid certificate/orders: %w", err)
		}
	}
	readContribs := func(what string) ([]int32, []agg.Contrib, error) {
		off := make([]int32, n+1)
		if err := read(off); err != nil {
			return nil, nil, corruptf("reading %s offsets: %w", what, err)
		}
		total := int64(off[n])
		if total < 0 || total > int64(n)*int64(eff)+1 {
			return nil, nil, corruptf("implausible %s count %d", what, total)
		}
		cs := make([]agg.Contrib, total)
		for i := range cs {
			var ch uint32
			if err := read(&ch); err != nil {
				return nil, nil, fmt.Errorf("persist: reading %s: %w", what, err)
			}
			cs[i].Ch = int(ch)
			if err := read(&cs[i].V); err != nil {
				return nil, nil, fmt.Errorf("persist: reading %s: %w", what, err)
			}
		}
		return off, cs, nil
	}
	var err error
	if s.COff, s.Contribs, err = readContribs("contributions"); err != nil {
		return nil, err
	}
	if mmSlots > 0 {
		s.MOff = make([]int32, n+1)
		if err := read(s.MOff); err != nil {
			return nil, corruptf("reading min/max offsets: %w", err)
		}
		total := int64(s.MOff[n])
		if total < 0 || total > int64(n)*int64(mmSlots)+1 {
			return nil, corruptf("implausible min/max count %d", total)
		}
		s.MMs = make([]agg.MMContrib, total)
		for i := range s.MMs {
			var slot uint32
			if err := read(&slot); err != nil {
				return nil, fmt.Errorf("persist: reading min/max contributions: %w", err)
			}
			s.MMs[i].Slot = int(slot)
			if err := read(&s.MMs[i].V); err != nil {
				return nil, fmt.Errorf("persist: reading min/max contributions: %w", err)
			}
		}
	}
	if !s.SortExact {
		if s.COffF, s.ContribsF, err = readContribs("fallback contributions"); err != nil {
			return nil, err
		}
	}
	for li := 0; li < int(nLevels); li++ {
		var g uint32
		if err := read(&g); err != nil {
			return nil, corruptf("reading level %d granularity: %w", li, err)
		}
		// BuildPyramid never emits levels beyond 256 bins per side; the
		// guard is deliberately far below the format's theoretical range
		// so a corrupted granularity field fails here, before it can size
		// a multi-gigabyte SAT slab (the checksum only runs at the end).
		if g == 0 || g > 1024 {
			return nil, corruptf("implausible level %d granularity %d", li, g)
		}
		l := dssearch.PyramidLevelSnapshot{G: int(g)}
		l.Sat = make([]int64, (g+1)*(g+1)*(eff+1))
		l.BinStart = make([]int32, g*g+1)
		l.BinIds = make([]int32, n)
		l.XMaxUpTo = make([]int32, g)
		l.XMinFrom = make([]int32, g)
		l.YMaxUpTo = make([]int32, g)
		l.YMinFrom = make([]int32, g)
		for _, v := range []any{&l.BW, &l.BH, l.Sat, l.BinStart, l.BinIds,
			l.XMaxUpTo, l.XMinFrom, l.YMaxUpTo, l.YMinFrom} {
			if err := read(v); err != nil {
				return nil, corruptf("reading level %d: %w", li, err)
			}
		}
		s.Levels = append(s.Levels, l)
	}
	want := hr.h.Sum64()
	var sum uint64
	if err := binary.Read(br, binary.LittleEndian, &sum); err != nil {
		return nil, corruptf("reading pyramid checksum: %w", err)
	}
	if sum != want {
		return nil, corruptf("pyramid checksum mismatch")
	}
	p, err := dssearch.PyramidFromSnapshot(ds, f, s)
	if err != nil {
		return nil, corruptf("rebuilding pyramid from snapshot: %w", err)
	}
	return p, nil
}
