// Package chaos is the deterministic fault-injection acceptance suite:
// it replays query workloads under seeded failpoint schedules
// (internal/faultinject) and asserts the fault-domain contract of
// DESIGN.md §9 — the process never dies, every failure surfaces as a
// typed error, and any query whose path had no fault fired answers
// bit-identically to the fault-free oracle. Schedules are pure
// functions of their seed, so a failing seed replays exactly.
package chaos

import (
	"context"
	"errors"
	"math"
	"os"
	"os/signal"
	"path/filepath"
	"sync"
	"syscall"
	"testing"
	"time"

	"asrs"
	"asrs/internal/dataset"
	"asrs/internal/faultinject"
	"asrs/internal/kernel"
)

// chaosCorpus builds the chaos fixture once: a small corpus (chaos
// runs the workload 20+ times), its composite, a mixed workload, and
// the fault-free oracle distances.
var chaosCorpus struct {
	once sync.Once
	ds   *asrs.Dataset
	f    *asrs.Composite
	reqs []asrs.QueryRequest
	want []float64
	err  error
}

func fixture(t *testing.T) (*asrs.Dataset, *asrs.Composite, []asrs.QueryRequest, []float64) {
	t.Helper()
	chaosCorpus.once.Do(func() {
		ds := dataset.POISyn(1600, 17)
		f, err := asrs.NewComposite(ds.Schema,
			asrs.AggSpec{Kind: asrs.Sum, Attr: "visits"},
			asrs.AggSpec{Kind: asrs.Average, Attr: "rating"},
		)
		if err != nil {
			chaosCorpus.err = err
			return
		}
		bounds := ds.Bounds()
		// Mixed workload: varying extents, a top-k, an exclusion — the
		// shapes exercise different kernel depths, so a sparse fault
		// schedule hits some queries and spares others.
		mk := func(scale float64, tgt0 float64) asrs.QueryRequest {
			target := make([]float64, f.Dims())
			target[0] = tgt0
			target[len(target)-1] = 2.5
			return asrs.QueryRequest{
				Query: asrs.Query{F: f, Target: target},
				A:     bounds.Width() * scale,
				B:     bounds.Height() * scale,
			}
		}
		reqs := []asrs.QueryRequest{
			mk(0.08, 40), mk(0.12, 90), mk(0.20, 200), mk(0.05, 15),
			mk(0.15, 120), mk(0.10, 60),
		}
		topk := mk(0.10, 75)
		topk.TopK = 2
		reqs = append(reqs, topk)
		excl := mk(0.12, 100)
		excl.Exclude = []asrs.Rect{{MinX: bounds.MinX, MinY: bounds.MinY,
			MaxX: bounds.MinX + bounds.Width()/4, MaxY: bounds.MinY + bounds.Height()/4}}
		reqs = append(reqs, excl)

		eng, err := asrs.NewEngine(ds, asrs.EngineOptions{})
		if err != nil {
			chaosCorpus.err = err
			return
		}
		want := make([]float64, len(reqs))
		for i, req := range reqs {
			resp := eng.Query(req)
			if resp.Err != nil {
				chaosCorpus.err = resp.Err
				return
			}
			want[i] = resp.Results[0].Dist
		}
		chaosCorpus.ds, chaosCorpus.f = ds, f
		chaosCorpus.reqs, chaosCorpus.want = reqs, want
	})
	if chaosCorpus.err != nil {
		t.Fatal(chaosCorpus.err)
	}
	return chaosCorpus.ds, chaosCorpus.f, chaosCorpus.reqs, chaosCorpus.want
}

// typedErr reports whether an error belongs to the taxonomy the fault
// contract allows: a kernel PanicError, an injected fault, or a
// context error. Anything else — and any panic that escapes — is a
// contract violation.
func typedErr(err error) bool {
	var pe *kernel.PanicError
	return errors.As(err, &pe) ||
		errors.Is(err, faultinject.ErrInjected) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded)
}

// TestEngineChaosSeeds replays the workload under 24 seeded kernel
// fault schedules (injected worker panics at seed-varied rates plus
// slow barriers). Per query: bracket with Fired() — if no fault fired
// on its path, the answer must be bit-identical to the oracle; if the
// query failed, the error must be typed. The process surviving all 24
// schedules IS the no-process-death assertion.
func TestEngineChaosSeeds(t *testing.T) {
	ds, _, reqs, want := fixture(t)

	compared, faulted := 0, 0
	for seed := int64(1); seed <= 24; seed++ {
		eng, err := asrs.NewEngine(ds, asrs.EngineOptions{})
		if err != nil {
			t.Fatal(err)
		}
		// Seed-varied rates: low seeds arm aggressive panics (every
		// query dies), high seeds sparse ones (most queries survive
		// untouched and must stay bit-identical).
		plan := faultinject.NewPlan(seed,
			faultinject.Spec{Point: "kernel.process.panic", Action: faultinject.ActPanic,
				MaxEvery: 1 << (4 + seed%10)},
			faultinject.Spec{Point: "kernel.barrier.slow", Action: faultinject.ActSleep,
				MaxEvery: 64, Delay: 100 * time.Microsecond},
		)
		faultinject.Activate(plan)
		for i, req := range reqs {
			before := plan.FiredAt("kernel.process.panic")
			resp := eng.Query(req)
			after := plan.FiredAt("kernel.process.panic")
			if resp.Err != nil {
				faulted++
				if !typedErr(resp.Err) {
					t.Fatalf("seed %d query %d: untyped error %v", seed, i, resp.Err)
				}
				if after == before {
					t.Fatalf("seed %d query %d: failed with no fault fired: %v", seed, i, resp.Err)
				}
				continue
			}
			if after == before {
				compared++
				if math.Float64bits(resp.Results[0].Dist) != math.Float64bits(want[i]) {
					t.Fatalf("seed %d query %d: fault-free answer %v, oracle %v",
						seed, i, resp.Results[0].Dist, want[i])
				}
			}
		}
		faultinject.Deactivate()
	}
	// The schedule spread must actually produce both regimes, or the
	// suite is asserting nothing.
	if compared == 0 || faulted == 0 {
		t.Fatalf("degenerate chaos run: %d compared, %d faulted", compared, faulted)
	}
	t.Logf("chaos: %d fault-free queries compared bit-identical, %d faulted with typed errors", compared, faulted)
}

// TestPersistChaosSeeds replays pyramid save/load under 20 seeded IO
// fault schedules. Contract: a failed save leaves the previous
// complete file loadable (or no file at all); a successful save loads
// back; injected load faults surface typed.
func TestPersistChaosSeeds(t *testing.T) {
	ds, f, _, _ := fixture(t)
	pyr, _, err := asrs.LoadOrBuildPyramidFile(filepath.Join(t.TempDir(), "oracle.bin"), ds, f)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "pyr.bin")
	if err := asrs.SavePyramidFile(path, pyr); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for seed := int64(1); seed <= 20; seed++ {
		plan := faultinject.NewPlan(seed,
			faultinject.Spec{Point: "persist.save.write", Action: faultinject.ActShortWrite, MaxEvery: 6},
			faultinject.Spec{Point: "persist.save.sync", Action: faultinject.ActError, MaxEvery: 8},
			faultinject.Spec{Point: "persist.save.rename", Action: faultinject.ActError, MaxEvery: 8},
		)
		faultinject.Activate(plan)
		serr := asrs.SavePyramidFile(path, pyr)
		fired := plan.Fired()
		faultinject.Deactivate()

		if serr != nil {
			if !errors.Is(serr, faultinject.ErrInjected) {
				t.Fatalf("seed %d: untyped save error %v", seed, serr)
			}
			if fired == 0 {
				t.Fatalf("seed %d: save failed with no fault fired: %v", seed, serr)
			}
		}
		// Old-or-new: whatever the save's fate, the destination must
		// hold a COMPLETE loadable pyramid (the old bytes on failure,
		// either on success — both encode the same pyramid here).
		got, rerr := os.ReadFile(path)
		if rerr != nil {
			t.Fatalf("seed %d: destination unreadable after save attempt: %v", seed, rerr)
		}
		if len(got) != len(good) {
			t.Fatalf("seed %d: destination torn: %d bytes, want %d", seed, len(got), len(good))
		}
		if _, lerr := asrs.LoadPyramidFile(path, ds, f); lerr != nil {
			t.Fatalf("seed %d: destination unloadable after save attempt: %v", seed, lerr)
		}
	}

	// Injected read faults: typed errors, never panics, file untouched.
	for seed := int64(1); seed <= 6; seed++ {
		faultinject.Activate(faultinject.NewPlan(seed,
			faultinject.Spec{Point: "persist.load.read", Action: faultinject.ActError, MaxEvery: 4}))
		_, lerr := asrs.LoadPyramidFile(path, ds, f)
		fired := faultinject.Fired()
		faultinject.Deactivate()
		if fired > 0 && lerr == nil {
			t.Fatalf("seed %d: read fault fired but load succeeded", seed)
		}
		if lerr != nil && !errors.Is(lerr, faultinject.ErrInjected) {
			t.Fatalf("seed %d: untyped load error %v", seed, lerr)
		}
	}
}

// TestSigtermDrainWithConcurrentSave delivers a real SIGTERM while a
// coalesced batch is in flight and a pyramid save is running
// concurrently — the asrsd shutdown scenario. Contract: the drain
// completes (in-flight queries get real answers, not errors), and the
// pyramid file is never torn — afterwards it holds a complete
// old-or-new image that loads cleanly.
func TestSigtermDrainWithConcurrentSave(t *testing.T) {
	ds, f, reqs, want := fixture(t)
	eng, err := asrs.NewEngine(ds, asrs.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "pyr.bin")
	pyr, _, err := asrs.LoadOrBuildPyramidFile(path, ds, f)
	if err != nil {
		t.Fatal(err)
	}

	// Mirror cmd/asrsd's signal wiring: NotifyContext on SIGTERM.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()

	// In-flight coalesced batch: launched before the signal.
	type outcome struct {
		i    int
		resp asrs.QueryResponse
	}
	results := make(chan outcome, len(reqs))
	var qwg sync.WaitGroup
	for i, req := range reqs {
		qwg.Add(1)
		go func(i int, req asrs.QueryRequest) {
			defer qwg.Done()
			results <- outcome{i, eng.Query(req)}
		}(i, req)
	}

	// Concurrent save racing the signal and the drain.
	saveErr := make(chan error, 1)
	go func() { saveErr <- asrs.SavePyramidFile(path, pyr) }()

	// Deliver a REAL SIGTERM to this process.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("SIGTERM not delivered within 5s")
	}

	// Drain: wait for in-flight work like asrsd's grace period does.
	qwg.Wait()
	close(results)
	for out := range results {
		if out.resp.Err != nil {
			t.Fatalf("drained query %d failed: %v", out.i, out.resp.Err)
		}
		if math.Float64bits(out.resp.Results[0].Dist) != math.Float64bits(want[out.i]) {
			t.Fatalf("drained query %d answered %v, want %v", out.i, out.resp.Results[0].Dist, want[out.i])
		}
	}
	if err := <-saveErr; err != nil {
		t.Fatalf("concurrent save failed: %v", err)
	}

	// Old-or-new, never torn: the file must load cleanly.
	if _, err := asrs.LoadPyramidFile(path, ds, f); err != nil {
		t.Fatalf("pyramid torn after SIGTERM drain: %v", err)
	}
}
