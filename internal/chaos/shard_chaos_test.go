package chaos

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"asrs"
	"asrs/internal/agg"
	"asrs/internal/dataset"
	"asrs/internal/faultinject"
	"asrs/internal/shard"
)

// shardFixture builds the multi-shard chaos corpus: a seeded corpus,
// its composite/query, and a routed workload mixing extents contained
// in single slabs with straddling ones.
func shardFixture(t *testing.T) (*asrs.Dataset, *asrs.Composite, []shard.Request, []float64) {
	t.Helper()
	ds := dataset.Random(60, 100, 77)
	f := agg.MustNew(ds.Schema,
		agg.Spec{Kind: agg.Distribution, Attr: "cat"},
		agg.Spec{Kind: agg.Sum, Attr: "val"},
	)
	q := asrs.Query{F: f, Target: []float64{1, 2, 1, 5}}
	extents := []asrs.Rect{
		{MinX: 2, MinY: 2, MaxX: 98, MaxY: 98},   // straddles every cut
		{MinX: 1, MinY: 1, MaxX: 30, MaxY: 99},   // left slab-ish
		{MinX: 55, MinY: 5, MaxX: 99, MaxY: 95},  // right
		{MinX: 20, MinY: 10, MaxX: 80, MaxY: 90}, // middle straddler
	}
	reqs := make([]shard.Request, 0, len(extents))
	want := make([]float64, 0, len(extents))
	for i := range extents {
		e := extents[i]
		_, res, _, err := asrs.SearchWithin(ds, 7, 7, q, e, nil, asrs.Options{})
		if err != nil {
			t.Fatal(err)
		}
		reqs = append(reqs, shard.Request{Query: q, A: 7, B: 7, Extent: &e})
		want = append(want, res.Dist)
	}
	return ds, f, reqs, want
}

func newChaosRouter(t *testing.T, ds *asrs.Dataset, f *asrs.Composite, breaker shard.BreakerConfig) *shard.Router {
	t.Helper()
	cat, err := shard.New(ds, shard.Config{
		Shards:     3,
		Composites: map[string]*asrs.Composite{"q": f},
		Names:      []string{"q"},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cat.Close() })
	return shard.NewRouter(cat, shard.RouterOptions{Breaker: breaker})
}

// routedTypedErr is the routed fault taxonomy: shard unavailability
// (typed, retryable), infeasibility, or a context error. Anything else
// escaping a routed query is a contract violation.
func routedTypedErr(err error) bool {
	var ue *shard.UnavailableError
	return errors.As(err, &ue) ||
		errors.Is(err, asrs.ErrNoFeasibleRegion) ||
		errors.Is(err, asrs.ErrExtentTooSmall) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded)
}

// TestShardChaosSeeds replays the routed workload under 16 seeded
// shard fault schedules — injected sub-search panics, slow shards, and
// engine load failures — under both partial policies. Contract: the
// process never dies; every failure is typed; any query that saw no
// fault fire and lost no shard answers bit-identically to the
// merged-corpus oracle; a best-effort answer's coverage names the
// skipped shards.
func TestShardChaosSeeds(t *testing.T) {
	ds, f, reqs, want := shardFixture(t)
	t.Cleanup(faultinject.Deactivate)

	compared, faulted := 0, 0
	for seed := int64(1); seed <= 16; seed++ {
		rng := rand.New(rand.NewSource(seed))
		rt := newChaosRouter(t, ds, f, shard.BreakerConfig{
			FailureThreshold: 2,
			BaseBackoff:      5 * time.Millisecond,
			MaxBackoff:       40 * time.Millisecond,
			Seed:             seed,
		})
		plan := faultinject.NewPlan(seed,
			faultinject.Spec{Point: "shard.search.panic", Action: faultinject.ActPanic,
				MaxEvery: 1 << (2 + seed%5)},
			faultinject.Spec{Point: "shard.search.slow", Action: faultinject.ActSleep,
				MaxEvery: 16, Delay: 100 * time.Microsecond},
			faultinject.Spec{Point: "shard.load.fail", Action: faultinject.ActError,
				MaxEvery: 4},
		)
		faultinject.Activate(plan)
		for pass := 0; pass < 3; pass++ {
			for i, req := range reqs {
				if rng.Intn(2) == 0 {
					req.Policy = shard.BestEffort
				} else {
					req.Policy = shard.Strict
				}
				before := plan.Fired()
				resp := rt.Query(context.Background(), req)
				after := plan.Fired()
				if resp.Err != nil {
					faulted++
					if !routedTypedErr(resp.Err) {
						t.Fatalf("seed %d query %d: untyped error %v", seed, i, resp.Err)
					}
					var ue *shard.UnavailableError
					if errors.As(resp.Err, &ue) && !ue.Temporary() {
						t.Fatalf("seed %d query %d: UnavailableError not retryable", seed, i)
					}
					continue
				}
				if !resp.Coverage.Complete() {
					// A best-effort partial answer: the coverage must say
					// which shards were lost and why.
					if req.Policy != shard.BestEffort {
						t.Fatalf("seed %d query %d: strict answer with skips %v", seed, i, resp.Coverage.Skipped)
					}
					for _, s := range resp.Coverage.Skipped {
						if s.Shard == "" || s.Reason == "" {
							t.Fatalf("seed %d query %d: anonymous skip %+v", seed, i, s)
						}
					}
					continue
				}
				if after == before {
					compared++
					if math.Float64bits(resp.Results[0].Dist) != math.Float64bits(want[i]) {
						t.Fatalf("seed %d query %d: fault-free routed answer %v, oracle %v",
							seed, i, resp.Results[0].Dist, want[i])
					}
				}
			}
		}
		faultinject.Deactivate()
	}
	if compared == 0 || faulted == 0 {
		t.Fatalf("degenerate shard chaos run: %d compared, %d faulted", compared, faulted)
	}
	t.Logf("shard chaos: %d fault-free routed queries bit-identical, %d faulted typed", compared, faulted)
}

// TestShardTrippedSiblingIsolation pins the isolation contract
// deterministically: with one shard's breaker held open, queries
// contained in the sibling slabs answer bit-identically to the merged
// oracle, a strict straddler fails typed, and a best-effort straddler
// answers with coverage naming exactly the tripped shard.
func TestShardTrippedSiblingIsolation(t *testing.T) {
	ds, f, _, _ := shardFixture(t)
	q := asrs.Query{F: f, Target: []float64{1, 2, 1, 5}}
	rt := newChaosRouter(t, ds, f, shard.BreakerConfig{
		FailureThreshold: 1, BaseBackoff: time.Hour, MaxBackoff: time.Hour,
	})
	cat := rt.Catalog()
	tripped := cat.Shards()[1]
	tripped.Breaker().Failure()
	if st := tripped.Breaker().Status(); st.State != "open" {
		t.Fatalf("setup: breaker %+v", st)
	}

	// Sibling slabs keep answering with full bits.
	for _, sh := range []*shard.Shard{cat.Shards()[0], cat.Shards()[2]} {
		lo, hi := sh.Slab()
		lo, hi = math.Max(lo, 0), math.Min(hi, 100)
		e := asrs.Rect{MinX: lo + 0.25, MinY: 1, MaxX: hi - 0.25, MaxY: 99}
		if e.Width() < 7 {
			continue
		}
		_, ores, _, err := asrs.SearchWithin(ds, 7, 7, q, e, nil, asrs.Options{})
		wantErr := err
		resp := rt.Query(context.Background(), shard.Request{Query: q, A: 7, B: 7, Extent: &e})
		if wantErr != nil {
			if !errors.Is(resp.Err, wantErr) {
				t.Fatalf("shard %s: err %v vs oracle %v", sh.Name(), resp.Err, wantErr)
			}
			continue
		}
		if resp.Err != nil {
			t.Fatalf("healthy sibling %s failed: %v", sh.Name(), resp.Err)
		}
		if math.Float64bits(resp.Results[0].Dist) != math.Float64bits(ores.Dist) {
			t.Fatalf("tripped shard perturbed sibling %s: %v vs %v", sh.Name(), resp.Results[0].Dist, ores.Dist)
		}
	}

	// Straddling strict: typed retryable failure naming the tripped shard.
	e := asrs.Rect{MinX: 2, MinY: 2, MaxX: 98, MaxY: 98}
	resp := rt.Query(context.Background(), shard.Request{Query: q, A: 7, B: 7, Extent: &e, Policy: shard.Strict})
	var ue *shard.UnavailableError
	if !errors.As(resp.Err, &ue) {
		t.Fatalf("strict straddler over tripped shard: %v", resp.Err)
	}
	if len(ue.Skipped) != 1 || ue.Skipped[0].Shard != tripped.Name() || ue.Skipped[0].Reason != "breaker_open" {
		t.Fatalf("strict skip list %+v, want exactly %s/breaker_open", ue.Skipped, tripped.Name())
	}

	// Straddling best-effort: an answer, with coverage naming exactly
	// the tripped shard.
	resp = rt.Query(context.Background(), shard.Request{Query: q, A: 7, B: 7, Extent: &e, Policy: shard.BestEffort})
	if resp.Err != nil {
		t.Fatalf("best-effort straddler failed outright: %v", resp.Err)
	}
	if len(resp.Coverage.Skipped) != 1 || resp.Coverage.Skipped[0].Shard != tripped.Name() {
		t.Fatalf("best-effort coverage skipped %+v, want exactly [%s]", resp.Coverage.Skipped, tripped.Name())
	}
	for _, name := range []string{"shard-0", "shard-2"} {
		found := false
		for _, s := range resp.Coverage.Searched {
			if s == name {
				found = true
			}
		}
		if !found {
			t.Fatalf("best-effort coverage %v missing surviving shard %s", resp.Coverage.Searched, name)
		}
	}
}

// TestShardCorruptPyramidQuarantine: corrupting one shard's pyramid
// file on disk must not block siblings — the sick shard quarantines the
// damaged bytes, rebuilds shard-locally (with the operational log
// line), and every shard keeps answering bit-identically.
func TestShardCorruptPyramidQuarantine(t *testing.T) {
	ds := dataset.Random(50, 100, 99)
	f := agg.MustNew(ds.Schema,
		agg.Spec{Kind: agg.Distribution, Attr: "cat"},
		agg.Spec{Kind: agg.Sum, Attr: "val"},
	)
	q := asrs.Query{F: f, Target: []float64{1, 2, 1, 5}}
	base := filepath.Join(t.TempDir(), "pyr")
	cfg := shard.Config{
		Shards:      2,
		Composites:  map[string]*asrs.Composite{"q": f},
		Names:       []string{"q"},
		PyramidBase: base,
	}
	cat, err := shard.New(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.WarmAll(); err != nil {
		t.Fatal(err)
	}
	cut := cat.Cuts()[0]
	e0 := asrs.Rect{MinX: 0, MinY: 0, MaxX: cut, MaxY: 100}
	e1 := asrs.Rect{MinX: cut, MinY: 0, MaxX: 100, MaxY: 100}
	rt := shard.NewRouter(cat, shard.RouterOptions{})
	var want [2]float64
	for i, e := range []asrs.Rect{e0, e1} {
		ext := e
		resp := rt.Query(context.Background(), shard.Request{Query: q, A: 7, B: 7, Extent: &ext})
		if resp.Err != nil {
			t.Fatal(resp.Err)
		}
		want[i] = resp.Results[0].Dist
	}
	if err := cat.Close(); err != nil {
		t.Fatal(err)
	}

	// Bit-rot shard-0's pyramid mid-file.
	p0 := shard.PyramidPath(base, "shard-0", 0, "q")
	raw, err := os.ReadFile(p0)
	if err != nil {
		t.Fatal(err)
	}
	for i := len(raw) / 2; i < len(raw)/2+8 && i < len(raw); i++ {
		raw[i] ^= 0xFF
	}
	if err := os.WriteFile(p0, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var logs []string
	cfg.Logf = func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		logs = append(logs, fmt.Sprintf(format, args...))
	}
	cat2, err := shard.New(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cat2.Close()
	rt2 := shard.NewRouter(cat2, shard.RouterOptions{})

	// The healthy sibling loads and answers first — the corrupt shard
	// must not be in its path at all.
	ext := e1
	resp := rt2.Query(context.Background(), shard.Request{Query: q, A: 7, B: 7, Extent: &ext})
	if resp.Err != nil {
		t.Fatalf("healthy sibling blocked by corrupt shard-0 pyramid: %v", resp.Err)
	}
	if math.Float64bits(resp.Results[0].Dist) != math.Float64bits(want[1]) {
		t.Fatalf("sibling answer drifted: %v vs %v", resp.Results[0].Dist, want[1])
	}
	mu.Lock()
	quarantined := strings.Contains(strings.Join(logs, "\n"), "quarantined and rebuilt")
	mu.Unlock()
	if quarantined {
		t.Fatal("quarantine fired before the corrupt shard was ever touched")
	}

	// The corrupt shard quarantines, rebuilds, and answers identically.
	ext = e0
	resp = rt2.Query(context.Background(), shard.Request{Query: q, A: 7, B: 7, Extent: &ext})
	if resp.Err != nil {
		t.Fatalf("corrupt shard did not recover: %v", resp.Err)
	}
	if math.Float64bits(resp.Results[0].Dist) != math.Float64bits(want[0]) {
		t.Fatalf("post-quarantine answer drifted: %v vs %v", resp.Results[0].Dist, want[0])
	}
	mu.Lock()
	joined := strings.Join(logs, "\n")
	mu.Unlock()
	if !strings.Contains(joined, "shard-0") || !strings.Contains(joined, "quarantined and rebuilt") {
		t.Fatalf("missing quarantine log line; got logs:\n%s", joined)
	}
	// The damaged bytes survive for postmortem.
	m, err := filepath.Glob(p0 + ".corrupt-*")
	if err != nil || len(m) == 0 {
		t.Fatalf("no quarantined artifact beside %s (err %v)", p0, err)
	}
}
