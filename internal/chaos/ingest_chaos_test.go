package chaos

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"asrs"
	"asrs/internal/dataset"
	"asrs/internal/faultinject"
	"asrs/internal/server"
)

// Ingest chaos: kill-and-replay schedules over the streaming-ingest
// fault domain (DESIGN.md §10). A "crash" is an engine abandoned
// without Close — its WAL file handles stay open, exactly like a
// SIGKILL'd process — followed by a fresh NewEngine over the same
// directory. The contract under every seeded schedule:
//
//   - every acknowledged insert survives recovery, and nothing that
//     was refused sneaks in (the recovered tail is exactly the acked
//     objects, bit for bit);
//   - post-recovery answers are bit-identical to an engine built over
//     seed ++ recovered from scratch, at any worker/batch/coalescing
//     configuration;
//   - every failure along the way is a typed error; the process never
//     dies.

// insertPool returns a pool of objects structurally valid for the
// chaos fixture's schema (POISyn's two numeric attributes).
func insertPool(n int, seed int64) []asrs.Object {
	return dataset.POISyn(n, seed).Objects
}

// objsBitsEqual asserts two object slices are identical: same length,
// same locations and attribute values to the bit.
func objsBitsEqual(t *testing.T, tag string, got, want []asrs.Object) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: recovered %d objects, want %d", tag, len(got), len(want))
	}
	for i := range got {
		g, w := &got[i], &want[i]
		if math.Float64bits(g.Loc.X) != math.Float64bits(w.Loc.X) ||
			math.Float64bits(g.Loc.Y) != math.Float64bits(w.Loc.Y) {
			t.Fatalf("%s: object %d location %v, want %v", tag, i, g.Loc, w.Loc)
		}
		if len(g.Values) != len(w.Values) {
			t.Fatalf("%s: object %d has %d values, want %d", tag, i, len(g.Values), len(w.Values))
		}
		for j := range g.Values {
			if g.Values[j].Cat != w.Values[j].Cat ||
				math.Float64bits(g.Values[j].Num) != math.Float64bits(w.Values[j].Num) {
				t.Fatalf("%s: object %d value %d = %+v, want %+v", tag, i, j, g.Values[j], w.Values[j])
			}
		}
	}
}

// tearWALTail simulates the torn write of a crash mid-append: it
// appends a partial frame header to the newest WAL segment. Replay
// must truncate it cleanly without losing any complete frame.
func tearWALTail(t *testing.T, dir string) {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no WAL segments to tear in %s (err %v)", dir, err)
	}
	f, err := os.OpenFile(segs[len(segs)-1], os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0x01}); err != nil {
		t.Fatal(err)
	}
}

// combinedDataset is the logical post-recovery corpus: seed ++ tail.
func combinedDataset(ds *asrs.Dataset, tail []asrs.Object) *asrs.Dataset {
	objs := make([]asrs.Object, 0, len(ds.Objects)+len(tail))
	objs = append(objs, ds.Objects...)
	objs = append(objs, tail...)
	return &asrs.Dataset{Schema: ds.Schema, Objects: objs}
}

// TestIngestKillAndReplaySeeds drives the full crash matrix under 8
// seeded fault schedules: injected append/sync failures (refused
// inserts), injected compaction failures (snapshot short writes,
// truncation errors — the crash-between-rename-and-truncate window),
// forced segment rotation (tiny SegmentBytes), and on odd seeds a torn
// tail written at the "kill" point. After each crash the engine
// recovers and must hold exactly the acked objects and answer
// bit-identically to a from-scratch rebuild — on even seeds at a
// second engine configuration (parallel grouped batches) too.
func TestIngestKillAndReplaySeeds(t *testing.T) {
	ds, _, reqs, _ := fixture(t)
	pool := insertPool(160, 901)

	ackedTotal, refused := 0, 0
	var appendFaults, compactFaults uint64
	for seed := int64(1); seed <= 8; seed++ {
		ing := asrs.IngestOptions{
			WALDir: t.TempDir(), Sync: asrs.SyncAlways,
			SegmentBytes: 512, CompactAt: -1,
		}
		eng, err := asrs.NewEngine(ds, asrs.EngineOptions{Ingest: ing})
		if err != nil {
			t.Fatal(err)
		}
		plan := faultinject.NewPlan(seed,
			faultinject.Spec{Point: "wal.append.write", Action: faultinject.ActShortWrite,
				MaxEvery: 1 << (2 + seed%3)},
			faultinject.Spec{Point: "wal.append.sync", Action: faultinject.ActError,
				MaxEvery: 1 << (3 + seed%3)},
			faultinject.Spec{Point: "compact.save", Action: faultinject.ActShortWrite, MaxEvery: 3},
			faultinject.Spec{Point: "compact.truncate", Action: faultinject.ActError, MaxEvery: 2},
		)
		faultinject.Activate(plan)
		rng := rand.New(rand.NewSource(seed * 7919))
		var acked []asrs.Object
		for i := 0; i < len(pool); {
			n := 1 + rng.Intn(8)
			if i+n > len(pool) {
				n = len(pool) - i
			}
			batch := pool[i : i+n]
			if err := eng.InsertBatch(batch); err != nil {
				refused++
				if !typedErr(err) {
					t.Fatalf("seed %d: untyped insert error %v", seed, err)
				}
			} else {
				acked = append(acked, batch...)
			}
			i += n
			if rng.Intn(3) == 0 {
				if cerr := eng.Compact(); cerr != nil && !typedErr(cerr) {
					t.Fatalf("seed %d: untyped compaction error %v", seed, cerr)
				}
			}
		}
		appendFaults += plan.FiredAt("wal.append.write") + plan.FiredAt("wal.append.sync")
		compactFaults += plan.FiredAt("compact.save") + plan.FiredAt("compact.truncate")
		faultinject.Deactivate()
		ackedTotal += len(acked)

		// Crash: abandon eng without Close. Odd seeds additionally tear
		// the active segment, as a kill mid-write would.
		if seed%2 == 1 {
			tearWALTail(t, ing.WALDir)
		}

		rec, err := asrs.NewEngine(ds, asrs.EngineOptions{Ingest: ing})
		if err != nil {
			t.Fatalf("seed %d: recovery failed: %v", seed, err)
		}
		got := rec.IngestedObjects()
		objsBitsEqual(t, "seed "+string(rune('0'+seed)), got, acked)

		oracle, err := asrs.NewEngine(combinedDataset(ds, got), asrs.EngineOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for i, req := range reqs {
			wr, rr := oracle.Query(req), rec.Query(req)
			if wr.Err != nil || rr.Err != nil {
				t.Fatalf("seed %d query %d: oracle err %v, recovered err %v", seed, i, wr.Err, rr.Err)
			}
			if math.Float64bits(rr.Results[0].Dist) != math.Float64bits(wr.Results[0].Dist) {
				t.Fatalf("seed %d query %d: recovered answer %v, rebuild oracle %v",
					seed, i, rr.Results[0].Dist, wr.Results[0].Dist)
			}
		}
		if err := rec.Close(); err != nil {
			t.Fatal(err)
		}

		// Even seeds: a second recovery at a different configuration
		// (parallel grouped batch path) answers identically too.
		if seed%2 == 0 {
			rec2, err := asrs.NewEngine(ds, asrs.EngineOptions{
				Ingest: ing, BatchParallelism: 2, Search: asrs.Options{Workers: 2},
			})
			if err != nil {
				t.Fatalf("seed %d: second recovery failed: %v", seed, err)
			}
			wantB, gotB := oracle.QueryBatch(reqs), rec2.QueryBatch(reqs)
			for i := range reqs {
				if wantB[i].Err != nil || gotB[i].Err != nil {
					t.Fatalf("seed %d batch %d: oracle err %v, recovered err %v",
						seed, i, wantB[i].Err, gotB[i].Err)
				}
				if math.Float64bits(gotB[i].Results[0].Dist) != math.Float64bits(wantB[i].Results[0].Dist) {
					t.Fatalf("seed %d batch %d: recovered answer %v, rebuild oracle %v",
						seed, i, gotB[i].Results[0].Dist, wantB[i].Results[0].Dist)
				}
			}
			if err := rec2.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
	// The schedule spread must produce acks, refusals, and both fault
	// families, or the matrix is asserting nothing.
	if ackedTotal == 0 || refused == 0 || appendFaults == 0 || compactFaults == 0 {
		t.Fatalf("degenerate ingest chaos run: %d acked, %d refused, %d append faults, %d compact faults",
			ackedTotal, refused, appendFaults, compactFaults)
	}
	t.Logf("ingest chaos: %d inserts acked and recovered, %d refused typed (append faults %d, compact faults %d)",
		ackedTotal, refused, appendFaults, compactFaults)
}

// TestIngestReplayFaultTyped: an IO fault during recovery surfaces as
// a typed NewEngine error (never a panic, never a silently short
// corpus), and the very next fault-free open recovers everything.
func TestIngestReplayFaultTyped(t *testing.T) {
	ds, _, _, _ := fixture(t)
	pool := insertPool(20, 902)
	ing := asrs.IngestOptions{WALDir: t.TempDir(), Sync: asrs.SyncAlways, CompactAt: -1}

	eng, err := asrs.NewEngine(ds, asrs.EngineOptions{Ingest: ing})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.InsertBatch(pool); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	faultinject.Activate(faultinject.NewPlan(1,
		faultinject.Spec{Point: "wal.replay.read", Action: faultinject.ActError, MaxEvery: 1}))
	_, rerr := asrs.NewEngine(ds, asrs.EngineOptions{Ingest: ing})
	fired := faultinject.Fired()
	faultinject.Deactivate()
	if fired == 0 {
		t.Fatal("replay read fault never fired")
	}
	if rerr == nil {
		t.Fatal("recovery succeeded under an injected replay fault")
	}
	if !errors.Is(rerr, faultinject.ErrInjected) {
		t.Fatalf("untyped recovery error %v", rerr)
	}

	rec, err := asrs.NewEngine(ds, asrs.EngineOptions{Ingest: ing})
	if err != nil {
		t.Fatalf("fault-free recovery failed: %v", err)
	}
	objsBitsEqual(t, "replay-retry", rec.IngestedObjects(), pool)
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestIngestServerKillAndRequery runs the serving-layer config of the
// crash matrix: objects ingested through POST /v1/insert, the server
// and engine abandoned without drain (the SIGKILL shape), then a fresh
// engine + coalescing server over the same WAL directory must answer
// POST /v1/query bit-identically to a from-scratch rebuild.
func TestIngestServerKillAndRequery(t *testing.T) {
	ds, f, reqs, _ := fixture(t)
	pool := insertPool(60, 903)
	ing := asrs.IngestOptions{WALDir: t.TempDir(), Sync: asrs.SyncAlways, SegmentBytes: 512, CompactAt: -1}

	eng, err := asrs.NewEngine(ds, asrs.EngineOptions{Ingest: ing})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{
		Engine:     eng,
		Composites: map[string]*asrs.Composite{"f2": f},
		Window:     2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())

	post := func(url string, body any) (*http.Response, []byte) {
		t.Helper()
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp, buf.Bytes()
	}

	// Ingest over the wire in batches; every ack is a durability promise.
	for i := 0; i < len(pool); i += 10 {
		batch := pool[i : i+10]
		wire := make([]server.InsertObject, len(batch))
		for j, o := range batch {
			wire[j] = server.InsertObject{X: o.Loc.X, Y: o.Loc.Y,
				Values: map[string]any{"rating": o.Values[0].Num, "visits": o.Values[1].Num}}
		}
		resp, body := post(ts.URL+"/v1/insert", server.Insert{Objects: wire})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("insert %d: status %d, body %s", i, resp.StatusCode, body)
		}
	}

	// "SIGKILL": close the listener and abandon server and engine —
	// no drain, no Compact, no Close.
	ts.Close()

	rec, err := asrs.NewEngine(ds, asrs.EngineOptions{Ingest: ing})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	objsBitsEqual(t, "server-recovery", rec.IngestedObjects(), pool)

	oracle, err := asrs.NewEngine(combinedDataset(ds, pool), asrs.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	srv2, err := server.New(server.Config{
		Engine:     rec,
		Composites: map[string]*asrs.Composite{"f2": f},
		Window:     2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()

	for i, req := range reqs {
		want := oracle.Query(req)
		if want.Err != nil {
			t.Fatal(want.Err)
		}
		excl := make([]server.Rect, len(req.Exclude))
		for j, r := range req.Exclude {
			excl[j] = server.RectWire(r)
		}
		wq := server.Query{Composite: "f2", A: req.A, B: req.B,
			Target: req.Query.Target, TopK: req.TopK, Exclude: excl}
		resp, body := post(ts2.URL+"/v1/query", wq)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d: status %d, body %s", i, resp.StatusCode, body)
		}
		var wr server.Response
		if err := json.Unmarshal(body, &wr); err != nil {
			t.Fatal(err)
		}
		if len(wr.Results) == 0 ||
			math.Float64bits(wr.Results[0].Dist) != math.Float64bits(want.Results[0].Dist) {
			t.Fatalf("query %d: served answer %+v, rebuild oracle %v", i, wr.Results, want.Results[0].Dist)
		}
	}
}

// TestIngestChaosConcurrent is the -race schedule: inserts, queries
// and compactions race under sparse seeded ingest faults. Contract:
// only typed errors, and after the faults lift, a final compaction,
// clean close and recovery hold exactly the acked objects and answer
// like a from-scratch rebuild.
func TestIngestChaosConcurrent(t *testing.T) {
	ds, _, reqs, _ := fixture(t)
	pool := insertPool(120, 904)
	ing := asrs.IngestOptions{WALDir: t.TempDir(), Sync: asrs.SyncNever, SegmentBytes: 1024, CompactAt: -1}
	eng, err := asrs.NewEngine(ds, asrs.EngineOptions{
		Ingest: ing, BatchParallelism: 2, Search: asrs.Options{Workers: 2},
	})
	if err != nil {
		t.Fatal(err)
	}

	plan := faultinject.NewPlan(42,
		faultinject.Spec{Point: "wal.append.write", Action: faultinject.ActShortWrite, MaxEvery: 16},
		faultinject.Spec{Point: "compact.save", Action: faultinject.ActShortWrite, MaxEvery: 4},
		faultinject.Spec{Point: "compact.truncate", Action: faultinject.ActError, MaxEvery: 3},
	)
	faultinject.Activate(plan)

	var wg sync.WaitGroup
	var acked []asrs.Object // owned by the inserter goroutine until Wait
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i+8 <= len(pool); i += 8 {
			batch := pool[i : i+8]
			if err := eng.InsertBatch(batch); err != nil {
				if !typedErr(err) {
					t.Errorf("untyped concurrent insert error %v", err)
					return
				}
				continue
			}
			acked = append(acked, batch...)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			resp := eng.Query(reqs[i%len(reqs)])
			if resp.Err != nil && !typedErr(resp.Err) {
				t.Errorf("untyped concurrent query error %v", resp.Err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			for _, resp := range eng.QueryBatch(reqs[:3]) {
				if resp.Err != nil && !typedErr(resp.Err) {
					t.Errorf("untyped concurrent batch error %v", resp.Err)
					return
				}
			}
			if err := eng.Compact(); err != nil && !typedErr(err) {
				t.Errorf("untyped concurrent compaction error %v", err)
				return
			}
		}
	}()
	wg.Wait()
	fired := plan.Fired()
	faultinject.Deactivate()
	if t.Failed() {
		return
	}
	if fired == 0 {
		t.Fatal("degenerate concurrent schedule: no fault fired")
	}

	if err := eng.Compact(); err != nil {
		t.Fatalf("fault-free final compaction failed: %v", err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := asrs.NewEngine(ds, asrs.EngineOptions{Ingest: ing})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	objsBitsEqual(t, "concurrent-recovery", rec.IngestedObjects(), acked)
	oracle, err := asrs.NewEngine(combinedDataset(ds, acked), asrs.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, req := range reqs {
		wr, rr := oracle.Query(req), rec.Query(req)
		if wr.Err != nil || rr.Err != nil {
			t.Fatalf("query %d: oracle err %v, recovered err %v", i, wr.Err, rr.Err)
		}
		if math.Float64bits(rr.Results[0].Dist) != math.Float64bits(wr.Results[0].Dist) {
			t.Fatalf("query %d: recovered answer %v, rebuild oracle %v",
				i, rr.Results[0].Dist, wr.Results[0].Dist)
		}
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
}
