package dataset_test

import (
	"testing"

	"asrs/internal/attr"
	"asrs/internal/dataset"
)

func TestTweetDeterministicAndValid(t *testing.T) {
	a := dataset.Tweet(500, 42)
	b := dataset.Tweet(500, 42)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(a.Objects) != 500 {
		t.Fatalf("n = %d", len(a.Objects))
	}
	for i := range a.Objects {
		if a.Objects[i].Loc != b.Objects[i].Loc || a.Objects[i].Values[0] != b.Objects[i].Values[0] {
			t.Fatalf("object %d differs between runs with the same seed", i)
		}
	}
	c := dataset.Tweet(500, 43)
	same := true
	for i := range a.Objects {
		if a.Objects[i].Loc != c.Objects[i].Loc {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestTweetWithinBounds(t *testing.T) {
	ds := dataset.Tweet(1000, 7)
	bounds := dataset.USBounds()
	for i := range ds.Objects {
		if !bounds.ContainsClosed(ds.Objects[i].Loc) {
			t.Fatalf("object %d at %v outside US bounds", i, ds.Objects[i].Loc)
		}
		day := ds.Objects[i].Values[0].Cat
		if day < 0 || day > 6 {
			t.Fatalf("object %d has day %d", i, day)
		}
	}
}

func TestTweetHasWeekendSkewVariation(t *testing.T) {
	ds := dataset.Tweet(5000, 11)
	weekend := 0
	for i := range ds.Objects {
		if d := ds.Objects[i].Values[0].Cat; d >= 5 {
			weekend++
		}
	}
	frac := float64(weekend) / 5000
	// Clustered skew should push the weekend fraction away from exactly
	// 2/7 but keep it sane.
	if frac < 0.15 || frac > 0.85 {
		t.Fatalf("weekend fraction %g implausible", frac)
	}
}

func TestPOISynRanges(t *testing.T) {
	ds := dataset.POISyn(2000, 5)
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	ri := ds.Schema.Index("rating")
	vi := ds.Schema.Index("visits")
	for i := range ds.Objects {
		r := ds.Objects[i].Values[ri].Num
		v := ds.Objects[i].Values[vi].Num
		if r < 0 || r > 10 {
			t.Fatalf("rating %g out of [0,10]", r)
		}
		if v < 1 || v > 500 {
			t.Fatalf("visits %g out of [1,500]", v)
		}
	}
}

func TestSingaporePOI(t *testing.T) {
	ds := dataset.SingaporePOI(1)
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(ds.Objects) != dataset.SingaporePOICount {
		t.Fatalf("n = %d, want %d", len(ds.Objects), dataset.SingaporePOICount)
	}
	bounds := dataset.SingaporeBounds()
	for i := range ds.Objects {
		if !bounds.ContainsClosed(ds.Objects[i].Loc) {
			t.Fatalf("POI %d outside Singapore bounds", i)
		}
	}
	// Each named district must contain a sensible number of POIs.
	for _, d := range dataset.SingaporeDistricts() {
		count := 0
		for i := range ds.Objects {
			if d.Rect.ContainsClosed(ds.Objects[i].Loc) {
				count++
			}
		}
		if count < 300 {
			t.Fatalf("district %s has only %d POIs", d.Name, count)
		}
	}
}

func TestRandomDataset(t *testing.T) {
	ds := dataset.Random(100, 50, 3)
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(ds.Objects) != 100 {
		t.Fatal("n wrong")
	}
}

func TestF1Query(t *testing.T) {
	ds := dataset.Tweet(2000, 9)
	a, b := dataset.QueryUnit(dataset.USBounds())
	q, err := dataset.F1(ds, 10*a, 10*b)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Target) != 7 {
		t.Fatalf("F1 target dims %d", len(q.Target))
	}
	for d := 0; d < 5; d++ {
		if q.Target[d] != 0 {
			t.Fatalf("weekday target %d not zero", d)
		}
	}
	if q.Target[5] <= 0 || q.Target[6] <= 0 {
		t.Fatalf("weekend targets not positive: %v", q.Target)
	}
	if q.W[0] != 0.2 || q.W[5] != 0.5 {
		t.Fatalf("weights wrong: %v", q.W)
	}
}

func TestF2Query(t *testing.T) {
	ds := dataset.POISyn(2000, 10)
	a, b := dataset.QueryUnit(dataset.USBounds())
	q, err := dataset.F2(ds, 10*a, 10*b)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Target) != 2 {
		t.Fatalf("F2 dims %d", len(q.Target))
	}
	if q.Target[0] <= 0 || q.Target[1] != 10 {
		t.Fatalf("F2 target %v", q.Target)
	}
	if q.W[0] != 1/q.Target[0] || q.W[1] != 0.1 {
		t.Fatalf("F2 weights %v", q.W)
	}
}

func TestMaxWindowStat(t *testing.T) {
	ds := dataset.Random(200, 100, 12)
	got := dataset.MaxWindowStat(ds, 10, 10, func(o *attr.Object) float64 { return 1 })
	if got <= 0 || got > 200 {
		t.Fatalf("MaxWindowStat = %g", got)
	}
	empty := &attr.Dataset{Schema: ds.Schema}
	if v := dataset.MaxWindowStat(empty, 10, 10, func(o *attr.Object) float64 { return 1 }); v != 0 {
		t.Fatalf("empty MaxWindowStat = %g", v)
	}
}

func TestQueryUnit(t *testing.T) {
	a, b := dataset.QueryUnit(dataset.USBounds())
	if a <= 0 || b <= 0 {
		t.Fatal("unit size not positive")
	}
}
