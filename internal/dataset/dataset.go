// Package dataset generates the synthetic workloads of the experimental
// study (paper §7.1) and the Singapore case-study corpus (§7.6).
//
// The paper's real dataset is a proprietary crawl of 3.2×10⁸ geo-tagged
// U.S. tweets (June 2014 – December 2016). We cannot redistribute it, so
// Tweet generates a synthetic corpus with the same schema and spatial
// statistics: the same lat/lon extent, heavy clustering around population
// centers, and a day-of-week attribute whose weekday/weekend skew varies
// by location (so that "weekend regions" exist for composite aggregator
// F1 to find). POISyn mirrors the paper's derivation: a rating in [0,10]
// (the paper scales tweet text length; we draw from the equivalent
// distribution directly) and a visit count uniform in [1,500]. All
// generators are deterministic in their seed.
package dataset

import (
	"math"
	"math/rand"

	"asrs/internal/attr"
	"asrs/internal/geom"
)

// US bounding box of the paper's Tweet dataset (§7.1).
const (
	USMinLat = 24.39
	USMaxLat = 49.39
	USMinLon = -124.87
	USMaxLon = -66.86
)

// USBounds is the spatial extent of the synthetic Tweet corpus.
func USBounds() geom.Rect {
	return geom.Rect{MinX: USMinLon, MinY: USMinLat, MaxX: USMaxLon, MaxY: USMaxLat}
}

// DayNames is dom(day of the week); index 5 and 6 are the weekend.
var DayNames = []string{"Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"}

// TweetSchema returns the schema of the synthetic Tweet corpus: a single
// categorical attribute "day" with |dom| = 7.
func TweetSchema() *attr.Schema {
	return attr.MustSchema(attr.Attribute{Name: "day", Kind: attr.Categorical, Domain: DayNames})
}

// POISynSchema returns the schema of POISyn: numeric "rating" ∈ [0,10] and
// numeric "visits" ∈ [1,500].
func POISynSchema() *attr.Schema {
	return attr.MustSchema(
		attr.Attribute{Name: "rating", Kind: attr.Numeric},
		attr.Attribute{Name: "visits", Kind: attr.Numeric},
	)
}

// cluster is one synthetic population center.
type cluster struct {
	center  geom.Point
	sigma   float64
	weekend float64 // probability that a tweet here is posted on a weekend
}

// makeClusters places k population centers uniformly in bounds with
// varying spread and weekend skew.
func makeClusters(rng *rand.Rand, bounds geom.Rect, k int) []cluster {
	cs := make([]cluster, k)
	for i := range cs {
		cs[i] = cluster{
			center: geom.Point{
				X: bounds.MinX + rng.Float64()*bounds.Width(),
				Y: bounds.MinY + rng.Float64()*bounds.Height(),
			},
			sigma:   0.002*bounds.Width() + rng.Float64()*0.01*bounds.Width(),
			weekend: 0.1 + 0.8*rng.Float64(), // some clusters are weekend hotspots
		}
	}
	return cs
}

// locations draws n points: clusterFrac of them from Gaussian clusters,
// the rest uniform over bounds. Points are clamped to bounds.
func locations(rng *rand.Rand, bounds geom.Rect, n int, clusters []cluster, clusterFrac float64) ([]geom.Point, []int) {
	pts := make([]geom.Point, n)
	cidx := make([]int, n)
	for i := 0; i < n; i++ {
		if rng.Float64() < clusterFrac && len(clusters) > 0 {
			c := rng.Intn(len(clusters))
			cidx[i] = c
			pts[i] = geom.Point{
				X: clamp(clusters[c].center.X+rng.NormFloat64()*clusters[c].sigma, bounds.MinX, bounds.MaxX),
				Y: clamp(clusters[c].center.Y+rng.NormFloat64()*clusters[c].sigma, bounds.MinY, bounds.MaxY),
			}
		} else {
			cidx[i] = -1
			pts[i] = geom.Point{
				X: bounds.MinX + rng.Float64()*bounds.Width(),
				Y: bounds.MinY + rng.Float64()*bounds.Height(),
			}
		}
	}
	return pts, cidx
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Tweet generates n synthetic geo-tagged tweets. Weekday assignment
// follows the cluster's weekend skew (background tweets use the uniform
// 2/7 weekend rate), giving F1 genuine weekend-correlated regions to find.
func Tweet(n int, seed int64) *attr.Dataset {
	rng := rand.New(rand.NewSource(seed))
	bounds := USBounds()
	clusters := makeClusters(rng, bounds, 40)
	pts, cidx := locations(rng, bounds, n, clusters, 0.7)
	schema := TweetSchema()
	objs := make([]attr.Object, n)
	for i := 0; i < n; i++ {
		weekendP := 2.0 / 7.0
		if cidx[i] >= 0 {
			weekendP = clusters[cidx[i]].weekend
		}
		var day int
		if rng.Float64() < weekendP {
			day = 5 + rng.Intn(2) // Sat or Sun
		} else {
			day = rng.Intn(5)
		}
		objs[i] = attr.Object{Loc: pts[i], Values: []attr.Value{attr.CatValue(day)}}
	}
	return &attr.Dataset{Schema: schema, Objects: objs}
}

// POISyn generates n synthetic POIs per §7.1: one POI per tweet location,
// rating = |tweet|/max|tweet|·10 (we draw the normalized length from a
// Beta-like distribution concentrated below 0.5, matching short tweets),
// visits uniform in [1,500].
//
// A handful of "destination" clusters carry both near-maximal visit
// volume and high ratings. This gives composite aggregator F2 the
// structure its target (v_max, 10) presumes: the paper's real POI data
// evidently contains regions that are simultaneously heavily visited and
// highly rated (its F2 runtimes require a well-separated optimum — with
// a uniformly mediocre best region, every Equation 1 bound sits within
// the pruning margin and any branch-and-bound search degenerates).
func POISyn(n int, seed int64) *attr.Dataset {
	rng := rand.New(rand.NewSource(seed))
	bounds := USBounds()
	clusters := makeClusters(rng, bounds, 40)
	pts, cidx := locations(rng, bounds, n, clusters, 0.7)
	schema := POISynSchema()
	objs := make([]attr.Object, n)
	for i := 0; i < n; i++ {
		// Normalized tweet length: clusters skew longer (higher rating).
		base := rng.Float64() * rng.Float64() // concentrated near 0
		visits := 1 + rng.Float64()*499
		if cidx[i] >= 0 {
			c := clusters[cidx[i]]
			if c.weekend > 0.75 {
				// Destination cluster: long reviews (rating 8.5–10) and
				// heavy, capped visit volume.
				base = 1 - (1-base)*0.15
				visits = clamp(visits*3, 1, 500)
			} else if c.weekend > 0.5 {
				base = 1 - (1-base)*0.6
			}
		}
		rating := base * 10
		objs[i] = attr.Object{Loc: pts[i], Values: []attr.Value{attr.NumValue(rating), attr.NumValue(visits)}}
	}
	return &attr.Dataset{Schema: schema, Objects: objs}
}

// POIQuant is POISyn with both numeric attributes snapped to dyadic
// grids: ratings to quarter-point steps (half-star review scales) and
// visit counts to half steps. Real-world numeric attributes frequently
// live on such binary-fraction grids (half/quarter steps, float32-
// sourced feeds), and they are exactly the values the fixed-point
// channel certificate (dssearch DESIGN.md §2) accepts — this is the
// benchmark workload for the real-valued composite fast path.
func POIQuant(n int, seed int64) *attr.Dataset {
	ds := POISyn(n, seed)
	for i := range ds.Objects {
		o := &ds.Objects[i]
		o.Values[0] = attr.NumValue(math.Round(o.Values[0].Num/0.25) * 0.25)
		o.Values[1] = attr.NumValue(math.Round(o.Values[1].Num/0.5) * 0.5)
	}
	return ds
}

// Random generates a small generic dataset for property-based tests: m
// uniform points in [0,extent]² with one categorical attribute "cat"
// (3 values) and one numeric attribute "val" in [-10, 10].
func Random(m int, extent float64, seed int64) *attr.Dataset {
	rng := rand.New(rand.NewSource(seed))
	schema := attr.MustSchema(
		attr.Attribute{Name: "cat", Kind: attr.Categorical, Domain: []string{"a", "b", "c"}},
		attr.Attribute{Name: "val", Kind: attr.Numeric},
	)
	objs := make([]attr.Object, m)
	for i := range objs {
		objs[i] = attr.Object{
			Loc: geom.Point{X: rng.Float64() * extent, Y: rng.Float64() * extent},
			Values: []attr.Value{
				attr.CatValue(rng.Intn(3)),
				attr.NumValue(rng.Float64()*20 - 10),
			},
		}
	}
	return &attr.Dataset{Schema: schema, Objects: objs}
}

// QueryUnit returns the paper's unit query extent q = (W/1000) × (H/1000)
// for a dataset extent (§7.1 "Query Rectangle Size"); k·q scales both
// sides by k.
func QueryUnit(bounds geom.Rect) (a, b float64) {
	return bounds.Width() / 1000, bounds.Height() / 1000
}
