package dataset

import (
	"asrs/internal/agg"
	"asrs/internal/asp"
	"asrs/internal/attr"
	"asrs/internal/dssearch"
	"asrs/internal/maxrs"
)

// This file constructs the two composite-aggregator workloads of the
// experimental study (paper §7.1).
//
// Composite Aggregator 1 (Tweet): F1 = ((fD, day, γ_all)) with target
// (0,0,0,0,0,T6,T7) where T6/T7 are the largest Saturday/Sunday counts any
// query-sized region can hold, and weights (1/5,…,1/5,1/2,1/2) — a region
// scores well when weekend tweets are many and weekday tweets few.
//
// Composite Aggregator 2 (POISyn): F2 = ((fS, visits, γ_all),
// (fA, rating, γ_all)) with target (v_max, 10) and weights (1/v_max,
// 1/10) — a region scores well when heavily visited and highly rated.

// maxRegionStat computes the exact "maximum total of stat(o) any a×b
// region can have" — the T6/T7 and v_max constants of §7.1 — as a MaxRS
// instance (this is precisely the quantity MaxRS optimizes). Objects with
// stat 0 are dropped first.
func maxRegionStat(ds *attr.Dataset, a, b float64, stat func(o *attr.Object) float64) (float64, error) {
	pts := make([]maxrs.Point, 0, len(ds.Objects))
	for i := range ds.Objects {
		if w := stat(&ds.Objects[i]); w > 0 {
			pts = append(pts, maxrs.Point{Loc: ds.Objects[i].Loc, Weight: w})
		}
	}
	if len(pts) == 0 {
		return 0, nil
	}
	res, _, err := maxrs.DS(pts, a, b, dssearch.Options{})
	if err != nil {
		return 0, err
	}
	return res.Weight, nil
}

// F1 builds Composite Aggregator 1 for a Tweet dataset, with the target
// tuned to the query extent (a, b). T6/T7 — "the maximum number of tweets
// on Saturday (Sunday) that a region can have" — are computed exactly via
// MaxRS, as the paper defines them.
func F1(ds *attr.Dataset, a, b float64) (asp.Query, error) {
	f, err := agg.New(ds.Schema, agg.Spec{Kind: agg.Distribution, Attr: "day"})
	if err != nil {
		return asp.Query{}, err
	}
	dayIdx := ds.Schema.Index("day")
	t6, err := maxRegionStat(ds, a, b, func(o *attr.Object) float64 {
		if o.Values[dayIdx].Cat == 5 {
			return 1
		}
		return 0
	})
	if err != nil {
		return asp.Query{}, err
	}
	t7, err := maxRegionStat(ds, a, b, func(o *attr.Object) float64 {
		if o.Values[dayIdx].Cat == 6 {
			return 1
		}
		return 0
	})
	if err != nil {
		return asp.Query{}, err
	}
	q := asp.Query{
		F:      f,
		Target: []float64{0, 0, 0, 0, 0, t6, t7},
		W:      []float64{1.0 / 5, 1.0 / 5, 1.0 / 5, 1.0 / 5, 1.0 / 5, 1.0 / 2, 1.0 / 2},
	}
	return q, q.Validate()
}

// F2 builds Composite Aggregator 2 for a POISyn dataset with target
// (v_max, 10) and weights (1/v_max, 1/10).
func F2(ds *attr.Dataset, a, b float64) (asp.Query, error) {
	f, err := agg.New(ds.Schema,
		agg.Spec{Kind: agg.Sum, Attr: "visits"},
		agg.Spec{Kind: agg.Average, Attr: "rating"},
	)
	if err != nil {
		return asp.Query{}, err
	}
	visitsIdx := ds.Schema.Index("visits")
	vmax, err := maxRegionStat(ds, a, b, func(o *attr.Object) float64 { return o.Values[visitsIdx].Num })
	if err != nil {
		return asp.Query{}, err
	}
	if vmax <= 0 {
		vmax = 1
	}
	q := asp.Query{
		F:      f,
		Target: []float64{vmax, 10},
		W:      []float64{1 / vmax, 1.0 / 10},
	}
	return q, q.Validate()
}

// MaxWindowStat estimates the maximum total of stat(o) over any a×b
// window by binning objects into a grid of roughly window-sized cells and
// sliding a 2×2 block; the true maximum over a window is at most the
// returned 2×2 block sum for some alignment, making this a cheap,
// deterministic upper-flavored estimate suitable for target tuning.
func MaxWindowStat(ds *attr.Dataset, a, b float64, stat func(o *attr.Object) float64) float64 {
	bounds := ds.Bounds()
	if bounds.IsEmpty() || len(ds.Objects) == 0 {
		return 0
	}
	nx := int(bounds.Width()/a) + 1
	ny := int(bounds.Height()/b) + 1
	const maxCells = 1 << 20
	if nx*ny > maxCells {
		scale := float64(nx*ny) / maxCells
		nx = int(float64(nx) / scale)
		ny = int(float64(ny) / scale)
		if nx < 1 {
			nx = 1
		}
		if ny < 1 {
			ny = 1
		}
	}
	cw := bounds.Width() / float64(nx)
	ch := bounds.Height() / float64(ny)
	grid := make([]float64, nx*ny)
	for i := range ds.Objects {
		o := &ds.Objects[i]
		cx := int((o.Loc.X - bounds.MinX) / cw)
		cy := int((o.Loc.Y - bounds.MinY) / ch)
		if cx >= nx {
			cx = nx - 1
		}
		if cy >= ny {
			cy = ny - 1
		}
		grid[cy*nx+cx] += stat(o)
	}
	var best float64
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			var s float64
			for dy := 0; dy < 2 && y+dy < ny; dy++ {
				for dx := 0; dx < 2 && x+dx < nx; dx++ {
					s += grid[(y+dy)*nx+x+dx]
				}
			}
			if s > best {
				best = s
			}
		}
	}
	return best
}
