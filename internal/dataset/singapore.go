package dataset

import (
	"math/rand"

	"asrs/internal/attr"
	"asrs/internal/geom"
)

// The Singapore case study (paper §7.6) runs DS-Search over 4,556
// Foursquare POIs with F = ((fD, Category, γ_all)). The Foursquare corpus
// is not redistributable, so SingaporePOI synthesizes a corpus with the
// published structure: "Orchard" and "Marina Bay" are shopping/nightlife
// epicenters with near-identical category mixes, while "Bugis" matches
// them on Food and Transport but diverges on Nightlife Spot and
// Arts & Entertainment — exactly the contrast Fig 14(b) visualizes.

// SingaporePOICount matches the paper's corpus size.
const SingaporePOICount = 4556

// POICategories is dom(Category) for the case study, following the
// Foursquare top-level taxonomy the paper's Fig 14(b) uses.
var POICategories = []string{
	"Food",
	"Shop & Service",
	"Nightlife Spot",
	"Arts & Entertainment",
	"Travel & Transport",
	"Outdoors & Recreation",
	"Professional",
	"Residence",
	"College & Education",
}

// District is a named rectangular region of the case-study city.
type District struct {
	Name string
	Rect geom.Rect
	// mix is the category sampling distribution inside the district.
	mix []float64
	// count is the number of POIs generated inside the district.
	count int
}

// Singapore-like extent (lon 103.6–104.1, lat 1.15–1.48).
var sgBounds = geom.Rect{MinX: 103.60, MinY: 1.15, MaxX: 104.10, MaxY: 1.48}

// SingaporeBounds returns the case-study extent.
func SingaporeBounds() geom.Rect { return sgBounds }

// mixes: Food, Shop, Nightlife, Arts, Transport, Outdoors, Professional,
// Residence, Education. Orchard and Marina Bay are intentionally close;
// Bugis matches on Food/Transport only.
var (
	orchardMix   = []float64{0.28, 0.34, 0.10, 0.08, 0.07, 0.03, 0.05, 0.03, 0.02}
	marinaBayMix = []float64{0.27, 0.32, 0.11, 0.09, 0.08, 0.04, 0.05, 0.02, 0.02}
	bugisMix     = []float64{0.29, 0.18, 0.02, 0.01, 0.08, 0.02, 0.10, 0.22, 0.08}
	cityMix      = []float64{0.22, 0.12, 0.03, 0.02, 0.09, 0.07, 0.12, 0.25, 0.08}
)

// SingaporeDistricts returns the three named districts of Fig 14(a).
// Coordinates approximate the real neighborhoods' positions.
func SingaporeDistricts() []District {
	return []District{
		{Name: "Orchard", Rect: geom.Rect{MinX: 103.827, MinY: 1.298, MaxX: 103.843, MaxY: 1.310}, mix: orchardMix, count: 420},
		{Name: "Marina Bay", Rect: geom.Rect{MinX: 103.850, MinY: 1.276, MaxX: 103.866, MaxY: 1.288}, mix: marinaBayMix, count: 410},
		{Name: "Bugis", Rect: geom.Rect{MinX: 103.850, MinY: 1.296, MaxX: 103.866, MaxY: 1.308}, mix: bugisMix, count: 400},
	}
}

// SingaporeSchema returns the case-study schema: one categorical
// "category" attribute.
func SingaporeSchema() *attr.Schema {
	return attr.MustSchema(attr.Attribute{Name: "category", Kind: attr.Categorical, Domain: POICategories})
}

// SingaporePOI generates the synthetic case-study corpus: POIs inside each
// district follow the district mix; the remainder scatter across the city
// with the background mix, lightly clustered.
func SingaporePOI(seed int64) *attr.Dataset {
	return SingaporeScaled(SingaporePOICount, seed)
}

// SingaporeScaled is SingaporePOI at an arbitrary cardinality: district
// populations scale proportionally, keeping the case study's geography
// and category contrasts. The batched-serving benchmark uses it to run
// overlapping Singapore extents over a corpus large enough that
// per-query setup costs matter.
func SingaporeScaled(n int, seed int64) *attr.Dataset {
	if n < 1 {
		n = 1
	}
	rng := rand.New(rand.NewSource(seed))
	schema := SingaporeSchema()
	districts := SingaporeDistricts()
	scale := float64(n) / float64(SingaporePOICount)
	for i := range districts {
		districts[i].count = int(float64(districts[i].count) * scale)
	}
	objs := make([]attr.Object, 0, n)

	sampleCat := func(mix []float64) int {
		u := rng.Float64()
		acc := 0.0
		for i, p := range mix {
			acc += p
			if u < acc {
				return i
			}
		}
		return len(mix) - 1
	}

	for _, d := range districts {
		for i := 0; i < d.count; i++ {
			objs = append(objs, attr.Object{
				Loc: geom.Point{
					X: d.Rect.MinX + rng.Float64()*d.Rect.Width(),
					Y: d.Rect.MinY + rng.Float64()*d.Rect.Height(),
				},
				Values: []attr.Value{attr.CatValue(sampleCat(d.mix))},
			})
		}
	}

	clusters := makeClusters(rng, sgBounds, 25)
	rest := n - len(objs)
	if rest < 0 {
		rest = 0
	}
	pts, _ := locations(rng, sgBounds, rest, clusters, 0.5)
	for _, p := range pts {
		objs = append(objs, attr.Object{Loc: p, Values: []attr.Value{attr.CatValue(sampleCat(cityMix))}})
	}
	return &attr.Dataset{Schema: schema, Objects: objs}
}
