package query

import (
	"context"

	"asrs"
	"asrs/internal/shard"
	"asrs/internal/wire"
)

// Binding is the executor's view of a serving backend. The frontend
// sits above both the single engine and the shard router unchanged:
// each round of the lazy executor is one Binding.Query call, and the
// binding decides how it runs (engine dispatch or scatter–gather).
type Binding interface {
	// Query answers one engine-shaped request. Coverage is nil on
	// unsharded backends.
	Query(ctx context.Context, req asrs.QueryRequest) (asrs.QueryResponse, *wire.Coverage)
	// Dataset is the current epoch's logical corpus — the snapshot
	// region targets and post-filters are represented against.
	Dataset() *asrs.Dataset
	// SearchOptions are the backend's serving defaults (the base for
	// δ pinning and MaxRS execution).
	SearchOptions() asrs.Options
	// Routed reports whether answers come from a shard router (EXPLAIN
	// surfaces it).
	Routed() bool
}

// EngineBinding serves plans from a single asrs.Engine.
type EngineBinding struct {
	E *asrs.Engine
}

// Query implements Binding.
func (b EngineBinding) Query(ctx context.Context, req asrs.QueryRequest) (asrs.QueryResponse, *wire.Coverage) {
	return b.E.QueryCtx(ctx, req), nil
}

// Dataset implements Binding.
func (b EngineBinding) Dataset() *asrs.Dataset { return b.E.CurrentDataset() }

// SearchOptions implements Binding.
func (b EngineBinding) SearchOptions() asrs.Options { return b.E.SearchOptions() }

// Routed implements Binding.
func (b EngineBinding) Routed() bool { return false }

// RouterBinding serves plans from the PR-9 shard router: each round
// scatter–gathers per the request's extent under the binding's partial
// policy.
type RouterBinding struct {
	R *shard.Router
	// Policy is the partial-result policy for every round (zero value =
	// the router's Strict default).
	Policy shard.PartialPolicy
}

// Query implements Binding.
func (b RouterBinding) Query(ctx context.Context, req asrs.QueryRequest) (asrs.QueryResponse, *wire.Coverage) {
	resp := b.R.Query(ctx, shard.Request{
		Query:   req.Query,
		A:       req.A,
		B:       req.B,
		TopK:    req.TopK,
		Exclude: req.Exclude,
		Extent:  req.Within,
		Policy:  b.Policy,
		Options: req.Options,
	})
	cov := &wire.Coverage{Shards: resp.Coverage.Shards, Searched: resp.Coverage.Searched}
	for _, sk := range resp.Coverage.Skipped {
		cov.Skipped = append(cov.Skipped, wire.SkippedShard{Shard: sk.Shard, Reason: sk.Reason})
	}
	return asrs.QueryResponse{Regions: resp.Regions, Results: resp.Results, Err: resp.Err}, cov
}

// Dataset implements Binding.
func (b RouterBinding) Dataset() *asrs.Dataset { return b.R.Catalog().CurrentDataset() }

// SearchOptions implements Binding.
func (b RouterBinding) SearchOptions() asrs.Options { return b.R.Catalog().SearchOptions() }

// Routed implements Binding.
func (b RouterBinding) Routed() bool { return true }
