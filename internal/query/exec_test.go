package query_test

import (
	"context"
	"testing"

	"asrs"
	"asrs/internal/dataset"
	"asrs/internal/query"
	"asrs/internal/wire"
)

// countingBinding wraps a Binding and counts backend rounds.
type countingBinding struct {
	query.Binding
	calls int
}

func (b *countingBinding) Query(ctx context.Context, req asrs.QueryRequest) (asrs.QueryResponse, *wire.Coverage) {
	b.calls++
	return b.Binding.Query(ctx, req)
}

// TestStreamLaziness: a top-k stream spends exactly one backend round
// per Next — the first answer costs one round, not k.
func TestStreamLaziness(t *testing.T) {
	ds, _ := corpus(t, 60, 5)
	eng, err := asrs.NewEngine(ds, asrs.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p := query.NewPlanner(ds.Schema, nil)
	pl, err := p.ParseAndPlan(`find top 4 size 6 x 6 similar to target(1,2,1,5) under dist(cat) + sum(val)`)
	if err != nil {
		t.Fatal(err)
	}
	b := &countingBinding{Binding: query.EngineBinding{E: eng}}
	st, err := query.Exec(context.Background(), pl, b)
	if err != nil {
		t.Fatal(err)
	}
	if b.calls != 0 {
		t.Fatalf("Exec issued %d rounds before the first Next", b.calls)
	}
	if _, ok := st.Next(); !ok {
		t.Fatal("first Next returned no row")
	}
	if b.calls != 1 {
		t.Fatalf("first answer cost %d rounds, want exactly 1", b.calls)
	}
	for i := 2; i <= 4; i++ {
		if _, ok := st.Next(); !ok {
			t.Fatalf("Next %d returned no row", i)
		}
		if b.calls != i {
			t.Fatalf("answer %d cost %d cumulative rounds, want %d", i, b.calls, i)
		}
	}
	if _, ok := st.Next(); ok {
		t.Fatal("stream emitted more than top k rows")
	}
	if b.calls != 4 {
		t.Fatalf("exhausted stream spent %d rounds, want 4 (no extra probe round)", b.calls)
	}
}

// TestStreamFilters: dissimilar and diverse post-filters match a manual
// oracle that applies the same predicates to the one-shot greedy
// candidate sequence.
func TestStreamFilters(t *testing.T) {
	ds, f := corpus(t, 80, 23)
	eng, err := asrs.NewEngine(ds, asrs.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p := query.NewPlanner(ds.Schema, nil)
	const by = 0.8
	pl, err := p.ParseAndPlan(`find top 3 size 6 x 6 similar to target(1,2,1,5) under dist(cat) + sum(val) and dissimilar to target(2,0,1,-3) under dist(cat) + sum(val) by 0.8 scan 12`)
	if err != nil {
		t.Fatal(err)
	}
	st, err := query.Exec(context.Background(), pl, query.EngineBinding{E: eng})
	if err != nil {
		t.Fatal(err)
	}
	regions, results, err := st.Collect()
	if err != nil {
		t.Fatal(err)
	}

	// Oracle: the scan-cap-long greedy candidate sequence, hand-filtered.
	q, err := asrs.QueryFromTarget(f, []float64{1, 2, 1, 5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp := eng.QueryCtx(context.Background(), asrs.QueryRequest{Query: q, A: 6, B: 6, TopK: 12})
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	away := []float64{2, 0, 1, -3}
	var wantRegions []asrs.Rect
	var wantResults []asrs.Result
	for i := range resp.Regions {
		if len(wantRegions) == 3 {
			break
		}
		rep := asrs.Represent(ds, f, resp.Regions[i])
		if !(asrs.Distance(asrs.L1, rep, away, nil) >= by) {
			continue
		}
		wantRegions = append(wantRegions, resp.Regions[i])
		wantResults = append(wantResults, resp.Results[i])
	}
	if len(wantRegions) == 0 || len(wantRegions) == len(resp.Regions) {
		t.Fatalf("degenerate oracle: filter kept %d of %d candidates (tune the test's by)", len(wantRegions), len(resp.Regions))
	}
	if len(regions) != len(wantRegions) {
		t.Fatalf("stream emitted %d rows, oracle kept %d", len(regions), len(wantRegions))
	}
	for i := range regions {
		if !sameRect(regions[i], wantRegions[i]) {
			t.Errorf("region %d: stream %+v != oracle %+v", i, regions[i], wantRegions[i])
		}
		if !sameBits(results[i].Dist, wantResults[i].Dist) {
			t.Errorf("dist %d: stream %v != oracle %v", i, results[i].Dist, wantResults[i].Dist)
		}
	}
}

// TestStreamDiverse: the diversity chain rejects candidates whose
// representation sits within diverse-by of any accepted answer.
func TestStreamDiverse(t *testing.T) {
	ds, f := corpus(t, 80, 41)
	eng, err := asrs.NewEngine(ds, asrs.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p := query.NewPlanner(ds.Schema, nil)
	const by = 1.5
	pl, err := p.ParseAndPlan(`find top 3 size 6 x 6 similar to target(1,2,1,5) under dist(cat) + sum(val) diverse by 1.5 scan 16`)
	if err != nil {
		t.Fatal(err)
	}
	st, err := query.Exec(context.Background(), pl, query.EngineBinding{E: eng})
	if err != nil {
		t.Fatal(err)
	}
	regions, results, err := st.Collect()
	if err != nil {
		t.Fatal(err)
	}

	q, err := asrs.QueryFromTarget(f, []float64{1, 2, 1, 5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp := eng.QueryCtx(context.Background(), asrs.QueryRequest{Query: q, A: 6, B: 6, TopK: 16})
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	var wantRegions []asrs.Rect
	var accepted [][]float64
	for i := range resp.Regions {
		if len(wantRegions) == 3 {
			break
		}
		ok := true
		for _, prior := range accepted {
			if !(asrs.Distance(asrs.L1, resp.Results[i].Rep, prior, nil) >= by) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		wantRegions = append(wantRegions, resp.Regions[i])
		accepted = append(accepted, resp.Results[i].Rep)
	}
	if len(regions) != len(wantRegions) {
		t.Fatalf("stream emitted %d rows, oracle kept %d", len(regions), len(wantRegions))
	}
	for i := range regions {
		if !sameRect(regions[i], wantRegions[i]) {
			t.Errorf("region %d: stream %+v != oracle %+v", i, regions[i], wantRegions[i])
		}
	}
	_ = results
}

// TestStreamWithinRunsDry: inside a tight extent the greedy sequence
// runs out of non-overlapping candidates; the stream must end cleanly
// with the same shortened answer list as the one-shot within search.
func TestStreamWithinRunsDry(t *testing.T) {
	ds, f := corpus(t, 40, 3)
	eng, err := asrs.NewEngine(ds, asrs.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p := query.NewPlanner(ds.Schema, nil)
	// Extent barely fits one 8x8 answer: later rounds must run dry.
	pl, err := p.ParseAndPlan(`find top 4 size 8 x 8 similar to target(1,2,1,5) under dist(cat) + sum(val) within region(10,10,19,19)`)
	if err != nil {
		t.Fatal(err)
	}
	q, err := asrs.QueryFromTarget(f, []float64{1, 2, 1, 5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	w := asrs.Rect{MinX: 10, MinY: 10, MaxX: 19, MaxY: 19}
	resp := eng.QueryCtx(context.Background(), asrs.QueryRequest{Query: q, A: 8, B: 8, TopK: 4, Within: &w})
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	if len(resp.Regions) >= 4 {
		t.Fatalf("expected the one-shot answer to run dry, got %d regions", len(resp.Regions))
	}
	checkStreamMatches(t, pl, query.EngineBinding{E: eng}, resp.Regions, resp.Results)
}

// TestStreamMaxRS: the aggregate form yields exactly one row matching
// the direct asrs.MaxRS answer.
func TestStreamMaxRS(t *testing.T) {
	ds := dataset.Random(50, 100, 11)
	eng, err := asrs.NewEngine(ds, asrs.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p := query.NewPlanner(ds.Schema, nil)
	pl, err := p.ParseAndPlan(`maximize sum(val) size 10 x 10`)
	if err != nil {
		t.Fatal(err)
	}
	st, err := query.Exec(context.Background(), pl, query.EngineBinding{E: eng})
	if err != nil {
		t.Fatal(err)
	}
	row, ok := st.Next()
	if !ok {
		t.Fatal(st.Err())
	}
	if _, again := st.Next(); again {
		t.Fatal("maximize stream emitted more than one row")
	}

	idx := ds.Schema.Index("val")
	pts := make([]asrs.MaxRSPoint, 0, len(ds.Objects))
	for i := range ds.Objects {
		pts = append(pts, asrs.MaxRSPoint{Loc: ds.Objects[i].Loc, Weight: ds.Objects[i].Values[idx].Num})
	}
	want, _, err := asrs.MaxRS(pts, 10, 10, asrs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sameRect(row.Region, want.Region) || !sameBits(row.Result.Dist, want.Weight) {
		t.Fatalf("maximize row %+v != direct MaxRS %+v", row, want)
	}
}

// TestExecRejectsExplain: explain plans report, they do not execute.
func TestExecRejectsExplain(t *testing.T) {
	ds, _ := corpus(t, 20, 1)
	eng, err := asrs.NewEngine(ds, asrs.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p := query.NewPlanner(ds.Schema, nil)
	pl, err := p.ParseAndPlan(`explain find size 5 x 5 similar to target(1,2,1,5) under dist(cat) + sum(val)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := query.Exec(context.Background(), pl, query.EngineBinding{E: eng}); err == nil {
		t.Fatal("Exec accepted an explain plan")
	}
}
