package query

import (
	"fmt"

	"asrs"
	"asrs/internal/dssearch"
)

// ExplainChannel describes one channel group of the compiled composite.
type ExplainChannel struct {
	// Atom is the canonical atom text ("dist(category)", "@poi").
	Atom string `json:"atom"`
	// Kind is the aggregate kind ("dist", "sum", "avg", "count") or
	// "composite" for a @name reference.
	Kind string `json:"kind"`
	// Attr is the attribute name (empty for bare count and @name).
	Attr string `json:"attr,omitempty"`
	// Dims is how many representation dimensions the atom spans.
	Dims int `json:"dims"`
	// Weight is the per-dimension distance weight (the coefficient).
	Weight float64 `json:"weight"`
}

// ExplainFill is the predicted aggregation fill path, from the
// fixed-point quantization certificate probe.
type ExplainFill struct {
	Path     string `json:"path"`
	Channels int    `json:"channels"`
	Plain    int    `json:"plain"`
	TwoFloat int    `json:"two_float"`
	Fallback int    `json:"fallback"`
}

// ExplainReport is the inspectable plan: what EXPLAIN returns instead
// of an answer. Stable field set — the golden tests pin its JSON form.
type ExplainReport struct {
	// Canonical is the canonical query text; semantically identical
	// queries share it (and through it the engine's dedup groups).
	Canonical string `json:"canonical"`
	// Form is "find" or "maximize".
	Form string `json:"form"`
	// Composite is the interned composite's identity: the canonical
	// spec key, or "@name" for a registered composite.
	Composite string           `json:"composite,omitempty"`
	Dims      int              `json:"dims,omitempty"`
	Channels  []ExplainChannel `json:"channels,omitempty"`
	Norm      string           `json:"norm,omitempty"`
	// Targets names each target part's source in clause order.
	Targets []string `json:"targets,omitempty"`
	A       float64  `json:"a"`
	B       float64  `json:"b"`
	TopK    int      `json:"top_k,omitempty"`
	// Excludes counts exclusion rectangles (explicit + example).
	Excludes int     `json:"excludes,omitempty"`
	Within   string  `json:"within,omitempty"`
	Delta    float64 `json:"delta,omitempty"`
	// Filters names the streamed post-filter chain in order.
	Filters   []string `json:"filters,omitempty"`
	DiverseBy float64  `json:"diverse_by,omitempty"`
	ScanCap   int      `json:"scan_cap,omitempty"`
	// Strategy is the execution shape: "single" (one exact solve),
	// "greedy-rounds" (lazy round-per-answer streaming, identical to
	// one-shot top-k), "greedy-rounds+filters", or "maxrs-sweep".
	Strategy string `json:"strategy"`
	// Route is "engine" or "router".
	Route string `json:"route"`
	// Fill is the certificate probe's path prediction (find form).
	Fill *ExplainFill `json:"fill,omitempty"`
}

// Report builds the EXPLAIN report for a plan against a dataset
// snapshot. routed selects the Route label; ds drives the certificate
// probe (nil skips it — the report then has no fill prediction).
func (pl *Plan) Report(ds *asrs.Dataset, routed bool) ExplainReport {
	rep := ExplainReport{Canonical: pl.Canonical, Route: "engine"}
	if routed {
		rep.Route = "router"
	}
	if pl.Max != nil {
		rep.Form = "maximize"
		rep.Strategy = "maxrs-sweep"
		rep.A, rep.B = pl.Max.A, pl.Max.B
		if pl.Max.Fn == "sum" {
			rep.Composite = "sum(" + pl.Max.Attr + ")"
		} else {
			rep.Composite = "count()"
		}
		return rep
	}
	rep.Form = "find"
	rep.Composite = pl.CompKey
	rep.Dims = pl.Comp.Dims()
	rep.Channels = pl.channels
	rep.Norm = normName(pl.Norm)
	for _, part := range pl.targets {
		rep.Targets = append(rep.Targets, part.canon)
	}
	rep.A, rep.B = pl.A, pl.B
	if pl.TopK > 1 {
		rep.TopK = pl.TopK
	}
	rep.Excludes = len(pl.Exclude) + len(pl.exampleExcludes)
	if pl.Within != nil {
		rep.Within = fmt.Sprintf("region(%s,%s,%s,%s)",
			num(pl.Within.MinX), num(pl.Within.MinY), num(pl.Within.MaxX), num(pl.Within.MaxY))
	}
	rep.Delta = pl.Delta
	for _, f := range pl.Filters {
		rep.Filters = append(rep.Filters, f.canon)
	}
	rep.DiverseBy = pl.DiverseBy
	rep.ScanCap = pl.ScanCap
	switch {
	case len(pl.Filters) > 0 || pl.DiverseBy > 0:
		rep.Strategy = "greedy-rounds+filters"
	case pl.K() > 1:
		rep.Strategy = "greedy-rounds"
	default:
		rep.Strategy = "single"
	}
	if ds != nil {
		probe := dssearch.ProbeCertificate(ds, pl.Comp)
		rep.Fill = &ExplainFill{
			Path:     probe.Path(),
			Channels: probe.Channels,
			Plain:    probe.Plain,
			TwoFloat: probe.TwoFloat,
			Fallback: probe.Fallback,
		}
	}
	return rep
}

func normName(n asrs.Norm) string {
	if n == asrs.L2 {
		return "l2"
	}
	return "l1"
}
