// Package query is the declarative frontend over the exact search
// primitives: a compact text language (DESIGN.md §12) parsed into an
// AST, type-checked and canonicalized by a planner into an executable
// plan over interned composites, and run by a lazy round-at-a-time
// executor that streams results over both asrs.Engine and the shard
// router. The standing obligation: every compiled plan is
// Float64bits-identical to the hand-wired struct request it denotes.
package query

import (
	"sort"
	"strconv"
	"strings"
)

// AST is the parsed form of one query. Field order mirrors the
// canonical rendering (see Canonical); zero values mean "clause
// absent".
type AST struct {
	// Explain asks for the plan instead of the answer.
	Explain bool
	// Maximize is the MaxRS aggregate form; nil selects the find form.
	Maximize *MaximizeClause
	// TopK is the number of answer regions (0 = 1).
	TopK int
	// A, B are the explicit answer size (0 = derive from the single
	// similar clause's example region).
	A, B float64
	// Similar are the similarity predicates; at least one is required
	// for the find form.
	Similar []SimilarClause
	// Dissimilar are the streamed dissimilarity post-filters.
	Dissimilar []DissimilarClause
	// DiverseBy is the representation-space diversity radius (0 = off).
	DiverseBy float64
	// ExcludeExample excludes every similar clause's example region.
	ExcludeExample bool
	// Exclude lists explicit exclusion rectangles.
	Exclude []Rect4
	// Within restricts answers to the closed extent.
	Within *Rect4
	// Norm is "", "l1" or "l2".
	Norm string
	// Delta selects the (1+δ)-approximate search (0 = exact).
	Delta float64
	// Scan caps the candidate rounds a filtered stream may spend
	// (0 = planner default).
	Scan int
	// TimeoutMS bounds the whole query (0 = server default).
	TimeoutMS int64
}

// MaximizeClause is the MaxRS form: maximize count()|sum(attr) size a x b.
type MaximizeClause struct {
	Fn   string // "count" or "sum"
	Attr string // sum only
	A, B float64
}

// SimilarClause is one "similar to <place> under <expr>" predicate.
type SimilarClause struct {
	Place Place
	Expr  Expr
}

// DissimilarClause is one "dissimilar to <place> under <expr> by <d>"
// post-filter: answers must sit at weighted distance ≥ By from the
// place's representation under the clause's composite.
type DissimilarClause struct {
	Place Place
	Expr  Expr
	By    float64
}

// Place is a query anchor: an example region or a literal target vector.
// Exactly one is set.
type Place struct {
	Region *Rect4
	Target []float64
}

// Rect4 is a parsed rectangle literal.
type Rect4 struct {
	MinX, MinY, MaxX, MaxY float64
}

// Expr is a weighted sum of channel atoms.
type Expr struct {
	Terms []Term
}

// Term is one coefficient·atom summand.
type Term struct {
	Coef float64 // 1 when unwritten
	Atom Atom
}

// Atom is one channel generator: dist(attr), sum(attr), avg(attr),
// count(), or a reference to a registered composite (@name).
type Atom struct {
	Fn    string // "dist", "sum", "avg", "count", "@"
	Attr  string // attribute name; composite name for "@"
	Where *Where
}

// Where is an atom's selection predicate.
type Where struct {
	Attr    string
	Eq      string // categorical equality value (IsRange false)
	IsRange bool
	Lo, Hi  float64
}

// num renders a float in the canonical shortest round-trip form.
func num(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func (r Rect4) canon() string {
	return "region(" + num(r.MinX) + "," + num(r.MinY) + "," + num(r.MaxX) + "," + num(r.MaxY) + ")"
}

func (p Place) canon() string {
	if p.Region != nil {
		return p.Region.canon()
	}
	parts := make([]string, len(p.Target))
	for i, v := range p.Target {
		parts[i] = num(v)
	}
	return "target(" + strings.Join(parts, ",") + ")"
}

func (w *Where) canon() string {
	if w == nil {
		return ""
	}
	if w.IsRange {
		return "where " + w.Attr + " in [" + num(w.Lo) + "," + num(w.Hi) + "]"
	}
	return "where " + w.Attr + " = " + quoteValue(w.Eq)
}

// quoteValue renders a categorical value with the lexer's own escape
// scheme (backslash before backslash or quote, everything else raw), so
// canonical text re-lexes to the identical value.
func quoteValue(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' || s[i] == '"' {
			b.WriteByte('\\')
		}
		b.WriteByte(s[i])
	}
	b.WriteByte('"')
	return b.String()
}

func (a Atom) canon() string {
	if a.Fn == "@" {
		return "@" + a.Attr
	}
	var inner string
	switch a.Fn {
	case "count":
		inner = ""
		if a.Where != nil {
			inner = a.Where.canon()
		}
	default:
		inner = a.Attr
		if a.Where != nil {
			inner += " " + a.Where.canon()
		}
	}
	return a.Fn + "(" + inner + ")"
}

func (t Term) canon() string {
	if t.Coef == 1 {
		return t.Atom.canon()
	}
	return num(t.Coef) + "*" + t.Atom.canon()
}

// canon renders the expression with its terms in canonical order. It
// does NOT merge duplicate atoms by summing coefficients: per-dimension
// weights apply before the norm, so w=[1,1] over a doubled channel and
// w=[2] over a single one disagree under L2.
func (e Expr) canon() string {
	terms := append([]Term(nil), e.Terms...)
	sort.SliceStable(terms, func(i, j int) bool {
		ai, aj := terms[i].Atom.canon(), terms[j].Atom.canon()
		if ai != aj {
			return ai < aj
		}
		return terms[i].Coef < terms[j].Coef
	})
	parts := make([]string, len(terms))
	for i, t := range terms {
		parts[i] = t.canon()
	}
	return strings.Join(parts, " + ")
}

func (c SimilarClause) canon() string {
	return "similar to " + c.Place.canon() + " under " + c.Expr.canon()
}

func (c DissimilarClause) canon() string {
	return "dissimilar to " + c.Place.canon() + " under " + c.Expr.canon() + " by " + num(c.By)
}

// Canonical renders the AST in the canonical text form: clause lists
// sorted, numbers in shortest round-trip notation, defaulted clauses
// omitted. Parsing the canonical text yields an AST whose Canonical is
// byte-identical (the fixed-point property the tests assert), and
// semantically identical queries written in different orders render
// identically — which is what lets them compile to byte-identical
// engine requests and hit the PR-4 dedup groups.
func (q *AST) Canonical() string {
	var b strings.Builder
	if q.Explain {
		b.WriteString("explain ")
	}
	if q.Maximize != nil {
		m := q.Maximize
		b.WriteString("maximize ")
		if m.Fn == "sum" {
			b.WriteString("sum(" + m.Attr + ")")
		} else {
			b.WriteString("count()")
		}
		b.WriteString(" size " + num(m.A) + " x " + num(m.B))
		if q.TimeoutMS > 0 {
			b.WriteString(" timeout " + strconv.FormatInt(q.TimeoutMS, 10))
		}
		return b.String()
	}
	b.WriteString("find")
	if q.TopK > 1 {
		b.WriteString(" top " + strconv.Itoa(q.TopK))
	}
	if q.A != 0 || q.B != 0 {
		b.WriteString(" size " + num(q.A) + " x " + num(q.B))
	}
	sims := make([]string, len(q.Similar))
	for i, c := range q.Similar {
		sims[i] = c.canon()
	}
	sort.Strings(sims)
	for _, s := range sims {
		b.WriteString(" " + s)
	}
	diss := make([]string, len(q.Dissimilar))
	for i, c := range q.Dissimilar {
		diss[i] = c.canon()
	}
	sort.Strings(diss)
	for _, s := range diss {
		b.WriteString(" and " + s)
	}
	if q.DiverseBy > 0 {
		b.WriteString(" diverse by " + num(q.DiverseBy))
	}
	if q.ExcludeExample {
		b.WriteString(" excluding example")
	}
	excl := append([]Rect4(nil), q.Exclude...)
	sort.Slice(excl, func(i, j int) bool {
		a, c := excl[i], excl[j]
		if a.MinX != c.MinX {
			return a.MinX < c.MinX
		}
		if a.MinY != c.MinY {
			return a.MinY < c.MinY
		}
		if a.MaxX != c.MaxX {
			return a.MaxX < c.MaxX
		}
		return a.MaxY < c.MaxY
	})
	for _, r := range excl {
		b.WriteString(" excluding " + r.canon())
	}
	if q.Within != nil {
		b.WriteString(" within " + q.Within.canon())
	}
	if q.Norm == "l2" {
		b.WriteString(" norm l2")
	}
	if q.Delta > 0 {
		b.WriteString(" delta " + num(q.Delta))
	}
	if q.Scan > 0 {
		b.WriteString(" scan " + strconv.Itoa(q.Scan))
	}
	if q.TimeoutMS > 0 {
		b.WriteString(" timeout " + strconv.FormatInt(q.TimeoutMS, 10))
	}
	return b.String()
}
