package query_test

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"asrs"
	"asrs/internal/agg"
	"asrs/internal/dataset"
	"asrs/internal/query"
	"asrs/internal/shard"
)

func corpus(t *testing.T, n int, seed int64) (*asrs.Dataset, *asrs.Composite) {
	t.Helper()
	ds := dataset.Random(n, 100, seed)
	f := agg.MustNew(ds.Schema,
		agg.Spec{Kind: agg.Distribution, Attr: "cat"},
		agg.Spec{Kind: agg.Sum, Attr: "val"},
	)
	return ds, f
}

func sameBits(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

func sameRect(a, b asrs.Rect) bool {
	return sameBits(a.MinX, b.MinX) && sameBits(a.MinY, b.MinY) &&
		sameBits(a.MaxX, b.MaxX) && sameBits(a.MaxY, b.MaxY)
}

func sameRep(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !sameBits(a[i], b[i]) {
			return false
		}
	}
	return true
}

// biCase pairs a query text with the hand-wired struct request it must
// compile to. The hand side builds its OWN composite and target — the
// test proves a client migrating from structs to text sees identical
// bits, not that the planner agrees with itself.
type biCase struct {
	name string
	src  string
	req  func(t *testing.T, ds *asrs.Dataset, f *asrs.Composite) asrs.QueryRequest
}

func mustTarget(t *testing.T, f *asrs.Composite, target, weights []float64) asrs.Query {
	t.Helper()
	q, err := asrs.QueryFromTarget(f, target, weights)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

var biCases = []biCase{
	{
		name: "top3-target",
		src:  `find top 3 size 6 x 6 similar to target(1,2,1,5) under dist(cat) + sum(val)`,
		req: func(t *testing.T, ds *asrs.Dataset, f *asrs.Composite) asrs.QueryRequest {
			q := mustTarget(t, f, []float64{1, 2, 1, 5}, nil)
			return asrs.QueryRequest{Query: q, A: 6, B: 6, TopK: 3}
		},
	},
	{
		name: "single-best",
		src:  `find size 7 x 5 similar to target(0,1,2,3) under dist(cat) + sum(val)`,
		req: func(t *testing.T, ds *asrs.Dataset, f *asrs.Composite) asrs.QueryRequest {
			q := mustTarget(t, f, []float64{0, 1, 2, 3}, nil)
			return asrs.QueryRequest{Query: q, A: 7, B: 5}
		},
	},
	{
		name: "excludes",
		src:  `find top 2 size 6 x 6 similar to target(1,2,1,5) under dist(cat) + sum(val) excluding region(40,40,70,70) excluding region(10,10,30,30)`,
		req: func(t *testing.T, ds *asrs.Dataset, f *asrs.Composite) asrs.QueryRequest {
			q := mustTarget(t, f, []float64{1, 2, 1, 5}, nil)
			return asrs.QueryRequest{Query: q, A: 6, B: 6, TopK: 2,
				Exclude: []asrs.Rect{
					{MinX: 10, MinY: 10, MaxX: 30, MaxY: 30},
					{MinX: 40, MinY: 40, MaxX: 70, MaxY: 70},
				}}
		},
	},
	{
		name: "within",
		src:  `find top 2 size 6 x 6 similar to target(1,2,1,5) under dist(cat) + sum(val) within region(5,5,95,95)`,
		req: func(t *testing.T, ds *asrs.Dataset, f *asrs.Composite) asrs.QueryRequest {
			q := mustTarget(t, f, []float64{1, 2, 1, 5}, nil)
			w := asrs.Rect{MinX: 5, MinY: 5, MaxX: 95, MaxY: 95}
			return asrs.QueryRequest{Query: q, A: 6, B: 6, TopK: 2, Within: &w}
		},
	},
	{
		name: "l2-weights",
		src:  `find top 2 size 5 x 7 similar to target(1,2,1,5) under dist(cat) + 2*sum(val) norm l2`,
		req: func(t *testing.T, ds *asrs.Dataset, f *asrs.Composite) asrs.QueryRequest {
			q := mustTarget(t, f, []float64{1, 2, 1, 5}, []float64{1, 1, 1, 2})
			q.Norm = asrs.L2
			return asrs.QueryRequest{Query: q, A: 5, B: 7, TopK: 2}
		},
	},
	{
		name: "example-region",
		src:  `find top 2 similar to region(20,20,28,26) under dist(cat) + sum(val) excluding example`,
		req: func(t *testing.T, ds *asrs.Dataset, f *asrs.Composite) asrs.QueryRequest {
			r := asrs.Rect{MinX: 20, MinY: 20, MaxX: 28, MaxY: 26}
			q := mustTarget(t, f, asrs.Represent(ds, f, r), nil)
			return asrs.QueryRequest{Query: q, A: 8, B: 6, TopK: 2,
				Exclude: []asrs.Rect{r}}
		},
	},
}

// checkStreamMatches drains the plan's lazy stream over b and compares
// every region, point, distance and representation bit-for-bit against
// the hand-wired one-shot answer.
func checkStreamMatches(t *testing.T, pl *query.Plan, b query.Binding,
	wantRegions []asrs.Rect, wantResults []asrs.Result) {
	t.Helper()
	st, err := query.Exec(context.Background(), pl, b)
	if err != nil {
		t.Fatal(err)
	}
	regions, results, err := st.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(regions) != len(wantRegions) {
		t.Fatalf("stream emitted %d regions, hand-wired answered %d", len(regions), len(wantRegions))
	}
	for i := range regions {
		if !sameRect(regions[i], wantRegions[i]) {
			t.Errorf("region %d: stream %+v != hand-wired %+v", i, regions[i], wantRegions[i])
		}
		if !sameBits(results[i].Dist, wantResults[i].Dist) {
			t.Errorf("dist %d: stream %v != hand-wired %v", i, results[i].Dist, wantResults[i].Dist)
		}
		if !sameBits(results[i].Point.X, wantResults[i].Point.X) || !sameBits(results[i].Point.Y, wantResults[i].Point.Y) {
			t.Errorf("point %d: stream %+v != hand-wired %+v", i, results[i].Point, wantResults[i].Point)
		}
		if !sameRep(results[i].Rep, wantResults[i].Rep) {
			t.Errorf("rep %d: stream %v != hand-wired %v", i, results[i].Rep, wantResults[i].Rep)
		}
	}
}

// TestBitIdentityEngine: the core frontend contract. For every query
// shape, the compiled request must equal the hand-wired struct request
// bit-for-bit, and the lazy stream over an Engine must reproduce the
// hand-wired one-shot answer exactly — at multiple worker counts.
func TestBitIdentityEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 3; trial++ {
		ds, f := corpus(t, 60, rng.Int63())
		p := query.NewPlanner(ds.Schema, nil)
		for _, workers := range []int{1, 2} {
			eng, err := asrs.NewEngine(ds, asrs.EngineOptions{Search: asrs.Options{Workers: workers}})
			if err != nil {
				t.Fatal(err)
			}
			for _, tc := range biCases {
				t.Run(tc.name, func(t *testing.T) {
					pl, err := p.ParseAndPlan(tc.src)
					if err != nil {
						t.Fatal(err)
					}
					want := tc.req(t, ds, f)

					// Request-level identity: the compiled skeleton is the
					// hand-wired struct, bit for bit.
					got, err := pl.Request(ds)
					if err != nil {
						t.Fatal(err)
					}
					if !sameRep(got.Query.Target, want.Query.Target) {
						t.Fatalf("target: compiled %v != hand-wired %v", got.Query.Target, want.Query.Target)
					}
					if !sameRep(got.Query.W, want.Query.W) {
						t.Fatalf("weights: compiled %v != hand-wired %v", got.Query.W, want.Query.W)
					}
					if got.Query.Norm != want.Query.Norm || !sameBits(got.A, want.A) || !sameBits(got.B, want.B) || got.TopK != want.TopK {
						t.Fatalf("skeleton: compiled %+v != hand-wired %+v", got, want)
					}
					if len(got.Exclude) != len(want.Exclude) {
						t.Fatalf("excludes: compiled %d != hand-wired %d", len(got.Exclude), len(want.Exclude))
					}
					for i := range got.Exclude {
						if !sameRect(got.Exclude[i], want.Exclude[i]) {
							t.Fatalf("exclude %d: compiled %+v != hand-wired %+v", i, got.Exclude[i], want.Exclude[i])
						}
					}
					if (got.Within == nil) != (want.Within == nil) {
						t.Fatalf("within: compiled %v != hand-wired %v", got.Within, want.Within)
					}
					if got.Within != nil && !sameRect(*got.Within, *want.Within) {
						t.Fatalf("within: compiled %+v != hand-wired %+v", *got.Within, *want.Within)
					}

					// Result-level identity: lazy rounds == one-shot.
					resp := eng.QueryCtx(context.Background(), want)
					if resp.Err != nil {
						t.Fatal(resp.Err)
					}
					checkStreamMatches(t, pl, query.EngineBinding{E: eng}, resp.Regions, resp.Results)
				})
			}
		}
	}
}

// TestBitIdentityRouter: the same contract over the multi-shard router.
// The stream's greedy rounds scatter–gather per round, and must still
// reproduce the hand-wired one-shot routed answer bit-for-bit, at
// several shard and worker counts.
func TestBitIdentityRouter(t *testing.T) {
	ds, f := corpus(t, 60, 91)
	p := query.NewPlanner(ds.Schema, nil)
	for _, ns := range []int{2, 3} {
		for _, workers := range []int{1, 2} {
			cat, err := shard.New(ds, shard.Config{
				Shards:     ns,
				Engine:     asrs.EngineOptions{Search: asrs.Options{Workers: workers}},
				Composites: map[string]*asrs.Composite{"q": f},
				Names:      []string{"q"},
			})
			if err != nil {
				t.Fatal(err)
			}
			rt := shard.NewRouter(cat, shard.RouterOptions{Breaker: shard.BreakerConfig{Disable: true}})
			for _, tc := range biCases {
				t.Run(tc.name, func(t *testing.T) {
					pl, err := p.ParseAndPlan(tc.src)
					if err != nil {
						t.Fatal(err)
					}
					want := tc.req(t, ds, f)
					resp := rt.Query(context.Background(), shard.Request{
						Query:   want.Query,
						A:       want.A,
						B:       want.B,
						TopK:    want.TopK,
						Exclude: want.Exclude,
						Extent:  want.Within,
					})
					if resp.Err != nil {
						t.Fatal(resp.Err)
					}
					checkStreamMatches(t, pl, query.RouterBinding{R: rt}, resp.Regions, resp.Results)
				})
			}
			cat.Close()
		}
	}
}

// TestBitIdentityMultiClause: a two-clause conjunction (concatenated
// channels) against the hand-wired combined composite and concatenated
// target, including a represented example part.
func TestBitIdentityMultiClause(t *testing.T) {
	ds := dataset.Random(50, 100, 7)
	comb := agg.MustNew(ds.Schema,
		agg.Spec{Kind: agg.Distribution, Attr: "cat"},
		agg.Spec{Kind: agg.Sum, Attr: "val"},
	)
	fD := agg.MustNew(ds.Schema, agg.Spec{Kind: agg.Distribution, Attr: "cat"})
	eng, err := asrs.NewEngine(ds, asrs.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p := query.NewPlanner(ds.Schema, nil)
	// Clauses sort canonically: dist(cat) < sum(val), so the combined
	// layout is [dist(cat) | sum(val)] regardless of source order.
	pl, err := p.ParseAndPlan(`find top 2 size 6 x 6 similar to target(4.5) under sum(val) and similar to region(30,30,40,40) under dist(cat)`)
	if err != nil {
		t.Fatal(err)
	}
	r := asrs.Rect{MinX: 30, MinY: 30, MaxX: 40, MaxY: 40}
	target := append(asrs.Represent(ds, fD, r), 4.5)
	q, err := asrs.QueryFromTarget(comb, target, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := asrs.QueryRequest{Query: q, A: 6, B: 6, TopK: 2}
	got, err := pl.Request(ds)
	if err != nil {
		t.Fatal(err)
	}
	if !sameRep(got.Query.Target, want.Query.Target) {
		t.Fatalf("target: compiled %v != hand-wired %v", got.Query.Target, want.Query.Target)
	}
	resp := eng.QueryCtx(context.Background(), want)
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	checkStreamMatches(t, pl, query.EngineBinding{E: eng}, resp.Regions, resp.Results)
}
