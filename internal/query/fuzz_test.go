package query

import (
	"errors"
	"testing"
)

// FuzzParseQuery: Parse must never panic — every input either yields an
// AST whose canonical rendering is a parseable fixed point, or a typed
// *ParseError.
func FuzzParseQuery(f *testing.F) {
	seeds := []string{
		`find similar to region(0,0,1,1) under count()`,
		`find top 3 size 6 x 6 similar to target(1,2,1,5) under dist(cat) + 2*sum(val) norm l2`,
		`find similar to region(103.827,1.298,103.843,1.310) under @category excluding example`,
		`find similar to region(0,0,2,1) under count() and dissimilar to target(1) under sum(v) by 3 diverse by 0.5`,
		`find similar to region(0,0,1,1) under sum(v where a = 'x') excluding region(1,1,2,2) within region(0,0,9,9)`,
		`find similar to region(0,0,1,1) under avg(v where w in [1,2]) delta 0.25 scan 12 timeout 100`,
		`maximize sum(rating) size 3 x 2`,
		`explain maximize count() size 1 x 1`,
		`find similar to target(1e300,-2.5e-10) under dist(a)`,
		"find similar to region(0,0,1,1) under sum(v where a = \"q\\\"uo\\\\te\")",
		`FIND TOP 2 SIMILAR TO REGION(1,2,3,4) UNDER COUNT()`,
		``, `find`, `)(`, `@@`, `"`, `1 2 3`, `find find find`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		ast, err := Parse(src)
		if err != nil {
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("Parse(%q): error %v is not a *ParseError", src, err)
			}
			return
		}
		canon := ast.Canonical()
		ast2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical of %q does not re-parse: %q: %v", src, canon, err)
		}
		if canon2 := ast2.Canonical(); canon2 != canon {
			t.Fatalf("canonical not a fixed point for %q:\n  first:  %q\n  second: %q", src, canon, canon2)
		}
	})
}
