package query_test

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"asrs"
	"asrs/internal/agg"
	"asrs/internal/dataset"
	"asrs/internal/query"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestExplainGolden pins the EXPLAIN report's JSON across the workload
// zoo: every planner rule a reader might depend on — canonicalization,
// channel layout, weight expansion, size derivation, strategy choice,
// route label, and the certificate probe's fill prediction — is visible
// in these files. Regenerate with -update and review the diff.
func TestExplainGolden(t *testing.T) {
	tweet := dataset.Tweet(400, 7)
	poi := dataset.POISyn(300, 11)
	sg := dataset.SingaporePOI(3)
	random := dataset.Random(60, 100, 91)
	sgCat := agg.MustNew(sg.Schema, agg.Spec{Kind: agg.Distribution, Attr: "category"})
	orchard := dataset.SingaporeDistricts()[0]

	cases := []struct {
		name   string
		ds     *asrs.Dataset
		named  map[string]*asrs.Composite
		src    string
		routed bool
	}{
		{
			name: "tweet_topk_example",
			ds:   tweet,
			src:  `explain find top 3 similar to region(20,20,30,28) under dist(day) excluding example`,
		},
		{
			name: "poisyn_numeric_l2_delta",
			ds:   poi,
			src:  `explain find size 2 x 2 similar to target(4.5,120) under sum(rating) + avg(visits) norm l2 delta 0.1`,
		},
		{
			name:   "singapore_named_routed",
			ds:     sg,
			named:  map[string]*asrs.Composite{"category": sgCat},
			src:    `explain find top 2 similar to region(` + rectArgs(orchard.Rect) + `) under @category excluding example`,
			routed: true,
		},
		{
			name: "random_filters_weights",
			ds:   random,
			src:  `explain find top 4 size 6 x 6 similar to target(1,2,1,5) under dist(cat) + 2*sum(val) and dissimilar to target(-2) under sum(val) by 1 diverse by 0.5 within region(5,5,95,95)`,
		},
		{
			name: "random_where_clauses",
			ds:   random,
			src:  `explain find size 8 x 4 similar to target(3,7) under sum(val where cat = 'a') + count(where val in [0,5]) excluding region(10,10,20,20)`,
		},
		{
			name: "random_maxrs",
			ds:   random,
			src:  `explain maximize sum(val) size 5 x 5`,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := query.NewPlanner(tc.ds.Schema, tc.named)
			pl, err := p.ParseAndPlan(tc.src)
			if err != nil {
				t.Fatal(err)
			}
			if !pl.Explain {
				t.Fatal("explain flag not set on plan")
			}
			rep := pl.Report(tc.ds, tc.routed)
			got, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run go test -run TestExplainGolden -update ./internal/query/): %v", err)
			}
			if string(got) != string(want) {
				t.Errorf("EXPLAIN drifted from golden %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
			}
		})
	}
}

func rectArgs(r asrs.Rect) string {
	b, _ := json.Marshal([]float64{r.MinX, r.MinY, r.MaxX, r.MaxY})
	s := string(b)
	return s[1 : len(s)-1]
}
