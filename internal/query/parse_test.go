package query

import (
	"errors"
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *AST {
	t.Helper()
	ast, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return ast
}

func TestParseFind(t *testing.T) {
	ast := mustParse(t, `find top 3 similar to region(103.827,1.298,103.843,1.310) under @category excluding example`)
	if ast.TopK != 3 {
		t.Fatalf("TopK = %d, want 3", ast.TopK)
	}
	if len(ast.Similar) != 1 || ast.Similar[0].Place.Region == nil {
		t.Fatalf("similar clause not parsed: %+v", ast.Similar)
	}
	if got := ast.Similar[0].Expr.Terms[0].Atom; got.Fn != "@" || got.Attr != "category" {
		t.Fatalf("atom = %+v, want @category", got)
	}
	if !ast.ExcludeExample {
		t.Fatal("ExcludeExample not set")
	}
}

func TestParseExpression(t *testing.T) {
	ast := mustParse(t, `find size 2 x 1 similar to target(1,2,3) under dist(category) + 2.5*sum(rating where cuisine = 'thai') + count()`)
	terms := ast.Similar[0].Expr.Terms
	if len(terms) != 3 {
		t.Fatalf("got %d terms, want 3", len(terms))
	}
	if terms[1].Coef != 2.5 || terms[1].Atom.Fn != "sum" || terms[1].Atom.Where == nil || terms[1].Atom.Where.Eq != "thai" {
		t.Fatalf("term 2 = %+v", terms[1])
	}
	if ast.A != 2 || ast.B != 1 {
		t.Fatalf("size = %g x %g", ast.A, ast.B)
	}
}

func TestParseClauses(t *testing.T) {
	ast := mustParse(t, `find similar to region(0,0,2,1) under count() and dissimilar to region(5,5,7,6) under sum(val) by 3 diverse by 0.5 excluding region(1,1,2,2) within region(0,0,10,10) norm l2 delta 0.1 scan 12 timeout 2500`)
	if len(ast.Dissimilar) != 1 || ast.Dissimilar[0].By != 3 {
		t.Fatalf("dissimilar = %+v", ast.Dissimilar)
	}
	if ast.DiverseBy != 0.5 || len(ast.Exclude) != 1 || ast.Within == nil ||
		ast.Norm != "l2" || ast.Delta != 0.1 || ast.Scan != 12 || ast.TimeoutMS != 2500 {
		t.Fatalf("clause fields wrong: %+v", ast)
	}
}

func TestParseMaximize(t *testing.T) {
	ast := mustParse(t, `maximize sum(rating) size 3 x 2`)
	if ast.Maximize == nil || ast.Maximize.Fn != "sum" || ast.Maximize.Attr != "rating" {
		t.Fatalf("maximize = %+v", ast.Maximize)
	}
	if ast.Maximize.A != 3 || ast.Maximize.B != 2 {
		t.Fatalf("size = %g x %g", ast.Maximize.A, ast.Maximize.B)
	}
	ast = mustParse(t, `explain maximize count() size 1 x 1`)
	if !ast.Explain || ast.Maximize.Fn != "count" {
		t.Fatalf("explain maximize = %+v", ast)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,
		`find`,
		`found similar to region(0,0,1,1) under count()`,
		`find similar region(0,0,1,1) under count()`,
		`find similar to region(0,0,1,1)`,
		`find similar to region(0,0,1) under count()`,
		`find similar to region(0,0,1,1) under`,
		`find similar to region(0,0,1,1) under sum()`,
		`find similar to region(0,0,1,1) under count() top`,
		`find similar to region(0,0,1,1) under count() top 3 top 4`,
		`find similar to region(0,0,1,1) under count() norm l3`,
		`find similar to region(0,0,1,1) under count() trailing garbage`,
		`find similar to region(0,0,1,1) under 2*`,
		`find similar to region(0,0,1,1) under sum(v where x in [1)`,
		`find similar to target() under count()`,
		`maximize avg(x) size 1 x 1`,
		`maximize count() size 1`,
		`find similar to region(0,0,1,1) under count() where`,
		`find similar to region(0,0,1,1) under sum(v where a = )`,
		"find similar to region(0,0,1,1) under sum(v where a = 'unterminated",
	}
	for _, src := range cases {
		_, err := Parse(src)
		if err == nil {
			t.Errorf("Parse(%q): expected error", src)
			continue
		}
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Errorf("Parse(%q): error %v is not a *ParseError", src, err)
		}
	}
}

// TestCanonicalFixedPoint: rendering an AST canonically and re-parsing
// must reproduce the identical canonical text.
func TestCanonicalFixedPoint(t *testing.T) {
	cases := []string{
		`find top 3 similar to region(103.827,1.298,103.843,1.310) under @category excluding example`,
		`FIND Similar TO region(0,0,2,1) UNDER Count() AND dissimilar to target(1,0) under sum(val) by 3`,
		`find size 2 x 1 similar to target(1,2,3) under count() + dist(category) + 2.5*sum(rating)`,
		`find similar to region(0,0,2,1) under count() excluding region(5,5,6,6) excluding region(1,1,2,2) within region(0,0,9,9) norm l2 delta 0.25 scan 12 timeout 100`,
		`maximize sum(rating) size 3 x 2`,
		`explain find similar to region(0,0,1,1) under avg(v where w in [1,2])`,
		`find similar to region(0,0,1,1) under sum(v where a = "it's")`,
	}
	for _, src := range cases {
		ast := mustParse(t, src)
		canon := ast.Canonical()
		ast2, err := Parse(canon)
		if err != nil {
			t.Fatalf("re-parse of canonical %q: %v", canon, err)
		}
		if canon2 := ast2.Canonical(); canon2 != canon {
			t.Errorf("canonical not a fixed point:\n  first:  %q\n  second: %q", canon, canon2)
		}
	}
}

// TestCanonicalOrderIndependence: clause and term order must not change
// the canonical rendering.
func TestCanonicalOrderIndependence(t *testing.T) {
	a := mustParse(t, `find size 2 x 1 similar to target(1) under sum(b) and similar to target(2) under sum(a) excluding region(3,3,4,4) excluding region(1,1,2,2)`)
	b := mustParse(t, `find similar to target(2) under sum(a) excluding region(1,1,2,2) size 2 x 1 similar to target(1) under sum(b) excluding region(3,3,4,4)`)
	if ca, cb := a.Canonical(), b.Canonical(); ca != cb {
		t.Errorf("canonical differs:\n  a: %q\n  b: %q", ca, cb)
	}
	x := mustParse(t, `find size 1 x 1 similar to target(1,2) under 2*sum(b) + dist(c)`)
	y := mustParse(t, `find size 1 x 1 similar to target(1,2) under dist(c) + 2*sum(b)`)
	if cx, cy := x.Canonical(), y.Canonical(); cx != cy {
		t.Errorf("term order changed canonical:\n  x: %q\n  y: %q", cx, cy)
	}
}

func TestParseErrorPosition(t *testing.T) {
	_, err := Parse(`find similar to region(0,0,1,1) under bogus(x)`)
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *ParseError", err)
	}
	if pe.Pos != strings.Index(`find similar to region(0,0,1,1) under bogus(x)`, "bogus") {
		t.Errorf("Pos = %d, want offset of %q", pe.Pos, "bogus")
	}
}
