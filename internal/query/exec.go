package query

import (
	"context"
	"errors"

	"asrs"
	"asrs/internal/wire"
)

// Row is one streamed answer.
type Row struct {
	// Rank is the 1-based position in the greedy answer sequence.
	Rank   int
	Region asrs.Rect
	// Result carries the answer point, distance and representation. For
	// maximize plans Dist is the maximized objective (the enclosed
	// weight) and Rep is nil.
	Result asrs.Result
}

// Stream is a lazy result iterator: each Next issues at most the
// backend work needed for ONE more answer (one greedy round per
// candidate), so the first result is on the wire before later rounds
// have run at all. The greedy round sequence — single-best search with
// the accumulated exclusion set, each round's region appended whether
// or not a filter accepts it — is exactly the loop inside the engine's
// one-shot top-k (dssearch.SolveASRSTopK) and the router's
// scatter-round gather, which is why an unfiltered stream's rows are
// Float64bits-identical to the one-shot answer.
//
// A Stream is single-goroutine; it holds no locks and no background
// work. Abandoning it mid-iteration leaks nothing.
type Stream struct {
	ctx context.Context
	pl  *Plan
	b   Binding
	ds  *asrs.Dataset

	base    asrs.QueryRequest // single-round skeleton (TopK forced to 0)
	excl    []asrs.Rect
	filters []boundFilter
	reps    [][]float64 // accepted representations (diversity chain)

	emitted int
	rounds  int
	done    bool
	err     error
	cov     *wire.Coverage
}

// boundFilter is a dissimilarity filter with its target representation
// resolved against the stream's dataset snapshot.
type boundFilter struct {
	f      Filter
	target []float64
}

// Exec binds a plan to a backend and returns the lazy stream. The
// dataset snapshot (region targets, filter representations) is taken
// once here, so every round and every filter evaluation sees one
// coherent epoch.
func Exec(ctx context.Context, pl *Plan, b Binding) (*Stream, error) {
	if pl.Explain {
		return nil, planErrf("explain plans report, they do not execute")
	}
	s := &Stream{ctx: ctx, pl: pl, b: b, ds: b.Dataset()}
	if pl.Max != nil {
		return s, nil
	}
	req, err := pl.Request(s.ds)
	if err != nil {
		return nil, err
	}
	pl.ApplyOptions(&req, b.SearchOptions())
	req.TopK = 0
	s.base = req
	s.excl = req.Exclude
	for _, f := range pl.Filters {
		bf := boundFilter{f: f}
		if f.place.lit != nil {
			bf.target = f.place.lit
		} else {
			bf.target = asrs.Represent(s.ds, f.place.comp, *f.place.region)
		}
		s.filters = append(s.filters, bf)
	}
	return s, nil
}

// Next returns the next accepted answer. ok=false means the stream
// ended: all k answers emitted, the greedy sequence ran dry, the scan
// cap was hit, or an error occurred (check Err).
func (s *Stream) Next() (Row, bool) {
	if s.done || s.err != nil {
		return Row{}, false
	}
	if s.pl.Max != nil {
		return s.maxrs()
	}
	k := s.pl.K()
	budget := s.pl.rounds()
	for s.emitted < k && s.rounds < budget {
		req := s.base
		req.Exclude = append([]asrs.Rect(nil), s.excl...)
		req.Ctx = s.ctx
		s.rounds++
		resp, cov := s.b.Query(s.ctx, req)
		s.mergeCoverage(cov)
		if resp.Err != nil {
			if errors.Is(resp.Err, asrs.ErrNoFeasibleRegion) && s.emitted > 0 {
				// The window ran out of non-overlapping candidates: the
				// one-shot greedy loop breaks here too, returning the
				// answers so far.
				s.done = true
				return Row{}, false
			}
			s.err = resp.Err
			return Row{}, false
		}
		region, res := resp.Best()
		// The region joins the exclusion set whether or not a filter
		// accepts it — the greedy sequence is defined over candidates,
		// and re-finding a rejected region would loop forever.
		s.excl = append(s.excl, region)
		if !s.accept(region, res) {
			continue
		}
		s.emitted++
		if s.pl.DiverseBy > 0 {
			s.reps = append(s.reps, res.Rep)
		}
		return Row{Rank: s.emitted, Region: region, Result: res}, true
	}
	s.done = true
	return Row{}, false
}

// accept applies the plan's post-filters to one candidate.
func (s *Stream) accept(region asrs.Rect, res asrs.Result) bool {
	for i := range s.filters {
		bf := &s.filters[i]
		rep := asrs.Represent(s.ds, bf.f.Comp, region)
		d := asrs.Distance(s.pl.Norm, rep, bf.target, bf.f.Weights)
		if !(d >= bf.f.By) {
			return false
		}
	}
	if s.pl.DiverseBy > 0 {
		for _, prior := range s.reps {
			d := asrs.Distance(s.pl.Norm, res.Rep, prior, s.pl.Weights)
			if !(d >= s.pl.DiverseBy) {
				return false
			}
		}
	}
	return true
}

// maxrs runs the MaxRS aggregate form: one eager solve, one row.
func (s *Stream) maxrs() (Row, bool) {
	s.done = true
	mp := s.pl.Max
	pts := make([]asrs.MaxRSPoint, 0, len(s.ds.Objects))
	for i := range s.ds.Objects {
		o := &s.ds.Objects[i]
		w := 1.0
		if mp.AttrIdx >= 0 {
			w = o.Values[mp.AttrIdx].Num
		}
		pts = append(pts, asrs.MaxRSPoint{Loc: o.Loc, Weight: w})
	}
	opt := s.b.SearchOptions()
	opt.Ctx = s.ctx
	res, _, err := asrs.MaxRS(pts, mp.A, mp.B, opt)
	if err != nil {
		s.err = err
		return Row{}, false
	}
	s.emitted = 1
	return Row{Rank: 1, Region: res.Region, Result: asrs.Result{Point: res.Corner, Dist: res.Weight}}, true
}

// Err returns the stream's terminal error, if any.
func (s *Stream) Err() error { return s.err }

// Emitted returns how many rows the stream has produced.
func (s *Stream) Emitted() int { return s.emitted }

// Rounds returns how many backend rounds the stream has spent.
func (s *Stream) Rounds() int { return s.rounds }

// Coverage returns the merged shard coverage across all rounds (nil on
// unsharded backends).
func (s *Stream) Coverage() *wire.Coverage { return s.cov }

// mergeCoverage unions one round's coverage into the stream's.
func (s *Stream) mergeCoverage(cov *wire.Coverage) {
	if cov == nil {
		return
	}
	if s.cov == nil {
		s.cov = &wire.Coverage{Shards: cov.Shards}
	}
	if cov.Shards > s.cov.Shards {
		s.cov.Shards = cov.Shards
	}
	for _, name := range cov.Searched {
		if !containsStr(s.cov.Searched, name) {
			s.cov.Searched = append(s.cov.Searched, name)
		}
	}
	for _, sk := range cov.Skipped {
		dup := false
		for _, have := range s.cov.Skipped {
			if have.Shard == sk.Shard && have.Reason == sk.Reason {
				dup = true
				break
			}
		}
		if !dup {
			s.cov.Skipped = append(s.cov.Skipped, sk)
		}
	}
}

func containsStr(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

// Collect drains the stream into slices (the eager convenience used by
// tests and the CLI; servers iterate Next directly to stream).
func (s *Stream) Collect() ([]asrs.Rect, []asrs.Result, error) {
	var regions []asrs.Rect
	var results []asrs.Result
	for {
		row, ok := s.Next()
		if !ok {
			break
		}
		regions = append(regions, row.Region)
		results = append(results, row.Result)
	}
	return regions, results, s.Err()
}
