package query

import (
	"sort"

	"asrs"
)

// targetPart is one similar clause's contribution to the request
// target: either a literal vector or an example region represented
// under the clause's own composite at bind time. Per-clause
// representation concatenates bit-identically to representing the
// combined composite, because each (f, A, γ) component aggregates
// independently.
type targetPart struct {
	lit    []float64
	region *asrs.Rect
	comp   *asrs.Composite
	dims   int
	canon  string // the place's canonical rendering, for EXPLAIN
}

// Filter is one streamed post-filter: a dissimilarity predicate the
// executor applies per candidate round (dissimilar clauses), evaluated
// outside the kernel so the inner search stays a pure exact primitive.
type Filter struct {
	Comp    *asrs.Composite
	Weights []float64
	By      float64

	place targetPart
	canon string
}

// Plan is a compiled, executable query: the type-checked composite
// (interned singleton), the request skeleton, and the streaming
// strategy. Build with Planner.Plan; turn into the hand-wired engine
// request with Request; run with Exec.
type Plan struct {
	// Canonical is the canonical text rendering (EXPLAIN's identity
	// line; two semantically identical queries share it).
	Canonical string
	// Explain marks an EXPLAIN request: report the plan, don't run it.
	Explain bool

	// Find form.
	Comp      *asrs.Composite
	CompKey   string
	Weights   []float64
	Norm      asrs.Norm
	A, B      float64
	TopK      int // as requested: 0 and 1 both mean single-best
	Exclude   []asrs.Rect
	Within    *asrs.Rect
	Delta     float64
	Filters   []Filter
	DiverseBy float64
	// ScanCap bounds total candidate rounds for filtered streams
	// (0 = unfiltered: exactly k rounds, mirroring one-shot top-k).
	ScanCap   int
	TimeoutMS int64

	targets         []targetPart
	exampleExcludes []asrs.Rect // from "excluding example", appended after Exclude
	channels        []ExplainChannel

	// Maximize form (nil for find).
	Max *MaxPlan
}

// MaxPlan is the compiled MaxRS form.
type MaxPlan struct {
	Fn      string // "count" or "sum"
	Attr    string
	AttrIdx int // -1 for count
	A, B    float64
}

// K returns the number of answer regions the plan streams.
func (pl *Plan) K() int {
	if pl.TopK > 1 {
		return pl.TopK
	}
	return 1
}

// rounds returns the candidate-round budget: exactly K for unfiltered
// plans (bit-identity with one-shot top-k demands it), ScanCap for
// filtered ones.
func (pl *Plan) rounds() int {
	if len(pl.Filters) == 0 && pl.DiverseBy == 0 {
		return pl.K()
	}
	return pl.ScanCap
}

// Plan type-checks and compiles a parsed query against the planner's
// schema. The returned plan is immutable and safe for concurrent
// execution.
func (p *Planner) Plan(ast *AST) (*Plan, error) {
	pl := &Plan{Canonical: ast.Canonical(), Explain: ast.Explain}
	if ast.Maximize != nil {
		return p.planMaximize(ast, pl)
	}
	return p.planFind(ast, pl)
}

// ParseAndPlan is the one-call front door: text in, plan out.
func (p *Planner) ParseAndPlan(src string) (*Plan, error) {
	ast, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return p.Plan(ast)
}

func (p *Planner) planMaximize(ast *AST, pl *Plan) (*Plan, error) {
	m := ast.Maximize
	mp := &MaxPlan{Fn: m.Fn, Attr: m.Attr, AttrIdx: -1, A: m.A, B: m.B}
	if m.A <= 0 || m.B <= 0 {
		return nil, planErrf("maximize size must be positive, got %g x %g", m.A, m.B)
	}
	if m.Fn == "sum" {
		idx := p.schema.Index(m.Attr)
		if idx < 0 {
			return nil, planErrf("unknown attribute %q in sum(%s)", m.Attr, m.Attr)
		}
		if p.schema.At(idx).Kind != asrs.Numeric {
			return nil, planErrf("sum(%s) requires a numeric attribute, %q is categorical", m.Attr, m.Attr)
		}
		mp.AttrIdx = idx
	}
	pl.Max = mp
	pl.TimeoutMS = ast.TimeoutMS
	return pl, nil
}

func (p *Planner) planFind(ast *AST, pl *Plan) (*Plan, error) {
	if len(ast.Similar) == 0 {
		return nil, planErrf("find requires at least one similar clause")
	}
	norm, err := asrs.Norm(0), error(nil)
	switch ast.Norm {
	case "", "l1":
		norm = asrs.L1
	case "l2":
		norm = asrs.L2
	default:
		return nil, planErrf("unknown norm %q", ast.Norm)
	}
	pl.Norm = norm

	// Similar clauses compile in canonical order so the combined channel
	// layout (and with it the weight and target concatenation) matches
	// the canonical text regardless of how the query was written.
	sims := append([]SimilarClause(nil), ast.Similar...)
	sort.SliceStable(sims, func(i, j int) bool { return sims[i].canon() < sims[j].canon() })

	exprs := make([]compiledExpr, len(sims))
	for i, c := range sims {
		if exprs[i], err = p.compileExpr(c.Expr); err != nil {
			return nil, err
		}
	}
	if len(sims) == 1 {
		ce := exprs[0]
		pl.Comp, pl.CompKey, pl.Weights, pl.channels = ce.comp, ce.key, ce.weights, ce.channels
	} else {
		// Multi-clause conjunction: concatenate the clauses' channels
		// into one combined composite (interned under the concatenated
		// key). @name clauses cannot join — their spec lists are opaque.
		var specs []asrs.AggSpec
		var weights []float64
		allOne := true
		key := ""
		for i, ce := range exprs {
			if ce.specs == nil {
				return nil, planErrf("@%s cannot be combined with other similar clauses (a registered composite's channels are opaque)", ce.key[1:])
			}
			if i > 0 {
				key += "||"
			}
			key += ce.key
			specs = append(specs, ce.specs...)
			dims := 0
			for _, ch := range ce.channels {
				dims += ch.Dims
			}
			if ce.weights == nil {
				for j := 0; j < dims; j++ {
					weights = append(weights, 1)
				}
			} else {
				weights = append(weights, ce.weights...)
				allOne = false
			}
			pl.channels = append(pl.channels, ce.channels...)
		}
		comp, err := p.intern(key, specs)
		if err != nil {
			return nil, err
		}
		pl.Comp, pl.CompKey = comp, key
		if !allOne {
			pl.Weights = weights
		}
	}

	// Target assembly: one part per clause, in the same canonical order.
	for i, c := range sims {
		part := targetPart{comp: exprs[i].comp, canon: c.Place.canon()}
		dims := exprs[i].comp.Dims()
		part.dims = dims
		switch {
		case c.Place.Region != nil:
			r := rectLib(*c.Place.Region)
			if !r.IsValid() {
				return nil, planErrf("invalid example region %s: min must not exceed max", c.Place.canon())
			}
			part.region = &r
		default:
			if len(c.Place.Target) != dims {
				return nil, planErrf("target vector has %d dims, %s produces %d", len(c.Place.Target), exprs[i].key, dims)
			}
			part.lit = c.Place.Target
		}
		pl.targets = append(pl.targets, part)
	}

	// Answer size: explicit, or derived from the single example region
	// (the query-by-example default, matching the wire schema).
	a, b := ast.A, ast.B
	if a == 0 && b == 0 {
		if len(sims) == 1 && sims[0].Place.Region != nil {
			r := sims[0].Place.Region
			a, b = r.MaxX-r.MinX, r.MaxY-r.MinY
		} else {
			return nil, planErrf("size is required unless the query has exactly one example region")
		}
	}
	if a <= 0 || b <= 0 {
		return nil, planErrf("answer size must be positive, got %g x %g", a, b)
	}
	pl.A, pl.B = a, b

	if ast.TopK > maxTopK {
		return nil, planErrf("top %d exceeds the bound %d", ast.TopK, maxTopK)
	}
	pl.TopK = ast.TopK
	if ast.Delta < 0 {
		return nil, planErrf("delta must be non-negative, got %g", ast.Delta)
	}
	pl.Delta = ast.Delta
	if ast.DiverseBy < 0 {
		return nil, planErrf("diverse by must be non-negative, got %g", ast.DiverseBy)
	}
	pl.DiverseBy = ast.DiverseBy
	pl.TimeoutMS = ast.TimeoutMS

	// Exclusions: explicit rects in canonical order, then (under
	// "excluding example") every example region in clause order — the
	// same construction a hand-wired client writes, so the compiled
	// Exclude slice is byte-identical to the struct form.
	excl := append([]Rect4(nil), ast.Exclude...)
	sort.Slice(excl, func(i, j int) bool { return lessRect4(excl[i], excl[j]) })
	for _, r := range excl {
		lr := rectLib(r)
		if !lr.IsValid() {
			return nil, planErrf("invalid exclusion %s: min must not exceed max", r.canon())
		}
		pl.Exclude = append(pl.Exclude, lr)
	}
	if ast.ExcludeExample {
		n := 0
		for _, part := range pl.targets {
			if part.region != nil {
				pl.exampleExcludes = append(pl.exampleExcludes, *part.region)
				n++
			}
		}
		if n == 0 {
			return nil, planErrf("excluding example requires at least one example region")
		}
	}
	if ast.Within != nil {
		w := rectLib(*ast.Within)
		if !w.IsValid() {
			return nil, planErrf("invalid within extent: min must not exceed max")
		}
		pl.Within = &w
	}

	// Dissimilarity post-filters.
	for _, c := range ast.Dissimilar {
		if c.By < 0 {
			return nil, planErrf("dissimilar … by must be non-negative, got %g", c.By)
		}
		ce, err := p.compileExpr(c.Expr)
		if err != nil {
			return nil, err
		}
		f := Filter{Comp: ce.comp, Weights: ce.weights, By: c.By, canon: c.canon()}
		f.place = targetPart{comp: ce.comp, dims: ce.comp.Dims(), canon: c.Place.canon()}
		switch {
		case c.Place.Region != nil:
			r := rectLib(*c.Place.Region)
			if !r.IsValid() {
				return nil, planErrf("invalid example region %s: min must not exceed max", c.Place.canon())
			}
			f.place.region = &r
		default:
			if len(c.Place.Target) != ce.comp.Dims() {
				return nil, planErrf("target vector has %d dims, %s produces %d", len(c.Place.Target), ce.key, ce.comp.Dims())
			}
			f.place.lit = c.Place.Target
		}
		pl.Filters = append(pl.Filters, f)
	}

	// Round budget for filtered streams: the explicit scan cap, or
	// enough headroom that moderate rejection rates still fill k.
	if ast.Scan > 0 {
		pl.ScanCap = ast.Scan
	} else if len(pl.Filters) > 0 || pl.DiverseBy > 0 {
		k := pl.K()
		pl.ScanCap = 4 * k
		if pl.ScanCap < k+8 {
			pl.ScanCap = k + 8
		}
	}
	if pl.ScanCap > 0 && pl.ScanCap < pl.K() {
		return nil, planErrf("scan %d is below top %d", pl.ScanCap, pl.K())
	}
	return pl, nil
}

// Request compiles the plan against a dataset snapshot into the
// hand-wired engine request it denotes. This is the bit-identity
// obligation's left-hand side: the returned request must be
// Float64bits-identical to what a client building asrs.QueryRequest by
// hand (same composite singleton, same construction order) would
// write. Region targets are represented against ds here, so callers
// must pass the same epoch view the request will run against.
func (pl *Plan) Request(ds *asrs.Dataset) (asrs.QueryRequest, error) {
	if pl.Max != nil {
		return asrs.QueryRequest{}, planErrf("maximize plans have no engine request form")
	}
	target, err := pl.target(ds)
	if err != nil {
		return asrs.QueryRequest{}, err
	}
	q, err := asrs.QueryFromTarget(pl.Comp, target, pl.Weights)
	if err != nil {
		return asrs.QueryRequest{}, planErrf("%v", err)
	}
	q.Norm = pl.Norm
	req := asrs.QueryRequest{Query: q, A: pl.A, B: pl.B, TopK: pl.TopK}
	if n := len(pl.Exclude) + len(pl.exampleExcludes); n > 0 {
		req.Exclude = make([]asrs.Rect, 0, n)
		req.Exclude = append(req.Exclude, pl.Exclude...)
		req.Exclude = append(req.Exclude, pl.exampleExcludes...)
	}
	if pl.Within != nil {
		w := *pl.Within
		req.Within = &w
	}
	return req, nil
}

// target assembles the request target from the plan's parts.
func (pl *Plan) target(ds *asrs.Dataset) ([]float64, error) {
	if len(pl.targets) == 1 && pl.targets[0].lit != nil {
		return pl.targets[0].lit, nil
	}
	var out []float64
	for _, part := range pl.targets {
		if part.lit != nil {
			out = append(out, part.lit...)
			continue
		}
		out = append(out, asrs.Represent(ds, part.comp, *part.region)...)
	}
	return out, nil
}

// ApplyOptions pins per-request options onto req exactly as the wire
// layer does: a δ-approximate plan copies the serving defaults and sets
// only Delta (opting the request out of dedup groups without losing the
// operator's worker bound).
func (pl *Plan) ApplyOptions(req *asrs.QueryRequest, base asrs.Options) {
	if pl.Delta > 0 {
		opt := base
		opt.Delta = pl.Delta
		req.Options = &opt
	}
}

func rectLib(r Rect4) asrs.Rect {
	return asrs.Rect{MinX: r.MinX, MinY: r.MinY, MaxX: r.MaxX, MaxY: r.MaxY}
}

func lessRect4(a, b Rect4) bool {
	if a.MinX != b.MinX {
		return a.MinX < b.MinX
	}
	if a.MinY != b.MinY {
		return a.MinY < b.MinY
	}
	if a.MaxX != b.MaxX {
		return a.MaxX < b.MaxX
	}
	return a.MaxY < b.MaxY
}
