package query

import (
	"fmt"
	"sort"
	"sync"

	"asrs"
)

// PlanError is the typed planning failure: the query parsed but does
// not type-check against the serving schema or violates a semantic
// rule.
type PlanError struct {
	Msg string
}

func (e *PlanError) Error() string { return "query: plan error: " + e.Msg }

func planErrf(format string, args ...any) error {
	return &PlanError{Msg: fmt.Sprintf(format, args...)}
}

// Planner compiles ASTs against one serving schema. It owns the
// composite interner: the engine's index/pyramid/prepared-shape caches
// are keyed by composite POINTER identity, so semantically identical
// expressions must compile to the same long-lived *Composite — the
// interner guarantees one singleton per canonical spec list, and the
// Named registry maps @name references to the daemon's registered
// (pre-warmed) singletons. Safe for concurrent use.
type Planner struct {
	schema *asrs.Schema
	named  map[string]*asrs.Composite

	mu       sync.Mutex
	interned map[string]*asrs.Composite
}

// NewPlanner builds a planner over the given schema. named maps @name
// references to registered composite singletons (may be nil).
func NewPlanner(schema *asrs.Schema, named map[string]*asrs.Composite) *Planner {
	return &Planner{schema: schema, named: named, interned: map[string]*asrs.Composite{}}
}

// InternedComposites reports how many distinct inline composites the
// planner has compiled (observability; the interner only grows).
func (p *Planner) InternedComposites() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.interned)
}

// compiledExpr is one expression resolved against the schema: its
// interned composite, per-dimension weights (nil = all ones), and the
// channel breakdown for EXPLAIN.
type compiledExpr struct {
	comp     *asrs.Composite
	weights  []float64 // nil when every weight is 1
	key      string    // interner key ("@name" for named references)
	channels []ExplainChannel
	specs    []asrs.AggSpec // inline atoms only (nil for @name)
}

// sortTerms returns the expression's terms in canonical order — the
// same order Canonical renders, so the compiled channel layout matches
// the canonical text and two spellings of one expression produce
// byte-identical weight vectors.
func sortTerms(e Expr) []Term {
	terms := append([]Term(nil), e.Terms...)
	sort.SliceStable(terms, func(i, j int) bool {
		ai, aj := terms[i].Atom.canon(), terms[j].Atom.canon()
		if ai != aj {
			return ai < aj
		}
		return terms[i].Coef < terms[j].Coef
	})
	return terms
}

// compileExpr type-checks one expression and resolves its composite.
func (p *Planner) compileExpr(e Expr) (compiledExpr, error) {
	if len(e.Terms) == 0 {
		return compiledExpr{}, planErrf("empty expression")
	}
	terms := sortTerms(e)

	// A @name reference stands for a whole registered composite whose
	// spec list is opaque; it cannot be concatenated with inline atoms.
	for _, t := range terms {
		if t.Atom.Fn == "@" && len(terms) > 1 {
			return compiledExpr{}, planErrf("@%s cannot be combined with other atoms (a registered composite's channels are opaque)", t.Atom.Attr)
		}
	}
	if terms[0].Atom.Fn == "@" {
		name, coef := terms[0].Atom.Attr, terms[0].Coef
		comp, ok := p.named[name]
		if !ok {
			return compiledExpr{}, planErrf("unknown composite @%s", name)
		}
		if coef < 0 {
			return compiledExpr{}, planErrf("negative weight %g on @%s (weights must be non-negative)", coef, name)
		}
		ce := compiledExpr{comp: comp, key: "@" + name}
		ce.channels = []ExplainChannel{{Atom: terms[0].Atom.canon(), Kind: "composite", Dims: comp.Dims(), Weight: coef}}
		if coef != 1 {
			w := make([]float64, comp.Dims())
			for i := range w {
				w[i] = coef
			}
			ce.weights = w
		}
		return ce, nil
	}

	var (
		specs   []asrs.AggSpec
		weights []float64
		allOne  = true
		keys    []string
	)
	for _, t := range terms {
		if t.Coef < 0 {
			return compiledExpr{}, planErrf("negative weight %g on %s (weights must be non-negative)", t.Coef, t.Atom.canon())
		}
		spec, dims, kindName, err := p.compileAtom(t.Atom)
		if err != nil {
			return compiledExpr{}, err
		}
		specs = append(specs, spec)
		keys = append(keys, t.Atom.canon())
		for i := 0; i < dims; i++ {
			weights = append(weights, t.Coef)
		}
		if t.Coef != 1 {
			allOne = false
		}
		_ = kindName
	}
	key := ""
	for i, k := range keys {
		if i > 0 {
			key += "|"
		}
		key += k
	}
	comp, err := p.intern(key, specs)
	if err != nil {
		return compiledExpr{}, err
	}
	ce := compiledExpr{comp: comp, key: key, specs: specs}
	if !allOne {
		ce.weights = weights
	}
	off := 0
	for i, t := range terms {
		dims := atomDims(p.schema, t.Atom)
		ce.channels = append(ce.channels, ExplainChannel{
			Atom: keys[i], Kind: t.Atom.Fn, Attr: t.Atom.Attr, Dims: dims, Weight: t.Coef,
		})
		off += dims
	}
	return ce, nil
}

// atomDims returns the representation dims an atom contributes (the
// atom must already have type-checked).
func atomDims(schema *asrs.Schema, a Atom) int {
	if a.Fn == "dist" {
		if attr, ok := schema.Lookup(a.Attr); ok {
			return attr.DomainSize()
		}
	}
	return 1
}

// compileAtom type-checks one atom into its aggregation spec.
func (p *Planner) compileAtom(a Atom) (asrs.AggSpec, int, string, error) {
	var spec asrs.AggSpec
	dims := 1
	switch a.Fn {
	case "dist":
		attr, ok := p.schema.Lookup(a.Attr)
		if !ok {
			return spec, 0, "", planErrf("unknown attribute %q in %s", a.Attr, a.canon())
		}
		if attr.Kind != asrs.Categorical {
			return spec, 0, "", planErrf("dist(%s) requires a categorical attribute, %q is numeric", a.Attr, a.Attr)
		}
		spec = asrs.AggSpec{Kind: asrs.Distribution, Attr: a.Attr}
		dims = attr.DomainSize()
	case "sum", "avg":
		attr, ok := p.schema.Lookup(a.Attr)
		if !ok {
			return spec, 0, "", planErrf("unknown attribute %q in %s", a.Attr, a.canon())
		}
		if attr.Kind != asrs.Numeric {
			return spec, 0, "", planErrf("%s(%s) requires a numeric attribute, %q is categorical", a.Fn, a.Attr, a.Attr)
		}
		kind := asrs.Sum
		if a.Fn == "avg" {
			kind = asrs.Average
		}
		spec = asrs.AggSpec{Kind: kind, Attr: a.Attr}
	case "count":
		spec = asrs.AggSpec{Kind: asrs.Count, Attr: a.Attr}
	default:
		return spec, 0, "", planErrf("unknown aggregate %q", a.Fn)
	}
	if a.Where != nil {
		sel, err := p.compileWhere(a)
		if err != nil {
			return spec, 0, "", err
		}
		spec.Select = sel
	}
	return spec, dims, a.Fn, nil
}

// compileWhere resolves an atom's selection predicate to a selector.
func (p *Planner) compileWhere(a Atom) (asrs.Selector, error) {
	w := a.Where
	idx := p.schema.Index(w.Attr)
	if idx < 0 {
		return nil, planErrf("unknown attribute %q in %s", w.Attr, a.canon())
	}
	attr := p.schema.At(idx)
	if w.IsRange {
		if attr.Kind != asrs.Numeric {
			return nil, planErrf("where %s in […] requires a numeric attribute, %q is categorical", w.Attr, w.Attr)
		}
		if !(w.Lo <= w.Hi) {
			return nil, planErrf("where %s in [%g,%g]: empty range", w.Attr, w.Lo, w.Hi)
		}
		return asrs.SelectNumRange(idx, w.Lo, w.Hi), nil
	}
	if attr.Kind != asrs.Categorical {
		return nil, planErrf("where %s = … requires a categorical attribute, %q is numeric", w.Attr, w.Attr)
	}
	vi := p.schema.ValueIndex(w.Attr, w.Eq)
	if vi < 0 {
		return nil, planErrf("attribute %q has no value %q", w.Attr, w.Eq)
	}
	return asrs.SelectCategory(idx, vi), nil
}

// intern returns the singleton composite for a canonical spec list,
// compiling it on first use.
func (p *Planner) intern(key string, specs []asrs.AggSpec) (*asrs.Composite, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if c, ok := p.interned[key]; ok {
		return c, nil
	}
	c, err := asrs.NewComposite(p.schema, specs...)
	if err != nil {
		return nil, planErrf("%v", err)
	}
	p.interned[key] = c
	return c, nil
}
