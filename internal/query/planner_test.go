package query_test

import (
	"errors"
	"testing"

	"asrs"
	"asrs/internal/agg"
	"asrs/internal/dataset"
	"asrs/internal/query"
)

// TestPlanErrors: every schema violation is a typed *PlanError.
func TestPlanErrors(t *testing.T) {
	ds := dataset.Random(10, 100, 1)
	f := agg.MustNew(ds.Schema, agg.Spec{Kind: agg.Distribution, Attr: "cat"})
	p := query.NewPlanner(ds.Schema, map[string]*asrs.Composite{"named": f})
	cases := []string{
		`find similar to target(1) under dist(nosuch)`,
		`find similar to target(1) under sum(cat)`,                                                      // categorical under a numeric atom
		`find similar to target(1,2,3) under dist(val)`,                                                 // numeric under dist
		`find similar to target(1) under sum(val where cat = 'notavalue')`,                              // unknown category value
		`find similar to target(1) under sum(val where val = 'x')`,                                      // eq on numeric attr
		`find similar to target(1) under sum(val where cat in [1,2])`,                                   // range on categorical
		`find similar to target(1) under sum(val where val in [5,1])`,                                   // inverted range
		`find similar to target(1,2) under sum(val)`,                                                    // target dims mismatch
		`find similar to target(1) under @nosuch`,                                                       // unknown named composite
		`find similar to target(1) under @named + sum(val)`,                                             // opaque @name mixed with atoms
		`find size 2 x 2 similar to target(1) under sum(val) and similar to target(1,2,3) under @named`, // @name in a conjunction
		`find similar to target(1) under sum(val)`,                                                      // no size and no example region
		`find size -1 x 2 similar to target(1) under sum(val)`,                                          // non-positive size
		`find top 2 similar to region(5,5,1,1) under sum(val)`,                                          // inverted example region
		`find similar to region(0,0,2,2) under sum(val) excluding region(3,3,1,1)`,                      // inverted exclude
		`find similar to region(0,0,2,2) under sum(val) within region(9,9,1,1)`,                         // inverted within
		`find similar to target(1) size 2 x 2 under sum(val) excluding example`,                         // no example region to exclude
		`find top 8 size 2 x 2 similar to target(1) under sum(val) diverse by 1 scan 4`,                 // scan below k
		`find similar to target(1) size 2 x 2 under -2*sum(val)`,                                        // negative coefficient
		`maximize sum(cat) size 1 x 1`,                                                                  // categorical under maximize sum
		`maximize sum(nosuch) size 1 x 1`,
	}
	for _, src := range cases {
		_, err := p.ParseAndPlan(src)
		if err == nil {
			t.Errorf("ParseAndPlan(%q): expected error", src)
			continue
		}
		var pe *query.PlanError
		var parseErr *query.ParseError
		if !errors.As(err, &pe) && !errors.As(err, &parseErr) {
			t.Errorf("ParseAndPlan(%q): error %v is neither *PlanError nor *ParseError", src, err)
		}
	}
}

// TestPlannerInterning: semantically identical expressions — whatever
// their source order — compile to ONE composite singleton, so they
// land in the same engine dedup and prepared-shape groups.
func TestPlannerInterning(t *testing.T) {
	ds := dataset.Random(10, 100, 2)
	p := query.NewPlanner(ds.Schema, nil)
	a, err := p.ParseAndPlan(`find size 2 x 2 similar to target(1,2,1,5) under dist(cat) + sum(val)`)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.ParseAndPlan(`find top 4 size 3 x 3 similar to target(0,0,0,0) under sum(val) + dist(cat)`)
	if err != nil {
		t.Fatal(err)
	}
	if a.Comp != b.Comp {
		t.Error("term order broke composite interning: two singletons for one spec list")
	}
	if a.CompKey != b.CompKey {
		t.Errorf("keys differ: %q vs %q", a.CompKey, b.CompKey)
	}
	c, err := p.ParseAndPlan(`find size 2 x 2 similar to target(1,2,1,5) under dist(cat) + 2*sum(val)`)
	if err != nil {
		t.Fatal(err)
	}
	if c.Comp != a.Comp {
		t.Error("coefficients must not change the composite singleton (weights are per-request)")
	}
	if len(c.Weights) != 4 || c.Weights[3] != 2 {
		t.Errorf("weights = %v, want [1 1 1 2]", c.Weights)
	}
	if a.Weights != nil {
		t.Errorf("all-ones weights should compile to nil, got %v", a.Weights)
	}
}

// TestPlannerNamedComposite: @name resolves the registered singleton
// itself — not a rebuilt equivalent.
func TestPlannerNamedComposite(t *testing.T) {
	ds := dataset.Random(10, 100, 3)
	f := agg.MustNew(ds.Schema, agg.Spec{Kind: agg.Distribution, Attr: "cat"})
	p := query.NewPlanner(ds.Schema, map[string]*asrs.Composite{"mine": f})
	pl, err := p.ParseAndPlan(`find size 2 x 2 similar to target(1,0,0) under @mine`)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Comp != f {
		t.Error("@mine compiled to a different composite than the registered singleton")
	}
}
