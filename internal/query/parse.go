package query

import (
	"fmt"
	"strconv"
	"strings"
)

// Parser bounds: a query is typed by a human or templated by a client,
// never corpus-sized. The caps keep arbitrary input (fuzzing, abuse)
// from allocating unbounded ASTs before the planner ever sees them.
const (
	maxTopK       = 4096
	maxScan       = 1 << 20
	maxTargetDims = 4096
	maxTerms      = 256
	maxClauses    = 256
	maxExcludes   = 4096
)

// Parse parses one query in the language of DESIGN.md §12. It returns
// the AST or a *ParseError; it never panics on any input.
func Parse(src string) (*AST, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	ast, err := p.query()
	if err != nil {
		return nil, err
	}
	if p.cur().kind != tokEOF {
		return nil, p.errf("unexpected %s after the query", p.describe())
	}
	return ast, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token { return p.toks[p.i] }

func (p *parser) describe() string {
	t := p.cur()
	switch t.kind {
	case tokEOF:
		return "end of query"
	case tokString:
		return fmt.Sprintf("string %q", t.text)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

func (p *parser) errf(format string, args ...any) error {
	return &ParseError{p.cur().pos, fmt.Sprintf(format, args...)}
}

// isKw reports whether the current token is the given keyword
// (case-insensitive identifier match).
func (p *parser) isKw(kw string) bool {
	t := p.cur()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) acceptKw(kw string) bool {
	if p.isKw(kw) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		return p.errf("expected %q, got %s", kw, p.describe())
	}
	return nil
}

func (p *parser) acceptPunct(s string) bool {
	t := p.cur()
	if t.kind == tokPunct && t.text == s {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	if !p.acceptPunct(s) {
		return p.errf("expected %q, got %s", s, p.describe())
	}
	return nil
}

func (p *parser) identName(what string) (string, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return "", p.errf("expected %s, got %s", what, p.describe())
	}
	p.i++
	return t.text, nil
}

// number parses a (possibly negative) finite float literal.
func (p *parser) number() (float64, error) {
	neg := false
	if p.cur().kind == tokPunct && p.cur().text == "-" {
		neg = true
		p.i++
	}
	t := p.cur()
	if t.kind != tokNumber {
		return 0, p.errf("expected a number, got %s", p.describe())
	}
	v, err := strconv.ParseFloat(t.text, 64)
	if err != nil {
		return 0, &ParseError{t.pos, fmt.Sprintf("invalid number %q", t.text)}
	}
	p.i++
	if neg {
		v = -v
	}
	return v, nil
}

// natural parses a non-negative integer literal bounded by max.
func (p *parser) natural(what string, max int) (int, error) {
	t := p.cur()
	if t.kind != tokNumber {
		return 0, p.errf("expected %s, got %s", what, p.describe())
	}
	v, err := strconv.Atoi(t.text)
	if err != nil || v < 0 {
		return 0, &ParseError{t.pos, fmt.Sprintf("invalid %s %q", what, t.text)}
	}
	if v > max {
		return 0, &ParseError{t.pos, fmt.Sprintf("%s %d exceeds the bound %d", what, v, max)}
	}
	p.i++
	return v, nil
}

func (p *parser) query() (*AST, error) {
	ast := &AST{}
	if p.acceptKw("explain") {
		ast.Explain = true
	}
	switch {
	case p.acceptKw("find"):
		if err := p.find(ast); err != nil {
			return nil, err
		}
	case p.acceptKw("maximize"):
		if err := p.maximize(ast); err != nil {
			return nil, err
		}
	default:
		return nil, p.errf("expected \"find\" or \"maximize\", got %s", p.describe())
	}
	return ast, nil
}

func (p *parser) maximize(ast *AST) error {
	m := &MaximizeClause{}
	switch {
	case p.acceptKw("count"):
		if err := p.expectPunct("("); err != nil {
			return err
		}
		if err := p.expectPunct(")"); err != nil {
			return err
		}
		m.Fn = "count"
	case p.acceptKw("sum"):
		if err := p.expectPunct("("); err != nil {
			return err
		}
		name, err := p.identName("an attribute name")
		if err != nil {
			return err
		}
		if err := p.expectPunct(")"); err != nil {
			return err
		}
		m.Fn, m.Attr = "sum", name
	default:
		return p.errf("maximize supports count() or sum(attr), got %s", p.describe())
	}
	if err := p.expectKw("size"); err != nil {
		return err
	}
	var err error
	if m.A, m.B, err = p.sizePair(); err != nil {
		return err
	}
	if p.acceptKw("timeout") {
		ms, err := p.natural("timeout", 1<<30)
		if err != nil {
			return err
		}
		ast.TimeoutMS = int64(ms)
	}
	ast.Maximize = m
	return nil
}

func (p *parser) sizePair() (a, b float64, err error) {
	if a, err = p.number(); err != nil {
		return 0, 0, err
	}
	if err = p.expectKw("x"); err != nil {
		return 0, 0, err
	}
	if b, err = p.number(); err != nil {
		return 0, 0, err
	}
	return a, b, nil
}

// find parses the find form: a freeform bag of clauses, each introduced
// by its keyword, with "and" as an optional separator. Scalar clauses
// (top, size, norm, …) may appear once.
func (p *parser) find(ast *AST) error {
	seen := map[string]bool{}
	once := func(what string) error {
		if seen[what] {
			return p.errf("duplicate %q clause", what)
		}
		seen[what] = true
		return nil
	}
	for p.cur().kind != tokEOF {
		hadAnd := p.acceptKw("and")
		switch {
		case p.acceptKw("top"):
			if err := once("top"); err != nil {
				return err
			}
			k, err := p.natural("top-k", maxTopK)
			if err != nil {
				return err
			}
			ast.TopK = k
		case p.acceptKw("size"):
			if err := once("size"); err != nil {
				return err
			}
			var err error
			if ast.A, ast.B, err = p.sizePair(); err != nil {
				return err
			}
		case p.acceptKw("similar"):
			if len(ast.Similar)+len(ast.Dissimilar) >= maxClauses {
				return p.errf("too many predicate clauses (max %d)", maxClauses)
			}
			c, err := p.similarBody()
			if err != nil {
				return err
			}
			ast.Similar = append(ast.Similar, c)
		case p.acceptKw("dissimilar"):
			if len(ast.Similar)+len(ast.Dissimilar) >= maxClauses {
				return p.errf("too many predicate clauses (max %d)", maxClauses)
			}
			c, err := p.similarBody()
			if err != nil {
				return err
			}
			if err := p.expectKw("by"); err != nil {
				return err
			}
			by, err := p.number()
			if err != nil {
				return err
			}
			ast.Dissimilar = append(ast.Dissimilar, DissimilarClause{Place: c.Place, Expr: c.Expr, By: by})
		case p.acceptKw("diverse"):
			if err := once("diverse"); err != nil {
				return err
			}
			if err := p.expectKw("by"); err != nil {
				return err
			}
			d, err := p.number()
			if err != nil {
				return err
			}
			ast.DiverseBy = d
		case p.acceptKw("excluding"):
			if p.acceptKw("example") {
				ast.ExcludeExample = true
				break
			}
			if len(ast.Exclude) >= maxExcludes {
				return p.errf("too many exclusions (max %d)", maxExcludes)
			}
			r, err := p.rect()
			if err != nil {
				return err
			}
			ast.Exclude = append(ast.Exclude, r)
		case p.acceptKw("within"):
			if err := once("within"); err != nil {
				return err
			}
			r, err := p.rect()
			if err != nil {
				return err
			}
			ast.Within = &r
		case p.acceptKw("norm"):
			if err := once("norm"); err != nil {
				return err
			}
			switch {
			case p.acceptKw("l1"):
				ast.Norm = "l1"
			case p.acceptKw("l2"):
				ast.Norm = "l2"
			default:
				return p.errf("norm must be l1 or l2, got %s", p.describe())
			}
		case p.acceptKw("delta"):
			if err := once("delta"); err != nil {
				return err
			}
			d, err := p.number()
			if err != nil {
				return err
			}
			ast.Delta = d
		case p.acceptKw("scan"):
			if err := once("scan"); err != nil {
				return err
			}
			n, err := p.natural("scan cap", maxScan)
			if err != nil {
				return err
			}
			ast.Scan = n
		case p.acceptKw("timeout"):
			if err := once("timeout"); err != nil {
				return err
			}
			ms, err := p.natural("timeout", 1<<30)
			if err != nil {
				return err
			}
			ast.TimeoutMS = int64(ms)
		default:
			if hadAnd {
				return p.errf("expected a clause after \"and\", got %s", p.describe())
			}
			return p.errf("expected a clause, got %s", p.describe())
		}
	}
	if len(ast.Similar) == 0 {
		return p.errf("find requires at least one \"similar to\" clause")
	}
	return nil
}

// similarBody parses "to <place> under <expr>" (shared by similar and
// dissimilar clauses).
func (p *parser) similarBody() (SimilarClause, error) {
	if err := p.expectKw("to"); err != nil {
		return SimilarClause{}, err
	}
	place, err := p.place()
	if err != nil {
		return SimilarClause{}, err
	}
	if err := p.expectKw("under"); err != nil {
		return SimilarClause{}, err
	}
	expr, err := p.expr()
	if err != nil {
		return SimilarClause{}, err
	}
	return SimilarClause{Place: place, Expr: expr}, nil
}

func (p *parser) place() (Place, error) {
	if p.isKw("region") {
		r, err := p.rect()
		if err != nil {
			return Place{}, err
		}
		return Place{Region: &r}, nil
	}
	if p.acceptKw("target") {
		if err := p.expectPunct("("); err != nil {
			return Place{}, err
		}
		var vec []float64
		for {
			v, err := p.number()
			if err != nil {
				return Place{}, err
			}
			vec = append(vec, v)
			if len(vec) > maxTargetDims {
				return Place{}, p.errf("target vector exceeds %d dims", maxTargetDims)
			}
			if !p.acceptPunct(",") {
				break
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return Place{}, err
		}
		return Place{Target: vec}, nil
	}
	return Place{}, p.errf("expected region(…) or target(…), got %s", p.describe())
}

func (p *parser) rect() (Rect4, error) {
	if err := p.expectKw("region"); err != nil {
		return Rect4{}, err
	}
	if err := p.expectPunct("("); err != nil {
		return Rect4{}, err
	}
	var vals [4]float64
	for i := 0; i < 4; i++ {
		if i > 0 {
			if err := p.expectPunct(","); err != nil {
				return Rect4{}, err
			}
		}
		v, err := p.number()
		if err != nil {
			return Rect4{}, err
		}
		vals[i] = v
	}
	if err := p.expectPunct(")"); err != nil {
		return Rect4{}, err
	}
	return Rect4{MinX: vals[0], MinY: vals[1], MaxX: vals[2], MaxY: vals[3]}, nil
}

func (p *parser) expr() (Expr, error) {
	var e Expr
	for {
		t, err := p.term()
		if err != nil {
			return Expr{}, err
		}
		e.Terms = append(e.Terms, t)
		if len(e.Terms) > maxTerms {
			return Expr{}, p.errf("expression exceeds %d terms", maxTerms)
		}
		if !p.acceptPunct("+") {
			return e, nil
		}
	}
}

func (p *parser) term() (Term, error) {
	t := Term{Coef: 1}
	cur := p.cur()
	if cur.kind == tokNumber || (cur.kind == tokPunct && cur.text == "-") {
		v, err := p.number()
		if err != nil {
			return Term{}, err
		}
		if err := p.expectPunct("*"); err != nil {
			return Term{}, err
		}
		t.Coef = v
	}
	a, err := p.atom()
	if err != nil {
		return Term{}, err
	}
	t.Atom = a
	return t, nil
}

func (p *parser) atom() (Atom, error) {
	if p.acceptPunct("@") {
		name, err := p.identName("a composite name")
		if err != nil {
			return Atom{}, err
		}
		return Atom{Fn: "@", Attr: name}, nil
	}
	var fn string
	switch {
	case p.acceptKw("dist"):
		fn = "dist"
	case p.acceptKw("sum"):
		fn = "sum"
	case p.acceptKw("avg"):
		fn = "avg"
	case p.acceptKw("count"):
		fn = "count"
	default:
		return Atom{}, p.errf("expected dist(…), sum(…), avg(…), count(…) or @name, got %s", p.describe())
	}
	if err := p.expectPunct("("); err != nil {
		return Atom{}, err
	}
	a := Atom{Fn: fn}
	if fn != "count" {
		name, err := p.identName("an attribute name")
		if err != nil {
			return Atom{}, err
		}
		a.Attr = name
	}
	if p.isKw("where") {
		w, err := p.where()
		if err != nil {
			return Atom{}, err
		}
		a.Where = &w
	}
	if err := p.expectPunct(")"); err != nil {
		return Atom{}, err
	}
	return a, nil
}

func (p *parser) where() (Where, error) {
	if err := p.expectKw("where"); err != nil {
		return Where{}, err
	}
	name, err := p.identName("an attribute name")
	if err != nil {
		return Where{}, err
	}
	w := Where{Attr: name}
	switch {
	case p.acceptPunct("="):
		t := p.cur()
		switch t.kind {
		case tokString, tokIdent:
			w.Eq = t.text
			p.i++
		default:
			return Where{}, p.errf("expected a categorical value, got %s", p.describe())
		}
	case p.acceptKw("in"):
		if err := p.expectPunct("["); err != nil {
			return Where{}, err
		}
		if w.Lo, err = p.number(); err != nil {
			return Where{}, err
		}
		if err := p.expectPunct(","); err != nil {
			return Where{}, err
		}
		if w.Hi, err = p.number(); err != nil {
			return Where{}, err
		}
		if err := p.expectPunct("]"); err != nil {
			return Where{}, err
		}
		w.IsRange = true
	default:
		return Where{}, p.errf("expected \"=\" or \"in\" after the where attribute, got %s", p.describe())
	}
	return w, nil
}
