package query

import (
	"fmt"
	"strings"
	"unicode"
)

// ParseError is the typed parse failure: a byte offset into the query
// text plus a message. FuzzParseQuery holds Parse to "typed error or
// success, never a panic".
type ParseError struct {
	Pos int
	Msg string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("query: parse error at offset %d: %s", e.Pos, e.Msg)
}

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokPunct // single-rune punctuation: ( ) , * + = [ ] @ -
)

type token struct {
	kind tokKind
	text string
	pos  int
}

// lexer tokenizes a query string. Keywords are plain identifiers
// (matched case-insensitively by the parser); numbers are unsigned
// literals with optional fraction and exponent (signs are separate
// punctuation tokens, folded in by the parser's number rule).
type lexer struct {
	src  string
	off  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.off < len(l.src) {
		c := l.src[l.off]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.off++
		case c >= '0' && c <= '9':
			if err := l.number(); err != nil {
				return nil, err
			}
		case isIdentStart(rune(c)):
			l.ident()
		case c == '\'' || c == '"':
			if err := l.str(c); err != nil {
				return nil, err
			}
		case strings.IndexByte("(),*+=[]@-", c) >= 0:
			l.toks = append(l.toks, token{tokPunct, string(c), l.off})
			l.off++
		default:
			return nil, &ParseError{l.off, fmt.Sprintf("unexpected character %q", c)}
		}
	}
	l.toks = append(l.toks, token{tokEOF, "", len(src)})
	return l.toks, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentRune(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (l *lexer) ident() {
	start := l.off
	for l.off < len(l.src) && isIdentRune(rune(l.src[l.off])) {
		l.off++
	}
	l.toks = append(l.toks, token{tokIdent, l.src[start:l.off], start})
}

func (l *lexer) number() error {
	start := l.off
	digits := func() {
		for l.off < len(l.src) && l.src[l.off] >= '0' && l.src[l.off] <= '9' {
			l.off++
		}
	}
	digits()
	if l.off < len(l.src) && l.src[l.off] == '.' {
		l.off++
		digits()
	}
	if l.off < len(l.src) && (l.src[l.off] == 'e' || l.src[l.off] == 'E') {
		mark := l.off
		l.off++
		if l.off < len(l.src) && (l.src[l.off] == '+' || l.src[l.off] == '-') {
			l.off++
		}
		if l.off >= len(l.src) || l.src[l.off] < '0' || l.src[l.off] > '9' {
			// Not an exponent after all (e.g. "3 x 2" lexed as "3", then
			// ident "x"): rewind and let the ident rule take it.
			l.off = mark
		} else {
			digits()
		}
	}
	l.toks = append(l.toks, token{tokNumber, l.src[start:l.off], start})
	return nil
}

func (l *lexer) str(quote byte) error {
	start := l.off
	l.off++ // opening quote
	var b strings.Builder
	for l.off < len(l.src) {
		c := l.src[l.off]
		if c == quote {
			l.off++
			l.toks = append(l.toks, token{tokString, b.String(), start})
			return nil
		}
		if c == '\\' && l.off+1 < len(l.src) {
			l.off++
			c = l.src[l.off]
		}
		b.WriteByte(c)
		l.off++
	}
	return &ParseError{start, "unterminated string literal"}
}
