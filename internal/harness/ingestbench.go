package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"asrs"
	"asrs/internal/dataset"
)

// IngestBenchConfig drives the streaming-ingest benchmark behind
// BENCH_PR8.json: a seed corpus plus a stream of durable inserts,
// measuring (a) ingest throughput per WAL sync policy, (b) the query
// cost of serving over a staged delta versus a static corpus —
// including the first query after an insert, which pays the epoch's
// pyramid fold — and (c) boot-time recovery replay of the full WAL.
// Every staged/recovered answer is checked bit-identical to a
// from-scratch engine over seed ++ inserts, so the bench doubles as an
// acceptance check for the ingest path (DESIGN.md §10).
type IngestBenchConfig struct {
	N       int   // seed corpus cardinality (default 20000)
	Inserts int   // objects streamed in after boot (default 4000)
	Batch   int   // objects per InsertBatch (default 64)
	Queries int   // requests in the query mix (default 12)
	Seed    int64 // corpus + stream seed
	// BaselineNs optionally records an externally measured reference
	// ns/query for provenance.
	BaselineNs int64
	Note       string
}

func (c IngestBenchConfig) normalized() IngestBenchConfig {
	if c.N <= 0 {
		c.N = 20000
	}
	if c.Inserts <= 0 {
		c.Inserts = 4000
	}
	if c.Batch <= 0 {
		c.Batch = 64
	}
	if c.Queries <= 0 {
		c.Queries = 12
	}
	return c
}

// IngestRun is one measured WAL sync policy.
type IngestRun struct {
	Sync          string  `json:"sync"` // "always", "batch", "never"
	Objects       int     `json:"objects"`
	Batches       int     `json:"batches"`
	NsPerObject   int64   `json:"ns_per_object"`
	ObjectsPerSec float64 `json:"objects_per_sec"`
	WALBytes      int64   `json:"wal_bytes"`
}

// QueryRun is one measured serving mode.
type QueryRun struct {
	// Mode is "base_only" (static seed corpus), "staged_steady"
	// (Inserts objects staged, epoch view already materialized),
	// "staged_first_after_insert" (each measured query is the first
	// after an InsertBatch, so it pays the delta fold), or
	// "combined_rebuilt" (static engine over seed ++ inserts — the
	// restart-instead-of-ingest alternative).
	Mode         string `json:"mode"`
	NsPerQuery   int64  `json:"ns_per_query"`
	PyramidFolds int64  `json:"pyramid_folds,omitempty"`
}

// RecoveryRun measures boot-time WAL replay.
type RecoveryRun struct {
	ObjectsReplayed int     `json:"objects_replayed"`
	ReplayMs        float64 `json:"replay_ms"`
	ObjectsPerSec   float64 `json:"objects_per_sec"`
	WALBytes        int64   `json:"wal_bytes"`
}

// IngestBenchReport is the JSON document written to BENCH_PR8.json.
type IngestBenchReport struct {
	Benchmark  string      `json:"benchmark"`
	Dataset    string      `json:"dataset"`
	N          int         `json:"n"`
	Inserts    int         `json:"inserts"`
	Batch      int         `json:"batch"`
	Queries    int         `json:"queries"`
	Seed       int64       `json:"seed"`
	GoMaxProcs int         `json:"gomaxprocs"`
	NumCPU     int         `json:"num_cpu"`
	Host       Host        `json:"host"`
	BaselineNs int64       `json:"baseline_ns_per_query,omitempty"`
	Note       string      `json:"note,omitempty"`
	Dists      []float64   `json:"dists"` // per-query answers, identical in every staged/recovered mode
	IngestRuns []IngestRun `json:"ingest_runs"`
	QueryRuns  []QueryRun  `json:"query_runs"`
	Recovery   RecoveryRun `json:"recovery"`
}

// ingestRequests builds a mixed query workload over the POISyn extent:
// hand-crafted targets (the "virtual region" usage) at district-ish
// scales, so the answers depend on the ingested tail and the same
// requests are valid against every engine in the comparison.
func ingestRequests(f *asrs.Composite, bounds asrs.Rect, k int) []asrs.QueryRequest {
	reqs := make([]asrs.QueryRequest, 0, k)
	for i := 0; len(reqs) < k; i++ {
		scale := 0.05 + 0.02*float64(i%6)
		target := make([]float64, f.Dims())
		target[0] = 40 + 35*float64(i%7) // Sum(visits) channel
		target[len(target)-1] = 2.5      // Average(rating) tail
		reqs = append(reqs, asrs.QueryRequest{
			Query: asrs.Query{F: f, Target: target},
			A:     bounds.Width() * scale,
			B:     bounds.Height() * scale,
		})
	}
	return reqs
}

func dirBytes(dir string) int64 {
	var total int64
	filepath.WalkDir(dir, func(_ string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		if info, err := d.Info(); err == nil {
			total += info.Size()
		}
		return nil
	})
	return total
}

// RunIngestBench benchmarks the streaming-ingest path and writes the
// JSON report to out. Any distance mismatch between a staged or
// recovered engine and the from-scratch rebuild is an error.
func RunIngestBench(out io.Writer, cfg IngestBenchConfig) error {
	cfg = cfg.normalized()
	seedDS := dataset.POIQuant(cfg.N, cfg.Seed)
	pool := dataset.POIQuant(cfg.Inserts, cfg.Seed+1).Objects
	f, err := asrs.NewComposite(seedDS.Schema,
		asrs.AggSpec{Kind: asrs.Sum, Attr: "visits"},
		asrs.AggSpec{Kind: asrs.Average, Attr: "rating"},
	)
	if err != nil {
		return err
	}
	reqs := ingestRequests(f, seedDS.Bounds(), cfg.Queries)

	report := IngestBenchReport{
		Benchmark:  "engine-ingest/poiquant",
		Dataset:    "poiquant",
		N:          cfg.N,
		Inserts:    cfg.Inserts,
		Batch:      cfg.Batch,
		Queries:    cfg.Queries,
		Seed:       cfg.Seed,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Host:       CollectHost(),
		BaselineNs: cfg.BaselineNs,
		Note:       cfg.Note,
	}

	ingestAll := func(eng *asrs.Engine) (int, error) {
		batches := 0
		for lo := 0; lo < len(pool); lo += cfg.Batch {
			hi := lo + cfg.Batch
			if hi > len(pool) {
				hi = len(pool)
			}
			if err := eng.InsertBatch(pool[lo:hi]); err != nil {
				return batches, err
			}
			batches++
		}
		return batches, nil
	}

	// --- (a) ingest throughput per sync policy. One timed pass each:
	// ingest mutates durable state, so the pass cannot repeat under
	// testing.Benchmark; wall time over Inserts objects is the figure.
	// The SyncAlways directory is kept (uncompacted) for the recovery
	// measurement below.
	var recoverDir string
	policies := []struct {
		name string
		sync asrs.SyncPolicy
	}{{"always", asrs.SyncAlways}, {"batch", asrs.SyncBatch}, {"never", asrs.SyncNever}}
	for _, p := range policies {
		dir, err := os.MkdirTemp("", "asrs-ingestbench-"+p.name+"-*")
		if err != nil {
			return err
		}
		eng, err := asrs.NewEngine(seedDS, asrs.EngineOptions{
			Ingest: asrs.IngestOptions{WALDir: dir, Sync: p.sync, CompactAt: -1},
		})
		if err != nil {
			return err
		}
		start := time.Now()
		batches, err := ingestAll(eng)
		elapsed := time.Since(start)
		if err != nil {
			return fmt.Errorf("harness: ingest (%s): %w", p.name, err)
		}
		if err := eng.Close(); err != nil {
			return err
		}
		run := IngestRun{
			Sync:        p.name,
			Objects:     len(pool),
			Batches:     batches,
			NsPerObject: elapsed.Nanoseconds() / int64(len(pool)),
			WALBytes:    dirBytes(dir),
		}
		if elapsed > 0 {
			run.ObjectsPerSec = float64(len(pool)) / elapsed.Seconds()
		}
		report.IngestRuns = append(report.IngestRuns, run)
		if p.name == "always" {
			recoverDir = dir
		} else {
			os.RemoveAll(dir)
		}
	}
	defer os.RemoveAll(recoverDir)

	// --- answer verification: staged delta vs from-scratch rebuild,
	// bit for bit, before anything is timed.
	oracle, err := asrs.NewEngine(combinedPOISyn(seedDS, pool), asrs.EngineOptions{})
	if err != nil {
		return err
	}
	staged, err := asrs.NewEngine(seedDS, asrs.EngineOptions{})
	if err != nil {
		return err
	}
	if _, err := ingestAll(staged); err != nil {
		return fmt.Errorf("harness: memory-only ingest: %w", err)
	}
	report.Dists = make([]float64, len(reqs))
	for i, req := range reqs {
		want := oracle.Query(req)
		got := staged.Query(req)
		if want.Err != nil || got.Err != nil {
			return fmt.Errorf("harness: query %d failed: oracle %v, staged %v", i, want.Err, got.Err)
		}
		if math.Float64bits(got.Results[0].Dist) != math.Float64bits(want.Results[0].Dist) {
			return fmt.Errorf("harness: query %d: staged answered %v, want %v — delta fold must be exact",
				i, got.Results[0].Dist, want.Results[0].Dist)
		}
		report.Dists[i] = want.Results[0].Dist
	}

	// --- (b) query cost by serving mode.
	queryBench := func(eng *asrs.Engine) int64 {
		br := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if resp := eng.Query(reqs[i%len(reqs)]); resp.Err != nil {
					b.Fatal(resp.Err)
				}
			}
		})
		return br.NsPerOp()
	}
	base, err := asrs.NewEngine(seedDS, asrs.EngineOptions{})
	if err != nil {
		return err
	}
	report.QueryRuns = append(report.QueryRuns,
		QueryRun{Mode: "base_only", NsPerQuery: queryBench(base)},
		QueryRun{Mode: "staged_steady", NsPerQuery: queryBench(staged),
			PyramidFolds: staged.Stats().PyramidFolds},
		QueryRun{Mode: "combined_rebuilt", NsPerQuery: queryBench(oracle)},
	)
	// First query after an insert pays the epoch's pyramid fold (or a
	// full rebuild when the fold gate refuses): alternate insert/query
	// so every measured query materializes a fresh epoch view.
	epoch, err := asrs.NewEngine(seedDS, asrs.EngineOptions{})
	if err != nil {
		return err
	}
	var foldTotal time.Duration
	epochs := 0
	for lo := 0; lo < len(pool); lo += cfg.Batch {
		hi := lo + cfg.Batch
		if hi > len(pool) {
			hi = len(pool)
		}
		if err := epoch.InsertBatch(pool[lo:hi]); err != nil {
			return err
		}
		start := time.Now()
		if resp := epoch.Query(reqs[epochs%len(reqs)]); resp.Err != nil {
			return resp.Err
		}
		foldTotal += time.Since(start)
		epochs++
	}
	report.QueryRuns = append(report.QueryRuns, QueryRun{
		Mode:         "staged_first_after_insert",
		NsPerQuery:   foldTotal.Nanoseconds() / int64(epochs),
		PyramidFolds: epoch.Stats().PyramidFolds,
	})

	// --- (c) recovery: boot a fresh engine over the SyncAlways WAL and
	// time the replay; the recovered engine must hold every ingested
	// object and answer bit-identically.
	report.Recovery.WALBytes = dirBytes(recoverDir)
	start := time.Now()
	rec, err := asrs.NewEngine(seedDS, asrs.EngineOptions{
		Ingest: asrs.IngestOptions{WALDir: recoverDir, Sync: asrs.SyncAlways, CompactAt: -1},
	})
	replay := time.Since(start)
	if err != nil {
		return fmt.Errorf("harness: recovery replay: %w", err)
	}
	recovered := rec.IngestedObjects()
	if len(recovered) != len(pool) {
		return fmt.Errorf("harness: recovery replayed %d objects, want %d", len(recovered), len(pool))
	}
	for i, req := range reqs {
		got := rec.Query(req)
		if got.Err != nil {
			return got.Err
		}
		if math.Float64bits(got.Results[0].Dist) != math.Float64bits(report.Dists[i]) {
			return fmt.Errorf("harness: query %d post-recovery answered %v, want %v",
				i, got.Results[0].Dist, report.Dists[i])
		}
	}
	if err := rec.Close(); err != nil {
		return err
	}
	report.Recovery.ObjectsReplayed = len(recovered)
	report.Recovery.ReplayMs = float64(replay.Nanoseconds()) / 1e6
	if replay > 0 {
		report.Recovery.ObjectsPerSec = float64(len(recovered)) / replay.Seconds()
	}

	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// combinedPOISyn is the logical post-ingest corpus: seed ++ pool.
func combinedPOISyn(ds *asrs.Dataset, tail []asrs.Object) *asrs.Dataset {
	objs := make([]asrs.Object, 0, len(ds.Objects)+len(tail))
	objs = append(objs, ds.Objects...)
	objs = append(objs, tail...)
	return &asrs.Dataset{Schema: ds.Schema, Objects: objs}
}
