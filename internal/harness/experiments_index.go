package harness

import (
	"fmt"

	"asrs/internal/asp"
	"asrs/internal/dssearch"
	"asrs/internal/gridindex"
)

func runGIDS(w workload, k int, idx *gridindex.Index, delta float64) (float64, float64, gridindex.Stats, error) {
	a, b := querySize(w.ds, k)
	q, err := w.query(a, b)
	if err != nil {
		return 0, 0, gridindex.Stats{}, err
	}
	var dist float64
	var stats gridindex.Stats
	ms, err := timeIt(func() error {
		rects, err := asp.Reduce(w.ds, a, b, asp.AnchorTR)
		if err != nil {
			return err
		}
		res, st, err := gridindex.Solve(idx, rects, q, a, b, dssearch.Options{Delta: delta, Workers: 1})
		stats = st
		dist = res.Dist
		return err
	})
	return ms, dist, stats, err
}

// buildIndex constructs the index for a workload's composite aggregator.
// The composite comes from the workload query at a nominal size (the
// composite itself is size-independent; only targets vary).
func buildIndex(w workload, g int) (*gridindex.Index, error) {
	a, b := querySize(w.ds, 10)
	q, err := w.query(a, b)
	if err != nil {
		return nil, err
	}
	return gridindex.New(w.ds, q.F, g, g)
}

// indexCompat rebuilds a query against the composite an index was built
// with (gridindex.Solve requires pointer identity of the composite).
type indexedWorkload struct {
	workload
	idx *gridindex.Index
}

func indexWorkload(w workload, g int) (indexedWorkload, error) {
	a, b := querySize(w.ds, 10)
	q, err := w.query(a, b)
	if err != nil {
		return indexedWorkload{}, err
	}
	f := q.F
	idx, err := gridindex.New(w.ds, f, g, g)
	if err != nil {
		return indexedWorkload{}, err
	}
	iw := indexedWorkload{workload: w, idx: idx}
	// Reuse the index's composite for every query size: rebuild only the
	// target/weights.
	orig := w.query
	iw.workload.query = func(a, b float64) (asp.Query, error) {
		q, err := orig(a, b)
		if err != nil {
			return q, err
		}
		q.F = f
		return q, nil
	}
	return iw, nil
}

func init() {
	register(Experiment{
		Name:  "fig11",
		Paper: "Figure 11(a,b) — GI-DS vs DS-Search across index granularities",
		Desc:  "64/128/256 grid indices vs plain DS-Search, sizes q..10q (paper: 100M objects; scaled).",
		Run: func(cfg Config) error {
			n := cfg.scaled(100000)
			for _, w := range []workload{tweetWorkload(n, cfg.Seed), poiWorkload(n, cfg.Seed)} {
				fmt.Fprintf(cfg.Out, "[%s]\n", w.name)
				t := newTable(cfg.Out, "size", "DS (ms)", "64-GI-DS", "128-GI-DS", "256-GI-DS")
				iws := make([]indexedWorkload, 0, 3)
				for _, g := range []int{64, 128, 256} {
					iw, err := indexWorkload(w, g)
					if err != nil {
						return err
					}
					iws = append(iws, iw)
				}
				for _, k := range []int{1, 4, 7, 10} {
					dsMS, dsDist, _, err := runDS(w, k, 30, 30)
					if err != nil {
						return err
					}
					cells := []any{fmt.Sprintf("%dq", k), dsMS}
					for _, iw := range iws {
						ms, dist, _, err := runGIDS(iw.workload, k, iw.idx, 0)
						if err != nil {
							return err
						}
						if mark := agreeMark(dsDist, dist); mark != "yes" {
							return fmt.Errorf("fig11: GI-DS disagrees with DS-Search: %s", mark)
						}
						cells = append(cells, ms)
					}
					t.row(cells...)
				}
			}
			return nil
		},
	})

	register(Experiment{
		Name:  "table1",
		Paper: "Table 1 — ratio of index cells searched and index size",
		Desc:  "Granularity 64/128/256 × sizes q..10q on Tweet (paper: 100M; scaled).",
		Run: func(cfg Config) error {
			n := cfg.scaled(100000)
			w := tweetWorkload(n, cfg.Seed)
			t := newTable(cfg.Out, "granularity", "q", "4q", "7q", "10q", "index size")
			for _, g := range []int{64, 128, 256} {
				iw, err := indexWorkload(w, g)
				if err != nil {
					return err
				}
				cells := []any{fmt.Sprintf("%dx%d", g, g)}
				for _, k := range []int{1, 4, 7, 10} {
					_, _, stats, err := runGIDS(iw.workload, k, iw.idx, 0)
					if err != nil {
						return err
					}
					ratio := 100 * float64(stats.CellsSearched) / float64(stats.Cells)
					cells = append(cells, fmt.Sprintf("%.2f%%", ratio))
				}
				cells = append(cells, fmt.Sprintf("%.1f MB", float64(iw.idx.SizeBytes())/(1<<20)))
				t.row(cells...)
			}
			return nil
		},
	})

	register(Experiment{
		Name:  "fig12",
		Paper: "Figure 12(a,b) — app-GIDS runtime vs δ across cardinalities",
		Desc:  "δ ∈ {0.1,0.2,0.3,0.4}, cardinalities 1–3 × unit, F1 and F2 (paper: ×10⁸; scaled).",
		Run: func(cfg Config) error {
			unit := cfg.scaled(50000)
			families := []struct {
				name string
				mk   func(int, int64) workload
			}{
				{"Composite Aggregator 1 (Tweet)", tweetWorkload},
				{"Composite Aggregator 2 (POISyn)", poiWorkload},
			}
			for _, fam := range families {
				mk := fam.mk
				fmt.Fprintf(cfg.Out, "[%s]\n", fam.name)
				t := newTable(cfg.Out, "objects", "δ=0.1 (ms)", "δ=0.2 (ms)", "δ=0.3 (ms)", "δ=0.4 (ms)")
				for _, mult := range []int{1, 2, 3} {
					w := mk(mult*unit, cfg.Seed)
					iw, err := indexWorkload(w, 128)
					if err != nil {
						return err
					}
					cells := []any{mult * unit}
					for _, delta := range []float64{0.1, 0.2, 0.3, 0.4} {
						ms, _, _, err := runGIDS(iw.workload, 10, iw.idx, delta)
						if err != nil {
							return err
						}
						cells = append(cells, ms)
					}
					t.row(cells...)
				}
			}
			return nil
		},
	})

	register(Experiment{
		Name:  "table2",
		Paper: "Table 2 — approximation quality d_app/d_opt for F1",
		Desc:  "Quality ratios per δ and cardinality (paper: 1–2 ×10⁸; scaled).",
		Run: func(cfg Config) error {
			unit := cfg.scaled(50000)
			t := newTable(cfg.Out, "objects", "δ=0.1", "δ=0.2", "δ=0.3", "δ=0.4")
			for _, mult := range []int{1, 2} {
				w := tweetWorkload(mult*unit, cfg.Seed)
				iw, err := indexWorkload(w, 128)
				if err != nil {
					return err
				}
				_, dopt, _, err := runGIDS(iw.workload, 10, iw.idx, 0)
				if err != nil {
					return err
				}
				cells := []any{mult * unit}
				for _, delta := range []float64{0.1, 0.2, 0.3, 0.4} {
					_, dapp, _, err := runGIDS(iw.workload, 10, iw.idx, delta)
					if err != nil {
						return err
					}
					quality := 1.0
					if dopt > 0 {
						quality = dapp / dopt
					}
					if quality > 1+delta+1e-9 {
						return fmt.Errorf("table2: quality %g violates 1+δ=%g", quality, 1+delta)
					}
					cells = append(cells, fmt.Sprintf("%.5f", quality))
				}
				t.row(cells...)
			}
			return nil
		},
	})
}
