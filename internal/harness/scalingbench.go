package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"asrs"
	"asrs/internal/dataset"
)

// ScalingBenchConfig drives the multicore scaling benchmark behind
// BENCH_PR6.json: (a) a strip-evaluator A/B at workers=1 on the warm
// batched workload — the flat prefix-scan mini-sweep against the legacy
// per-point Fenwick evaluator (Options.DisableFlatStrip), the PR's
// acceptance ratio — and (b) the full workers=1..MaxWorkers scaling
// curve on both the batched and the HTTP serve workloads, with host CPU
// metadata recorded so a curve measured on an oversubscribed 1-CPU
// container cannot be mistaken for real multicore scaling. Every
// configuration's answers are verified bit-identical, so the bench
// doubles as a workload-level determinism check across worker counts
// and strip-evaluator selections.
type ScalingBenchConfig struct {
	N       int   // corpus cardinality (default 100000)
	Queries int   // requests per batch (default 24)
	Seed    int64 // corpus + extent seed
	// MaxWorkers tops the 1..MaxWorkers sweep. The default is
	// max(NumCPU, 2): on a single-CPU host the workers=2 point is still
	// measured (the work-stealing superstep path must be exercised and
	// its oversubscription overhead recorded), it just cannot speed
	// anything up.
	MaxWorkers int
	// Clients/PerClient size the serve phase's closed loop (defaults 8
	// and 4 — smaller than ServeBenchConfig's, since the loop runs once
	// per worker count).
	Clients   int
	PerClient int
	// BaselineNs optionally records an externally measured reference
	// ns/query for provenance.
	BaselineNs int64
	Note       string
}

func (c ScalingBenchConfig) normalized() ScalingBenchConfig {
	if c.N <= 0 {
		c.N = 100000
	}
	if c.Queries <= 0 {
		c.Queries = 24
	}
	if c.MaxWorkers <= 0 {
		c.MaxWorkers = runtime.NumCPU()
		if c.MaxWorkers < 2 {
			c.MaxWorkers = 2
		}
	}
	if c.Clients <= 0 {
		c.Clients = 8
	}
	if c.PerClient <= 0 {
		c.PerClient = 4
	}
	return c
}

// ScalingStripRun is one side of the workers=1 strip-evaluator A/B.
type ScalingStripRun struct {
	Mode        string `json:"mode"` // "flat_auto" or "fenwick_only"
	NsPerBatch  int64  `json:"ns_per_batch"`
	NsPerQuery  int64  `json:"ns_per_query"`
	AllocsPerOp int64  `json:"allocs_per_batch"`
	BytesPerOp  int64  `json:"bytes_per_batch"`
}

// ScalingServeRun is one point of the serve workers curve: the serve
// bench's per-run measurements plus a speedup against this curve's own
// workers=1 entry (ServeBenchRun.Speedup is left unset — its
// vs-uncoalesced meaning does not apply here).
type ScalingServeRun struct {
	ServeBenchRun
	SpeedupVsW1 float64 `json:"speedup_vs_workers_1,omitempty"`
}

// ScalingRun is one point of the batched workers curve.
type ScalingRun struct {
	Workers       int     `json:"workers"`
	NsPerBatch    int64   `json:"ns_per_batch"`
	NsPerQuery    int64   `json:"ns_per_query"`
	QueriesPerSec float64 `json:"queries_per_sec"`
	Speedup       float64 `json:"speedup_vs_workers_1,omitempty"`
}

// ScalingReport is the JSON document written to BENCH_PR6.json.
type ScalingReport struct {
	Benchmark  string    `json:"benchmark"`
	Dataset    string    `json:"dataset"`
	N          int       `json:"n"`
	Queries    int       `json:"queries"`
	Seed       int64     `json:"seed"`
	Host       Host      `json:"host"`
	BaselineNs int64     `json:"baseline_ns_per_query,omitempty"`
	Note       string    `json:"note,omitempty"`
	Dists      []float64 `json:"dists"` // per-query answers, identical in every configuration
	// StripAB is the workers=1 flat-vs-Fenwick ablation on the warm
	// batched workload; FlatSpeedupW1 = fenwick_only / flat_auto ns
	// (the PR's ≥1.5× acceptance ratio).
	StripAB       []ScalingStripRun `json:"strip_evaluator_ab_w1"`
	FlatSpeedupW1 float64           `json:"flat_speedup_w1"`
	// BatchedScaling and ServeScaling are the workers=1..N curves.
	BatchedScaling []ScalingRun      `json:"batched_scaling"`
	ServeScaling   []ScalingServeRun `json:"serve_scaling"`
}

// RunScalingBench measures the strip-evaluator A/B and the worker
// scaling curves, and writes the JSON report to out. Any distance
// mismatch between configurations is an error.
func RunScalingBench(out io.Writer, cfg ScalingBenchConfig) error {
	cfg = cfg.normalized()
	ds := dataset.SingaporeScaled(cfg.N, cfg.Seed)
	f, err := asrs.NewComposite(ds.Schema,
		asrs.AggSpec{Kind: asrs.Distribution, Attr: "category"},
		asrs.AggSpec{Kind: asrs.Count},
	)
	if err != nil {
		return err
	}
	reqs, _, err := batchRequests(ds, f, cfg.Queries, cfg.Seed)
	if err != nil {
		return err
	}

	report := ScalingReport{
		Benchmark:  "scaling/singapore",
		Dataset:    "singapore-scaled",
		N:          len(ds.Objects),
		Queries:    len(reqs),
		Seed:       cfg.Seed,
		Host:       CollectHost(),
		BaselineNs: cfg.BaselineNs,
		Note:       cfg.Note,
	}

	engineFor := func(disableFlat bool, workers int) (*asrs.Engine, error) {
		return asrs.NewEngine(ds, asrs.EngineOptions{
			BatchParallelism: 1,
			IndexGranularity: 64,
			Search:           asrs.Options{Workers: workers, DisableFlatStrip: disableFlat},
		})
	}

	// Answer verification across every configuration this bench times:
	// both strip evaluators and every worker count must agree bit for
	// bit.
	var wantDists []float64
	check := func(tag string, resp []asrs.QueryResponse) error {
		for i := range resp {
			if resp[i].Err != nil {
				return fmt.Errorf("harness: %s query %d failed: %v", tag, i, resp[i].Err)
			}
		}
		if wantDists == nil {
			wantDists = make([]float64, len(resp))
			for i := range resp {
				wantDists[i] = resp[i].Results[0].Dist
			}
			return nil
		}
		for i := range resp {
			if math.Float64bits(resp[i].Results[0].Dist) != math.Float64bits(wantDists[i]) {
				return fmt.Errorf("harness: %s query %d answered %v, want %v — answers must be bit-identical across workers and strip evaluators",
					tag, i, resp[i].Results[0].Dist, wantDists[i])
			}
		}
		return nil
	}

	// Phase A: strip-evaluator A/B at workers=1 on the warm batched
	// workload. fenwick_only (DisableFlatStrip) reproduces the pre-flat
	// per-point tree-walk evaluator; flat_auto is the shipped path.
	type stripMode struct {
		name        string
		disableFlat bool
	}
	for _, m := range []stripMode{{"fenwick_only", true}, {"flat_auto", false}} {
		eng, err := engineFor(m.disableFlat, 1)
		if err != nil {
			return err
		}
		var resp []asrs.QueryResponse
		resp = eng.QueryBatchInto(resp, reqs) // warm caches outside the timer
		if err := check("strip_ab/"+m.name, resp); err != nil {
			return err
		}
		br := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				resp = eng.QueryBatchInto(resp, reqs)
			}
		})
		report.StripAB = append(report.StripAB, ScalingStripRun{
			Mode:        m.name,
			NsPerBatch:  br.NsPerOp(),
			NsPerQuery:  br.NsPerOp() / int64(len(reqs)),
			AllocsPerOp: br.AllocsPerOp(),
			BytesPerOp:  br.AllocedBytesPerOp(),
		})
	}
	if report.StripAB[1].NsPerBatch > 0 {
		report.FlatSpeedupW1 = float64(report.StripAB[0].NsPerBatch) / float64(report.StripAB[1].NsPerBatch)
	}
	report.Dists = wantDists

	// Phase B: batched scaling curve, workers=1..MaxWorkers on the
	// shipped path.
	var w1Ns int64
	for w := 1; w <= cfg.MaxWorkers; w++ {
		eng, err := engineFor(false, w)
		if err != nil {
			return err
		}
		var resp []asrs.QueryResponse
		resp = eng.QueryBatchInto(resp, reqs)
		if err := check(fmt.Sprintf("batched/w%d", w), resp); err != nil {
			return err
		}
		br := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				resp = eng.QueryBatchInto(resp, reqs)
			}
		})
		run := ScalingRun{
			Workers:    w,
			NsPerBatch: br.NsPerOp(),
			NsPerQuery: br.NsPerOp() / int64(len(reqs)),
		}
		if run.NsPerBatch > 0 {
			run.QueriesPerSec = float64(len(reqs)) / (float64(run.NsPerBatch) / 1e9)
		}
		if w == 1 {
			w1Ns = run.NsPerBatch
		}
		if w1Ns > 0 && run.NsPerBatch > 0 {
			run.Speedup = float64(w1Ns) / float64(run.NsPerBatch)
		}
		report.BatchedScaling = append(report.BatchedScaling, run)
	}

	// Phase C: serve scaling curve, workers=1..MaxWorkers through the
	// real HTTP path (coalescing on), reusing the serve bench's closed
	// loop and its bit-identity verification.
	serveCfg := ServeBenchConfig{
		N:         cfg.N,
		Clients:   cfg.Clients,
		PerClient: cfg.PerClient,
		Seed:      cfg.Seed,
	}.normalized()
	wire, serveReqs, err := ServeQueries(ds, f, "poi", serveCfg.Distinct, cfg.Seed)
	if err != nil {
		return err
	}
	refEng, err := asrs.NewEngine(ds, asrs.EngineOptions{IndexGranularity: 64})
	if err != nil {
		return err
	}
	serveDists := make([]float64, len(serveReqs))
	for i, req := range serveReqs {
		resp := refEng.Query(req)
		if resp.Err != nil {
			return fmt.Errorf("harness: serve reference query %d failed: %v", i, resp.Err)
		}
		serveDists[i] = resp.Results[0].Dist
	}
	// Same Zipf-ish schedule the serve bench uses (80% hot set), seeded
	// identically so the curves are comparable with BENCH_PR5.json.
	total := serveCfg.Clients * serveCfg.PerClient
	traffic := make([]int, total)
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x7aff1c))
	for i := range traffic {
		if rng.Float64() < 0.8 {
			traffic[i] = rng.Intn(serveCfg.Hot)
		} else {
			traffic[i] = serveCfg.Hot + rng.Intn(serveCfg.Distinct-serveCfg.Hot)
		}
	}
	var serveW1 int64
	for w := 1; w <= cfg.MaxWorkers; w++ {
		run, err := runServeMode(ds, f, wire, serveDists, traffic, serveCfg, "coalesced", serveCfg.Window, w)
		if err != nil {
			return err
		}
		if w == 1 {
			serveW1 = run.ElapsedNs
		}
		sr := ScalingServeRun{ServeBenchRun: run}
		if serveW1 > 0 && run.ElapsedNs > 0 {
			sr.SpeedupVsW1 = float64(serveW1) / float64(run.ElapsedNs)
		}
		report.ServeScaling = append(report.ServeScaling, sr)
	}

	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}
