package harness

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"sync"
	"time"

	"asrs"
	"asrs/internal/dataset"
	"asrs/internal/server"
)

// ServeBenchConfig drives the closed-loop HTTP serving benchmark behind
// BENCH_PR5.json: concurrent clients fire overlapping Singapore-extent
// queries at a real asrsd-shaped server (JSON over localhost HTTP) in
// two configurations at equal worker count — the coalescing window
// collector on, and off (window=0; every request dispatches alone). The
// traffic is Zipf-ish (a hot set of popular queries dominates), which is
// exactly the shape request dedup and shared prepared query shapes
// amortize. Every response distance is verified bit-identical to a
// direct Engine.Query, and a deadline probe asserts 504s never perturb
// concurrent answers — the bench doubles as the acceptance check for
// the serving layer.
type ServeBenchConfig struct {
	N         int   // corpus cardinality (default 100000)
	Clients   int   // concurrent closed-loop clients (default 32)
	PerClient int   // requests each client issues (default 8)
	Hot       int   // hot-set size: popular distinct queries (default 8)
	Distinct  int   // total distinct queries incl. the hot set (default 32)
	Seed      int64 // corpus + extent + traffic seed
	Workers   []int // kernel worker sweep (default 1)
	// Window and MaxBatch configure the coalesced mode. Zero Window
	// selects the bench's throughput-oriented 25ms default (not the
	// server package's latency-lean 2ms — see normalized); don't pass a
	// negative Window, which would silently measure a second
	// uncoalesced run under the "coalesced" label.
	Window   time.Duration
	MaxBatch int
	// BaselineNs optionally records an externally measured reference
	// ns/query for provenance.
	BaselineNs int64
	Note       string
}

func (c ServeBenchConfig) normalized() ServeBenchConfig {
	if c.N <= 0 {
		c.N = 100000
	}
	if c.Clients <= 0 {
		c.Clients = 32
	}
	if c.PerClient <= 0 {
		c.PerClient = 8
	}
	if c.Hot <= 0 {
		c.Hot = 8
	}
	if c.Distinct <= c.Hot {
		c.Distinct = c.Hot * 4
	}
	if len(c.Workers) == 0 {
		c.Workers = []int{1}
	}
	if c.Window == 0 {
		// Throughput-oriented window: queries on the serving-scale corpus
		// cost tens of ms, so a window in that ballpark keeps client
		// cohorts coherent (a 2ms window decoheres under 1-CPU scheduling
		// jitter and the realized batch width collapses). The added
		// latency stays below one query's own service time.
		c.Window = 25 * time.Millisecond
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = server.DefaultMaxBatch
	}
	return c
}

// ServeBenchRun is one measured (mode, workers) configuration.
type ServeBenchRun struct {
	Mode       string  `json:"mode"` // "coalesced" or "uncoalesced"
	Workers    int     `json:"workers"`
	Requests   int     `json:"requests"`
	ElapsedNs  int64   `json:"elapsed_ns"`
	NsPerQuery int64   `json:"ns_per_query"`
	QPS        float64 `json:"queries_per_sec"`
	// Batches/AvgBatch/DedupHits report what the coalescer actually did
	// during the timed run.
	Batches   int64   `json:"batches"`
	AvgBatch  float64 `json:"avg_batch"`
	DedupHits int64   `json:"dedup_hits"`
	// Speedup is this run's throughput over the uncoalesced run at the
	// same worker count (the acceptance ratio).
	Speedup float64 `json:"speedup_vs_uncoalesced,omitempty"`
}

// ServeBenchReport is the JSON document written to BENCH_PR5.json.
type ServeBenchReport struct {
	Benchmark  string          `json:"benchmark"`
	Dataset    string          `json:"dataset"`
	N          int             `json:"n"`
	Clients    int             `json:"clients"`
	PerClient  int             `json:"per_client"`
	Hot        int             `json:"hot_set"`
	Distinct   int             `json:"distinct_queries"`
	WindowMS   float64         `json:"window_ms"`
	MaxBatch   int             `json:"max_batch"`
	Seed       int64           `json:"seed"`
	GoMaxProcs int             `json:"gomaxprocs"`
	NumCPU     int             `json:"num_cpu"`
	Host       Host            `json:"host"`
	BaselineNs int64           `json:"baseline_ns_per_query,omitempty"`
	Note       string          `json:"note,omitempty"`
	Dists      []float64       `json:"dists"` // per-distinct-query answers, verified in every run
	Runs       []ServeBenchRun `json:"runs"`
}

// ServeQueries builds a pool of k distinct wire+engine query pairs: overlapping
// query-by-example extents sharing one (a, b) shape, with inflated
// virtual targets so every request runs a real search.
func ServeQueries(ds *asrs.Dataset, f *asrs.Composite, name string, k int, seed int64) ([]server.Query, []asrs.QueryRequest, error) {
	bounds := ds.Bounds()
	a := bounds.Width() / 32
	b := bounds.Height() / 32
	rng := rand.New(rand.NewSource(seed ^ 0x5e12e))
	wire := make([]server.Query, k)
	reqs := make([]asrs.QueryRequest, k)
	for i := range wire {
		cx := bounds.MinX + bounds.Width()*(0.15+0.65*rng.Float64())
		cy := bounds.MinY + bounds.Height()*(0.15+0.65*rng.Float64())
		rq := asrs.Rect{MinX: cx, MinY: cy, MaxX: cx + a, MaxY: cy + b}
		q, err := asrs.QueryFromRegion(ds, f, nil, rq)
		if err != nil {
			return nil, nil, err
		}
		for j := range q.Target {
			q.Target[j] = math.Trunc(q.Target[j]*1.1) + 0.5
		}
		wire[i] = server.Query{Composite: name, A: a, B: b, Target: q.Target}
		reqs[i] = asrs.QueryRequest{Query: q, A: a, B: b}
	}
	return wire, reqs, nil
}

// postQuery sends one wire query and decodes the response.
func postQuery(client *http.Client, url string, wq server.Query) (int, server.Response, error) {
	status, _, wr, err := postQueryHdr(client, url, wq)
	return status, wr, err
}

func postQueryHdr(client *http.Client, url string, wq server.Query) (int, http.Header, server.Response, error) {
	raw, err := json.Marshal(wq)
	if err != nil {
		return 0, nil, server.Response{}, err
	}
	resp, err := client.Post(url+"/v1/query", "application/json", bytes.NewReader(raw))
	if err != nil {
		return 0, nil, server.Response{}, err
	}
	defer resp.Body.Close()
	var wr server.Response
	if err := json.NewDecoder(resp.Body).Decode(&wr); err != nil {
		return resp.StatusCode, resp.Header, server.Response{}, err
	}
	return resp.StatusCode, resp.Header, wr, nil
}

// postQueryRetry is postQuery honoring the server's degradation
// contract: a 429 backs off for the advertised Retry-After (the
// server derives it from its service-time EWMA and guarantees it is
// never zero) and retries, up to maxRetries shed responses. Other
// statuses return immediately.
func postQueryRetry(client *http.Client, url string, wq server.Query, maxRetries int) (int, server.Response, error) {
	for attempt := 0; ; attempt++ {
		status, hdr, wr, err := postQueryHdr(client, url, wq)
		if err != nil || status != http.StatusTooManyRequests || attempt >= maxRetries {
			return status, wr, err
		}
		secs, err := strconv.Atoi(hdr.Get("Retry-After"))
		if err != nil || secs < 1 {
			return status, wr, fmt.Errorf("harness: shed response carried Retry-After %q, want a positive integer", hdr.Get("Retry-After"))
		}
		time.Sleep(time.Duration(secs) * time.Second)
	}
}

// RunServeBench benchmarks coalesced against uncoalesced serving and
// writes the JSON report to out. Any distance mismatch against the
// direct-engine reference is an error.
func RunServeBench(out io.Writer, cfg ServeBenchConfig) error {
	cfg = cfg.normalized()
	ds := dataset.SingaporeScaled(cfg.N, cfg.Seed)
	f, err := asrs.NewComposite(ds.Schema,
		asrs.AggSpec{Kind: asrs.Distribution, Attr: "category"},
		asrs.AggSpec{Kind: asrs.Count},
	)
	if err != nil {
		return err
	}
	wire, reqs, err := ServeQueries(ds, f, "poi", cfg.Distinct, cfg.Seed)
	if err != nil {
		return err
	}

	// Direct-engine reference answers (worker-independent by the kernel
	// determinism contract, so one pass suffices).
	refEng, err := asrs.NewEngine(ds, asrs.EngineOptions{IndexGranularity: 64})
	if err != nil {
		return err
	}
	dists := make([]float64, len(reqs))
	for i, req := range reqs {
		resp := refEng.Query(req)
		if resp.Err != nil {
			return fmt.Errorf("harness: reference query %d failed: %v", i, resp.Err)
		}
		dists[i] = resp.Results[0].Dist
	}

	// Zipf-ish traffic: 80% of requests hit the hot set, the rest the
	// cold tail. The same schedule drives both modes.
	total := cfg.Clients * cfg.PerClient
	traffic := make([]int, total)
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x7aff1c))
	for i := range traffic {
		if rng.Float64() < 0.8 {
			traffic[i] = rng.Intn(cfg.Hot)
		} else {
			traffic[i] = cfg.Hot + rng.Intn(cfg.Distinct-cfg.Hot)
		}
	}

	report := ServeBenchReport{
		Benchmark:  "serve/singapore",
		Dataset:    "singapore-scaled",
		N:          len(ds.Objects),
		Clients:    cfg.Clients,
		PerClient:  cfg.PerClient,
		Hot:        cfg.Hot,
		Distinct:   cfg.Distinct,
		WindowMS:   float64(cfg.Window.Microseconds()) / 1e3,
		MaxBatch:   cfg.MaxBatch,
		Seed:       cfg.Seed,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Host:       CollectHost(),
		BaselineNs: cfg.BaselineNs,
		Note:       cfg.Note,
		Dists:      dists,
	}

	type mode struct {
		name   string
		window time.Duration
	}
	modes := []mode{
		{"uncoalesced", 0}, // measured first: its w=1 run is the speedup denominator
		{"coalesced", cfg.Window},
	}
	uncoalescedNs := map[int]int64{}
	for _, m := range modes {
		for _, w := range cfg.Workers {
			run, err := runServeMode(ds, f, wire, dists, traffic, cfg, m.name, m.window, w)
			if err != nil {
				return err
			}
			if m.name == "uncoalesced" {
				uncoalescedNs[w] = run.ElapsedNs
			} else if base := uncoalescedNs[w]; base > 0 && run.ElapsedNs > 0 {
				run.Speedup = float64(base) / float64(run.ElapsedNs)
			}
			report.Runs = append(report.Runs, run)
		}
	}

	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// runServeMode measures one (mode, workers) configuration end to end:
// start a server, warm it, drive the closed loop, verify every answer,
// probe the deadline path, drain.
func runServeMode(ds *asrs.Dataset, f *asrs.Composite, wire []server.Query, dists []float64,
	traffic []int, cfg ServeBenchConfig, name string, window time.Duration, workers int) (ServeBenchRun, error) {
	eng, err := asrs.NewEngine(ds, asrs.EngineOptions{
		IndexGranularity: 64,
		Search:           asrs.Options{Workers: workers},
	})
	if err != nil {
		return ServeBenchRun{}, err
	}
	srv, err := server.New(server.Config{
		Engine:     eng,
		Composites: map[string]*asrs.Composite{"poi": f},
		Window:     window,
		MaxBatch:   cfg.MaxBatch,
	})
	if err != nil {
		return ServeBenchRun{}, err
	}
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	client := ts.Client()

	// Warm outside the timer: every distinct query once (builds the
	// index, pyramid, slab caches and prepared shapes), then verify the
	// served bits against the engine reference.
	for i, wq := range wire {
		status, wr, err := postQuery(client, ts.URL, wq)
		if err != nil {
			return ServeBenchRun{}, err
		}
		if status != http.StatusOK {
			return ServeBenchRun{}, fmt.Errorf("harness: %s warm query %d: status %d (%s)", name, i, status, wr.Error)
		}
		if math.Float64bits(wr.Results[0].Dist) != math.Float64bits(dists[i]) {
			return ServeBenchRun{}, fmt.Errorf("harness: %s query %d served %v, want %v — serving must be bit-identical to Engine.Query",
				name, i, wr.Results[0].Dist, dists[i])
		}
	}

	// Deadline probe: a huge-extent query with a 1ms budget must 504
	// while a concurrent normal query still answers bit-identically.
	bounds := ds.Bounds()
	hugeTgt := make([]float64, f.Dims())
	for i := range hugeTgt {
		hugeTgt[i] = 1e6
	}
	doomed := server.Query{Composite: "poi", A: bounds.Width() / 3, B: bounds.Height() / 3, Target: hugeTgt, TimeoutMS: 1}
	var probeWG sync.WaitGroup
	var doomedStatus, peerStatus int
	var peerResp server.Response
	probeWG.Add(2)
	go func() {
		defer probeWG.Done()
		doomedStatus, _, _ = postQuery(client, ts.URL, doomed)
	}()
	go func() {
		defer probeWG.Done()
		peerStatus, peerResp, _ = postQuery(client, ts.URL, wire[0])
	}()
	probeWG.Wait()
	// A 200 is also a legal probe outcome: the kernel deliberately
	// returns a fully determined answer even when the deadline fired a
	// beat before its clean termination, so on a fast machine the
	// huge-extent search can beat the 1ms budget. Anything else is a
	// real failure.
	if doomedStatus != http.StatusGatewayTimeout && doomedStatus != http.StatusOK {
		return ServeBenchRun{}, fmt.Errorf("harness: %s deadline probe: status %d, want 504 (or a completed 200)", name, doomedStatus)
	}
	if peerStatus != http.StatusOK ||
		math.Float64bits(peerResp.Results[0].Dist) != math.Float64bits(dists[0]) {
		return ServeBenchRun{}, fmt.Errorf("harness: %s deadline probe perturbed a concurrent answer (status %d)", name, peerStatus)
	}

	var before serverCounters
	if err := fetchCounters(client, ts.URL, &before); err != nil {
		return ServeBenchRun{}, err
	}

	// The timed closed loop: each client walks its slice of the shared
	// traffic schedule back-to-back.
	var wg sync.WaitGroup
	errCh := make(chan error, cfg.Clients)
	start := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for k := 0; k < cfg.PerClient; k++ {
				qi := traffic[c*cfg.PerClient+k]
				status, wr, err := postQueryRetry(client, ts.URL, wire[qi], 3)
				if err != nil {
					errCh <- err
					return
				}
				if status != http.StatusOK {
					errCh <- fmt.Errorf("harness: %s client %d: status %d (%s)", name, c, status, wr.Error)
					return
				}
				if math.Float64bits(wr.Results[0].Dist) != math.Float64bits(dists[qi]) {
					errCh <- fmt.Errorf("harness: %s client %d query %d served %v, want %v",
						name, c, qi, wr.Results[0].Dist, dists[qi])
					return
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		return ServeBenchRun{}, err
	default:
	}

	var after serverCounters
	if err := fetchCounters(client, ts.URL, &after); err != nil {
		return ServeBenchRun{}, err
	}

	total := len(traffic)
	run := ServeBenchRun{
		Mode:       name,
		Workers:    workers,
		Requests:   total,
		ElapsedNs:  elapsed.Nanoseconds(),
		NsPerQuery: elapsed.Nanoseconds() / int64(total),
		Batches:    after.Coalescer.Batches - before.Coalescer.Batches,
		DedupHits:  after.Engine.DedupHits - before.Engine.DedupHits,
	}
	if run.ElapsedNs > 0 {
		run.QPS = float64(total) / elapsed.Seconds()
	}
	if run.Batches > 0 {
		run.AvgBatch = float64(after.Coalescer.BatchedRequests-before.Coalescer.BatchedRequests) / float64(run.Batches)
	}
	return run, nil
}

// serverCounters is the slice of /stats the bench reads.
type serverCounters struct {
	Received  int64                 `json:"received"`
	Coalescer server.CoalescerStats `json:"coalescer"`
	Engine    asrs.EngineStats      `json:"engine"`
}

func fetchCounters(client *http.Client, url string, into *serverCounters) error {
	resp, err := client.Get(url + "/stats")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(into)
}
