package harness

import (
	"fmt"

	"asrs/internal/agg"
	"asrs/internal/asp"
	"asrs/internal/dataset"
	"asrs/internal/dssearch"
	"asrs/internal/geom"
)

func init() {
	register(Experiment{
		Name:  "casestudy",
		Paper: "Figures 14–15 — Singapore case study",
		Desc:  "Query 'Orchard' over 4,556 POIs with F = ((fD, Category, γ_all)); DS-Search should discover 'Marina Bay', with 'Bugis' as the instructive non-answer.",
		Run:   runCaseStudy,
	})
}

func runCaseStudy(cfg Config) error {
	ds := dataset.SingaporePOI(cfg.Seed)
	f, err := agg.New(ds.Schema, agg.Spec{Kind: agg.Distribution, Attr: "category"})
	if err != nil {
		return err
	}
	districts := dataset.SingaporeDistricts()
	orchard := districts[0]
	a, b := orchard.Rect.Width(), orchard.Rect.Height()

	rep := func(r geom.Rect) []float64 {
		return f.Representation(ds, agg.OpenRect{MinX: r.MinX, MinY: r.MinY, MaxX: r.MaxX, MaxY: r.MaxY})
	}
	target := rep(orchard.Rect)
	q := asp.Query{F: f, Target: target}
	if err := q.Validate(); err != nil {
		return err
	}

	region, res, _, err := dssearch.SolveASRSExcluding(ds, a, b, q, orchard.Rect, dssearch.Options{Workers: 1})
	if err != nil {
		return err
	}

	// Identify which named district (if any) the answer matches.
	found := "(unnamed area)"
	for _, d := range districts[1:] {
		inter := region.Intersect(d.Rect)
		if inter.IsValid() && inter.Area() > 0.5*region.Area() {
			found = d.Name
		}
	}
	fmt.Fprintf(cfg.Out, "query region:   %s %v\n", orchard.Name, orchard.Rect)
	fmt.Fprintf(cfg.Out, "answer region:  %v  → overlaps %q (distance %.2f)\n\n", region, found, res.Dist)

	// Fig 14(b): the category-distribution representations.
	t := newTable(cfg.Out, "category", "Orchard", "answer", "Bugis")
	bugis := districts[2]
	bugisRep := rep(bugis.Rect)
	for i, cat := range dataset.POICategories {
		t.row(cat, target[i], res.Rep[i], bugisRep[i])
	}

	// Fig 15's takeaway as distances.
	dAnswer := q.Distance(res.Rep)
	dBugis := q.Distance(bugisRep)
	fmt.Fprintf(cfg.Out, "\ndist(Orchard, answer) = %.2f   dist(Orchard, Bugis) = %.2f\n", dAnswer, dBugis)
	if dAnswer >= dBugis {
		return fmt.Errorf("casestudy: discovered region (%.2f) is not closer than Bugis (%.2f)", dAnswer, dBugis)
	}
	if found == "(unnamed area)" {
		fmt.Fprintln(cfg.Out, "note: the answer did not align with a named district this run")
	}
	return nil
}
