package harness

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"sync"
	"time"

	"asrs"
	"asrs/internal/agg"
	"asrs/internal/dataset"
	"asrs/internal/faultinject"
	"asrs/internal/shard"
)

// ShardBenchConfig drives the multi-shard routing benchmark behind
// BENCH_PR9.json: a merged corpus split into x-slab shards behind the
// scatter–gather router, measured with a closed-loop client mix of
// contained extents (single-shard routing), straddling extents
// (scatter–gather with the shared pruning cap) and the same mixes on a
// single merged-corpus engine — plus a breaker-trip/recovery timeline
// under injected shard panics. Every routed answer on the healthy path
// is checked bit-identical to the single engine first, so the bench
// doubles as an acceptance check for the routing layer (DESIGN.md §11).
type ShardBenchConfig struct {
	N         int // corpus cardinality (default 20000)
	Shards    int // shard count (default 4)
	Queries   int // extents per mode (default 12)
	Clients   int // concurrent closed-loop clients (default 8)
	PerClient int // requests per client per run (default 24)
	Seed      int64
	// BaselineNs optionally records an externally measured reference
	// ns/query for provenance.
	BaselineNs int64
	Note       string
}

func (c ShardBenchConfig) normalized() ShardBenchConfig {
	if c.N <= 0 {
		c.N = 20000
	}
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.Queries <= 0 {
		c.Queries = 12
	}
	if c.Clients <= 0 {
		c.Clients = 8
	}
	if c.PerClient <= 0 {
		c.PerClient = 24
	}
	return c
}

// ShardRun is one measured (mode, path) closed loop.
type ShardRun struct {
	// Mode is the extent mix: "contained" (each extent inside one
	// shard's slab), "straddling" (each extent spans at least one cut)
	// or "mixed" (alternating).
	Mode string `json:"mode"`
	// Path is "routed" (catalog + scatter–gather router) or
	// "single_engine" (one merged-corpus engine, the answer oracle).
	Path       string  `json:"path"`
	Requests   int     `json:"requests"`
	NsPerQuery int64   `json:"ns_per_query"`
	QPS        float64 `json:"qps"`
}

// BreakerEvent is one point on the trip/recovery timeline, measured
// from the moment the fault plan was activated.
type BreakerEvent struct {
	AtMs  float64 `json:"at_ms"`
	Event string  `json:"event"`
}

// BreakerTimeline reports the injected-panic trip and the subsequent
// half-open recovery of one shard, as observed by a best_effort client.
type BreakerTimeline struct {
	// QueriesToTrip is how many consecutive failures opened the breaker
	// (the configured threshold).
	QueriesToTrip int `json:"queries_to_trip"`
	// DegradedAnswers counts best_effort answers served from the
	// surviving shards while the breaker was open.
	DegradedAnswers int            `json:"degraded_answers"`
	Events          []BreakerEvent `json:"events"`
}

// ShardBenchReport is the JSON document written to BENCH_PR9.json.
type ShardBenchReport struct {
	Benchmark  string          `json:"benchmark"`
	Dataset    string          `json:"dataset"`
	N          int             `json:"n"`
	Shards     int             `json:"shards"`
	Cuts       []float64       `json:"cuts"`
	Queries    int             `json:"queries"`
	Clients    int             `json:"clients"`
	PerClient  int             `json:"per_client"`
	Seed       int64           `json:"seed"`
	GoMaxProcs int             `json:"gomaxprocs"`
	NumCPU     int             `json:"num_cpu"`
	Host       Host            `json:"host"`
	BaselineNs int64           `json:"baseline_ns_per_query,omitempty"`
	Note       string          `json:"note,omitempty"`
	Runs       []ShardRun      `json:"runs"`
	Breaker    BreakerTimeline `json:"breaker_timeline"`
}

// shardBenchExtents builds the contained and straddling extent lists
// from the catalog's cut set. Contained extents sit strictly inside one
// shard's clamped slab (rotating over shards); straddling extents are
// centered on a cut and span its neighbors.
func shardBenchExtents(cat *shard.Catalog, bounds asrs.Rect, a, b float64, k int) (contained, straddling []asrs.Rect) {
	shards := cat.Shards()
	cuts := cat.Cuts()
	for i := 0; len(contained) < k && i < 64*k; i++ {
		sh := shards[i%len(shards)]
		lo, hi := sh.Slab()
		lo, hi = math.Max(lo, bounds.MinX), math.Min(hi, bounds.MaxX)
		if hi-lo <= a {
			continue
		}
		// Shrink toward the slab center by a query-dependent margin so
		// the extents differ without ever touching the cut.
		margin := (hi - lo - a) * 0.04 * float64(i%5)
		y0 := bounds.MinY + (bounds.Height()-b)*0.1*float64(i%7)
		contained = append(contained, asrs.Rect{
			MinX: lo + margin/2, MinY: y0,
			MaxX: hi - margin/2, MaxY: math.Min(y0+b+bounds.Height()*0.4, bounds.MaxY),
		})
	}
	for i := 0; len(straddling) < k; i++ {
		c := cuts[i%len(cuts)]
		span := math.Max(a, bounds.Width()/float64(len(shards)+1)) * (1 + 0.15*float64(i%4))
		y0 := bounds.MinY + (bounds.Height()-b)*0.08*float64(i%6)
		straddling = append(straddling, asrs.Rect{
			MinX: math.Max(c-span, bounds.MinX), MinY: y0,
			MaxX: math.Min(c+span, bounds.MaxX), MaxY: bounds.MaxY - (bounds.Height()-b)*0.05*float64(i%3),
		})
	}
	return contained, straddling
}

// RunShardBench benchmarks routed serving against the single-engine
// oracle and records the breaker trip/recovery timeline, writing the
// JSON report to out. Any answer mismatch on the healthy path is an
// error.
func RunShardBench(out io.Writer, cfg ShardBenchConfig) error {
	cfg = cfg.normalized()
	ds := dataset.Random(cfg.N, 100, cfg.Seed)
	f := agg.MustNew(ds.Schema,
		agg.Spec{Kind: agg.Distribution, Attr: "cat"},
		agg.Spec{Kind: agg.Sum, Attr: "val"},
	)
	q := asrs.Query{F: f, Target: []float64{1, 2, 1, 5}}
	a, b := 8.0, 8.0

	cat, err := shard.New(ds, shard.Config{
		Shards:     cfg.Shards,
		Composites: map[string]*asrs.Composite{"q": f},
		Names:      []string{"q"},
	})
	if err != nil {
		return err
	}
	defer cat.Close()
	router := shard.NewRouter(cat, shard.RouterOptions{})
	oracle, err := asrs.NewEngine(ds, asrs.EngineOptions{})
	if err != nil {
		return err
	}

	report := ShardBenchReport{
		Benchmark:  "shard-router/random",
		Dataset:    "random",
		N:          cfg.N,
		Shards:     cfg.Shards,
		Cuts:       cat.Cuts(),
		Queries:    cfg.Queries,
		Clients:    cfg.Clients,
		PerClient:  cfg.PerClient,
		Seed:       cfg.Seed,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Host:       CollectHost(),
		BaselineNs: cfg.BaselineNs,
		Note:       cfg.Note,
	}

	bounds := ds.Bounds()
	contained, straddling := shardBenchExtents(cat, bounds, a, b, cfg.Queries)
	if len(contained) < cfg.Queries {
		return fmt.Errorf("harness: only %d of %d contained extents fit — slabs narrower than the query at %d shards",
			len(contained), cfg.Queries, cfg.Shards)
	}
	mixed := make([]asrs.Rect, 0, len(contained)+len(straddling))
	for i := range contained {
		mixed = append(mixed, contained[i], straddling[i])
	}

	// --- acceptance: every extent answers bit-identically routed vs the
	// merged-corpus engine, before anything is timed.
	for i, e := range mixed {
		ext := e
		resp := router.Query(context.Background(), shard.Request{Query: q, A: a, B: b, Extent: &ext})
		if resp.Err != nil {
			return fmt.Errorf("harness: routed query %d: %w", i, resp.Err)
		}
		want := oracle.Query(asrs.QueryRequest{Query: q, A: a, B: b, Within: &ext})
		if want.Err != nil {
			return fmt.Errorf("harness: oracle query %d: %w", i, want.Err)
		}
		if math.Float64bits(resp.Results[0].Dist) != math.Float64bits(want.Results[0].Dist) {
			return fmt.Errorf("harness: query %d: routed answered %v, single engine %v — routing must be exact",
				i, resp.Results[0].Dist, want.Results[0].Dist)
		}
	}

	// --- closed loop per (mode, path): Clients goroutines each issue
	// PerClient requests round-robin over the mode's extents.
	closedLoop := func(extents []asrs.Rect, issue func(asrs.Rect) error) (ShardRun, error) {
		var wg sync.WaitGroup
		errs := make([]error, cfg.Clients)
		start := time.Now()
		for c := 0; c < cfg.Clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := 0; i < cfg.PerClient; i++ {
					if err := issue(extents[(c+i)%len(extents)]); err != nil {
						errs[c] = err
						return
					}
				}
			}(c)
		}
		wg.Wait()
		elapsed := time.Since(start)
		for _, err := range errs {
			if err != nil {
				return ShardRun{}, err
			}
		}
		total := cfg.Clients * cfg.PerClient
		run := ShardRun{Requests: total, NsPerQuery: elapsed.Nanoseconds() / int64(total)}
		if elapsed > 0 {
			run.QPS = float64(total) / elapsed.Seconds()
		}
		return run, nil
	}
	routed := func(e asrs.Rect) error {
		resp := router.Query(context.Background(), shard.Request{Query: q, A: a, B: b, Extent: &e})
		return resp.Err
	}
	single := func(e asrs.Rect) error {
		return oracle.Query(asrs.QueryRequest{Query: q, A: a, B: b, Within: &e}).Err
	}
	for _, m := range []struct {
		mode    string
		extents []asrs.Rect
	}{{"contained", contained}, {"straddling", straddling}, {"mixed", mixed}} {
		for _, p := range []struct {
			path  string
			issue func(asrs.Rect) error
		}{{"routed", routed}, {"single_engine", single}} {
			run, err := closedLoop(m.extents, p.issue)
			if err != nil {
				return fmt.Errorf("harness: %s/%s: %w", m.mode, p.path, err)
			}
			run.Mode, run.Path = m.mode, p.path
			report.Runs = append(report.Runs, run)
		}
	}

	// --- breaker trip/recovery timeline. A fresh router with a fast
	// breaker; contained queries against shard 0 under an injected panic
	// trip it open, then a best_effort client watches the half-open
	// probe readmit the shard.
	tl, err := shardBreakerTimeline(cat, q, a, b, contained[0], straddling[0], cfg.Seed)
	if err != nil {
		return err
	}
	report.Breaker = tl

	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// shardBreakerTimeline trips shard 0's breaker with injected panics and
// times the best_effort degradation and half-open recovery.
func shardBreakerTimeline(cat *shard.Catalog, q asrs.Query, a, b float64, containedInShard0, straddler asrs.Rect, seed int64) (BreakerTimeline, error) {
	const backoff = 50 * time.Millisecond
	router := shard.NewRouter(cat, shard.RouterOptions{Breaker: shard.BreakerConfig{
		FailureThreshold: 3,
		BaseBackoff:      backoff,
		MaxBackoff:       4 * backoff,
		Seed:             seed,
	}})
	var tl BreakerTimeline
	ctx := context.Background()

	faultinject.Activate(faultinject.NewPlan(seed,
		faultinject.Spec{Point: "shard.search.panic", Action: faultinject.ActPanic, MaxEvery: 1},
	))
	defer faultinject.Deactivate()
	start := time.Now()
	for i := 0; i < 100; i++ {
		resp := router.Query(ctx, shard.Request{Query: q, A: a, B: b, Extent: &containedInShard0, Policy: shard.Strict})
		if resp.Err == nil {
			faultinject.Deactivate()
			return tl, fmt.Errorf("harness: query under injected panic succeeded")
		}
		tl.QueriesToTrip++
		if router.Stats().Shards[0].Breaker.State == "open" {
			break
		}
	}
	tl.Events = append(tl.Events, BreakerEvent{AtMs: msSince(start), Event: "breaker_open"})
	faultinject.Deactivate()

	// Breaker open, fault cleared: best_effort straddlers answer from
	// the survivors until the half-open probe readmits shard 0.
	for {
		resp := router.Query(ctx, shard.Request{Query: q, A: a, B: b, Extent: &straddler, Policy: shard.BestEffort})
		if resp.Err != nil {
			return tl, fmt.Errorf("harness: best_effort during open breaker: %w", resp.Err)
		}
		if resp.Coverage.Complete() {
			tl.Events = append(tl.Events, BreakerEvent{AtMs: msSince(start), Event: "recovered"})
			break
		}
		if tl.DegradedAnswers == 0 {
			tl.Events = append(tl.Events, BreakerEvent{AtMs: msSince(start), Event: "first_degraded_answer"})
		}
		tl.DegradedAnswers++
		if msSince(start) > 60_000 {
			return tl, fmt.Errorf("harness: breaker never recovered (open after %d degraded answers)", tl.DegradedAnswers)
		}
		time.Sleep(backoff / 10)
	}
	return tl, nil
}

func msSince(t time.Time) float64 {
	return float64(time.Since(t).Nanoseconds()) / 1e6
}
