package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"testing"

	"asrs/internal/asp"
	"asrs/internal/attr"
	"asrs/internal/dataset"
	"asrs/internal/dssearch"
)

// ParallelBenchConfig drives the concurrent-kernel benchmark sweep that
// backs the BENCH_PR*.json trajectory files: DS-Search on the tweet
// workload across worker counts, reported machine-readably so the perf
// trajectory can be tracked across PRs (each PR's file records the
// previous PR's workers=1 result as baseline_ns_per_op).
type ParallelBenchConfig struct {
	N       int   // dataset cardinality (default 100000)
	K       int   // query size multiplier (default 10, matching Fig. 10)
	Seed    int64 // dataset seed (default 42)
	Workers []int // worker sweep (default 1,2,4,8)
	// Batch overrides the kernel superstep batch size (0 keeps the
	// default). At any fixed batch the answer is worker-independent —
	// the sweep's determinism check enforces that at scale; across
	// batch sizes only the answer distance is guaranteed identical
	// (ties between equally-distant optima may resolve differently).
	Batch int
	// Workload selects the benchmarked composite: "f1" (default) is the
	// integer-exact fD workload on the Tweet corpus; "f2q" is the
	// real-valued fS+fA composite on the dyadic-quantized POI corpus
	// (dataset.POIQuant) that exercises the fixed-point channel and
	// min/max fast paths.
	Workload string
	// BaselineNs optionally records an externally measured reference
	// ns/op for the same workload (e.g. the pre-kernel sequential path at
	// its commit), so the report can state speedup against it. Zero
	// omits the comparison.
	BaselineNs int64
	// Note is free-form provenance recorded verbatim in the report
	// (machine, baseline commit, caveats).
	Note string
}

func (c ParallelBenchConfig) normalized() ParallelBenchConfig {
	if c.N <= 0 {
		c.N = 100000
	}
	if c.K <= 0 {
		c.K = 10
	}
	// Seed is used verbatim — 0 is a legitimate seed; the CLI flag
	// supplies the 42 default.
	if len(c.Workers) == 0 {
		c.Workers = []int{1, 2, 4, 8}
	}
	if c.Workload == "" {
		c.Workload = "f1"
	}
	return c
}

// ParallelBenchRun is one measured configuration.
type ParallelBenchRun struct {
	Workers     int     `json:"workers"`
	NsPerOp     int64   `json:"ns_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Dist        float64 `json:"dist"` // answer distance (identical across workers by contract)
	// Speedup is present only when the sweep includes a workers=1 run to
	// measure against.
	Speedup float64 `json:"speedup_vs_workers_1,omitempty"`
	// SpeedupVsBaseline is present only when the config carried an
	// external baseline measurement.
	SpeedupVsBaseline float64 `json:"speedup_vs_baseline,omitempty"`
}

// ParallelBenchReport is the JSON document written to the BENCH_PR*.json
// trajectory files.
type ParallelBenchReport struct {
	Benchmark  string             `json:"benchmark"`
	Dataset    string             `json:"dataset"`
	Workload   string             `json:"workload"`
	N          int                `json:"n"`
	QuerySizeK int                `json:"query_size_k"`
	Seed       int64              `json:"seed"`
	Batch      int                `json:"batch,omitempty"` // kernel superstep batch size; 0 = kernel default
	GoMaxProcs int                `json:"gomaxprocs"`
	NumCPU     int                `json:"num_cpu"`
	Host       Host               `json:"host"`
	BaselineNs int64              `json:"baseline_ns_per_op,omitempty"`
	Note       string             `json:"note,omitempty"`
	Runs       []ParallelBenchRun `json:"runs"`
}

// RunParallelBench benchmarks exact DS-Search across the worker sweep
// and writes the JSON report to out. All configurations must return the
// same answer distance — a mismatch is reported as an error, making the
// bench double as a cheap large-scale determinism check.
func RunParallelBench(out io.Writer, cfg ParallelBenchConfig) error {
	cfg = cfg.normalized()
	var (
		ds     *attr.Dataset
		dsName string
		makeQ  func(*attr.Dataset, float64, float64) (asp.Query, error)
	)
	switch cfg.Workload {
	case "f1":
		ds, dsName, makeQ = dataset.Tweet(cfg.N, cfg.Seed), "tweet", dataset.F1
	case "f2q":
		ds, dsName, makeQ = dataset.POIQuant(cfg.N, cfg.Seed), "poiquant", dataset.F2
	default:
		return fmt.Errorf("harness: unknown workload %q (want f1 or f2q)", cfg.Workload)
	}
	bounds := ds.Bounds()
	qa := float64(cfg.K) * bounds.Width() / 1000
	qb := float64(cfg.K) * bounds.Height() / 1000
	q, err := makeQ(ds, qa, qb)
	if err != nil {
		return err
	}

	report := ParallelBenchReport{
		Benchmark:  "ds-search/" + dsName,
		Dataset:    dsName,
		Workload:   cfg.Workload,
		N:          len(ds.Objects),
		QuerySizeK: cfg.K,
		Seed:       cfg.Seed,
		Batch:      cfg.Batch,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Host:       CollectHost(),
		BaselineNs: cfg.BaselineNs,
		Note:       cfg.Note,
	}

	var want asp.Result
	for i, w := range cfg.Workers {
		opt := dssearch.Options{Workers: w, BatchSize: cfg.Batch}
		_, res, _, err := dssearch.SolveASRS(ds, qa, qb, q, opt)
		if err != nil {
			return err
		}
		if i == 0 {
			want = res
		} else if res.Dist != want.Dist || res.Point != want.Point {
			// The kernel contract is bit-identical answers — point
			// included, since tied distances are where schedule
			// dependence would hide.
			return fmt.Errorf("harness: workers=%d answered %g at %v, workers=%d answered %g at %v — determinism contract violated",
				w, res.Dist, res.Point, cfg.Workers[0], want.Dist, want.Point)
		}
		br := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, _, err := dssearch.SolveASRS(ds, qa, qb, q, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
		run := ParallelBenchRun{
			Workers:     w,
			NsPerOp:     br.NsPerOp(),
			AllocsPerOp: br.AllocsPerOp(),
			BytesPerOp:  br.AllocedBytesPerOp(),
			Dist:        res.Dist,
		}
		if run.NsPerOp > 0 {
			run.OpsPerSec = 1e9 / float64(run.NsPerOp)
			if cfg.BaselineNs > 0 {
				run.SpeedupVsBaseline = float64(cfg.BaselineNs) / float64(run.NsPerOp)
			}
		}
		report.Runs = append(report.Runs, run)
	}

	// Speedups are measured against the sweep's workers=1 entry; a sweep
	// without one simply omits the field rather than inventing a
	// baseline.
	var seqNs int64
	for _, r := range report.Runs {
		if r.Workers == 1 {
			seqNs = r.NsPerOp
			break
		}
	}
	if seqNs > 0 {
		for i := range report.Runs {
			if report.Runs[i].NsPerOp > 0 {
				report.Runs[i].Speedup = float64(seqNs) / float64(report.Runs[i].NsPerOp)
			}
		}
	}

	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}
