// Package harness regenerates every table and figure of the paper's
// experimental study (§7) on the synthetic workloads of
// internal/dataset. Each experiment prints the same rows/series the paper
// reports; EXPERIMENTS.md records a reference run against the paper's
// numbers.
//
// Cardinalities are scaled down from the paper's 10⁶–10⁸ objects (the
// sweep-line baseline is O(n²); the paper's C++ testbed ran hours of
// machine time). Config.Scale multiplies every default cardinality, so
// `asrsbench -exp fig8 -scale 10` approaches the paper's sizes when given
// the time.
package harness

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Config controls an experiment run.
type Config struct {
	Out   io.Writer // destination for the table rows (required)
	Seed  int64     // dataset seed (default 42)
	Scale float64   // cardinality multiplier (default 1.0)
}

func (c Config) normalized() Config {
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Scale <= 0 {
		c.Scale = 1
	}
	return c
}

// scaled returns n·Scale, at least 1.
func (c Config) scaled(n int) int {
	v := int(float64(n) * c.Scale)
	if v < 1 {
		v = 1
	}
	return v
}

// Experiment is one regenerable artifact of the paper.
type Experiment struct {
	Name  string // harness id, e.g. "fig8"
	Paper string // the artifact it regenerates
	Desc  string
	Run   func(Config) error
}

var registry = map[string]Experiment{}
var order []string

func register(e Experiment) {
	registry[e.Name] = e
	order = append(order, e.Name)
}

// Experiments lists all registered experiments in registration order.
func Experiments() []Experiment {
	out := make([]Experiment, 0, len(order))
	sorted := append([]string(nil), order...)
	sort.Strings(sorted)
	for _, n := range sorted {
		out = append(out, registry[n])
	}
	return out
}

// Run executes the named experiment.
func Run(name string, cfg Config) error {
	e, ok := registry[name]
	if !ok {
		return fmt.Errorf("harness: unknown experiment %q (try: %v)", name, names())
	}
	cfg = cfg.normalized()
	fmt.Fprintf(cfg.Out, "== %s: %s ==\n%s\n", e.Name, e.Paper, e.Desc)
	start := time.Now()
	if err := e.Run(cfg); err != nil {
		return fmt.Errorf("harness: %s: %w", name, err)
	}
	fmt.Fprintf(cfg.Out, "(%s completed in %v)\n\n", e.Name, time.Since(start).Round(time.Millisecond))
	return nil
}

// RunAll executes every experiment.
func RunAll(cfg Config) error {
	for _, e := range Experiments() {
		if err := Run(e.Name, cfg); err != nil {
			return err
		}
	}
	return nil
}

func names() []string {
	var ns []string
	for n := range registry {
		ns = append(ns, n)
	}
	sort.Strings(ns)
	return ns
}

// timeIt measures fn's wall time in milliseconds.
func timeIt(fn func() error) (float64, error) {
	start := time.Now()
	err := fn()
	return float64(time.Since(start).Microseconds()) / 1000, err
}

// table is a minimal fixed-width row printer.
type table struct {
	out  io.Writer
	cols []string
}

func newTable(out io.Writer, cols ...string) *table {
	t := &table{out: out, cols: cols}
	for i, c := range cols {
		if i > 0 {
			fmt.Fprint(out, "  ")
		}
		fmt.Fprintf(out, "%-14s", c)
	}
	fmt.Fprintln(out)
	return t
}

func (t *table) row(cells ...any) {
	for i, c := range cells {
		if i > 0 {
			fmt.Fprint(t.out, "  ")
		}
		switch v := c.(type) {
		case float64:
			fmt.Fprintf(t.out, "%-14.2f", v)
		case string:
			fmt.Fprintf(t.out, "%-14s", v)
		default:
			fmt.Fprintf(t.out, "%-14v", v)
		}
	}
	fmt.Fprintln(t.out)
}
