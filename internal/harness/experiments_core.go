package harness

import (
	"fmt"

	"asrs/internal/asp"
	"asrs/internal/attr"
	"asrs/internal/dataset"
	"asrs/internal/dssearch"
	"asrs/internal/sweep"
)

// workload bundles a dataset with its paper query constructor.
type workload struct {
	name  string
	ds    *attr.Dataset
	query func(a, b float64) (asp.Query, error)
}

func tweetWorkload(n int, seed int64) workload {
	ds := dataset.Tweet(n, seed)
	return workload{name: fmt.Sprintf("Tweet-%d", n), ds: ds,
		query: func(a, b float64) (asp.Query, error) { return dataset.F1(ds, a, b) }}
}

func poiWorkload(n int, seed int64) workload {
	ds := dataset.POISyn(n, seed)
	return workload{name: fmt.Sprintf("POISyn-%d", n), ds: ds,
		query: func(a, b float64) (asp.Query, error) { return dataset.F2(ds, a, b) }}
}

// querySize returns the paper's k·q extent for a dataset.
func querySize(ds *attr.Dataset, k int) (float64, float64) {
	bounds := ds.Bounds()
	return float64(k) * bounds.Width() / 1000, float64(k) * bounds.Height() / 1000
}

func runBase(w workload, k int) (float64, float64, error) {
	a, b := querySize(w.ds, k)
	q, err := w.query(a, b)
	if err != nil {
		return 0, 0, err
	}
	var dist float64
	ms, err := timeIt(func() error {
		rects, err := asp.Reduce(w.ds, a, b, asp.AnchorTR)
		if err != nil {
			return err
		}
		s, err := sweep.New(rects, q)
		if err != nil {
			return err
		}
		dist = s.Solve().Dist
		return nil
	})
	return ms, dist, err
}

func runDS(w workload, k, ncol, nrow int) (float64, float64, dssearch.Stats, error) {
	a, b := querySize(w.ds, k)
	q, err := w.query(a, b)
	if err != nil {
		return 0, 0, dssearch.Stats{}, err
	}
	var dist float64
	var stats dssearch.Stats
	ms, err := timeIt(func() error {
		// Workers pinned to 1: these experiments reproduce the paper's
		// single-threaded algorithm comparison, so kernel parallelism
		// must not inflate DS-Search against the sequential Base. The
		// worker sweep lives in RunParallelBench.
		_, res, st, err := dssearch.SolveASRS(w.ds, a, b, q, dssearch.Options{NCol: ncol, NRow: nrow, Workers: 1})
		stats = st
		dist = res.Dist
		return err
	})
	return ms, dist, stats, err
}

func init() {
	register(Experiment{
		Name:  "fig8",
		Paper: "Figure 8(a,b) — runtime vs query rectangle size, DS-Search vs Base",
		Desc:  "Sizes q, 4q, 7q, 10q on Tweet and POISyn (paper: 1M objects; scaled).",
		Run: func(cfg Config) error {
			n := cfg.scaled(4000)
			for _, w := range []workload{tweetWorkload(n, cfg.Seed), poiWorkload(n, cfg.Seed)} {
				fmt.Fprintf(cfg.Out, "[%s]\n", w.name)
				t := newTable(cfg.Out, "size", "Base (ms)", "DS-Search (ms)", "speedup", "agree")
				for _, k := range []int{1, 4, 7, 10} {
					baseMS, baseDist, err := runBase(w, k)
					if err != nil {
						return err
					}
					dsMS, dsDist, _, err := runDS(w, k, 30, 30)
					if err != nil {
						return err
					}
					t.row(fmt.Sprintf("%dq", k), baseMS, dsMS, baseMS/dsMS, agreeMark(baseDist, dsDist))
				}
			}
			return nil
		},
	})

	register(Experiment{
		Name:  "fig9",
		Paper: "Figure 9(a,b) — DS-Search runtime vs grid granularity n_col = n_row",
		Desc:  "Granularities 10–50 for sizes q..10q (paper: 1M objects; scaled).",
		Run: func(cfg Config) error {
			n := cfg.scaled(100000)
			for _, w := range []workload{tweetWorkload(n, cfg.Seed), poiWorkload(n, cfg.Seed)} {
				fmt.Fprintf(cfg.Out, "[%s]\n", w.name)
				t := newTable(cfg.Out, "n_col=n_row", "q (ms)", "4q (ms)", "7q (ms)", "10q (ms)")
				for _, g := range []int{10, 20, 30, 40, 50} {
					cells := make([]any, 0, 5)
					cells = append(cells, g)
					for _, k := range []int{1, 4, 7, 10} {
						ms, _, _, err := runDS(w, k, g, g)
						if err != nil {
							return err
						}
						cells = append(cells, ms)
					}
					t.row(cells...)
				}
			}
			return nil
		},
	})

	register(Experiment{
		Name:  "fig10",
		Paper: "Figure 10(a,b) — runtime vs dataset cardinality, DS-Search vs Base",
		Desc:  "Cardinalities 1,4,7,10 × unit at size 10q (paper: ×10⁵; scaled unit).",
		Run: func(cfg Config) error {
			unit := cfg.scaled(1000)
			for _, mk := range []func(int, int64) workload{tweetWorkload, poiWorkload} {
				first := mk(unit, cfg.Seed)
				fmt.Fprintf(cfg.Out, "[%s family]\n", first.name)
				t := newTable(cfg.Out, "objects", "Base (ms)", "DS-Search (ms)", "speedup", "agree")
				for _, mult := range []int{1, 4, 7, 10} {
					w := mk(mult*unit, cfg.Seed)
					baseMS, baseDist, err := runBase(w, 10)
					if err != nil {
						return err
					}
					dsMS, dsDist, _, err := runDS(w, 10, 30, 30)
					if err != nil {
						return err
					}
					t.row(mult*unit, baseMS, dsMS, baseMS/dsMS, agreeMark(baseDist, dsDist))
				}
			}
			return nil
		},
	})
}

// agreeMark verifies the two algorithms found equally good answers (the
// reproduction's built-in correctness check).
func agreeMark(a, b float64) string {
	d := a - b
	if d < 0 {
		d = -d
	}
	if d <= 1e-6*(1+absF(a)) {
		return "yes"
	}
	return fmt.Sprintf("NO (%g vs %g)", a, b)
}

func absF(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
