package harness

import (
	"bytes"
	"strings"
	"testing"
)

// TestAllExperimentsSmoke runs every registered experiment at 1% scale:
// it checks that each completes without error, prints its table, and that
// the built-in agreement checks (Base == DS-Search == GI-DS, the (1+δ)
// guarantee, the case-study assertion) hold on the scaled workloads.
func TestAllExperimentsSmoke(t *testing.T) {
	for _, e := range Experiments() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := Run(e.Name, Config{Out: &buf, Scale: 0.01, Seed: 7}); err != nil {
				t.Fatalf("%s: %v\noutput:\n%s", e.Name, err, buf.String())
			}
			out := buf.String()
			if !strings.Contains(out, e.Paper) {
				t.Errorf("%s: header missing", e.Name)
			}
			if strings.Contains(out, "NO (") {
				t.Errorf("%s: algorithms disagreed:\n%s", e.Name, out)
			}
		})
	}
}

func TestRunUnknown(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("nope", Config{Out: &buf}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestExperimentRegistryComplete(t *testing.T) {
	want := []string{"casestudy", "fig10", "fig11", "fig12", "fig13a", "fig13b", "fig8", "fig9", "table1", "table2"}
	got := Experiments()
	if len(got) != len(want) {
		t.Fatalf("registered %d experiments, want %d", len(got), len(want))
	}
	for i, e := range got {
		if e.Name != want[i] {
			t.Errorf("experiment %d = %s, want %s", i, e.Name, want[i])
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.normalized()
	if c.Seed != 42 || c.Scale != 1 {
		t.Fatalf("defaults = %+v", c)
	}
	if c.scaled(100) != 100 {
		t.Fatal("scaled identity")
	}
	tiny := Config{Scale: 0.001}.normalized()
	if tiny.scaled(100) != 1 {
		t.Fatal("scaled floor")
	}
}
