package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"asrs"
	"asrs/internal/dataset"
)

// BatchBenchConfig drives the batched-serving benchmark behind
// BENCH_PR4.json: a batch of overlapping Singapore-extent
// query-by-example requests answered (a) one query at a time through
// the PR-3-equivalent path (pyramid and batch grouping disabled) and
// (b) through the cross-query-amortized path (persistent per-composite
// pyramid + batch grouping + shared per-worker scratch). Per-query
// answer distances must be bit-identical between the modes, across the
// worker sweep, and with grouping on or off — the bench doubles as the
// acceptance check for the amortization layer.
type BatchBenchConfig struct {
	N       int   // corpus cardinality (default 100000)
	Queries int   // requests per batch (default 24)
	Seed    int64 // corpus + extent seed
	Workers []int // kernel worker sweep (default 1,2)
	// BaselineNs optionally records an externally measured reference
	// ns/query for provenance.
	BaselineNs int64
	Note       string
}

func (c BatchBenchConfig) normalized() BatchBenchConfig {
	if c.N <= 0 {
		c.N = 100000
	}
	if c.Queries <= 0 {
		c.Queries = 24
	}
	if len(c.Workers) == 0 {
		c.Workers = []int{1, 2}
	}
	return c
}

// BatchBenchRun is one measured (mode, workers) configuration.
type BatchBenchRun struct {
	Mode          string  `json:"mode"` // "pr3_per_query" or "batched"
	Workers       int     `json:"workers"`
	NsPerBatch    int64   `json:"ns_per_batch"`
	NsPerQuery    int64   `json:"ns_per_query"`
	QueriesPerSec float64 `json:"queries_per_sec"`
	AllocsPerOp   int64   `json:"allocs_per_batch"`
	BytesPerOp    int64   `json:"bytes_per_batch"`
	// Speedup is this run's throughput over the pr3_per_query run at
	// workers=1 (the acceptance ratio).
	Speedup float64 `json:"speedup_vs_pr3_w1,omitempty"`
}

// BatchBenchReport is the JSON document written to BENCH_PR4.json.
type BatchBenchReport struct {
	Benchmark  string          `json:"benchmark"`
	Dataset    string          `json:"dataset"`
	N          int             `json:"n"`
	Queries    int             `json:"queries"`
	Duplicates int             `json:"duplicate_requests"`
	Seed       int64           `json:"seed"`
	GoMaxProcs int             `json:"gomaxprocs"`
	NumCPU     int             `json:"num_cpu"`
	Host       Host            `json:"host"`
	BaselineNs int64           `json:"baseline_ns_per_query,omitempty"`
	Note       string          `json:"note,omitempty"`
	Dists      []float64       `json:"dists"` // per-query answers, identical in every run
	Runs       []BatchBenchRun `json:"runs"`
}

// batchRequests builds the overlapping-extent request set: query-by-
// example regions clustered around the case study's district band, all
// sharing one (a, b) shape, with a handful of exact repeats (popular
// queries) that exercise the dedup pass.
func batchRequests(ds *asrs.Dataset, f *asrs.Composite, k int, seed int64) ([]asrs.QueryRequest, int, error) {
	// District-scale extents (Orchard is ~1/31 of the city span).
	bounds := ds.Bounds()
	a := bounds.Width() / 32
	b := bounds.Height() / 32
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	reqs := make([]asrs.QueryRequest, k)
	dups := 0
	for i := range reqs {
		if i > 0 && i%3 == 2 {
			// Serving batches are Zipf-ish: popular queries repeat (a third
			// of the batch here). The dedup pass answers each distinct
			// request once and copies the response.
			reqs[i] = reqs[rng.Intn(i)]
			dups++
			continue
		}
		cx := bounds.MinX + bounds.Width()*(0.15+0.65*rng.Float64())
		cy := bounds.MinY + bounds.Height()*(0.15+0.65*rng.Float64())
		rq := asrs.Rect{MinX: cx, MinY: cy, MaxX: cx + a, MaxY: cy + b}
		q, err := asrs.QueryFromRegion(ds, f, nil, rq)
		if err != nil {
			return nil, 0, err
		}
		// Inflate the example's representation into a "what if this area
		// were 30% denser" virtual target (§3.3): the query region itself
		// is no longer a zero-distance answer, so every request runs a
		// real search instead of instantly rediscovering its example.
		for j := range q.Target {
			q.Target[j] = math.Trunc(q.Target[j]*1.1) + 0.5
		}
		reqs[i] = asrs.QueryRequest{Query: q, A: a, B: b}
	}
	return reqs, dups, nil
}

// RunBatchBench benchmarks the batched path against the per-query path
// and writes the JSON report to out. Any distance mismatch between
// configurations is an error.
func RunBatchBench(out io.Writer, cfg BatchBenchConfig) error {
	cfg = cfg.normalized()
	ds := dataset.SingaporeScaled(cfg.N, cfg.Seed)
	f, err := asrs.NewComposite(ds.Schema,
		asrs.AggSpec{Kind: asrs.Distribution, Attr: "category"},
		asrs.AggSpec{Kind: asrs.Count},
	)
	if err != nil {
		return err
	}
	reqs, dups, err := batchRequests(ds, f, cfg.Queries, cfg.Seed)
	if err != nil {
		return err
	}

	type mode struct {
		name string
		opt  asrs.EngineOptions
	}
	engineFor := func(m mode, workers int) (*asrs.Engine, error) {
		opt := m.opt
		opt.BatchParallelism = 1  // compare pure per-query cost at equal CPU
		opt.IndexGranularity = 64 // the serving shape: GI-DS in both modes
		opt.Search.Workers = workers
		return asrs.NewEngine(ds, opt)
	}
	modes := []mode{
		{"pr3_per_query", asrs.EngineOptions{DisablePyramid: true, DisableBatchGrouping: true}},
		{"batched", asrs.EngineOptions{}},
	}

	report := BatchBenchReport{
		Benchmark:  "engine-batch/singapore",
		Dataset:    "singapore-scaled",
		N:          len(ds.Objects),
		Queries:    len(reqs),
		Duplicates: dups,
		Seed:       cfg.Seed,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Host:       CollectHost(),
		BaselineNs: cfg.BaselineNs,
		Note:       cfg.Note,
	}

	// Answer verification: every mode, every worker count, plus the
	// grouping-off ablation, must produce bit-identical per-query
	// distances.
	var wantDists []float64
	check := func(tag string, resp []asrs.QueryResponse) error {
		for i := range resp {
			if resp[i].Err != nil {
				return fmt.Errorf("harness: %s query %d failed: %v", tag, i, resp[i].Err)
			}
		}
		if wantDists == nil {
			wantDists = make([]float64, len(resp))
			for i := range resp {
				wantDists[i] = resp[i].Results[0].Dist
			}
			return nil
		}
		for i := range resp {
			if math.Float64bits(resp[i].Results[0].Dist) != math.Float64bits(wantDists[i]) {
				return fmt.Errorf("harness: %s query %d answered %v, want %v — batched answers must be bit-identical",
					tag, i, resp[i].Results[0].Dist, wantDists[i])
			}
		}
		return nil
	}
	for _, m := range append(modes, mode{"pyramid_ungrouped", asrs.EngineOptions{DisableBatchGrouping: true}}) {
		for _, w := range cfg.Workers {
			eng, err := engineFor(m, w)
			if err != nil {
				return err
			}
			if err := check(fmt.Sprintf("%s/w%d", m.name, w), eng.QueryBatch(reqs)); err != nil {
				return err
			}
		}
	}
	report.Dists = wantDists

	var pr3W1 int64
	for _, m := range modes {
		for _, w := range cfg.Workers {
			eng, err := engineFor(m, w)
			if err != nil {
				return err
			}
			var resp []asrs.QueryResponse
			resp = eng.QueryBatchInto(resp, reqs) // warm caches outside the timer
			br := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					resp = eng.QueryBatchInto(resp, reqs)
				}
			})
			run := BatchBenchRun{
				Mode:        m.name,
				Workers:     w,
				NsPerBatch:  br.NsPerOp(),
				NsPerQuery:  br.NsPerOp() / int64(len(reqs)),
				AllocsPerOp: br.AllocsPerOp(),
				BytesPerOp:  br.AllocedBytesPerOp(),
			}
			if run.NsPerBatch > 0 {
				run.QueriesPerSec = float64(len(reqs)) / (float64(run.NsPerBatch) / 1e9)
			}
			if m.name == "pr3_per_query" && w == 1 {
				pr3W1 = run.NsPerBatch
			}
			report.Runs = append(report.Runs, run)
		}
	}
	if pr3W1 > 0 {
		for i := range report.Runs {
			if report.Runs[i].NsPerBatch > 0 {
				report.Runs[i].Speedup = float64(pr3W1) / float64(report.Runs[i].NsPerBatch)
			}
		}
	}

	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}
