package harness

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"time"

	"asrs"
	"asrs/internal/agg"
	"asrs/internal/dataset"
	"asrs/internal/query"
)

// QueryBenchConfig drives the query-language frontend benchmark behind
// BENCH_PR10.json: what the declarative layer costs over hand-wired
// structs (parse+plan nanoseconds, amortized and cold), and what lazy
// streaming buys (time-to-first-result vs one-shot materialization of
// the full top-k). Every compiled plan is checked bit-identical to the
// hand-wired request's answer before anything is timed, so the bench
// doubles as an acceptance check for the frontend (DESIGN.md §12).
type QueryBenchConfig struct {
	N     int // corpus cardinality (default 20000)
	K     int // top-k depth for the streaming comparison (default 8)
	Iters int // parse+plan timing iterations (default 2000)
	Seed  int64
	// BaselineNs optionally records an externally measured reference
	// ns/op for provenance.
	BaselineNs int64
	Note       string
}

func (c QueryBenchConfig) normalized() QueryBenchConfig {
	if c.N <= 0 {
		c.N = 20000
	}
	if c.K <= 0 {
		c.K = 8
	}
	if c.Iters <= 0 {
		c.Iters = 2000
	}
	return c
}

// QueryBenchReport is the persisted result document.
type QueryBenchReport struct {
	Benchmark  string `json:"benchmark"`
	Dataset    string `json:"dataset"`
	N          int    `json:"n"`
	K          int    `json:"k"`
	Iters      int    `json:"iters"`
	Seed       int64  `json:"seed"`
	GoMaxProcs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	Host       Host   `json:"host"`

	// Query is the benchmarked query text.
	Query string `json:"query"`

	// ParsePlanColdNs compiles with a fresh planner each iteration: the
	// composite is type-checked and built every time (a first-contact
	// client, or one query shape per process).
	ParsePlanColdNs int64 `json:"parse_plan_cold_ns"`
	// ParsePlanWarmNs reuses one planner: the interner returns the
	// composite singleton and only parsing + request shaping remain (a
	// serving daemon compiling repeated query shapes).
	ParsePlanWarmNs int64 `json:"parse_plan_warm_ns"`
	// HandWiredNs builds the equivalent asrs.QueryRequest from a
	// prebuilt composite — the struct client being displaced.
	HandWiredNs int64 `json:"hand_wired_ns"`
	// WarmOverheadNs is ParsePlanWarmNs - HandWiredNs: the steady-state
	// per-query cost of the text frontend.
	WarmOverheadNs int64 `json:"warm_overhead_ns"`

	// ExecOneShotNs runs the hand-wired top-k request to completion.
	ExecOneShotNs int64 `json:"exec_one_shot_ns"`
	// ExecStreamTotalNs drains the compiled plan's lazy stream (k greedy
	// rounds; the full-set cost of the streaming strategy).
	ExecStreamTotalNs int64 `json:"exec_stream_total_ns"`
	// StreamFirstRowNs is time-to-first-result: Exec plus one Next.
	StreamFirstRowNs int64 `json:"stream_first_row_ns"`
	// FirstRowSpeedup is ExecOneShotNs / StreamFirstRowNs: how much
	// sooner the first answer is on the wire under streaming.
	FirstRowSpeedup float64 `json:"first_row_speedup"`

	// BitIdentical records the pre-timing acceptance check: every stream
	// row equal (Float64bits) to the one-shot answer.
	BitIdentical bool `json:"bit_identical"`

	BaselineNs int64  `json:"baseline_ns,omitempty"`
	Note       string `json:"note,omitempty"`
}

// RunQueryBench measures the query frontend and writes the JSON report.
func RunQueryBench(out io.Writer, cfg QueryBenchConfig) error {
	cfg = cfg.normalized()
	ds := dataset.Random(cfg.N, 100, cfg.Seed)
	f := agg.MustNew(ds.Schema,
		agg.Spec{Kind: agg.Distribution, Attr: "cat"},
		agg.Spec{Kind: agg.Sum, Attr: "val"},
	)
	src := fmt.Sprintf("find top %d size 8 x 8 similar to target(1,2,1,5) under dist(cat) + sum(val)", cfg.K)
	target := []float64{1, 2, 1, 5}

	eng, err := asrs.NewEngine(ds, asrs.EngineOptions{})
	if err != nil {
		return err
	}
	handWired := func() (asrs.QueryRequest, error) {
		q, err := asrs.QueryFromTarget(f, target, nil)
		if err != nil {
			return asrs.QueryRequest{}, err
		}
		return asrs.QueryRequest{Query: q, A: 8, B: 8, TopK: cfg.K}, nil
	}

	// --- acceptance: the compiled plan's stream must reproduce the
	// hand-wired one-shot answer bit for bit before anything is timed.
	planner := query.NewPlanner(ds.Schema, nil)
	pl, err := planner.ParseAndPlan(src)
	if err != nil {
		return err
	}
	ref, err := handWired()
	if err != nil {
		return err
	}
	want := eng.QueryCtx(context.Background(), ref)
	if want.Err != nil {
		return want.Err
	}
	st, err := query.Exec(context.Background(), pl, query.EngineBinding{E: eng})
	if err != nil {
		return err
	}
	regions, results, err := st.Collect()
	if err != nil {
		return err
	}
	if len(regions) != len(want.Regions) {
		return fmt.Errorf("harness: stream emitted %d regions, one-shot answered %d", len(regions), len(want.Regions))
	}
	for i := range regions {
		if !rectBitsEqual(regions[i], want.Regions[i]) ||
			math.Float64bits(results[i].Dist) != math.Float64bits(want.Results[i].Dist) {
			return fmt.Errorf("harness: stream row %d differs from one-shot answer", i)
		}
	}

	report := QueryBenchReport{
		Benchmark:    "query-frontend/random",
		Dataset:      "random",
		N:            cfg.N,
		K:            cfg.K,
		Iters:        cfg.Iters,
		Seed:         cfg.Seed,
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		NumCPU:       runtime.NumCPU(),
		Host:         CollectHost(),
		Query:        src,
		BitIdentical: true,
		BaselineNs:   cfg.BaselineNs,
		Note:         cfg.Note,
	}

	// --- parse+plan cost.
	report.ParsePlanColdNs = timeOp(cfg.Iters, func() error {
		p := query.NewPlanner(ds.Schema, nil)
		_, err := p.ParseAndPlan(src)
		return err
	})
	report.ParsePlanWarmNs = timeOp(cfg.Iters, func() error {
		_, err := planner.ParseAndPlan(src)
		return err
	})
	report.HandWiredNs = timeOp(cfg.Iters, func() error {
		_, err := handWired()
		return err
	})
	report.WarmOverheadNs = report.ParsePlanWarmNs - report.HandWiredNs

	// --- execution: one-shot vs lazy stream, warmed engine, best of a
	// few repeats so a stray scheduling hiccup can't skew the headline.
	const repeats = 5
	report.ExecOneShotNs = bestOf(repeats, func() (int64, error) {
		req, _ := handWired()
		start := time.Now()
		resp := eng.QueryCtx(context.Background(), req)
		if resp.Err != nil {
			return 0, resp.Err
		}
		return time.Since(start).Nanoseconds(), nil
	})
	report.ExecStreamTotalNs = bestOf(repeats, func() (int64, error) {
		start := time.Now()
		st, err := query.Exec(context.Background(), pl, query.EngineBinding{E: eng})
		if err != nil {
			return 0, err
		}
		if _, _, err := st.Collect(); err != nil {
			return 0, err
		}
		return time.Since(start).Nanoseconds(), nil
	})
	report.StreamFirstRowNs = bestOf(repeats, func() (int64, error) {
		start := time.Now()
		st, err := query.Exec(context.Background(), pl, query.EngineBinding{E: eng})
		if err != nil {
			return 0, err
		}
		if _, ok := st.Next(); !ok {
			return 0, fmt.Errorf("harness: stream produced no first row: %v", st.Err())
		}
		return time.Since(start).Nanoseconds(), nil
	})
	if report.StreamFirstRowNs > 0 {
		report.FirstRowSpeedup = float64(report.ExecOneShotNs) / float64(report.StreamFirstRowNs)
	}

	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// timeOp returns mean ns/op over iters calls (panics bubble as errors
// are rare here: any op error aborts the mean with a huge sentinel so
// the report is visibly wrong rather than silently flattering).
func timeOp(iters int, op func() error) int64 {
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := op(); err != nil {
			return math.MaxInt64
		}
	}
	return time.Since(start).Nanoseconds() / int64(iters)
}

// bestOf returns the fastest of n timed runs.
func bestOf(n int, run func() (int64, error)) int64 {
	best := int64(math.MaxInt64)
	for i := 0; i < n; i++ {
		ns, err := run()
		if err != nil {
			return math.MaxInt64
		}
		if ns < best {
			best = ns
		}
	}
	return best
}

// rectBitsEqual compares rectangles by Float64bits.
func rectBitsEqual(a, b asrs.Rect) bool {
	return math.Float64bits(a.MinX) == math.Float64bits(b.MinX) &&
		math.Float64bits(a.MinY) == math.Float64bits(b.MinY) &&
		math.Float64bits(a.MaxX) == math.Float64bits(b.MaxX) &&
		math.Float64bits(a.MaxY) == math.Float64bits(b.MaxY)
}
