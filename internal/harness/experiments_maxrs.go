package harness

import (
	"fmt"

	"asrs/internal/dataset"
	"asrs/internal/dssearch"
	"asrs/internal/maxrs"
)

// maxrsPoints draws weighted-1 points from the synthetic Tweet corpus
// (the paper samples tweets for the MaxRS study).
func maxrsPoints(n int, seed int64) []maxrs.Point {
	ds := dataset.Tweet(n, seed)
	pts := make([]maxrs.Point, len(ds.Objects))
	for i := range ds.Objects {
		pts[i] = maxrs.Point{Loc: ds.Objects[i].Loc, Weight: 1}
	}
	return pts
}

func runOE(pts []maxrs.Point, a, b float64) (float64, float64, error) {
	var weight float64
	ms, err := timeIt(func() error {
		res, err := maxrs.OE(pts, a, b)
		weight = res.Weight
		return err
	})
	return ms, weight, err
}

func runDSMaxRS(pts []maxrs.Point, a, b float64) (float64, float64, error) {
	var weight float64
	ms, err := timeIt(func() error {
		res, _, err := maxrs.DS(pts, a, b, dssearch.Options{Workers: 1})
		weight = res.Weight
		return err
	})
	return ms, weight, err
}

func init() {
	register(Experiment{
		Name:  "fig13a",
		Paper: "Figure 13(a) — MaxRS runtime vs query rectangle size, OE vs DS-Search",
		Desc:  "Sizes 1q,10q,20q,30q on sampled tweets (paper: 5×10⁶; scaled).",
		Run: func(cfg Config) error {
			n := cfg.scaled(300000)
			pts := maxrsPoints(n, cfg.Seed)
			bounds := dataset.USBounds()
			t := newTable(cfg.Out, "size", "OE (ms)", "DS-Search (ms)", "agree")
			for _, k := range []int{1, 10, 20, 30} {
				a := float64(k) * bounds.Width() / 1000
				b := float64(k) * bounds.Height() / 1000
				oeMS, oeW, err := runOE(pts, a, b)
				if err != nil {
					return err
				}
				dsMS, dsW, err := runDSMaxRS(pts, a, b)
				if err != nil {
					return err
				}
				t.row(fmt.Sprintf("%dq", k), oeMS, dsMS, agreeMark(oeW, dsW))
			}
			return nil
		},
	})

	register(Experiment{
		Name:  "fig13b",
		Paper: "Figure 13(b) — MaxRS scalability, OE vs DS-Search",
		Desc:  "Cardinalities 1–5 × unit at size 10q (paper: 1–10 ×10⁶; scaled).",
		Run: func(cfg Config) error {
			unit := cfg.scaled(150000)
			bounds := dataset.USBounds()
			a := 10 * bounds.Width() / 1000
			b := 10 * bounds.Height() / 1000
			t := newTable(cfg.Out, "points", "OE (ms)", "DS-Search (ms)", "agree")
			for _, mult := range []int{1, 2, 3, 4, 5} {
				pts := maxrsPoints(mult*unit, cfg.Seed)
				oeMS, oeW, err := runOE(pts, a, b)
				if err != nil {
					return err
				}
				dsMS, dsW, err := runDSMaxRS(pts, a, b)
				if err != nil {
					return err
				}
				t.row(mult*unit, oeMS, dsMS, agreeMark(oeW, dsW))
			}
			return nil
		},
	})
}
