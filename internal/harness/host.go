package harness

import "runtime"

// Host records the machine a benchmark ran on, so every BENCH_PR*.json
// is self-describing about its CPU budget: a scaling curve measured on
// a 1-CPU container (GOMAXPROCS=1, oversubscribed worker counts) reads
// very differently from the same curve on a 16-core box, and the
// trajectory files outlive the machines that produced them.
type Host struct {
	GoMaxProcs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
}

// CollectHost snapshots the running process's host metadata.
func CollectHost() Host {
	return Host{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
	}
}
