// Package faultinject is a seeded, deterministic failpoint registry:
// named injection points compiled into the IO, kernel and serving
// paths that are zero-cost no-ops until a Plan is activated. The chaos
// suite (internal/chaos) activates seeded plans and replays query
// workloads to prove the process degrades into typed errors — never
// panics, never torn state — under injected IO faults, worker panics
// and slow barriers. See DESIGN.md §9 for the failpoint catalog.
//
// # Determinism
//
// A Plan is compiled from (seed, point specs): each armed point fires
// on a fixed arithmetic progression of its own invocation counter
// (every k-th call with offset o, both derived from an fnv-64a hash of
// the seed and the point name). Two runs that invoke a point the same
// number of times therefore fire the same faults, regardless of wall
// clock — the fired pattern is a pure function of the call sequence.
// Concurrent call sites share one counter per point, so across
// goroutines the *which-call* assignment can vary with the schedule;
// chaos tests account for that by tracking the fired counter around
// each unit of work and only comparing fault-free units against the
// oracle.
//
// # Cost when disabled
//
// Check loads one package-level atomic pointer and returns on nil.
// There is no map lookup, lock, or allocation on the disabled path, so
// production builds keep the probes compiled in.
package faultinject

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync/atomic"
	"time"
)

// ErrInjected is the root of every error returned by a fired ActError
// or ActShortWrite point; sites wrap it with their own context and
// callers classify with errors.Is.
var ErrInjected = errors.New("faultinject: injected fault")

// Action is what a fired point does at its site.
type Action uint8

const (
	// ActError makes the site fail with an error wrapping ErrInjected.
	ActError Action = iota
	// ActPanic makes the site panic (the value wraps ErrInjected's
	// message and the point name, so recovery layers can attribute it).
	ActPanic
	// ActShortWrite makes an IO site write only a prefix of the buffer
	// and then fail — the torn-write simulation for crash-safety tests.
	ActShortWrite
	// ActSleep makes the site sleep Fire.Delay and then proceed
	// normally (slow-barrier / slow-dispatch simulation). A fired
	// ActSleep still counts in Fired: a stall is a fault even though
	// the answer survives it.
	ActSleep
)

func (a Action) String() string {
	switch a {
	case ActError:
		return "error"
	case ActPanic:
		return "panic"
	case ActShortWrite:
		return "short-write"
	case ActSleep:
		return "sleep"
	}
	return fmt.Sprintf("action(%d)", uint8(a))
}

// Fire describes one firing of a point.
type Fire struct {
	Point  string
	Action Action
	// Delay is the ActSleep duration.
	Delay time.Duration
	// Bytes is the ActShortWrite prefix length allowed through.
	Bytes int
}

// Err returns the typed error an ActError/ActShortWrite firing
// surfaces, wrapping ErrInjected.
func (f Fire) Err() error {
	return fmt.Errorf("%w at %s (%s)", ErrInjected, f.Point, f.Action)
}

// PanicValue is the value an ActPanic firing panics with; recovery
// layers format it like any other panic payload.
func (f Fire) PanicValue() any {
	return fmt.Sprintf("faultinject: injected panic at %s", f.Point)
}

// Spec arms one point inside a Plan.
type Spec struct {
	// Point is the failpoint name (see the catalog in DESIGN.md §9).
	Point  string
	Action Action
	// MaxEvery bounds the firing period: the point fires once every
	// 1..MaxEvery invocations (seed-derived). Zero selects 8. One fires
	// on every invocation.
	MaxEvery int
	// Delay is the ActSleep duration (zero selects 1ms).
	Delay time.Duration
	// Bytes is the ActShortWrite prefix bound (zero lets the seed pick
	// a small prefix).
	Bytes int
}

// pointState is one armed point's compiled schedule plus its counters.
type pointState struct {
	name  string
	act   Action
	every uint64
	off   uint64
	delay time.Duration
	bytes int
	calls atomic.Uint64
	fired atomic.Uint64
}

// Plan is a compiled, activatable fault schedule. Build with NewPlan,
// install with Activate, remove with Deactivate. A Plan must not be
// reused across Activate calls if the test needs fresh counters —
// compile a new one per run.
type Plan struct {
	seed   int64
	points map[string]*pointState
	fired  atomic.Uint64
}

// NewPlan compiles a deterministic schedule from a seed: each spec'd
// point fires every k-th invocation with offset o, where k ∈
// [1, MaxEvery] and o ∈ [0, k) are derived from fnv64a(seed, name).
func NewPlan(seed int64, specs ...Spec) *Plan {
	p := &Plan{seed: seed, points: make(map[string]*pointState, len(specs))}
	for _, sp := range specs {
		h := fnv.New64a()
		fmt.Fprintf(h, "%d|%s|%d", seed, sp.Point, sp.Action)
		sum := h.Sum64()
		maxEvery := sp.MaxEvery
		if maxEvery <= 0 {
			maxEvery = 8
		}
		every := 1 + sum%uint64(maxEvery)
		off := (sum >> 17) % every
		delay := sp.Delay
		if delay <= 0 {
			delay = time.Millisecond
		}
		bytes := sp.Bytes
		if bytes <= 0 {
			bytes = int(sum>>29)%64 + 1
		}
		p.points[sp.Point] = &pointState{
			name: sp.Point, act: sp.Action,
			every: every, off: off, delay: delay, bytes: bytes,
		}
	}
	return p
}

// Seed returns the seed the plan was compiled from.
func (p *Plan) Seed() int64 { return p.seed }

// Fired returns the total number of fires across every point since the
// plan was compiled.
func (p *Plan) Fired() uint64 { return p.fired.Load() }

// FiredAt returns one point's fire count.
func (p *Plan) FiredAt(point string) uint64 {
	ps := p.points[point]
	if ps == nil {
		return 0
	}
	return ps.fired.Load()
}

// Points lists the plan's armed point names, sorted.
func (p *Plan) Points() []string {
	out := make([]string, 0, len(p.points))
	for name := range p.points {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// active is the installed plan; nil means every Check is a no-op.
var active atomic.Pointer[Plan]

// Activate installs the plan globally. Passing nil is Deactivate.
// Activation is process-wide: chaos tests that activate plans must not
// run in parallel with tests that assume a fault-free process.
func Activate(p *Plan) { active.Store(p) }

// Deactivate removes the installed plan; Check returns to the
// zero-cost no-op path.
func Deactivate() { active.Store(nil) }

// Active returns the installed plan (nil when none).
func Active() *Plan { return active.Load() }

// Fired returns the active plan's total fire count, 0 when no plan is
// installed. Chaos tests bracket each unit of work with Fired() to
// decide whether its answer is eligible for oracle comparison.
func Fired() uint64 {
	if p := active.Load(); p != nil {
		return p.Fired()
	}
	return 0
}

// Check is the probe every failpoint site calls: it reports whether
// the named point fires on this invocation and what it should do.
// With no plan installed it is a single atomic load.
func Check(name string) (Fire, bool) {
	p := active.Load()
	if p == nil {
		return Fire{}, false
	}
	ps := p.points[name]
	if ps == nil {
		return Fire{}, false
	}
	n := ps.calls.Add(1) - 1
	if n%ps.every != ps.off {
		return Fire{}, false
	}
	ps.fired.Add(1)
	p.fired.Add(1)
	return Fire{Point: ps.name, Action: ps.act, Delay: ps.delay, Bytes: ps.bytes}, true
}

// Sleep executes an ActSleep fire (a plain sleep; split out so sites
// read uniformly).
func (f Fire) Sleep() { time.Sleep(f.Delay) }
