package faultinject

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// With no plan installed, Check must be a no-op for any name.
func TestDisabledNoop(t *testing.T) {
	Deactivate()
	for i := 0; i < 100; i++ {
		if _, ok := Check("persist.save.write"); ok {
			t.Fatal("Check fired with no plan installed")
		}
	}
	if Fired() != 0 {
		t.Fatal("Fired non-zero with no plan")
	}
}

// The same (seed, specs, call sequence) must reproduce the same fire
// pattern, and different seeds should produce a different one for at
// least some point (the schedules are seed-derived).
func TestDeterministicSchedule(t *testing.T) {
	defer Deactivate()
	pattern := func(seed int64) []bool {
		p := NewPlan(seed,
			Spec{Point: "a", Action: ActError, MaxEvery: 4},
			Spec{Point: "b", Action: ActPanic, MaxEvery: 7},
		)
		Activate(p)
		defer Deactivate()
		var out []bool
		for i := 0; i < 64; i++ {
			_, okA := Check("a")
			_, okB := Check("b")
			out = append(out, okA, okB)
		}
		return out
	}
	p1, p2, q := pattern(42), pattern(42), pattern(43)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("same seed diverged at call %d", i)
		}
	}
	same := true
	for i := range p1 {
		if p1[i] != q[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical fire patterns (suspicious)")
	}
}

// Every armed point must fire at least once within MaxEvery calls, and
// the counters must add up.
func TestFiresWithinPeriod(t *testing.T) {
	defer Deactivate()
	p := NewPlan(7, Spec{Point: "x", Action: ActError, MaxEvery: 8})
	Activate(p)
	fired := 0
	for i := 0; i < 8; i++ {
		if f, ok := Check("x"); ok {
			fired++
			if !errors.Is(f.Err(), ErrInjected) {
				t.Fatal("Fire.Err does not wrap ErrInjected")
			}
		}
	}
	if fired != 1 {
		t.Fatalf("expected exactly 1 fire in the first period, got %d", fired)
	}
	if p.Fired() != 1 || p.FiredAt("x") != 1 || Fired() != 1 {
		t.Fatalf("counter mismatch: plan=%d point=%d global=%d", p.Fired(), p.FiredAt("x"), Fired())
	}
}

// MaxEvery=1 fires on every call — the always-on configuration the
// targeted failure tests use.
func TestEveryCall(t *testing.T) {
	defer Deactivate()
	Activate(NewPlan(1, Spec{Point: "p", Action: ActSleep, MaxEvery: 1, Delay: time.Microsecond}))
	for i := 0; i < 10; i++ {
		f, ok := Check("p")
		if !ok {
			t.Fatalf("call %d did not fire with MaxEvery=1", i)
		}
		if f.Action != ActSleep || f.Delay != time.Microsecond {
			t.Fatalf("unexpected fire %+v", f)
		}
	}
}

// Concurrent Check calls must be safe and conserve the fire count:
// exactly calls/every fires per full period window.
func TestConcurrentCheck(t *testing.T) {
	defer Deactivate()
	p := NewPlan(11, Spec{Point: "c", Action: ActError, MaxEvery: 4})
	Activate(p)
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				Check("c")
			}
		}()
	}
	wg.Wait()
	calls := uint64(goroutines * per)
	fired := p.FiredAt("c")
	ok := false
	for e := uint64(1); e <= 4; e++ {
		// Exactly one fire per full period; the final partial period
		// contributes 0 or 1 depending on the offset.
		if fired == calls/e || fired == calls/e+1 {
			ok = true
			break
		}
	}
	if !ok {
		t.Fatalf("fired count %d not consistent with any period 1..4 over %d calls", fired, calls)
	}
}

func TestPanicValueMentionsPoint(t *testing.T) {
	f := Fire{Point: "kernel.process.panic", Action: ActPanic}
	if v, ok := f.PanicValue().(string); !ok || v == "" {
		t.Fatal("PanicValue not a descriptive string")
	}
}
