// Package wal implements the checksummed, segment-rotating write-ahead
// log behind Engine.Insert's durability contract (DESIGN.md §10). The
// log is a directory of segment files, each named by the LSN of its
// first record:
//
//	wal-0000000000000001.seg
//	wal-00000000000004e3.seg
//	...
//
// Records are opaque payloads framed as
//
//	u32 LE payload length | u32 LE CRC-32C (Castagnoli) of payload | payload
//
// and LSNs are implicit: record i of a segment has LSN firstLSN+i, so
// segments are contiguous by construction and a missing segment is
// detectable from the names alone.
//
// Recovery semantics mirror the pyramid store's taxonomy:
//
//   - A damaged frame in the FINAL segment is a torn tail — the crash
//     interrupted the last append. Open truncates the segment at the
//     last complete record and returns cleanly; whatever was acked
//     before the torn append is intact by the fsync contract.
//   - A damaged frame in any EARLIER segment, or a gap in the segment
//     chain, is real corruption: the fsynced history is damaged, and
//     silently dropping acked records would break the no-acked-loss
//     invariant. Open fails with an error wrapping ErrCorruptRecord.
//
// The fsync policy is a knob (SyncPolicy): SyncAlways fsyncs every
// append before acking (the durability default), SyncBatch fsyncs only
// on explicit Sync calls and at segment rotation (amortized group
// commit), SyncNever leaves flushing to the OS (benchmarks, tests).
package wal

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"asrs/internal/faultinject"
)

// SyncPolicy selects when appends are flushed to stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append, before the append returns:
	// an acked record survives any crash. The default.
	SyncAlways SyncPolicy = iota
	// SyncBatch fsyncs only on explicit Sync calls and at segment
	// rotation. Callers group-commit: append a batch, Sync once, then
	// ack the whole batch.
	SyncBatch
	// SyncNever never fsyncs; durability is whatever the OS provides.
	SyncNever
)

// String implements fmt.Stringer.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncBatch:
		return "batch"
	case SyncNever:
		return "never"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// ParseSyncPolicy parses "always", "batch" or "never".
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "batch":
		return SyncBatch, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown sync policy %q (want always|batch|never)", s)
}

// ErrCorruptRecord marks damage in the fsynced history: a bad frame
// before the final segment's tail, or a gap in the segment chain.
// Distinct from a torn tail, which Open repairs silently.
var ErrCorruptRecord = errors.New("wal: corrupt record")

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: closed")

const (
	// frameHeader is the per-record overhead: u32 length + u32 CRC-32C.
	frameHeader = 8
	// MaxRecordBytes bounds one record's payload. Replay rejects larger
	// length fields before allocating, so a corrupted length cannot
	// balloon memory.
	MaxRecordBytes = 64 << 20
	// DefaultSegmentBytes is the rotation threshold when Options leaves
	// SegmentBytes zero.
	DefaultSegmentBytes = 4 << 20

	segPrefix = "wal-"
	segSuffix = ".seg"
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Options configures a log.
type Options struct {
	// SegmentBytes rotates to a fresh segment once the active one
	// reaches this size (<=0 selects DefaultSegmentBytes). Rotation
	// bounds both replay-restart granularity and how much TruncateBefore
	// can reclaim.
	SegmentBytes int64
	// Sync is the fsync policy (default SyncAlways).
	Sync SyncPolicy
}

// Log is an open write-ahead log. Append/Sync/TruncateBefore/Close are
// safe for concurrent use.
type Log struct {
	dir string
	opt Options

	mu       sync.Mutex
	f        *os.File // active segment
	size     int64    // bytes in the active segment
	firstLSN uint64   // first LSN of the active segment
	nextLSN  uint64   // LSN the next append receives
	closed   bool
	sticky   error // unrecoverable append failure; poisons the log
}

// segName formats a segment file name from its first LSN.
func segName(firstLSN uint64) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, firstLSN, segSuffix)
}

// parseSegName extracts the first LSN from a segment file name.
func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
	if len(hex) != 16 {
		return 0, false
	}
	lsn, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return lsn, true
}

// segInfo is one segment discovered during Open.
type segInfo struct {
	name     string
	firstLSN uint64
}

// listSegments returns the log's segments sorted by first LSN.
func listSegments(dir string) ([]segInfo, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segInfo
	for _, ent := range ents {
		if ent.IsDir() {
			continue
		}
		if lsn, ok := parseSegName(ent.Name()); ok {
			segs = append(segs, segInfo{name: ent.Name(), firstLSN: lsn})
		}
	}
	sort.Slice(segs, func(a, b int) bool { return segs[a].firstLSN < segs[b].firstLSN })
	return segs, nil
}

// Open opens (creating if necessary) the log in dir, replaying every
// complete record through fn in LSN order before making the log
// appendable. A torn tail in the final segment is truncated away; any
// earlier damage fails with ErrCorruptRecord. A non-nil error from fn
// aborts the replay and is returned verbatim.
//
// The directory must be dedicated to one log: Open considers every
// wal-*.seg file part of the sequence.
func Open(dir string, opt Options, fn func(lsn uint64, payload []byte) error) (*Log, error) {
	if opt.SegmentBytes <= 0 {
		opt.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: creating directory: %w", err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: listing segments: %w", err)
	}

	l := &Log{dir: dir, opt: opt, nextLSN: 1, firstLSN: 1}
	if len(segs) == 0 {
		if err := l.openActive(segName(1), true); err != nil {
			return nil, err
		}
		return l, nil
	}

	next := segs[0].firstLSN
	for i, seg := range segs {
		if seg.firstLSN != next {
			return nil, fmt.Errorf("wal: segment chain gap: %s starts at LSN %d, want %d: %w",
				seg.name, seg.firstLSN, next, ErrCorruptRecord)
		}
		final := i == len(segs)-1
		count, keep, err := replaySegment(filepath.Join(dir, seg.name), seg.firstLSN, final, fn)
		if err != nil {
			return nil, err
		}
		next = seg.firstLSN + uint64(count)
		if final {
			l.firstLSN = seg.firstLSN
			l.nextLSN = next
			l.size = keep
			if err := l.openActive(seg.name, false); err != nil {
				return nil, err
			}
		}
	}
	return l, nil
}

// replaySegment streams one segment's records through fn, returning the
// record count and the byte offset of the last complete record's end.
// In the final segment a damaged tail is truncated to that offset; in
// earlier segments it is ErrCorruptRecord.
func replaySegment(path string, firstLSN uint64, final bool, fn func(lsn uint64, payload []byte) error) (count int, keep int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, fmt.Errorf("wal: opening segment: %w", err)
	}
	defer f.Close()

	r := &faultReader{r: f}
	var (
		off    int64
		header [frameHeader]byte
		buf    []byte
	)
	torn := func(cause string) (int, int64, error) {
		if !final {
			return 0, 0, fmt.Errorf("wal: %s at offset %d of non-final segment %s: %w",
				cause, off, filepath.Base(path), ErrCorruptRecord)
		}
		// Torn tail: drop the partial append so the segment ends at a
		// frame boundary and future appends extend a clean file.
		f.Close()
		if err := os.Truncate(path, off); err != nil {
			return 0, 0, fmt.Errorf("wal: truncating torn tail of %s: %w", filepath.Base(path), err)
		}
		return count, off, nil
	}
	for {
		n, rerr := io.ReadFull(r, header[:])
		if rerr == io.EOF {
			return count, off, nil // clean end at a frame boundary
		}
		if rerr == io.ErrUnexpectedEOF {
			return torn("partial frame header")
		}
		if rerr != nil {
			return 0, 0, fmt.Errorf("wal: reading segment %s: %w", filepath.Base(path), rerr)
		}
		_ = n
		length := uint32(header[0]) | uint32(header[1])<<8 | uint32(header[2])<<16 | uint32(header[3])<<24
		sum := uint32(header[4]) | uint32(header[5])<<8 | uint32(header[6])<<16 | uint32(header[7])<<24
		if length > MaxRecordBytes {
			return torn(fmt.Sprintf("implausible record length %d", length))
		}
		if uint32(cap(buf)) < length {
			buf = make([]byte, length)
		}
		buf = buf[:length]
		if _, rerr := io.ReadFull(r, buf); rerr != nil {
			if rerr == io.EOF || rerr == io.ErrUnexpectedEOF {
				return torn("partial record payload")
			}
			return 0, 0, fmt.Errorf("wal: reading segment %s: %w", filepath.Base(path), rerr)
		}
		if crc32.Checksum(buf, crcTable) != sum {
			return torn("record checksum mismatch")
		}
		if fn != nil {
			if err := fn(firstLSN+uint64(count), buf); err != nil {
				return 0, 0, err
			}
		}
		count++
		off += frameHeader + int64(length)
	}
}

// faultReader interposes the wal.replay.read failpoint on segment reads.
type faultReader struct {
	r io.Reader
}

func (fr *faultReader) Read(p []byte) (int, error) {
	if f, ok := faultinject.Check("wal.replay.read"); ok {
		if f.Action == faultinject.ActSleep {
			f.Sleep()
		} else {
			return 0, f.Err()
		}
	}
	return fr.r.Read(p)
}

// openActive opens (or creates) the active segment for appending at
// l.size. create additionally fsyncs the directory so the new name
// survives a crash.
func (l *Log) openActive(name string, create bool) error {
	flags := os.O_WRONLY
	if create {
		flags |= os.O_CREATE | os.O_EXCL
	}
	f, err := os.OpenFile(filepath.Join(l.dir, name), flags, 0o644)
	if err != nil {
		return fmt.Errorf("wal: opening active segment: %w", err)
	}
	if _, err := f.Seek(l.size, io.SeekStart); err != nil {
		f.Close()
		return fmt.Errorf("wal: seeking active segment: %w", err)
	}
	l.f = f
	if create {
		if err := syncDir(l.dir); err != nil {
			f.Close()
			return err
		}
	}
	return nil
}

// syncDir fsyncs a directory so a rename/create/remove inside it is
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// NextLSN returns the LSN the next append will receive.
func (l *Log) NextLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN
}

// Append writes one record and returns its LSN. Under SyncAlways the
// record is on stable storage when Append returns; under SyncBatch or
// SyncNever it is buffered in the OS until Sync or rotation.
//
// A failed write is rolled back by truncating the active segment to the
// pre-append offset, so the on-disk frame sequence stays clean; if even
// the rollback fails, the log is poisoned and every later call returns
// the sticky error (the caller must recover by reopening).
func (l *Log) Append(payload []byte) (uint64, error) {
	if len(payload) > MaxRecordBytes {
		return 0, fmt.Errorf("wal: record of %d bytes exceeds MaxRecordBytes", len(payload))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.usable(); err != nil {
		return 0, err
	}
	if l.size >= l.opt.SegmentBytes && l.size > 0 {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
	}

	var header [frameHeader]byte
	length := uint32(len(payload))
	sum := crc32.Checksum(payload, crcTable)
	header[0], header[1], header[2], header[3] = byte(length), byte(length>>8), byte(length>>16), byte(length>>24)
	header[4], header[5], header[6], header[7] = byte(sum), byte(sum>>8), byte(sum>>16), byte(sum>>24)

	w := &faultWriter{f: l.f}
	if _, err := w.Write(header[:]); err != nil {
		return 0, l.rollbackLocked(err)
	}
	if _, err := w.Write(payload); err != nil {
		return 0, l.rollbackLocked(err)
	}
	if l.opt.Sync == SyncAlways {
		if err := l.syncLocked(); err != nil {
			// The frame is complete on the file but not acked durable. It
			// must not stay: a later append would follow it and replay
			// would assign it this LSN, resurrecting an unacked record and
			// shifting every later LSN. Roll it back like a failed write.
			return 0, l.rollbackLocked(err)
		}
	}
	lsn := l.nextLSN
	l.nextLSN++
	l.size += frameHeader + int64(len(payload))
	return lsn, nil
}

// rollbackLocked undoes a partial append by truncating to the
// pre-append size. If the truncate fails the log is poisoned.
func (l *Log) rollbackLocked(cause error) error {
	if terr := l.f.Truncate(l.size); terr != nil {
		l.sticky = fmt.Errorf("wal: append failed (%v) and rollback failed: %w", cause, terr)
		return l.sticky
	}
	if _, serr := l.f.Seek(l.size, io.SeekStart); serr != nil {
		l.sticky = fmt.Errorf("wal: append failed (%v) and reseek failed: %w", cause, serr)
		return l.sticky
	}
	return fmt.Errorf("wal: append: %w", cause)
}

// usable guards the mutating entry points.
func (l *Log) usable() error {
	if l.closed {
		return ErrClosed
	}
	return l.sticky
}

// syncLocked fsyncs the active segment, honoring the wal.append.sync
// failpoint.
func (l *Log) syncLocked() error {
	if f, ok := faultinject.Check("wal.append.sync"); ok {
		if f.Action == faultinject.ActSleep {
			f.Sleep()
		} else {
			return fmt.Errorf("wal: sync: %w", f.Err())
		}
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	return nil
}

// Sync flushes the active segment to stable storage. The group-commit
// point under SyncBatch; a no-op risk-wise under SyncAlways.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.usable(); err != nil {
		return err
	}
	return l.syncLocked()
}

// rotateLocked seals the active segment (fsync unless SyncNever — a
// sealed segment is immutable history and must not lose acked group
// commits) and opens a fresh one named by the next LSN.
func (l *Log) rotateLocked() error {
	if l.opt.Sync != SyncNever {
		if err := l.syncLocked(); err != nil {
			return err
		}
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: sealing segment: %w", err)
	}
	l.f = nil
	l.firstLSN = l.nextLSN
	l.size = 0
	return l.openActive(segName(l.firstLSN), true)
}

// TruncateBefore deletes sealed segments every record of which has
// LSN < lsn — the compaction low-water-mark advance. The active segment
// is never deleted, so the call reclaims space without ever touching
// the append path. Idempotent; crash-safe (a partially applied
// truncation just leaves more segments for the next one).
func (l *Log) TruncateBefore(lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	segs, err := listSegments(l.dir)
	if err != nil {
		return fmt.Errorf("wal: listing segments: %w", err)
	}
	removed := false
	for i, seg := range segs {
		if seg.firstLSN == l.firstLSN {
			break // never the active segment
		}
		// A sealed segment's records end where the next segment begins.
		if i+1 >= len(segs) || segs[i+1].firstLSN > lsn {
			break
		}
		if err := os.Remove(filepath.Join(l.dir, seg.name)); err != nil {
			return fmt.Errorf("wal: removing %s: %w", seg.name, err)
		}
		removed = true
	}
	if removed {
		return syncDir(l.dir)
	}
	return nil
}

// Close flushes (unless SyncNever) and closes the log. Further calls
// return ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	l.closed = true
	if l.f == nil {
		return nil
	}
	var err error
	if l.sticky == nil && l.opt.Sync != SyncNever {
		err = l.syncLocked()
	}
	if cerr := l.f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	l.f = nil
	return err
}

// faultWriter interposes the wal.append.write failpoint: ActError fails
// outright, ActShortWrite lets a prefix through and then fails — the
// torn-append simulation.
type faultWriter struct {
	f *os.File
}

func (fw *faultWriter) Write(p []byte) (int, error) {
	if f, ok := faultinject.Check("wal.append.write"); ok {
		switch f.Action {
		case faultinject.ActShortWrite:
			n := f.Bytes
			if n > len(p) {
				n = len(p)
			}
			m, _ := fw.f.Write(p[:n])
			return m, f.Err()
		case faultinject.ActSleep:
			f.Sleep()
		default:
			return 0, f.Err()
		}
	}
	return fw.f.Write(p)
}
