package wal

import (
	"bytes"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALReplay throws arbitrary bytes at the replay path as the
// contents of a single (final) segment. The contract under fuzz is the
// torn-tail policy's: for a one-segment log, Open NEVER fails — any
// damage is by definition in the final segment and is repaired by
// truncation — it never panics, and the repair is a fixed point: a
// second Open replays exactly the records the first one kept, and the
// log stays appendable.
//
// Run locally with:
//
//	go test -run '^$' -fuzz FuzzWALReplay -fuzztime 30s ./internal/wal
func FuzzWALReplay(f *testing.F) {
	frame := func(payload []byte) []byte {
		var b bytes.Buffer
		length := uint32(len(payload))
		sum := crc32.Checksum(payload, crcTable)
		b.Write([]byte{byte(length), byte(length >> 8), byte(length >> 16), byte(length >> 24)})
		b.Write([]byte{byte(sum), byte(sum >> 8), byte(sum >> 16), byte(sum >> 24)})
		b.Write(payload)
		return b.Bytes()
	}
	var valid bytes.Buffer
	valid.Write(frame([]byte("alpha")))
	valid.Write(frame([]byte{}))
	valid.Write(frame(bytes.Repeat([]byte{0xab}, 300)))

	f.Add([]byte{})
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:5])              // torn header
	f.Add(valid.Bytes()[:11])             // torn payload
	f.Add(append(valid.Bytes(), 0x01))    // trailing garbage byte
	f.Add(bytes.Repeat([]byte{0xff}, 64)) // absurd length field
	f.Add(frame(nil))                     // single empty record
	flip := append([]byte(nil), valid.Bytes()...)
	flip[9] ^= 0x20 // payload bit flip → checksum mismatch
	f.Add(flip)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		var first [][]byte
		l, err := Open(dir, Options{Sync: SyncNever}, func(lsn uint64, p []byte) error {
			first = append(first, append([]byte(nil), p...))
			return nil
		})
		if err != nil {
			t.Fatalf("single-segment Open failed: %v", err)
		}
		if _, err := l.Append([]byte("appended-after-repair")); err != nil {
			t.Fatalf("append after repair: %v", err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}

		var second [][]byte
		l2, err := Open(dir, Options{Sync: SyncNever}, func(lsn uint64, p []byte) error {
			second = append(second, append([]byte(nil), p...))
			return nil
		})
		if err != nil {
			t.Fatalf("reopen failed: %v", err)
		}
		defer l2.Close()
		if len(second) != len(first)+1 {
			t.Fatalf("reopen replayed %d records, want %d + the appended one", len(second), len(first))
		}
		for i := range first {
			if !bytes.Equal(second[i], first[i]) {
				t.Fatalf("record %d changed across reopen", i)
			}
		}
		if string(second[len(second)-1]) != "appended-after-repair" {
			t.Fatalf("appended record lost: %q", second[len(second)-1])
		}
	})
}
