package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"asrs/internal/faultinject"
)

// collect replays a log directory into memory.
func collect(t *testing.T, dir string, opt Options) (*Log, []uint64, [][]byte) {
	t.Helper()
	var lsns []uint64
	var payloads [][]byte
	l, err := Open(dir, opt, func(lsn uint64, p []byte) error {
		lsns = append(lsns, lsn)
		payloads = append(payloads, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, lsns, payloads
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, lsns, _ := collect(t, dir, Options{Sync: SyncNever})
	if len(lsns) != 0 {
		t.Fatalf("fresh log replayed %d records", len(lsns))
	}
	var want [][]byte
	for i := 0; i < 50; i++ {
		p := []byte(fmt.Sprintf("record-%d-%s", i, bytes.Repeat([]byte{byte(i)}, i)))
		lsn, err := l.Append(p)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("append %d got LSN %d", i, lsn)
		}
		want = append(want, p)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, lsns, payloads := collect(t, dir, Options{Sync: SyncNever})
	defer l2.Close()
	if len(payloads) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(payloads), len(want))
	}
	for i := range want {
		if lsns[i] != uint64(i+1) || !bytes.Equal(payloads[i], want[i]) {
			t.Fatalf("record %d: lsn %d payload %q, want lsn %d payload %q",
				i, lsns[i], payloads[i], i+1, want[i])
		}
	}
	// The reopened log appends where the old one left off.
	if lsn, err := l2.Append([]byte("after")); err != nil || lsn != uint64(len(want)+1) {
		t.Fatalf("append after reopen: lsn %d err %v", lsn, err)
	}
}

func TestRotationAndTruncateBefore(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := collect(t, dir, Options{Sync: SyncNever, SegmentBytes: 64})
	n := 40
	for i := 0; i < n; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("rotating-record-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", len(segs))
	}

	// Drop everything below LSN 20: sealed segments wholly before it go,
	// the one containing 20 and the active one stay.
	if err := l.TruncateBefore(20); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, lsns, _ := collect(t, dir, Options{Sync: SyncNever, SegmentBytes: 64})
	defer l2.Close()
	if len(lsns) == 0 {
		t.Fatal("no records after truncation")
	}
	if lsns[0] >= 20 {
		t.Fatalf("truncation dropped too much: oldest LSN %d", lsns[0])
	}
	if lsns[len(lsns)-1] != uint64(n) {
		t.Fatalf("newest LSN %d, want %d", lsns[len(lsns)-1], n)
	}
	// Idempotent; truncating past the end never deletes the active segment.
	if err := l2.TruncateBefore(10_000); err != nil {
		t.Fatal(err)
	}
	if segs, _ := listSegments(dir); len(segs) == 0 {
		t.Fatal("active segment deleted")
	}
}

func TestTornTailTruncated(t *testing.T) {
	for _, tear := range []struct {
		name  string
		bytes []byte
	}{
		{"partial_header", []byte{0x03, 0x00}},
		{"partial_payload", []byte{0x10, 0x00, 0x00, 0x00, 0xde, 0xad, 0xbe, 0xef, 'x', 'y'}},
		{"checksum_mismatch", []byte{0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 'o', 'k'}},
		{"absurd_length", []byte{0xff, 0xff, 0xff, 0xff, 0x00, 0x00, 0x00, 0x00}},
	} {
		t.Run(tear.name, func(t *testing.T) {
			dir := t.TempDir()
			l, _, _ := collect(t, dir, Options{Sync: SyncNever})
			for i := 0; i < 5; i++ {
				if _, err := l.Append([]byte(fmt.Sprintf("good-%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			// Simulate the crash mid-append.
			f, err := os.OpenFile(filepath.Join(dir, segName(1)), os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write(tear.bytes); err != nil {
				t.Fatal(err)
			}
			f.Close()

			l2, lsns, _ := collect(t, dir, Options{Sync: SyncNever})
			if len(lsns) != 5 {
				t.Fatalf("replayed %d records after torn tail, want 5", len(lsns))
			}
			// The tail is gone for good: appends extend a clean file and a
			// third open sees exactly 6 records.
			if lsn, err := l2.Append([]byte("post-repair")); err != nil || lsn != 6 {
				t.Fatalf("append after repair: lsn %d err %v", lsn, err)
			}
			if err := l2.Close(); err != nil {
				t.Fatal(err)
			}
			l3, lsns, payloads := collect(t, dir, Options{Sync: SyncNever})
			defer l3.Close()
			if len(lsns) != 6 || string(payloads[5]) != "post-repair" {
				t.Fatalf("after repair+append: %d records", len(lsns))
			}
		})
	}
}

func TestCorruptSealedSegmentTyped(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := collect(t, dir, Options{Sync: SyncNever, SegmentBytes: 64})
	for i := 0; i < 40; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("rotating-record-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil || len(segs) < 3 {
		t.Fatalf("segments: %v %v", segs, err)
	}

	t.Run("bit_flip", func(t *testing.T) {
		path := filepath.Join(dir, segs[0].name)
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		flipped := append([]byte(nil), b...)
		flipped[len(flipped)/2] ^= 0x40
		if err := os.WriteFile(path, flipped, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err = Open(dir, Options{Sync: SyncNever}, nil)
		if !errors.Is(err, ErrCorruptRecord) {
			t.Fatalf("corrupt sealed segment: got %v, want ErrCorruptRecord", err)
		}
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("chain_gap", func(t *testing.T) {
		path := filepath.Join(dir, segs[1].name)
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Remove(path); err != nil {
			t.Fatal(err)
		}
		_, err = Open(dir, Options{Sync: SyncNever}, nil)
		if !errors.Is(err, ErrCorruptRecord) {
			t.Fatalf("segment gap: got %v, want ErrCorruptRecord", err)
		}
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
	})
	// Restored, the log opens cleanly again.
	l2, lsns, _ := collect(t, dir, Options{Sync: SyncNever, SegmentBytes: 64})
	defer l2.Close()
	if len(lsns) != 40 {
		t.Fatalf("restored log replayed %d records, want 40", len(lsns))
	}
}

func TestAppendFaultRollsBack(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := collect(t, dir, Options{Sync: SyncAlways})
	if _, err := l.Append([]byte("before")); err != nil {
		t.Fatal(err)
	}

	// Every write fails with a short prefix: the append must fail typed
	// and leave no trace on disk.
	faultinject.Activate(faultinject.NewPlan(1,
		faultinject.Spec{Point: "wal.append.write", Action: faultinject.ActShortWrite, Bytes: 3, MaxEvery: 1}))
	_, err := l.Append([]byte("torn-away"))
	faultinject.Deactivate()
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("faulted append: got %v, want ErrInjected", err)
	}

	// Sync fault: frame rolled back the same way.
	faultinject.Activate(faultinject.NewPlan(2,
		faultinject.Spec{Point: "wal.append.sync", Action: faultinject.ActError, MaxEvery: 1}))
	_, err = l.Append([]byte("never-durable"))
	faultinject.Deactivate()
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("sync-faulted append: got %v, want ErrInjected", err)
	}

	// The log stays usable and the LSN sequence has no holes.
	lsn, err := l.Append([]byte("after"))
	if err != nil || lsn != 2 {
		t.Fatalf("append after faults: lsn %d err %v", lsn, err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, lsns, payloads := collect(t, dir, Options{})
	defer l2.Close()
	if len(lsns) != 2 || string(payloads[0]) != "before" || string(payloads[1]) != "after" {
		t.Fatalf("replay after faults: %d records %q", len(lsns), payloads)
	}
}

func TestReplayReadFaultTyped(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := collect(t, dir, Options{Sync: SyncNever})
	for i := 0; i < 3; i++ {
		if _, err := l.Append([]byte("r")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	faultinject.Activate(faultinject.NewPlan(3,
		faultinject.Spec{Point: "wal.replay.read", Action: faultinject.ActError, MaxEvery: 1}))
	_, err := Open(dir, Options{}, nil)
	faultinject.Deactivate()
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("replay fault: got %v, want ErrInjected", err)
	}
}

func TestClosedAndOversize(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := collect(t, dir, Options{Sync: SyncNever})
	if _, err := l.Append(make([]byte, MaxRecordBytes+1)); err == nil {
		t.Fatal("oversize append accepted")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("append on closed: %v", err)
	}
	if err := l.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("sync on closed: %v", err)
	}
	if err := l.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double close: %v", err)
	}
}

func TestSyncPolicyParse(t *testing.T) {
	for _, s := range []string{"always", "batch", "never"} {
		p, err := ParseSyncPolicy(s)
		if err != nil || p.String() != s {
			t.Fatalf("round trip %q: %v %v", s, p, err)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
}
