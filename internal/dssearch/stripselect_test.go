package dssearch_test

import (
	"math"
	"math/rand"
	"testing"

	"asrs/internal/agg"
	"asrs/internal/asp"
	"asrs/internal/attr"
	"asrs/internal/dataset"
	"asrs/internal/dssearch"
)

// intQuery builds an integer-exact composite (distribution counts only)
// so the searcher certifies every channel and enables the incremental
// mini-sweep, where the strip-evaluator selection lives.
func intQuery(t testing.TB, ds *attr.Dataset, rng *rand.Rand) asp.Query {
	t.Helper()
	f, err := agg.New(ds.Schema, agg.Spec{Kind: agg.Distribution, Attr: "cat"})
	if err != nil {
		t.Fatal(err)
	}
	target := make([]float64, f.Dims())
	for i := range target {
		target[i] = float64(rng.Intn(40))
	}
	return asp.Query{F: f, Target: target}
}

// TestDisableFlatStripBitIdentical: the strip-evaluator ablation switch
// must change which evaluator runs — the disabled searcher resolves
// strips only through Fenwick walks — while every answer (distance,
// point, representation) stays bit-identical. This is the
// workload-level half of the bit-identity acceptance criterion; the
// solver-level property tests live in internal/sweep.
func TestDisableFlatStripBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(130))
	sawFlat, sawFenwick := false, false
	for trial := 0; trial < 8; trial++ {
		ds := dataset.Random(200+rng.Intn(400), 60, rng.Int63())
		rects, _ := asp.Reduce(ds, 7+rng.Float64()*4, 7+rng.Float64()*4, asp.AnchorTR)
		q := intQuery(t, ds, rng)
		for _, workers := range []int{1, 2} {
			on, err := dssearch.NewSearcher(rects, q, dssearch.Options{NCol: 8, NRow: 8, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			off, err := dssearch.NewSearcher(rects, q, dssearch.Options{NCol: 8, NRow: 8, Workers: workers, DisableFlatStrip: true})
			if err != nil {
				t.Fatal(err)
			}
			a := on.Solve()
			b := off.Solve()
			if math.Float64bits(a.Dist) != math.Float64bits(b.Dist) || a.Point != b.Point {
				t.Fatalf("trial %d w%d: flat %g@%v vs fenwick-only %g@%v",
					trial, workers, a.Dist, a.Point, b.Dist, b.Point)
			}
			for d := range a.Rep {
				if math.Float64bits(a.Rep[d]) != math.Float64bits(b.Rep[d]) {
					t.Fatalf("trial %d w%d: rep[%d] %v vs %v", trial, workers, d, a.Rep[d], b.Rep[d])
				}
			}
			if off.Stats.FlatStrips != 0 {
				t.Fatalf("trial %d w%d: flat strips ran while disabled: %+v", trial, workers, off.Stats)
			}
			sawFlat = sawFlat || on.Stats.FlatStrips > 0
			sawFenwick = sawFenwick || off.Stats.FenwickStrips > 0
		}
	}
	// The fixture must actually exercise the selection, or the test
	// proves nothing.
	if !sawFlat || !sawFenwick {
		t.Fatalf("fixture never exercised both evaluators: flat=%v fenwick=%v", sawFlat, sawFenwick)
	}
}
