package dssearch_test

import (
	"math"
	"math/rand"
	"testing"

	"asrs/internal/agg"
	"asrs/internal/asp"
	"asrs/internal/dataset"
	"asrs/internal/dssearch"
	"asrs/internal/geom"
)

// TestSearchExcludingAvoidsRegion: query by example must not return the
// example itself, and the answer must be optimal among non-overlapping
// candidates.
func TestSearchExcludingAvoidsRegion(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	for trial := 0; trial < 20; trial++ {
		ds := dataset.Random(40, 50, rng.Int63())
		f := agg.MustNew(ds.Schema,
			agg.Spec{Kind: agg.Distribution, Attr: "cat"},
			agg.Spec{Kind: agg.Sum, Attr: "val"},
		)
		a, b := 8.0, 8.0
		// The example region is wherever the first object sits.
		center := ds.Objects[0].Loc
		rq := geom.Rect{MinX: center.X - a/2, MinY: center.Y - b/2, MaxX: center.X + a/2, MaxY: center.Y + b/2}
		q := asp.Query{F: f, Target: f.Representation(ds, agg.OpenRect{MinX: rq.MinX, MinY: rq.MinY, MaxX: rq.MaxX, MaxY: rq.MaxY})}

		region, res, _, err := dssearch.SolveASRSExcluding(ds, a, b, q, rq, dssearch.Options{NCol: 10, NRow: 10})
		if err != nil {
			t.Fatal(err)
		}
		if region.IntersectsOpen(rq) {
			t.Fatalf("trial %d: answer %v overlaps excluded %v", trial, region, rq)
		}
		// No random non-overlapping probe may beat the answer.
		rects, _ := asp.Reduce(ds, a, b, asp.AnchorTR)
		for probe := 0; probe < 300; probe++ {
			p := geom.Point{X: rng.Float64()*70 - 10, Y: rng.Float64()*70 - 10}
			cand := asp.AnchorTR.RegionFor(p, a, b)
			if cand.IntersectsOpen(rq) {
				continue
			}
			rep := asp.PointRepresentation(rects, f, p)
			if d := q.Distance(rep); d < res.Dist-1e-9 {
				t.Fatalf("trial %d: probe %v beats answer: %g < %g", trial, p, d, res.Dist)
			}
		}
	}
}

// TestSearchExcludingDisjoint: excluding a region far from everything must
// reproduce the unconstrained optimum.
func TestSearchExcludingDisjoint(t *testing.T) {
	ds := dataset.Random(30, 40, 31)
	f := agg.MustNew(ds.Schema, agg.Spec{Kind: agg.Distribution, Attr: "cat"})
	q := asp.Query{F: f, Target: []float64{2, 2, 2}}
	a, b := 6.0, 6.0
	_, want, _, err := dssearch.SolveASRS(ds, a, b, q, dssearch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	far := geom.Rect{MinX: -500, MinY: -500, MaxX: -490, MaxY: -490}
	_, got, _, err := dssearch.SolveASRSExcluding(ds, a, b, q, far, dssearch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Dist-want.Dist) > 1e-9 {
		t.Fatalf("disjoint exclusion changed answer: %g vs %g", got.Dist, want.Dist)
	}
}

func TestSearchExcludingRejectsNonTRAnchor(t *testing.T) {
	ds := dataset.Random(5, 10, 32)
	f := agg.MustNew(ds.Schema, agg.Spec{Kind: agg.Distribution, Attr: "cat"})
	q := asp.Query{F: f, Target: []float64{0, 0, 0}}
	_, _, _, err := dssearch.SolveASRSExcluding(ds, 2, 2, q, geom.Rect{}, dssearch.Options{Anchor: asp.AnchorBL})
	if err == nil {
		t.Fatal("non-TR anchor accepted")
	}
}
