package dssearch

import (
	"math"
	"math/rand"
	"testing"

	"asrs/internal/agg"
	"asrs/internal/asp"
	"asrs/internal/attr"
	"asrs/internal/geom"
)

// pyramidDataset builds a dataset over a two-attribute schema whose
// numeric values are drawn from the given generator, plus the composite
// under test (fD + fC + fS or fS + fA depending on withMM).
func pyramidDataset(t *testing.T, rng *rand.Rand, n int, num func() float64, withMM bool) (*attr.Dataset, *agg.Composite) {
	t.Helper()
	schema, err := attr.NewSchema(
		attr.Attribute{Name: "cat", Kind: attr.Categorical, Domain: []string{"a", "b", "c"}},
		attr.Attribute{Name: "val", Kind: attr.Numeric},
	)
	if err != nil {
		t.Fatal(err)
	}
	var specs []agg.Spec
	if withMM {
		specs = []agg.Spec{
			{Kind: agg.Sum, Attr: "val"},
			{Kind: agg.Average, Attr: "val"},
		}
	} else {
		specs = []agg.Spec{
			{Kind: agg.Distribution, Attr: "cat"},
			{Kind: agg.Count},
			{Kind: agg.Sum, Attr: "val"},
		}
	}
	f, err := agg.New(schema, specs...)
	if err != nil {
		t.Fatal(err)
	}
	objs := make([]attr.Object, n)
	for i := range objs {
		x := rng.Float64() * 100
		y := rng.Float64() * 100
		if rng.Intn(3) == 0 {
			// Lattice snap: duplicate locations and edge collisions.
			x = float64(rng.Intn(20)) * 5
			y = float64(rng.Intn(20)) * 5
		}
		objs[i] = attr.Object{
			Loc:    geom.Point{X: x, Y: y},
			Values: []attr.Value{{Cat: rng.Intn(3)}, {Num: num()}},
		}
	}
	return &attr.Dataset{Schema: schema, Objects: objs}, f
}

// solvePyr runs SolveASRS with or without the pyramid (and optionally a
// Prepared shape) and returns the answer.
func solvePyr(t *testing.T, ds *attr.Dataset, f *agg.Composite, a, b float64, target []float64,
	p *Pyramid, prep *Prepared, workers int) (geom.Rect, asp.Result) {
	t.Helper()
	q := asp.Query{F: f, Target: target}
	opt := Options{Workers: workers, Pyramid: p, Prepared: prep}
	region, res, _, err := SolveASRS(ds, a, b, q, opt)
	if err != nil {
		t.Fatal(err)
	}
	return region, res
}

// TestPyramidAnswersBitIdentical is the tentpole property test: for
// integer-exact, dyadic-real, decimal-grid (two-float) and min/max
// composites, over query extents including sub-ulp slivers (a below one
// ulp of the coordinates, producing zero-extent rectangles) and
// extents that dwarf the space, pyramid-bound answers — region, point,
// distance and representation — are bit-identical to the classic
// per-query build at every worker count, with and without the
// group-shared Prepared shape.
func TestPyramidAnswersBitIdentical(t *testing.T) {
	old := satMinIds
	satMinIds = 64 // force the SAT paths onto test-sized spaces
	defer func() { satMinIds = old }()

	rng := rand.New(rand.NewSource(4242))
	kinds := []struct {
		name   string
		num    func() float64
		withMM bool
	}{
		{"integer", func() float64 { return float64(rng.Intn(11) - 5) }, false},
		{"dyadic", func() float64 { return float64(rng.Intn(41)) * 0.25 }, false},
		{"decimal", func() float64 { return 0.1 * float64(1+rng.Intn(99)) }, false},
		{"minmax", func() float64 { return float64(rng.Intn(2001)) * 0.5 }, true},
	}
	for _, kind := range kinds {
		ds, f := pyramidDataset(t, rng, 150+rng.Intn(250), kind.num, kind.withMM)
		p, err := BuildPyramid(ds, f)
		if err != nil {
			t.Fatalf("%s: BuildPyramid: %v", kind.name, err)
		}
		target := make([]float64, f.Dims())
		for i := range target {
			target[i] = float64(2 + i)
		}
		extents := [][2]float64{
			{9, 8},
			{5, 5},
			{0.37, 0.91},
			{1e-13, 1e-13}, // sub-ulp: zero-extent rectangles
			{400, 400},     // dwarfs the space
		}
		for _, ab := range extents {
			a, b := ab[0], ab[1]
			wantRegion, want := solvePyr(t, ds, f, a, b, target, nil, nil, 1)
			prep, prepOK := p.Prepare(a, b)
			for _, workers := range []int{1, 3} {
				gotRegion, got := solvePyr(t, ds, f, a, b, target, p, nil, workers)
				if gotRegion != wantRegion || got.Dist != want.Dist || got.Point != want.Point {
					t.Fatalf("%s a=%g b=%g workers=%d: pyramid answer %v@%v (region %v), want %v@%v (region %v)",
						kind.name, a, b, workers, got.Dist, got.Point, gotRegion, want.Dist, want.Point, wantRegion)
				}
				for i := range want.Rep {
					if math.Float64bits(got.Rep[i]) != math.Float64bits(want.Rep[i]) {
						t.Fatalf("%s a=%g b=%g workers=%d: rep[%d] %v != %v",
							kind.name, a, b, workers, i, got.Rep[i], want.Rep[i])
					}
				}
				if prepOK {
					gotRegion, got = solvePyr(t, ds, f, a, b, target, p, prep, workers)
					if gotRegion != wantRegion || got.Dist != want.Dist || got.Point != want.Point {
						t.Fatalf("%s a=%g b=%g workers=%d: prepared answer %v@%v, want %v@%v",
							kind.name, a, b, workers, got.Dist, got.Point, want.Dist, want.Point)
					}
				}
			}
		}
	}
}

// TestPyramidAccuracyBitIdentical: the pyramid's sort-free accuracy
// merge walks produce bit-identical GPS accuracies to the classic
// sorted-multiset computation.
func TestPyramidAccuracyBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	ds, f := pyramidDataset(t, rng, 300, func() float64 { return float64(rng.Intn(7)) }, false)
	p, err := BuildPyramid(ds, f)
	if err != nil {
		t.Fatal(err)
	}
	for _, ab := range [][2]float64{{7, 3}, {0.1, 0.25}, {123.456, 9.5}} {
		a, b := ab[0], ab[1]
		rects, err := asp.Reduce(ds, a, b, asp.AnchorTR)
		if err != nil {
			t.Fatal(err)
		}
		classic, err := NewSearcher(rects, asp.Query{F: f, Target: make([]float64, f.Dims())}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		pyr, err := NewSearcher(rects, asp.Query{F: f, Target: make([]float64, f.Dims())}, Options{Pyramid: p})
		if err != nil {
			t.Fatal(err)
		}
		if pyr.tab.pyr != p {
			t.Fatal("pyramid did not bind")
		}
		if math.Float64bits(classic.acc.DX) != math.Float64bits(pyr.acc.DX) ||
			math.Float64bits(classic.acc.DY) != math.Float64bits(pyr.acc.DY) {
			t.Fatalf("a=%g b=%g: accuracy (%v,%v) != classic (%v,%v)",
				a, b, pyr.acc.DX, pyr.acc.DY, classic.acc.DX, classic.acc.DY)
		}
	}
}

// TestPyramidBindRejections: binds that cannot guarantee bit-identity
// must fall back, never mis-bind — foreign rect slices, re-sorted
// slices, wrong cardinalities.
func TestPyramidBindRejections(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ds, f := pyramidDataset(t, rng, 80, func() float64 { return float64(rng.Intn(5)) }, false)
	p, err := BuildPyramid(ds, f)
	if err != nil {
		t.Fatal(err)
	}
	rects, err := asp.Reduce(ds, 3, 4, asp.AnchorTR)
	if err != nil {
		t.Fatal(err)
	}

	var tab tables
	if _, ok := p.bind(&tab, rects); !ok {
		t.Fatal("dataset-order reduction should bind")
	}

	// A slice an earlier searcher re-sorted in place is not in dataset
	// order; the permutation would misalign the shared contributions.
	shuffled := append([]asp.RectObject(nil), rects...)
	shuffled[0], shuffled[len(shuffled)-1] = shuffled[len(shuffled)-1], shuffled[0]
	var tab2 tables
	if _, ok := p.bind(&tab2, shuffled); ok {
		t.Fatal("reordered rects must not bind")
	}

	// Wrong cardinality is guarded at the newSearcher call site.
	q := asp.Query{F: f, Target: make([]float64, f.Dims())}
	s, err := NewSearcher(rects[:len(rects)-1], q, Options{Pyramid: p})
	if err != nil {
		t.Fatal(err)
	}
	if s.tab.pyr != nil {
		t.Fatal("short rect slice must not bind the pyramid")
	}
}

// TestPreparedForeignPyramid: a Prepared shape must bind through its
// OWN pyramid even when Options.Pyramid points at a different instance
// for the same dataset/composite (an engine cache refreshed between
// grouping and dispatch, or a caller-built shape) — the query must
// answer correctly, never run on an empty master.
func TestPreparedForeignPyramid(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	ds, f := pyramidDataset(t, rng, 100, func() float64 { return float64(rng.Intn(7)) }, false)
	p1, err := BuildPyramid(ds, f)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := BuildPyramid(ds, f)
	if err != nil {
		t.Fatal(err)
	}
	prep, ok := p1.Prepare(5, 4)
	if !ok {
		t.Fatal("Prepare failed")
	}
	target := make([]float64, f.Dims())
	target[0] = 3
	q := asp.Query{F: f, Target: target}
	_, want, _, err := SolveASRS(ds, 5, 4, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, got, _, err := SolveASRS(ds, 5, 4, q, Options{Prepared: prep, Pyramid: p2})
	if err != nil {
		t.Fatal(err)
	}
	if got.Dist != want.Dist || got.Point != want.Point {
		t.Fatalf("foreign-pyramid prepared answered %v@%v, want %v@%v",
			got.Dist, got.Point, want.Dist, want.Point)
	}
}

// TestPyramidSlabReuse: queries recycled through one SlabCache with a
// pyramid bound must not leak pyramid-owned memory into later classic
// builds (the shared-slice reset contract), and repeated queries reuse
// the retained scratch without changing answers.
func TestPyramidSlabReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ds, f := pyramidDataset(t, rng, 120, func() float64 { return float64(rng.Intn(9)) }, false)
	p, err := BuildPyramid(ds, f)
	if err != nil {
		t.Fatal(err)
	}
	target := make([]float64, f.Dims())
	target[0] = 3
	slabs := &SlabCache{}
	q := asp.Query{F: f, Target: target}

	_, want, _, err := SolveASRS(ds, 6, 5, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 4; round++ {
		// Alternate pyramid-bound and classic queries through the same
		// slab cache.
		var opt Options
		opt.Slabs = slabs
		if round%2 == 0 {
			opt.Pyramid = p
		}
		_, got, _, err := SolveASRS(ds, 6, 5, q, opt)
		if err != nil {
			t.Fatal(err)
		}
		if got.Dist != want.Dist || got.Point != want.Point {
			t.Fatalf("round %d: %v@%v, want %v@%v", round, got.Dist, got.Point, want.Dist, want.Point)
		}
	}
}
