package dssearch_test

import (
	"math/rand"
	"testing"

	"asrs/internal/asp"
	"asrs/internal/dataset"
	"asrs/internal/dssearch"
)

// TestStatsAccounting: the work counters are internally consistent.
func TestStatsAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(120))
	ds := dataset.Random(300, 60, 121)
	rects, _ := asp.Reduce(ds, 8, 8, asp.AnchorTR)
	q := randomQuery(t, ds, rng)
	s, err := dssearch.NewSearcher(rects, q, dssearch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.Solve()
	st := s.Stats
	if st.PrunedCells > st.DirtyCells {
		t.Fatalf("pruned %d > dirty %d", st.PrunedCells, st.DirtyCells)
	}
	if st.RefinePruned > st.RefinedCells {
		t.Fatalf("refine-pruned %d > refined %d", st.RefinePruned, st.RefinedCells)
	}
	if st.Splits > st.Discretizations {
		t.Fatalf("splits %d > discretizations %d", st.Splits, st.Discretizations)
	}
	if st.MaxHeapSize > st.HeapPushes+1 {
		t.Fatalf("heap size %d > pushes %d", st.MaxHeapSize, st.HeapPushes)
	}
	if st.Discretizations > 0 && st.CleanCells+st.DirtyCells == 0 {
		t.Fatal("discretized but saw no cells")
	}
}

// TestDefaultGranularityApplied: zero options get the paper's 30×30.
func TestDefaultGranularityApplied(t *testing.T) {
	ds := dataset.Random(10, 20, 122)
	rects, _ := asp.Reduce(ds, 4, 4, asp.AnchorTR)
	q := randomQuery(t, ds, rand.New(rand.NewSource(123)))
	s, err := dssearch.NewSearcher(rects, q, dssearch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.Solve()
	// A 30×30 grid over ≥1 discretization touches ≥900 cells, unless the
	// whole instance was resolved by the small-space sweep cutoff.
	if s.Stats.Discretizations > 0 && s.Stats.CleanCells+s.Stats.DirtyCells < 900 {
		t.Fatalf("default grid not applied? cells=%d", s.Stats.CleanCells+s.Stats.DirtyCells)
	}
}
