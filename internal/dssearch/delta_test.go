package dssearch

import (
	"math"
	"math/rand"
	"testing"

	"asrs/internal/attr"
	"asrs/internal/geom"
)

// uniqueLocs re-draws every object location from the continuous square,
// making anchor ties (practically) impossible — the precondition for
// the delta fold's unique-order gate to admit the fast path.
func uniqueLocs(rng *rand.Rand, ds *attr.Dataset) {
	for i := range ds.Objects {
		ds.Objects[i].Loc = geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
	}
}

// TestDeltaFoldBitIdentical is the delta-pyramid property test: for
// every composite kind the pyramid tests cover (integer-exact, dyadic,
// decimal two-float, min/max) plus a certification-failing composite,
// over several seeds and split points, a pyramid produced by folding
// the appended tail into the prefix pyramid answers bit-identically —
// region, distance, point and representation — to a from-scratch
// rebuild over the combined dataset AND to the unassisted oracle, at
// multiple worker counts and through the shared Prepared shape. The
// fold must actually take the fast path where it claims to (unique
// anchors, certifying composite) and must refuse it for uncertified
// composites and for datasets with anchor ties.
func TestDeltaFoldBitIdentical(t *testing.T) {
	old := satMinIds
	satMinIds = 64
	defer func() { satMinIds = old }()

	for _, seed := range []int64{7, 1801, 90210} {
		rng := rand.New(rand.NewSource(seed))
		kinds := []struct {
			name     string
			num      func() float64
			withMM   bool
			snap     bool // keep the lattice-snapped (tied) locations
			wantFold int  // 1 = must fold, 0 = must not, -1 = either
		}{
			{"integer", func() float64 { return float64(rng.Intn(11) - 5) }, false, false, 1},
			{"dyadic", func() float64 { return float64(rng.Intn(41)) * 0.25 }, false, false, 1},
			{"decimal", func() float64 { return 0.1 * float64(1+rng.Intn(99)) }, false, false, 1},
			{"minmax", func() float64 { return float64(rng.Intn(2001)) * 0.5 }, true, false, 1},
			// Denormal tails on both signs defeat the two-float
			// fallback too: the fold must refuse and take the classic
			// rebuild (which for such composites never sorts at all).
			{"uncertified", func() float64 {
				switch rng.Intn(10) {
				case 0:
					return 5e-324
				case 5:
					return -5e-324
				default:
					return rng.NormFloat64()
				}
			}, false, false, 0},
			// Lattice-snapped locations carry anchor ties, whose
			// permutation reaches Rep: the unique-order gate decides
			// (ties are near-certain but not guaranteed, so only the
			// answers are pinned, not the path).
			{"decimal_ties", func() float64 { return 0.1 * float64(1+rng.Intn(99)) }, false, true, -1},
		}
		for _, kind := range kinds {
			n := 150 + rng.Intn(200)
			ds, f := pyramidDataset(t, rng, n, kind.num, kind.withMM)
			if !kind.snap {
				uniqueLocs(rng, ds)
			}
			for _, k := range []int{n, n - 1, n / 2, n / 4} {
				prefix := &attr.Dataset{Schema: ds.Schema, Objects: ds.Objects[:k]}
				base, err := BuildPyramid(prefix, f)
				if err != nil {
					t.Fatalf("%s/%d k=%d: base: %v", kind.name, seed, k, err)
				}
				folded, stats, err := BuildPyramidDelta(base, ds)
				if err != nil {
					t.Fatalf("%s/%d k=%d: delta: %v", kind.name, seed, k, err)
				}
				if kind.wantFold >= 0 && stats.Folded != (kind.wantFold == 1) {
					t.Fatalf("%s/%d k=%d: Folded=%v, want %v", kind.name, seed, k, stats.Folded, kind.wantFold == 1)
				}
				rebuilt, err := BuildPyramid(ds, f)
				if err != nil {
					t.Fatalf("%s/%d k=%d: rebuild: %v", kind.name, seed, k, err)
				}

				target := make([]float64, f.Dims())
				for i := range target {
					target[i] = float64(2 + i)
				}
				for _, ab := range [][2]float64{{9, 8}, {0.37, 0.91}, {400, 400}} {
					a, b := ab[0], ab[1]
					_, oracle := solvePyr(t, ds, f, a, b, target, nil, nil, 1)
					wantRegion, want := solvePyr(t, ds, f, a, b, target, rebuilt, nil, 1)
					if math.Float64bits(want.Dist) != math.Float64bits(oracle.Dist) {
						t.Fatalf("%s/%d k=%d a=%g b=%g: rebuild disagrees with oracle: %v != %v",
							kind.name, seed, k, a, b, want.Dist, oracle.Dist)
					}
					prep, prepOK := folded.Prepare(a, b)
					for _, workers := range []int{1, 3} {
						gotRegion, got := solvePyr(t, ds, f, a, b, target, folded, nil, workers)
						if gotRegion != wantRegion || got.Dist != want.Dist || got.Point != want.Point {
							t.Fatalf("%s/%d k=%d a=%g b=%g workers=%d: folded %v@%v (region %v), rebuild %v@%v (region %v)",
								kind.name, seed, k, a, b, workers, got.Dist, got.Point, gotRegion,
								want.Dist, want.Point, wantRegion)
						}
						for i := range want.Rep {
							if math.Float64bits(got.Rep[i]) != math.Float64bits(want.Rep[i]) {
								t.Fatalf("%s/%d k=%d a=%g b=%g workers=%d: rep[%d] %v != %v",
									kind.name, seed, k, a, b, workers, i, got.Rep[i], want.Rep[i])
							}
						}
						if prepOK {
							gotRegion, got = solvePyr(t, ds, f, a, b, target, folded, prep, workers)
							if gotRegion != wantRegion || got.Dist != want.Dist {
								t.Fatalf("%s/%d k=%d a=%g b=%g workers=%d: prepared folded %v, want %v",
									kind.name, seed, k, a, b, workers, got.Dist, want.Dist)
							}
						}
					}
				}
			}
		}
	}
}

// TestDeltaFoldRejectsMismatch pins the precondition checks: a moved
// prefix object, a shrunken dataset, and a foreign schema are refused.
func TestDeltaFoldRejectsMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ds, f := pyramidDataset(t, rng, 120, func() float64 { return float64(rng.Intn(7)) }, false)
	prefix := &attr.Dataset{Schema: ds.Schema, Objects: ds.Objects[:80]}
	base, err := BuildPyramid(prefix, f)
	if err != nil {
		t.Fatal(err)
	}

	shrunk := &attr.Dataset{Schema: ds.Schema, Objects: ds.Objects[:40]}
	if _, _, err := BuildPyramidDelta(base, shrunk); err == nil {
		t.Fatal("shrunken dataset accepted")
	}

	moved := &attr.Dataset{Schema: ds.Schema, Objects: append([]attr.Object(nil), ds.Objects...)}
	moved.Objects[3].Loc.X += 0.5
	if _, _, err := BuildPyramidDelta(base, moved); err == nil {
		t.Fatal("moved prefix object accepted")
	}

	other, _ := pyramidDataset(t, rng, 120, func() float64 { return 1 }, false)
	if _, _, err := BuildPyramidDelta(base, other); err == nil {
		t.Fatal("foreign schema accepted")
	}
}
