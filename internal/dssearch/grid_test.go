package dssearch

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"asrs/internal/geom"
)

// mkEdges builds the precomputed cell-edge array discretize passes to
// overlapRange/fullRange.
func mkEdges(min, step float64, n int) []float64 {
	edges := make([]float64, n+1)
	for i := range edges {
		edges[i] = min + float64(i)*step
	}
	return edges
}

// TestOverlapRange: exhaustive validation against the definition — cell i
// overlaps (lo, hi) iff x_i < hi and x_{i+1} > lo.
func TestOverlapRange(t *testing.T) {
	const (
		min  = 10.0
		step = 2.5
		n    = 8
	)
	edges := mkEdges(min, step, n)
	cellX := func(i int) float64 { return min + float64(i)*step }
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 5000; trial++ {
		lo := min - 5 + rng.Float64()*30
		hi := lo + rng.Float64()*20
		i0, i1 := overlapRange(lo, hi, min, step, edges)
		for i := 0; i < n; i++ {
			overlaps := cellX(i) < hi && cellX(i+1) > lo
			inRange := i >= i0 && i <= i1
			if overlaps != inRange {
				t.Fatalf("lo=%g hi=%g: cell %d overlaps=%v but range [%d,%d]", lo, hi, i, overlaps, i0, i1)
			}
		}
	}
}

// TestOverlapRangeEdgeAligned: interval endpoints exactly on cell edges.
func TestOverlapRangeEdgeAligned(t *testing.T) {
	// Cells [0,1], [1,2], [2,3], [3,4].
	edges := mkEdges(0, 1, 4)
	i0, i1 := overlapRange(1, 3, 0, 1, edges)
	if i0 != 1 || i1 != 2 {
		t.Fatalf("aligned (1,3): [%d,%d], want [1,2]", i0, i1)
	}
	// Degenerate open interval on an edge overlaps nothing.
	i0, i1 = overlapRange(2, 2, 0, 1, edges)
	if i0 <= i1 {
		t.Fatalf("degenerate interval: [%d,%d] non-empty", i0, i1)
	}
	// Entirely left/right of the grid.
	if i0, i1 := overlapRange(-5, -1, 0, 1, edges); i0 <= i1 {
		t.Fatalf("left of grid: [%d,%d]", i0, i1)
	}
	if i0, i1 := overlapRange(6, 9, 0, 1, edges); i0 <= i1 {
		t.Fatalf("right of grid: [%d,%d]", i0, i1)
	}
}

// TestFullRange: cells reported full must be inside [lo, hi] closed, and
// at most one cell on each flank may be excluded unnecessarily.
func TestFullRange(t *testing.T) {
	const (
		min  = 0.0
		step = 1.0
		n    = 10
	)
	edges := mkEdges(min, step, n)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 2000; trial++ {
		lo := rng.Float64() * 8
		hi := lo + rng.Float64()*5
		c0, c1 := overlapRange(lo, hi, min, step, edges)
		if c0 > c1 {
			continue
		}
		f0, f1 := fullRange(c0, c1, lo, hi, edges)
		for i := f0; i <= f1; i++ {
			if min+float64(i)*step < lo || min+float64(i+1)*step > hi {
				t.Fatalf("lo=%g hi=%g: cell %d reported full but not contained", lo, hi, i)
			}
		}
	}
}

// TestSplitProperties: the two MBRs cover all dirty cells, and the lower
// bounds are the group minima.
func TestSplitProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		dirty := make([]cellInfo, n)
		for i := range dirty {
			x, y := rng.Float64()*100, rng.Float64()*100
			dirty[i] = cellInfo{
				rect: geom.Rect{MinX: x, MinY: y, MaxX: x + 1, MaxY: y + 1},
				lb:   rng.Float64() * 10,
			}
		}
		m1, lb1, m2, lb2 := split(dirty)
		minLB := math.Inf(1)
		for _, c := range dirty {
			if !m1.ContainsRect(c.rect) && !m2.ContainsRect(c.rect) {
				return false
			}
			if c.lb < minLB {
				minLB = c.lb
			}
		}
		return math.Min(lb1, lb2) == minLB
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestSplitTwoCells: minimal input.
func TestSplitTwoCells(t *testing.T) {
	dirty := []cellInfo{
		{rect: geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, lb: 3},
		{rect: geom.Rect{MinX: 9, MinY: 9, MaxX: 10, MaxY: 10}, lb: 5},
	}
	m1, lb1, m2, lb2 := split(dirty)
	if m1.Area() != 1 || m2.Area() != 1 {
		t.Fatalf("two-cell split should isolate cells: %v %v", m1, m2)
	}
	if math.Min(lb1, lb2) != 3 || math.Max(lb1, lb2) != 5 {
		t.Fatalf("lbs = %g, %g", lb1, lb2)
	}
}

// TestSubtractRect: the pieces tile space∖f without leaking into f's
// interior.
func TestSubtractRect(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 1000; trial++ {
		space := geom.NewRect(rng.Float64()*10, rng.Float64()*10, 10+rng.Float64()*10, 10+rng.Float64()*10)
		f := geom.NewRect(rng.Float64()*25, rng.Float64()*25, rng.Float64()*25, rng.Float64()*25)
		parts := subtractRect(space, f)
		for probe := 0; probe < 50; probe++ {
			p := geom.Point{
				X: space.MinX + rng.Float64()*space.Width(),
				Y: space.MinY + rng.Float64()*space.Height(),
			}
			inParts := false
			for _, r := range parts {
				if r.ContainsClosed(p) {
					inParts = true
				}
			}
			if f.ContainsOpen(p) {
				// Interior points of f may only appear on part boundaries,
				// never in part interiors.
				for _, r := range parts {
					if r.ContainsOpen(p) {
						t.Fatalf("point %v inside excluded %v leaked into %v", p, f, r)
					}
				}
			} else if !inParts {
				t.Fatalf("point %v in space %v minus %v not covered by %v", p, space, f, parts)
			}
		}
	}
}

// TestPickSeedsDistinct: seeds are always two distinct indices.
func TestPickSeedsDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(30)
		dirty := make([]cellInfo, n)
		same := rng.Intn(2) == 0
		for i := range dirty {
			x, y := rng.Float64()*10, rng.Float64()*10
			if same {
				x, y = 5, 5 // all coincident
			}
			dirty[i] = cellInfo{rect: geom.Rect{MinX: x, MinY: y, MaxX: x + 1, MaxY: y + 1}}
		}
		a, b := pickSeeds(dirty)
		if a == b {
			t.Fatalf("trial %d: identical seeds %d", trial, a)
		}
	}
}
