package dssearch_test

import (
	"math"
	"math/rand"
	"testing"

	"asrs/internal/agg"
	"asrs/internal/asp"
	"asrs/internal/attr"
	"asrs/internal/dataset"
	"asrs/internal/dssearch"
	"asrs/internal/geom"
	"asrs/internal/sweep"
)

// randomQuery builds a random composite aggregator, target and weights
// over dataset.Random's schema.
func randomQuery(t testing.TB, ds *attr.Dataset, rng *rand.Rand) asp.Query {
	t.Helper()
	all := []agg.Spec{
		{Kind: agg.Distribution, Attr: "cat"},
		{Kind: agg.Average, Attr: "val"},
		{Kind: agg.Sum, Attr: "val"},
	}
	var chosen []agg.Spec
	for _, s := range all {
		if rng.Intn(2) == 0 {
			chosen = append(chosen, s)
		}
	}
	if len(chosen) == 0 {
		chosen = all[:1]
	}
	f, err := agg.New(ds.Schema, chosen...)
	if err != nil {
		t.Fatal(err)
	}
	target := make([]float64, f.Dims())
	w := make([]float64, f.Dims())
	for i := range target {
		target[i] = rng.NormFloat64() * 3
		w[i] = 0.1 + rng.Float64()
	}
	return asp.Query{F: f, Target: target, W: w}
}

// TestDSSearchMatchesSweep is the central integration test: on random
// instances DS-Search must return exactly the sweep baseline's optimum.
func TestDSSearchMatchesSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 80; trial++ {
		n := 1 + rng.Intn(60)
		ds := dataset.Random(n, 50, rng.Int63())
		a := 2 + rng.Float64()*15
		b := 2 + rng.Float64()*15
		rects, err := asp.Reduce(ds, a, b, asp.AnchorTR)
		if err != nil {
			t.Fatal(err)
		}
		q := randomQuery(t, ds, rng)

		sw, _ := sweep.New(rects, q)
		want := sw.Solve()

		s, err := dssearch.NewSearcher(rects, q, dssearch.Options{NCol: 10, NRow: 10})
		if err != nil {
			t.Fatal(err)
		}
		got := s.Solve()
		if math.Abs(got.Dist-want.Dist) > 1e-9 {
			t.Fatalf("trial %d (n=%d, a=%g, b=%g): DS-Search %g vs sweep %g\nstats: %+v",
				trial, n, a, b, got.Dist, want.Dist, s.Stats)
		}
		// The returned point must achieve the reported distance.
		rep := asp.PointRepresentation(rects, q.F, got.Point)
		if d := q.Distance(rep); math.Abs(d-got.Dist) > 1e-9 {
			t.Fatalf("trial %d: reported %g but point evaluates to %g", trial, got.Dist, d)
		}
	}
}

// TestDSSearchGranularities: the answer must not depend on the grid
// granularity.
func TestDSSearchGranularities(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ds := dataset.Random(40, 60, 99)
	rects, _ := asp.Reduce(ds, 9, 7, asp.AnchorTR)
	q := randomQuery(t, ds, rng)
	sw, _ := sweep.New(rects, q)
	want := sw.Solve().Dist
	for _, g := range []int{2, 5, 10, 30, 50} {
		s, err := dssearch.NewSearcher(rects, q, dssearch.Options{NCol: g, NRow: g})
		if err != nil {
			t.Fatal(err)
		}
		got := s.Solve()
		if math.Abs(got.Dist-want) > 1e-9 {
			t.Fatalf("granularity %d: %g vs %g", g, got.Dist, want)
		}
	}
}

// TestApproximateGuarantee: the (1+δ) variant must return a region within
// the guarantee, for several δ.
func TestApproximateGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		ds := dataset.Random(1+rng.Intn(50), 50, rng.Int63())
		rects, _ := asp.Reduce(ds, 8, 8, asp.AnchorTR)
		q := randomQuery(t, ds, rng)
		sw, _ := sweep.New(rects, q)
		opt := sw.Solve().Dist
		for _, delta := range []float64{0.1, 0.2, 0.4} {
			s, err := dssearch.NewSearcher(rects, q, dssearch.Options{NCol: 10, NRow: 10, Delta: delta})
			if err != nil {
				t.Fatal(err)
			}
			got := s.Solve()
			if got.Dist < opt-1e-9 {
				t.Fatalf("approx found better than optimum: %g < %g", got.Dist, opt)
			}
			if got.Dist > (1+delta)*opt+1e-9 {
				t.Fatalf("trial %d δ=%g: %g violates (1+δ)·%g", trial, delta, got.Dist, opt)
			}
		}
	}
}

// TestSolveASRSRoundTrip: the front door returns the region whose
// representation matches the reported one, and the distance agrees with
// directly aggregating the region.
func TestSolveASRSRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ds := dataset.Random(50, 40, 7)
	q := randomQuery(t, ds, rng)
	a, b := 6.0, 5.0
	region, res, stats, err := dssearch.SolveASRS(ds, a, b, q, dssearch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if w, h := region.Width(), region.Height(); math.Abs(w-a) > 1e-9 || math.Abs(h-b) > 1e-9 {
		t.Fatalf("region size %gx%g, want %gx%g", w, h, a, b)
	}
	rep := q.F.Representation(ds, agg.OpenRect{MinX: region.MinX, MinY: region.MinY, MaxX: region.MaxX, MaxY: region.MaxY})
	if d := q.Distance(rep); math.Abs(d-res.Dist) > 1e-9 {
		t.Fatalf("region distance %g, reported %g", d, res.Dist)
	}
	if stats.Discretizations == 0 && stats.MiniSweeps == 0 {
		t.Fatal("no work recorded")
	}
}

// TestAnchorsAgree: the optimum distance is independent of the reduction
// anchor.
func TestAnchorsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ds := dataset.Random(35, 40, 17)
	q := randomQuery(t, ds, rng)
	var dists []float64
	for _, an := range []asp.Anchor{asp.AnchorTR, asp.AnchorTL, asp.AnchorBR, asp.AnchorBL, asp.AnchorCenter} {
		_, res, _, err := dssearch.SolveASRS(ds, 7, 6, q, dssearch.Options{Anchor: an})
		if err != nil {
			t.Fatal(err)
		}
		dists = append(dists, res.Dist)
	}
	for i := 1; i < len(dists); i++ {
		if math.Abs(dists[i]-dists[0]) > 1e-9 {
			t.Fatalf("anchor %d disagrees: %v", i, dists)
		}
	}
}

func TestOptionsValidation(t *testing.T) {
	ds := dataset.Random(5, 10, 8)
	rects, _ := asp.Reduce(ds, 2, 2, asp.AnchorTR)
	f := agg.MustNew(ds.Schema, agg.Spec{Kind: agg.Sum, Attr: "val"})
	q := asp.Query{F: f, Target: []float64{0}}
	if _, err := dssearch.NewSearcher(rects, q, dssearch.Options{Delta: -1}); err == nil {
		t.Error("negative delta accepted")
	}
	if _, err := dssearch.NewSearcher(rects, q, dssearch.Options{NCol: 1, NRow: 5}); err == nil {
		t.Error("1-column grid accepted")
	}
	if _, err := dssearch.NewSearcher(rects, asp.Query{F: f, Target: []float64{0, 1}}, dssearch.Options{}); err == nil {
		t.Error("bad query accepted")
	}
}

func TestEmptyAndTinyInstances(t *testing.T) {
	ds := dataset.Random(5, 10, 12)
	f := agg.MustNew(ds.Schema, agg.Spec{Kind: agg.Distribution, Attr: "cat"})
	q := asp.Query{F: f, Target: []float64{0, 0, 0}}

	s, err := dssearch.NewSearcher(nil, q, dssearch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res := s.Solve(); res.Dist != 0 {
		t.Fatalf("empty instance: dist %g, want 0", res.Dist)
	}

	one := dataset.Random(1, 10, 13)
	rects, _ := asp.Reduce(one, 3, 3, asp.AnchorTR)
	q2 := randomQuery(t, one, rand.New(rand.NewSource(14)))
	s2, _ := dssearch.NewSearcher(rects, q2, dssearch.Options{})
	got := s2.Solve()
	sw, _ := sweep.New(rects, q2)
	want := sw.Solve()
	if math.Abs(got.Dist-want.Dist) > 1e-9 {
		t.Fatalf("single object: %g vs %g", got.Dist, want.Dist)
	}
}

// TestCoincidentObjects: fully degenerate arrangement (all objects at one
// point). The accuracy becomes +Inf, the drop condition fires immediately
// and the safety net must still produce the exact answer.
func TestCoincidentObjects(t *testing.T) {
	ds := dataset.Random(8, 20, 15)
	for i := range ds.Objects {
		ds.Objects[i].Loc = geom.Point{X: 5, Y: 5}
	}
	rects, _ := asp.Reduce(ds, 4, 3, asp.AnchorTR)
	f := agg.MustNew(ds.Schema, agg.Spec{Kind: agg.Distribution, Attr: "cat"})
	q := asp.Query{F: f, Target: []float64{8, 0, 0}, W: agg.UnitWeights(3)}
	s, _ := dssearch.NewSearcher(rects, q, dssearch.Options{})
	got := s.Solve()
	want := asp.BruteForce(rects, q)
	if math.Abs(got.Dist-want.Dist) > 1e-9 {
		t.Fatalf("coincident: %g vs %g", got.Dist, want.Dist)
	}
}

// TestDuplicatePoints: pairs of duplicated locations mixed with unique
// ones (common in check-in data).
func TestDuplicatePoints(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	ds := dataset.Random(30, 30, 17)
	for i := 15; i < 30; i++ {
		ds.Objects[i].Loc = ds.Objects[i-15].Loc
	}
	rects, _ := asp.Reduce(ds, 5, 5, asp.AnchorTR)
	q := randomQuery(t, ds, rng)
	sw, _ := sweep.New(rects, q)
	want := sw.Solve()
	s, _ := dssearch.NewSearcher(rects, q, dssearch.Options{})
	got := s.Solve()
	if math.Abs(got.Dist-want.Dist) > 1e-9 {
		t.Fatalf("duplicates: %g vs %g", got.Dist, want.Dist)
	}
}

// TestL2Norm: DS-Search agrees with the sweep under the L2 metric too
// (§3.3 notes the proposals extend beyond L1).
func TestL2Norm(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	for trial := 0; trial < 20; trial++ {
		ds := dataset.Random(1+rng.Intn(40), 40, rng.Int63())
		rects, _ := asp.Reduce(ds, 7, 7, asp.AnchorTR)
		q := randomQuery(t, ds, rng)
		q.Norm = agg.L2
		sw, _ := sweep.New(rects, q)
		want := sw.Solve()
		s, _ := dssearch.NewSearcher(rects, q, dssearch.Options{})
		got := s.Solve()
		if math.Abs(got.Dist-want.Dist) > 1e-9 {
			t.Fatalf("trial %d L2: %g vs %g", trial, got.Dist, want.Dist)
		}
	}
}

// TestSeededSearcher: seeding with an incumbent no worse than the optimum
// must not degrade the answer (the GI-DS contract).
func TestSeededSearcher(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	ds := dataset.Random(30, 40, 20)
	rects, _ := asp.Reduce(ds, 6, 6, asp.AnchorTR)
	q := randomQuery(t, ds, rng)
	sw, _ := sweep.New(rects, q)
	want := sw.Solve()

	s, _ := dssearch.NewSearcher(rects, q, dssearch.Options{})
	s.SeedBest(asp.Result{Point: geom.Point{X: -1e9, Y: -1e9}, Dist: math.Inf(1)})
	s.SolveWithin(asp.Space(rects), 0)
	if got := s.Best(); math.Abs(got.Dist-want.Dist) > 1e-9 {
		t.Fatalf("seeded: %g vs %g", got.Dist, want.Dist)
	}
}
