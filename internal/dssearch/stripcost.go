// Strip-evaluator cost model for the mini-sweep (DESIGN.md §8): the
// per-unit weights internal/sweep's StripAuto selection uses to choose,
// per solve and per strip, between the flat prefix-scan evaluator and
// the Fenwick tree. Same discipline as the SAT-vs-difference-array fill
// selector (sat.go): the weights are profiled constants, the inputs are
// deterministic shape quantities, and the choice can never change
// answers — only speed.
package dssearch

import "asrs/internal/sweep"

// stripCostModel returns the weights DS-Search installs on its pooled
// mini-sweep solvers. Relative to one flat prefix step (a sequential
// load-add the prefetcher hides, priced below a full unit):
//
//   - a Fenwick RangeAdd level is ~2.5 flat units: two tree traversals
//     of strided, cache-hostile read-modify-writes, paid per
//     contribution per log2(k) level;
//   - a Fenwick PointInto level is ~1 unit per channel: the walk reads
//     log2(k) scattered rows but folds whole channel vectors;
//   - a difference-array update is ~2 units: two scattered writes, but
//     paid once per contribution instead of per level.
//
// The constants were fit on the BENCH_PR4 warm batched workload (30×30
// grids, 5-channel composites, mini-sweeps of 48..2048 rects) and only
// their ratios matter; they bias toward the flat evaluator for the
// dense dirty sets the safety net produces, which is where the measured
// crossover sits.
func stripCostModel() sweep.StripCost {
	return sweep.StripCost{
		TreeUpdate: 2.5,
		TreeProbe:  1.0,
		FlatStep:   0.35,
		DiffUpdate: 2.0,
	}
}

// stripMode maps the searcher's options onto the solver's strip-
// evaluator mode: the ablation switch forces the legacy per-point
// Fenwick evaluator, everything else lets the cost model pick.
func (s *Searcher) stripMode() sweep.StripMode {
	if s.opt.DisableFlatStrip {
		return sweep.StripFenwickOnly
	}
	return sweep.StripAuto
}
