package dssearch

import (
	"fmt"
	"math"
	"sort"

	"asrs/internal/agg"
	"asrs/internal/asp"
	"asrs/internal/attr"
	"asrs/internal/geom"
)

// Pyramid is the persistent per-composite aggregate pyramid: the whole
// per-query aggregation layer of sat.go, hoisted to the dataset level
// and built exactly once per (dataset, composite) pair.
//
// The hoist is possible because, under the default top-right-corner
// reduction, every rectangle's anchor (MinX, MinY) is the object's
// location translated by the constant (-a, -b): the master sort order,
// the flattened channel contributions, the fixed-point / two-float
// certificates, the SAT bin partition and the min/max companion are all
// functions of (dataset, composite) alone — only the rectangle
// materialization, the width/height ranges and the accuracy merge walks
// depend on the query's (a, b), and those are O(n) passes. Binding a
// pyramid to a Searcher therefore replaces the per-query O(R log R)
// sort, the O(contribs) flatten/certify passes and the O(R + g²·C) SAT
// build with aliased reads of shared immutable state (DESIGN.md §6).
//
// Bit-identity with the unassisted path is preserved by construction:
// the pyramid's master order is produced by the *same* sort over the
// *same* initial order (translation is monotone, so the comparator
// outcomes — and with them the unstable sort's permutation — are
// identical), the SAT planes carry the same exact scaled int64 sums,
// and the id-anchored threshold arrays bound the translated per-query
// anchors through actual rectangle coordinates rather than bin
// geometry. The single case translation can break — two distinct anchor
// x coordinates collapsing onto one float (a sub-ulp event that changes
// the tie structure the sort saw) — is detected at bind time and falls
// back to the classic per-query build, so answers never depend on the
// pyramid being bindable.
//
// A Pyramid is immutable after construction and safe for any number of
// concurrent binds; the Engine caches one per composite, and
// internal/persist gives it a durable on-disk form.
type Pyramid struct {
	ds      *attr.Dataset
	f       *agg.Composite
	n       int
	mmSlots int

	core             *tables     // frozen canonical aggregation core (master order)
	order            []int32     // master position -> dataset object index
	xAscIds, yAscIds []int32     // master ids sorted by anchor x / y (accuracy)
	lvls             []*satLevel // SAT hierarchy, finest first (empty when nothing certifies)
}

// BuildPyramid constructs the pyramid for one composite over a dataset.
// The dataset must not be mutated afterwards while the pyramid serves
// it (the same contract as Engine and Index).
func BuildPyramid(ds *attr.Dataset, f *agg.Composite) (*Pyramid, error) {
	if ds == nil {
		return nil, fmt.Errorf("dssearch: pyramid requires a dataset")
	}
	if f == nil {
		return nil, fmt.Errorf("dssearch: pyramid requires a composite aggregator")
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	n := len(ds.Objects)

	// Degenerate location-anchored rectangles stand in for the reduced
	// master: their (MinX, MinY) are the object locations, i.e. the
	// anchors of every real reduction up to translation, so buildTables
	// runs the exact per-query code path — flatten, certify (plain +
	// two-float), sort, scale — and its outputs ARE the shared core.
	synth := make([]asp.RectObject, n)
	for i := range ds.Objects {
		o := &ds.Objects[i]
		synth[i] = asp.RectObject{
			Rect: geom.Rect{MinX: o.Loc.X, MinY: o.Loc.Y, MaxX: o.Loc.X, MaxY: o.Loc.Y},
			Obj:  o,
		}
	}
	core := &tables{}
	master := buildTables(core, synth, f, true)
	return finishPyramid(ds, f, core, master), nil
}

// finishPyramid assembles a Pyramid from a frozen aggregation core and
// its master array: recovers the sort permutation, derives the
// accuracy-walk id orders, and raises the SAT hierarchy. Shared by
// BuildPyramid and BuildPyramidDelta — everything downstream of
// buildTables is a pure function of (core, master), regardless of how
// the master order was produced.
func finishPyramid(ds *attr.Dataset, f *agg.Composite, core *tables, master []asp.RectObject) *Pyramid {
	n := len(ds.Objects)

	// Recover the sort permutation via object identity.
	idxOf := make(map[*attr.Object]int32, n)
	for i := range ds.Objects {
		idxOf[&ds.Objects[i]] = int32(i)
	}
	order := make([]int32, n)
	for i := range master {
		order[i] = idxOf[master[i].Obj]
	}

	p := &Pyramid{ds: ds, f: f, n: n, mmSlots: f.MinMaxSlots(), core: core, order: order}

	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range master {
		xs[i] = master[i].Rect.MinX
		ys[i] = master[i].Rect.MinY
	}
	p.xAscIds = sortedIdsByValue(xs)
	p.yAscIds = sortedIdsByValue(ys)

	if core.anyExact {
		// The persistent hierarchy can afford finer levels than the
		// per-query SAT: ring-scan work shrinks linearly with the bin
		// width, and the cost-based pickLevel chooses per
		// discretization. Min/max companions are memory-heavy (2D sparse
		// tables), so composites with min/max slots cap lower.
		g := satGrid(n)
		cap := 256
		if p.mmSlots > 0 {
			cap = 128
		}
		for 2*g <= cap && g*g < n {
			g *= 2
		}
		for {
			l := &satLevel{}
			buildSATLevel(l, g, xs, ys, core.eff,
				core.cOff, core.contribs, core.contribsI, core.mOff, core.mms, p.mmSlots)
			p.lvls = append(p.lvls, l)
			if g <= 8 {
				break
			}
			g /= 2
			if g < 8 {
				g = 8
			}
		}
	}
	return p
}

// sortedIdsByValue returns the indices of vs in ascending value order
// (ties by index, fully deterministic).
func sortedIdsByValue(vs []float64) []int32 {
	ids := make([]int32, len(vs))
	for i := range ids {
		ids[i] = int32(i)
	}
	sort.Slice(ids, func(a, b int) bool {
		if vs[ids[a]] != vs[ids[b]] {
			return vs[ids[a]] < vs[ids[b]]
		}
		return ids[a] < ids[b]
	})
	return ids
}

// Matches reports whether the pyramid was built for exactly this
// dataset and composite (pointer identity, the same contract as the
// Engine's index cache).
func (p *Pyramid) Matches(ds *attr.Dataset, f *agg.Composite) bool {
	return p != nil && p.ds == ds && p.f == f
}

// Composite returns the composite the pyramid serves.
func (p *Pyramid) Composite() *agg.Composite { return p.f }

// Objects returns the master cardinality.
func (p *Pyramid) Objects() int { return p.n }

// Levels returns the number of SAT resolutions in the hierarchy.
func (p *Pyramid) Levels() int { return len(p.lvls) }

// bindCore aliases the pyramid's frozen aggregation core into a
// recycled tables value and marks it shared so reset() drops (never
// truncates) the aliased slices.
func (p *Pyramid) bindCore(t *tables) {
	c := p.core
	t.f, t.chans, t.eff = c.f, c.chans, c.eff
	t.chOK, t.chScale, t.chInv, t.twoOf = c.chOK, c.chScale, c.chInv, c.twoOf
	t.twoCount = c.twoCount
	t.allExact, t.sortExact, t.anyExact = c.allExact, c.sortExact, c.anyExact
	t.sorted = c.sorted
	t.cOff, t.contribs, t.contribsI = c.cOff, c.contribs, c.contribsI
	t.mOff, t.mms = c.mOff, c.mms
	t.cOffF, t.contribsF = c.cOffF, c.contribsF
	t.lvls = append(t.lvls[:0], p.lvls...)
	t.satBuilt.Store(len(p.lvls) > 0)
	t.shared = true
	t.pyr = p
}

// bind rebinds a per-query reduction (rects, in dataset order) onto the
// pyramid: the master is permuted into the pyramid's canonical order
// (reusing the tables' retained master slab), the shared core is
// aliased, and the per-query O(n) parts (width/height ranges, minXs)
// are recomputed. ok=false signals an anchor collapse — the translated
// anchors no longer realize the pyramid's tie structure — and the
// caller must fall back to the classic build.
func (p *Pyramid) bind(t *tables, rects []asp.RectObject) ([]asp.RectObject, bool) {
	var master []asp.RectObject
	if p.core.sorted && p.n > 0 {
		if cap(t.masterBuf) < p.n {
			t.masterBuf = make([]asp.RectObject, p.n)
		}
		master = t.masterBuf[:p.n]
		for i, oi := range p.order {
			r := rects[oi]
			if r.Obj != &p.ds.Objects[oi] {
				// rects is not the dataset-order reduction (e.g. a slice an
				// earlier fallback searcher re-sorted in place): the
				// permutation would misalign the shared contributions.
				return nil, false
			}
			master[i] = r
		}
		if !masterSortedNoCollapse(master) {
			return nil, false
		}
	} else {
		for i := range rects {
			if rects[i].Obj != &p.ds.Objects[i] {
				return nil, false // contribution tables assume dataset order
			}
		}
		master = rects
	}
	p.bindMaster(t, master)
	return master, true
}

// bindMaster aliases the core and recomputes the per-query O(n) parts
// (width/height ranges, the sorted MinX array) for a master already in
// pyramid order.
func (p *Pyramid) bindMaster(t *tables, master []asp.RectObject) {
	p.bindCore(t)
	t.measureExtents(master)
	t.fillMinXs(master)
}

// masterSortedNoCollapse verifies that the translated master realizes
// the pyramid's canonical order: (MinX, MinY) must be non-decreasing,
// and anchors may coincide only for rectangles that are bitwise equal
// (equal-location objects). Translation is monotone, so a violation can
// only come from distinct coordinates collapsing onto one float — the
// sub-ulp event where the per-query sort could have arranged ties
// differently than the pyramid did.
func masterSortedNoCollapse(master []asp.RectObject) bool {
	for i := 1; i < len(master); i++ {
		a, b := &master[i-1].Rect, &master[i].Rect
		if a.MinX > b.MinX || (a.MinX == b.MinX && a.MinY > b.MinY) {
			return false
		}
		if a.MinX == b.MinX && a.MinY == b.MinY && (a.MaxX != b.MaxX || a.MaxY != b.MaxY) {
			return false
		}
	}
	return true
}

// accuracyIds computes the Definition 7 GPS accuracies for a bound
// master via the pyramid's presorted id orders: the MinX sequence in
// xAscIds order is sorted (translation is monotone) and the MaxX
// sequence likewise, so the edge-multiset merge walk runs with no
// per-query sorting at all — bit-identical to tables.accuracy, which
// sorts the same multisets before the same merge.
func (p *Pyramid) accuracyIds(master []asp.RectObject) geom.Accuracy {
	dx := minGapMergedIds(master, p.xAscIds, false)
	dy := minGapMergedIds(master, p.yAscIds, true)
	return geom.Accuracy{DX: dx, DY: dy}
}

// minGapMergedIds is minGapMerged over the virtual sequences
// A = {master[ids[k]].MinX} and B = {master[ids[k]].MaxX} (or the Y
// variants), both ascending because ids is sorted by the corresponding
// anchor coordinate.
func minGapMergedIds(master []asp.RectObject, ids []int32, yAxis bool) float64 {
	minGap := math.Inf(1)
	prev := math.NaN()
	ai, bi := 0, 0
	n := len(ids)
	coord := func(k int, upper bool) float64 {
		r := &master[ids[k]].Rect
		if yAxis {
			if upper {
				return r.MaxY
			}
			return r.MinY
		}
		if upper {
			return r.MaxX
		}
		return r.MinX
	}
	for ai < n || bi < n {
		var v float64
		if bi >= n || (ai < n && coord(ai, false) <= coord(bi, true)) {
			v = coord(ai, false)
			ai++
		} else {
			v = coord(bi, true)
			bi++
		}
		if d := v - prev; !math.IsNaN(prev) && d > 0 && d < minGap {
			minGap = d
		}
		prev = v
	}
	return minGap
}

// Prepared is the per-query-shape state shared by every query with the
// same (a, b) extent over one pyramid: the materialized master
// rectangle array (read-only for all concurrent searchers in a batch
// group) and the GPS accuracy. Build with Pyramid.Prepare; attach via
// Options.Prepared.
type Prepared struct {
	p      *Pyramid
	a, b   float64
	master []asp.RectObject
	acc    geom.Accuracy
	// Shared per-shape O(n) derivations: the sorted MinX array and the
	// width/height ranges, computed once per group instead of once per
	// query.
	minXs                  []float64
	wmin, wmax, hmin, hmax float64
}

// Prepare materializes the query-shape state for an a×b query: the
// master rectangles in pyramid order (built straight from the objects —
// bit-identical to reducing and permuting, with no intermediate copy)
// and the accuracy. ok=false signals an anchor collapse under this
// particular (a, b); callers fall back to unshared per-query execution.
func (p *Pyramid) Prepare(a, b float64) (*Prepared, bool) {
	if p == nil || a <= 0 || b <= 0 {
		return nil, false
	}
	master := make([]asp.RectObject, p.n)
	for i, oi := range p.order {
		o := &p.ds.Objects[oi]
		master[i] = asp.RectObject{Rect: asp.AnchorTR.RectFor(o.Loc, a, b), Obj: o}
	}
	if p.core.sorted && !masterSortedNoCollapse(master) {
		return nil, false
	}
	prep := &Prepared{p: p, a: a, b: b, master: master, acc: p.accuracyIds(master)}
	var t tables
	t.measureExtents(master)
	prep.wmin, prep.wmax, prep.hmin, prep.hmax = t.wmin, t.wmax, t.hmin, t.hmax
	prep.minXs = make([]float64, len(master))
	for i := range master {
		prep.minXs[i] = master[i].Rect.MinX
	}
	return prep, true
}

// bindPrepared is bindMaster for a group-shared shape: the extents and
// the sorted MinX array are aliased from the Prepared instead of
// recomputed per query.
func (p *Pyramid) bindPrepared(t *tables, prep *Prepared) {
	p.bindCore(t)
	t.wmin, t.wmax, t.hmin, t.hmax = prep.wmin, prep.wmax, prep.hmin, prep.hmax
	t.minXs = prep.minXs
}

// For reports whether the prepared shape serves exactly this
// (dataset, composite, a, b) combination.
func (prep *Prepared) For(ds *attr.Dataset, f *agg.Composite, a, b float64) bool {
	return prep != nil && prep.p.Matches(ds, f) && prep.a == a && prep.b == b
}

// ---- Serialization snapshot ----

// PyramidSnapshot is the exported, codec-friendly image of a Pyramid.
// internal/persist encodes and decodes it; PyramidFromSnapshot
// validates it and rebuilds the derived state (scaled contributions,
// min/max sparse tables) that is cheaper to recompute than to store.
type PyramidSnapshot struct {
	N          int
	Chans, Eff int
	MMSlots    int

	AllExact, SortExact, AnyExact, Sorted bool

	ChOK    []bool
	ChScale []float64
	ChInv   []float64
	TwoOf   []int32

	Order            []int32
	COff             []int32
	Contribs         []agg.Contrib
	MOff             []int32
	MMs              []agg.MMContrib
	COffF            []int32
	ContribsF        []agg.Contrib
	XAscIds, YAscIds []int32

	Levels []PyramidLevelSnapshot
}

// PyramidLevelSnapshot is one SAT resolution.
type PyramidLevelSnapshot struct {
	G                  int
	BW, BH             float64
	Sat                []int64
	BinStart, BinIds   []int32
	XMaxUpTo, XMinFrom []int32
	YMaxUpTo, YMinFrom []int32
}

// Snapshot exports the pyramid's serializable image. The returned
// slices alias the pyramid — treat as read-only.
func (p *Pyramid) Snapshot() *PyramidSnapshot {
	c := p.core
	s := &PyramidSnapshot{
		N: p.n, Chans: c.chans, Eff: c.eff, MMSlots: p.mmSlots,
		AllExact: c.allExact, SortExact: c.sortExact, AnyExact: c.anyExact, Sorted: c.sorted,
		ChOK: c.chOK, ChScale: c.chScale, ChInv: c.chInv, TwoOf: c.twoOf,
		Order: p.order, COff: c.cOff, Contribs: c.contribs,
		MOff: c.mOff, MMs: c.mms, COffF: c.cOffF, ContribsF: c.contribsF,
		XAscIds: p.xAscIds, YAscIds: p.yAscIds,
	}
	for _, l := range p.lvls {
		s.Levels = append(s.Levels, PyramidLevelSnapshot{
			G: l.gx, BW: l.bw, BH: l.bh, Sat: l.sat,
			BinStart: l.binStart, BinIds: l.binIds,
			XMaxUpTo: l.xMaxUpTo, XMinFrom: l.xMinFrom,
			YMaxUpTo: l.yMaxUpTo, YMinFrom: l.yMinFrom,
		})
	}
	return s
}

// PyramidFromSnapshot reconstructs a pyramid over (ds, f) from a
// decoded snapshot, validating structural consistency (a corrupt or
// mismatched file must produce an error, never a panic) and rebuilding
// the derived state: scaled int64 contributions and the per-level
// min/max sparse tables. The snapshot's contribution values are trusted
// to describe ds — like ReadIndex, the dataset identity is part of the
// file's contract.
func PyramidFromSnapshot(ds *attr.Dataset, f *agg.Composite, s *PyramidSnapshot) (*Pyramid, error) {
	if ds == nil || f == nil || s == nil {
		return nil, fmt.Errorf("dssearch: pyramid snapshot requires dataset, composite and data")
	}
	n := s.N
	if n != len(ds.Objects) {
		return nil, fmt.Errorf("dssearch: pyramid snapshot covers %d objects, dataset has %d", n, len(ds.Objects))
	}
	if s.Chans != f.Channels() {
		return nil, fmt.Errorf("dssearch: pyramid snapshot has %d channels, composite has %d", s.Chans, f.Channels())
	}
	if s.MMSlots != f.MinMaxSlots() {
		return nil, fmt.Errorf("dssearch: pyramid snapshot has %d min/max slots, composite has %d", s.MMSlots, f.MinMaxSlots())
	}
	if s.Eff < s.Chans || s.Eff > 2*s.Chans {
		return nil, fmt.Errorf("dssearch: pyramid snapshot eff=%d inconsistent with chans=%d", s.Eff, s.Chans)
	}
	if len(s.ChOK) != s.Eff || len(s.ChScale) != s.Eff || len(s.ChInv) != s.Eff || len(s.TwoOf) != s.Chans {
		return nil, fmt.Errorf("dssearch: pyramid snapshot certificate arrays inconsistent")
	}
	if len(s.Order) != n || len(s.XAscIds) != n || len(s.YAscIds) != n {
		return nil, fmt.Errorf("dssearch: pyramid snapshot id arrays inconsistent")
	}
	if err := checkPermutation(s.Order, n); err != nil {
		return nil, fmt.Errorf("dssearch: pyramid snapshot order: %w", err)
	}
	if err := checkPermutation(s.XAscIds, n); err != nil {
		return nil, fmt.Errorf("dssearch: pyramid snapshot x id order: %w", err)
	}
	if err := checkPermutation(s.YAscIds, n); err != nil {
		return nil, fmt.Errorf("dssearch: pyramid snapshot y id order: %w", err)
	}
	if err := checkOffsets(s.COff, n, len(s.Contribs)); err != nil {
		return nil, fmt.Errorf("dssearch: pyramid snapshot contributions: %w", err)
	}
	for i := range s.Contribs {
		if ch := s.Contribs[i].Ch; ch < 0 || ch >= s.Eff {
			return nil, fmt.Errorf("dssearch: pyramid snapshot contribution channel %d out of range", ch)
		}
	}
	twoCount := 0
	for ch, sh := range s.TwoOf {
		if sh < 0 {
			continue
		}
		if int(sh) < s.Chans || int(sh) >= s.Eff {
			return nil, fmt.Errorf("dssearch: pyramid snapshot shadow slot %d of channel %d out of range", sh, ch)
		}
		twoCount++
	}
	if s.Chans+twoCount != s.Eff {
		return nil, fmt.Errorf("dssearch: pyramid snapshot shadow count %d inconsistent with eff=%d", twoCount, s.Eff)
	}
	if s.MMSlots > 0 {
		if err := checkOffsets(s.MOff, n, len(s.MMs)); err != nil {
			return nil, fmt.Errorf("dssearch: pyramid snapshot min/max contributions: %w", err)
		}
		for i := range s.MMs {
			if sl := s.MMs[i].Slot; sl < 0 || sl >= s.MMSlots {
				return nil, fmt.Errorf("dssearch: pyramid snapshot min/max slot %d out of range", sl)
			}
		}
	}
	if !s.SortExact {
		if err := checkOffsets(s.COffF, n, len(s.ContribsF)); err != nil {
			return nil, fmt.Errorf("dssearch: pyramid snapshot fallback contributions: %w", err)
		}
		for i := range s.ContribsF {
			if ch := s.ContribsF[i].Ch; ch < 0 || ch >= s.Eff {
				return nil, fmt.Errorf("dssearch: pyramid snapshot fallback channel %d out of range", ch)
			}
		}
	}

	core := &tables{
		f: f, chans: s.Chans, eff: s.Eff,
		chOK: s.ChOK, chScale: s.ChScale, chInv: s.ChInv, twoOf: s.TwoOf,
		twoCount: twoCount,
		allExact: s.AllExact, sortExact: s.SortExact, anyExact: s.AnyExact, sorted: s.Sorted,
		cOff: s.COff, contribs: s.Contribs,
		mOff: s.MOff, mms: s.MMs,
		cOffF: s.COffF, contribsF: s.ContribsF,
	}
	core.scaleContribsForSnapshot()

	p := &Pyramid{
		ds: ds, f: f, n: n, mmSlots: s.MMSlots,
		core: core, order: s.Order, xAscIds: s.XAscIds, yAscIds: s.YAscIds,
	}
	for li := range s.Levels {
		ls := &s.Levels[li]
		g := ls.G
		if g < 1 || g > 1<<14 {
			return nil, fmt.Errorf("dssearch: pyramid snapshot level %d granularity %d out of range", li, g)
		}
		if len(ls.Sat) != (g+1)*(g+1)*(s.Eff+1) ||
			len(ls.BinStart) != g*g+1 || len(ls.BinIds) != n ||
			len(ls.XMaxUpTo) != g || len(ls.XMinFrom) != g ||
			len(ls.YMaxUpTo) != g || len(ls.YMinFrom) != g {
			return nil, fmt.Errorf("dssearch: pyramid snapshot level %d arrays inconsistent", li)
		}
		if err := checkOffsets(ls.BinStart, g*g, n); err != nil {
			return nil, fmt.Errorf("dssearch: pyramid snapshot level %d bins: %w", li, err)
		}
		for _, id := range ls.BinIds {
			if id < 0 || int(id) >= n {
				return nil, fmt.Errorf("dssearch: pyramid snapshot level %d bin id %d out of range", li, id)
			}
		}
		for _, arr := range [][]int32{ls.XMaxUpTo, ls.XMinFrom, ls.YMaxUpTo, ls.YMinFrom} {
			for _, id := range arr {
				if int(id) >= n {
					return nil, fmt.Errorf("dssearch: pyramid snapshot level %d threshold id %d out of range", li, id)
				}
			}
		}
		l := &satLevel{
			gx: g, gy: g, bw: ls.BW, bh: ls.BH, eff: s.Eff,
			sat: ls.Sat, binStart: ls.BinStart, binIds: ls.BinIds,
			xMaxUpTo: ls.XMaxUpTo, xMinFrom: ls.XMinFrom,
			yMaxUpTo: ls.YMaxUpTo, yMinFrom: ls.YMinFrom,
		}
		l.hasMM = s.MMSlots > 0
		if l.hasMM {
			l.mm.Reset(g, g, s.MMSlots)
			for b := 0; b < g*g; b++ {
				row, col := b/g, b%g
				for _, id := range l.binIds[l.binStart[b]:l.binStart[b+1]] {
					for _, m := range core.mms[core.mOff[id]:core.mOff[id+1]] {
						l.mm.Fold(row, col, m.Slot, m.V)
					}
				}
			}
			l.mm.Build()
		}
		p.lvls = append(p.lvls, l)
	}
	if s.AnyExact && len(p.lvls) == 0 {
		return nil, fmt.Errorf("dssearch: pyramid snapshot certifies channels but carries no SAT levels")
	}
	return p, nil
}

// scaleContribsForSnapshot rebuilds contribsI from the loaded
// contributions and certificate (the exact inverse of what Snapshot
// omitted).
func (t *tables) scaleContribsForSnapshot() {
	t.contribsI = make([]int64, len(t.contribs))
	for i := range t.contribs {
		cb := &t.contribs[i]
		if t.chOK[cb.Ch] {
			t.contribsI[i] = int64(cb.V * t.chScale[cb.Ch])
		}
	}
}

// checkPermutation verifies ids is a permutation of [0, n).
func checkPermutation(ids []int32, n int) error {
	if len(ids) != n {
		return fmt.Errorf("length %d, want %d", len(ids), n)
	}
	seen := make([]bool, n)
	for _, id := range ids {
		if id < 0 || int(id) >= n || seen[id] {
			return fmt.Errorf("not a permutation of [0,%d)", n)
		}
		seen[id] = true
	}
	return nil
}

// checkOffsets verifies off is a monotone CSR offset array of n ranges
// covering [0, total].
func checkOffsets(off []int32, n, total int) error {
	if len(off) != n+1 {
		return fmt.Errorf("offset array length %d, want %d", len(off), n+1)
	}
	if n >= 0 && len(off) > 0 {
		if off[0] != 0 || int(off[n]) != total {
			return fmt.Errorf("offset bounds [%d,%d], want [0,%d]", off[0], off[n], total)
		}
	}
	for i := 0; i < n; i++ {
		if off[i] > off[i+1] {
			return fmt.Errorf("offsets not monotone at %d", i)
		}
	}
	return nil
}
