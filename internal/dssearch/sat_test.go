package dssearch

import (
	"math"
	"math/rand"
	"testing"

	"asrs/internal/agg"
	"asrs/internal/asp"
	"asrs/internal/attr"
	"asrs/internal/geom"
)

// satSchema builds an integer-exact composite: fD over a categorical
// attribute plus fC and fS over small integer values — every channel
// contribution is an integer, so the SAT fill must be bit-identical to
// the difference-array fill.
func satSchema(t *testing.T) (*attr.Schema, *agg.Composite) {
	t.Helper()
	schema, err := attr.NewSchema(
		attr.Attribute{Name: "cat", Kind: attr.Categorical, Domain: []string{"a", "b", "c"}},
		attr.Attribute{Name: "val", Kind: attr.Numeric},
	)
	if err != nil {
		t.Fatal(err)
	}
	f, err := agg.New(schema,
		agg.Spec{Kind: agg.Distribution, Attr: "cat"},
		agg.Spec{Kind: agg.Count},
		agg.Spec{Kind: agg.Sum, Attr: "val"},
	)
	if err != nil {
		t.Fatal(err)
	}
	return schema, f
}

// satRects builds a randomized uniform-size rect set with plenty of
// duplicate and boundary-aligned coordinates. width/height <= 0 produce
// degenerate zero-extent rectangles.
func satRects(rng *rand.Rand, schema *attr.Schema, n int, w, h float64) []asp.RectObject {
	objs := make([]attr.Object, n)
	rects := make([]asp.RectObject, n)
	for i := range rects {
		// Snap a share of the anchors to a coarse lattice so rect edges
		// collide exactly with each other and with grid cell edges.
		x := rng.Float64() * 100
		y := rng.Float64() * 100
		if rng.Intn(2) == 0 {
			x = float64(rng.Intn(20)) * 5
			y = float64(rng.Intn(20)) * 5
		}
		objs[i] = attr.Object{
			Loc: geom.Point{X: x, Y: y},
			Values: []attr.Value{
				{Cat: rng.Intn(3)},
				{Num: float64(rng.Intn(11) - 5)},
			},
		}
		rects[i] = asp.RectObject{
			Rect: geom.Rect{MinX: x - w, MinY: y - h, MaxX: x, MaxY: y},
			Obj:  &objs[i],
		}
	}
	return rects
}

// fillBoth runs the difference-array fill and the SAT fill on the same
// space and returns the cell totals (full channels, partial channels,
// partial counts) of each. clip plays kernel.Item.Clip's role: the id
// subset is filtered by it (as the ancestor chain would), and the SAT
// fill clamps against it; pass clip == space for the root case.
func fillBoth(t *testing.T, rects []asp.RectObject, f *agg.Composite, space, clip geom.Rect, ncol, nrow int) (diffFull, diffPart, diffCnt, satFull, satPart, satCnt []float64) {
	t.Helper()
	q := asp.Query{F: f, Target: make([]float64, f.Dims())}
	s, err := NewSearcher(rects, q, Options{NCol: ncol, NRow: nrow})
	if err != nil {
		t.Fatal(err)
	}
	if !s.tab.satUsable() {
		t.Fatal("composite should be integer-exact and SAT-usable")
	}
	w := s.workers[0]
	w.grid = newGridBuffers(ncol, nrow, f, s.tab.eff)
	g := w.grid
	ids := s.AppendWindowIDs(clip, nil)

	cw := space.Width() / float64(ncol)
	chh := space.Height() / float64(nrow)
	for i := 0; i <= ncol; i++ {
		g.xe[i] = space.MinX + float64(i)*cw
	}
	for j := 0; j <= nrow; j++ {
		g.ye[j] = space.MinY + float64(j)*chh
	}

	grab := func() (fu, pa, cn []float64) {
		for r := 0; r < nrow; r++ {
			for c := 0; c < ncol; c++ {
				idx := g.cellIdx(c, r)
				fu = append(fu, g.diffFull[idx*g.chans:(idx+1)*g.chans]...)
				pa = append(pa, g.diffPart[idx*g.chans:(idx+1)*g.chans]...)
				cn = append(cn, g.diffCnt[idx])
			}
		}
		return
	}
	w.fillGridDiff(space, ids, cw, chh)
	diffFull, diffPart, diffCnt = grab()
	s.tab.ensureLevels(s.rects)
	w.fillGridSAT(clip, nil)
	satFull, satPart, satCnt = grab()
	return
}

// TestSATFillBitIdentical is the property test of DESIGN.md §2: on
// randomized rectangle sets over an integer-exact composite, the SAT
// fill's per-cell full/partial channel totals and partial-cover counts
// are bit-identical to the difference-array fill's, including degenerate
// zero-extent rectangles and edges exactly on cell boundaries under the
// open-coverage semantics of DESIGN.md §1.
func TestSATFillBitIdentical(t *testing.T) {
	schema, f := satSchema(t)
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		n := 30 + rng.Intn(400)
		w := []float64{7.5, 5, 12.3, 0}[trial%4] // 0: degenerate zero-area
		h := []float64{6, 5, 0.7, 0}[trial%4]
		rects := satRects(rng, schema, n, w, h)

		// Spaces: the full extent, a sub-space with lattice-aligned edges
		// (cell edges collide with rect edges exactly), a random one, and
		// a sub-ulp-per-cell sliver whose grid rows collapse to zero
		// height — the case where "fully covers" no longer implies
		// "overlaps" and the two fills historically diverged.
		spaces := []geom.Rect{
			asp.Space(rects),
			{MinX: 10, MinY: 5, MaxX: 70, MaxY: 65},
			{MinX: rng.Float64() * 40, MinY: rng.Float64() * 40, MaxX: 60 + rng.Float64()*40, MaxY: 60 + rng.Float64()*40},
			{MinX: 5, MinY: 40 - 1e-13, MaxX: 95, MaxY: 40 + 1e-13},
		}
		ncol := 2 + rng.Intn(12)
		nrow := 2 + rng.Intn(12)
		for si, space := range spaces {
			// Alternate between the root case (clip == space) and a clip
			// strictly tighter than the space's upper edges — the shape
			// the ancestor chain produces when a child cell MBR overshoots
			// its parent by an ulp (kernel.Item.Clip). The id subset is
			// clip-filtered either way, so the two fills must still agree.
			clip := space
			if si%2 == 1 {
				clip.MaxX = space.MaxX - space.Width()*1e-13
				clip.MaxY = space.MaxY - space.Height()*5e-14
			}
			df, dp, dc, sf, sp, sc := fillBoth(t, rects, f, space, clip, ncol, nrow)
			for i := range dc {
				if math.Float64bits(dc[i]) != math.Float64bits(sc[i]) {
					t.Fatalf("trial %d space %d: cell %d partial count diff=%v sat=%v", trial, si, i, dc[i], sc[i])
				}
			}
			for i := range df {
				if math.Float64bits(df[i]) != math.Float64bits(sf[i]) {
					t.Fatalf("trial %d space %d: full[%d] diff=%v sat=%v", trial, si, i, df[i], sf[i])
				}
				if math.Float64bits(dp[i]) != math.Float64bits(sp[i]) {
					t.Fatalf("trial %d space %d: part[%d] diff=%v sat=%v", trial, si, i, dp[i], sp[i])
				}
			}
		}
	}
}

// TestSATNotUsableForUnsplittableChannels: composites whose
// contributions defeat both the plain fixed-point certificate and the
// two-float fallback (denormal tails on both signs) must keep the
// difference-array path and the original master order.
func TestSATNotUsableForUnsplittableChannels(t *testing.T) {
	schema, err := attr.NewSchema(attr.Attribute{Name: "v", Kind: attr.Numeric})
	if err != nil {
		t.Fatal(err)
	}
	f, err := agg.New(schema, agg.Spec{Kind: agg.Sum, Attr: "v"})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	objs := make([]attr.Object, 50)
	rects := make([]asp.RectObject, 50)
	for i := range rects {
		x, y := rng.Float64()*10, rng.Float64()*10
		v := rng.NormFloat64()
		switch i % 8 {
		case 0:
			v = 5e-324
		case 3:
			v = -5e-324
		}
		objs[i] = attr.Object{Loc: geom.Point{X: x, Y: y}, Values: []attr.Value{{Num: v}}}
		rects[i] = asp.RectObject{Rect: geom.Rect{MinX: x - 1, MinY: y - 1, MaxX: x, MaxY: y}, Obj: &objs[i]}
	}
	q := asp.Query{F: f, Target: []float64{0}}
	s, err := NewSearcher(rects, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.tab.allExact || s.tab.anyExact || s.tab.sorted || s.tab.satUsable() {
		t.Fatalf("unsplittable composite must not enable the SAT layer: allExact=%v anyExact=%v", s.tab.allExact, s.tab.anyExact)
	}
	for i := range rects {
		if s.rects[i].Obj != rects[i].Obj {
			t.Fatal("master order changed for an unsplittable composite")
		}
	}
}
