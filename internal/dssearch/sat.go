package dssearch

import (
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"

	"asrs/internal/agg"
	"asrs/internal/asp"
	"asrs/internal/geom"
	"asrs/internal/segtree"
)

// This file implements the per-query incremental-aggregation layer of
// DS-Search: one `tables` value is built per Searcher and owns
//
//   - the master rectangle array, sorted by (MinX, MinY) when every
//     channel carries the fixed-point certificate, so that every space's
//     relevant rectangles form a binary-searchable contiguous window;
//   - the flattened per-rectangle channel contributions (AppendContribs
//     evaluated once per query instead of once per discretization);
//   - the GPS-accuracy computation (Definition 7), derived from the
//     sorted coordinate arrays by a merge walk instead of re-sorting the
//     edge multiset per query;
//   - the query-level summed-area table (SAT): 2D prefix sums of
//     rectangle-anchor counts and channel contributions over a bin grid,
//     plus CSR per-bin id lists. Discretize uses it to compute a cell's
//     full-/partial-cover totals with four-corner lookups plus an exact
//     scan of the boundary bins, instead of re-integrating difference
//     arrays over the whole space (see DESIGN.md §2).
//
// The SAT path is gated per channel by the *fixed-point certificate*:
// a channel participates when all of its contributions quantize
// losslessly onto a shared power-of-two grid (value · 2^shift is an
// integer for every contribution) and the channel's total absolute
// scaled mass stays within the exact summation headroom (Σ|v|·2^shift ≤
// 2^52). Under the certificate every float64 partial sum the
// difference-array fill can form is an integer multiple of 2^-shift
// with a ≤53-bit numerator — exactly representable — so channel sums
// are exact and independent of summation order, and the SAT can carry
// the channel as scaled int64, converting back only at cell-grid emit,
// bit-identical to the difference-array totals (the property tests
// assert this). Integer channels (fD, fC, fS/fA over integer values)
// pass trivially with shift 0; real-valued channels pass whenever the
// data lives on a dyadic grid (halves, quarters, float32-sourced
// values, …). Channels that fail the certificate individually — full-
// mantissa reals, denormal-adjacent values, NaN/Inf — fall back to a
// difference-array pass restricted to just those channels, in unchanged
// master order, so mixed composites still get partial fast-path
// coverage and fully failing composites keep the pre-SAT behavior
// byte-for-byte.
//
// Min/max slots (fA components) do not telescope through prefix sums;
// they are served by an order-statistic companion over the same anchor
// bins: per-bin pre-reduced min/max with segment-tree range queries
// (segtree.MinMaxRows) over the certainly-partial bin regions, plus an
// exact scan of the boundary bins — min/max are order-independent, so
// the companion is usable regardless of the channel certificates.

// satMinIds is the rectangle count at which discretize switches from the
// per-rectangle difference-array fill to SAT lookups: the SAT fill costs
// O(cells · boundary-bin density) independent of the rectangle count, so
// it wins exactly on the large spaces near the root of the split tree.
// A variable so tests can force the SAT path onto small inputs.
var satMinIds = 2048

// maxScaledSum bounds a channel's total absolute scaled contribution
// mass under the fixed-point certificate. 2^52 leaves a factor-2 margin
// below float64's exact integer range (2^53), so every partial sum of
// the float difference-array path is exactly representable even after
// the float accumulation slack of the certificate's own Σ|v| estimate.
const maxScaledSum = 1 << 52

// maxShift caps the fixed-point scale exponent so the scaled int64
// contributions (and the certificate arithmetic) stay well-defined;
// denormal-adjacent values, which would need shifts near 1074, fail.
const maxShift = 62

// tables is the per-query aggregation layer described above. It is built
// by newSearcher and shared read-only by all kernel workers; the lazily
// built SAT is protected by satMu.
type tables struct {
	f     *agg.Composite
	chans int

	sorted bool // master order is (MinX, MinY); windows are usable

	// Fixed-point quantization certificate (see the package note).
	// chScale/chInv are exact powers of two (1 for integer channels);
	// contribsI holds the scaled int64 contributions aligned with
	// contribs, valid wherever chOK. allExact gates the master sort and
	// the incremental sweep (every float sum exact ⇒ order-free);
	// anyExact gates the SAT fast path.
	chOK      []bool
	chScale   []float64
	chInv     []float64
	allExact  bool
	anyExact  bool
	contribsI []int64
	certShift []int // certificate scratch (slab reuse)
	certSum   []float64

	// CSR of the contributions on channels that FAIL the certificate
	// (built only for mixed composites): the hybrid fill's
	// difference-array pass iterates these instead of filtering
	// contribs per rect.
	cOffF     []int32
	contribsF []agg.Contrib

	wmin, wmax float64 // range of rect widths (MaxX-MinX) over the master set
	hmin, hmax float64

	minXs []float64 // master[i].Rect.MinX, aligned with master order

	// Flattened channel contributions: master[i] contributes
	// contribs[cOff[i]:cOff[i+1]]; likewise mm contributions.
	cOff     []int32
	contribs []agg.Contrib
	mOff     []int32
	mms      []agg.MMContrib

	// Accuracy scratch (kept for slab reuse).
	axs, bxs []float64

	// Query-level SAT over rectangle-anchor (MinX, MinY) bins. sat
	// carries scaled int64 prefix sums; channel 0 is the anchor count,
	// channels 1..chans the certified composite channels (failing
	// channels stay zero). mmBank is the order-statistic companion:
	// per-bin pre-reduced min/max slot values behind per-row segment
	// trees.
	satMu        sync.Mutex
	satBuilt     atomic.Bool // lock-free fast path for per-cell callers
	gx, gy       int
	bx0, by0     float64
	bxMax, byMax float64 // largest anchor coordinates (see binX)
	bw, bh       float64
	sat          []int64 // (gx+1)*(gy+1)*(chans+1) prefix sums
	binStart     []int32 // gx*gy+1 CSR offsets
	binIds       []int32 // master ids grouped by bin, ascending within a bin
	mmBank       segtree.MinMaxRows

	// Recycled id slices handed back by a released Searcher (slab reuse
	// across Engine queries).
	idFree [][]int32
}

// reset prepares a recycled tables value for a new query, keeping every
// slice's capacity (the quantization-certificate and SAT slabs ride the
// SlabCache across queries on the same composite).
func (t *tables) reset() {
	t.satBuilt.Store(false)
	t.sat = t.sat[:0]
	t.binStart = t.binStart[:0]
	t.binIds = t.binIds[:0]
	t.minXs = t.minXs[:0]
	t.cOff = t.cOff[:0]
	t.contribs = t.contribs[:0]
	t.mOff = t.mOff[:0]
	t.mms = t.mms[:0]
	t.contribsI = t.contribsI[:0]
	t.cOffF = t.cOffF[:0]
	t.contribsF = t.contribsF[:0]
}

// buildTables constructs the layer over master for the composite f.
// When own is true the master slice may be re-sorted in place; otherwise
// a sorted copy is made if sorting is called for. It returns the master
// actually used (== the input unless a copy was needed).
func buildTables(t *tables, master []asp.RectObject, f *agg.Composite, own bool) []asp.RectObject {
	t.f = f
	t.chans = f.Channels()

	if cap(t.cOff) < len(master)+1 {
		// Pre-size the slab arrays: the flatten/accuracy passes would
		// otherwise each pay ~2x their final size in append-doubling
		// churn, which dominates the per-query allocation profile.
		t.cOff = make([]int32, 0, len(master)+1)
		t.contribs = make([]agg.Contrib, 0, len(master)+len(master)/4)
		t.minXs = make([]float64, 0, len(master))
		t.axs = make([]float64, 0, len(master))
		t.bxs = make([]float64, 0, len(master))
	}

	// Pass 1: extent ranges and contribution flattening in current order.
	t.wmin, t.wmax = math.Inf(1), math.Inf(-1)
	t.hmin, t.hmax = math.Inf(1), math.Inf(-1)
	t.flattenContribs(master)
	for i := range master {
		r := &master[i].Rect
		if w := r.MaxX - r.MinX; true {
			if w < t.wmin {
				t.wmin = w
			}
			if w > t.wmax {
				t.wmax = w
			}
		}
		if h := r.MaxY - r.MinY; true {
			if h < t.hmin {
				t.hmin = h
			}
			if h > t.hmax {
				t.hmax = h
			}
		}
	}
	t.computeCertificate()

	// Fully certified composites get the sorted master (and with it the
	// window and probe machinery). Sorting reorders float summation,
	// which is harmless exactly when every partial sum is exact — what
	// the certificate guarantees for every channel.
	t.sorted = false
	if t.allExact && len(master) > 1 {
		if !sort.SliceIsSorted(master, func(a, b int) bool {
			ra, rb := &master[a].Rect, &master[b].Rect
			if ra.MinX != rb.MinX {
				return ra.MinX < rb.MinX
			}
			return ra.MinY < rb.MinY
		}) {
			if !own {
				master = append([]asp.RectObject(nil), master...)
			}
			sort.Slice(master, func(a, b int) bool {
				ra, rb := &master[a].Rect, &master[b].Rect
				if ra.MinX != rb.MinX {
					return ra.MinX < rb.MinX
				}
				return ra.MinY < rb.MinY
			})
			t.flattenContribs(master) // realign with the new order
		}
		t.sorted = true
	} else if t.allExact {
		t.sorted = true // 0- and 1-element masters are trivially sorted
	}
	t.scaleContribs()

	t.minXs = t.minXs[:0]
	for i := range master {
		t.minXs = append(t.minXs, master[i].Rect.MinX)
	}
	return master
}

// fracBits returns the number of binary fraction bits of v — the
// smallest k with v·2^k integral — or a value above maxShift when v is
// unquantizable within the certificate's budget (denormals would need
// shifts near 1074; NaN/Inf never quantize).
func fracBits(v float64) int {
	if v == 0 {
		return 0
	}
	b := math.Float64bits(v)
	exp := int(b>>52) & 0x7ff
	frac := b & (1<<52 - 1)
	switch exp {
	case 0x7ff: // Inf/NaN
		return maxShift + 1
	case 0: // denormal: v = frac·2^-1074
		return 1074 - bits.TrailingZeros64(frac)
	}
	// v = (2^52 | frac) · 2^(exp-1075).
	fb := 1075 - exp - bits.TrailingZeros64(frac|1<<52)
	if fb < 0 {
		return 0
	}
	return fb
}

// computeCertificate derives the per-channel fixed-point certificate
// from the flattened contributions: the shared power-of-two shift (the
// maximum fraction-bit count over the channel's values) and the
// headroom check Σ|v|·2^shift ≤ 2^52. Channels with no contributions
// pass trivially with shift 0.
func (t *tables) computeCertificate() {
	c := t.chans
	if cap(t.chOK) < c {
		t.chOK = make([]bool, c)
		t.chScale = make([]float64, c)
		t.chInv = make([]float64, c)
		t.certShift = make([]int, c)
		t.certSum = make([]float64, c)
	}
	t.chOK = t.chOK[:c]
	t.chScale = t.chScale[:c]
	t.chInv = t.chInv[:c]
	shift := t.certShift[:c]
	sumAbs := t.certSum[:c]
	for ch := range shift {
		shift[ch] = 0
		sumAbs[ch] = 0
	}
	ok := true
	for i := range t.contribs {
		cb := &t.contribs[i]
		if fb := fracBits(cb.V); fb > shift[cb.Ch] {
			shift[cb.Ch] = fb
		}
		sumAbs[cb.Ch] += math.Abs(cb.V)
	}
	t.allExact, t.anyExact = true, false
	for ch := 0; ch < c; ch++ {
		ok = shift[ch] <= maxShift
		if ok {
			t.chScale[ch] = math.Ldexp(1, shift[ch])
			t.chInv[ch] = math.Ldexp(1, -shift[ch])
			ok = sumAbs[ch]*t.chScale[ch] <= maxScaledSum
		}
		if !ok {
			t.chScale[ch], t.chInv[ch] = 1, 1
		}
		t.chOK[ch] = ok
		t.allExact = t.allExact && ok
		t.anyExact = t.anyExact || ok
	}
}

// scaleContribs materializes the scaled int64 contributions (aligned
// with contribs, valid wherever chOK) and, for mixed composites, the
// failing-channel CSR the hybrid fill's difference-array pass iterates.
// Must run after any master re-sort so the alignment holds.
func (t *tables) scaleContribs() {
	if !t.anyExact {
		return
	}
	if cap(t.contribsI) < len(t.contribs) {
		t.contribsI = make([]int64, 0, cap(t.contribs))
	}
	t.contribsI = t.contribsI[:len(t.contribs)]
	for i := range t.contribs {
		cb := &t.contribs[i]
		if t.chOK[cb.Ch] {
			// Exact: cb.V is an integer multiple of 2^-shift with a
			// ≤52-bit numerator, and the power-of-two multiply only
			// shifts the exponent.
			t.contribsI[i] = int64(cb.V * t.chScale[cb.Ch])
		} else {
			t.contribsI[i] = 0
		}
	}
	if t.allExact {
		t.cOffF = t.cOffF[:0]
		t.contribsF = t.contribsF[:0]
		return
	}
	t.cOffF = append(t.cOffF[:0], 0)
	t.contribsF = t.contribsF[:0]
	n := len(t.cOff) - 1
	for i := 0; i < n; i++ {
		for _, cb := range t.contribs[t.cOff[i]:t.cOff[i+1]] {
			if !t.chOK[cb.Ch] {
				t.contribsF = append(t.contribsF, cb)
			}
		}
		t.cOffF = append(t.cOffF, int32(len(t.contribsF)))
	}
}

// rectFailContribs returns master[id]'s contributions on channels that
// failed the certificate (mixed composites only).
func (t *tables) rectFailContribs(id int32) []agg.Contrib {
	return t.contribsF[t.cOffF[id]:t.cOffF[id+1]]
}

// rectContribsI returns master[id]'s scaled int64 contributions,
// aligned with rectContribs (entries on failing channels are zero).
func (t *tables) rectContribsI(id int32) []int64 {
	return t.contribsI[t.cOff[id]:t.cOff[id+1]]
}

// flattenContribs (re)fills the per-rect contribution tables in master
// order.
func (t *tables) flattenContribs(master []asp.RectObject) {
	t.cOff = append(t.cOff[:0], 0)
	t.contribs = t.contribs[:0]
	for i := range master {
		t.contribs = t.f.AppendContribs(master[i].Obj, t.contribs)
		t.cOff = append(t.cOff, int32(len(t.contribs)))
	}
	if t.f.MinMaxSlots() > 0 {
		t.mOff = append(t.mOff[:0], 0)
		t.mms = t.mms[:0]
		for i := range master {
			t.mms = t.f.AppendMM(master[i].Obj, t.mms)
			t.mOff = append(t.mOff, int32(len(t.mms)))
		}
	}
}

// rectContribs returns master[id]'s flattened channel contributions.
func (t *tables) rectContribs(id int32) []agg.Contrib {
	return t.contribs[t.cOff[id]:t.cOff[id+1]]
}

// rectMM returns master[id]'s flattened min/max contributions.
func (t *tables) rectMM(id int32) []agg.MMContrib {
	return t.mms[t.mOff[id]:t.mOff[id+1]]
}

// satUsable reports whether discretize may use the SAT-backed fast
// fill: at least one channel must carry the fixed-point certificate
// (counts and the min/max companion then ride along; channels that
// failed are filled by the hybrid difference-array pass in unchanged
// master order). Composites whose every channel fails keep the classic
// difference-array path, byte-for-byte the pre-SAT behavior.
func (t *tables) satUsable() bool { return t.anyExact }

// accuracy computes the Definition 7 GPS accuracies: the minimum
// separation of the distinct x (resp. y) edge coordinates. The edge
// multiset {MinX} ∪ {MaxX} is enumerated in sorted order by merging two
// sorted halves, so the result is bit-identical to sorting the combined
// multiset (the pre-SAT geom.ComputeAccuracy path) at half the sort work
// and none of the allocation.
func (t *tables) accuracy(master []asp.RectObject) geom.Accuracy {
	t.axs = t.axs[:0]
	t.bxs = t.bxs[:0]
	for i := range master {
		t.axs = append(t.axs, master[i].Rect.MinX)
		t.bxs = append(t.bxs, master[i].Rect.MaxX)
	}
	if !t.sorted {
		sort.Float64s(t.axs)
	}
	sort.Float64s(t.bxs)
	dx := minGapMerged(t.axs, t.bxs)
	t.axs = t.axs[:0]
	t.bxs = t.bxs[:0]
	for i := range master {
		t.axs = append(t.axs, master[i].Rect.MinY)
		t.bxs = append(t.bxs, master[i].Rect.MaxY)
	}
	sort.Float64s(t.axs)
	sort.Float64s(t.bxs)
	dy := minGapMerged(t.axs, t.bxs)
	return geom.Accuracy{DX: dx, DY: dy}
}

// minGapMerged returns the smallest positive gap between consecutive
// values of the merged sorted sequences a and b (+Inf when no positive
// gap exists).
func minGapMerged(a, b []float64) float64 {
	min := math.Inf(1)
	prev := math.NaN()
	ai, bi := 0, 0
	for ai < len(a) || bi < len(b) {
		var v float64
		if bi >= len(b) || (ai < len(a) && a[ai] <= b[bi]) {
			v = a[ai]
			ai++
		} else {
			v = b[bi]
			bi++
		}
		if d := v - prev; !math.IsNaN(prev) && d > 0 && d < min {
			min = d
		}
		prev = v
	}
	return min
}

// windowLo returns the first master index whose MinX exceeds x
// (binary search over the sorted minXs).
func (t *tables) windowLo(x float64) int {
	return sort.Search(len(t.minXs), func(i int) bool { return t.minXs[i] > x })
}

// windowHi returns the first master index whose MinX is >= x.
func (t *tables) windowHi(x float64) int {
	return sort.SearchFloat64s(t.minXs, x)
}

// window returns the [lo, hi) master index range that must contain every
// rectangle whose open interior intersects the open x-range (x0, x1):
// such a rectangle has MinX < x1 and MaxX > x0, hence MinX > x0 - wmax.
func (t *tables) window(x0, x1 float64) (int, int) {
	lo := t.windowLo(x0 - t.wmax)
	hi := t.windowHi(x1)
	if lo > hi {
		lo = hi
	}
	return lo, hi
}

// ---- Query-level SAT ----

// satGrid picks the bin granularity for n anchors.
func satGrid(n int) int {
	g := int(math.Sqrt(float64(n)))
	if g < 8 {
		g = 8
	}
	if g > 128 {
		g = 128
	}
	return g
}

// ensureSAT lazily builds the summed-area table over the master anchors.
// Many queries never pop a space large enough to want it, so the build
// cost is deferred to the first large discretization. Safe for
// concurrent workers; the build result is deterministic, so it does not
// matter which worker wins the race for the lock.
func (t *tables) ensureSAT(master []asp.RectObject) {
	if t.satBuilt.Load() {
		return
	}
	t.satMu.Lock()
	defer t.satMu.Unlock()
	if t.satBuilt.Load() {
		return
	}
	n := len(master)
	g := satGrid(n)
	t.gx, t.gy = g, g

	bx0, by0 := math.Inf(1), math.Inf(1)
	bx1, by1 := math.Inf(-1), math.Inf(-1)
	for i := range master {
		r := &master[i].Rect
		if r.MinX < bx0 {
			bx0 = r.MinX
		}
		if r.MinX > bx1 {
			bx1 = r.MinX
		}
		if r.MinY < by0 {
			by0 = r.MinY
		}
		if r.MinY > by1 {
			by1 = r.MinY
		}
	}
	t.bx0, t.by0 = bx0, by0
	t.bxMax, t.byMax = bx1, by1
	t.bw = (bx1 - bx0) / float64(g)
	t.bh = (by1 - by0) / float64(g)
	if !(t.bw > 0) {
		t.bw = 1
	}
	if !(t.bh > 0) {
		t.bh = 1
	}

	// CSR bins via counting sort (stable: ids ascend within each bin).
	nb := g * g
	t.binStart = resizeInt32(t.binStart, nb+1)
	for i := range t.binStart {
		t.binStart[i] = 0
	}
	binOf := func(r *geom.Rect) int {
		bi := int((r.MinX - bx0) / t.bw)
		bj := int((r.MinY - by0) / t.bh)
		if bi >= g {
			bi = g - 1
		}
		if bj >= g {
			bj = g - 1
		}
		return bj*g + bi
	}
	for i := range master {
		t.binStart[binOf(&master[i].Rect)+1]++
	}
	for b := 0; b < nb; b++ {
		t.binStart[b+1] += t.binStart[b]
	}
	t.binIds = resizeInt32(t.binIds, n)
	fill := append([]int32(nil), t.binStart[:nb]...)
	for i := range master {
		b := binOf(&master[i].Rect)
		t.binIds[fill[b]] = int32(i)
		fill[b]++
	}

	// Prefix-summed count+channel grid: sat[(j*(g+1)+i)*C+c] holds the
	// totals of anchors in bins [0,i)×[0,j); channel 0 is the anchor
	// count, channels 1..chans the certified composite channels as
	// scaled int64 (failing channels stay zero). Integer arithmetic, so
	// the prefix telescoping and four-corner differences are exact by
	// construction.
	C := t.chans + 1
	t.sat = resizeI64(t.sat, (g+1)*(g+1)*C)
	for i := range t.sat {
		t.sat[i] = 0
	}
	w := g + 1
	for i := range master {
		b := binOf(&master[i].Rect)
		bi, bj := b%g, b/g
		at := ((bj+1)*w + bi + 1) * C
		t.sat[at]++
		contribs := t.rectContribs(int32(i))
		scaled := t.rectContribsI(int32(i))
		for k := range contribs {
			t.sat[at+1+contribs[k].Ch] += scaled[k]
		}
	}
	for j := 0; j <= g; j++ {
		row := j * w * C
		for i := 1; i <= g; i++ {
			a := row + i*C
			for c := 0; c < C; c++ {
				t.sat[a+c] += t.sat[a-C+c]
			}
		}
	}
	for j := 1; j <= g; j++ {
		cur := j * w * C
		prev := cur - w*C
		for i := 0; i < w*C; i++ {
			t.sat[cur+i] += t.sat[prev+i]
		}
	}

	// Order-statistic companion: per-bin pre-reduced min/max slot values
	// behind per-row segment trees, queried by the fast fill over the
	// certainly-partial bin regions of each cell.
	if slots := t.f.MinMaxSlots(); slots > 0 {
		t.mmBank.Reset(g, g, slots)
		for i := range master {
			b := binOf(&master[i].Rect)
			bi, bj := b%g, b/g
			for _, m := range t.rectMM(int32(i)) {
				t.mmBank.Fold(bj, bi, m.Slot, m.V)
			}
		}
		t.mmBank.Build()
	}
	t.satBuilt.Store(true)
}

// binX maps an x coordinate to its bin column for threshold purposes:
// values below every bin map to -1, and values are mapped to the
// (gx) "above everything" sentinel only when they strictly exceed the
// largest anchor. The latter guard matters because anchors at the grid's
// far edge are clamped into the last bin: a threshold inside the last
// bin's float-rounded overshoot must keep that bin in the exactly
// tested ring, or anchors beyond the threshold would be mis-counted by
// the interior four-corner sum. binY likewise.
func (t *tables) binX(x float64) int {
	v := math.Floor((x - t.bx0) / t.bw)
	if v < 0 {
		return -1
	}
	if v >= float64(t.gx) {
		if x > t.bxMax {
			return t.gx
		}
		return t.gx - 1
	}
	return int(v)
}

func (t *tables) binY(y float64) int {
	v := math.Floor((y - t.by0) / t.bh)
	if v < 0 {
		return -1
	}
	if v >= float64(t.gy) {
		if y > t.byMax {
			return t.gy
		}
		return t.gy - 1
	}
	return int(v)
}

// satRegion adds the count+channel totals of anchors in bins
// [i0,i1)×[j0,j1) into out (length chans+1, scaled int64) via a
// four-corner lookup.
func (t *tables) satRegion(i0, i1, j0, j1 int, out []int64) {
	if i0 < 0 {
		i0 = 0
	}
	if j0 < 0 {
		j0 = 0
	}
	if i1 > t.gx {
		i1 = t.gx
	}
	if j1 > t.gy {
		j1 = t.gy
	}
	if i0 >= i1 || j0 >= j1 {
		return
	}
	C := t.chans + 1
	w := t.gx + 1
	a := (j1*w + i1) * C
	b := (j0*w + i1) * C
	c := (j1*w + i0) * C
	d := (j0*w + i0) * C
	for ch := 0; ch < C; ch++ {
		out[ch] += t.sat[a+ch] - t.sat[b+ch] - t.sat[c+ch] + t.sat[d+ch]
	}
}

// resizeInt32 returns a slice of length n reusing capacity.
func resizeInt32(v []int32, n int) []int32 {
	if cap(v) >= n {
		return v[:n]
	}
	return make([]int32, n)
}

// resizeI64 returns a slice of length n reusing capacity.
func resizeI64(v []int64, n int) []int64 {
	if cap(v) >= n {
		return v[:n]
	}
	return make([]int64, n)
}

// ---- Slab cache ----

// SlabCache recycles the per-query table slabs (sorted coordinate
// arrays, contribution tables, SAT grids, id-slice arenas) across
// searches. An Engine holds one per composite so that steady-state
// serving rebuilds table *contents* each query but reallocates nothing.
// Safe for concurrent use; the zero value is ready.
type SlabCache struct {
	mu   sync.Mutex
	free []*tables
}

// get returns a recycled tables value (reset, capacities kept) or a
// fresh one.
func (c *SlabCache) get() *tables {
	if c == nil {
		return &tables{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if n := len(c.free); n > 0 {
		t := c.free[n-1]
		c.free = c.free[:n-1]
		t.reset()
		return t
	}
	return &tables{}
}

// put hands a tables value back for reuse.
func (c *SlabCache) put(t *tables) {
	if c == nil || t == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.free) < 4 {
		c.free = append(c.free, t)
	}
}
