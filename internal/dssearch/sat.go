package dssearch

import (
	"math"
	"sort"
	"sync"

	"asrs/internal/agg"
	"asrs/internal/asp"
	"asrs/internal/geom"
)

// This file implements the per-query incremental-aggregation layer of
// DS-Search: one `tables` value is built per Searcher and owns
//
//   - the master rectangle array, sorted by (MinX, MinY) when the
//     composite is integer-exact, so that every space's relevant
//     rectangles form a binary-searchable contiguous window;
//   - the flattened per-rectangle channel contributions (AppendContribs
//     evaluated once per query instead of once per discretization);
//   - the GPS-accuracy computation (Definition 7), derived from the
//     sorted coordinate arrays by a merge walk instead of re-sorting the
//     edge multiset per query;
//   - the query-level summed-area table (SAT): 2D prefix sums of
//     rectangle-anchor counts and channel contributions over a bin grid,
//     plus CSR per-bin id lists. Discretize uses it to compute a cell's
//     full-/partial-cover totals with four-corner lookups plus an exact
//     scan of the boundary bins, instead of re-integrating difference
//     arrays over the whole space (see DESIGN.md §2).
//
// The SAT path is enabled only for *integer-exact* composites — ones
// whose every channel contribution is an integer (fD, fC, and fS/fA over
// integer-valued attributes), so that channel sums are exact in float64
// and therefore independent of summation order. That is what lets the
// SAT totals be bit-identical to the difference-array totals (the
// property tests assert this), and the search trajectory stay
// deterministic for every worker count. Composites with non-integer
// contributions keep the difference-array path and the original master
// order, byte-for-byte the pre-SAT behavior.

// satMinIds is the rectangle count at which discretize switches from the
// per-rectangle difference-array fill to SAT lookups: the SAT fill costs
// O(cells · boundary-bin density) independent of the rectangle count, so
// it wins exactly on the large spaces near the root of the split tree.
// A variable so tests can force the SAT path onto small inputs.
var satMinIds = 2048

// maxIntContrib bounds the channel contributions accepted as
// integer-exact; n·maxIntContrib must stay well inside float64's exact
// integer range (2^53).
const maxIntContrib = 1 << 30

// tables is the per-query aggregation layer described above. It is built
// by newSearcher and shared read-only by all kernel workers; the lazily
// built SAT is protected by satMu.
type tables struct {
	f     *agg.Composite
	chans int

	intExact bool // every contribution integer-valued (and few enough to sum exactly)
	sorted   bool // master order is (MinX, MinY); windows are usable

	wmin, wmax float64 // range of rect widths (MaxX-MinX) over the master set
	hmin, hmax float64

	minXs []float64 // master[i].Rect.MinX, aligned with master order

	// Flattened channel contributions: master[i] contributes
	// contribs[cOff[i]:cOff[i+1]]; likewise mm contributions.
	cOff     []int32
	contribs []agg.Contrib
	mOff     []int32
	mms      []agg.MMContrib

	// Accuracy scratch (kept for slab reuse).
	axs, bxs []float64

	// Query-level SAT over rectangle-anchor (MinX, MinY) bins.
	satMu        sync.Mutex
	satBuilt     bool
	gx, gy       int
	bx0, by0     float64
	bxMax, byMax float64 // largest anchor coordinates (see binX)
	bw, bh       float64
	sat          []float64 // (gx+1)*(gy+1)*(chans+1) prefix sums; channel 0 = count
	binStart     []int32   // gx*gy+1 CSR offsets
	binIds       []int32   // master ids grouped by bin, ascending within a bin

	// Recycled id slices handed back by a released Searcher (slab reuse
	// across Engine queries).
	idFree [][]int32
}

// reset prepares a recycled tables value for a new query, keeping every
// slice's capacity.
func (t *tables) reset() {
	t.satBuilt = false
	t.sat = t.sat[:0]
	t.binStart = t.binStart[:0]
	t.binIds = t.binIds[:0]
	t.minXs = t.minXs[:0]
	t.cOff = t.cOff[:0]
	t.contribs = t.contribs[:0]
	t.mOff = t.mOff[:0]
	t.mms = t.mms[:0]
}

// buildTables constructs the layer over master for the composite f.
// When own is true the master slice may be re-sorted in place; otherwise
// a sorted copy is made if sorting is called for. It returns the master
// actually used (== the input unless a copy was needed).
func buildTables(t *tables, master []asp.RectObject, f *agg.Composite, own bool) []asp.RectObject {
	t.f = f
	t.chans = f.Channels()

	if cap(t.cOff) < len(master)+1 {
		// Pre-size the slab arrays: the flatten/accuracy passes would
		// otherwise each pay ~2x their final size in append-doubling
		// churn, which dominates the per-query allocation profile.
		t.cOff = make([]int32, 0, len(master)+1)
		t.contribs = make([]agg.Contrib, 0, len(master)+len(master)/4)
		t.minXs = make([]float64, 0, len(master))
		t.axs = make([]float64, 0, len(master))
		t.bxs = make([]float64, 0, len(master))
	}

	// Pass 1: extent ranges and contribution flattening in current order,
	// deciding integer exactness as we go.
	t.wmin, t.wmax = math.Inf(1), math.Inf(-1)
	t.hmin, t.hmax = math.Inf(1), math.Inf(-1)
	intExact := len(master) < (1 << 22) // keep n·maxIntContrib ≪ 2^53
	t.flattenContribs(master)
	for i := range master {
		r := &master[i].Rect
		if w := r.MaxX - r.MinX; true {
			if w < t.wmin {
				t.wmin = w
			}
			if w > t.wmax {
				t.wmax = w
			}
		}
		if h := r.MaxY - r.MinY; true {
			if h < t.hmin {
				t.hmin = h
			}
			if h > t.hmax {
				t.hmax = h
			}
		}
	}
	for i := range t.contribs {
		v := t.contribs[i].V
		if v != math.Trunc(v) || v > maxIntContrib || v < -maxIntContrib {
			intExact = false
			break
		}
	}
	t.intExact = intExact

	// Integer-exact composites get the sorted master (and with it the
	// window, probe and SAT machinery). Sorting reorders float summation,
	// which is harmless exactly when contributions are integers.
	t.sorted = false
	if intExact && len(master) > 1 {
		if !sort.SliceIsSorted(master, func(a, b int) bool {
			ra, rb := &master[a].Rect, &master[b].Rect
			if ra.MinX != rb.MinX {
				return ra.MinX < rb.MinX
			}
			return ra.MinY < rb.MinY
		}) {
			if !own {
				master = append([]asp.RectObject(nil), master...)
			}
			sort.Slice(master, func(a, b int) bool {
				ra, rb := &master[a].Rect, &master[b].Rect
				if ra.MinX != rb.MinX {
					return ra.MinX < rb.MinX
				}
				return ra.MinY < rb.MinY
			})
			t.flattenContribs(master) // realign with the new order
		}
		t.sorted = true
	} else if intExact {
		t.sorted = true // 0- and 1-element masters are trivially sorted
	}

	t.minXs = t.minXs[:0]
	for i := range master {
		t.minXs = append(t.minXs, master[i].Rect.MinX)
	}
	return master
}

// flattenContribs (re)fills the per-rect contribution tables in master
// order.
func (t *tables) flattenContribs(master []asp.RectObject) {
	t.cOff = append(t.cOff[:0], 0)
	t.contribs = t.contribs[:0]
	for i := range master {
		t.contribs = t.f.AppendContribs(master[i].Obj, t.contribs)
		t.cOff = append(t.cOff, int32(len(t.contribs)))
	}
	if t.f.MinMaxSlots() > 0 {
		t.mOff = append(t.mOff[:0], 0)
		t.mms = t.mms[:0]
		for i := range master {
			t.mms = t.f.AppendMM(master[i].Obj, t.mms)
			t.mOff = append(t.mOff, int32(len(t.mms)))
		}
	}
}

// rectContribs returns master[id]'s flattened channel contributions.
func (t *tables) rectContribs(id int32) []agg.Contrib {
	return t.contribs[t.cOff[id]:t.cOff[id+1]]
}

// rectMM returns master[id]'s flattened min/max contributions.
func (t *tables) rectMM(id int32) []agg.MMContrib {
	return t.mms[t.mOff[id]:t.mOff[id+1]]
}

// satUsable reports whether discretize may use the SAT fill: channel
// sums must be order-independent (integer-exact) and there must be no
// min/max slots (those do not telescope; composites with fA components
// are not integer-exact anyway, since the fA sum channel carries raw
// attribute values).
func (t *tables) satUsable() bool { return t.sorted && t.intExact && t.f.MinMaxSlots() == 0 }

// accuracy computes the Definition 7 GPS accuracies: the minimum
// separation of the distinct x (resp. y) edge coordinates. The edge
// multiset {MinX} ∪ {MaxX} is enumerated in sorted order by merging two
// sorted halves, so the result is bit-identical to sorting the combined
// multiset (the pre-SAT geom.ComputeAccuracy path) at half the sort work
// and none of the allocation.
func (t *tables) accuracy(master []asp.RectObject) geom.Accuracy {
	t.axs = t.axs[:0]
	t.bxs = t.bxs[:0]
	for i := range master {
		t.axs = append(t.axs, master[i].Rect.MinX)
		t.bxs = append(t.bxs, master[i].Rect.MaxX)
	}
	if !t.sorted {
		sort.Float64s(t.axs)
	}
	sort.Float64s(t.bxs)
	dx := minGapMerged(t.axs, t.bxs)
	t.axs = t.axs[:0]
	t.bxs = t.bxs[:0]
	for i := range master {
		t.axs = append(t.axs, master[i].Rect.MinY)
		t.bxs = append(t.bxs, master[i].Rect.MaxY)
	}
	sort.Float64s(t.axs)
	sort.Float64s(t.bxs)
	dy := minGapMerged(t.axs, t.bxs)
	return geom.Accuracy{DX: dx, DY: dy}
}

// minGapMerged returns the smallest positive gap between consecutive
// values of the merged sorted sequences a and b (+Inf when no positive
// gap exists).
func minGapMerged(a, b []float64) float64 {
	min := math.Inf(1)
	prev := math.NaN()
	ai, bi := 0, 0
	for ai < len(a) || bi < len(b) {
		var v float64
		if bi >= len(b) || (ai < len(a) && a[ai] <= b[bi]) {
			v = a[ai]
			ai++
		} else {
			v = b[bi]
			bi++
		}
		if d := v - prev; !math.IsNaN(prev) && d > 0 && d < min {
			min = d
		}
		prev = v
	}
	return min
}

// windowLo returns the first master index whose MinX exceeds x
// (binary search over the sorted minXs).
func (t *tables) windowLo(x float64) int {
	return sort.Search(len(t.minXs), func(i int) bool { return t.minXs[i] > x })
}

// windowHi returns the first master index whose MinX is >= x.
func (t *tables) windowHi(x float64) int {
	return sort.SearchFloat64s(t.minXs, x)
}

// window returns the [lo, hi) master index range that must contain every
// rectangle whose open interior intersects the open x-range (x0, x1):
// such a rectangle has MinX < x1 and MaxX > x0, hence MinX > x0 - wmax.
func (t *tables) window(x0, x1 float64) (int, int) {
	lo := t.windowLo(x0 - t.wmax)
	hi := t.windowHi(x1)
	if lo > hi {
		lo = hi
	}
	return lo, hi
}

// ---- Query-level SAT ----

// satGrid picks the bin granularity for n anchors.
func satGrid(n int) int {
	g := int(math.Sqrt(float64(n)))
	if g < 8 {
		g = 8
	}
	if g > 128 {
		g = 128
	}
	return g
}

// ensureSAT lazily builds the summed-area table over the master anchors.
// Many queries never pop a space large enough to want it, so the build
// cost is deferred to the first large discretization. Safe for
// concurrent workers; the build result is deterministic, so it does not
// matter which worker wins the race for the lock.
func (t *tables) ensureSAT(master []asp.RectObject) {
	t.satMu.Lock()
	defer t.satMu.Unlock()
	if t.satBuilt {
		return
	}
	n := len(master)
	g := satGrid(n)
	t.gx, t.gy = g, g

	bx0, by0 := math.Inf(1), math.Inf(1)
	bx1, by1 := math.Inf(-1), math.Inf(-1)
	for i := range master {
		r := &master[i].Rect
		if r.MinX < bx0 {
			bx0 = r.MinX
		}
		if r.MinX > bx1 {
			bx1 = r.MinX
		}
		if r.MinY < by0 {
			by0 = r.MinY
		}
		if r.MinY > by1 {
			by1 = r.MinY
		}
	}
	t.bx0, t.by0 = bx0, by0
	t.bxMax, t.byMax = bx1, by1
	t.bw = (bx1 - bx0) / float64(g)
	t.bh = (by1 - by0) / float64(g)
	if !(t.bw > 0) {
		t.bw = 1
	}
	if !(t.bh > 0) {
		t.bh = 1
	}

	// CSR bins via counting sort (stable: ids ascend within each bin).
	nb := g * g
	t.binStart = resizeInt32(t.binStart, nb+1)
	for i := range t.binStart {
		t.binStart[i] = 0
	}
	binOf := func(r *geom.Rect) int {
		bi := int((r.MinX - bx0) / t.bw)
		bj := int((r.MinY - by0) / t.bh)
		if bi >= g {
			bi = g - 1
		}
		if bj >= g {
			bj = g - 1
		}
		return bj*g + bi
	}
	for i := range master {
		t.binStart[binOf(&master[i].Rect)+1]++
	}
	for b := 0; b < nb; b++ {
		t.binStart[b+1] += t.binStart[b]
	}
	t.binIds = resizeInt32(t.binIds, n)
	fill := append([]int32(nil), t.binStart[:nb]...)
	for i := range master {
		b := binOf(&master[i].Rect)
		t.binIds[fill[b]] = int32(i)
		fill[b]++
	}

	// Prefix-summed count+channel grid: sat[(j*(g+1)+i)*C+c] holds the
	// totals of anchors in bins [0,i)×[0,j); channel 0 is the anchor
	// count, channels 1..chans the composite channels. All values are
	// integers (satUsable gates on integer exactness), so the prefix
	// telescoping and the four-corner differences are exact.
	C := t.chans + 1
	t.sat = resizeF64(t.sat, (g+1)*(g+1)*C)
	for i := range t.sat {
		t.sat[i] = 0
	}
	w := g + 1
	for i := range master {
		b := binOf(&master[i].Rect)
		bi, bj := b%g, b/g
		at := ((bj+1)*w + bi + 1) * C
		t.sat[at]++
		for _, cb := range t.rectContribs(int32(i)) {
			t.sat[at+1+cb.Ch] += cb.V
		}
	}
	for j := 0; j <= g; j++ {
		row := j * w * C
		for i := 1; i <= g; i++ {
			a := row + i*C
			for c := 0; c < C; c++ {
				t.sat[a+c] += t.sat[a-C+c]
			}
		}
	}
	for j := 1; j <= g; j++ {
		cur := j * w * C
		prev := cur - w*C
		for i := 0; i < w*C; i++ {
			t.sat[cur+i] += t.sat[prev+i]
		}
	}
	t.satBuilt = true
}

// binX maps an x coordinate to its bin column for threshold purposes:
// values below every bin map to -1, and values are mapped to the
// (gx) "above everything" sentinel only when they strictly exceed the
// largest anchor. The latter guard matters because anchors at the grid's
// far edge are clamped into the last bin: a threshold inside the last
// bin's float-rounded overshoot must keep that bin in the exactly
// tested ring, or anchors beyond the threshold would be mis-counted by
// the interior four-corner sum. binY likewise.
func (t *tables) binX(x float64) int {
	v := math.Floor((x - t.bx0) / t.bw)
	if v < 0 {
		return -1
	}
	if v >= float64(t.gx) {
		if x > t.bxMax {
			return t.gx
		}
		return t.gx - 1
	}
	return int(v)
}

func (t *tables) binY(y float64) int {
	v := math.Floor((y - t.by0) / t.bh)
	if v < 0 {
		return -1
	}
	if v >= float64(t.gy) {
		if y > t.byMax {
			return t.gy
		}
		return t.gy - 1
	}
	return int(v)
}

// satRegion adds the count+channel totals of anchors in bins
// [i0,i1)×[j0,j1) into out (length chans+1) via a four-corner lookup.
func (t *tables) satRegion(i0, i1, j0, j1 int, out []float64) {
	if i0 < 0 {
		i0 = 0
	}
	if j0 < 0 {
		j0 = 0
	}
	if i1 > t.gx {
		i1 = t.gx
	}
	if j1 > t.gy {
		j1 = t.gy
	}
	if i0 >= i1 || j0 >= j1 {
		return
	}
	C := t.chans + 1
	w := t.gx + 1
	a := (j1*w + i1) * C
	b := (j0*w + i1) * C
	c := (j1*w + i0) * C
	d := (j0*w + i0) * C
	for ch := 0; ch < C; ch++ {
		out[ch] += t.sat[a+ch] - t.sat[b+ch] - t.sat[c+ch] + t.sat[d+ch]
	}
}

// resizeInt32 returns a slice of length n reusing capacity.
func resizeInt32(v []int32, n int) []int32 {
	if cap(v) >= n {
		return v[:n]
	}
	return make([]int32, n)
}

// resizeF64 returns a slice of length n reusing capacity.
func resizeF64(v []float64, n int) []float64 {
	if cap(v) >= n {
		return v[:n]
	}
	return make([]float64, n)
}

// ---- Slab cache ----

// SlabCache recycles the per-query table slabs (sorted coordinate
// arrays, contribution tables, SAT grids, id-slice arenas) across
// searches. An Engine holds one per composite so that steady-state
// serving rebuilds table *contents* each query but reallocates nothing.
// Safe for concurrent use; the zero value is ready.
type SlabCache struct {
	mu   sync.Mutex
	free []*tables
}

// get returns a recycled tables value (reset, capacities kept) or a
// fresh one.
func (c *SlabCache) get() *tables {
	if c == nil {
		return &tables{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if n := len(c.free); n > 0 {
		t := c.free[n-1]
		c.free = c.free[:n-1]
		t.reset()
		return t
	}
	return &tables{}
}

// put hands a tables value back for reuse.
func (c *SlabCache) put(t *tables) {
	if c == nil || t == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.free) < 4 {
		c.free = append(c.free, t)
	}
}
